module github.com/twolayer/twolayer

go 1.23
