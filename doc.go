// Package twolayer is an in-memory spatial index for non-point objects
// (rectangles, polygons, linestrings), implementing the two-layer
// partitioning of Tsitsigkos et al., "A Two-layer Partitioning for
// Non-point Spatial Data" (ICDE 2021).
//
// The index is a regular grid whose tiles are secondarily partitioned
// into four object classes. Range queries read, per tile, only the
// classes that cannot produce duplicate results, so — unlike classic
// replicating grid indices — no duplicate is ever generated or
// eliminated, and border tiles need at most one coordinate comparison per
// object and dimension. An optional decomposed storage mode ("2-layer+")
// answers border tiles with binary searches on sorted coordinate tables.
//
// # Quick start
//
//	objects := []twolayer.Rect{
//		{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2},
//		{MinX: 0.5, MinY: 0.4, MaxX: 0.8, MaxY: 0.6},
//	}
//	idx := twolayer.BuildRects(objects, twolayer.Options{GridSize: 64})
//	idx.Window(twolayer.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5},
//		func(id uint32, mbr twolayer.Rect) { fmt.Println(id, mbr) })
//
// Exact (non-rectangular) geometries are supported through BuildGeoms;
// window and disk queries over them use a secondary filter that skips the
// expensive refinement step for most results. Batches of queries can be
// evaluated with cache-conscious tile-at-a-time processing, serially or
// on all cores.
//
// # Observability
//
// Three concurrency-safe instruments expose what the index is doing,
// none of which slow down uninstrumented queries:
//
//   - [Index.Instrumented] returns a read view whose queries count the
//     work they perform (tiles visited, comparisons, duplicates avoided,
//     Lemma 5 filter hits, …) into a private [Stats]. Merge finished
//     views into a shared [AtomicStats] to aggregate across goroutines.
//   - [Index.Traced] additionally records per-stage wall-clock timings
//     (filtering vs. exact-geometry refinement) into a [Trace] — the
//     building block for per-query tracing and slow-query logs.
//   - [Index.PartitionStats] summarizes the partitioning itself:
//     occupied tiles, per-class entry counts, replication factor, and
//     tile-occupancy skew.
//
// See ExampleIndex_Traced and ExampleAtomicStats for the intended
// hookup, and docs/OBSERVABILITY.md in the repository for how the
// bundled server turns these into Prometheus metrics and request
// traces.
package twolayer
