package twolayer_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

func randRects(rnd *rand.Rand, n int, maxSide float64) []twolayer.Rect {
	rects := make([]twolayer.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide}
	}
	return rects
}

func bruteWindow(rects []twolayer.Rect, w twolayer.Rect) []twolayer.ID {
	var out []twolayer.ID
	for i, r := range rects {
		if r.Intersects(w) {
			out = append(out, twolayer.ID(i))
		}
	}
	return out
}

func sorted(ids []twolayer.ID) []twolayer.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestPublicWindowAPI(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	rects := randRects(rnd, 1000, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 32, Decompose: true})
	if idx.Len() != 1000 {
		t.Fatalf("Len = %d", idx.Len())
	}
	for q := 0; q < 30; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
		want := sorted(bruteWindow(rects, w))
		got := sorted(idx.WindowIDs(w, nil))
		if len(got) != len(want) {
			t.Fatalf("got %d, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
		if n := idx.WindowCount(w); n != len(want) {
			t.Fatalf("count %d, want %d", n, len(want))
		}
		calls := 0
		idx.Window(w, func(id twolayer.ID, mbr twolayer.Rect) {
			if mbr != rects[id] {
				t.Fatalf("callback MBR mismatch for %d", id)
			}
			calls++
		})
		if calls != len(want) {
			t.Fatalf("visitor called %d times, want %d", calls, len(want))
		}
	}
}

func TestPublicDiskAPI(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	rects := randRects(rnd, 500, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 16})
	c := twolayer.Point{X: 0.5, Y: 0.5}
	got := idx.DiskIDs(c, 0.2, nil)
	want := 0
	for _, r := range rects {
		if r.IntersectsDisk(c, 0.2) {
			want++
		}
	}
	if len(got) != want || idx.DiskCount(c, 0.2) != want {
		t.Fatalf("disk results %d, want %d", len(got), want)
	}
}

func TestPublicExactAPI(t *testing.T) {
	geoms := []twolayer.Geometry{
		twolayer.NewPolygon(
			twolayer.Point{X: 0.1, Y: 0.1},
			twolayer.Point{X: 0.3, Y: 0.1},
			twolayer.Point{X: 0.2, Y: 0.3},
		),
		twolayer.NewLineString(
			twolayer.Point{X: 0.6, Y: 0.6},
			twolayer.Point{X: 0.9, Y: 0.9},
		),
	}
	idx := twolayer.BuildGeoms(geoms, twolayer.Options{GridSize: 8})
	var hits []twolayer.ID
	// A window overlapping the polygon's MBR corner but not the polygon.
	w := twolayer.Rect{MinX: 0.27, MinY: 0.25, MaxX: 0.5, MaxY: 0.5}
	idx.WindowExact(w, twolayer.RefineAvoidPlus, func(id twolayer.ID) { hits = append(hits, id) })
	if len(hits) != 0 {
		t.Fatalf("refinement failed to reject MBR-only candidate: %v", hits)
	}
	// A disk touching the linestring.
	hits = hits[:0]
	idx.DiskExact(twolayer.Point{X: 0.75, Y: 0.75}, 0.01, twolayer.RefineAvoid,
		func(id twolayer.ID) { hits = append(hits, id) })
	if len(hits) != 1 || hits[0] != 1 {
		t.Fatalf("disk exact hits = %v, want [1]", hits)
	}
}

func TestPublicBatchAPI(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	rects := randRects(rnd, 800, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 16})
	queries := make([]twolayer.Rect, 50)
	for i := range queries {
		x, y := rnd.Float64(), rnd.Float64()
		queries[i] = twolayer.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1}
	}
	serial := idx.BatchWindowCounts(queries, twolayer.QueriesBased, 1)
	tiles := idx.BatchWindowCounts(queries, twolayer.TilesBased, 4)
	for i := range queries {
		if serial[i] != tiles[i] {
			t.Fatalf("query %d: %d != %d", i, serial[i], tiles[i])
		}
		if want := len(bruteWindow(rects, queries[i])); serial[i] != want {
			t.Fatalf("query %d: %d, want %d", i, serial[i], want)
		}
	}
}

func TestPublicUpdateAPI(t *testing.T) {
	idx := twolayer.New(twolayer.Options{GridSize: 8, Space: twolayer.Rect{MaxX: 1, MaxY: 1}})
	r := twolayer.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	idx.Insert(7, r)
	if idx.WindowCount(twolayer.Rect{MaxX: 1, MaxY: 1}) != 1 {
		t.Fatal("inserted object not found")
	}
	if !idx.Delete(7, r) {
		t.Fatal("delete failed")
	}
	if idx.WindowCount(twolayer.Rect{MaxX: 1, MaxY: 1}) != 0 {
		t.Fatal("object survived delete")
	}
}

func TestPublicStatsAPI(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	idx := twolayer.BuildRects(randRects(rnd, 500, 0.1), twolayer.Options{GridSize: 16})
	s := idx.EnableStats()
	idx.WindowCount(twolayer.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
	if s.TilesVisited == 0 || s.Results == 0 {
		t.Errorf("stats not collected: %+v", s)
	}
	idx.DisableStats()
	before := s.Results
	idx.WindowCount(twolayer.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8})
	if s.Results != before {
		t.Error("stats still collected after DisableStats")
	}
	if idx.ReplicationFactor() < 1 || idx.MemoryFootprint() <= 0 {
		t.Error("reporting helpers wrong")
	}
}

func TestPublicKNNAndJoin(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	space := twolayer.Rect{MaxX: 1.2, MaxY: 1.2}
	a := twolayer.BuildRects(randRects(rnd, 400, 0.05), twolayer.Options{GridSize: 16, Space: space})
	bRects := randRects(rnd, 400, 0.05)
	b := twolayer.BuildRects(bRects, twolayer.Options{GridSize: 16, Space: space})

	q := twolayer.Point{X: 0.5, Y: 0.5}
	nn := a.KNN(q, 7)
	if len(nn) != 7 {
		t.Fatalf("KNN returned %d", len(nn))
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Dist < nn[i-1].Dist {
			t.Fatal("KNN not sorted")
		}
	}

	pairs := 0
	a.Join(b, func(_, _ twolayer.ID) { pairs++ })
	if pairs != a.JoinCount(b) {
		t.Fatal("Join and JoinCount disagree")
	}
	want := 0
	a.Window(twolayer.Rect{MaxX: 2, MaxY: 2}, func(id twolayer.ID, mbr twolayer.Rect) {
		for _, s := range bRects {
			if mbr.Intersects(s) {
				want++
			}
		}
	})
	if pairs != want {
		t.Fatalf("join pairs %d, want %d", pairs, want)
	}
}

func TestPublicParallelEstimateUntil(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	space := twolayer.Rect{MaxX: 1.2, MaxY: 1.2}
	rects := randRects(rnd, 1000, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 32, Space: space})

	w := twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	want := idx.WindowCount(w)

	var n int64
	var mu sync.Mutex
	idx.WindowParallel(w, 4, func(twolayer.ID, twolayer.Rect) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	if int(n) != want {
		t.Fatalf("WindowParallel found %d, want %d", n, want)
	}

	if est := idx.EstimateWindow(w); est <= 0 {
		t.Fatalf("EstimateWindow = %v", est)
	}
	if !idx.Intersects(w) {
		t.Fatal("Intersects missed data")
	}
	stops := 0
	idx.WindowUntil(w, func(twolayer.ID, twolayer.Rect) bool {
		stops++
		return stops < 3
	})
	if stops != 3 {
		t.Fatalf("WindowUntil visited %d", stops)
	}

	other := twolayer.BuildRects(randRects(rnd, 1000, 0.05), twolayer.Options{GridSize: 32, Space: space})
	serialPairs := idx.JoinCount(other)
	var pairs int64
	idx.JoinParallel(other, 4, func(_, _ twolayer.ID) {
		mu.Lock()
		pairs++
		mu.Unlock()
	})
	if int(pairs) != serialPairs {
		t.Fatalf("JoinParallel found %d pairs, want %d", pairs, serialPairs)
	}
}

func TestAutoTunedGridSize(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	rects := randRects(rnd, 5000, 0.01)
	idx := twolayer.BuildRects(rects, twolayer.Options{}) // no grid given
	w := twolayer.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}
	want := len(bruteWindow(rects, w))
	if got := idx.WindowCount(w); got != want {
		t.Fatalf("auto-tuned index returned %d, want %d", got, want)
	}
}

func TestDecomposedRebuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	rects := randRects(rnd, 300, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 8, Decompose: true})
	idx.Insert(1000, twolayer.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.55, MaxY: 0.55})
	idx.RebuildDecomposed()
	w := twolayer.Rect{MinX: 0.45, MinY: 0.45, MaxX: 0.6, MaxY: 0.6}
	found := false
	idx.Window(w, func(id twolayer.ID, _ twolayer.Rect) {
		if id == 1000 {
			found = true
		}
	})
	if !found {
		t.Fatal("inserted object missing after rebuild")
	}
}
