package twolayer

import (
	"fmt"
	"io"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Geometric types of the public API.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-parallel rectangle (an object MBR or a query
	// window).
	Rect = geom.Rect
	// Disk is a circular query range.
	Disk = geom.Disk
	// LineString is a polyline geometry.
	LineString = geom.LineString
	// Polygon is a simple polygon geometry.
	Polygon = geom.Polygon
	// Geometry is the interface exact object representations implement.
	Geometry = geom.Geometry
	// ID identifies an object; a dataset of n objects uses IDs 0..n-1.
	ID = spatial.ID
	// Stats carries instrumentation counters (see Index.EnableStats and
	// Index.Instrumented).
	Stats = core.Stats
	// AtomicStats merges per-query Stats concurrently (see
	// Index.Instrumented).
	AtomicStats = core.AtomicStats
	// Trace is a per-query observability record: the Stats counters plus
	// wall-clock stage timings (see Index.Traced).
	Trace = core.Trace
	// ChunkSpan records one tile-row chunk of a window query evaluated by
	// the intra-query parallel kernel (see Trace.Chunks).
	ChunkSpan = core.ChunkSpan
	// PathStats snapshots the always-on adaptive query-execution counters
	// (see Index.QueryPathStats and Sharded.QueryPathStats).
	PathStats = core.PathStats
	// PartitionStats summarizes the shape of the two-layer partitioning
	// (see Index.PartitionStats).
	PartitionStats = core.PartitionStats
	// Neighbor is one k-nearest-neighbor result.
	Neighbor = core.Neighbor
	// Region is an arbitrary-shape query range (Disk and *Polygon
	// implement it).
	Region = core.Region
)

// NewLineString constructs a polyline from at least two points.
func NewLineString(pts ...Point) *LineString { return geom.NewLineString(pts...) }

// NewPolygon constructs a simple polygon from at least three vertices.
func NewPolygon(ring ...Point) *Polygon { return geom.NewPolygon(ring...) }

// RefineMode selects how exact-geometry queries refine candidates.
type RefineMode = core.RefineMode

// Refinement modes for WindowExact and DiskExact.
const (
	// RefineSimple refines every candidate with an exact geometry test.
	RefineSimple = core.RefineSimple
	// RefineAvoid applies the MBR secondary filter first (Lemma 5),
	// skipping refinement for candidates it proves are results.
	RefineAvoid = core.RefineAvoid
	// RefineAvoidPlus additionally uses class knowledge to shrink the
	// secondary filter itself. The recommended default.
	RefineAvoidPlus = core.RefineAvoidPlus
)

// BatchStrategy selects how query batches are evaluated.
type BatchStrategy = core.BatchStrategy

// Batch strategies for BatchWindow.
const (
	// QueriesBased evaluates queries independently (cache agnostic).
	QueriesBased = core.QueriesBased
	// TilesBased groups work per tile for cache locality; it scales
	// better with threads. The recommended default for large batches.
	TilesBased = core.TilesBased
)

// Options configure index construction.
type Options struct {
	// GridSize is the number of tiles per dimension. When zero (and NX,
	// NY are zero), BuildRects and BuildGeoms auto-tune it from the data
	// size (~1 object per tile, the paper's broad optimum); New defaults
	// to 256. For a non-square grid set NX and NY instead.
	GridSize int
	// NX, NY override GridSize per dimension.
	NX, NY int
	// Space is the indexed region. Defaults to the bounding rectangle of
	// the data (objects may still stick out; border tiles absorb them).
	Space Rect
	// Decompose builds the sorted coordinate tables of the 2-layer+
	// variant: faster window queries on static data for ~2x the memory.
	Decompose bool
	// BuildThreads is the worker count of the construction pipeline:
	// <= 0 selects runtime.NumCPU(), 1 forces the classic sequential
	// build. With more than one worker, construction runs a two-pass
	// counting pipeline that shards the input across cores and fills
	// exact-size partitions in parallel — the resulting index contents
	// are identical to a sequential build. Small datasets (and very
	// large grids) fall back to the sequential path automatically; see
	// docs "Build performance" for the scaling profile. The setting also
	// parallelizes 2-layer+ decomposed-table (re)builds, including the
	// periodic rebuilds of a Live index.
	BuildThreads int
}

// Validate reports why the options cannot build an index, or nil.
// BuildRects, BuildGeoms, and New panic on invalid options; the Err build
// variants and NewLive validate first and return the error instead.
func (o Options) Validate() error {
	if o.GridSize < 0 {
		return fmt.Errorf("twolayer: negative GridSize %d", o.GridSize)
	}
	return o.toCore().Validate()
}

func (o Options) toCore() core.Options {
	nx, ny := o.NX, o.NY
	if nx == 0 {
		nx = o.GridSize
	}
	if ny == 0 {
		ny = o.GridSize
	}
	return core.Options{
		NX: nx, NY: ny, Space: o.Space,
		Decompose:    o.Decompose,
		BuildThreads: o.BuildThreads,
	}
}

// Index is a two-layer partitioned spatial index. It is safe for
// concurrent readers; updates, kNN search, and EnableStats collection
// require external synchronization. On a static index, ReadView and
// Instrumented lift the kNN and stats restrictions by giving each
// goroutine its own cheap read view. For concurrent readers AND
// writers, wrap the index in a Live handle (NewLive, LiveFrom): readers
// then pin immutable copy-on-write snapshots instead of locking.
type Index struct {
	core    *core.Index
	dataset *spatial.Dataset
}

// BuildRects builds an index over rectangle objects. Object i gets ID i.
func BuildRects(rects []Rect, opts Options) *Index {
	d := spatial.NewDataset(rects)
	return &Index{core: core.Build(d, opts.autoTuned(d.Len())), dataset: d}
}

// BuildGeoms builds an index over exact geometries (indexed by their
// MBRs). Object i gets ID i.
func BuildGeoms(geoms []Geometry, opts Options) *Index {
	d := spatial.NewGeomDataset(geoms)
	return &Index{core: core.Build(d, opts.autoTuned(d.Len())), dataset: d}
}

// BuildRectsErr is the error-returning variant of BuildRects: invalid
// options or data (NaN or inverted rectangles, a degenerate bounding box
// with no explicit Space) produce an error instead of a panic.
func BuildRectsErr(rects []Rect, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d := spatial.NewDataset(rects)
	inner, err := core.BuildErr(d, opts.autoTuned(d.Len()))
	if err != nil {
		return nil, err
	}
	return &Index{core: inner, dataset: d}, nil
}

// BuildGeomsErr is the error-returning variant of BuildGeoms.
func BuildGeomsErr(geoms []Geometry, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d := spatial.NewGeomDataset(geoms)
	inner, err := core.BuildErr(d, opts.autoTuned(d.Len()))
	if err != nil {
		return nil, err
	}
	return &Index{core: inner, dataset: d}, nil
}

// autoTuned fills in a data-driven grid size when none was requested.
func (o Options) autoTuned(n int) core.Options {
	if o.GridSize == 0 && o.NX == 0 && o.NY == 0 {
		o.GridSize = core.SuggestGridSize(n)
	}
	return o.toCore()
}

// New returns an empty, updatable index over the given space. Options.
// Space must be set (there is no data to derive it from).
func New(opts Options) *Index {
	return &Index{core: core.New(opts.toCore())}
}

// Len returns the number of objects in the index.
func (ix *Index) Len() int { return ix.core.Len() }

// Epoch returns the snapshot epoch of the index: 0 for a directly built
// index, and the strictly increasing publish sequence number for
// snapshots obtained from Live.Snapshot.
func (ix *Index) Epoch() uint64 { return ix.core.Epoch() }

// Window invokes fn exactly once for each object whose MBR intersects w.
// This is the filtering step: results are candidates by MBR; use an
// Exact query for exact-geometry results.
//
// Legacy: thin wrapper over Search(Query{Window: &w}).
func (ix *Index) Window(w Rect, fn func(id ID, mbr Rect)) {
	ix.Search(Query{Window: &w}, func(id ID, mbr Rect) bool {
		fn(id, mbr)
		return true
	})
}

// WindowIDs returns the IDs of all objects whose MBR intersects w,
// appending to buf (which may be nil).
//
// Legacy: thin wrapper over SearchIDs(Query{Window: &w}, buf).
func (ix *Index) WindowIDs(w Rect, buf []ID) []ID {
	ids, _ := ix.SearchIDs(Query{Window: &w}, buf)
	return ids
}

// WindowCount returns the number of objects whose MBR intersects w.
//
// Legacy: thin wrapper over SearchCount(Query{Window: &w}).
func (ix *Index) WindowCount(w Rect) int {
	n, _ := ix.SearchCount(Query{Window: &w})
	return n
}

// Disk invokes fn exactly once for each object whose MBR intersects the
// disk with the given center and radius.
//
// Legacy: thin wrapper over Search(Query{Disk: &Disk{...}}).
func (ix *Index) Disk(center Point, radius float64, fn func(id ID, mbr Rect)) {
	ix.Search(Query{Disk: &Disk{Center: center, Radius: radius}}, func(id ID, mbr Rect) bool {
		fn(id, mbr)
		return true
	})
}

// DiskIDs returns the IDs of all objects whose MBR intersects the disk.
//
// Legacy: thin wrapper over SearchIDs(Query{Disk: &Disk{...}}, buf).
func (ix *Index) DiskIDs(center Point, radius float64, buf []ID) []ID {
	ids, _ := ix.SearchIDs(Query{Disk: &Disk{Center: center, Radius: radius}}, buf)
	return ids
}

// DiskCount returns the number of objects whose MBR intersects the disk.
//
// Legacy: thin wrapper over SearchCount(Query{Disk: &Disk{...}}).
func (ix *Index) DiskCount(center Point, radius float64) int {
	n, _ := ix.SearchCount(Query{Disk: &Disk{Center: center, Radius: radius}})
	return n
}

// Query evaluates a range query with an arbitrary region shape (e.g., a
// polygon): fn is invoked exactly once for each object whose MBR
// intersects the region.
//
// Legacy: thin wrapper over Search(Query{Region: region}).
func (ix *Index) Query(region Region, fn func(id ID, mbr Rect)) {
	ix.Search(Query{Region: region}, func(id ID, mbr Rect) bool {
		fn(id, mbr)
		return true
	})
}

// QueryCount returns the number of objects whose MBR intersects the
// region.
//
// Legacy: thin wrapper over SearchCount(Query{Region: region}).
func (ix *Index) QueryCount(region Region) int {
	n, _ := ix.SearchCount(Query{Region: region})
	return n
}

// WindowExact invokes fn exactly once for each object whose exact
// geometry intersects w, using the given refinement mode. It panics if
// the index has no exact geometries (New, Load).
//
// Legacy: thin wrapper over Search(Query{Window: &w, Exact: true, Mode:
// mode}), which reports the missing-geometries case as an error instead
// of panicking.
func (ix *Index) WindowExact(w Rect, mode RefineMode, fn func(id ID)) {
	_, err := ix.Search(Query{Window: &w, Exact: true, Mode: mode}, func(id ID, _ Rect) bool {
		fn(id)
		return true
	})
	if err != nil {
		panic(err)
	}
}

// DiskExact invokes fn exactly once for each object whose exact geometry
// intersects the disk. It panics if the index has no exact geometries
// (New, Load).
//
// Legacy: thin wrapper over Search(Query{Disk: &Disk{...}, Exact: true,
// Mode: mode}), which reports the missing-geometries case as an error
// instead of panicking.
func (ix *Index) DiskExact(center Point, radius float64, mode RefineMode, fn func(id ID)) {
	_, err := ix.Search(Query{
		Disk:  &Disk{Center: center, Radius: radius},
		Exact: true,
		Mode:  mode,
	}, func(id ID, _ Rect) bool {
		fn(id)
		return true
	})
	if err != nil {
		panic(err)
	}
}

// BatchWindow evaluates a batch of window queries; fn receives the query
// index with each result and must be safe for concurrent use when
// threads != 1. threads <= 0 uses all cores.
func (ix *Index) BatchWindow(queries []Rect, strategy BatchStrategy, threads int, fn func(q int, id ID)) {
	ix.core.BatchWindow(queries, strategy, threads, func(q int, e spatial.Entry) { fn(q, e.ID) })
}

// BatchWindowCounts evaluates a batch and returns per-query result counts.
func (ix *Index) BatchWindowCounts(queries []Rect, strategy BatchStrategy, threads int) []int {
	return ix.core.BatchWindowCounts(queries, strategy, threads)
}

// BatchDisk evaluates a batch of disk queries; fn receives the query
// index with each result and must be safe for concurrent use when
// threads != 1.
func (ix *Index) BatchDisk(queries []Disk, strategy BatchStrategy, threads int, fn func(q int, id ID)) {
	ix.core.BatchDisk(queries, strategy, threads, func(q int, e spatial.Entry) { fn(q, e.ID) })
}

// BatchDiskCounts evaluates a disk batch and returns per-query counts.
func (ix *Index) BatchDiskCounts(queries []Disk, strategy BatchStrategy, threads int) []int {
	return ix.core.BatchDiskCounts(queries, strategy, threads)
}

// Insert adds an object with the given ID and MBR. Exact geometries
// cannot be attached after construction; indices built with New support
// MBR (filtering) queries only.
func (ix *Index) Insert(id ID, mbr Rect) {
	ix.core.Insert(spatial.Entry{Rect: mbr, ID: id})
}

// Delete removes the object with the given ID, which must be passed the
// exact MBR it was inserted with. It reports whether the object was
// found.
func (ix *Index) Delete(id ID, mbr Rect) bool { return ix.core.Delete(id, mbr) }

// RebuildDecomposed (re)builds the decomposed tables after updates, for
// indices using the 2-layer+ mode.
func (ix *Index) RebuildDecomposed() { ix.core.BuildDecomposed() }

// KNN returns the k objects whose MBRs are nearest to q, ascending by
// distance. Like updates, KNN requires external synchronization (it
// reuses per-index scratch space); to run kNN queries concurrently, give
// each goroutine its own ReadView.
func (ix *Index) KNN(q Point, k int) []Neighbor { return ix.core.KNN(q, k) }

// KNNExact returns the k objects whose exact geometries are nearest to q,
// ascending by true geometric distance. Requires an index built with
// BuildGeoms or BuildRects.
func (ix *Index) KNNExact(q Point, k int) []Neighbor { return ix.core.KNNExact(q, k) }

// Join computes the spatial intersection join with another index built
// over the same grid geometry (same GridSize/NX/NY and Space): fn is
// invoked exactly once for every pair of objects whose MBRs intersect,
// with no duplicate pairs. Join panics on incompatible grids.
func (ix *Index) Join(other *Index, fn func(rID, sID ID)) {
	ix.core.Join(other.core, func(r, s spatial.Entry) { fn(r.ID, s.ID) })
}

// Join precondition errors, returned by JoinErr and JoinParallelErr (and
// carried by the panics of Join and JoinParallel).
var (
	// ErrGridMismatch means the two indices were built over different
	// grid geometries (tile counts or space).
	ErrGridMismatch = core.ErrGridMismatch
	// ErrSelfJoin means both join operands are the same Index instance;
	// build a second index over the same data instead.
	ErrSelfJoin = core.ErrSelfJoin
)

// JoinErr is the error-returning variant of Join: incompatible grids or a
// self-join are reported as an error (ErrGridMismatch, ErrSelfJoin)
// instead of a panic.
func (ix *Index) JoinErr(other *Index, fn func(rID, sID ID)) error {
	if err := core.Joinable(ix.core, other.core); err != nil {
		return err
	}
	ix.core.Join(other.core, func(r, s spatial.Entry) { fn(r.ID, s.ID) })
	return nil
}

// JoinCount returns the number of intersecting pairs between the two
// indices.
func (ix *Index) JoinCount(other *Index) int { return ix.core.JoinCount(other.core) }

// WindowParallel evaluates one (large) window query with the cover's
// tile rows spread over threads; fn must be safe for concurrent use.
// Small covers fall back to the serial path.
func (ix *Index) WindowParallel(w Rect, threads int, fn func(id ID, mbr Rect)) {
	ix.core.WindowParallel(w, threads, func(e spatial.Entry) { fn(e.ID, e.Rect) })
}

// WindowOrdered evaluates one window query over the given number of
// workers with the results delivered to fn on the caller's goroutine in
// exactly the sequential scan order: unlike WindowParallel, fn needs no
// synchronization. workers <= 0 uses all cores; 1 runs the plain
// sequential scan. Window and Search apply the same kernel automatically
// to large windows behind a cost gate (see Index.QueryPathStats), so
// this entry point is for callers that want to force a worker count.
func (ix *Index) WindowOrdered(w Rect, workers int, fn func(id ID, mbr Rect)) {
	ix.core.WindowOrdered(w, workers, func(e spatial.Entry) { fn(e.ID, e.Rect) })
}

// QueryPathStats snapshots the always-on adaptive query-execution
// counters: how often count-only queries took the O(tiles) pushdown
// kernel, how many tiles and entries were answered in bulk with zero
// comparisons, and how often the cost gate engaged (or skipped)
// intra-query parallelism. Counters are cumulative over the index
// lifetime and shared with all read views and Live snapshots of the
// same engine.
func (ix *Index) QueryPathStats() PathStats { return ix.core.QueryPathStats() }

// JoinParallel runs the spatial join with tiles distributed over
// threads; fn must be safe for concurrent use.
func (ix *Index) JoinParallel(other *Index, threads int, fn func(rID, sID ID)) {
	ix.core.JoinParallel(other.core, threads, func(r, s spatial.Entry) { fn(r.ID, s.ID) })
}

// JoinParallelErr is the error-returning variant of JoinParallel (see
// JoinErr); fn must be safe for concurrent use.
func (ix *Index) JoinParallelErr(other *Index, threads int, fn func(rID, sID ID)) error {
	if err := core.Joinable(ix.core, other.core); err != nil {
		return err
	}
	ix.core.JoinParallel(other.core, threads, func(r, s spatial.Entry) { fn(r.ID, s.ID) })
	return nil
}

// EstimateWindow predicts the result cardinality of a window query from
// the grid's per-tile counts in O(tiles covered) time, without touching
// entries. It assumes uniform mass within each tile, and because objects
// larger than a tile contribute through their class-A (reference) tile
// only, it undercounts heavily replicated data — treat it as a
// lower-bound-flavoured planning signal, not a count. The query planner
// itself consults the same estimate when cost-gating intra-query
// parallelism, and the /v1 HTTP API exposes it via "estimate": true, so
// clients and the planner share one selectivity signal.
func (ix *Index) EstimateWindow(w Rect) float64 { return ix.core.EstimateWindow(w) }

// WindowUntil streams filtering results until fn returns false,
// reporting whether the query ran to completion. Termination is
// tile-granular.
//
// Legacy: thin wrapper over Search(Query{Window: &w}).
func (ix *Index) WindowUntil(w Rect, fn func(id ID, mbr Rect) bool) bool {
	complete, _ := ix.Search(Query{Window: &w}, fn)
	return complete
}

// Intersects reports whether any object MBR intersects w, stopping at
// the first hit.
func (ix *Index) Intersects(w Rect) bool { return ix.core.Intersects(w) }

// Save writes a compact binary snapshot of the built index structure, so
// a static index can later be loaded without re-partitioning. Exact
// geometries are not part of the snapshot; a loaded index answers all
// MBR (filtering) queries.
func (ix *Index) Save(w io.Writer) (int64, error) { return ix.core.WriteTo(w) }

// Load reads an index snapshot written by Save.
func Load(r io.Reader) (*Index, error) {
	inner, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	return &Index{core: inner}, nil
}

// EnableStats attaches a counter set that queries will update (exclusive
// mode). Queries become single-threaded while stats are enabled. Returns
// the live Stats.
//
// Deprecated: exclusive-mode stats serialize all queries on the index.
// Use Instrumented for a per-goroutine counting view, and merge finished
// views into a shared AtomicStats with its Observe method.
func (ix *Index) EnableStats() *Stats {
	s := &Stats{}
	ix.core.Stats = s
	return s
}

// DisableStats detaches the counter set.
//
// Deprecated: see EnableStats; Instrumented views need no detach step.
func (ix *Index) DisableStats() { ix.core.Stats = nil }

// ReadView returns a shallow read view of the index with private kNN
// scratch space. Any number of views can evaluate queries — including KNN
// and KNNExact — concurrently, as long as the underlying index is not
// updated. Views are read-only; do not Insert or Delete through them.
func (ix *Index) ReadView() *Index {
	return &Index{core: ix.core.View(nil), dataset: ix.dataset}
}

// Instrumented returns a read view like ReadView whose queries
// additionally accumulate counters into the returned private Stats
// (concurrent mode: any number of instrumented views may run at once).
// Merge the counters of finished views into a shared AtomicStats with
// its Observe method.
func (ix *Index) Instrumented() (*Index, *Stats) {
	s := &Stats{}
	return &Index{core: ix.core.View(s), dataset: ix.dataset}, s
}

// Traced returns a read view like Instrumented whose queries additionally
// record per-stage wall-clock timings into the returned private Trace:
// the embedded Stats counters plus the split between filtering and
// exact-geometry refinement time. Stamp the total with Trace.Finish when
// the query (or request) completes. Any number of traced views may run
// concurrently, each with its own Trace; reuse a view/Trace pair across
// sequential queries by calling Trace.Reset between them.
func (ix *Index) Traced() (*Index, *Trace) {
	tr := &Trace{}
	return &Index{core: ix.core.ViewTraced(tr), dataset: ix.dataset}, tr
}

// PartitionStats walks the tile directory once and summarizes the current
// partitioning: occupied tiles, per-class entry counts, replication
// factor, tile-occupancy skew. Safe to call concurrently with queries on
// a static index or a Live snapshot.
func (ix *Index) PartitionStats() PartitionStats { return ix.core.PartitionStats() }

// HasExactGeometries reports whether the index can answer exact-geometry
// queries (WindowExact, DiskExact, KNNExact): true for indices built with
// BuildRects or BuildGeoms, false for empty (New) or snapshot-loaded
// (Load) indices.
func (ix *Index) HasExactGeometries() bool { return ix.core.Dataset() != nil }

// GridDims returns the primary grid's tile counts per dimension.
func (ix *Index) GridDims() (nx, ny int) {
	g := ix.core.Grid()
	return g.NX, g.NY
}

// Space returns the indexed region (the extent the primary grid covers).
// Two indices are join-compatible when they share GridDims and Space.
func (ix *Index) Space() Rect { return ix.core.Grid().Space }

// ReplicationFactor reports stored entries (with replicas) per object.
func (ix *Index) ReplicationFactor() float64 { return ix.core.ReplicationFactor() }

// MemoryFootprint approximates the index's entry storage in bytes.
func (ix *Index) MemoryFootprint() int { return ix.core.MemoryFootprint() }
