package twolayer_test

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// The basic lifecycle: build over MBRs, run a window query.
func ExampleBuildRects() {
	objects := []twolayer.Rect{
		{MinX: 0.10, MinY: 0.10, MaxX: 0.20, MaxY: 0.20},
		{MinX: 0.50, MinY: 0.40, MaxX: 0.80, MaxY: 0.60},
		{MinX: 0.15, MinY: 0.45, MaxX: 0.30, MaxY: 0.55},
	}
	idx := twolayer.BuildRects(objects, twolayer.Options{GridSize: 8})

	window := twolayer.Rect{MinX: 0, MinY: 0, MaxX: 0.55, MaxY: 0.55}
	ids := idx.WindowIDs(window, nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println(ids)
	// Output: [0 1 2]
}

// Exact geometries: refinement runs only when the secondary filter
// cannot prove the result.
func ExampleIndex_WindowExact() {
	triangle := twolayer.NewPolygon(
		twolayer.Point{X: 0.0, Y: 0.0},
		twolayer.Point{X: 0.4, Y: 0.0},
		twolayer.Point{X: 0.0, Y: 0.4},
	)
	idx := twolayer.BuildGeoms([]twolayer.Geometry{triangle}, twolayer.Options{GridSize: 8})

	// This window intersects the triangle's MBR but not the triangle.
	miss := twolayer.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.39, MaxY: 0.39}
	n := 0
	idx.WindowExact(miss, twolayer.RefineAvoidPlus, func(twolayer.ID) { n++ })
	fmt.Println("corner window:", n)

	hit := twolayer.Rect{MinX: 0.0, MinY: 0.0, MaxX: 0.1, MaxY: 0.1}
	idx.WindowExact(hit, twolayer.RefineAvoidPlus, func(twolayer.ID) { n++ })
	fmt.Println("origin window:", n)
	// Output:
	// corner window: 0
	// origin window: 1
}

// Disk (distance) queries report every object within the radius.
func ExampleIndex_DiskCount() {
	objects := []twolayer.Rect{
		{MinX: 0.48, MinY: 0.48, MaxX: 0.52, MaxY: 0.52}, // at the center
		{MinX: 0.90, MinY: 0.90, MaxX: 0.95, MaxY: 0.95}, // far away
	}
	idx := twolayer.BuildRects(objects, twolayer.Options{GridSize: 8})
	fmt.Println(idx.DiskCount(twolayer.Point{X: 0.5, Y: 0.5}, 0.1))
	// Output: 1
}

// k-nearest-neighbor search returns ascending distances.
func ExampleIndex_KNN() {
	objects := []twolayer.Rect{
		{MinX: 0.1, MinY: 0.1, MaxX: 0.11, MaxY: 0.11},
		{MinX: 0.5, MinY: 0.5, MaxX: 0.51, MaxY: 0.51},
		{MinX: 0.9, MinY: 0.9, MaxX: 0.91, MaxY: 0.91},
	}
	idx := twolayer.BuildRects(objects, twolayer.Options{GridSize: 8})
	for _, n := range idx.KNN(twolayer.Point{X: 0.52, Y: 0.52}, 2) {
		fmt.Printf("id=%d dist=%.2f\n", n.ID, n.Dist)
	}
	// Output:
	// id=1 dist=0.01
	// id=2 dist=0.54
}

// Spatial joins stream each intersecting pair exactly once.
func ExampleIndex_Join() {
	space := twolayer.Rect{MaxX: 1, MaxY: 1}
	opts := twolayer.Options{GridSize: 8, Space: space}
	roads := twolayer.BuildRects([]twolayer.Rect{
		{MinX: 0.1, MinY: 0.2, MaxX: 0.6, MaxY: 0.22},
	}, opts)
	parcels := twolayer.BuildRects([]twolayer.Rect{
		{MinX: 0.2, MinY: 0.1, MaxX: 0.3, MaxY: 0.3}, // crossed by the road
		{MinX: 0.7, MinY: 0.7, MaxX: 0.8, MaxY: 0.8}, // not crossed
	}, opts)
	roads.Join(parcels, func(road, parcel twolayer.ID) {
		fmt.Printf("road %d crosses parcel %d\n", road, parcel)
	})
	// Output: road 0 crosses parcel 0
}

// Batches evaluate many queries with cache-conscious tile-at-a-time
// processing.
func ExampleIndex_BatchWindowCounts() {
	objects := []twolayer.Rect{
		{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2},
		{MinX: 0.6, MinY: 0.6, MaxX: 0.7, MaxY: 0.7},
	}
	idx := twolayer.BuildRects(objects, twolayer.Options{GridSize: 8})
	queries := []twolayer.Rect{
		{MinX: 0.0, MinY: 0.0, MaxX: 0.3, MaxY: 0.3},
		{MinX: 0.0, MinY: 0.0, MaxX: 1.0, MaxY: 1.0},
	}
	fmt.Println(idx.BatchWindowCounts(queries, twolayer.TilesBased, 1))
	// Output: [1 2]
}

// Indices persist without their geometries and load back ready to query.
func ExampleIndex_Save() {
	idx := twolayer.BuildRects([]twolayer.Rect{
		{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6},
	}, twolayer.Options{GridSize: 8})

	var buf bytes.Buffer
	if _, err := idx.Save(&buf); err != nil {
		panic(err)
	}
	loaded, err := twolayer.Load(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(loaded.WindowCount(twolayer.Rect{MaxX: 1, MaxY: 1}))
	// Output: 1
}

// Per-query tracing: a traced view records counters plus stage timings
// into a private Trace — the building block for slow-query logs.
func ExampleIndex_Traced() {
	idx := twolayer.BuildRects([]twolayer.Rect{
		{MinX: 0.10, MinY: 0.10, MaxX: 0.20, MaxY: 0.20},
		{MinX: 0.50, MinY: 0.40, MaxX: 0.80, MaxY: 0.60},
	}, twolayer.Options{GridSize: 8})

	view, tr := idx.Traced()
	tr.Kind = "window"
	start := time.Now()
	n := view.WindowCount(twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	tr.Finish(start)

	fmt.Println(tr.Kind, "results:", n)
	fmt.Println("counted work:", tr.TilesVisited > 0, tr.EntriesScanned > 0)
	fmt.Println("timed:", tr.Elapsed() > 0)
	// Output:
	// window results: 2
	// counted work: true true
	// timed: true
}

// Metrics hookup: concurrent instrumented views merge into one shared
// AtomicStats, which a metrics scraper snapshots without locks.
func ExampleAtomicStats() {
	idx := twolayer.BuildRects([]twolayer.Rect{
		{MinX: 0.10, MinY: 0.10, MaxX: 0.20, MaxY: 0.20},
		{MinX: 0.50, MinY: 0.40, MaxX: 0.80, MaxY: 0.60},
	}, twolayer.Options{GridSize: 8})

	var agg twolayer.AtomicStats
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			view, stats := idx.Instrumented()
			view.WindowCount(twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
			agg.Observe(stats) // one merge per finished query
		}()
	}
	wg.Wait()

	snap := agg.Snapshot() // what a /metrics scrape reads
	fmt.Println("queries:", agg.Queries())
	fmt.Println("results:", snap.Results)
	// Output:
	// queries: 4
	// results: 8
}
