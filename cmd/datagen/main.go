// Command datagen generates dataset and query workload files in the CSV
// formats of package dataio.
//
// Usage:
//
//	datagen -kind roads -n 1000000 -out roads.csv
//	datagen -kind uniform -n 500000 -area 1e-10 -out uni.csv
//	datagen -kind zipf -n 500000 -area 1e-10 -out zipf.csv
//	datagen -kind roads -n 100000 -queries 10000 -relextent 0.001 -out q.csv
//
// With -queries set, the tool emits window queries (as rectangles) drawn
// over the generated dataset instead of the dataset itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/dataio"
	"github.com/twolayer/twolayer/internal/spatial"
)

func main() {
	kind := flag.String("kind", "uniform", "roads | edges | tiger | uniform | zipf")
	n := flag.Int("n", 100000, "dataset cardinality")
	area := flag.Float64("area", 1e-10, "object area (synthetic kinds)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	queries := flag.Int("queries", 0, "emit this many window queries instead of the dataset")
	relarea := flag.Float64("relextent", 0.001, "relative query extent (with -queries)")
	format := flag.String("format", "csv", "dataset output format: csv | wkt")
	flag.Parse()

	var d *spatial.Dataset
	switch *kind {
	case "roads":
		d = datagen.RealLikeDataset(datagen.Roads, *n, *seed)
	case "edges":
		d = datagen.RealLikeDataset(datagen.Edges, *n, *seed)
	case "tiger":
		d = datagen.RealLikeDataset(datagen.Tiger, *n, *seed)
	case "uniform":
		d = datagen.Dataset(datagen.Spec{N: *n, Area: *area, Dist: datagen.Uniform, Seed: *seed})
	case "zipf":
		d = datagen.Dataset(datagen.Spec{N: *n, Area: *area, Dist: datagen.Zipf, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var err error
	switch {
	case *queries > 0:
		qs := datagen.Windows(d, datagen.QuerySpec{N: *queries, RelExtent: *relarea, Seed: *seed + 1})
		err = dataio.WriteRects(w, qs)
	case *format == "wkt":
		err = dataio.WriteWKT(w, d)
	default:
		err = dataio.WriteDataset(w, d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := datagen.Stats(d)
	fmt.Fprintf(os.Stderr, "generated %s: card=%d avgX=%.8f avgY=%.8f\n",
		*kind, s.Cardinality, s.AvgXExtent, s.AvgYExtent)
}
