// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a machine-readable JSON report, so benchmark runs can be committed
// and diffed across revisions (the `make bench-json` target).
//
// Usage:
//
//	go test -run '^$' -bench 'Window|Disk|LiveApply' -benchmem . | benchjson -o BENCH_1.json
//	go test -bench . -benchmem . | benchjson            # auto-names BENCH_<n>.json
//
// With -o "" (the default) the output file is BENCH_<n>.json in -dir,
// where n is one past the highest existing BENCH_<n>.json — so each run
// lands next to the previous ones without clobbering them. The raw
// benchmark lines are echoed to stderr as they are consumed, keeping the
// usual progress output visible through the pipe. benchjson fails if the
// stream contains no benchmark results or reports a test failure, so a
// broken bench run cannot silently produce an empty report.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// report is the full JSON document.
type report struct {
	Generated  string   `json:"generated"`
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// nextName returns BENCH_<n>.json for the smallest n past every existing
// report in dir.
func nextName(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	max := 0
	for _, m := range matches {
		base := filepath.Base(m)
		num := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
		if n, err := strconv.Atoi(num); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

// parseLine parses one "BenchmarkX-8  N  1234 ns/op  ..." line, reporting
// ok=false for anything that is not a benchmark result.
func parseLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Iterations: iters}
	// Strip the -<GOMAXPROCS> suffix the testing package appends.
	r.Name = fields[0]
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Extra == nil {
		return result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "output file (default: next BENCH_<n>.json in -dir)")
	dir := flag.String("dir", ".", "directory scanned for existing BENCH_<n>.json reports")
	flag.Parse()

	rep := report{Generated: time.Now().UTC().Format(time.RFC3339)}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if r, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
			continue
		}
		switch key, val, found := strings.Cut(line, ": "); {
		case !found:
			if line == "FAIL" || strings.HasPrefix(line, "FAIL\t") {
				failed = true
			}
		case key == "goos":
			rep.GoOS = val
		case key == "goarch":
			rep.GoArch = val
		case key == "pkg":
			rep.Package = val
		case key == "cpu":
			rep.CPU = val
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if failed {
		fail(fmt.Errorf("benchmark run reported FAIL"))
	}
	if len(rep.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark results on stdin"))
	}

	path := *out
	if path == "" {
		var err error
		if path, err = nextName(*dir); err != nil {
			fail(err)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rep.Benchmarks), path)
}
