// Command docscheck keeps the documentation honest. It runs two checks
// and exits non-zero if either fails:
//
//  1. Metric coverage: every metric family the server registers (the
//     names served on GET /metrics) must appear verbatim in
//     docs/OBSERVABILITY.md. The name set is obtained by constructing a
//     real durable-mode server — the mode that registers every group
//     (http, query, index, partition, live, WAL, checkpoint, process) —
//     so the check cannot drift from the code.
//  2. Link integrity: every relative markdown link in README.md and
//     docs/*.md must point at a file that exists in the repository.
//
// CI runs it via `make docs-check`.
package main

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	twolayer "github.com/twolayer/twolayer"
	"github.com/twolayer/twolayer/internal/server"
)

// registeredMetricNames builds two throwaway servers — durable mode
// (http, query, index, partition, live, WAL, checkpoint, process
// groups) and sharded live mode (the twolayer_shard_* group) — and
// returns the union of their registries' family names, so every
// registerable metric family is covered.
func registeredMetricNames() ([]string, error) {
	dir, err := os.MkdirTemp("", "docscheck-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	seed := twolayer.BuildRects(
		[]twolayer.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}},
		twolayer.Options{GridSize: 4})
	dl, _, err := twolayer.OpenDurable(
		twolayer.Options{GridSize: 4},
		twolayer.LiveOptions{},
		twolayer.DurableOptions{Dir: dir, Seed: seed},
	)
	if err != nil {
		return nil, err
	}
	defer dl.Close()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := server.New(server.Config{Durable: dl, Logger: logger})

	sl, err := twolayer.NewShardedLive(
		twolayer.Options{GridSize: 4, Space: twolayer.Rect{MaxX: 1, MaxY: 1}},
		twolayer.LiveOptions{},
		twolayer.ShardedOptions{Shards: 2})
	if err != nil {
		return nil, err
	}
	defer sl.Close()
	ss := server.New(server.Config{ShardedLive: sl, Logger: logger})

	names := s.Metrics().Registry().Names()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, n := range ss.Metrics().Registry().Names() {
		if !have[n] {
			names = append(names, n)
		}
	}
	return names, nil
}

func checkMetricsDocumented(docPath string) (failures []string) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		return []string{err.Error()}
	}
	names, err := registeredMetricNames()
	if err != nil {
		return []string{fmt.Sprintf("building metric registry: %v", err)}
	}
	for _, name := range names {
		if !strings.Contains(string(doc), name) {
			failures = append(failures,
				fmt.Sprintf("metric %s is registered but not documented in %s", name, docPath))
		}
	}
	return failures
}

// linkRe matches markdown inline links; images share the syntax with a
// leading "!", which the expression tolerates.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func checkLinks(repoRoot string, files []string) (failures []string) {
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			failures = append(failures, err.Error())
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor; the file half must still exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue
				}
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if !strings.HasPrefix(target, ".") && filepath.IsAbs(target) {
				resolved = filepath.Join(repoRoot, target)
			}
			if _, err := os.Stat(resolved); err != nil {
				failures = append(failures,
					fmt.Sprintf("%s: broken link %q (resolved to %s)", file, m[1], resolved))
			}
		}
	}
	return failures
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	mdFiles := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "DESIGN.md"),
		filepath.Join(root, "EXPERIMENTS.md"),
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mdFiles = append(mdFiles, docs...)

	var failures []string
	failures = append(failures,
		checkMetricsDocumented(filepath.Join(root, "docs", "OBSERVABILITY.md"))...)
	failures = append(failures, checkLinks(root, mdFiles)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "docscheck:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: ok (%d markdown files, metric names covered)\n", len(mdFiles))
}
