// Command experiments regenerates the tables and figures of the paper's
// evaluation section on scaled-down workloads.
//
// Usage:
//
//	experiments -exp table5            # one experiment
//	experiments -exp all -scale 0.5    # everything, at half the default scale
//
// Experiment ids: table3 table4 table5 table6 fig6 fig7 fig8 fig9 fig10
// fig11 fig12, or all. Scale 1.0 corresponds to 1/20 of the paper's
// cardinalities (ROADS 1M, EDGES 3.5M, TIGER 4.9M objects).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/twolayer/twolayer/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table3..table6, fig6..fig12, ext, build, all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	budget := flag.Duration("budget", 5*time.Second, "time budget per measurement point")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	buildThreads := flag.Int("build-threads", 0, "worker count for the build experiment's parallel column (0 = NumCPU)")
	flag.Parse()

	cfg := bench.Config{
		Out:          os.Stdout,
		Scale:        *scale,
		TimePerPoint: *budget,
		Seed:         *seed,
		BuildThreads: *buildThreads,
	}
	start := time.Now()
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}
