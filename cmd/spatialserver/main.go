// Command spatialserver serves spatial queries over a two-layer index as
// a long-lived HTTP/JSON service: POST /query/{window,disk,knn,batch},
// with GET /metrics, /stats, and /healthz for observability. The index is
// built once from a dataset file (or loaded from a binary snapshot) and
// then served concurrently; with -live it additionally accepts updates on
// POST /insert, /delete, and /bulk, serving every query from an immutable
// copy-on-write snapshot. The process shuts down gracefully on SIGINT or
// SIGTERM.
//
// Usage:
//
//	spatialserver -data roads.csv -addr :8080
//	spatialserver -data roads.wkt -grid 1024 -save roads.idx
//	spatialserver -snapshot roads.idx -pprof
//	spatialserver -snapshot roads.idx -live -rebuild-every 4096
//	spatialserver -data roads.csv -data-dir /var/lib/spatial -fsync always
//	spatialserver -data-dir /var/lib/spatial   # recover and keep serving
//	spatialserver -data roads.csv -shards 8    # scatter-gather serving
//	spatialserver -data roads.csv -shards 8 -live -data-dir /var/lib/spatial
//
// With -shards N the server routes every endpoint through a sharded
// scatter-gather engine: N self-contained two-layer indices over
// contiguous slabs of the tile space, queried in parallel with
// duplicate-free merging (docs/SHARDING.md). Combined with -live each
// shard runs its own apply loop; combined with -data-dir each shard
// journals to its own write-ahead log and recovery is concurrent.
//
// With -data-dir the server runs durably: mutations are written ahead to
// a segmented log before they are acknowledged, checkpoints are taken in
// the background (and on POST /checkpoint), and startup recovers the
// acknowledged state — tolerating a torn log tail from a crash. See
// docs/DURABILITY.md for the engine and docs/SERVER.md for the API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	twolayer "github.com/twolayer/twolayer"
	"github.com/twolayer/twolayer/internal/dataio"
	"github.com/twolayer/twolayer/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// loadGeoms reads the dataset file (CSV, or WKT if the name ends in
// .wkt) and returns its geometries.
func loadGeoms(dataPath string) []twolayer.Geometry {
	f, err := os.Open(dataPath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if strings.HasSuffix(dataPath, ".wkt") {
		d, err := dataio.ReadWKT(f)
		if err != nil {
			fail(fmt.Errorf("%s: %w", dataPath, err))
		}
		return datasetGeoms(d.Len(), d.Geom)
	}
	d, err := dataio.ReadDataset(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", dataPath, err))
	}
	return datasetGeoms(d.Len(), d.Geom)
}

// loadIndex builds the index from -data (CSV or WKT, with exact
// geometries) or loads a -snapshot (MBR-only). The returned duration is
// the build/load wall time, exported as twolayer_index_build_seconds.
func loadIndex(dataPath, snapshotPath string, gridSize int, decompose bool, logger *slog.Logger) (*twolayer.Index, time.Duration) {
	switch {
	case dataPath != "" && snapshotPath != "":
		fail(fmt.Errorf("-data and -snapshot are mutually exclusive"))
	case dataPath != "":
		geoms := loadGeoms(dataPath)
		start := time.Now()
		idx := twolayer.BuildGeoms(geoms, twolayer.Options{GridSize: gridSize, Decompose: decompose})
		elapsed := time.Since(start)
		nx, ny := idx.GridDims()
		logger.Info("index built",
			"objects", idx.Len(),
			"grid", fmt.Sprintf("%dx%d", nx, ny),
			"replication", fmt.Sprintf("%.3f", idx.ReplicationFactor()),
			"elapsed", elapsed.Round(time.Millisecond))
		return idx, elapsed
	case snapshotPath != "":
		f, err := os.Open(snapshotPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		start := time.Now()
		idx, err := twolayer.Load(f)
		if err != nil {
			fail(fmt.Errorf("%s: %w", snapshotPath, err))
		}
		elapsed := time.Since(start)
		logger.Info("snapshot loaded",
			"objects", idx.Len(),
			"elapsed", elapsed.Round(time.Millisecond))
		return idx, elapsed
	}
	fail(fmt.Errorf("one of -data or -snapshot is required"))
	panic("unreachable")
}

func datasetGeoms(n int, geom func(uint32) twolayer.Geometry) []twolayer.Geometry {
	geoms := make([]twolayer.Geometry, n)
	for i := range geoms {
		geoms[i] = geom(uint32(i))
	}
	return geoms
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataPath := flag.String("data", "", "dataset file to index (CSV, or WKT if the name ends in .wkt)")
	snapshotPath := flag.String("snapshot", "", "binary index snapshot to load instead of -data (MBR queries only)")
	savePath := flag.String("save", "", "after building from -data, write a snapshot here")
	gridSize := flag.Int("grid", 0, "grid tiles per dimension (0 = auto-tune from data size)")
	decompose := flag.Bool("decompose", true, "build 2-layer+ decomposed tables")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout, "per-request evaluation deadline")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
	stats := flag.Bool("stats", true, "aggregate per-query core counters for GET /stats")
	trace := flag.Bool("trace", false, "attach a per-stage trace to every single-query response (clients can also opt in per request)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log single queries slower than this many milliseconds, with their trace (0 = off)")
	live := flag.Bool("live", false, "serve in live mode: accept updates on POST /insert, /delete, /bulk (disables exact-geometry queries)")
	shards := flag.Int("shards", 0, "serve through a scatter-gather engine with this many spatial shards (0 = unsharded, negative = one per CPU)")
	rebuildEvery := flag.Int("rebuild-every", 0, "live mode: re-run the decomposed build after this many mutations (0 = default, negative = never)")
	dataDir := flag.String("data-dir", "", "durable live mode: directory for the write-ahead log and checkpoints; implies -live, recovers automatically on startup")
	fsync := flag.String("fsync", "interval", `durable mode fsync policy: "always", "interval", or "none"`)
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "durable mode: background fsync period under -fsync=interval")
	checkpointEvery := flag.Int("checkpoint-every", 0, "durable mode: automatic checkpoint after this many mutations (0 = default 65536, negative = never)")
	segmentBytes := flag.Int64("segment-bytes", 0, "durable mode: log segment rotation threshold in bytes (0 = default 8 MiB)")
	maxInflight := flag.Int("max-inflight", 0, "admission control: concurrent requests per endpoint class (0 = default max(16, 4*GOMAXPROCS), negative = disable admission control)")
	queueDepth := flag.Int("queue-depth", 0, "admission control: waiting requests per endpoint class before shedding with 429 (0 = default 8*max-inflight, negative = no queue)")
	maxBacklog := flag.Int("max-backlog", 0, "live mode: reject mutations with 503 once this many are accepted but not yet published, per shard (0 = unbounded)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fail(fmt.Errorf("-log-level: %w", err))
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *slowQueryMS < 0 {
		fail(fmt.Errorf("-slow-query-ms must be >= 0"))
	}

	durable := *dataDir != ""
	sharded := *shards != 0
	if sharded {
		// A snapshot deserializes into a single index without the source
		// dataset, so it can neither become nor be produced from shards.
		if *snapshotPath != "" {
			fail(fmt.Errorf("-shards is incompatible with -snapshot (shards build from -data)"))
		}
		if *savePath != "" {
			fail(fmt.Errorf("-shards is incompatible with -save"))
		}
	}
	var idx *twolayer.Index
	var shardedIdx *twolayer.Sharded
	var buildDur time.Duration
	switch {
	case sharded:
		// In durable mode a data source is only a seed for an empty
		// -data-dir; a dir with prior state recovers instead.
		if !durable && *dataPath == "" {
			fail(fmt.Errorf("-shards requires -data (or -data-dir to recover)"))
		}
		if *dataPath != "" {
			geoms := loadGeoms(*dataPath)
			start := time.Now()
			shardedIdx = twolayer.BuildShardedGeoms(geoms,
				twolayer.Options{GridSize: *gridSize, Decompose: *decompose},
				twolayer.ShardedOptions{Shards: *shards})
			buildDur = time.Since(start)
			nx, ny := shardedIdx.GridDims()
			logger.Info("sharded engine built",
				"objects", shardedIdx.Len(),
				"shards", shardedIdx.Shards(),
				"grid", fmt.Sprintf("%dx%d", nx, ny),
				"replication", fmt.Sprintf("%.3f", shardedIdx.ReplicationFactor()),
				"elapsed", buildDur.Round(time.Millisecond))
		}
	case !durable || *dataPath != "" || *snapshotPath != "":
		idx, buildDur = loadIndex(*dataPath, *snapshotPath, *gridSize, *decompose, logger)
	}
	if *savePath != "" {
		if *dataPath == "" {
			fail(fmt.Errorf("-save requires -data"))
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fail(err)
		}
		n, err := idx.Save(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fail(fmt.Errorf("saving snapshot: %w", err))
		}
		logger.Info("snapshot saved", "path", *savePath, "bytes", n)
	}

	cfg := server.Config{
		Logger:             logger,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		CollectStats:       *stats,
		EnableTracing:      *trace,
		SlowQueryThreshold: time.Duration(*slowQueryMS) * time.Millisecond,
		BuildDuration:      buildDur,
		EnablePprof:        *pprofFlag,
		MaxInflight:        *maxInflight,
		QueueDepth:         *queueDepth,
	}
	if *maxBacklog < 0 {
		fail(fmt.Errorf("-max-backlog must be >= 0"))
	}
	switch {
	case durable && sharded:
		policy, err := twolayer.ParseSyncPolicy(*fsync)
		if err != nil {
			fail(err)
		}
		dl, infos, err := twolayer.OpenShardedDurable(
			twolayer.Options{GridSize: *gridSize, Decompose: *decompose},
			twolayer.LiveOptions{RebuildEvery: *rebuildEvery, MaxBacklog: *maxBacklog},
			twolayer.ShardedDurableOptions{
				Dir:             *dataDir,
				Fsync:           policy,
				FsyncInterval:   *fsyncInterval,
				CheckpointEvery: *checkpointEvery,
				SegmentBytes:    *segmentBytes,
				Seed:            shardedIdx,
				Logger:          logger,
			},
			twolayer.ShardedOptions{Shards: *shards})
		if err != nil {
			if shardedIdx == nil {
				err = fmt.Errorf("%w (a fresh -data-dir needs -data to seed it)", err)
			}
			fail(err)
		}
		defer dl.Close()
		cfg.ShardedDurable = dl
		replayed := 0
		for _, info := range infos {
			replayed += info.ReplayedRecords
		}
		logger.Info("sharded durable live mode",
			"dir", *dataDir,
			"fsync", policy.String(),
			"shards", dl.Live().Shards(),
			"objects", dl.Snapshot().Len(),
			"replayed_records", replayed)
	case durable:
		policy, err := twolayer.ParseSyncPolicy(*fsync)
		if err != nil {
			fail(err)
		}
		dl, info, err := twolayer.OpenDurable(
			twolayer.Options{GridSize: *gridSize, Decompose: *decompose},
			twolayer.LiveOptions{RebuildEvery: *rebuildEvery, MaxBacklog: *maxBacklog},
			twolayer.DurableOptions{
				Dir:             *dataDir,
				Fsync:           policy,
				FsyncInterval:   *fsyncInterval,
				CheckpointEvery: *checkpointEvery,
				SegmentBytes:    *segmentBytes,
				Seed:            idx,
				Logger:          logger,
			})
		if err != nil {
			if idx == nil {
				err = fmt.Errorf("%w (a fresh -data-dir needs -data or -snapshot to seed it)", err)
			}
			fail(err)
		}
		defer dl.Close()
		cfg.Durable = dl
		logger.Info("durable live mode",
			"dir", *dataDir,
			"fsync", policy.String(),
			"objects", dl.Snapshot().Len(),
			"recovered_epoch", info.Epoch,
			"checkpoint_loaded", info.CheckpointLoaded,
			"replayed_records", info.ReplayedRecords,
			"truncated_tail", info.TruncatedTail)
	case *live && sharded:
		lv := twolayer.ShardedLiveFrom(shardedIdx, twolayer.LiveOptions{RebuildEvery: *rebuildEvery, MaxBacklog: *maxBacklog})
		defer lv.Close()
		cfg.ShardedLive = lv
		logger.Info("sharded live mode", "shards", lv.Shards(), "rebuild_every", *rebuildEvery)
	case *live:
		lv := twolayer.LiveFrom(idx, twolayer.LiveOptions{RebuildEvery: *rebuildEvery, MaxBacklog: *maxBacklog})
		defer lv.Close()
		cfg.Live = lv
		logger.Info("live mode", "rebuild_every", *rebuildEvery)
	default:
		if *rebuildEvery != 0 {
			fail(fmt.Errorf("-rebuild-every requires -live"))
		}
		if *maxBacklog != 0 {
			fail(fmt.Errorf("-max-backlog requires -live"))
		}
		if sharded {
			cfg.Sharded = shardedIdx
		} else {
			cfg.Index = idx
		}
	}
	srv := server.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	// Log the effective topology, not the raw flags: -data-dir implies
	// live mode, and on recovery the manifest's shard count supersedes
	// -shards.
	effLive := cfg.Live != nil || cfg.Durable != nil ||
		cfg.ShardedLive != nil || cfg.ShardedDurable != nil
	effShards := 0
	switch {
	case cfg.Sharded != nil:
		effShards = cfg.Sharded.Shards()
	case cfg.ShardedLive != nil:
		effShards = cfg.ShardedLive.Shards()
	case cfg.ShardedDurable != nil:
		effShards = cfg.ShardedDurable.Live().Shards()
	}
	logger.Info("serving", "addr", *addr, "pprof", *pprofFlag, "stats", *stats,
		"trace", *trace, "slow_query_ms", *slowQueryMS, "live", effLive,
		"shards", effShards, "timeout", *timeout)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fail(err)
	}
	logger.Info("shutdown complete")
}
