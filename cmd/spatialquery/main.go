// Command spatialquery loads a dataset file (building a two-layer index)
// or a binary index snapshot, and answers window or disk queries from the
// command line or from a query file, printing result counts and timings.
//
// Usage:
//
//	spatialquery -data roads.csv -window 0.4,0.4,0.45,0.45
//	spatialquery -data roads.csv -disk 0.5,0.5,0.01 -exact
//	spatialquery -data roads.csv -queryfile q.csv -grid 1024
//	spatialquery -snapshot roads.idx -window 0.4,0.4,0.45,0.45
//
// Snapshots (written by Index.Save, spatialserver -save, or a durability
// checkpoint) carry MBRs only, so -exact requires -data.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	twolayer "github.com/twolayer/twolayer"
	"github.com/twolayer/twolayer/internal/dataio"
	"github.com/twolayer/twolayer/internal/spatial"
)

// spatialDataset aliases the loaded dataset type for readability.
type spatialDataset = spatial.Dataset

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func parseFloats(s string, n int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated numbers, have %d", n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	dataPath := flag.String("data", "", "dataset file (dataio format)")
	snapshotPath := flag.String("snapshot", "", "binary index snapshot to load instead of -data (MBR queries only)")
	gridSize := flag.Int("grid", 1024, "grid tiles per dimension")
	decompose := flag.Bool("decompose", true, "build 2-layer+ decomposed tables")
	window := flag.String("window", "", "one window query: minx,miny,maxx,maxy")
	disk := flag.String("disk", "", "one disk query: cx,cy,radius")
	knn := flag.String("knn", "", "one kNN query: cx,cy,k")
	queryFile := flag.String("queryfile", "", "file of window queries (rect CSV)")
	exact := flag.Bool("exact", false, "run exact-geometry queries (refinement)")
	flag.Parse()

	var idx *twolayer.Index
	switch {
	case *dataPath != "" && *snapshotPath != "":
		fail(fmt.Errorf("-data and -snapshot are mutually exclusive"))
	case *snapshotPath != "":
		if *exact {
			fail(fmt.Errorf("-exact requires -data: snapshots carry MBRs, not exact geometries"))
		}
		f, err := os.Open(*snapshotPath)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		loaded, err := twolayer.Load(f)
		f.Close()
		if err != nil {
			fail(fmt.Errorf("%s: %w", *snapshotPath, err))
		}
		idx = loaded
		fmt.Printf("loaded snapshot of %d objects in %v (replication %.3f)\n",
			idx.Len(), time.Since(start).Round(time.Millisecond), idx.ReplicationFactor())
	case *dataPath != "":
		f, err := os.Open(*dataPath)
		if err != nil {
			fail(err)
		}
		var d *spatialDataset
		if strings.HasSuffix(*dataPath, ".wkt") {
			ds, err2 := dataio.ReadWKT(f)
			f.Close()
			if err2 != nil {
				fail(err2)
			}
			d = ds
		} else {
			ds, err2 := dataio.ReadDataset(f)
			f.Close()
			if err2 != nil {
				fail(err2)
			}
			d = ds
		}
		geoms := make([]twolayer.Geometry, d.Len())
		for i := range geoms {
			geoms[i] = d.Geom(uint32(i))
		}
		start := time.Now()
		idx = twolayer.BuildGeoms(geoms, twolayer.Options{GridSize: *gridSize, Decompose: *decompose})
		fmt.Printf("indexed %d objects in %v (replication %.3f)\n",
			idx.Len(), time.Since(start).Round(time.Millisecond), idx.ReplicationFactor())
	default:
		fail(fmt.Errorf("one of -data or -snapshot is required"))
	}

	runWindow := func(w twolayer.Rect) {
		start := time.Now()
		n := 0
		if *exact {
			idx.WindowExact(w, twolayer.RefineAvoidPlus, func(twolayer.ID) { n++ })
		} else {
			n = idx.WindowCount(w)
		}
		fmt.Printf("window %v -> %d results in %v\n", w, n, time.Since(start))
	}

	switch {
	case *window != "":
		v, err := parseFloats(*window, 4)
		if err != nil {
			fail(err)
		}
		runWindow(twolayer.Rect{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]})
	case *disk != "":
		v, err := parseFloats(*disk, 3)
		if err != nil {
			fail(err)
		}
		c := twolayer.Point{X: v[0], Y: v[1]}
		start := time.Now()
		n := 0
		if *exact {
			idx.DiskExact(c, v[2], twolayer.RefineAvoid, func(twolayer.ID) { n++ })
		} else {
			n = idx.DiskCount(c, v[2])
		}
		fmt.Printf("disk (%g,%g) r=%g -> %d results in %v\n", v[0], v[1], v[2], n, time.Since(start))
	case *knn != "":
		v, err := parseFloats(*knn, 3)
		if err != nil {
			fail(err)
		}
		start := time.Now()
		var results []twolayer.Neighbor
		if *exact {
			results = idx.KNNExact(twolayer.Point{X: v[0], Y: v[1]}, int(v[2]))
		} else {
			results = idx.KNN(twolayer.Point{X: v[0], Y: v[1]}, int(v[2]))
		}
		el := time.Since(start)
		for _, n := range results {
			fmt.Printf("id=%d dist=%.8f\n", n.ID, n.Dist)
		}
		fmt.Printf("%d neighbors in %v\n", len(results), el)
	case *queryFile != "":
		qf, err := os.Open(*queryFile)
		if err != nil {
			fail(err)
		}
		queries, err := dataio.ReadRects(qf)
		qf.Close()
		if err != nil {
			fail(err)
		}
		start := time.Now()
		total := 0
		for _, w := range queries {
			total += idx.WindowCount(w)
		}
		el := time.Since(start)
		fmt.Printf("%d queries, %d total results, %v (%.0f queries/s)\n",
			len(queries), total, el.Round(time.Millisecond),
			float64(len(queries))/el.Seconds())
	default:
		fail(fmt.Errorf("one of -window, -disk, -knn, -queryfile is required"))
	}
}
