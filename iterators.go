package twolayer

import (
	"iter"

	"github.com/twolayer/twolayer/internal/spatial"
)

// This file provides range-over-func iterator forms of the streaming
// queries, so callers can write
//
//	for id, mbr := range idx.WindowAll(w) { ... }
//
// with early break supported. The iterators are thin adapters over the
// callback forms (WindowUntil, DiskUntil, KNN) — same results, same
// order, same cost; breaking out of the loop terminates the underlying
// scan at tile granularity. On an Instrumented or Traced view the
// adapters feed the view's Stats/Trace exactly like the callback forms,
// since all counting happens below them in the core scan.

// WindowAll returns an iterator over (id, mbr) of every object whose MBR
// intersects w, each exactly once. Breaking out of the loop stops the
// scan (tile-granular, like WindowUntil).
func (ix *Index) WindowAll(w Rect) iter.Seq2[ID, Rect] {
	return func(yield func(ID, Rect) bool) {
		ix.core.WindowUntil(w, func(e spatial.Entry) bool { return yield(e.ID, e.Rect) })
	}
}

// DiskAll returns an iterator over (id, mbr) of every object whose MBR
// intersects the disk with the given center and radius, each exactly
// once. Breaking out of the loop stops the scan.
func (ix *Index) DiskAll(center Point, radius float64) iter.Seq2[ID, Rect] {
	return func(yield func(ID, Rect) bool) {
		ix.core.DiskUntil(center, radius, func(e spatial.Entry) bool { return yield(e.ID, e.Rect) })
	}
}

// KNNAll returns an iterator over (id, distance) of the k objects whose
// MBRs are nearest to q, ascending by distance. The underlying search
// runs up front (kNN has no streaming evaluation); like KNN it requires
// external synchronization or a per-goroutine ReadView.
func (ix *Index) KNNAll(q Point, k int) iter.Seq2[ID, float64] {
	return func(yield func(ID, float64) bool) {
		for _, n := range ix.core.KNN(q, k) {
			if !yield(n.ID, n.Dist) {
				return
			}
		}
	}
}

// DiskUntil streams disk-query results until fn returns false, reporting
// whether the query ran to completion. Termination is tile-granular, like
// WindowUntil.
func (ix *Index) DiskUntil(center Point, radius float64, fn func(id ID, mbr Rect) bool) bool {
	return ix.core.DiskUntil(center, radius, func(e spatial.Entry) bool { return fn(e.ID, e.Rect) })
}
