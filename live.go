package twolayer

import (
	"errors"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/spatial"
)

// ErrLiveClosed is returned for mutations submitted to a closed Live
// index.
var ErrLiveClosed = core.ErrLiveClosed

// ErrBacklogFull is returned for mutations submitted while the apply
// loop's pending backlog is at LiveOptions.MaxBacklog (per shard on a
// sharded engine). Nothing is enqueued; back off and retry once the
// backlog drains.
var ErrBacklogFull = core.ErrBacklogFull

// LiveOptions tune a Live index's single-writer apply loop.
type LiveOptions struct {
	// MaxBatch caps the mutations applied per published snapshot. Larger
	// batches amortize the per-publish copy-on-write clone over more
	// mutations; smaller ones reduce writer-observed latency. Defaults
	// to 256.
	MaxBatch int
	// QueueDepth is the capacity of the mutation queue; submissions
	// beyond it block (backpressure). Defaults to 1024.
	QueueDepth int
	// RebuildEvery re-runs the 2-layer+ decomposed-table build after this
	// many applied mutations on indices built with Options.Decompose.
	// 0 means the default of 4096; negative disables rebuilding. The
	// rebuilds honor Options.BuildThreads, so a multi-core server can
	// redecompose large indices in parallel inside the apply loop.
	RebuildEvery int
	// MaxBacklog bounds the accepted-but-unpublished mutation backlog
	// (per shard on a sharded engine): a submission arriving while the
	// backlog is at the bound fails immediately with ErrBacklogFull
	// instead of queuing, so a mutation flood sheds load instead of
	// growing memory without bound. 0 means unbounded.
	MaxBacklog int
}

func (o LiveOptions) toCore() core.LiveOptions {
	return core.LiveOptions{
		MaxBatch:     o.MaxBatch,
		QueueDepth:   o.QueueDepth,
		RebuildEvery: o.RebuildEvery,
		MaxBacklog:   o.MaxBacklog,
	}
}

// Mutation is one pending update for Live.Apply: an insertion of (ID,
// MBR), or — when Delete is set — the removal of the object with that ID
// and exact MBR.
type Mutation struct {
	Delete bool
	ID     ID
	MBR    Rect
}

// ApplyResult reports the outcome of a published mutation batch: the
// epoch that made it visible and, per mutation, whether a delete found
// its object (inserts are always true).
type ApplyResult = core.ApplyResult

// LiveStats is a point-in-time view of a Live index's apply loop: the
// current snapshot epoch and size, the pending-mutation backlog, totals
// of applied mutations, publishes and decomposed rebuilds, and the size
// and wall time of the most recent publish.
type LiveStats = core.LiveStats

// Live is an updatable index serving lock-free concurrent reads with
// MVCC-style snapshot isolation. Readers call Snapshot — one atomic load
// — and query the returned immutable Index like a static one; writers
// submit mutations that a single apply goroutine batches, applies
// copy-on-write (only touched tiles clone their entry storage), and
// publishes atomically as the next epoch. A mutation call returns once
// its batch is published, so the caller observes its own write in every
// later Snapshot. All methods are safe for concurrent use.
//
//	live, _ := twolayer.NewLive(twolayer.Options{
//		GridSize: 64,
//		Space:    twolayer.Rect{MaxX: 1, MaxY: 1},
//	}, twolayer.LiveOptions{})
//	defer live.Close()
//	live.Insert(1, twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2})
//	snap := live.Snapshot() // immutable; safe to query from any goroutine
//	n := snap.WindowCount(twolayer.Rect{MaxX: 0.5, MaxY: 0.5})
type Live struct {
	live *core.Live
}

// NewLive returns an empty Live index over the given space. Options.Space
// must be set (there is no data to derive it from); invalid options are
// reported as an error.
func NewLive(opts Options, lo LiveOptions) (*Live, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Space == (Rect{}) {
		return nil, errors.New("twolayer: NewLive requires Options.Space (no data to derive it from)")
	}
	return &Live{live: core.NewLive(core.New(opts.toCore()), lo.toCore())}, nil
}

// LiveFrom wraps an already built index (BuildRects, BuildGeoms, New, or
// Load), which becomes the epoch-0 snapshot. LiveFrom takes ownership:
// the caller must not query or update ix directly afterward. Snapshots
// serve the filtering layer (MBR queries) only — exact-geometry queries
// are unavailable, since geometries cannot be attached to objects
// inserted later.
func LiveFrom(ix *Index, lo LiveOptions) *Live {
	return &Live{live: core.NewLive(ix.core, lo.toCore())}
}

// Snapshot returns the current published snapshot as a private read view:
// immutable, consistent (it never reflects later mutations), and safe for
// all queries — including KNN and iterator methods — without further
// synchronization. Pin one snapshot per request or unit of work.
func (l *Live) Snapshot() *Index {
	return &Index{core: l.live.Snapshot().View(nil)}
}

// Insert adds an object and blocks until the insertion is published,
// returning the epoch that made it visible. Unlike Index.Insert, an
// invalid rectangle is reported as an error, not a panic.
func (l *Live) Insert(id ID, mbr Rect) (epoch uint64, err error) {
	return l.live.Insert(spatial.Entry{ID: id, Rect: mbr})
}

// Delete removes the object with the given ID and the exact MBR it was
// inserted with, blocking until the removal is published. It reports
// whether the object was found and the publishing epoch.
func (l *Live) Delete(id ID, mbr Rect) (found bool, epoch uint64, err error) {
	return l.live.Delete(id, mbr)
}

// Apply submits a batch of mutations published together in one snapshot
// (all-or-nothing visibility), blocking until they are visible. If any
// mutation carries an invalid rectangle the whole batch is rejected with
// an error and nothing is applied.
func (l *Live) Apply(muts []Mutation) (ApplyResult, error) {
	cms := make([]core.Mutation, len(muts))
	for i, m := range muts {
		cms[i] = core.Mutation{
			Delete: m.Delete,
			Entry:  spatial.Entry{ID: m.ID, Rect: m.MBR},
		}
	}
	return l.live.Apply(cms)
}

// Len returns the number of objects in the current snapshot.
func (l *Live) Len() int { return l.live.Snapshot().Len() }

// Stats returns the apply loop's monitoring counters.
func (l *Live) Stats() LiveStats { return l.live.Stats() }

// Close drains accepted mutations, publishes them, and stops the apply
// goroutine. Later mutations fail with ErrLiveClosed; Snapshot keeps
// serving the final state. Close is idempotent.
func (l *Live) Close() { l.live.Close() }
