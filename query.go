package twolayer

import (
	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Query is the unified query descriptor of the public API: one shape
// (window, disk, or arbitrary region), an optional exact-geometry
// refinement step, and an optional result limit. It is the single input
// to Search, SearchIDs, and SearchCount on every query surface — Index,
// Sharded, and the /v1 HTTP API share it — and the historical
// shape-specific variants (Window*, Disk*, *Exact, *Until) are thin
// legacy wrappers over it.
//
//	ids, err := ix.SearchIDs(twolayer.Query{Window: &w}, nil)
//	n, err := ix.SearchCount(twolayer.Query{Disk: &twolayer.Disk{Center: c, Radius: r}})
type Query struct {
	// Exactly one of Window, Disk, and Region must be set.
	Window *Rect
	Disk   *Disk
	Region Region

	// Exact refines candidates against the exact object geometries
	// (requires BuildRects/BuildGeoms; unsupported for Region shapes).
	Exact bool
	// Mode selects the refinement strategy of an Exact query; the zero
	// value is RefineSimple, RefineAvoidPlus is the paper's recommended
	// default.
	Mode RefineMode
	// Limit > 0 stops the query after that many results (the query is
	// then reported incomplete); 0 means unlimited.
	Limit int
	// Trace asks serving layers (the HTTP server) to record per-query
	// observability data. Search itself ignores it — in-process callers
	// trace with Index.Traced or Sharded.Traced views.
	Trace bool
}

func (q Query) toCore() core.Query {
	return core.Query{
		Window: q.Window,
		Disk:   q.Disk,
		Region: q.Region,
		Exact:  q.Exact,
		Mode:   q.Mode,
		Limit:  q.Limit,
	}
}

// Validate reports why the descriptor cannot be evaluated, or nil.
// Shape coordinates are not validated: like the legacy entry points, a
// NaN or inverted shape yields an empty result.
func (q Query) Validate() error { return q.toCore().Validate() }

// Search evaluates q and streams every matching object to fn, which
// returns false to stop early (termination is tile-granular, like
// WindowUntil). Each match is delivered exactly once; exact queries
// deliver the object's MBR alongside its ID like filtering queries do.
// It reports whether the query ran to completion — false when fn stopped
// it or Limit was reached — and a non-nil error only for an invalid
// descriptor (wrong shape count, negative limit, exact without
// geometries).
func (ix *Index) Search(q Query, fn func(id ID, mbr Rect) bool) (complete bool, err error) {
	return ix.core.Search(q.toCore(), func(e spatial.Entry) bool {
		return fn(e.ID, e.Rect)
	})
}

// SearchIDs evaluates q and returns the IDs of all matching objects,
// appending to buf (which may be nil).
func (ix *Index) SearchIDs(q Query, buf []ID) ([]ID, error) {
	return ix.core.SearchIDs(q.toCore(), buf)
}

// SearchCount evaluates q and returns the number of matching objects; a
// Limit caps the count like it caps streamed results.
func (ix *Index) SearchCount(q Query) (int, error) {
	return ix.core.SearchCount(q.toCore())
}
