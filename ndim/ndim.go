// Package ndim is the public surface of the library's m-dimensional
// two-layer index (Section IV-D of the paper): minimum bounding boxes of
// any dimensionality are partitioned over a regular grid whose tiles keep
// 2^m secondary classes, one per subset of dimensions in which a box
// begins before the tile. Window queries skip, per tile, every class that
// can only produce duplicates, exactly as the 2D index does with its four
// classes.
//
// Typical uses are spatio-temporal data (x, y, time as a 3D box) and
// low-dimensional feature boxes. For the plane, use the root twolayer
// package, which is specialized and faster.
package ndim

import (
	"github.com/twolayer/twolayer/internal/ndgrid"
)

// MBB is an m-dimensional minimum bounding box.
type MBB = ndgrid.MBB

// Entry is an (MBB, id) pair.
type Entry = ndgrid.Entry

// Options configure index construction.
type Options = ndgrid.Options

// Index is the m-dimensional two-layer grid index.
type Index struct {
	inner *ndgrid.Index
}

// New creates an empty index over Options.Space.
func New(opts Options) (*Index, error) {
	inner, err := ndgrid.New(opts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// Build constructs an index over entries.
func Build(entries []Entry, opts Options) (*Index, error) {
	inner, err := ndgrid.Build(entries, opts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int { return ix.inner.Len() }

// Dims returns the dimensionality.
func (ix *Index) Dims() int { return ix.inner.Dims() }

// Insert adds one object.
func (ix *Index) Insert(e Entry) error { return ix.inner.Insert(e) }

// Window invokes fn exactly once for every object whose box intersects w.
func (ix *Index) Window(w MBB, fn func(e Entry)) error { return ix.inner.Window(w, fn) }

// WindowCount returns the number of boxes intersecting w.
func (ix *Index) WindowCount(w MBB) (int, error) { return ix.inner.WindowCount(w) }

// Ball invokes fn exactly once for every object whose box comes within
// radius (Euclidean) of center — the m-dimensional disk query.
func (ix *Index) Ball(center []float64, radius float64, fn func(e Entry)) error {
	return ix.inner.Ball(center, radius, fn)
}

// BallCount returns the number of boxes within radius of center.
func (ix *Index) BallCount(center []float64, radius float64) (int, error) {
	return ix.inner.BallCount(center, radius)
}

// Box is a convenience constructor for an MBB.
func Box(min, max []float64) MBB { return MBB{Min: min, Max: max} }
