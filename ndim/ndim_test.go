package ndim_test

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/ndim"
)

func TestPublicNDimAPI(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	space := ndim.Box([]float64{0, 0, 0}, []float64{1, 1, 1})
	entries := make([]ndim.Entry, 500)
	for i := range entries {
		x, y, z := rnd.Float64(), rnd.Float64(), rnd.Float64()
		entries[i] = ndim.Entry{
			Box: ndim.Box([]float64{x, y, z}, []float64{x + 0.05, y + 0.05, z + 0.05}),
			ID:  uint32(i),
		}
	}
	idx, err := ndim.Build(entries, ndim.Options{Space: space, Tiles: 8})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 500 || idx.Dims() != 3 {
		t.Fatalf("Len=%d Dims=%d", idx.Len(), idx.Dims())
	}

	for q := 0; q < 50; q++ {
		x, y, z := rnd.Float64(), rnd.Float64(), rnd.Float64()
		w := ndim.Box([]float64{x, y, z}, []float64{x + 0.2, y + 0.2, z + 0.2})
		want := 0
		for _, e := range entries {
			if e.Box.Intersects(w) {
				want++
			}
		}
		got, err := idx.WindowCount(w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}

	// Dynamic insert through the public API.
	fresh, err := ndim.New(ndim.Options{Space: space, Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Insert(entries[0]); err != nil {
		t.Fatal(err)
	}
	n, err := fresh.WindowCount(space)
	if err != nil || n != 1 {
		t.Fatalf("after insert: n=%d err=%v", n, err)
	}
	// Errors surface instead of panicking.
	if _, err := ndim.New(ndim.Options{}); err == nil {
		t.Error("missing space must error")
	}
	if err := fresh.Insert(ndim.Entry{Box: ndim.Box([]float64{0}, []float64{1})}); err == nil {
		t.Error("wrong-dimension insert must error")
	}
}
