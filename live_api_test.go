package twolayer_test

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

var unitSpace = twolayer.Rect{MaxX: 1, MaxY: 1}

func TestLivePublicAPI(t *testing.T) {
	l, err := twolayer.NewLive(twolayer.Options{GridSize: 16, Space: unitSpace}, twolayer.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	e1, err := l.Insert(1, twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if e1 == 0 {
		t.Fatal("publish epoch should be > 0")
	}
	old := l.Snapshot()

	res, err := l.Apply([]twolayer.Mutation{
		{ID: 2, MBR: twolayer.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.6, MaxY: 0.6}},
		{Delete: true, ID: 1, MBR: twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}},
		{Delete: true, ID: 99, MBR: twolayer.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.4, MaxY: 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found[0] || !res.Found[1] || res.Found[2] {
		t.Fatalf("Found = %v, want [true true false]", res.Found)
	}
	if res.Epoch <= e1 {
		t.Fatalf("epoch %d did not advance past %d", res.Epoch, e1)
	}

	// Pinned snapshot is unaffected; a fresh one sees the batch.
	if got := old.WindowIDs(unitSpace, nil); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pinned snapshot = %v, want [1]", got)
	}
	snap := l.Snapshot()
	if got := sorted(snap.WindowIDs(unitSpace, nil)); len(got) != 1 || got[0] != 2 {
		t.Fatalf("fresh snapshot = %v, want [2]", got)
	}
	if snap.Epoch() != res.Epoch {
		t.Fatalf("snapshot epoch %d, want %d", snap.Epoch(), res.Epoch)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}

	// Invalid rectangle rejected as an error, batch untouched.
	if _, err := l.Insert(3, twolayer.Rect{MinX: 1, MaxX: 0}); err == nil {
		t.Fatal("want error for invalid rect")
	}

	st := l.Stats()
	if st.Objects != 1 || st.Applied != 4 {
		t.Fatalf("stats %+v, want Objects 1 Applied 4", st)
	}

	l.Close()
	if _, err := l.Insert(4, twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}); !errors.Is(err, twolayer.ErrLiveClosed) {
		t.Fatalf("err = %v, want ErrLiveClosed", err)
	}
}

func TestLiveFromBuiltIndex(t *testing.T) {
	rects := []twolayer.Rect{
		{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2},
		{MinX: 0.7, MinY: 0.7, MaxX: 0.8, MaxY: 0.8},
	}
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 8, Space: unitSpace})
	l := twolayer.LiveFrom(idx, twolayer.LiveOptions{})
	defer l.Close()

	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if _, err := l.Insert(10, twolayer.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	if got := sorted(snap.WindowIDs(unitSpace, nil)); len(got) != 3 || got[2] != 10 {
		t.Fatalf("snapshot = %v, want [0 1 10]", got)
	}
	// Snapshots answer kNN without extra synchronization.
	nb := snap.KNN(twolayer.Point{X: 0.45, Y: 0.45}, 1)
	if len(nb) != 1 || nb[0].ID != 10 {
		t.Fatalf("KNN = %v, want object 10", nb)
	}
}

func TestNewLiveValidation(t *testing.T) {
	if _, err := twolayer.NewLive(twolayer.Options{GridSize: 16}, twolayer.LiveOptions{}); err == nil {
		t.Fatal("want error when Space is unset")
	}
	if _, err := twolayer.NewLive(twolayer.Options{GridSize: -1, Space: unitSpace}, twolayer.LiveOptions{}); err == nil {
		t.Fatal("want error for negative GridSize")
	}
}

func TestIterators(t *testing.T) {
	rects := []twolayer.Rect{
		{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2},
		{MinX: 0.15, MinY: 0.15, MaxX: 0.3, MaxY: 0.3},
		{MinX: 0.7, MinY: 0.7, MaxX: 0.8, MaxY: 0.8},
	}
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 8})

	var winIDs []twolayer.ID
	for id, mbr := range idx.WindowAll(twolayer.Rect{MaxX: 0.5, MaxY: 0.5}) {
		if mbr != rects[id] {
			t.Fatalf("iterator MBR %v does not match rects[%d]", mbr, id)
		}
		winIDs = append(winIDs, id)
	}
	if got := sorted(winIDs); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("WindowAll = %v, want [0 1]", got)
	}

	// Early break terminates the scan.
	n := 0
	for range idx.WindowAll(unitSpace) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break yielded %d results, want 1", n)
	}

	var diskIDs []twolayer.ID
	for id := range idx.DiskAll(twolayer.Point{X: 0.75, Y: 0.75}, 0.1) {
		diskIDs = append(diskIDs, id)
	}
	if len(diskIDs) != 1 || diskIDs[0] != 2 {
		t.Fatalf("DiskAll = %v, want [2]", diskIDs)
	}

	q := twolayer.Point{X: 0.0, Y: 0.0}
	var knnIDs []twolayer.ID
	var dists []float64
	for id, d := range idx.KNNAll(q, 2) {
		knnIDs = append(knnIDs, id)
		dists = append(dists, d)
	}
	want := idx.KNN(q, 2)
	if len(knnIDs) != len(want) {
		t.Fatalf("KNNAll yielded %d, want %d", len(knnIDs), len(want))
	}
	for i := range want {
		if knnIDs[i] != want[i].ID || math.Abs(dists[i]-want[i].Dist) > 1e-12 {
			t.Fatalf("KNNAll[%d] = (%d, %g), want (%d, %g)", i, knnIDs[i], dists[i], want[i].ID, want[i].Dist)
		}
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatalf("KNNAll distances not ascending: %v", dists)
	}
}

func TestDiskUntilPublic(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	rects := randRects(rnd, 500, 0.05)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 16})
	c, radius := twolayer.Point{X: 0.5, Y: 0.5}, 0.3

	var all []twolayer.ID
	complete := idx.DiskUntil(c, radius, func(id twolayer.ID, _ twolayer.Rect) bool {
		all = append(all, id)
		return true
	})
	if !complete {
		t.Fatal("unterminated DiskUntil should report completion")
	}
	want := idx.DiskIDs(c, radius, nil)
	if len(all) != len(want) {
		t.Fatalf("DiskUntil yielded %d results, DiskIDs %d", len(all), len(want))
	}

	n := 0
	complete = idx.DiskUntil(c, radius, func(twolayer.ID, twolayer.Rect) bool {
		n++
		return n < 3
	})
	if complete || n != 3 {
		t.Fatalf("early termination: complete=%v n=%d, want false 3", complete, n)
	}
}

func TestErrAPIs(t *testing.T) {
	if err := (twolayer.Options{GridSize: -2}).Validate(); err == nil {
		t.Fatal("want error for negative GridSize")
	}
	if err := (twolayer.Options{GridSize: 16}).Validate(); err != nil {
		t.Fatal(err)
	}

	if _, err := twolayer.BuildRectsErr(nil, twolayer.Options{GridSize: -1}); err == nil {
		t.Fatal("want error from BuildRectsErr on invalid options")
	}
	idx, err := twolayer.BuildRectsErr(randRects(rand.New(rand.NewSource(7)), 100, 0.05), twolayer.Options{GridSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 100 {
		t.Fatalf("Len = %d, want 100", idx.Len())
	}

	// Self-join and grid-mismatch become errors instead of panics.
	if err := idx.JoinErr(idx, func(_, _ twolayer.ID) {}); !errors.Is(err, twolayer.ErrSelfJoin) {
		t.Fatalf("err = %v, want ErrSelfJoin", err)
	}
	other := twolayer.BuildRects(randRects(rand.New(rand.NewSource(7)), 50, 0.05), twolayer.Options{GridSize: 4})
	if err := idx.JoinErr(other, func(_, _ twolayer.ID) {}); !errors.Is(err, twolayer.ErrGridMismatch) {
		t.Fatalf("err = %v, want ErrGridMismatch", err)
	}
	if err := idx.JoinParallelErr(other, 4, func(_, _ twolayer.ID) {}); !errors.Is(err, twolayer.ErrGridMismatch) {
		t.Fatalf("err = %v, want ErrGridMismatch", err)
	}

	// Compatible grids: JoinErr agrees with JoinCount.
	sameGrid := twolayer.BuildRects(randRects(rand.New(rand.NewSource(7)), 50, 0.05), twolayer.Options{
		GridSize: 8, Space: idx.Space(),
	})
	pairs := 0
	if err := idx.JoinErr(sameGrid, func(_, _ twolayer.ID) { pairs++ }); err != nil {
		t.Fatal(err)
	}
	if want := idx.JoinCount(sameGrid); pairs != want {
		t.Fatalf("JoinErr visited %d pairs, JoinCount %d", pairs, want)
	}
}
