// Benchmarks regenerating the paper's evaluation, one per table and
// figure, at a fixed small scale so `go test -bench=.` terminates in
// minutes. The cmd/experiments binary runs the same experiments at full
// (scaled) size with paper-style result tables; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package twolayer_test

import (
	"io"
	"log/slog"
	"math"
	"sync"
	"testing"

	twolayer "github.com/twolayer/twolayer"
	"github.com/twolayer/twolayer/internal/block"
	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/distsim"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/onelayer"
	"github.com/twolayer/twolayer/internal/quadtree"
	"github.com/twolayer/twolayer/internal/rtree"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Benchmark scale: objects per dataset and queries per workload.
const (
	benchCard    = 200_000
	benchQueries = 2_000
	benchGrid    = 512
	benchSeed    = 20210419
)

var (
	benchOnce    sync.Once
	benchRoads   *spatial.Dataset
	benchEdges   *spatial.Dataset
	benchWindows []geom.Rect // 0.1% relative extent over ROADS
	benchDisks   []geom.Disk
	benchSink    int
)

func benchData() {
	benchOnce.Do(func() {
		benchRoads = datagen.RealLikeDataset(datagen.Roads, benchCard, benchSeed)
		benchEdges = datagen.RealLikeDataset(datagen.Edges, benchCard, benchSeed+1)
		benchWindows = datagen.Windows(benchRoads, datagen.QuerySpec{
			N: benchQueries, RelExtent: 0.001, Seed: benchSeed + 2})
		benchDisks = datagen.Disks(benchRoads, datagen.QuerySpec{
			N: benchQueries, RelExtent: 0.001, Seed: benchSeed + 3})
	})
}

// runWindows measures per-query window cost over the shared workload.
func runWindows(b *testing.B, count func(geom.Rect) int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += count(benchWindows[i%len(benchWindows)])
	}
	benchSink = total
}

func runDisks(b *testing.B, count func(geom.Point, float64) int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		q := benchDisks[i%len(benchDisks)]
		total += count(q.Center, q.Radius)
	}
	benchSink = total
}

// BenchmarkTable3DatasetStats measures workload generation itself
// (objects/op), backing the Table III emulation.
func BenchmarkTable3DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := datagen.RealLikeDataset(datagen.Roads, 10_000, int64(i))
		benchSink = datagen.Stats(d).Cardinality
	}
}

// BenchmarkTable5Window: window query cost per method (Table V's
// throughput comparison; ns/op is the inverse of throughput).
func BenchmarkTable5Window(b *testing.B) {
	benchData()
	for _, ds := range []struct {
		name string
		data *spatial.Dataset
	}{{"ROADS", benchRoads}, {"EDGES", benchEdges}} {
		d := ds.data
		b.Run("2-layer/"+ds.name, func(b *testing.B) {
			ix := core.Build(d, core.Options{NX: benchGrid, NY: benchGrid})
			runWindows(b, ix.WindowCount)
		})
		b.Run("2-layer+/"+ds.name, func(b *testing.B) {
			ix := core.Build(d, core.Options{NX: benchGrid, NY: benchGrid, Decompose: true})
			runWindows(b, ix.WindowCount)
		})
		b.Run("1-layer/"+ds.name, func(b *testing.B) {
			ix := onelayer.Build(d, onelayer.Options{NX: benchGrid, NY: benchGrid})
			runWindows(b, ix.WindowCount)
		})
		b.Run("quad-tree/"+ds.name, func(b *testing.B) {
			ix := quadtree.Build(d, quadtree.Options{})
			runWindows(b, ix.WindowCount)
		})
		b.Run("quad-2layer/"+ds.name, func(b *testing.B) {
			ix := quadtree.Build(d, quadtree.Options{Mode: quadtree.TwoLayer})
			runWindows(b, ix.WindowCount)
		})
		b.Run("R-tree/"+ds.name, func(b *testing.B) {
			ix := rtree.BulkSTR(d, rtree.Options{})
			runWindows(b, ix.WindowCount)
		})
		b.Run("Rstar-tree/"+ds.name, func(b *testing.B) {
			ix := rtree.BuildRStar(d, rtree.Options{})
			runWindows(b, ix.WindowCount)
		})
		b.Run("BLOCK/"+ds.name, func(b *testing.B) {
			ix := block.Build(d, block.Options{})
			runWindows(b, ix.WindowCount)
		})
		b.Run("MXCIF/"+ds.name, func(b *testing.B) {
			ix := quadtree.Build(d, quadtree.Options{Mode: quadtree.MXCIF})
			runWindows(b, ix.WindowCount)
		})
	}
}

// BenchmarkTable6Updates: per-insert cost after a 90% bulk load.
func BenchmarkTable6Updates(b *testing.B) {
	benchData()
	d := benchRoads
	split := d.Len() * 9 / 10
	head := &spatial.Dataset{Entries: d.Entries[:split]}
	tail := d.Entries[split:]
	space := d.MBR()

	b.Run("2-layer", func(b *testing.B) {
		ix := core.Build(head, core.Options{NX: benchGrid, NY: benchGrid, Space: space})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(tail[i%len(tail)])
		}
	})
	b.Run("1-layer", func(b *testing.B) {
		ix := onelayer.Build(head, onelayer.Options{NX: benchGrid, NY: benchGrid, Space: space})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(tail[i%len(tail)])
		}
	})
	b.Run("quad-tree", func(b *testing.B) {
		ix := quadtree.Build(head, quadtree.Options{Space: space})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(tail[i%len(tail)])
		}
	})
	b.Run("R-tree", func(b *testing.B) {
		ix := rtree.BulkSTR(head, rtree.Options{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Insert(tail[i%len(tail)])
		}
	})
}

// BenchmarkFig6Refinement: exact window and disk queries per refinement
// mode.
func BenchmarkFig6Refinement(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	for _, mode := range []core.RefineMode{core.RefineSimple, core.RefineAvoid, core.RefineAvoidPlus} {
		b.Run("window/"+mode.String(), func(b *testing.B) {
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				ix.WindowExact(benchWindows[i%len(benchWindows)], mode, func(spatial.ID) { n++ })
			}
			benchSink = n
		})
	}
	for _, mode := range []core.RefineMode{core.RefineSimple, core.RefineAvoid} {
		b.Run("disk/"+mode.String(), func(b *testing.B) {
			b.ResetTimer()
			n := 0
			for i := 0; i < b.N; i++ {
				q := benchDisks[i%len(benchDisks)]
				ix.DiskExact(q.Center, q.Radius, mode, func(spatial.ID) { n++ })
			}
			benchSink = n
		})
	}
}

// BenchmarkFig7Build: index construction cost per granularity (Figure 7's
// first row). Query throughput per granularity is covered by
// BenchmarkFig7Query.
func BenchmarkFig7Build(b *testing.B) {
	benchData()
	for _, g := range []int{256, 512, 1024} {
		b.Run(variantName("1-layer", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = onelayer.Build(benchRoads, onelayer.Options{NX: g, NY: g}).Len()
			}
		})
		b.Run(variantName("2-layer", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = core.Build(benchRoads, core.Options{NX: g, NY: g}).Len()
			}
		})
		b.Run(variantName("2-layer+", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = core.Build(benchRoads, core.Options{NX: g, NY: g, Decompose: true}).Len()
			}
		})
	}
}

func variantName(v string, g int) string {
	return v + "/grid=" + itoa(g)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig7Query: window query cost per granularity.
func BenchmarkFig7Query(b *testing.B) {
	benchData()
	for _, g := range []int{256, 512, 1024, 2048} {
		ix := core.Build(benchRoads, core.Options{NX: g, NY: g})
		b.Run(variantName("2-layer", g), func(b *testing.B) {
			runWindows(b, ix.WindowCount)
		})
	}
}

// BenchmarkFig8RealData: throughput vs query area, the five key methods
// on ROADS (windows) — Figure 8's first column.
func BenchmarkFig8RealData(b *testing.B) {
	benchData()
	d := benchRoads
	indices := map[string]interface {
		WindowCount(geom.Rect) int
	}{
		"R-tree":   rtree.BulkSTR(d, rtree.Options{}),
		"quadtree": quadtree.Build(d, quadtree.Options{}),
		"1-layer":  onelayer.Build(d, onelayer.Options{NX: benchGrid, NY: benchGrid}),
		"2-layer":  core.Build(d, core.Options{NX: benchGrid, NY: benchGrid}),
		"2-layer+": core.Build(d, core.Options{NX: benchGrid, NY: benchGrid, Decompose: true}),
	}
	for _, area := range []float64{0.0001, 0.001, 0.01} {
		queries := datagen.Windows(d, datagen.QuerySpec{N: benchQueries, RelExtent: area, Seed: benchSeed + 7})
		for name, ix := range indices {
			b.Run(name+"/area="+ftoa(area), func(b *testing.B) {
				b.ResetTimer()
				total := 0
				for i := 0; i < b.N; i++ {
					total += ix.WindowCount(queries[i%len(queries)])
				}
				benchSink = total
			})
		}
	}
}

func ftoa(f float64) string {
	switch f {
	case 0.0001:
		return "0.01%"
	case 0.001:
		return "0.1%"
	case 0.01:
		return "1%"
	}
	return "?"
}

// BenchmarkFig9Synthetic: robustness to object area, uniform and zipf —
// the distinguishing sweep of Figure 9.
func BenchmarkFig9Synthetic(b *testing.B) {
	for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Zipf} {
		for _, objArea := range []float64{0, 1e-10, 1e-6} {
			d := datagen.Dataset(datagen.Spec{N: benchCard, Area: objArea, Dist: dist, Seed: benchSeed})
			queries := datagen.Windows(d, datagen.QuerySpec{N: benchQueries, RelExtent: 0.001, Seed: benchSeed + 8})
			name := dist.String() + "/objarea=" + eToa(objArea)
			twoL := core.Build(d, core.Options{NX: benchGrid, NY: benchGrid})
			oneL := onelayer.Build(d, onelayer.Options{NX: benchGrid, NY: benchGrid})
			b.Run("2-layer/"+name, func(b *testing.B) {
				b.ResetTimer()
				t := 0
				for i := 0; i < b.N; i++ {
					t += twoL.WindowCount(queries[i%len(queries)])
				}
				benchSink = t
			})
			b.Run("1-layer/"+name, func(b *testing.B) {
				b.ResetTimer()
				t := 0
				for i := 0; i < b.N; i++ {
					t += oneL.WindowCount(queries[i%len(queries)])
				}
				benchSink = t
			})
		}
	}
}

func eToa(f float64) string {
	switch f {
	case 0:
		return "1e-inf"
	case 1e-10:
		return "1e-10"
	case 1e-6:
		return "1e-6"
	}
	return "?"
}

// BenchmarkFig10Batch: one op = a 1000-query batch, per strategy.
func BenchmarkFig10Batch(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	batch := benchWindows[:1000]
	for _, s := range []core.BatchStrategy{core.QueriesBased, core.TilesBased} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSink = len(ix.BatchWindowCounts(batch, s, 1))
			}
		})
	}
}

// BenchmarkFig11Parallel: the same batch with increasing thread counts
// (on a single-core host this measures goroutine overhead, not speedup).
func BenchmarkFig11Parallel(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	batch := benchWindows[:1000]
	for _, threads := range []int{1, 2, 4} {
		for _, s := range []core.BatchStrategy{core.QueriesBased, core.TilesBased} {
			b.Run(s.String()+"/threads="+itoa(threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSink = len(ix.BatchWindowCounts(batch, s, threads))
				}
			})
		}
	}
}

// BenchmarkFig12Distributed: end-to-end single window query, simulated
// distributed engine vs 2-layer. The >1000x per-op gap is Figure 12.
func BenchmarkFig12Distributed(b *testing.B) {
	benchData()
	b.Run("distributed-sim", func(b *testing.B) {
		cluster := distsim.NewCluster(benchRoads, distsim.Options{Workers: 4})
		defer cluster.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchSink = cluster.WindowCount(benchWindows[i%len(benchWindows)])
		}
	})
	b.Run("2-layer", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: 1000, NY: 1000})
		runWindows(b, ix.WindowCount)
	})
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out ---

// BenchmarkAblationDedup: the 1-layer grid under each duplicate
// elimination technique; refpoint should win, and all lose to 2-layer
// (BenchmarkTable5Window).
func BenchmarkAblationDedup(b *testing.B) {
	benchData()
	for _, mode := range []onelayer.DedupMode{onelayer.RefPoint, onelayer.HashDedup, onelayer.ActiveBorderDedup} {
		b.Run(mode.String(), func(b *testing.B) {
			ix := onelayer.Build(benchRoads, onelayer.Options{NX: benchGrid, NY: benchGrid, Dedup: mode})
			runWindows(b, ix.WindowCount)
		})
	}
}

// BenchmarkAblationDecomposition: plain class scans vs decomposed binary
// search on identical data and grid.
func BenchmarkAblationDecomposition(b *testing.B) {
	benchData()
	b.Run("plain", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
		runWindows(b, ix.WindowCount)
	})
	b.Run("decomposed", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid, Decompose: true})
		runWindows(b, ix.WindowCount)
	})
}

// BenchmarkAblationClassSelection isolates the Lemma 1-2 benefit: the
// same grid with class selection (2-layer) vs scan-everything-then-dedup
// (1-layer with refpoint).
func BenchmarkAblationClassSelection(b *testing.B) {
	benchData()
	b.Run("class-selection", func(b *testing.B) {
		ix := core.Build(benchEdges, core.Options{NX: benchGrid, NY: benchGrid})
		runWindows(b, ix.WindowCount)
	})
	b.Run("scan-all-dedup", func(b *testing.B) {
		ix := onelayer.Build(benchEdges, onelayer.Options{NX: benchGrid, NY: benchGrid})
		runWindows(b, ix.WindowCount)
	})
}

// BenchmarkAblationDirectory: dense array vs hash-map tile directory.
func BenchmarkAblationDirectory(b *testing.B) {
	benchData()
	b.Run("dense", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
		runWindows(b, ix.WindowCount)
	})
	b.Run("sparse", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid, SparseDirectory: true})
		runWindows(b, ix.WindowCount)
	})
}

// BenchmarkExtensionKNN: k-nearest-neighbor search, two-layer ring
// expansion vs R-tree best-first (the paper's future-work query type).
func BenchmarkExtensionKNN(b *testing.B) {
	benchData()
	queries := make([]geom.Point, 1024)
	for i := range queries {
		queries[i] = benchWindows[i%len(benchWindows)].Center()
	}
	for _, k := range []int{1, 10, 100} {
		b.Run("2-layer/k="+itoa(k), func(b *testing.B) {
			ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = len(ix.KNN(queries[i%len(queries)], k))
			}
		})
		b.Run("R-tree/k="+itoa(k), func(b *testing.B) {
			ix := rtree.BulkSTR(benchRoads, rtree.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchSink = len(ix.KNN(queries[i%len(queries)], k))
			}
		})
	}
}

// BenchmarkExtensionJoin: the class-combination spatial join vs probing
// one index with the other's MBRs. One op = a full join of the two
// datasets.
func BenchmarkExtensionJoin(b *testing.B) {
	benchData()
	space := benchRoads.MBR().Union(benchEdges.MBR())
	opts := core.Options{NX: benchGrid, NY: benchGrid, Space: space}
	r := core.Build(benchRoads, opts)
	s := core.Build(benchEdges, opts)
	b.Run("grid-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchSink = r.JoinCount(s)
		}
	})
	b.Run("index-nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, e := range benchRoads.Entries {
				n += s.WindowCount(e.Rect)
			}
			benchSink = n
		}
	})
}

// BenchmarkRegionQuery: the generic arbitrary-region path (Section IV-E
// generalized) against the specialized disk path, plus a hexagon region.
func BenchmarkRegionQuery(b *testing.B) {
	benchData()
	ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
	b.Run("disk-native", func(b *testing.B) {
		runDisks(b, ix.DiskCount)
	})
	b.Run("disk-as-region", func(b *testing.B) {
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ix.QueryCount(benchDisks[i%len(benchDisks)])
		}
		benchSink = total
	})
	b.Run("hexagon-region", func(b *testing.B) {
		hexes := make([]*geom.Polygon, 256)
		for i := range hexes {
			c := benchDisks[i%len(benchDisks)]
			ring := make([]geom.Point, 6)
			for j := range ring {
				a := float64(j) / 6 * 2 * 3.14159265
				ring[j] = geom.Point{
					X: c.Center.X + c.Radius*cos(a),
					Y: c.Center.Y + c.Radius*sin(a),
				}
			}
			hexes[i] = geom.NewPolygon(ring...)
		}
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += ix.QueryCount(hexes[i%len(hexes)])
		}
		benchSink = total
	})
}

func cos(a float64) float64 { return math.Cos(a) }
func sin(a float64) float64 { return math.Sin(a) }

// BenchmarkLiveApply: per-mutation cost through the single-writer apply
// loop — one Insert call is submit, batch, copy-on-write apply, and
// publish. The durable variants add write-ahead journaling: fsync=none
// leaves flushing to the OS, fsync=interval (the server default) fsyncs
// in the background, and fsync=always pays one fsync per acknowledged
// batch.
func BenchmarkLiveApply(b *testing.B) {
	benchData()
	opts := twolayer.Options{
		GridSize: benchGrid,
		Space:    benchRoads.MBR(),
	}
	entries := benchRoads.Entries

	run := func(b *testing.B, lv *twolayer.Live) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := entries[i%len(entries)]
			if _, err := lv.Insert(e.ID, e.Rect); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("live", func(b *testing.B) {
		lv, err := twolayer.NewLive(opts, twolayer.LiveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer lv.Close()
		run(b, lv)
	})
	for _, v := range []struct {
		name   string
		policy twolayer.SyncPolicy
	}{
		{"durable/fsync=none", twolayer.SyncNone},
		{"durable/fsync=interval", twolayer.SyncInterval},
		{"durable/fsync=always", twolayer.SyncAlways},
	} {
		b.Run(v.name, func(b *testing.B) {
			dl, _, err := twolayer.OpenDurable(opts, twolayer.LiveOptions{},
				twolayer.DurableOptions{
					Dir:             b.TempDir(),
					Fsync:           v.policy,
					CheckpointEvery: -1, // measure journaling, not checkpoints
					Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
				})
			if err != nil {
				b.Fatal(err)
			}
			defer dl.Close()
			run(b, dl.Live())
		})
	}
}

// BenchmarkDiskQueries: disk query cost of the main methods (Figure 8's
// right columns).
func BenchmarkDiskQueries(b *testing.B) {
	benchData()
	b.Run("2-layer", func(b *testing.B) {
		ix := core.Build(benchRoads, core.Options{NX: benchGrid, NY: benchGrid})
		runDisks(b, ix.DiskCount)
	})
	b.Run("1-layer", func(b *testing.B) {
		ix := onelayer.Build(benchRoads, onelayer.Options{NX: benchGrid, NY: benchGrid})
		runDisks(b, ix.DiskCount)
	})
	b.Run("R-tree", func(b *testing.B) {
		ix := rtree.BulkSTR(benchRoads, rtree.Options{})
		runDisks(b, ix.DiskCount)
	})
	b.Run("quad-tree", func(b *testing.B) {
		ix := quadtree.Build(benchRoads, quadtree.Options{})
		runDisks(b, ix.DiskCount)
	})
}
