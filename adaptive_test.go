package twolayer_test

import (
	"math/rand"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// TestShardedCountPushdownEquivalence checks the per-shard count
// pushdown of non-exact window SearchCount against brute force and the
// unsharded engine across the shard-count sweep, with and without a
// limit cap.
func TestShardedCountPushdownEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	rects := randRects(rnd, 3000, 0.04)
	opts := twolayer.Options{GridSize: 32}
	idx := twolayer.BuildRects(rects, opts)

	windows := make([]twolayer.Rect, 0, 44)
	for q := 0; q < 40; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		side := rnd.Float64() * 0.5
		windows = append(windows, twolayer.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side})
	}
	windows = append(windows,
		twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		twolayer.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},
		twolayer.Rect{MinX: 0.5, MinY: 0, MaxX: 0.6, MaxY: 1}, // tall slab crossing shard bounds
		twolayer.Rect{MinX: 0.25, MinY: 0.4, MaxX: 0.26, MaxY: 0.41},
	)

	for _, shards := range shardCountsUnderTest() {
		sh := twolayer.BuildShardedRects(rects, opts, twolayer.ShardedOptions{Shards: shards})
		for wi, w := range windows {
			w := w
			want := len(bruteWindow(rects, w))
			if n, err := idx.SearchCount(twolayer.Query{Window: &w}); err != nil || n != want {
				t.Fatalf("unsharded window %d: count=%d err=%v, want %d", wi, n, err, want)
			}
			n, err := sh.SearchCount(twolayer.Query{Window: &w})
			if err != nil {
				t.Fatalf("shards=%d window %d: %v", shards, wi, err)
			}
			if n != want {
				t.Errorf("shards=%d window %d: count = %d, want %d", shards, wi, n, want)
			}
			if want > 1 {
				lim := want / 2
				n, err = sh.SearchCount(twolayer.Query{Window: &w, Limit: lim})
				if err != nil || n != lim {
					t.Errorf("shards=%d window %d limit=%d: count=%d err=%v",
						shards, wi, lim, n, err)
				}
			}
		}
	}
}

// TestShardedEstimateWindow checks the public estimators: near-exact on
// this low-replication dataset for the unsharded engine, and the sharded
// sum at least as large (per-shard boundary replicas only add mass).
func TestShardedEstimateWindow(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	rects := randRects(rnd, 2000, 0.02)
	opts := twolayer.Options{GridSize: 32}
	idx := twolayer.BuildRects(rects, opts)

	whole := twolayer.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}
	est := idx.EstimateWindow(whole)
	if est < 1900 || est > 2100 {
		t.Errorf("whole-space estimate = %g, want ~2000", est)
	}
	if idx.EstimateWindow(twolayer.Rect{MinX: 2, MinY: 2, MaxX: 1, MaxY: 1}) != 0 {
		t.Error("invalid window estimate != 0")
	}
	for _, shards := range shardCountsUnderTest() {
		sh := twolayer.BuildShardedRects(rects, opts, twolayer.ShardedOptions{Shards: shards})
		got := sh.EstimateWindow(whole)
		if got < est-1 {
			t.Errorf("shards=%d: estimate %g below unsharded %g", shards, got, est)
		}
	}
}

// TestShardedQueryPathStats checks that count pushdowns executed inside
// the fan-out advance the summed per-shard path counters.
func TestShardedQueryPathStats(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	rects := randRects(rnd, 1000, 0.05)
	sh := twolayer.BuildShardedRects(rects, twolayer.Options{GridSize: 16},
		twolayer.ShardedOptions{Shards: 3})
	w := twolayer.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	before := sh.QueryPathStats()
	if _, err := sh.SearchCount(twolayer.Query{Window: &w}); err != nil {
		t.Fatal(err)
	}
	after := sh.QueryPathStats()
	if after.FastCounts <= before.FastCounts {
		t.Errorf("FastCounts did not advance: %d -> %d", before.FastCounts, after.FastCounts)
	}
}

// TestPublicWindowOrdered checks the facade's forced-parallel window
// against the sequential callback order.
func TestPublicWindowOrdered(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	rects := randRects(rnd, 2000, 0.03)
	idx := twolayer.BuildRects(rects, twolayer.Options{GridSize: 64})
	w := twolayer.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	var want []twolayer.ID
	idx.Window(w, func(id twolayer.ID, _ twolayer.Rect) { want = append(want, id) })
	for _, workers := range []int{1, 2, 4, 8} {
		var got []twolayer.ID
		idx.WindowOrdered(w, workers, func(id twolayer.ID, _ twolayer.Rect) { got = append(got, id) })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d (order must match sequential)",
					workers, i, got[i], want[i])
			}
		}
	}
}
