package wkt

import (
	"strings"
	"testing"

	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
)

func TestParsePoint(t *testing.T) {
	g, err := Parse("POINT (1.5 -2.5)")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.(geom.PointGeometry)
	if !ok || p.X != 1.5 || p.Y != -2.5 {
		t.Fatalf("got %#v", g)
	}
}

func TestParseLineString(t *testing.T) {
	g, err := Parse("linestring(0 0, 1 1,2 0)")
	if err != nil {
		t.Fatal(err)
	}
	l, ok := g.(*geom.LineString)
	if !ok || len(l.Points) != 3 || l.Points[2] != (geom.Point{X: 2, Y: 0}) {
		t.Fatalf("got %#v", g)
	}
}

func TestParsePolygon(t *testing.T) {
	g, err := Parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.(*geom.Polygon)
	if !ok || len(p.Ring) != 4 {
		t.Fatalf("got %#v", g)
	}
	// Polygon with a hole: only the outer ring is kept.
	g, err = Parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))")
	if err != nil {
		t.Fatal(err)
	}
	if p := g.(*geom.Polygon); len(p.Ring) != 4 {
		t.Fatalf("outer ring has %d vertices", len(p.Ring))
	}
}

func TestParseMultiPolygon(t *testing.T) {
	g, err := Parse("MULTIPOLYGON (((0 0, 1 0, 0 1, 0 0)), ((0 0, 10 0, 10 10, 0 10, 0 0)))")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := g.(*geom.Polygon)
	if !ok {
		t.Fatalf("got %#v", g)
	}
	// The largest part (the 10x10 square) is kept.
	if a := p.Area(); a < 99 {
		t.Errorf("kept part has area %v, want the 100-area square", a)
	}
}

func TestParseEnvelope(t *testing.T) {
	g, err := Parse("ENVELOPE (0, 2, 1, 3)")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := g.(geom.RectGeometry)
	if !ok || geom.Rect(r) != (geom.Rect{MinX: 0, MinY: 1, MaxX: 2, MaxY: 3}) {
		t.Fatalf("got %#v", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"CIRCLE (0 0, 1)",
		"POINT EMPTY",
		"POINT (1)",
		"POINT (1 2",
		"POINT (1 2) garbage",
		"LINESTRING (1 1)",
		"POLYGON ((0 0, 1 1))",
		"ENVELOPE (2, 0, 1, 3)",
		"ENVELOPE (0, 2, 1)",
		"LINESTRING (a b, c d)",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	inputs := []geom.Geometry{
		geom.PointGeometry(geom.Point{X: 0.25, Y: -3}),
		geom.NewLineString(geom.Point{X: 0, Y: 0}, geom.Point{X: 1.5, Y: 2.5}),
		geom.NewPolygon(geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}, geom.Point{X: 1, Y: 2}),
		geom.RectGeometry(geom.Rect{MinX: 0, MinY: 1, MaxX: 2, MaxY: 3}),
	}
	for _, g := range inputs {
		text := Format(g)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(Format(%#v)) = %v", g, err)
		}
		if back.MBR() != g.MBR() {
			t.Errorf("round trip MBR changed: %v -> %v (%s)", g.MBR(), back.MBR(), text)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	d := datagen.RealLikeDataset(datagen.Tiger, 500, 3)
	for i := 0; i < d.Len(); i++ {
		g := d.Geom(uint32(i))
		back, err := Parse(Format(g))
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		a, b := g.MBR(), back.MBR()
		if a != b {
			t.Fatalf("object %d MBR %v -> %v", i, a, b)
		}
	}
}

func TestFormatFallbackMBR(t *testing.T) {
	// An unknown geometry type formats as its envelope.
	text := Format(opaque{geom.NewLineString(geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 1})})
	if !strings.HasPrefix(text, "ENVELOPE") {
		t.Errorf("fallback = %q", text)
	}
}

type opaque struct{ g geom.Geometry }

func (o opaque) MBR() geom.Rect                  { return o.g.MBR() }
func (o opaque) IntersectsRect(r geom.Rect) bool { return o.g.IntersectsRect(r) }
func (o opaque) IntersectsDisk(c geom.Point, r float64) bool {
	return o.g.IntersectsDisk(c, r)
}
