package wkt

import (
	"testing"
)

// FuzzParse: the parser must never panic and must round-trip whatever it
// accepts. Run with `go test -fuzz=FuzzParse ./internal/wkt` for a real
// fuzzing session; the seed corpus runs in normal test mode.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"POINT (1 2)",
		"POINT(1.5e-3 -2)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
		"MULTIPOLYGON (((0 0, 1 0, 0 1, 0 0)))",
		"ENVELOPE (0, 1, 0, 1)",
		"point empty",
		"GARBAGE",
		"POLYGON ((",
		"POINT (nan nan)",
		"LINESTRING (1 1, 1 1, 1 1, 1 1, 1 1, 1 1, 1 1, 1 1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted input must format and re-parse to the same MBR,
		// unless the geometry contains NaN coordinates (nothing
		// meaningful round-trips through NaN).
		mbr := g.MBR()
		if mbr.Valid() {
			back, err := Parse(Format(g))
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", Format(g), err)
			}
			if back.MBR() != mbr {
				t.Fatalf("round trip changed MBR: %v -> %v", mbr, back.MBR())
			}
		}
	})
}
