// Package wkt reads and writes geometries in Well-Known Text, the
// interchange format real-world spatial datasets (including the TIGER
// shapefile extracts the paper uses) are commonly distributed in. The
// supported subset covers the library's geometry model:
//
//	POINT (x y)
//	LINESTRING (x1 y1, x2 y2, ...)
//	POLYGON ((x1 y1, ...), ...)      -- only the outer ring is kept
//	MULTIPOLYGON (((...)), ((...)))  -- parsed; the largest ring is kept
//	ENVELOPE (minx, maxx, miny, maxy) -- the OGC bounding-box extension
//
// Parsing is case-insensitive and whitespace-tolerant. EMPTY geometries
// and unsupported types produce descriptive errors.
package wkt

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/twolayer/twolayer/internal/geom"
)

// Parse decodes one WKT geometry.
func Parse(s string) (geom.Geometry, error) {
	p := &parser{in: s}
	g, err := p.geometry()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("wkt: trailing input at offset %d", p.pos)
	}
	return g, nil
}

// Format encodes a geometry as WKT.
func Format(g geom.Geometry) string {
	var sb strings.Builder
	switch t := g.(type) {
	case geom.PointGeometry:
		fmt.Fprintf(&sb, "POINT (%s %s)", num(t.X), num(t.Y))
	case *geom.LineString:
		sb.WriteString("LINESTRING (")
		writePoints(&sb, t.Points)
		sb.WriteString(")")
	case *geom.Polygon:
		sb.WriteString("POLYGON ((")
		writePoints(&sb, t.Ring)
		// WKT rings repeat the first vertex to close.
		fmt.Fprintf(&sb, ", %s %s))", num(t.Ring[0].X), num(t.Ring[0].Y))
	case geom.RectGeometry:
		r := geom.Rect(t)
		fmt.Fprintf(&sb, "ENVELOPE (%s, %s, %s, %s)",
			num(r.MinX), num(r.MaxX), num(r.MinY), num(r.MaxY))
	default:
		r := g.MBR()
		fmt.Fprintf(&sb, "ENVELOPE (%s, %s, %s, %s)",
			num(r.MinX), num(r.MaxX), num(r.MinY), num(r.MaxY))
	}
	return sb.String()
}

func num(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func writePoints(sb *strings.Builder, pts []geom.Point) {
	for i, p := range pts {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s %s", num(p.X), num(p.Y))
	}
}

// parser is a tiny recursive-descent WKT reader.
type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' ||
		p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("wkt: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// keyword consumes an identifier ([A-Za-z]+) and returns it uppercased.
func (p *parser) keyword() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.in[start:p.pos])
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// peek reports whether the next non-space byte is c, without consuming.
func (p *parser) peek(c byte) bool {
	p.skipSpace()
	return p.pos < len(p.in) && p.in[p.pos] == c
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, p.errf("expected number")
	}
	v, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.in[start:p.pos])
	}
	return v, nil
}

// point reads "x y".
func (p *parser) point() (geom.Point, error) {
	x, err := p.number()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := p.number()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Point{X: x, Y: y}, nil
}

// pointList reads "( x y, x y, ... )".
func (p *parser) pointList() ([]geom.Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []geom.Point
	for {
		pt, err := p.point()
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		p.skipSpace()
		if p.peek(',') {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

// ringList reads "( (ring), (ring), ... )" and returns the rings.
func (p *parser) ringList() ([][]geom.Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var rings [][]geom.Point
	for {
		ring, err := p.pointList()
		if err != nil {
			return nil, err
		}
		rings = append(rings, ring)
		if p.peek(',') {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return rings, nil
}

func (p *parser) geometry() (geom.Geometry, error) {
	kw := p.keyword()
	if kw == "" {
		return nil, p.errf("expected geometry type")
	}
	if p.keywordIsEmpty() {
		return nil, p.errf("EMPTY geometry not supported")
	}
	switch kw {
	case "POINT":
		pts, err := p.pointList()
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, p.errf("POINT needs exactly one coordinate pair")
		}
		return geom.PointGeometry(pts[0]), nil
	case "LINESTRING":
		pts, err := p.pointList()
		if err != nil {
			return nil, err
		}
		if len(pts) < 2 {
			return nil, p.errf("LINESTRING needs at least two points")
		}
		return geom.NewLineString(pts...), nil
	case "POLYGON":
		rings, err := p.ringList()
		if err != nil {
			return nil, err
		}
		return polygonFromRing(rings[0])
	case "MULTIPOLYGON":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var best []geom.Point
		bestArea := -1.0
		for {
			rings, err := p.ringList()
			if err != nil {
				return nil, err
			}
			poly, err := polygonFromRing(rings[0])
			if err != nil {
				return nil, err
			}
			if a := poly.(*geom.Polygon).Area(); a > bestArea {
				best, bestArea = rings[0], a
			}
			if p.peek(',') {
				p.pos++
				continue
			}
			break
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return polygonFromRing(best)
	case "ENVELOPE":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var vals [4]float64
		for i := 0; i < 4; i++ {
			v, err := p.number()
			if err != nil {
				return nil, err
			}
			vals[i] = v
			if i < 3 {
				if err := p.expect(','); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		r := geom.Rect{MinX: vals[0], MaxX: vals[1], MinY: vals[2], MaxY: vals[3]}
		if !r.Valid() {
			return nil, p.errf("invalid envelope %v", r)
		}
		return geom.RectGeometry(r), nil
	default:
		return nil, p.errf("unsupported geometry type %q", kw)
	}
}

// keywordIsEmpty consumes EMPTY if present.
func (p *parser) keywordIsEmpty() bool {
	save := p.pos
	if p.keyword() == "EMPTY" {
		return true
	}
	p.pos = save
	return false
}

// polygonFromRing validates a WKT ring (closed, >= 4 points including the
// repeated closing vertex) and builds a Polygon.
func polygonFromRing(ring []geom.Point) (geom.Geometry, error) {
	if len(ring) >= 2 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	if len(ring) < 3 {
		return nil, fmt.Errorf("wkt: polygon ring needs at least three distinct vertices")
	}
	return geom.NewPolygon(ring...), nil
}
