package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServerLifecycle starts a real listener, serves one query over TCP,
// then cancels the context and checks the graceful shutdown completes.
func TestServerLifecycle(t *testing.T) {
	// Grab a free port first so ListenAndServe can bind deterministically.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	s := testServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr) }()

	// Wait for the listener to come up.
	url := "http://" + addr
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server did not come up on %s: %v", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	qresp, err := http.Post(url+"/query/window", "application/json",
		strings.NewReader(`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	var rr rangeResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Count != 100 {
		t.Fatalf("query over TCP: count=%d err=%v body=%s", rr.Count, err, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down within 5s")
	}

	// The port must actually be released.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestNewPanicsWithoutIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with nil Index did not panic")
		}
	}()
	New(Config{})
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.RequestTimeout != DefaultRequestTimeout {
		t.Errorf("RequestTimeout default = %v", cfg.RequestTimeout)
	}
	if cfg.MaxBodyBytes != DefaultMaxBodyBytes {
		t.Errorf("MaxBodyBytes default = %v", cfg.MaxBodyBytes)
	}
	if cfg.Logger == nil {
		t.Error("Logger default is nil")
	}
}

// TestEveryMetricsEndpointRegistered guards the /metrics registry against
// drift: every routed query/observability endpoint must have a metrics
// slot, so a new route without metrics fails this test.
func TestEveryMetricsEndpointRegistered(t *testing.T) {
	s := testServer(t, nil)
	paths := map[string]string{
		"query/window": "/query/window",
		"query/disk":   "/query/disk",
		"query/knn":    "/query/knn",
		"query/batch":  "/query/batch",
		"v1/window":    "/v1/window",
		"v1/disk":      "/v1/disk",
		"v1/knn":       "/v1/knn",
		"v1/batch":     "/v1/batch",
		"stats":        "/stats",
		"healthz":      "/healthz",
		"v1/stats":     "/v1/stats",
		"v1/healthz":   "/v1/healthz",
	}
	// Every routed endpoint's series exists (at zero) before any traffic.
	before := scrapeMetrics(t, s.Handler())
	for name := range paths {
		key := fmt.Sprintf(`twolayer_http_requests_total{endpoint=%q}`, name)
		if _, ok := before[key]; !ok {
			t.Errorf("endpoint %s has no pre-registered %s series", name, key)
		}
	}
	for name, path := range paths {
		method := "POST"
		body := `{}`
		if strings.HasSuffix(name, "stats") || strings.HasSuffix(name, "healthz") {
			method, body = "GET", ""
		}
		do(t, s.Handler(), method, path, body, nil)
		m := scrapeMetrics(t, s.Handler())
		if m[fmt.Sprintf(`twolayer_http_requests_total{endpoint=%q}`, name)] == 0 {
			t.Errorf("endpoint %s (%s) not recorded in /metrics", name, path)
		}
	}
	// And nothing extra: the registry holds exactly one requests series
	// per routed endpoint (the /metrics scrape above includes them all).
	series := 0
	for key := range before {
		if strings.HasPrefix(key, "twolayer_http_requests_total{") {
			series++
		}
	}
	if series != len(paths) {
		t.Errorf("metrics registry has %d endpoint series, routes table has %d", series, len(paths))
	}
}
