package server

import (
	"context"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// Admission control: the server's overload valve. Every query and
// mutation endpoint passes through a per-class gate before it starts
// evaluating, so a traffic spike turns into prompt, cheap rejections
// (429 + Retry-After) instead of an unbounded pile of concurrent
// evaluations fighting over the same cores.
//
// Requests fall into three endpoint classes, each with its own
// in-flight semaphore and bounded FIFO wait queue:
//
//   - read:   /v1/window, /v1/disk, /v1/knn and their legacy aliases
//   - mutate: /v1/insert, /v1/delete, /v1/bulk, /v1/checkpoint + aliases
//   - batch:  /v1/batch + alias (a single batch is worth thousands of
//     reads, so it must not share the read class's slots)
//
// A request that finds a free slot is admitted immediately (one failed
// channel receive — the uncontended fast path costs a few atomics).
// Otherwise it joins the class's wait queue, bounded by QueueDepth:
// beyond the bound the request is shed at once. While joining, the gate
// predicts the request's queue wait from an EWMA of observed service
// times and the queue position; if the caller's remaining deadline
// cannot cover the predicted wait plus the request's own predicted
// service time, the request is shed immediately — there is no point
// queuing work that is guaranteed to time out. The prediction scales
// with a per-request cost hint (the planner's EstimateWindow cardinality
// for window queries), which is what makes degradation graceful rather
// than a cliff: under load, expensive windows exhaust their deadline
// budget first and get shed, while cheap count/estimate queries — whose
// predicted service time is a fraction of the EWMA — keep flowing.
//
// Shedding answers 429 Too Many Requests with a Retry-After hint derived
// from the same prediction. A request whose deadline expires while it is
// queued answers 503 (the existing timeout status) with Retry-After.
// /stats, /healthz, and /metrics bypass admission entirely: the
// observability surface must stay reachable on an overloaded node.
//
// Mutation backpressure is the second half of the valve: the apply
// backlog bound (twolayer.LiveOptions.MaxBacklog, enforced per shard on
// a sharded engine) rejects submissions with ErrBacklogFull once the
// accepted-but-unpublished mutation count reaches the bound, which the
// mutation handlers map to 503 + Retry-After. The mutate gate bounds
// concurrent mutation *requests*; MaxBacklog bounds queued *mutations* —
// together they cap the memory an update flood can pin.

// admissionClass selects a gate.
type admissionClass int

const (
	classRead admissionClass = iota
	classMutate
	classBatch
	numClasses
)

// classNames are the label values of the twolayer_admission_* metric
// group and the keys of the /stats "admission" section.
var classNames = [numClasses]string{"read", "mutate", "batch"}

// shedReason reports why acquire did not admit a request.
type shedReason int

const (
	shedNone      shedReason = iota
	shedQueueFull            // wait queue at QueueDepth
	shedDeadline             // predicted wait exceeds the remaining deadline
	shedExpired              // deadline expired while queued
)

// numShedReasons counts the real shed reasons (shedNone excluded).
const numShedReasons = 3

// shedReasonNames are the reason label values of
// twolayer_admission_shed_total.
var shedReasonNames = [numShedReasons]string{"queue_full", "deadline", "expired"}

func (r shedReason) String() string { return shedReasonNames[r-1] }

// Admission defaults, used when the corresponding Config field is 0.
const (
	// defaultQueueFactor sizes the default wait queue as a multiple of
	// the in-flight limit.
	defaultQueueFactor = 8
	// ewmaShift is the EWMA decay: new = old + (sample-old)/2^ewmaShift.
	ewmaShift = 3
	// costWeightMax clamps how far a cost hint can scale the predicted
	// service time away from the class EWMA, in either direction.
	costWeightMax = 16.0
)

// defaultMaxInflight is the per-class in-flight limit when Config
// leaves MaxInflight 0: enough concurrency to saturate the cores with
// headroom for skew, but finite.
func defaultMaxInflight() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 16 {
		n = 16
	}
	return n
}

// classGate is one endpoint class's admission state: a token-channel
// semaphore (capacity = in-flight limit; receiving a token admits),
// occupancy counters, outcome counters for /stats and /metrics, and the
// EWMAs behind the wait prediction. Goroutines blocked on the token
// channel are served in arrival order by the runtime, and a released
// token is handed to the oldest waiter before it can land in the buffer,
// so the wait queue is FIFO whenever there is a queue.
type classGate struct {
	name        string
	maxInflight int
	queueDepth  int

	slots    chan struct{}
	inflight atomic.Int64
	queued   atomic.Int64

	admitted atomic.Uint64
	shed     [numShedReasons]atomic.Uint64

	// ewmaServiceNS tracks observed service time; ewmaCost tracks the
	// cost hints (float64 bits) of requests that supplied one. Their
	// ratio converts a hint into a service-time weight.
	ewmaServiceNS atomic.Int64
	ewmaCost      atomic.Uint64
}

func newClassGate(name string, maxInflight, queueDepth int) *classGate {
	g := &classGate{
		name:        name,
		maxInflight: maxInflight,
		queueDepth:  queueDepth,
		slots:       make(chan struct{}, maxInflight),
	}
	for i := 0; i < maxInflight; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// admission is the per-server gate set; nil means admission control is
// disabled (Config.MaxInflight < 0).
type admission struct {
	gates [numClasses]*classGate
}

// newAdmission resolves the configured limits. maxInflight and
// queueDepth apply to each class independently; queueDepth < 0 means no
// queue (immediate shed at saturation).
func newAdmission(maxInflight, queueDepth int) *admission {
	if maxInflight == 0 {
		maxInflight = defaultMaxInflight()
	}
	if queueDepth == 0 {
		queueDepth = defaultQueueFactor * maxInflight
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	a := &admission{}
	for c := admissionClass(0); c < numClasses; c++ {
		a.gates[c] = newClassGate(classNames[c], maxInflight, queueDepth)
	}
	return a
}

func (a *admission) gate(c admissionClass) *classGate {
	if a == nil {
		return nil
	}
	return a.gates[c]
}

// costWeight converts a cost hint into a multiplier on the class's EWMA
// service time. Unknown costs (<= 0), or a class with no cost history
// yet, predict exactly the EWMA.
func (g *classGate) costWeight(cost float64) float64 {
	if cost <= 0 {
		return 1
	}
	mean := math.Float64frombits(g.ewmaCost.Load())
	if mean <= 0 {
		return 1
	}
	w := cost / mean
	if w < 1/costWeightMax {
		return 1 / costWeightMax
	}
	if w > costWeightMax {
		return costWeightMax
	}
	return w
}

// predictWait estimates how long a request at queue position pos
// (1-based, counting itself) waits for a slot, plus how long its own
// evaluation will take. With no service history yet both terms are 0 —
// the gate starts optimistic and learns from completions.
func (g *classGate) predictWait(pos int64, cost float64) time.Duration {
	svc := g.ewmaServiceNS.Load()
	if svc <= 0 {
		return 0
	}
	slotWait := svc * pos / int64(g.maxInflight)
	mine := int64(float64(svc) * g.costWeight(cost))
	return time.Duration(slotWait + mine)
}

// retryAfter converts a predicted wait into a Retry-After value in
// whole seconds, at least 1.
func retryAfter(wait time.Duration) int {
	sec := int((wait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// acquire admits the request (reason shedNone) or reports why it was
// shed. wait is the time spent queued; hint is the Retry-After estimate
// for shed outcomes. cost is evaluated lazily — only a request that
// misses the fast path pays for its cost estimate.
func (g *classGate) acquire(ctx context.Context, cost func() float64) (wait time.Duration, hint time.Duration, reason shedReason) {
	select {
	case <-g.slots:
		g.inflight.Add(1)
		g.admitted.Add(1)
		return 0, 0, shedNone
	default:
	}

	c := 0.0
	if cost != nil {
		c = cost()
	}
	pos := g.queued.Add(1)
	if pos > int64(g.queueDepth) {
		g.queued.Add(-1)
		g.shed[shedQueueFull-1].Add(1)
		// The queue is full: the earliest a retry can help is after the
		// whole queue ahead has drained.
		return 0, g.predictWait(int64(g.queueDepth), c), shedQueueFull
	}
	need := g.predictWait(pos, c)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < need {
		g.queued.Add(-1)
		g.shed[shedDeadline-1].Add(1)
		return 0, need, shedDeadline
	}

	start := time.Now()
	select {
	case <-g.slots:
		g.queued.Add(-1)
		g.inflight.Add(1)
		g.admitted.Add(1)
		return time.Since(start), 0, shedNone
	case <-ctx.Done():
		g.queued.Add(-1)
		g.shed[shedExpired-1].Add(1)
		return time.Since(start), need, shedExpired
	}
}

// release returns the slot and folds the observed service time (and the
// request's cost hint, if it carried one) into the prediction EWMAs.
func (g *classGate) release(service time.Duration, cost float64) {
	g.inflight.Add(-1)
	g.slots <- struct{}{}

	sample := service.Nanoseconds()
	for {
		old := g.ewmaServiceNS.Load()
		next := sample
		if old > 0 {
			next = old + (sample-old)>>ewmaShift
		}
		if g.ewmaServiceNS.CompareAndSwap(old, next) {
			break
		}
	}
	if cost > 0 {
		for {
			oldBits := g.ewmaCost.Load()
			old := math.Float64frombits(oldBits)
			next := cost
			if old > 0 {
				next = old + (cost-old)/(1<<ewmaShift)
			}
			if g.ewmaCost.CompareAndSwap(oldBits, math.Float64bits(next)) {
				break
			}
		}
	}
}

// costRect returns the rectangle whose cardinality estimate prices a
// range query for admission: the window itself, or the disk's bounding
// box (an upper bound on the disk's cover, which is what the scan pays
// for).
func costRect(q twolayer.Query) twolayer.Rect {
	if q.Window != nil {
		return *q.Window
	}
	d := q.Disk
	return twolayer.Rect{
		MinX: d.Center.X - d.Radius, MinY: d.Center.Y - d.Radius,
		MaxX: d.Center.X + d.Radius, MaxY: d.Center.Y + d.Radius,
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// admit gates one request through class c. On admission it returns
// release (call exactly once when the request finishes) and the queue
// wait for the trace span. On shedding it writes the whole 429/503
// response — including the Retry-After hint — records the outcome, and
// returns ok=false.
//
// cost, when non-nil, estimates the request's result cardinality
// relative to its class (EstimateWindow for window queries); it is only
// invoked when the class is saturated.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, c admissionClass, cost func() float64) (release func(), wait time.Duration, ok bool) {
	g := s.adm.gate(c)
	if g == nil {
		return func() {}, 0, true
	}
	costVal := 0.0
	wrapped := func() float64 {
		if cost != nil {
			costVal = cost()
		}
		return costVal
	}
	wait, hint, reason := g.acquire(ctx, wrapped)
	switch reason {
	case shedNone:
		s.metrics.admQueueWait.With(g.name).Observe(wait.Seconds())
		start := time.Now()
		return func() { g.release(time.Since(start), costVal) }, wait, true
	case shedExpired:
		s.metrics.admQueueWait.With(g.name).Observe(wait.Seconds())
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter(hint)))
		writeError(w, http.StatusServiceUnavailable,
			"deadline expired while queued for admission")
	default: // shedQueueFull, shedDeadline
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter(hint)))
		msg := "server overloaded: admission queue is full"
		if reason == shedDeadline {
			msg = "server overloaded: remaining deadline cannot cover the predicted queue wait"
		}
		writeError(w, http.StatusTooManyRequests, msg)
	}
	return nil, wait, false
}
