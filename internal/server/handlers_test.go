package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// testIndex builds a small geometry-backed index: a 10x10 grid of tiny
// squares with corners at (i/10, j/10), so result counts are easy to
// predict. Object IDs are j*10+i.
func testIndex(t *testing.T) *twolayer.Index {
	t.Helper()
	var geoms []twolayer.Geometry
	for j := 0; j < 10; j++ {
		for i := 0; i < 10; i++ {
			x, y := float64(i)/10, float64(j)/10
			geoms = append(geoms, twolayer.NewPolygon(
				twolayer.Point{X: x, Y: y},
				twolayer.Point{X: x + 0.05, Y: y},
				twolayer.Point{X: x + 0.05, Y: y + 0.05},
				twolayer.Point{X: x, Y: y + 0.05},
			))
		}
	}
	return twolayer.BuildGeoms(geoms, twolayer.Options{GridSize: 16, Decompose: true})
}

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Index:        testIndex(t),
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		CollectStats: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg)
}

// do posts body to path and decodes the JSON response into out.
func do(t *testing.T, h http.Handler, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON: %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w
}

// scrapeMetrics fetches /metrics and parses the Prometheus text format
// into a map keyed by the full series identity (`name{labels}`), e.g.
// `twolayer_http_requests_total{endpoint="query/window"}`.
func scrapeMetrics(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q, want text/plain exposition", ct)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in metrics line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestWindowHappyPath(t *testing.T) {
	s := testServer(t, nil)
	var resp rangeResponse
	// Covers the 4 squares with corners in [0, 0.15]^2.
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":0.15,"max_y":0.15}}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.Count != 4 || len(resp.Results) != 4 {
		t.Errorf("count=%d len(results)=%d, want 4", resp.Count, len(resp.Results))
	}
	if resp.Truncated {
		t.Error("unexpected truncation")
	}
	for _, res := range resp.Results {
		if res.MBR == nil {
			t.Error("filtering result missing mbr")
		}
	}
}

func TestWindowExactAndCountOnly(t *testing.T) {
	s := testServer(t, nil)
	var resp rangeResponse
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":0.15,"max_y":0.15},"exact":true}`, &resp)
	if resp.Count != 4 {
		t.Errorf("exact count=%d, want 4", resp.Count)
	}
	for _, res := range resp.Results {
		if res.MBR != nil {
			t.Error("exact result should omit mbr")
		}
	}

	resp = rangeResponse{}
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &resp)
	if resp.Count != 100 {
		t.Errorf("count_only count=%d, want 100", resp.Count)
	}
	if resp.Results != nil {
		t.Error("count_only returned results")
	}
}

func TestWindowLimitTruncates(t *testing.T) {
	s := testServer(t, nil)
	var resp rangeResponse
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"limit":7}`, &resp)
	if len(resp.Results) != 7 || !resp.Truncated {
		t.Errorf("limit=7: got %d results truncated=%v", len(resp.Results), resp.Truncated)
	}
}

func TestWindowBadRequests(t *testing.T) {
	s := testServer(t, nil)
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"rect":`},
		{"trailing garbage", `{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}} extra`},
		{"unknown field", `{"rectangle":{"min_x":0}}`},
		{"inverted rect", `{"rect":{"min_x":1,"min_y":0,"max_x":0,"max_y":1}}`},
		{"NaN rect", `{"rect":{"min_x":null,"min_y":0,"max_x":"NaN","max_y":1}}`},
		{"negative limit", `{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"limit":-1}`},
	}
	for _, c := range cases {
		w := do(t, s.Handler(), "POST", "/query/window", c.body, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body.String())
		}
		var e errorJSON
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not structured", c.name, w.Body.String())
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, nil)
	if w := do(t, s.Handler(), "GET", "/query/window", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /query/window: status %d, want 405", w.Code)
	}
	if w := do(t, s.Handler(), "POST", "/metrics", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", w.Code)
	}
}

func TestWindowTimeout(t *testing.T) {
	// A deadline that has certainly expired by the first poll: every
	// streaming query must answer 503, deterministically.
	s := testServer(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", w.Code, w.Body.String())
	}
	var e errorJSON
	json.Unmarshal(w.Body.Bytes(), &e)
	if e.Error != "deadline exceeded" {
		t.Errorf("error %q, want %q", e.Error, "deadline exceeded")
	}
	// The timeout must be visible in metrics.
	m := scrapeMetrics(t, s.Handler())
	if got := m[`twolayer_http_request_timeouts_total{endpoint="query/window"}`]; got != 1 {
		t.Errorf("metrics timeouts = %v, want 1", got)
	}
}

func TestDiskQueries(t *testing.T) {
	s := testServer(t, nil)
	var resp rangeResponse
	do(t, s.Handler(), "POST", "/query/disk",
		`{"center":{"x":0.5,"y":0.5},"radius":0.06}`, &resp)
	if resp.Count == 0 {
		t.Error("disk query found nothing around (0.5,0.5)")
	}
	exact := rangeResponse{}
	do(t, s.Handler(), "POST", "/query/disk",
		`{"center":{"x":0.5,"y":0.5},"radius":0.06,"exact":true}`, &exact)
	if exact.Count == 0 || exact.Count > resp.Count {
		t.Errorf("exact disk count %d vs filter count %d", exact.Count, resp.Count)
	}

	if w := do(t, s.Handler(), "POST", "/query/disk",
		`{"center":{"x":0.5,"y":0.5},"radius":-1}`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("negative radius: status %d, want 400", w.Code)
	}
}

func TestKNNQueries(t *testing.T) {
	s := testServer(t, nil)
	var resp knnResponse
	do(t, s.Handler(), "POST", "/query/knn",
		`{"center":{"x":0.52,"y":0.52},"k":5}`, &resp)
	if len(resp.Neighbors) != 5 {
		t.Fatalf("got %d neighbors, want 5", len(resp.Neighbors))
	}
	for i := 1; i < len(resp.Neighbors); i++ {
		if resp.Neighbors[i].Distance < resp.Neighbors[i-1].Distance {
			t.Error("neighbors not sorted by distance")
		}
	}
	if w := do(t, s.Handler(), "POST", "/query/knn",
		`{"center":{"x":0.5,"y":0.5},"k":0}`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("k=0: status %d, want 400", w.Code)
	}
}

func TestBatchQueries(t *testing.T) {
	s := testServer(t, nil)
	var resp batchResponse
	do(t, s.Handler(), "POST", "/query/batch",
		`{"mode":"tiles","windows":[
			{"min_x":0,"min_y":0,"max_x":0.15,"max_y":0.15},
			{"min_x":0,"min_y":0,"max_x":1,"max_y":1}]}`, &resp)
	if len(resp.Counts) != 2 || resp.Counts[0] != 4 || resp.Counts[1] != 100 {
		t.Errorf("counts = %v, want [4 100]", resp.Counts)
	}
	if resp.Total != 104 {
		t.Errorf("total = %d, want 104", resp.Total)
	}

	disk := batchResponse{}
	do(t, s.Handler(), "POST", "/query/batch",
		`{"mode":"queries","threads":1,"disks":[{"center":{"x":0.5,"y":0.5},"radius":0.06}]}`, &disk)
	if len(disk.Counts) != 1 || disk.Counts[0] == 0 {
		t.Errorf("disk batch counts = %v", disk.Counts)
	}

	bad := []string{
		`{"windows":[],"disks":[]}`,
		`{"windows":[{"min_x":0,"min_y":0,"max_x":1,"max_y":1}],"disks":[{"center":{"x":0,"y":0},"radius":1}]}`,
		`{"mode":"zigzag","windows":[{"min_x":0,"min_y":0,"max_x":1,"max_y":1}]}`,
		`{"windows":[{"min_x":1,"min_y":0,"max_x":0,"max_y":1}]}`,
	}
	for _, b := range bad {
		if w := do(t, s.Handler(), "POST", "/query/batch", b, nil); w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", b, w.Code)
		}
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	// Valid JSON whose object spans more than the body limit, so the
	// decoder must hit the MaxBytesReader cutoff to finish it.
	body := fmt.Sprintf(`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}%s}`,
		strings.Repeat(" ", 200))
	if w := do(t, s.Handler(), "POST", "/query/window", body, nil); w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", w.Code)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := testServer(t, nil)
	for i := 0; i < 3; i++ {
		do(t, s.Handler(), "POST", "/query/window",
			`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, nil)
	}
	var resp statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &resp)
	if !resp.StatsEnabled {
		t.Fatal("stats_enabled = false")
	}
	if resp.QueriesObserved != 3 {
		t.Errorf("queries_observed = %d, want 3", resp.QueriesObserved)
	}
	if resp.Counters.Results != 300 {
		t.Errorf("counters.results = %d, want 300", resp.Counters.Results)
	}
	if resp.Counters.TilesVisited == 0 {
		t.Error("counters.tiles_visited = 0 after instrumented queries")
	}
	if resp.Index.Objects != 100 || resp.Index.GridNX != 16 || !resp.Index.ExactGeometries {
		t.Errorf("index info = %+v", resp.Index)
	}
}

func TestStatsDisabled(t *testing.T) {
	s := testServer(t, func(c *Config) { c.CollectStats = false })
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, nil)
	var resp statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &resp)
	if resp.StatsEnabled || resp.QueriesObserved != 0 || resp.Counters.Results != 0 {
		t.Errorf("disabled stats leaked counters: %+v", resp)
	}
}

func TestExactRejectedOnSnapshotIndex(t *testing.T) {
	// Round-trip the index through Save/Load: geometries are gone, so
	// exact queries must be rejected with a clear 400.
	idx := testIndex(t)
	var snap bytes.Buffer
	if _, err := idx.Save(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := twolayer.Load(&snap)
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, func(c *Config) { c.Index = loaded })
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"exact":true}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("exact on snapshot index: status %d, want 400", w.Code)
	}
	if !strings.Contains(w.Body.String(), "snapshot") {
		t.Errorf("error %q does not mention snapshots", w.Body.String())
	}
	// Filtering queries still work on the loaded index.
	var resp rangeResponse
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &resp)
	if resp.Count != 100 {
		t.Errorf("loaded index count = %d, want 100", resp.Count)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, nil)
	var h map[string]any
	if w := do(t, s.Handler(), "GET", "/healthz", "", &h); w.Code != http.StatusOK {
		t.Fatalf("healthz status %d", w.Code)
	}
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}

	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, nil)
	do(t, s.Handler(), "POST", "/query/window", `not json`, nil)
	m := scrapeMetrics(t, s.Handler())
	if req, errs := m[`twolayer_http_requests_total{endpoint="query/window"}`],
		m[`twolayer_http_request_errors_total{endpoint="query/window"}`]; req != 2 || errs != 1 {
		t.Errorf("query/window metrics = %v requests / %v errors, want 2 / 1", req, errs)
	}
	// The histogram's +Inf bucket and count must both cover every request.
	if inf := m[`twolayer_http_request_duration_seconds_bucket{endpoint="query/window",le="+Inf"}`]; inf != 2 {
		t.Errorf("+Inf bucket = %v, want 2", inf)
	}
	if cnt := m[`twolayer_http_request_duration_seconds_count{endpoint="query/window"}`]; cnt != 2 {
		t.Errorf("histogram count = %v, want 2", cnt)
	}
	// Engine gauges are present alongside the http group.
	if m[`twolayer_index_objects`] != 100 {
		t.Errorf("twolayer_index_objects = %v, want 100", m[`twolayer_index_objects`])
	}
	if m[`twolayer_partition_occupied_tiles`] == 0 {
		t.Error("twolayer_partition_occupied_tiles missing or zero")
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off := testServer(t, nil)
	if w := do(t, off.Handler(), "GET", "/debug/pprof/", "", nil); w.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", w.Code)
	}
	on := testServer(t, func(c *Config) { c.EnablePprof = true })
	if w := do(t, on.Handler(), "GET", "/debug/pprof/", "", nil); w.Code != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", w.Code)
	}
}
