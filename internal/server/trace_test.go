package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTraceInResponse: "trace": true attaches the per-stage trace to the
// JSON response and sets the compact X-Trace summary header.
func TestTraceInResponse(t *testing.T) {
	srv := testServer(t, nil)

	var resp rangeResponse
	w := do(t, srv.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"trace":true}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	tr := resp.Trace
	if tr == nil {
		t.Fatal("response has no trace despite \"trace\": true")
	}
	if tr.Kind != "window" {
		t.Fatalf("trace kind = %q, want window", tr.Kind)
	}
	if tr.Results != int64(resp.Count) {
		t.Fatalf("trace results %d != response count %d", tr.Results, resp.Count)
	}
	if tr.TilesVisited <= 0 || tr.EntriesScanned <= 0 {
		t.Fatalf("trace counted no filtering work: %+v", tr)
	}
	if tr.ElapsedUS < 0 || tr.FilterUS < 0 || tr.RefineUS < 0 {
		t.Fatalf("negative stage timing: %+v", tr)
	}
	if cc := tr.ClassEntriesScanned; cc.A+cc.B+cc.C+cc.D != tr.EntriesScanned {
		t.Fatalf("per-class scan counts %+v do not sum to entries_scanned %d",
			cc, tr.EntriesScanned)
	}
	hdr := w.Header().Get("X-Trace")
	if !strings.Contains(hdr, "kind=window") || !strings.Contains(hdr, "elapsed_us=") {
		t.Fatalf("X-Trace header = %q, want compact summary", hdr)
	}

	// Untraced request: no trace field, no header.
	var plain rangeResponse
	w = do(t, srv.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &plain)
	if plain.Trace != nil || w.Header().Get("X-Trace") != "" {
		t.Fatal("untraced request carried a trace")
	}
	if strings.Contains(w.Body.String(), `"trace"`) {
		t.Fatal("trace key serialized on untraced response")
	}
}

// TestTraceHeaderRequest: an X-Trace request header is equivalent to
// "trace": true, for all three single-query kinds.
func TestTraceHeaderRequest(t *testing.T) {
	srv := testServer(t, nil)
	cases := []struct {
		path, body, kind string
	}{
		{"/query/window", `{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, "window"},
		{"/query/disk", `{"center":{"x":0.5,"y":0.5},"radius":0.4}`, "disk"},
		{"/query/knn", `{"center":{"x":0.5,"y":0.5},"k":5}`, "knn"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("POST", tc.path, strings.NewReader(tc.body))
		req.Header.Set("X-Trace", "1")
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, w.Code, w.Body.String())
		}
		if hdr := w.Header().Get("X-Trace"); !strings.Contains(hdr, "kind="+tc.kind) {
			t.Fatalf("%s: X-Trace = %q, want kind=%s", tc.path, hdr, tc.kind)
		}
		if !strings.Contains(w.Body.String(), `"trace"`) {
			t.Fatalf("%s: no trace in body", tc.path)
		}
	}

	// X-Trace: 0 and false are explicit opt-outs.
	for _, v := range []string{"0", "false"} {
		req := httptest.NewRequest("POST", "/query/window",
			strings.NewReader(`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`))
		req.Header.Set("X-Trace", v)
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		if w.Header().Get("X-Trace") != "" {
			t.Fatalf("X-Trace: %s still produced a trace", v)
		}
	}

	m := scrapeMetrics(t, srv.Handler())
	if got := m["twolayer_traced_queries_total"]; got != 3 {
		t.Fatalf("twolayer_traced_queries_total = %v, want 3", got)
	}
}

// TestEnableTracingConfig: with EnableTracing every query is traced
// without the client asking, and /stats reports tracing_enabled.
func TestEnableTracingConfig(t *testing.T) {
	srv := testServer(t, func(cfg *Config) { cfg.EnableTracing = true })

	var resp rangeResponse
	do(t, srv.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &resp)
	if resp.Trace == nil {
		t.Fatal("EnableTracing did not attach a trace")
	}

	var st statsResponse
	do(t, srv.Handler(), "GET", "/stats", "", &st)
	if !st.TracingEnabled {
		t.Fatal("/stats tracing_enabled = false with EnableTracing on")
	}
	// Traced queries still feed the shared stats aggregate.
	if st.QueriesObserved != 1 || st.Counters.TilesVisited <= 0 {
		t.Fatalf("traced query missing from aggregate: observed=%d counters=%+v",
			st.QueriesObserved, st.Counters)
	}
}

// TestSlowQueryLog: a threshold of one nanosecond marks every query
// slow; the counter rises while responses stay trace-free unless asked.
func TestSlowQueryLog(t *testing.T) {
	srv := testServer(t, func(cfg *Config) { cfg.SlowQueryThreshold = time.Nanosecond })

	var resp rangeResponse
	w := do(t, srv.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &resp)
	if resp.Trace != nil || w.Header().Get("X-Trace") != "" {
		t.Fatal("slow-query accounting must not leak traces into responses")
	}

	m := scrapeMetrics(t, srv.Handler())
	if got := m["twolayer_slow_queries_total"]; got != 1 {
		t.Fatalf("twolayer_slow_queries_total = %v, want 1", got)
	}
	if got := m["twolayer_traced_queries_total"]; got != 0 {
		t.Fatalf("twolayer_traced_queries_total = %v, want 0", got)
	}
	// The threshold path still feeds the stats aggregate.
	var st statsResponse
	do(t, srv.Handler(), "GET", "/stats", "", &st)
	if st.QueriesObserved != 1 {
		t.Fatalf("queries_observed = %d, want 1", st.QueriesObserved)
	}
}
