package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// liveServer builds a live-mode server over an empty unit-square index.
func liveServer(t *testing.T, mutate func(*Config)) (*Server, *twolayer.Live) {
	t.Helper()
	l, err := twolayer.NewLive(twolayer.Options{
		GridSize: 16,
		Space:    twolayer.Rect{MaxX: 1, MaxY: 1},
	}, twolayer.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	cfg := Config{
		Live:   l,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), l
}

func TestMutationEndpoints(t *testing.T) {
	s, _ := liveServer(t, nil)

	var ins insertResponse
	w := do(t, s.Handler(), "POST", "/insert",
		`{"id":1,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}}`, &ins)
	if w.Code != http.StatusOK || ins.Epoch == 0 {
		t.Fatalf("insert: status %d epoch %d, want 200 and epoch > 0", w.Code, ins.Epoch)
	}

	// The insert is visible to a query issued afterward.
	var win rangeResponse
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &win)
	if win.Count != 1 {
		t.Fatalf("window after insert: count %d, want 1", win.Count)
	}

	var bulk bulkResponse
	w = do(t, s.Handler(), "POST", "/bulk",
		`{"mutations":[
			{"op":"insert","id":2,"mbr":{"min_x":0.5,"min_y":0.5,"max_x":0.6,"max_y":0.6}},
			{"op":"delete","id":1,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}},
			{"op":"delete","id":99,"mbr":{"min_x":0.3,"min_y":0.3,"max_x":0.4,"max_y":0.4}}
		]}`, &bulk)
	if w.Code != http.StatusOK {
		t.Fatalf("bulk: status %d: %s", w.Code, w.Body.String())
	}
	if bulk.Epoch <= ins.Epoch {
		t.Fatalf("bulk epoch %d did not advance past %d", bulk.Epoch, ins.Epoch)
	}
	if len(bulk.Found) != 3 || !bulk.Found[0] || !bulk.Found[1] || bulk.Found[2] {
		t.Fatalf("bulk found = %v, want [true true false]", bulk.Found)
	}

	var del deleteResponse
	do(t, s.Handler(), "POST", "/delete",
		`{"id":2,"mbr":{"min_x":0.5,"min_y":0.5,"max_x":0.6,"max_y":0.6}}`, &del)
	if !del.Found {
		t.Fatal("delete: object 2 not found")
	}
	do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &win)
	if win.Count != 0 {
		t.Fatalf("window after deletes: count %d, want 0", win.Count)
	}
}

func TestMutationValidation(t *testing.T) {
	s, l := liveServer(t, nil)

	// Inverted rectangle: 400 from every mutation endpoint.
	bad := `{"id":1,"mbr":{"min_x":0.5,"min_y":0.5,"max_x":0.1,"max_y":0.1}}`
	for _, path := range []string{"/insert", "/delete"} {
		if w := do(t, s.Handler(), "POST", path, bad, nil); w.Code != http.StatusBadRequest {
			t.Errorf("%s with inverted rect: status %d, want 400", path, w.Code)
		}
	}
	w := do(t, s.Handler(), "POST", "/bulk",
		`{"mutations":[{"op":"insert","id":1,"mbr":{"min_x":0.5,"max_x":0.1}}]}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bulk with inverted rect: status %d, want 400", w.Code)
	}
	w = do(t, s.Handler(), "POST", "/bulk",
		`{"mutations":[{"op":"upsert","id":1,"mbr":{"max_x":0.1,"max_y":0.1}}]}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bulk with unknown op: status %d, want 400", w.Code)
	}
	w = do(t, s.Handler(), "POST", "/bulk", `{"mutations":[]}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("empty bulk: status %d, want 400", w.Code)
	}

	// A closed Live maps to 503.
	l.Close()
	w = do(t, s.Handler(), "POST", "/insert",
		`{"id":1,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("insert on closed live: status %d, want 503", w.Code)
	}
}

func TestMutationEndpointsAbsentInStaticMode(t *testing.T) {
	s := testServer(t, nil)
	w := do(t, s.Handler(), "POST", "/insert",
		`{"id":1,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}}`, nil)
	if w.Code == http.StatusOK {
		t.Fatalf("static server accepted a mutation (status %d)", w.Code)
	}
}

func TestConfigRequiresExactlyOneIndex(t *testing.T) {
	for _, both := range []bool{false, true} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(both=%v) did not panic", both)
				}
			}()
			cfg := Config{}
			if both {
				cfg.Index = testIndex(t)
				cfg.Live = twolayer.LiveFrom(
					twolayer.BuildRects(nil, twolayer.Options{
						GridSize: 4, Space: twolayer.Rect{MaxX: 1, MaxY: 1},
					}), twolayer.LiveOptions{})
			}
			New(cfg)
		}()
	}
}

func TestLiveStatsExposed(t *testing.T) {
	s, _ := liveServer(t, func(c *Config) { c.CollectStats = true })

	do(t, s.Handler(), "POST", "/insert",
		`{"id":7,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}}`, nil)

	var st statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &st)
	if st.Live == nil {
		t.Fatal("live stats section missing on a live-mode server")
	}
	if st.Live.Epoch == 0 || st.Live.AppliedMutations != 1 || st.Live.Publishes == 0 {
		t.Fatalf("live stats %+v, want epoch > 0, applied 1, publishes > 0", st.Live)
	}
	if st.Index.Objects != 1 {
		t.Fatalf("index objects %d, want 1", st.Index.Objects)
	}

	var hz map[string]any
	do(t, s.Handler(), "GET", "/healthz", "", &hz)
	if _, ok := hz["epoch"]; !ok {
		t.Fatal("healthz missing epoch in live mode")
	}

	// Static servers omit the live section.
	var stStatic statsResponse
	do(t, testServer(t, nil).Handler(), "GET", "/stats", "", &stStatic)
	if stStatic.Live != nil {
		t.Fatal("static server reported live stats")
	}
}

func TestExactRejectedInLiveMode(t *testing.T) {
	s, _ := liveServer(t, nil)
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"exact":true}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("exact query in live mode: status %d, want 400", w.Code)
	}
}

// TestConcurrentMutationsAndQueries exercises the live server end to end
// under -race: writers mutate over HTTP while readers run window, disk,
// kNN, batch, and stats requests against per-request pinned snapshots.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	s, _ := liveServer(t, func(c *Config) { c.CollectStats = true })
	h := s.Handler()

	const writers, readers, ops = 3, 3, 60
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := wr*ops + i
				x := float64(id%97) / 100
				body := fmt.Sprintf(
					`{"id":%d,"mbr":{"min_x":%g,"min_y":%g,"max_x":%g,"max_y":%g}}`,
					id, x, x, x+0.02, x+0.02)
				if w := do(t, h, "POST", "/insert", body, nil); w.Code != http.StatusOK {
					t.Errorf("insert %d: status %d", id, w.Code)
					return
				}
				if i%3 == 0 {
					if w := do(t, h, "POST", "/delete", body, nil); w.Code != http.StatusOK {
						t.Errorf("delete %d: status %d", id, w.Code)
						return
					}
				}
			}
		}(wr)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				var win rangeResponse
				do(t, h, "POST", "/query/window",
					`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &win)
				if win.Count != len(win.Results) && !win.Truncated {
					t.Error("window count does not match results")
					return
				}
				do(t, h, "POST", "/query/disk",
					`{"center":{"x":0.5,"y":0.5},"radius":0.3,"count_only":true}`, nil)
				do(t, h, "POST", "/query/knn", `{"center":{"x":0.5,"y":0.5},"k":3}`, nil)
				do(t, h, "POST", "/query/batch",
					`{"windows":[{"min_x":0,"min_y":0,"max_x":0.5,"max_y":0.5},
					             {"min_x":0.5,"min_y":0.5,"max_x":1,"max_y":1}]}`, nil)
				do(t, h, "GET", "/stats", "", nil)
			}
		}()
	}
	wg.Wait()

	// All acks returned: the final snapshot holds exactly the objects
	// whose insert was not followed by a delete (i%3 != 0).
	want := 0
	for i := 0; i < ops; i++ {
		if i%3 != 0 {
			want += writers
		}
	}
	var win rangeResponse
	do(t, h, "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &win)
	if win.Count != want {
		t.Fatalf("final count %d, want %d", win.Count, want)
	}
	var st statsResponse
	do(t, h, "GET", "/stats", "", &st)
	if st.Live.PendingMutations != 0 {
		t.Fatalf("pending mutations %d after quiescence, want 0", st.Live.PendingMutations)
	}
}
