package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentQueries fires parallel window, disk, kNN, and batch
// queries (with stats collection on, which is the racier configuration:
// every request allocates an instrumented view and merges into the shared
// AtomicStats) against one shared index. Run with -race; correctness is
// also checked via the known result counts of the 10x10 test fixture.
func TestConcurrentQueries(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)

	post := func(path, body string) (*json.Decoder, int, error) {
		w := do(t, h, "POST", path, body, nil)
		return json.NewDecoder(w.Body), w.Code, nil
	}

	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (wkr + i) % 4 {
				case 0: // full-space window: exactly 100 results
					dec, code, _ := post("/query/window",
						`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`)
					var resp rangeResponse
					if err := dec.Decode(&resp); err != nil || code != http.StatusOK || resp.Count != 100 {
						errs <- fmt.Errorf("window: code=%d count=%d err=%v", code, resp.Count, err)
					}
				case 1: // disk around the center
					dec, code, _ := post("/query/disk",
						`{"center":{"x":0.5,"y":0.5},"radius":0.2,"count_only":true}`)
					var resp rangeResponse
					if err := dec.Decode(&resp); err != nil || code != http.StatusOK || resp.Count == 0 {
						errs <- fmt.Errorf("disk: code=%d count=%d err=%v", code, resp.Count, err)
					}
				case 2: // kNN exercises per-view scratch space
					dec, code, _ := post("/query/knn",
						`{"center":{"x":0.31,"y":0.64},"k":9}`)
					var resp knnResponse
					if err := dec.Decode(&resp); err != nil || code != http.StatusOK || len(resp.Neighbors) != 9 {
						errs <- fmt.Errorf("knn: code=%d n=%d err=%v", code, len(resp.Neighbors), err)
					}
				case 3: // parallel tiles-based batch inside a concurrent request
					dec, code, _ := post("/query/batch",
						`{"windows":[{"min_x":0,"min_y":0,"max_x":0.15,"max_y":0.15},
						             {"min_x":0,"min_y":0,"max_x":1,"max_y":1}]}`)
					var resp batchResponse
					if err := dec.Decode(&resp); err != nil || code != http.StatusOK ||
						len(resp.Counts) != 2 || resp.Counts[0] != 4 || resp.Counts[1] != 100 {
						errs <- fmt.Errorf("batch: code=%d counts=%v err=%v", code, resp.Counts, err)
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The aggregate must have observed every instrumented single query
	// (batches are uninstrumented by design).
	var stats statsResponse
	do(t, h, "GET", "/stats", "", &stats)
	wantObserved := int64(workers * perWorker * 3 / 4)
	if stats.QueriesObserved != wantObserved {
		t.Errorf("queries_observed = %d, want %d", stats.QueriesObserved, wantObserved)
	}
	m := scrapeMetrics(t, h)
	for _, ep := range []string{"query/window", "query/disk", "query/knn", "query/batch"} {
		if got := m[fmt.Sprintf(`twolayer_http_requests_total{endpoint=%q}`, ep)]; got != float64(workers*perWorker/4) {
			t.Errorf("%s requests = %v, want %d", ep, got, workers*perWorker/4)
		}
		if got := m[fmt.Sprintf(`twolayer_http_request_errors_total{endpoint=%q}`, ep)]; got != 0 {
			t.Errorf("%s errors = %v, want 0", ep, got)
		}
	}
}
