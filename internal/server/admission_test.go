package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// ---- classGate unit tests -------------------------------------------------

func TestGateFastPath(t *testing.T) {
	g := newClassGate("read", 2, 4)
	wait, _, reason := g.acquire(context.Background(), nil)
	if reason != shedNone {
		t.Fatalf("reason = %v, want admitted", reason)
	}
	if wait != 0 {
		t.Fatalf("fast path reported wait %v, want 0", wait)
	}
	if got := g.inflight.Load(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	g.release(time.Millisecond, 0)
	if got := g.inflight.Load(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if got := g.admitted.Load(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
}

func TestGateQueueFull(t *testing.T) {
	g := newClassGate("read", 1, 1)
	if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
		t.Fatalf("first acquire shed: %v", reason)
	}
	// Fill the single queue slot with a blocked waiter.
	admitted := make(chan struct{})
	go func() {
		if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
			t.Errorf("queued acquire shed: %v", reason)
		}
		close(admitted)
	}()
	waitForInt64(t, g.queued.Load, 1)

	// The queue is at depth: the next arrival sheds immediately.
	_, _, reason := g.acquire(context.Background(), nil)
	if reason != shedQueueFull {
		t.Fatalf("reason = %v, want queue_full", reason)
	}
	if got := g.shed[shedQueueFull-1].Load(); got != 1 {
		t.Fatalf("shed[queue_full] = %d, want 1", got)
	}

	// Releasing hands the slot to the waiter (FIFO: it is the only one).
	g.release(time.Millisecond, 0)
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request was not admitted after release")
	}
	g.release(time.Millisecond, 0)
}

func TestGateDeadlineShed(t *testing.T) {
	g := newClassGate("read", 1, 8)
	// Pretend the class has a 1s observed service time, and saturate it.
	g.ewmaServiceNS.Store(time.Second.Nanoseconds())
	if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
		t.Fatalf("first acquire shed: %v", reason)
	}
	// 10ms of remaining deadline cannot cover a predicted ~2s wait.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, hint, reason := g.acquire(ctx, nil)
	if reason != shedDeadline {
		t.Fatalf("reason = %v, want deadline", reason)
	}
	if hint <= 0 {
		t.Fatalf("deadline shed carried no Retry-After hint (%v)", hint)
	}
	if got := g.queued.Load(); got != 0 {
		t.Fatalf("queued after shed = %d, want 0", got)
	}
	g.release(time.Millisecond, 0)
}

func TestGateExpiredWhileQueued(t *testing.T) {
	g := newClassGate("read", 1, 8)
	// No service history: the gate queues optimistically, then the
	// deadline fires while waiting.
	if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
		t.Fatalf("first acquire shed: %v", reason)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	wait, _, reason := g.acquire(ctx, nil)
	if reason != shedExpired {
		t.Fatalf("reason = %v, want expired", reason)
	}
	if wait <= 0 {
		t.Fatalf("expired request reported no queue wait (%v)", wait)
	}
	if got := g.queued.Load(); got != 0 {
		t.Fatalf("queued after expiry = %d, want 0", got)
	}
	g.release(time.Millisecond, 0)
}

func TestGateCostWeight(t *testing.T) {
	g := newClassGate("read", 1, 8)
	if w := g.costWeight(100); w != 1 {
		t.Fatalf("costWeight with no history = %v, want 1", w)
	}
	if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
		t.Fatalf("acquire shed: %v", reason)
	}
	g.release(time.Millisecond, 100) // seeds ewmaCost = 100
	for _, tc := range []struct {
		cost, want float64
	}{
		{0, 1},                    // unknown cost: class EWMA
		{100, 1},                  // at the mean
		{200, 2},                  // twice the mean
		{1e9, costWeightMax},      // clamped above
		{1e-9, 1 / costWeightMax}, // clamped below
		{100 / costWeightMax / 2, 1.0 / costWeightMax},
	} {
		if w := g.costWeight(tc.cost); w != tc.want {
			t.Errorf("costWeight(%v) = %v, want %v", tc.cost, w, tc.want)
		}
	}
}

func TestRetryAfterRounding(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		if got := retryAfter(tc.wait); got != tc.want {
			t.Errorf("retryAfter(%v) = %d, want %d", tc.wait, got, tc.want)
		}
	}
}

func waitForInt64(t *testing.T, load func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for counter to reach %d (at %d)", want, load())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// ---- server-level admission tests -----------------------------------------

func TestAdmissionDisabled(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxInflight = -1 })
	if s.adm != nil {
		t.Fatal("MaxInflight < 0 should disable admission")
	}
	var resp rangeResponse
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var stats statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &stats)
	if stats.Admission != nil {
		t.Fatal("/stats has an admission section with admission disabled")
	}
	m := scrapeMetrics(t, s.Handler())
	for series := range m {
		if strings.HasPrefix(series, "twolayer_admission_") {
			t.Fatalf("admission metric %q exported with admission disabled", series)
		}
	}
}

func TestAdmissionStatsAndMetrics(t *testing.T) {
	s := testServer(t, nil) // default-on admission
	var resp rangeResponse
	w := do(t, s.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var stats statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &stats)
	if stats.Admission == nil {
		t.Fatal("/stats is missing the admission section")
	}
	for _, name := range classNames {
		cl, ok := stats.Admission.Classes[name]
		if !ok {
			t.Fatalf("admission section is missing class %q", name)
		}
		if cl.MaxInflight <= 0 {
			t.Fatalf("class %q max_inflight = %d, want > 0", name, cl.MaxInflight)
		}
	}
	if got := stats.Admission.Classes["read"].Admitted; got < 1 {
		t.Fatalf("read admitted_total = %d, want >= 1", got)
	}
	m := scrapeMetrics(t, s.Handler())
	if v := m[`twolayer_admission_admitted_total{class="read"}`]; v < 1 {
		t.Fatalf("admitted_total{read} = %v, want >= 1", v)
	}
	if v := m[`twolayer_admission_queue_wait_seconds_count{class="read"}`]; v < 1 {
		t.Fatalf("queue_wait_seconds_count{read} = %v, want >= 1", v)
	}
	if v := m[`twolayer_admission_shed_total{class="read",reason="queue_full"}`]; v != 0 {
		t.Fatalf("shed_total{read,queue_full} = %v, want 0", v)
	}
}

func TestAdmissionTraceQueueWait(t *testing.T) {
	s := testServer(t, nil)
	var resp rangeResponse
	do(t, s.Handler(), "POST", "/v1/window",
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"trace":true}`, &resp)
	if resp.Trace == nil {
		t.Fatal("no trace in response")
	}
	// Uncontended fast path: zero queue wait (and the field is omitted).
	if resp.Trace.QueueWaitUS != 0 {
		t.Fatalf("queue_wait_us = %d on an idle server, want 0", resp.Trace.QueueWaitUS)
	}
}

// TestOverloadShedding is the overload regression: with the read class
// pinned at 4 in-flight slots and an 8-deep queue, 64 concurrent window
// queries must split into 8 admitted completions and 56 prompt 429s
// carrying Retry-After — no hangs, no goroutine leaks, and the shed /
// queue-wait metrics must move. The test holds all 4 slots itself so the
// split is deterministic.
func TestOverloadShedding(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := testServer(t, func(c *Config) {
		c.MaxInflight = 4
		c.QueueDepth = 8
	})
	h := s.Handler()
	g := s.adm.gate(classRead)

	// Occupy every read slot so all 64 requests contend.
	for i := 0; i < 4; i++ {
		if _, _, reason := g.acquire(context.Background(), nil); reason != shedNone {
			t.Fatalf("slot %d acquire shed: %v", i, reason)
		}
	}

	const n = 64
	codes := make(chan *httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/query/window",
				strings.NewReader(`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			codes <- w
		}()
	}

	// Exactly 8 requests fit the queue; the other 56 shed promptly.
	waitForInt64(t, g.queued.Load, 8)
	waitForInt64(t, func() int64 { return int64(g.shed[shedQueueFull-1].Load()) }, n-8)

	// Hand the slots back; the 8 queued requests drain and complete.
	for i := 0; i < 4; i++ {
		g.release(time.Millisecond, 0)
	}
	wg.Wait()
	close(codes)

	ok, shed := 0, 0
	for w := range codes {
		switch w.Code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if w.Header().Get("Retry-After") == "" {
				t.Error("429 response is missing the Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d: %s", w.Code, w.Body.String())
		}
	}
	if ok != 8 || shed != n-8 {
		t.Fatalf("got %d admitted / %d shed, want 8 / %d", ok, shed, n-8)
	}

	m := scrapeMetrics(t, h)
	if v := m[`twolayer_admission_shed_total{class="read",reason="queue_full"}`]; v != n-8 {
		t.Fatalf("shed_total{read,queue_full} = %v, want %d", v, n-8)
	}
	if v := m[`twolayer_admission_queue_wait_seconds_count{class="read"}`]; v != 8 {
		t.Fatalf("queue_wait_seconds_count{read} = %v, want 8 (one per admitted request)", v)
	}
	if v := m[`twolayer_admission_queue_wait_seconds_sum{class="read"}`]; v <= 0 {
		t.Fatalf("queue_wait_seconds_sum{read} = %v, want > 0 (every admission waited)", v)
	}
	if v := m[`twolayer_admission_inflight{class="read"}`]; v != 0 {
		t.Fatalf("inflight{read} = %v after drain, want 0", v)
	}
	if v := m[`twolayer_admission_queued{class="read"}`]; v != 0 {
		t.Fatalf("queued{read} = %v after drain, want 0", v)
	}

	// Every handler goroutine must have exited: shed requests return
	// without queuing work, admitted ones release their slot.
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count returns to within a
// small slack of the baseline (runtime bookkeeping goroutines come and
// go), failing after 5s.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not return to baseline: %d > %d+3\n%s",
				n, baseline, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBacklogRejection drives a live server's apply backlog with
// concurrent writers against a MaxBacklog of 1 and checks the
// 503 + Retry-After mapping plus the /stats backlog section. (The
// deterministic core-level rejection semantics are covered in
// internal/core; here the subject is the HTTP mapping.)
func TestBacklogRejection(t *testing.T) {
	l, err := twolayer.NewLive(twolayer.Options{
		GridSize: 16,
		Space:    twolayer.Rect{MaxX: 1, MaxY: 1},
	}, twolayer.LiveOptions{MaxBacklog: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	s := New(Config{
		Live:   l,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	h := s.Handler()

	// Concurrent inserters: each blocks until its batch publishes, so
	// while any publish is in flight, pending >= 1 and a concurrent
	// submission trips the bound.
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	var rejected, badBody, noRetryAfter, unexpected atomic.Int32
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := fmt.Sprintf(
					`{"id":%d,"mbr":{"min_x":0.1,"min_y":0.1,"max_x":0.2,"max_y":0.2}}`,
					1000+wk*perWorker+i)
				req := httptest.NewRequest("POST", "/insert", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					rejected.Add(1)
					if w.Header().Get("Retry-After") == "" {
						noRetryAfter.Add(1)
					}
					if !strings.Contains(w.Body.String(), "backlog") {
						badBody.Add(1)
					}
				default:
					unexpected.Add(1)
				}
			}
		}(wk)
	}
	wg.Wait()
	if unexpected.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 503", unexpected.Load())
	}
	if noRetryAfter.Load() != 0 {
		t.Fatalf("%d backlog 503s were missing the Retry-After header", noRetryAfter.Load())
	}
	if badBody.Load() != 0 {
		t.Fatalf("%d backlog 503s did not mention the backlog", badBody.Load())
	}

	var stats statsResponse
	do(t, h, "GET", "/stats", "", &stats)
	if stats.Admission == nil || stats.Admission.Backlog == nil {
		t.Fatal("/stats is missing the admission backlog section on a live server")
	}
	if got := stats.Admission.Backlog.Limit; got != 1 {
		t.Fatalf("backlog limit = %d, want 1", got)
	}
	if r := rejected.Load(); r > 0 {
		if stats.Admission.Backlog.Rejected == 0 {
			t.Fatalf("%d 503s were served but rejected_total is 0", r)
		}
	} else {
		// 320 concurrent blocking writers against a backlog of 1 should
		// trip the bound; if the apply loop somehow outran them all, the
		// mapping went untested — flag it rather than silently pass.
		t.Log("warning: backlog never filled; 503 mapping not exercised in this run")
	}
}
