package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// Mutation endpoints (live mode only). A call returns once its batch is
// published, so the reported epoch — and every snapshot pinned afterward
// — reflects the mutation (read-your-writes). Invalid rectangles are 400;
// mutations against a closed Live are 503.

type insertRequest struct {
	ID  twolayer.ID `json:"id"`
	MBR rectJSON    `json:"mbr"`
}

type insertResponse struct {
	Epoch     uint64 `json:"epoch"`
	ElapsedUS int64  `json:"elapsed_us"`
}

type deleteRequest struct {
	ID  twolayer.ID `json:"id"`
	MBR rectJSON    `json:"mbr"`
}

type deleteResponse struct {
	Found     bool   `json:"found"`
	Epoch     uint64 `json:"epoch"`
	ElapsedUS int64  `json:"elapsed_us"`
}

type bulkMutationJSON struct {
	// Op is "insert" (the default) or "delete".
	Op  string      `json:"op"`
	ID  twolayer.ID `json:"id"`
	MBR rectJSON    `json:"mbr"`
}

type bulkRequest struct {
	Mutations []bulkMutationJSON `json:"mutations"`
}

type bulkResponse struct {
	// Epoch is the snapshot in which the whole batch became visible.
	Epoch uint64 `json:"epoch"`
	// Found has one entry per mutation: whether a delete found its
	// object (true for every insert).
	Found     []bool `json:"found"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// mutationBacklogRetryAfter is the backoff hint on a backlog-full 503:
// long enough for the apply loop to publish at least one batch.
const mutationBacklogRetryAfter = 1

// writeMutationError maps a Live submission error to an HTTP status:
// validation failures are the client's fault (400), a closed Live means
// the server is shutting down (503), and a full apply backlog is
// transient overload — 503 with a Retry-After backoff hint so clients
// back off instead of resubmitting into the same wall.
func writeMutationError(w http.ResponseWriter, err error) {
	if errors.Is(err, twolayer.ErrLiveClosed) {
		writeError(w, http.StatusServiceUnavailable, "index is closed for updates")
		return
	}
	if errors.Is(err, twolayer.ErrBacklogFull) {
		w.Header().Set("Retry-After", strconv.Itoa(mutationBacklogRetryAfter))
		writeError(w, http.StatusServiceUnavailable,
			"mutation backlog is full: "+err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if msg := req.MBR.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	release, _, admitted := s.admit(r.Context(), w, classMutate, nil)
	if !admitted {
		return
	}
	defer release()
	start := time.Now()
	epoch, err := s.mut.Insert(req.ID, req.MBR.toRect())
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, insertResponse{
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if msg := req.MBR.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	release, _, admitted := s.admit(r.Context(), w, classMutate, nil)
	if !admitted {
		return
	}
	defer release()
	start := time.Now()
	found, epoch, err := s.mut.Delete(req.ID, req.MBR.toRect())
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{
		Found:     found,
		Epoch:     epoch,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}

func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	var req bulkRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, `"mutations" must be non-empty`)
		return
	}
	if len(req.Mutations) > MaxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bulk of %d mutations exceeds the maximum of %d",
				len(req.Mutations), MaxBatchQueries))
		return
	}
	muts := make([]twolayer.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		switch m.Op {
		case "", "insert":
		case "delete":
			muts[i].Delete = true
		default:
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf(`mutations[%d]: op must be "insert" or "delete"`, i))
			return
		}
		if msg := m.MBR.validate(); msg != "" {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("mutations[%d]: %s", i, msg))
			return
		}
		muts[i].ID = m.ID
		muts[i].MBR = m.MBR.toRect()
	}
	// A bulk's cost is its mutation count — under a saturated mutate gate
	// the large rewrites shed before the single-object updates.
	release, _, admitted := s.admit(r.Context(), w, classMutate, func() float64 {
		return float64(len(muts))
	})
	if !admitted {
		return
	}
	defer release()
	start := time.Now()
	res, err := s.mut.Apply(muts)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, bulkResponse{
		Epoch:     res.Epoch,
		Found:     res.Found,
		ElapsedUS: time.Since(start).Microseconds(),
	})
}
