package server

import (
	"net/http"
	"testing"
)

// TestV1WindowEstimate checks the "estimate": true envelope flag: the
// window endpoint returns the planner's cardinality estimate alongside
// the results, and the disk endpoint rejects the flag.
func TestV1WindowEstimate(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	var resp rangeResponse
	w := do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"count_only":true,"estimate":true}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.Count != 100 {
		t.Fatalf("count = %d, want 100", resp.Count)
	}
	if resp.Estimate == nil {
		t.Fatal("estimate requested but missing from response")
	}
	// Uniform non-replicated data: the histogram estimate is near-exact.
	if *resp.Estimate < 90 || *resp.Estimate > 110 {
		t.Errorf("estimate = %g, want ~100", *resp.Estimate)
	}

	// Without the flag the field is absent.
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"count_only":true}`, &resp)
	if resp.Estimate != nil {
		t.Errorf("estimate present without being requested: %g", *resp.Estimate)
	}

	// The disk endpoint rejects it.
	w = do(t, h, "POST", "/v1/disk",
		`{"disk":{"center":{"x":0.5,"y":0.5},"radius":0.2},"estimate":true}`, nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("disk estimate: status %d, want 400", w.Code)
	}
}

// TestAdaptiveKernelMetrics checks that the always-on path counters are
// exported on /metrics regardless of CollectStats, and that a count-only
// /v1 window query on an uninstrumented server advances the pushdown
// counter.
func TestAdaptiveKernelMetrics(t *testing.T) {
	s := testServer(t, func(c *Config) { c.CollectStats = false })
	h := s.Handler()

	before := scrapeMetrics(t, h)
	for _, name := range []string{
		"twolayer_query_fastpath_counts_total",
		"twolayer_query_fastpath_tiles_total",
		"twolayer_query_fastpath_bulk_entries_total",
		"twolayer_query_parallel_queries_total",
		"twolayer_query_parallel_chunks_total",
		"twolayer_query_sequential_queries_total",
	} {
		if _, ok := before[name]; !ok {
			t.Errorf("metric %s not exported", name)
		}
	}

	var resp rangeResponse
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"count_only":true}`, &resp)
	if resp.Count != 100 {
		t.Fatalf("count = %d, want 100", resp.Count)
	}
	after := scrapeMetrics(t, h)
	if got := after["twolayer_query_fastpath_counts_total"]; got != before["twolayer_query_fastpath_counts_total"]+1 {
		t.Errorf("fastpath_counts_total = %g, want %g",
			got, before["twolayer_query_fastpath_counts_total"]+1)
	}
}
