package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// FuzzV1Envelope feeds arbitrary bytes to the /v1 envelope decoder
// end-to-end through the full middleware chain (method check, body
// limit, admission, evaluation). The server must never panic and must
// answer every input with a well-formed JSON response: 2xx with the
// range-response shape, or 4xx with an {"error": ...} body. 5xx means a
// malformed request escaped validation into the engine — a bug.
func FuzzV1Envelope(f *testing.F) {
	// A small geometry-backed index (the fuzz server is shared across
	// executions; handlers are concurrency-safe by design).
	var geoms []twolayer.Geometry
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			x, y := float64(i)/8, float64(j)/8
			geoms = append(geoms, twolayer.NewPolygon(
				twolayer.Point{X: x, Y: y},
				twolayer.Point{X: x + 0.05, Y: y},
				twolayer.Point{X: x + 0.05, Y: y + 0.05},
				twolayer.Point{X: x, Y: y + 0.05},
			))
		}
	}
	s := New(Config{
		Index:        twolayer.BuildGeoms(geoms, twolayer.Options{GridSize: 8, Decompose: true}),
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		MaxBodyBytes: 1 << 14, // small, so the fuzzer can reach the 413 path
	})
	h := s.Handler()

	// Valid envelopes, boundary abuse, and structural garbage.
	seeds := []string{
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`,
		`{"disk":{"center":{"x":0.5,"y":0.5},"radius":0.25}}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true,"trace":true}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"estimate":true,"limit":3}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"exact":true,"mode":"avoid"}`,
		`{"window":{"min_x":1,"min_y":1,"max_x":0,"max_y":0}}`,
		`{"window":{"min_x":"NaN"}}`,
		`{"disk":{"center":{"x":1e308,"y":-1e308},"radius":1e308}}`,
		`{"disk":{"center":{"x":0,"y":0},"radius":-1}}`,
		`{"window":{},"disk":{}}`,
		`{"mode":"bogus","window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`,
		`{"limit":-5,"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"limit":99999999}`,
		`{`, `null`, `[]`, `""`, `0`, "\x00\x01\x02", `{"window":null}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"trace":true,"count_only":true,"exact":true}`,
	}
	for _, seed := range seeds {
		f.Add([]byte(seed), true)
		f.Add([]byte(seed), false)
	}

	f.Fuzz(func(t *testing.T, body []byte, window bool) {
		path := "/v1/disk"
		if window {
			path = "/v1/window"
		}
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		if w.Code >= 500 {
			t.Fatalf("%s: status %d for body %q: %s", path, w.Code, body, w.Body.String())
		}
		var decoded map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("%s: status %d with non-JSON body %q (request %q)",
				path, w.Code, w.Body.String(), body)
		}
		switch {
		case w.Code == http.StatusOK:
			if _, ok := decoded["count"]; !ok {
				t.Fatalf("%s: 200 response without count: %s", path, w.Body.String())
			}
		case w.Code >= 400:
			if _, ok := decoded["error"]; !ok {
				t.Fatalf("%s: status %d without error field: %s", path, w.Code, w.Body.String())
			}
		default:
			t.Fatalf("%s: unexpected status %d: %s", path, w.Code, w.Body.String())
		}
	})
}
