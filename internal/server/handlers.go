package server

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// ctxPollInterval is how many results a streaming query produces between
// deadline polls. Cancellation is therefore cooperative: a query is
// interrupted within ~ctxPollInterval results (tile-granular for window
// queries) of its deadline expiring.
const ctxPollInterval = 256

// ---- wire types -----------------------------------------------------------

// rectJSON is a rectangle in request/response bodies.
type rectJSON struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

func (r rectJSON) toRect() twolayer.Rect {
	return twolayer.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func fromRect(r twolayer.Rect) *rectJSON {
	return &rectJSON{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// validate reports why the rectangle is unusable as data or query, or "".
func (r rectJSON) validate() string {
	for _, v := range [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return "rect coordinates must be finite"
		}
	}
	if r.MinX > r.MaxX || r.MinY > r.MaxY {
		return "rect must satisfy min_x <= max_x and min_y <= max_y"
	}
	return ""
}

// pointJSON is a query center point.
type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

func (p pointJSON) validate() string {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return "center coordinates must be finite"
	}
	return ""
}

type windowRequest struct {
	Rect      rectJSON `json:"rect"`
	Exact     bool     `json:"exact"`
	CountOnly bool     `json:"count_only"`
	Limit     int      `json:"limit"`
	Trace     bool     `json:"trace"`
}

type diskRequest struct {
	Center    pointJSON `json:"center"`
	Radius    float64   `json:"radius"`
	Exact     bool      `json:"exact"`
	CountOnly bool      `json:"count_only"`
	Limit     int       `json:"limit"`
	Trace     bool      `json:"trace"`
}

type knnRequest struct {
	Center pointJSON `json:"center"`
	K      int       `json:"k"`
	Exact  bool      `json:"exact"`
	Trace  bool      `json:"trace"`
}

type batchRequest struct {
	// Mode selects the paper's batch evaluation strategy: "tiles"
	// (cache-conscious, the default) or "queries" (cache-agnostic).
	Mode string `json:"mode"`
	// Threads is the worker count; 0 means all cores.
	Threads int `json:"threads"`
	// Exactly one of Windows/Disks must be non-empty.
	Windows []rectJSON `json:"windows"`
	Disks   []struct {
		Center pointJSON `json:"center"`
		Radius float64   `json:"radius"`
	} `json:"disks"`
}

type resultJSON struct {
	ID  twolayer.ID `json:"id"`
	MBR *rectJSON   `json:"mbr,omitempty"` // omitted for exact-geometry results
}

type rangeResponse struct {
	Count     int          `json:"count"`
	Results   []resultJSON `json:"results,omitempty"`
	Truncated bool         `json:"truncated"`
	ElapsedUS int64        `json:"elapsed_us"`
	// Estimate is the planner's O(tiles) cardinality estimate, present
	// when the /v1 envelope asked for it ("estimate": true, window only).
	Estimate *float64   `json:"estimate,omitempty"`
	Trace    *traceJSON `json:"trace,omitempty"`
}

// resultBufPool recycles /v1 result buffers across requests so the
// collection path allocates nothing per call beyond the JSON encoding.
var resultBufPool = sync.Pool{New: func() any {
	buf := make([]resultJSON, 0, 512)
	return &buf
}}

type neighborJSON struct {
	ID       twolayer.ID `json:"id"`
	Distance float64     `json:"distance"`
}

type knnResponse struct {
	Neighbors []neighborJSON `json:"neighbors"`
	ElapsedUS int64          `json:"elapsed_us"`
	Trace     *traceJSON     `json:"trace,omitempty"`
}

// classCountsJSON reports a per-class quantity keyed by class letter.
type classCountsJSON struct {
	A int64 `json:"A"`
	B int64 `json:"B"`
	C int64 `json:"C"`
	D int64 `json:"D"`
}

func classCounts64(v [4]int64) classCountsJSON {
	return classCountsJSON{A: v[0], B: v[1], C: v[2], D: v[3]}
}

// shardSpanJSON is one shard's slice of a scatter-gather query in a
// trace: which shard scanned, its wall time, and the results it
// contributed after cross-shard deduplication.
type shardSpanJSON struct {
	Shard     int   `json:"shard"`
	ElapsedUS int64 `json:"elapsed_us"`
	Results   int   `json:"results"`
}

// chunkSpanJSON is one tile-row chunk of a parallel window evaluation in
// a trace: the inclusive tile-row range it scanned, its wall time, and
// the results it buffered.
type chunkSpanJSON struct {
	Row0      int   `json:"row0"`
	Row1      int   `json:"row1"`
	ElapsedUS int64 `json:"elapsed_us"`
	Results   int   `json:"results"`
}

// traceJSON is the per-query trace attached to responses (the "trace"
// field) when tracing was requested: wall-clock stage timings plus the
// full core counter set of this one evaluation. On a sharded server the
// core counters are zero and Shards carries the per-shard fan-out spans
// instead. The schema is documented in docs/OBSERVABILITY.md.
type traceJSON struct {
	Kind      string `json:"kind"`
	ElapsedUS int64  `json:"elapsed_us"`
	// QueueWaitUS is the time this request spent queued for admission
	// before evaluation started (0 on the uncontended fast path).
	QueueWaitUS          int64           `json:"queue_wait_us,omitempty"`
	Shards               []shardSpanJSON `json:"shards,omitempty"`
	Parallel             bool            `json:"parallel,omitempty"`
	Chunks               []chunkSpanJSON `json:"chunks,omitempty"`
	FilterUS             int64           `json:"filter_us"`
	RefineUS             int64           `json:"refine_us"`
	TilesVisited         int64           `json:"tiles_visited"`
	PartitionsScanned    int64           `json:"partitions_scanned"`
	EntriesScanned       int64           `json:"entries_scanned"`
	ClassEntriesScanned  classCountsJSON `json:"class_entries_scanned"`
	Comparisons          int64           `json:"comparisons"`
	DuplicatesAvoided    int64           `json:"duplicates_avoided"`
	BinarySearches       int64           `json:"binary_searches"`
	SecondaryFilterTests int64           `json:"secondary_filter_tests"`
	SecondaryFilterHits  int64           `json:"secondary_filter_hits"`
	RefinementTests      int64           `json:"refinement_tests"`
	DistanceComputations int64           `json:"distance_computations"`
	Results              int64           `json:"results"`
}

func newTraceJSON(tr *twolayer.Trace) *traceJSON {
	var chunks []chunkSpanJSON
	if len(tr.Chunks) > 0 {
		chunks = make([]chunkSpanJSON, len(tr.Chunks))
		for i, c := range tr.Chunks {
			chunks[i] = chunkSpanJSON{
				Row0:      c.Row0,
				Row1:      c.Row1,
				ElapsedUS: c.ElapsedNS / 1000,
				Results:   c.Results,
			}
		}
	}
	return &traceJSON{
		Kind:                 tr.Kind,
		ElapsedUS:            tr.ElapsedNS / 1000,
		Parallel:             tr.Parallel,
		Chunks:               chunks,
		FilterUS:             tr.FilterNS() / 1000,
		RefineUS:             tr.RefineNS / 1000,
		TilesVisited:         tr.TilesVisited,
		PartitionsScanned:    tr.PartitionsScanned,
		EntriesScanned:       tr.EntriesScanned,
		ClassEntriesScanned:  classCounts64(tr.ClassScanned),
		Comparisons:          tr.Comparisons,
		DuplicatesAvoided:    tr.DuplicatesAvoided,
		BinarySearches:       tr.BinarySearches,
		SecondaryFilterTests: tr.SecondaryFilterTests,
		SecondaryFilterHits:  tr.SecondaryFilterHits,
		RefinementTests:      tr.RefinementTests,
		DistanceComputations: tr.DistanceComputations,
		Results:              tr.Results,
	}
}

type batchResponse struct {
	Counts    []int  `json:"counts"`
	Total     int    `json:"total"`
	Mode      string `json:"mode"`
	Threads   int    `json:"threads"`
	ElapsedUS int64  `json:"elapsed_us"`
}

// ---- shared helpers -------------------------------------------------------

// index returns the unsharded index this request should read: the
// current pinned snapshot in live mode (immutable; later mutations go
// into later snapshots), or the static shared index. nil on a sharded
// server — use shardedSnap there.
func (s *Server) index() *twolayer.Index {
	if s.live != nil {
		return s.live.Snapshot()
	}
	return s.idx
}

// shardedSnap returns the sharded engine this request should read (the
// current snapshot in sharded live mode), or nil on an unsharded server.
func (s *Server) shardedSnap() *twolayer.Sharded {
	if s.sharded != nil {
		return s.sharded
	}
	if s.shardedLive != nil {
		return s.shardedLive.Snapshot()
	}
	return nil
}

// reader returns the introspection surface of the served engine.
func (s *Server) reader() reader {
	if sh := s.shardedSnap(); sh != nil {
		return sh
	}
	return s.index()
}

// estimateWindow returns the engine's O(tiles) cardinality estimate for
// a window, routing to the sharded engine (per-shard sums) or the
// unsharded index of the current snapshot.
func (s *Server) estimateWindow(rect twolayer.Rect) float64 {
	if sh := s.shardedSnap(); sh != nil {
		return sh.EstimateWindow(rect)
	}
	return s.index().EstimateWindow(rect)
}

// shardCount returns the number of shards, or 0 on an unsharded server.
func (s *Server) shardCount() int {
	if s.sharded != nil {
		return s.sharded.Shards()
	}
	if s.shardedLive != nil {
		return s.shardedLive.Shards()
	}
	return 0
}

// shardedStats snapshots the scatter-gather counters; only called on a
// sharded server.
func (s *Server) shardedStats() twolayer.ShardedStats {
	if s.sharded != nil {
		return s.sharded.Stats()
	}
	return s.shardedLive.ShardStats()
}

// view returns the index view this request should query through, plus a
// flush to call once the query finished successfully. Live snapshots are
// already private read views; static indices get one here. Unsharded
// servers only.
func (s *Server) view() (view *twolayer.Index, flush func()) {
	if s.live != nil {
		snap := s.live.Snapshot()
		if s.cfg.CollectStats {
			v, stats := snap.Instrumented()
			return v, func() { s.agg.Observe(stats) }
		}
		return snap, func() {}
	}
	if s.cfg.CollectStats {
		v, stats := s.idx.Instrumented()
		return v, func() { s.agg.Observe(stats) }
	}
	return s.idx.ReadView(), func() {}
}

// headerTrace reports whether the request asked for a trace through the
// X-Trace header (any value but "0" and "false" enables it).
func headerTrace(r *http.Request) bool {
	v := r.Header.Get("X-Trace")
	return v != "" && v != "0" && v != "false"
}

// beginQuery prepares the searcher one single query evaluates on,
// honoring CollectStats, tracing (Config.EnableTracing, the request's
// "trace" field, or an X-Trace header), and the slow-query threshold.
// It returns the searcher and a finish func to call exactly once after
// a successful evaluation: finish merges counters into the /stats
// aggregate, logs the query if it crossed SlowQueryThreshold, and —
// when the client or config asked for a trace — sets a compact X-Trace
// response header and returns the trace to embed in the response (nil
// otherwise).
//
// On a sharded server the searcher is a (possibly traced) engine
// snapshot: traces carry per-shard fan-out spans instead of core
// counters, and CollectStats aggregation does not apply (the merged
// scatter-gather counters live under twolayer_shard_* instead).
func (s *Server) beginQuery(w http.ResponseWriter, r *http.Request, kind string, reqTrace bool) (searcher, func() *traceJSON) {
	want := s.cfg.EnableTracing || reqTrace || headerTrace(r)

	if sh := s.shardedSnap(); sh != nil {
		if !want && s.cfg.SlowQueryThreshold <= 0 {
			return sh, func() *traceJSON { return nil }
		}
		v := sh.Traced()
		start := time.Now()
		return v, func() *traceJSON {
			elapsed := time.Since(start)
			if thr := s.cfg.SlowQueryThreshold; thr > 0 && elapsed >= thr {
				s.metrics.slow.Inc()
				s.cfg.Logger.Warn("slow query",
					"kind", kind,
					"threshold", thr,
					"elapsed_us", elapsed.Microseconds(),
					"shards_scanned", len(v.Spans))
			}
			if !want {
				return nil
			}
			s.metrics.traced.Inc()
			w.Header().Set("X-Trace", fmt.Sprintf("kind=%s elapsed_us=%d shards=%d",
				kind, elapsed.Microseconds(), len(v.Spans)))
			tj := &traceJSON{Kind: kind, ElapsedUS: elapsed.Microseconds()}
			for _, sp := range v.Spans {
				tj.Shards = append(tj.Shards, shardSpanJSON(sp))
			}
			return tj
		}
	}

	if !want && s.cfg.SlowQueryThreshold <= 0 {
		view, flush := s.view()
		return view, func() *traceJSON { flush(); return nil }
	}

	// Traced path: also used trace-internally when only the slow-query
	// log needs timings. The trace embeds the Stats counters, so the
	// /stats aggregation works exactly as on the instrumented path.
	base := s.idx
	if s.live != nil {
		base = s.live.Snapshot()
	}
	view, tr := base.Traced()
	tr.Kind = kind
	start := time.Now()
	return view, func() *traceJSON {
		tr.Finish(start)
		if s.cfg.CollectStats {
			s.agg.Observe(&tr.Stats)
		}
		if thr := s.cfg.SlowQueryThreshold; thr > 0 && tr.Elapsed() >= thr {
			s.metrics.slow.Inc()
			s.cfg.Logger.Warn("slow query",
				"kind", tr.Kind,
				"threshold", thr,
				"elapsed_us", tr.ElapsedNS/1000,
				"filter_us", tr.FilterNS()/1000,
				"refine_us", tr.RefineNS/1000,
				"tiles_visited", tr.TilesVisited,
				"entries_scanned", tr.EntriesScanned,
				"comparisons", tr.Comparisons,
				"refinement_tests", tr.RefinementTests,
				"results", tr.Results)
		}
		if !want {
			return nil
		}
		s.metrics.traced.Inc()
		w.Header().Set("X-Trace", fmt.Sprintf(
			"kind=%s elapsed_us=%d filter_us=%d refine_us=%d tiles=%d entries=%d results=%d",
			tr.Kind, tr.ElapsedNS/1000, tr.FilterNS()/1000, tr.RefineNS/1000,
			tr.TilesVisited, tr.EntriesScanned, tr.Results))
		return newTraceJSON(tr)
	}
}

// clampLimit resolves a request's result limit. ok=false means the value
// was invalid.
func clampLimit(limit int) (int, bool) {
	switch {
	case limit < 0:
		return 0, false
	case limit == 0:
		return DefaultResultLimit, true
	case limit > MaxResultLimit:
		return MaxResultLimit, true
	default:
		return limit, true
	}
}

// requireExactable guards exact=true queries: they need the original
// geometries, which snapshot-loaded indices and live snapshots (whose
// objects can be inserted after the build) do not carry.
func (s *Server) requireExactable(w http.ResponseWriter) bool {
	if s.mut != nil || !s.reader().HasExactGeometries() {
		writeError(w, http.StatusBadRequest,
			"exact queries unavailable: snapshot-loaded and live indices do not carry exact geometries")
		return false
	}
	return true
}

// ---- handlers -------------------------------------------------------------

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	var req windowRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if msg := req.Rect.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	limit, ok := clampLimit(req.Limit)
	if !ok {
		writeError(w, http.StatusBadRequest, "limit must be >= 0")
		return
	}
	if req.Exact && !s.requireExactable(w) {
		return
	}

	ctx := r.Context()
	rect := req.Rect.toRect()
	// Legacy window semantics count every match regardless of the limit,
	// so the full estimate prices the request.
	release, queueWait, admitted := s.admit(ctx, w, classRead, func() float64 {
		return s.estimateWindow(rect)
	})
	if !admitted {
		return
	}
	defer release()
	view, finish := s.beginQuery(w, r, "window", req.Trace)
	if ctx.Err() != nil {
		writeTimeout(w)
		return
	}
	resp := rangeResponse{}
	start := time.Now()

	switch {
	case req.Exact:
		// Exact queries are not interruptible; the deadline was checked
		// once before the (refinement-heavy) evaluation starts. Legacy
		// semantics: count every match, cap only the result list.
		q := twolayer.Query{Window: &rect, Exact: true, Mode: twolayer.RefineAvoidPlus}
		if _, err := view.Search(q, func(id twolayer.ID, _ twolayer.Rect) bool {
			resp.Count++
			if req.CountOnly {
				return true
			}
			if len(resp.Results) < limit {
				resp.Results = append(resp.Results, resultJSON{ID: id})
			} else {
				resp.Truncated = true
			}
			return true
		}); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	case req.CountOnly:
		interrupted := false
		view.Search(twolayer.Query{Window: &rect}, func(id twolayer.ID, _ twolayer.Rect) bool {
			resp.Count++
			if resp.Count%ctxPollInterval == 0 && ctx.Err() != nil {
				interrupted = true
				return false
			}
			return true
		})
		if interrupted {
			writeTimeout(w)
			return
		}
	default:
		interrupted := false
		view.Search(twolayer.Query{Window: &rect}, func(id twolayer.ID, mbr twolayer.Rect) bool {
			resp.Count++
			resp.Results = append(resp.Results, resultJSON{ID: id, MBR: fromRect(mbr)})
			if len(resp.Results) >= limit {
				resp.Truncated = true
				return false
			}
			if resp.Count%ctxPollInterval == 0 && ctx.Err() != nil {
				interrupted = true
				return false
			}
			return true
		})
		if interrupted {
			writeTimeout(w)
			return
		}
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	resp.Trace = finish()
	if resp.Trace != nil {
		resp.Trace.QueueWaitUS = queueWait.Microseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDisk(w http.ResponseWriter, r *http.Request) {
	var req diskRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if msg := req.Center.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	if math.IsNaN(req.Radius) || math.IsInf(req.Radius, 0) || req.Radius < 0 {
		writeError(w, http.StatusBadRequest, "radius must be finite and >= 0")
		return
	}
	limit, ok := clampLimit(req.Limit)
	if !ok {
		writeError(w, http.StatusBadRequest, "limit must be >= 0")
		return
	}
	if req.Exact && !s.requireExactable(w) {
		return
	}

	center := twolayer.Point{X: req.Center.X, Y: req.Center.Y}
	disk := twolayer.Disk{Center: center, Radius: req.Radius}
	release, queueWait, admitted := s.admit(r.Context(), w, classRead, func() float64 {
		return s.estimateWindow(costRect(twolayer.Query{Disk: &disk}))
	})
	if !admitted {
		return
	}
	defer release()
	view, finish := s.beginQuery(w, r, "disk", req.Trace)
	if r.Context().Err() != nil {
		// Disk evaluation has no early-exit hook; honor an already
		// expired deadline before starting.
		writeTimeout(w)
		return
	}
	resp := rangeResponse{}
	start := time.Now()

	// Legacy semantics: count every match, cap only the result list;
	// exact results omit the MBR.
	collect := func(id twolayer.ID, mbr *rectJSON) {
		resp.Count++
		if req.CountOnly {
			return
		}
		if len(resp.Results) < limit {
			resp.Results = append(resp.Results, resultJSON{ID: id, MBR: mbr})
		} else {
			resp.Truncated = true
		}
	}
	q := twolayer.Query{Disk: &disk, Exact: req.Exact, Mode: twolayer.RefineAvoidPlus}
	if _, err := view.Search(q, func(id twolayer.ID, mbr twolayer.Rect) bool {
		if req.Exact {
			collect(id, nil)
		} else {
			collect(id, fromRect(mbr))
		}
		return true
	}); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	resp.Trace = finish()
	if resp.Trace != nil {
		resp.Trace.QueueWaitUS = queueWait.Microseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if msg := req.Center.validate(); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}
	if req.K < 1 || req.K > MaxK {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("k must be in [1, %d]", MaxK))
		return
	}
	if req.Exact && !s.requireExactable(w) {
		return
	}

	// kNN work scales with k and density, not a window estimate; admit
	// with no cost hint (priced at the class EWMA).
	release, queueWait, admitted := s.admit(r.Context(), w, classRead, nil)
	if !admitted {
		return
	}
	defer release()
	view, finish := s.beginQuery(w, r, "knn", req.Trace)
	if r.Context().Err() != nil {
		writeTimeout(w)
		return
	}
	q := twolayer.Point{X: req.Center.X, Y: req.Center.Y}
	start := time.Now()
	var neighbors []twolayer.Neighbor
	if req.Exact {
		neighbors = view.KNNExact(q, req.K)
	} else {
		neighbors = view.KNN(q, req.K)
	}
	resp := knnResponse{
		Neighbors: make([]neighborJSON, len(neighbors)),
		ElapsedUS: time.Since(start).Microseconds(),
	}
	for i, n := range neighbors {
		resp.Neighbors[i] = neighborJSON{ID: n.ID, Distance: n.Dist}
	}
	resp.Trace = finish()
	if resp.Trace != nil {
		resp.Trace.QueueWaitUS = queueWait.Microseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var strategy twolayer.BatchStrategy
	switch req.Mode {
	case "", "tiles":
		req.Mode, strategy = "tiles", twolayer.TilesBased
	case "queries":
		strategy = twolayer.QueriesBased
	default:
		writeError(w, http.StatusBadRequest, `mode must be "tiles" or "queries"`)
		return
	}
	if req.Threads < 0 {
		writeError(w, http.StatusBadRequest, "threads must be >= 0")
		return
	}
	threads := req.Threads
	if threads == 0 || threads > runtime.NumCPU() {
		threads = runtime.NumCPU()
	}
	if (len(req.Windows) > 0) == (len(req.Disks) > 0) {
		writeError(w, http.StatusBadRequest,
			`exactly one of "windows" or "disks" must be non-empty`)
		return
	}
	n := len(req.Windows) + len(req.Disks)
	if n > MaxBatchQueries {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds the maximum of %d", n, MaxBatchQueries))
		return
	}

	// A batch's cost scales with its query count, so the count is the
	// cost hint within the batch class.
	release, _, admitted := s.admit(r.Context(), w, classBatch, func() float64 {
		return float64(n)
	})
	if !admitted {
		return
	}
	defer release()

	// Batches run uninstrumented on the shared index (or one pinned live
	// snapshot): the tiles-based strategy interleaves queries across
	// worker goroutines, so a single per-request Stats would race (see
	// docs/SERVER.md).
	if r.Context().Err() != nil {
		writeTimeout(w)
		return
	}
	sh := s.shardedSnap()
	var idx *twolayer.Index
	if sh == nil {
		idx = s.index()
	}
	resp := batchResponse{Mode: req.Mode, Threads: threads}
	start := time.Now()
	if len(req.Windows) > 0 {
		rects := make([]twolayer.Rect, len(req.Windows))
		for i, rj := range req.Windows {
			if msg := rj.validate(); msg != "" {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("windows[%d]: %s", i, msg))
				return
			}
			rects[i] = rj.toRect()
		}
		if sh != nil {
			qs := make([]twolayer.Query, len(rects))
			for i := range rects {
				qs[i] = twolayer.Query{Window: &rects[i]}
			}
			counts, err := sh.BatchCounts(qs, strategy, threads)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			resp.Counts = counts
		} else {
			resp.Counts = idx.BatchWindowCounts(rects, strategy, threads)
		}
	} else {
		disks := make([]twolayer.Disk, len(req.Disks))
		for i, dj := range req.Disks {
			if msg := dj.Center.validate(); msg != "" {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("disks[%d]: %s", i, msg))
				return
			}
			if math.IsNaN(dj.Radius) || math.IsInf(dj.Radius, 0) || dj.Radius < 0 {
				writeError(w, http.StatusBadRequest,
					fmt.Sprintf("disks[%d]: radius must be finite and >= 0", i))
				return
			}
			disks[i] = twolayer.Disk{
				Center: twolayer.Point{X: dj.Center.X, Y: dj.Center.Y},
				Radius: dj.Radius,
			}
		}
		if sh != nil {
			qs := make([]twolayer.Query, len(disks))
			for i := range disks {
				qs[i] = twolayer.Query{Disk: &disks[i]}
			}
			counts, err := sh.BatchCounts(qs, strategy, threads)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			resp.Counts = counts
		} else {
			resp.Counts = idx.BatchDiskCounts(disks, strategy, threads)
		}
	}
	for _, c := range resp.Counts {
		resp.Total += c
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	writeJSON(w, http.StatusOK, resp)
}

// ---- stats & health -------------------------------------------------------

type indexInfoJSON struct {
	Objects           int     `json:"objects"`
	GridNX            int     `json:"grid_nx"`
	GridNY            int     `json:"grid_ny"`
	ReplicationFactor float64 `json:"replication_factor"`
	MemoryBytes       int     `json:"memory_bytes"`
	ExactGeometries   bool    `json:"exact_geometries"`
}

type countersJSON struct {
	TilesVisited         int64           `json:"tiles_visited"`
	PartitionsScanned    int64           `json:"partitions_scanned"`
	EntriesScanned       int64           `json:"entries_scanned"`
	ClassEntriesScanned  classCountsJSON `json:"class_entries_scanned"`
	Comparisons          int64           `json:"comparisons"`
	Results              int64           `json:"results"`
	DuplicatesAvoided    int64           `json:"duplicates_avoided"`
	BinarySearches       int64           `json:"binary_searches"`
	SecondaryFilterTests int64           `json:"secondary_filter_tests"`
	SecondaryFilterHits  int64           `json:"secondary_filter_hits"`
	RefinementTests      int64           `json:"refinement_tests"`
	DistanceComputations int64           `json:"distance_computations"`
}

// partitionsJSON reports the shape of the served index's partitioning
// (Index.PartitionStats), recomputed per /stats request.
type partitionsJSON struct {
	GridTiles         int             `json:"grid_tiles"`
	OccupiedTiles     int             `json:"occupied_tiles"`
	Objects           int             `json:"objects"`
	Replicas          int             `json:"replicas"`
	ClassEntries      classCountsJSON `json:"class_entries"`
	MaxTileEntries    int             `json:"max_tile_entries"`
	MeanTileEntries   float64         `json:"mean_tile_entries"`
	SkewRatio         float64         `json:"skew_ratio"`
	ReplicationFactor float64         `json:"replication_factor"`
	BoundaryRatio     float64         `json:"boundary_ratio"`
	DecomposedTiles   int             `json:"decomposed_tiles"`
}

// liveStatsJSON reports the apply loop of a live-mode server: the
// published epoch, the mutation backlog, and publish totals/latency.
// Naming follows the /stats conventions (docs/OBSERVABILITY.md):
// snake_case, cumulative counters end in _total, durations are float
// seconds with a _seconds suffix.
type liveStatsJSON struct {
	Epoch               uint64  `json:"epoch"`
	PendingMutations    int64   `json:"pending_mutations"`
	AppliedMutations    uint64  `json:"applied_mutations_total"`
	Publishes           uint64  `json:"publishes_total"`
	Rebuilds            uint64  `json:"rebuilds_total"`
	LastBatchMutations  int64   `json:"last_batch_mutations"`
	LastPublishSeconds  float64 `json:"last_publish_seconds"`
	PublishSecondsTotal float64 `json:"publish_seconds_total"`
}

// durabilityJSON reports the durability engine of a durable-mode
// server: log shape, fsync and checkpoint counters with cumulative
// latencies, and what startup recovery replayed. Same naming
// conventions as liveStatsJSON.
type durabilityJSON struct {
	FsyncPolicy            string  `json:"fsync_policy"`
	Segments               int     `json:"segments"`
	LogBytes               int64   `json:"log_bytes"`
	AppendedRecords        uint64  `json:"appended_records_total"`
	AppendedBytes          uint64  `json:"appended_bytes_total"`
	Fsyncs                 uint64  `json:"fsyncs_total"`
	Rotations              uint64  `json:"rotations_total"`
	PrunedSegments         uint64  `json:"pruned_segments_total"`
	AppendSecondsTotal     float64 `json:"append_seconds_total"`
	FsyncSecondsTotal      float64 `json:"fsync_seconds_total"`
	Checkpoints            uint64  `json:"checkpoints_total"`
	CheckpointEpoch        uint64  `json:"checkpoint_epoch"`
	CheckpointAgeSeconds   float64 `json:"checkpoint_age_seconds"`
	CheckpointSecondsTotal float64 `json:"checkpoint_seconds_total"`
	SinceCheckpoint        int64   `json:"mutations_since_checkpoint"`
	ReplayedRecords        int     `json:"replayed_records"`
	ReplayedMutations      int     `json:"replayed_mutations"`
	RecoveryTruncatedLog   bool    `json:"recovery_truncated_log"`
	// LogFailed is non-empty once the log hit an unrecoverable write or
	// fsync error; all mutations are being rejected until the node is
	// restarted on a healthy disk.
	LogFailed string `json:"log_failed,omitempty"`
}

// shardStatJSON is one shard's slice of the "shards" stats section.
type shardStatJSON struct {
	Shard       int     `json:"shard"`
	Objects     int     `json:"objects"`
	Epoch       uint64  `json:"epoch"`
	Queries     uint64  `json:"queries_total"`
	BusySeconds float64 `json:"busy_seconds_total"`
	Results     uint64  `json:"results_total"`
}

// shardsJSON reports the scatter-gather engine of a sharded server:
// fast-path vs fan-out query totals and per-shard load.
type shardsJSON struct {
	Count              int             `json:"count"`
	SingleShardQueries uint64          `json:"single_shard_queries_total"`
	FanoutQueries      uint64          `json:"fanout_queries_total"`
	PerShard           []shardStatJSON `json:"per_shard"`
}

// admissionClassJSON is one endpoint class's slice of the "admission"
// stats section: its configured limits, current occupancy, and outcome
// totals (same naming conventions as liveStatsJSON).
type admissionClassJSON struct {
	MaxInflight   int    `json:"max_inflight"`
	QueueDepth    int    `json:"queue_depth"`
	Inflight      int64  `json:"inflight"`
	Queued        int64  `json:"queued"`
	Admitted      uint64 `json:"admitted_total"`
	ShedQueueFull uint64 `json:"shed_queue_full_total"`
	ShedDeadline  uint64 `json:"shed_deadline_total"`
	ShedExpired   uint64 `json:"shed_expired_total"`
}

// admissionBacklogJSON reports the mutation-backpressure half of the
// overload valve (live modes only): the apply backlog against its bound
// and how many submissions the bound rejected.
type admissionBacklogJSON struct {
	PendingMutations int64  `json:"pending_mutations"`
	Limit            int    `json:"limit"`
	Rejected         uint64 `json:"rejected_total"`
}

// admissionJSON is the "admission" stats section, present when
// admission control is enabled (Config.MaxInflight >= 0).
type admissionJSON struct {
	Classes map[string]admissionClassJSON `json:"classes"`
	Backlog *admissionBacklogJSON         `json:"backlog,omitempty"`
}

type statsResponse struct {
	Index           indexInfoJSON   `json:"index"`
	Partitions      partitionsJSON  `json:"partitions"`
	Shards          *shardsJSON     `json:"shards,omitempty"`
	Live            *liveStatsJSON  `json:"live,omitempty"`
	Durability      *durabilityJSON `json:"durability,omitempty"`
	Admission       *admissionJSON  `json:"admission,omitempty"`
	StatsEnabled    bool            `json:"stats_enabled"`
	TracingEnabled  bool            `json:"tracing_enabled"`
	QueriesObserved int64           `json:"queries_observed"`
	Counters        countersJSON    `json:"counters"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	idx := s.reader()
	nx, ny := idx.GridDims()
	var shards *shardsJSON
	if s.shardCount() > 0 {
		st := s.shardedStats()
		shards = &shardsJSON{
			Count:              len(st.PerShard),
			SingleShardQueries: st.SingleShard,
			FanoutQueries:      st.Fanout,
			PerShard:           make([]shardStatJSON, len(st.PerShard)),
		}
		for i, ps := range st.PerShard {
			shards.PerShard[i] = shardStatJSON{
				Shard:       i,
				Objects:     ps.Objects,
				Epoch:       ps.Epoch,
				Queries:     ps.Queries,
				BusySeconds: float64(ps.BusyNS) / 1e9,
				Results:     ps.Results,
			}
		}
	}
	var live *liveStatsJSON
	if s.mut != nil {
		ls := s.mut.Stats()
		live = &liveStatsJSON{
			Epoch:               ls.Epoch,
			PendingMutations:    ls.Pending,
			AppliedMutations:    ls.Applied,
			Publishes:           ls.Publishes,
			Rebuilds:            ls.Rebuilds,
			LastBatchMutations:  ls.LastBatch,
			LastPublishSeconds:  ls.LastPublish.Seconds(),
			PublishSecondsTotal: ls.PublishTotal.Seconds(),
		}
	}
	var durability *durabilityJSON
	if s.ckpt != nil {
		ds := s.ckpt.Stats()
		durability = &durabilityJSON{
			FsyncPolicy:            ds.Policy.String(),
			Segments:               ds.Segments,
			LogBytes:               ds.LogBytes,
			AppendedRecords:        ds.AppendedRecords,
			AppendedBytes:          ds.AppendedBytes,
			Fsyncs:                 ds.Fsyncs,
			Rotations:              ds.Rotations,
			PrunedSegments:         ds.PrunedSegments,
			AppendSecondsTotal:     ds.AppendTotal.Seconds(),
			FsyncSecondsTotal:      ds.FsyncTotal.Seconds(),
			Checkpoints:            ds.Checkpoints,
			CheckpointEpoch:        ds.CheckpointEpoch,
			CheckpointAgeSeconds:   ds.CheckpointAge.Seconds(),
			CheckpointSecondsTotal: ds.CheckpointTotal.Seconds(),
			SinceCheckpoint:        ds.SinceCheckpoint,
			ReplayedRecords:        ds.Recovery.ReplayedRecords,
			ReplayedMutations:      ds.Recovery.ReplayedMutations,
			RecoveryTruncatedLog:   ds.Recovery.TruncatedTail,
			LogFailed:              ds.Failed,
		}
	}
	var admissionSec *admissionJSON
	if s.adm != nil {
		admissionSec = &admissionJSON{
			Classes: make(map[string]admissionClassJSON, numClasses),
		}
		for c := admissionClass(0); c < numClasses; c++ {
			g := s.adm.gates[c]
			admissionSec.Classes[g.name] = admissionClassJSON{
				MaxInflight:   g.maxInflight,
				QueueDepth:    g.queueDepth,
				Inflight:      g.inflight.Load(),
				Queued:        g.queued.Load(),
				Admitted:      g.admitted.Load(),
				ShedQueueFull: g.shed[shedQueueFull-1].Load(),
				ShedDeadline:  g.shed[shedDeadline-1].Load(),
				ShedExpired:   g.shed[shedExpired-1].Load(),
			}
		}
		if s.mut != nil {
			ls := s.mut.Stats()
			admissionSec.Backlog = &admissionBacklogJSON{
				PendingMutations: ls.Pending,
				Limit:            ls.BacklogLimit,
				Rejected:         ls.Rejected,
			}
		}
	}
	ps := idx.PartitionStats()
	var classEntries classCountsJSON
	classEntries.A = int64(ps.ClassCounts[0])
	classEntries.B = int64(ps.ClassCounts[1])
	classEntries.C = int64(ps.ClassCounts[2])
	classEntries.D = int64(ps.ClassCounts[3])
	snap := s.agg.Snapshot()
	writeJSON(w, http.StatusOK, statsResponse{
		Index: indexInfoJSON{
			Objects:           idx.Len(),
			GridNX:            nx,
			GridNY:            ny,
			ReplicationFactor: idx.ReplicationFactor(),
			MemoryBytes:       idx.MemoryFootprint(),
			ExactGeometries:   idx.HasExactGeometries(),
		},
		Partitions: partitionsJSON{
			GridTiles:         ps.GridTiles,
			OccupiedTiles:     ps.OccupiedTiles,
			Objects:           ps.Objects,
			Replicas:          ps.Replicas,
			ClassEntries:      classEntries,
			MaxTileEntries:    ps.MaxTileEntries,
			MeanTileEntries:   ps.MeanTileEntries,
			SkewRatio:         ps.SkewRatio,
			ReplicationFactor: ps.ReplicationFactor,
			BoundaryRatio:     ps.BoundaryRatio,
			DecomposedTiles:   ps.DecomposedTiles,
		},
		Shards:          shards,
		Live:            live,
		Durability:      durability,
		Admission:       admissionSec,
		StatsEnabled:    s.cfg.CollectStats,
		TracingEnabled:  s.cfg.EnableTracing,
		QueriesObserved: s.agg.Queries(),
		Counters: countersJSON{
			TilesVisited:         snap.TilesVisited,
			PartitionsScanned:    snap.PartitionsScanned,
			EntriesScanned:       snap.EntriesScanned,
			ClassEntriesScanned:  classCounts64(snap.ClassScanned),
			Comparisons:          snap.Comparisons,
			Results:              snap.Results,
			DuplicatesAvoided:    snap.DuplicatesAvoided,
			BinarySearches:       snap.BinarySearches,
			SecondaryFilterTests: snap.SecondaryFilterTests,
			SecondaryFilterHits:  snap.SecondaryFilterHits,
			RefinementTests:      snap.RefinementTests,
			DistanceComputations: snap.DistanceComputations,
		},
	})
}

// handleCheckpoint (POST /checkpoint, durable mode) forces a checkpoint
// of the current snapshot and prunes the log segments it covers.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	release, _, admitted := s.admit(r.Context(), w, classMutate, nil)
	if !admitted {
		return
	}
	defer release()
	start := time.Now()
	epoch, err := s.ckpt.Checkpoint()
	if err != nil {
		s.cfg.Logger.Error("checkpoint failed", "err", err)
		writeError(w, http.StatusInternalServerError, "checkpoint failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":      epoch,
		"elapsed_us": time.Since(start).Microseconds(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":  "ok",
		"objects": s.reader().Len(),
	}
	if s.mut != nil {
		body["epoch"] = s.mut.Stats().Epoch
	}
	writeJSON(w, http.StatusOK, body)
}
