// Package server is the long-lived serving surface of the two-layer
// index: an HTTP/JSON API exposing the paper's query types (window, disk,
// kNN, and queries-based/tiles-based batches) over one shared in-memory
// index, evaluated concurrently across requests.
//
// The server runs in one of two modes. In static mode the index is built
// (or snapshot-loaded) once and never updated while serving, which is
// what makes lock-free concurrent reads safe. In live mode (Config.Live)
// the server fronts an updatable twolayer.Live: every query pins one
// immutable copy-on-write snapshot — still a single atomic load, still no
// locks on the read path — and mutation endpoints (POST /insert, /delete,
// /bulk) feed the single-writer apply loop. In both modes each request
// queries through a private read view (Index.ReadView /
// Index.Instrumented or a pinned snapshot), so kNN scratch space and
// stats counters are per-request; aggregated counters are published on
// GET /stats and per-endpoint latency/error metrics on GET /metrics.
//
// See docs/SERVER.md for the full API reference and operator guide.
package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// Defaults for Config fields left zero.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBodyBytes   = 8 << 20 // 8 MiB; batch requests dominate
	DefaultResultLimit    = 1000
	MaxResultLimit        = 100000
	MaxBatchQueries       = 100000
	MaxK                  = 10000
	shutdownGrace         = 10 * time.Second
)

// Config configures a Server. Exactly one of Index, Live, and Durable
// must be set.
type Config struct {
	// Index is the shared index all requests query (static mode). It must
	// not be updated while the server runs.
	Index *twolayer.Index

	// Live is an updatable index (live mode): queries pin per-request
	// snapshots and the mutation endpoints POST /insert, /delete, and
	// /bulk are mounted. The server does not close it; the owner should
	// Close it after shutdown.
	Live *twolayer.Live

	// Durable is an updatable index backed by the durability engine
	// (write-ahead log + checkpoints). It implies live mode — all Live
	// endpoints are mounted — and additionally mounts POST /checkpoint
	// and a "durability" section on GET /stats. The server does not
	// close it; the owner should Close it after shutdown (a clean close
	// fsyncs the log tail).
	Durable *twolayer.DurableLive

	// Logger receives structured request logs. Defaults to slog.Default().
	Logger *slog.Logger

	// RequestTimeout bounds the evaluation of one request. Cancellation is
	// cooperative at tile granularity for window queries and between
	// stages elsewhere; see docs/SERVER.md for exact semantics.
	// Defaults to DefaultRequestTimeout.
	RequestTimeout time.Duration

	// MaxBodyBytes caps request body size (413 beyond it). Defaults to
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// CollectStats, when true, runs single queries on instrumented views
	// and aggregates their core counters for GET /stats.
	CollectStats bool

	// EnableTracing, when true, evaluates every single query on a traced
	// view and attaches the per-stage trace to the response (the "trace"
	// field). Clients can also request a trace per call — `"trace": true`
	// in the body or an `X-Trace: 1` request header — without enabling it
	// globally. Tracing implies CollectStats semantics for the traced
	// request (the trace embeds the core counters).
	EnableTracing bool

	// SlowQueryThreshold, when positive, traces every single query and
	// logs (level WARN) any whose evaluation takes at least this long,
	// with the full trace attached. Independent of EnableTracing: slow
	// queries are traced internally even when no client asked for one.
	SlowQueryThreshold time.Duration

	// BuildDuration, if known, is the wall time of the initial index
	// build or snapshot load; it is exported as the
	// twolayer_index_build_seconds gauge.
	BuildDuration time.Duration

	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// Server serves spatial queries over one shared two-layer index.
type Server struct {
	cfg     Config
	idx     *twolayer.Index       // static mode; nil in live mode
	live    *twolayer.Live        // live mode; nil in static mode
	durable *twolayer.DurableLive // durable live mode; nil otherwise
	metrics *Metrics
	agg     *twolayer.AtomicStats
	mux     *http.ServeMux
}

// New builds a Server from cfg. It panics unless exactly one of
// cfg.Index, cfg.Live, and cfg.Durable is set (a programming error, not
// a runtime condition).
func New(cfg Config) *Server {
	set := 0
	for _, on := range []bool{cfg.Index != nil, cfg.Live != nil, cfg.Durable != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		panic("server: exactly one of Config.Index, Config.Live and Config.Durable is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		idx:     cfg.Index,
		live:    cfg.Live,
		durable: cfg.Durable,
		agg:     &twolayer.AtomicStats{},
		mux:     http.NewServeMux(),
	}
	if s.durable != nil {
		s.live = s.durable.Live() // durable mode is live mode plus a WAL
	}
	names := []string{
		"query/window", "query/disk", "query/knn", "query/batch",
		"stats", "healthz",
	}
	if s.live != nil {
		names = append(names, "mutate/insert", "mutate/delete", "mutate/bulk")
	}
	if s.durable != nil {
		names = append(names, "checkpoint")
	}
	s.metrics = newMetrics(s, names)
	s.metrics.buildDur.Set(cfg.BuildDuration.Seconds())
	s.routes()
	return s
}

// routes registers all endpoints. Every name registered here must be
// listed in newMetrics above and documented in docs/SERVER.md.
func (s *Server) routes() {
	query := func(name string, h http.HandlerFunc) http.Handler {
		return s.instrument(name, s.limitBody(s.withTimeout(h)))
	}
	s.mux.Handle("POST /query/window", query("query/window", s.handleWindow))
	s.mux.Handle("POST /query/disk", query("query/disk", s.handleDisk))
	s.mux.Handle("POST /query/knn", query("query/knn", s.handleKNN))
	s.mux.Handle("POST /query/batch", query("query/batch", s.handleBatch))

	if s.live != nil {
		// Mutations skip withTimeout: a submission blocks until its batch
		// is published, and canceling mid-apply cannot undo the accepted
		// mutation — the ack must be reported to the client.
		mutate := func(name string, h http.HandlerFunc) http.Handler {
			return s.instrument(name, s.limitBody(h))
		}
		s.mux.Handle("POST /insert", mutate("mutate/insert", s.handleInsert))
		s.mux.Handle("POST /delete", mutate("mutate/delete", s.handleDelete))
		s.mux.Handle("POST /bulk", mutate("mutate/bulk", s.handleBulk))
	}
	if s.durable != nil {
		// No withTimeout: a checkpoint runs to completion once started.
		s.mux.Handle("POST /checkpoint",
			s.instrument("checkpoint", http.HandlerFunc(s.handleCheckpoint)))
	}

	s.mux.Handle("GET /stats", s.instrument("stats", http.HandlerFunc(s.handleStats)))
	s.mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /metrics", s.metrics)

	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// ListenAndServe serves on addr until ctx is canceled, then shuts down
// gracefully: in-flight requests get shutdownGrace to finish. It returns
// nil on clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logger.Info("shutting down", "grace", shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}
