// Package server is the long-lived serving surface of the two-layer
// index: an HTTP/JSON API exposing the paper's query types (window, disk,
// kNN, and queries-based/tiles-based batches) over one shared in-memory
// index, evaluated concurrently across requests.
//
// The server runs in one of two modes. In static mode the index is built
// (or snapshot-loaded) once and never updated while serving, which is
// what makes lock-free concurrent reads safe. In live mode (Config.Live)
// the server fronts an updatable twolayer.Live: every query pins one
// immutable copy-on-write snapshot — still a single atomic load, still no
// locks on the read path — and mutation endpoints (POST /insert, /delete,
// /bulk) feed the single-writer apply loop. In both modes each request
// queries through a private read view (Index.ReadView /
// Index.Instrumented or a pinned snapshot), so kNN scratch space and
// stats counters are per-request; aggregated counters are published on
// GET /stats and per-endpoint latency/error metrics on GET /metrics.
//
// See docs/SERVER.md for the full API reference and operator guide.
package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// Defaults for Config fields left zero.
const (
	DefaultRequestTimeout = 5 * time.Second
	DefaultMaxBodyBytes   = 8 << 20 // 8 MiB; batch requests dominate
	DefaultResultLimit    = 1000
	MaxResultLimit        = 100000
	MaxBatchQueries       = 100000
	MaxK                  = 10000
	shutdownGrace         = 10 * time.Second
)

// Config configures a Server. Exactly one of the six engine fields —
// Index, Live, Durable, Sharded, ShardedLive, and ShardedDurable — must
// be set.
type Config struct {
	// Index is the shared index all requests query (static mode). It must
	// not be updated while the server runs.
	Index *twolayer.Index

	// Live is an updatable index (live mode): queries pin per-request
	// snapshots and the mutation endpoints POST /insert, /delete, and
	// /bulk are mounted. The server does not close it; the owner should
	// Close it after shutdown.
	Live *twolayer.Live

	// Durable is an updatable index backed by the durability engine
	// (write-ahead log + checkpoints). It implies live mode — all Live
	// endpoints are mounted — and additionally mounts POST /checkpoint
	// and a "durability" section on GET /stats. The server does not
	// close it; the owner should Close it after shutdown (a clean close
	// fsyncs the log tail).
	Durable *twolayer.DurableLive

	// Sharded is a static scatter-gather engine: every query endpoint
	// routes through its shards, per-shard fan-out metrics are exported
	// under twolayer_shard_*, and traces report per-shard spans. Like
	// Index it must not be updated while serving.
	Sharded *twolayer.Sharded

	// ShardedLive is the updatable sharded engine: live mode with one
	// apply loop per shard.
	ShardedLive *twolayer.ShardedLive

	// ShardedDurable is the sharded durability engine (one write-ahead
	// log per shard): sharded live mode plus POST /checkpoint and the
	// "durability" stats section.
	ShardedDurable *twolayer.ShardedDurable

	// Logger receives structured request logs. Defaults to slog.Default().
	Logger *slog.Logger

	// RequestTimeout bounds the evaluation of one request. Cancellation is
	// cooperative at tile granularity for window queries and between
	// stages elsewhere; see docs/SERVER.md for exact semantics.
	// Defaults to DefaultRequestTimeout.
	RequestTimeout time.Duration

	// MaxBodyBytes caps request body size (413 beyond it). Defaults to
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// MaxInflight caps concurrently evaluating requests per endpoint
	// class — read (window/disk/knn), mutate (insert/delete/bulk/
	// checkpoint), and batch each get their own semaphore of this size.
	// Requests beyond it join a bounded FIFO wait queue or are shed with
	// 429 + Retry-After (see docs/SERVER.md#overload-behavior). 0 means
	// the default of max(16, 4×GOMAXPROCS); negative disables admission
	// control entirely.
	MaxInflight int

	// QueueDepth bounds each class's admission wait queue. Requests
	// arriving with the queue full are shed immediately. 0 means the
	// default of 8× the effective MaxInflight; negative means no queue
	// (shed as soon as all slots are busy).
	QueueDepth int

	// CollectStats, when true, runs single queries on instrumented views
	// and aggregates their core counters for GET /stats.
	CollectStats bool

	// EnableTracing, when true, evaluates every single query on a traced
	// view and attaches the per-stage trace to the response (the "trace"
	// field). Clients can also request a trace per call — `"trace": true`
	// in the body or an `X-Trace: 1` request header — without enabling it
	// globally. Tracing implies CollectStats semantics for the traced
	// request (the trace embeds the core counters).
	EnableTracing bool

	// SlowQueryThreshold, when positive, traces every single query and
	// logs (level WARN) any whose evaluation takes at least this long,
	// with the full trace attached. Independent of EnableTracing: slow
	// queries are traced internally even when no client asked for one.
	SlowQueryThreshold time.Duration

	// BuildDuration, if known, is the wall time of the initial index
	// build or snapshot load; it is exported as the
	// twolayer_index_build_seconds gauge.
	BuildDuration time.Duration

	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return c
}

// searcher is the query surface every request evaluates on: a private
// read view of a *twolayer.Index, a *twolayer.Sharded snapshot, or
// their traced variants. All query handlers — /v1 and legacy — go
// through it, so the same handler code serves every engine topology.
type searcher interface {
	Search(q twolayer.Query, fn func(id twolayer.ID, mbr twolayer.Rect) bool) (bool, error)
	SearchCount(q twolayer.Query) (int, error)
	KNN(q twolayer.Point, k int) []twolayer.Neighbor
	KNNExact(q twolayer.Point, k int) []twolayer.Neighbor
}

// reader is the introspection surface (/stats, /healthz, index gauges),
// satisfied by *twolayer.Index and *twolayer.Sharded alike.
type reader interface {
	Len() int
	Epoch() uint64
	GridDims() (int, int)
	MemoryFootprint() int
	ReplicationFactor() float64
	PartitionStats() twolayer.PartitionStats
	HasExactGeometries() bool
	QueryPathStats() twolayer.PathStats
}

// mutator is the mutation surface of a live-mode server, satisfied by
// *twolayer.Live and *twolayer.ShardedLive.
type mutator interface {
	Insert(id twolayer.ID, mbr twolayer.Rect) (uint64, error)
	Delete(id twolayer.ID, mbr twolayer.Rect) (found bool, epoch uint64, err error)
	Apply(muts []twolayer.Mutation) (twolayer.ApplyResult, error)
	Stats() twolayer.LiveStats
}

// checkpointer is the durability surface of a durable-mode server,
// satisfied by *twolayer.DurableLive and *twolayer.ShardedDurable.
type checkpointer interface {
	Checkpoint() (uint64, error)
	Stats() twolayer.DurabilityStats
}

// Server serves spatial queries over one shared two-layer index.
type Server struct {
	cfg         Config
	idx         *twolayer.Index   // static unsharded mode; nil otherwise
	live        *twolayer.Live    // unsharded live mode; nil otherwise
	sharded     *twolayer.Sharded // static sharded mode; nil otherwise
	shardedLive *twolayer.ShardedLive
	mut         mutator      // non-nil in any live mode
	ckpt        checkpointer // non-nil in any durable mode
	adm         *admission   // nil when admission control is disabled
	metrics     *Metrics
	agg         *twolayer.AtomicStats
	mux         *http.ServeMux
}

// New builds a Server from cfg. It panics unless exactly one of the six
// engine fields is set (a programming error, not a runtime condition).
func New(cfg Config) *Server {
	set := 0
	for _, on := range []bool{
		cfg.Index != nil, cfg.Live != nil, cfg.Durable != nil,
		cfg.Sharded != nil, cfg.ShardedLive != nil, cfg.ShardedDurable != nil,
	} {
		if on {
			set++
		}
	}
	if set != 1 {
		panic("server: exactly one of Config.Index, Config.Live, Config.Durable, " +
			"Config.Sharded, Config.ShardedLive and Config.ShardedDurable is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		idx:         cfg.Index,
		live:        cfg.Live,
		sharded:     cfg.Sharded,
		shardedLive: cfg.ShardedLive,
		agg:         &twolayer.AtomicStats{},
		mux:         http.NewServeMux(),
	}
	// Durable modes are their live modes plus a WAL.
	if cfg.Durable != nil {
		s.live = cfg.Durable.Live()
		s.ckpt = cfg.Durable
	}
	if cfg.ShardedDurable != nil {
		s.shardedLive = cfg.ShardedDurable.Live()
		s.ckpt = cfg.ShardedDurable
	}
	if s.live != nil {
		s.mut = s.live
	}
	if s.shardedLive != nil {
		s.mut = s.shardedLive
	}
	if cfg.MaxInflight >= 0 {
		s.adm = newAdmission(cfg.MaxInflight, cfg.QueueDepth)
	}
	names := []string{
		"query/window", "query/disk", "query/knn", "query/batch",
		"v1/window", "v1/disk", "v1/knn", "v1/batch",
		"stats", "healthz", "v1/stats", "v1/healthz",
	}
	if s.mut != nil {
		names = append(names,
			"mutate/insert", "mutate/delete", "mutate/bulk",
			"v1/insert", "v1/delete", "v1/bulk")
	}
	if s.ckpt != nil {
		names = append(names, "checkpoint", "v1/checkpoint")
	}
	s.metrics = newMetrics(s, names)
	s.metrics.buildDur.Set(cfg.BuildDuration.Seconds())
	s.routes()
	return s
}

// routes registers all endpoints. Every name registered here must be
// listed in newMetrics above and documented in docs/SERVER.md.
//
// The /v1/ prefix is the current API: every query and mutation endpoint
// lives there with the unified request envelope. The unversioned paths
// are deprecated aliases kept for existing clients — identical
// semantics, plus a Deprecation header, a Link to the /v1 successor,
// and a twolayer_deprecated_requests_total sample per request.
func (s *Server) routes() {
	query := func(name string, h http.HandlerFunc) http.Handler {
		return s.instrument(name, s.limitBody(s.withTimeout(h)))
	}
	s.mux.Handle("POST /v1/window", query("v1/window", s.handleV1Window))
	s.mux.Handle("POST /v1/disk", query("v1/disk", s.handleV1Disk))
	s.mux.Handle("POST /v1/knn", query("v1/knn", s.handleKNN))
	s.mux.Handle("POST /v1/batch", query("v1/batch", s.handleBatch))
	s.mux.Handle("POST /query/window",
		s.deprecate("query/window", "/v1/window", query("query/window", s.handleWindow)))
	s.mux.Handle("POST /query/disk",
		s.deprecate("query/disk", "/v1/disk", query("query/disk", s.handleDisk)))
	s.mux.Handle("POST /query/knn",
		s.deprecate("query/knn", "/v1/knn", query("query/knn", s.handleKNN)))
	s.mux.Handle("POST /query/batch",
		s.deprecate("query/batch", "/v1/batch", query("query/batch", s.handleBatch)))

	if s.mut != nil {
		// Mutations skip withTimeout: a submission blocks until its batch
		// is published, and canceling mid-apply cannot undo the accepted
		// mutation — the ack must be reported to the client.
		mutate := func(name string, h http.HandlerFunc) http.Handler {
			return s.instrument(name, s.limitBody(h))
		}
		s.mux.Handle("POST /v1/insert", mutate("v1/insert", s.handleInsert))
		s.mux.Handle("POST /v1/delete", mutate("v1/delete", s.handleDelete))
		s.mux.Handle("POST /v1/bulk", mutate("v1/bulk", s.handleBulk))
		s.mux.Handle("POST /insert",
			s.deprecate("mutate/insert", "/v1/insert", mutate("mutate/insert", s.handleInsert)))
		s.mux.Handle("POST /delete",
			s.deprecate("mutate/delete", "/v1/delete", mutate("mutate/delete", s.handleDelete)))
		s.mux.Handle("POST /bulk",
			s.deprecate("mutate/bulk", "/v1/bulk", mutate("mutate/bulk", s.handleBulk)))
	}
	if s.ckpt != nil {
		// No withTimeout: a checkpoint runs to completion once started.
		s.mux.Handle("POST /v1/checkpoint",
			s.instrument("v1/checkpoint", http.HandlerFunc(s.handleCheckpoint)))
		s.mux.Handle("POST /checkpoint",
			s.deprecate("checkpoint", "/v1/checkpoint",
				s.instrument("checkpoint", http.HandlerFunc(s.handleCheckpoint))))
	}

	s.mux.Handle("GET /v1/stats", s.instrument("v1/stats", http.HandlerFunc(s.handleStats)))
	s.mux.Handle("GET /v1/healthz", s.instrument("v1/healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /stats",
		s.deprecate("stats", "/v1/stats", s.instrument("stats", http.HandlerFunc(s.handleStats))))
	// /healthz stays undecorated: infra probes should not see Deprecation
	// headers, and /metrics is a scrape surface, not an API.
	s.mux.Handle("GET /healthz", s.instrument("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /metrics", s.metrics)

	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// ListenAndServe serves on addr until ctx is canceled, then shuts down
// gracefully: in-flight requests get shutdownGrace to finish. It returns
// nil on clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.cfg.Logger.Info("shutting down", "grace", shutdownGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}
