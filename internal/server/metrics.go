package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// latencyBucketBoundsUS are the upper bounds (microseconds, inclusive) of
// the latency histogram buckets. Requests slower than the last bound land
// in the overflow bucket serialized with "le": null.
var latencyBucketBoundsUS = [...]int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000,
	25_000, 50_000, 100_000, 250_000,
	500_000, 1_000_000,
}

// endpointMetrics holds the per-endpoint counters. All fields are atomic;
// recording a request takes a handful of atomic adds and no locks.
type endpointMetrics struct {
	requests atomic.Int64 // all requests routed to the endpoint
	errors   atomic.Int64 // responses with status >= 400
	timeouts atomic.Int64 // responses with status 503 (deadline exceeded)

	latencySumUS atomic.Int64
	latencyMaxUS atomic.Int64
	buckets      [len(latencyBucketBoundsUS) + 1]atomic.Int64
}

func (m *endpointMetrics) observe(status int, elapsed time.Duration) {
	m.requests.Add(1)
	if status >= 400 {
		m.errors.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		m.timeouts.Add(1)
	}
	us := elapsed.Microseconds()
	m.latencySumUS.Add(us)
	for {
		old := m.latencyMaxUS.Load()
		if us <= old || m.latencyMaxUS.CompareAndSwap(old, us) {
			break
		}
	}
	i := 0
	for i < len(latencyBucketBoundsUS) && us > latencyBucketBoundsUS[i] {
		i++
	}
	m.buckets[i].Add(1)
}

// Metrics is the server-wide metrics registry: one endpointMetrics per
// registered endpoint, plus process-level gauges sampled at serve time.
// It marshals to expvar-style JSON on GET /metrics (no external deps).
type Metrics struct {
	start     time.Time
	names     []string // registration order, for stable JSON output
	endpoints map[string]*endpointMetrics
}

func newMetrics(endpointNames []string) *Metrics {
	m := &Metrics{
		start:     time.Now(),
		names:     endpointNames,
		endpoints: make(map[string]*endpointMetrics, len(endpointNames)),
	}
	for _, n := range endpointNames {
		m.endpoints[n] = &endpointMetrics{}
	}
	return m
}

func (m *Metrics) observe(endpoint string, status int, elapsed time.Duration) {
	if em, ok := m.endpoints[endpoint]; ok {
		em.observe(status, elapsed)
	}
}

// bucketJSON is one histogram bucket: count of requests with latency in
// (previous bound, le] microseconds. The overflow bucket has LE == nil.
type bucketJSON struct {
	LE    *int64 `json:"le_us"`
	Count int64  `json:"count"`
}

type latencyJSON struct {
	Count   int64        `json:"count"`
	SumUS   int64        `json:"sum_us"`
	AvgUS   int64        `json:"avg_us"`
	MaxUS   int64        `json:"max_us"`
	Buckets []bucketJSON `json:"buckets"`
}

type endpointJSON struct {
	Requests int64       `json:"requests"`
	Errors   int64       `json:"errors"`
	Timeouts int64       `json:"timeouts"`
	Latency  latencyJSON `json:"latency"`
}

type processJSON struct {
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	NumGC          uint32 `json:"num_gc"`
}

type metricsJSON struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Process       processJSON             `json:"process"`
	Endpoints     map[string]endpointJSON `json:"endpoints"`
}

func (m *Metrics) snapshot() metricsJSON {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := metricsJSON{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Process: processJSON{
			Goroutines:     runtime.NumGoroutine(),
			HeapAllocBytes: ms.HeapAlloc,
			NumGC:          ms.NumGC,
		},
		Endpoints: make(map[string]endpointJSON, len(m.names)),
	}
	for _, name := range m.names {
		em := m.endpoints[name]
		ej := endpointJSON{
			Requests: em.requests.Load(),
			Errors:   em.errors.Load(),
			Timeouts: em.timeouts.Load(),
		}
		ej.Latency.Count = ej.Requests
		ej.Latency.SumUS = em.latencySumUS.Load()
		ej.Latency.MaxUS = em.latencyMaxUS.Load()
		if ej.Requests > 0 {
			ej.Latency.AvgUS = ej.Latency.SumUS / ej.Requests
		}
		ej.Latency.Buckets = make([]bucketJSON, len(em.buckets))
		for i := range em.buckets {
			b := bucketJSON{Count: em.buckets[i].Load()}
			if i < len(latencyBucketBoundsUS) {
				bound := latencyBucketBoundsUS[i]
				b.LE = &bound
			}
			ej.Latency.Buckets[i] = b
		}
		out.Endpoints[name] = ej
	}
	return out
}

// ServeHTTP serves the metrics snapshot as JSON.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(m.snapshot())
}
