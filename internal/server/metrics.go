package server

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	twolayer "github.com/twolayer/twolayer"
	"github.com/twolayer/twolayer/internal/obsv"
)

// Metrics is the server's engine-wide metrics surface, served on
// GET /metrics in the Prometheus text exposition format. It wraps one
// obsv.Registry holding every instrument group the server publishes:
//
//   - twolayer_http_*: per-endpoint request counts, errors, timeouts,
//     and latency histograms, recorded by the instrument middleware.
//   - twolayer_query_*: the core filtering/refinement work counters
//     (tiles visited, per-class entries scanned, comparisons, duplicates
//     avoided, ...) aggregated across instrumented requests. Populated
//     only when Config.CollectStats is on.
//   - twolayer_index_* / twolayer_partition_*: point-in-time shape of
//     the served index — object counts, per-class entry totals, tile
//     occupancy skew, replication — sampled at scrape time through a
//     short-lived cache (the partition walk is O(occupied tiles)).
//   - twolayer_live_*: apply-loop state of a live-mode server (epoch,
//     backlog, publish totals and latency).
//   - twolayer_wal_* / twolayer_checkpoint*: durability-engine state of
//     a durable-mode server (log shape, fsync and checkpoint counters
//     and cumulative latencies).
//   - twolayer_process_*: process-level gauges.
//
// Engine groups are registered as scrape-time callbacks reading the
// engine's own counters, so nothing here adds work to hot paths; only
// the http group is written per request (a few atomic adds).
//
// Every metric name registered here must be documented in
// docs/OBSERVABILITY.md — `make docs-check` enforces it.
type Metrics struct {
	reg *obsv.Registry

	requests   *obsv.CounterVec
	errors     *obsv.CounterVec
	timeouts   *obsv.CounterVec
	latency    *obsv.HistogramVec
	deprecated *obsv.CounterVec
	traced     *obsv.Counter
	slow       *obsv.Counter
	buildDur   *obsv.Gauge

	// admQueueWait is the only write-side admission instrument; the rest
	// of the twolayer_admission_* group reads the gates' own counters at
	// scrape time.
	admQueueWait *obsv.HistogramVec
}

// partitionCache memoizes the O(occupied tiles) partition walk between
// scrapes so a tight scrape loop (or a registry with many partition
// series) does not rewalk the tile directory per series read.
type partitionCache struct {
	fetch func() twolayer.PartitionStats

	mu    sync.Mutex
	last  time.Time
	cache twolayer.PartitionStats
}

// partitionRefresh is the maximum staleness of partition gauges.
const partitionRefresh = 5 * time.Second

func (p *partitionCache) get() twolayer.PartitionStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.last.IsZero() || time.Since(p.last) >= partitionRefresh {
		p.cache = p.fetch()
		p.last = time.Now()
	}
	return p.cache
}

// classLabels maps core class indices (A..D) to label values.
var classLabels = [4]string{"A", "B", "C", "D"}

// newMetrics builds the registry for s. endpointNames pre-registers the
// http series of every routed endpoint, so all series exist (at zero)
// from the first scrape.
func newMetrics(s *Server, endpointNames []string) *Metrics {
	r := obsv.NewRegistry()
	m := &Metrics{reg: r}

	// ---- http group -------------------------------------------------------
	m.requests = r.CounterVec("twolayer_http_requests_total",
		"Requests routed to each endpoint.", "endpoint")
	m.errors = r.CounterVec("twolayer_http_request_errors_total",
		"Responses with status >= 400, per endpoint.", "endpoint")
	m.timeouts = r.CounterVec("twolayer_http_request_timeouts_total",
		"Responses with status 503 (evaluation deadline exceeded), per endpoint.", "endpoint")
	m.latency = r.HistogramVec("twolayer_http_request_duration_seconds",
		"End-to-end request latency, per endpoint.", nil, "endpoint")
	for _, n := range endpointNames {
		m.requests.With(n)
		m.errors.With(n)
		m.timeouts.With(n)
		m.latency.With(n)
	}
	m.deprecated = r.CounterVec("twolayer_deprecated_requests_total",
		"Requests answered by a deprecated unversioned endpoint (use the /v1 successor).", "endpoint")
	for _, n := range endpointNames {
		// Legacy aliases are exactly the non-v1 query/mutation names;
		// healthz is never marked deprecated (infra probes).
		if !strings.HasPrefix(n, "v1/") && n != "healthz" {
			m.deprecated.With(n)
		}
	}
	m.traced = r.Counter("twolayer_traced_queries_total",
		"Queries evaluated with per-request tracing attached.")
	m.slow = r.Counter("twolayer_slow_queries_total",
		"Queries at or above the slow-query threshold (logged with their trace).")

	// ---- admission group --------------------------------------------------
	// Registered only when admission control is on (Config.MaxInflight
	// >= 0, the default). See docs/SERVER.md#overload-behavior.
	if s.adm != nil {
		m.admQueueWait = r.HistogramVec("twolayer_admission_queue_wait_seconds",
			"Time admitted requests spent in the admission wait queue (0 for fast-path admissions), per class.",
			nil, "class")
		inflight := r.GaugeVecFunc("twolayer_admission_inflight",
			"Requests currently holding an in-flight slot, per class.", "class")
		queued := r.GaugeVecFunc("twolayer_admission_queued",
			"Requests currently waiting in the admission queue, per class.", "class")
		admitted := r.CounterVecFunc("twolayer_admission_admitted_total",
			"Requests admitted past the gate, per class.", "class")
		shed := r.CounterVecFunc("twolayer_admission_shed_total",
			"Requests shed by admission control, per class and reason (queue_full, deadline, expired).",
			"class", "reason")
		for c := admissionClass(0); c < numClasses; c++ {
			g := s.adm.gates[c]
			m.admQueueWait.With(g.name)
			inflight.Add(func() float64 { return float64(g.inflight.Load()) }, g.name)
			queued.Add(func() float64 { return float64(g.queued.Load()) }, g.name)
			admitted.Add(func() float64 { return float64(g.admitted.Load()) }, g.name)
			for ri, rn := range shedReasonNames {
				ri := ri
				shed.Add(func() float64 { return float64(g.shed[ri].Load()) }, g.name, rn)
			}
		}
		if s.mut != nil {
			live := s.mut
			r.GaugeFunc("twolayer_admission_backlog",
				"Mutations accepted but not yet published (summed across shards); the quantity MaxBacklog bounds.",
				func() float64 { return float64(live.Stats().Pending) })
			r.GaugeFunc("twolayer_admission_backlog_limit",
				"Configured per-shard mutation backlog bound (twolayer.LiveOptions.MaxBacklog); 0 = unbounded.",
				func() float64 { return float64(live.Stats().BacklogLimit) })
			r.CounterFunc("twolayer_admission_backlog_rejected_total",
				"Mutation submissions rejected with 503 because the apply backlog was full.",
				func() float64 { return float64(live.Stats().Rejected) })
		}
	}

	// ---- index & partition group -----------------------------------------
	m.buildDur = r.Gauge("twolayer_index_build_seconds",
		"Wall time of the initial index build or snapshot load, 0 if unknown.")
	r.GaugeFunc("twolayer_index_objects",
		"Distinct objects in the served index (current snapshot in live mode).",
		func() float64 { return float64(s.reader().Len()) })
	r.GaugeFunc("twolayer_index_epoch",
		"Copy-on-write epoch of the served index; 0 for a static build.",
		func() float64 { return float64(s.reader().Epoch()) })
	r.GaugeFunc("twolayer_index_memory_bytes",
		"Approximate entry storage of the served index.",
		func() float64 { return float64(s.reader().MemoryFootprint()) })

	parts := &partitionCache{fetch: func() twolayer.PartitionStats {
		return s.reader().PartitionStats()
	}}
	r.GaugeFunc("twolayer_partition_grid_tiles",
		"Total tiles of the primary grid (NX*NY).",
		func() float64 { return float64(parts.get().GridTiles) })
	r.GaugeFunc("twolayer_partition_occupied_tiles",
		"Tiles holding at least one entry.",
		func() float64 { return float64(parts.get().OccupiedTiles) })
	r.GaugeFunc("twolayer_partition_replicas",
		"Stored entries including grid replication.",
		func() float64 { return float64(parts.get().Replicas) })
	classEntries := r.GaugeVecFunc("twolayer_partition_class_entries",
		"Stored entries per secondary class (A holds each object exactly once).", "class")
	for c := 0; c < 4; c++ {
		c := c
		classEntries.Add(func() float64 { return float64(parts.get().ClassCounts[c]) }, classLabels[c])
	}
	r.GaugeFunc("twolayer_partition_max_tile_entries",
		"Entry count of the fullest tile.",
		func() float64 { return float64(parts.get().MaxTileEntries) })
	r.GaugeFunc("twolayer_partition_mean_tile_entries",
		"Mean entries per occupied tile.",
		func() float64 { return parts.get().MeanTileEntries })
	r.GaugeFunc("twolayer_partition_skew_ratio",
		"Max/mean tile occupancy; 1.0 is a perfectly even spread.",
		func() float64 { return parts.get().SkewRatio })
	r.GaugeFunc("twolayer_partition_replication_factor",
		"Stored entries (with replicas) per object.",
		func() float64 { return parts.get().ReplicationFactor })
	r.GaugeFunc("twolayer_partition_boundary_ratio",
		"Fraction of stored entries that are boundary replicas (classes B, C, D).",
		func() float64 { return parts.get().BoundaryRatio })
	r.GaugeFunc("twolayer_partition_decomposed_tiles",
		"Tiles with fresh 2-layer+ decomposed tables.",
		func() float64 { return float64(parts.get().DecomposedTiles) })

	// ---- query counters group (CollectStats aggregation) ------------------
	agg := s.agg
	r.CounterFunc("twolayer_queries_observed_total",
		"Instrumented queries merged into the aggregate counters.",
		func() float64 { return float64(agg.Queries()) })
	queryCounter := func(name, help string, get func(*twolayer.Stats) int64) {
		r.CounterFunc(name, help, func() float64 {
			snap := agg.Snapshot()
			return float64(get(&snap))
		})
	}
	queryCounter("twolayer_query_tiles_visited_total",
		"Grid tiles examined across instrumented queries.",
		func(st *twolayer.Stats) int64 { return st.TilesVisited })
	queryCounter("twolayer_query_partitions_scanned_total",
		"Secondary partitions (tile classes) read.",
		func(st *twolayer.Stats) int64 { return st.PartitionsScanned })
	queryCounter("twolayer_query_entries_scanned_total",
		"Entries inspected in scanned partitions.",
		func(st *twolayer.Stats) int64 { return st.EntriesScanned })
	classScanned := r.CounterVecFunc("twolayer_query_class_entries_scanned_total",
		"Entries held by the partitions selected for scanning, per class.", "class")
	for c := 0; c < 4; c++ {
		c := c
		classScanned.Add(func() float64 {
			return float64(agg.Snapshot().ClassScanned[c])
		}, classLabels[c])
	}
	queryCounter("twolayer_query_comparisons_total",
		"Coordinate comparisons executed during filtering (the quantity Lemmas 3-4 minimize).",
		func(st *twolayer.Stats) int64 { return st.Comparisons })
	queryCounter("twolayer_query_results_total",
		"Entries reported by the filtering step.",
		func(st *twolayer.Stats) int64 { return st.Results })
	queryCounter("twolayer_query_duplicates_avoided_total",
		"Entries skipped wholesale by the duplicate-free class selection (Lemmas 1-2).",
		func(st *twolayer.Stats) int64 { return st.DuplicatesAvoided })
	queryCounter("twolayer_query_binary_searches_total",
		"Binary searches on 2-layer+ decomposed tables.",
		func(st *twolayer.Stats) int64 { return st.BinarySearches })
	queryCounter("twolayer_query_secondary_filter_tests_total",
		"Lemma 5 coverage tests performed before refinement.",
		func(st *twolayer.Stats) int64 { return st.SecondaryFilterTests })
	queryCounter("twolayer_query_secondary_filter_hits_total",
		"Candidates accepted by the secondary filter without an exact geometry test.",
		func(st *twolayer.Stats) int64 { return st.SecondaryFilterHits })
	queryCounter("twolayer_query_refinement_tests_total",
		"Exact geometry tests executed.",
		func(st *twolayer.Stats) int64 { return st.RefinementTests })
	queryCounter("twolayer_query_distance_computations_total",
		"Point-distance evaluations in disk and kNN queries.",
		func(st *twolayer.Stats) int64 { return st.DistanceComputations })

	// ---- adaptive kernel group --------------------------------------------
	// Unlike the CollectStats aggregation above, these read the engine's
	// always-on PathStats counters (shared across every view and
	// copy-on-write snapshot of the served engine), so they are populated
	// regardless of Config.CollectStats.
	pathCounter := func(name, help string, get func(twolayer.PathStats) int64) {
		r.CounterFunc(name, help, func() float64 {
			return float64(get(s.reader().QueryPathStats()))
		})
	}
	pathCounter("twolayer_query_fastpath_counts_total",
		"Count-only queries answered by the O(tiles) count pushdown instead of a streamed scan.",
		func(ps twolayer.PathStats) int64 { return ps.FastCounts })
	pathCounter("twolayer_query_fastpath_tiles_total",
		"Tiles answered wholesale because their comparison plan was empty (interior tiles).",
		func(ps twolayer.PathStats) int64 { return ps.FastTiles })
	pathCounter("twolayer_query_fastpath_bulk_entries_total",
		"Entries counted or emitted in bulk with zero per-entry comparisons.",
		func(ps twolayer.PathStats) int64 { return ps.BulkEntries })
	pathCounter("twolayer_query_parallel_queries_total",
		"Window queries executed by the chunked intra-query parallel kernel.",
		func(ps twolayer.PathStats) int64 { return ps.ParallelQueries })
	pathCounter("twolayer_query_parallel_chunks_total",
		"Tile-row chunks dispatched by parallel window queries.",
		func(ps twolayer.PathStats) int64 { return ps.ParallelChunks })
	pathCounter("twolayer_query_sequential_queries_total",
		"Window queries the cost gate kept on the zero-overhead sequential path.",
		func(ps twolayer.PathStats) int64 { return ps.SequentialQueries })

	// ---- live group -------------------------------------------------------
	if s.mut != nil {
		live := s.mut
		r.GaugeFunc("twolayer_live_epoch",
			"Epoch of the current published snapshot.",
			func() float64 { return float64(live.Stats().Epoch) })
		r.GaugeFunc("twolayer_live_pending_mutations",
			"Mutations accepted but not yet published.",
			func() float64 { return float64(live.Stats().Pending) })
		r.CounterFunc("twolayer_live_applied_mutations_total",
			"Mutations applied since start.",
			func() float64 { return float64(live.Stats().Applied) })
		r.CounterFunc("twolayer_live_publishes_total",
			"Copy-on-write snapshots published.",
			func() float64 { return float64(live.Stats().Publishes) })
		r.CounterFunc("twolayer_live_rebuilds_total",
			"Periodic 2-layer+ decomposed-table rebuilds performed by the apply loop.",
			func() float64 { return float64(live.Stats().Rebuilds) })
		r.GaugeFunc("twolayer_live_last_batch_mutations",
			"Mutations in the most recent publish.",
			func() float64 { return float64(live.Stats().LastBatch) })
		r.GaugeFunc("twolayer_live_last_publish_seconds",
			"Wall time of the most recent publish.",
			func() float64 { return live.Stats().LastPublish.Seconds() })
		r.CounterFunc("twolayer_live_publish_seconds_total",
			"Cumulative wall time spent publishing snapshots.",
			func() float64 { return live.Stats().PublishTotal.Seconds() })
	}

	// ---- wal / checkpoint group -------------------------------------------
	if s.ckpt != nil {
		durable := s.ckpt
		r.GaugeFunc("twolayer_wal_segments",
			"On-disk log segment files, including the active one.",
			func() float64 { return float64(durable.Stats().Segments) })
		r.GaugeFunc("twolayer_wal_log_bytes",
			"Total bytes across log segments.",
			func() float64 { return float64(durable.Stats().LogBytes) })
		r.CounterFunc("twolayer_wal_appended_records_total",
			"Batch frames appended to the log.",
			func() float64 { return float64(durable.Stats().AppendedRecords) })
		r.CounterFunc("twolayer_wal_appended_bytes_total",
			"Bytes appended to the log.",
			func() float64 { return float64(durable.Stats().AppendedBytes) })
		r.CounterFunc("twolayer_wal_fsyncs_total",
			"fsync calls on the active segment.",
			func() float64 { return float64(durable.Stats().Fsyncs) })
		r.CounterFunc("twolayer_wal_rotations_total",
			"Segment rotations (seal + new active segment).",
			func() float64 { return float64(durable.Stats().Rotations) })
		r.CounterFunc("twolayer_wal_pruned_segments_total",
			"Sealed segments removed because a checkpoint covers them.",
			func() float64 { return float64(durable.Stats().PrunedSegments) })
		r.CounterFunc("twolayer_wal_append_seconds_total",
			"Cumulative wall time inside successful journal appends.",
			func() float64 { return durable.Stats().AppendTotal.Seconds() })
		r.CounterFunc("twolayer_wal_fsync_seconds_total",
			"Cumulative wall time inside fsync calls.",
			func() float64 { return durable.Stats().FsyncTotal.Seconds() })
		r.GaugeFunc("twolayer_wal_failed",
			"1 once the log hit an unrecoverable write/fsync error (mutations rejected), else 0.",
			func() float64 {
				if durable.Stats().Failed != "" {
					return 1
				}
				return 0
			})
		r.CounterFunc("twolayer_checkpoints_total",
			"Checkpoints written since start.",
			func() float64 { return float64(durable.Stats().Checkpoints) })
		r.GaugeFunc("twolayer_checkpoint_epoch",
			"Epoch of the newest checkpoint, 0 if none.",
			func() float64 { return float64(durable.Stats().CheckpointEpoch) })
		r.GaugeFunc("twolayer_checkpoint_age_seconds",
			"Seconds since the newest checkpoint, 0 if none.",
			func() float64 { return durable.Stats().CheckpointAge.Seconds() })
		r.CounterFunc("twolayer_checkpoint_seconds_total",
			"Cumulative wall time writing checkpoint files.",
			func() float64 { return durable.Stats().CheckpointTotal.Seconds() })
		r.GaugeFunc("twolayer_mutations_since_checkpoint",
			"Mutations journaled since the newest checkpoint (replay cost of a crash now).",
			func() float64 { return float64(durable.Stats().SinceCheckpoint) })
	}

	// ---- shard group ------------------------------------------------------
	if nShards := s.shardCount(); nShards > 0 {
		r.Gauge("twolayer_shard_count",
			"Spatial shards of the scatter-gather engine.").Set(float64(nShards))
		r.CounterFunc("twolayer_shard_single_queries_total",
			"Queries answered by one shard (fast path, no fan-out).",
			func() float64 { return float64(s.shardedStats().SingleShard) })
		r.CounterFunc("twolayer_shard_fanout_queries_total",
			"Queries fanned out to two or more shards and merged.",
			func() float64 { return float64(s.shardedStats().Fanout) })
		queries := r.CounterVecFunc("twolayer_shard_queries_total",
			"Queries routed to each shard (fan-out counts every shard scanned).", "shard")
		busy := r.CounterVecFunc("twolayer_shard_busy_seconds_total",
			"Cumulative wall time each shard spent scanning.", "shard")
		results := r.CounterVecFunc("twolayer_shard_results_total",
			"Results each shard contributed after cross-shard deduplication.", "shard")
		objects := r.GaugeVecFunc("twolayer_shard_objects",
			"Entries stored in each shard (including boundary replicas).", "shard")
		epoch := r.GaugeVecFunc("twolayer_shard_epoch",
			"Published copy-on-write epoch of each shard.", "shard")
		for i := 0; i < nShards; i++ {
			i := i
			label := strconv.Itoa(i)
			queries.Add(func() float64 {
				return float64(s.shardedStats().PerShard[i].Queries)
			}, label)
			busy.Add(func() float64 {
				return float64(s.shardedStats().PerShard[i].BusyNS) / 1e9
			}, label)
			results.Add(func() float64 {
				return float64(s.shardedStats().PerShard[i].Results)
			}, label)
			objects.Add(func() float64 {
				return float64(s.shardedStats().PerShard[i].Objects)
			}, label)
			epoch.Add(func() float64 {
				return float64(s.shardedStats().PerShard[i].Epoch)
			}, label)
		}
	}

	// ---- process group ----------------------------------------------------
	start := time.Now()
	r.GaugeFunc("twolayer_process_uptime_seconds",
		"Seconds since the server was constructed.",
		func() float64 { return time.Since(start).Seconds() })
	r.GaugeFunc("twolayer_process_goroutines",
		"Current goroutine count.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("twolayer_process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("twolayer_process_gc_total",
		"Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})

	return m
}

// observe records one finished request into the http group.
func (m *Metrics) observe(endpoint string, status int, elapsed time.Duration) {
	m.requests.With(endpoint).Inc()
	if status >= 400 {
		m.errors.With(endpoint).Inc()
	}
	if status == http.StatusServiceUnavailable {
		m.timeouts.With(endpoint).Inc()
	}
	m.latency.With(endpoint).Observe(elapsed.Seconds())
}

// Registry exposes the underlying obsv registry (for Names and tests).
func (m *Metrics) Registry() *obsv.Registry { return m.reg }

// ServeHTTP renders the registry in the Prometheus text format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.reg.ServeHTTP(w, r)
}
