package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// durableServer builds a durable-live server over dir; the caller reuses
// dir across restarts to exercise recovery.
func durableServer(t *testing.T, dir string) (*Server, *twolayer.DurableLive) {
	t.Helper()
	dl, _, err := twolayer.OpenDurable(
		twolayer.Options{GridSize: 16, Space: twolayer.Rect{MaxX: 1, MaxY: 1}},
		twolayer.LiveOptions{},
		twolayer.DurableOptions{
			Dir:             dir,
			CheckpointEvery: -1, // tests checkpoint explicitly
			Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close() })
	return New(Config{
		Durable: dl,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	}), dl
}

func insertBody(id int) string {
	x := float64(id%10) / 10
	y := float64(id/10%10) / 10
	return fmt.Sprintf(`{"id":%d,"mbr":{"min_x":%g,"min_y":%g,"max_x":%g,"max_y":%g}}`,
		id, x, y, x+0.05, y+0.05)
}

// TestDurableServerRecovery: acked mutations served by one server
// incarnation survive into the next one over the same data dir.
func TestDurableServerRecovery(t *testing.T) {
	dir := t.TempDir()
	s, dl := durableServer(t, dir)
	for id := 1; id <= 25; id++ {
		var ins insertResponse
		w := do(t, s.Handler(), "POST", "/insert", insertBody(id), &ins)
		if w.Code != http.StatusOK {
			t.Fatalf("insert %d: status %d", id, w.Code)
		}
	}
	if err := dl.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableServer(t, dir)
	var win rangeResponse
	do(t, s2.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &win)
	if win.Count != 25 {
		t.Fatalf("recovered server serves %d objects, want 25", win.Count)
	}
}

// TestCheckpointEndpoint: POST /checkpoint writes a checkpoint, reports
// its epoch, and the durability stats section reflects it.
func TestCheckpointEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir)
	for id := 1; id <= 10; id++ {
		do(t, s.Handler(), "POST", "/insert", insertBody(id), nil)
	}
	var ck struct {
		Epoch     uint64 `json:"epoch"`
		ElapsedUS int64  `json:"elapsed_us"`
	}
	w := do(t, s.Handler(), "POST", "/checkpoint", "", &ck)
	if w.Code != http.StatusOK || ck.Epoch != 10 {
		t.Fatalf("checkpoint: status %d epoch %d, want 200 and epoch 10", w.Code, ck.Epoch)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint file on disk after POST /checkpoint")
	}

	var st statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &st)
	if st.Durability == nil {
		t.Fatal("stats response has no durability section in durable mode")
	}
	if st.Durability.CheckpointEpoch != 10 || st.Durability.Checkpoints != 1 ||
		st.Durability.AppendedRecords != 10 || st.Durability.Segments == 0 {
		t.Fatalf("durability stats = %+v", st.Durability)
	}
	if st.Live == nil || st.Live.Epoch != 10 {
		t.Fatalf("durable mode must also report live stats, got %+v", st.Live)
	}
}

// TestCheckpointAbsentOutsideDurableMode: the endpoint and the stats
// section only exist with Config.Durable.
func TestCheckpointAbsentOutsideDurableMode(t *testing.T) {
	s, _ := liveServer(t, nil)
	w := do(t, s.Handler(), "POST", "/checkpoint", "", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("POST /checkpoint in plain live mode: status %d, want 404", w.Code)
	}
	var st statsResponse
	do(t, s.Handler(), "GET", "/stats", "", &st)
	if st.Durability != nil {
		t.Fatal("plain live mode reports a durability stats section")
	}
}

// TestDurableServerCorruptTail: clobbering the log tail between two
// server incarnations must not prevent startup; the server comes up
// serving every record before the corruption.
func TestDurableServerCorruptTail(t *testing.T) {
	dir := t.TempDir()
	s, dl := durableServer(t, dir)
	for id := 1; id <= 20; id++ {
		do(t, s.Handler(), "POST", "/insert", insertBody(id), nil)
	}
	if err := dl.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) - 16; i < len(data); i++ {
		data[i] ^= 0x5a
	}
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := durableServer(t, dir)
	var st statsResponse
	do(t, s2.Handler(), "GET", "/stats", "", &st)
	if st.Durability == nil || !st.Durability.RecoveryTruncatedLog {
		t.Fatalf("recovery did not report log truncation: %+v", st.Durability)
	}
	var win rangeResponse
	do(t, s2.Handler(), "POST", "/query/window",
		`{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, &win)
	if win.Count < 15 || win.Count >= 20 {
		t.Fatalf("recovered %d of 20 inserts after tail corruption", win.Count)
	}
}

// TestDurableMetricsIncludeCheckpoint: the checkpoint endpoint is
// registered in the metrics table.
func TestDurableMetricsIncludeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := durableServer(t, dir)
	do(t, s.Handler(), "POST", "/checkpoint", "", nil)
	m := scrapeMetrics(t, s.Handler())
	if got := m[`twolayer_http_requests_total{endpoint="checkpoint"}`]; got != 1 {
		t.Fatalf("checkpoint endpoint requests = %v, want 1", got)
	}
	// Durable mode also exports the WAL/checkpoint engine group.
	if m[`twolayer_checkpoints_total`] < 1 {
		t.Fatalf("twolayer_checkpoints_total = %v, want >= 1", m[`twolayer_checkpoints_total`])
	}
	if m[`twolayer_wal_segments`] < 1 {
		t.Fatalf("twolayer_wal_segments = %v, want >= 1", m[`twolayer_wal_segments`])
	}
}
