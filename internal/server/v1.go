package server

import (
	"math"
	"net/http"
	"time"

	twolayer "github.com/twolayer/twolayer"
)

// The /v1 range endpoints (POST /v1/window, POST /v1/disk) share one
// request envelope mirroring twolayer.Query: a shape, an optional exact
// refinement with a selectable mode, and count/limit/trace controls.
// Unlike the legacy endpoints their semantics are uniform: a limit stops
// the evaluation (count == len(results), truncated=true when more
// matches existed), and count_only counts everything, ignoring the
// limit. See docs/SERVER.md#v1-api.

// diskJSON is the disk shape of the envelope.
type diskJSON struct {
	Center pointJSON `json:"center"`
	Radius float64   `json:"radius"`
}

// queryEnvelope is the unified /v1 range-query request body.
type queryEnvelope struct {
	// Exactly one of Window and Disk must be set, matching the endpoint
	// (window on /v1/window, disk on /v1/disk).
	Window *rectJSON `json:"window,omitempty"`
	Disk   *diskJSON `json:"disk,omitempty"`
	// Exact refines candidates against the exact geometries; Mode picks
	// the refinement strategy: "avoid_plus" (default), "avoid", "simple".
	Exact bool   `json:"exact"`
	Mode  string `json:"mode"`
	// CountOnly returns only the match count; the limit is ignored.
	// Non-exact window counts are answered by the O(tiles) count
	// pushdown instead of a streamed scan.
	CountOnly bool `json:"count_only"`
	// Limit caps the results (0 = server default, DefaultResultLimit).
	Limit int `json:"limit"`
	// Trace attaches the per-query trace to the response.
	Trace bool `json:"trace"`
	// Estimate (window endpoint only) additionally returns the planner's
	// O(tiles) cardinality estimate in the "estimate" response field.
	// The estimate sums class-A tile histograms, so it skews low for
	// heavily replicated data; see docs/SERVER.md#v1-api.
	Estimate bool `json:"estimate"`
}

// parseRefineMode maps the envelope's mode string to a RefineMode.
func parseRefineMode(mode string) (twolayer.RefineMode, bool) {
	switch mode {
	case "", "avoid_plus":
		return twolayer.RefineAvoidPlus, true
	case "avoid":
		return twolayer.RefineAvoid, true
	case "simple":
		return twolayer.RefineSimple, true
	default:
		return 0, false
	}
}

// decodeEnvelope decodes and validates a /v1 range request. kind is
// "window" or "disk" and pins which shape the endpoint accepts. On
// failure the error response has been written and ok is false.
func (s *Server) decodeEnvelope(w http.ResponseWriter, r *http.Request, kind string) (env queryEnvelope, q twolayer.Query, limit int, ok bool) {
	if !decodeJSON(w, r, &env) {
		return env, q, 0, false
	}
	switch kind {
	case "window":
		if env.Window == nil || env.Disk != nil {
			writeError(w, http.StatusBadRequest, `/v1/window requires the "window" shape (and no "disk")`)
			return env, q, 0, false
		}
		if msg := env.Window.validate(); msg != "" {
			writeError(w, http.StatusBadRequest, msg)
			return env, q, 0, false
		}
		rect := env.Window.toRect()
		q.Window = &rect
	case "disk":
		if env.Disk == nil || env.Window != nil {
			writeError(w, http.StatusBadRequest, `/v1/disk requires the "disk" shape (and no "window")`)
			return env, q, 0, false
		}
		if env.Estimate {
			writeError(w, http.StatusBadRequest, `"estimate" is only available on /v1/window`)
			return env, q, 0, false
		}
		if msg := env.Disk.Center.validate(); msg != "" {
			writeError(w, http.StatusBadRequest, msg)
			return env, q, 0, false
		}
		if math.IsNaN(env.Disk.Radius) || math.IsInf(env.Disk.Radius, 0) || env.Disk.Radius < 0 {
			writeError(w, http.StatusBadRequest, "radius must be finite and >= 0")
			return env, q, 0, false
		}
		q.Disk = &twolayer.Disk{
			Center: twolayer.Point{X: env.Disk.Center.X, Y: env.Disk.Center.Y},
			Radius: env.Disk.Radius,
		}
	}
	mode, modeOK := parseRefineMode(env.Mode)
	if !modeOK {
		writeError(w, http.StatusBadRequest, `mode must be "avoid_plus", "avoid" or "simple"`)
		return env, q, 0, false
	}
	limit, limOK := clampLimit(env.Limit)
	if !limOK {
		writeError(w, http.StatusBadRequest, "limit must be >= 0")
		return env, q, 0, false
	}
	q.Exact = env.Exact
	q.Mode = mode
	if env.Exact && !s.requireExactable(w) {
		return env, q, 0, false
	}
	return env, q, limit, true
}

func (s *Server) handleV1Window(w http.ResponseWriter, r *http.Request) {
	s.handleV1Range(w, r, "window")
}

func (s *Server) handleV1Disk(w http.ResponseWriter, r *http.Request) {
	s.handleV1Range(w, r, "disk")
}

// handleV1Range evaluates a /v1 window or disk query with the unified
// semantics: the limit folds into the descriptor (the engine stops
// delivering once it is reached and reports the query incomplete), and
// count_only answers without buffering — non-exact counts go through the
// engine's count pushdown (SearchCount), which never materializes the
// result stream at all. Cancellation is cooperative every
// ctxPollInterval results on the streaming paths; the pushdown path is
// O(tiles) and only checks the deadline before starting.
func (s *Server) handleV1Range(w http.ResponseWriter, r *http.Request, kind string) {
	env, q, limit, ok := s.decodeEnvelope(w, r, kind)
	if !ok {
		return
	}
	ctx := r.Context()
	// Admission: the cost hint is the planner's cardinality estimate —
	// the full window (or the disk's bounding box) for streaming
	// evaluations, a token cost for count-only non-exact windows, which
	// the O(perimeter) pushdown answers without touching entries. Under
	// load the gate sheds the expensive streams first and keeps the
	// cheap counts flowing.
	release, queueWait, admitted := s.admit(ctx, w, classRead, func() float64 {
		if q.Window != nil && env.CountOnly && !q.Exact {
			return 1
		}
		est := s.estimateWindow(costRect(q))
		if !env.CountOnly {
			// The limit caps delivery, so it caps the cost too.
			return minf(est, float64(limit))
		}
		return est
	})
	if !admitted {
		return
	}
	defer release()
	view, finish := s.beginQuery(w, r, kind, env.Trace)
	if ctx.Err() != nil {
		writeTimeout(w)
		return
	}
	resp := rangeResponse{}
	if env.Estimate {
		est := s.estimateWindow(*q.Window)
		resp.Estimate = &est
	}
	start := time.Now()

	switch {
	case env.CountOnly && !q.Exact:
		n, err := view.SearchCount(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		resp.Count = n
	case env.CountOnly:
		// Exact counts still stream: refinement is per-candidate work, so
		// the deadline poll has to stay inside the loop.
		interrupted := false
		seen := 0
		_, err := view.Search(q, func(twolayer.ID, twolayer.Rect) bool {
			seen++
			if seen%ctxPollInterval == 0 && ctx.Err() != nil {
				interrupted = true
				return false
			}
			return true
		})
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if interrupted {
			writeTimeout(w)
			return
		}
		resp.Count = seen
	default:
		q.Limit = limit
		buf := resultBufPool.Get().(*[]resultJSON)
		defer func() {
			*buf = (*buf)[:0]
			resultBufPool.Put(buf)
		}()
		resp.Results = (*buf)[:0]
		interrupted := false
		complete, err := view.Search(q, func(id twolayer.ID, mbr twolayer.Rect) bool {
			res := resultJSON{ID: id}
			if !q.Exact {
				res.MBR = fromRect(mbr)
			}
			resp.Results = append(resp.Results, res)
			if len(resp.Results)%ctxPollInterval == 0 && ctx.Err() != nil {
				interrupted = true
				return false
			}
			return true
		})
		*buf = resp.Results
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if interrupted {
			writeTimeout(w)
			return
		}
		resp.Count = len(resp.Results)
		resp.Truncated = !complete
	}
	resp.ElapsedUS = time.Since(start).Microseconds()
	resp.Trace = finish()
	if resp.Trace != nil {
		resp.Trace.QueueWaitUS = queueWait.Microseconds()
	}
	writeJSON(w, http.StatusOK, resp)
}
