package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with panic recovery, metrics recording, pprof
// endpoint labels, and structured request logging — the outermost
// middleware of every endpoint.
func (s *Server) instrument(name string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			elapsed := time.Since(start)
			if p := recover(); p != nil {
				// A panicking handler has not written a response yet
				// (handlers write only as their last step), so 500 here.
				rec.status = http.StatusInternalServerError
				writeError(rec, http.StatusInternalServerError, "internal error")
				s.cfg.Logger.Error("handler panic",
					"endpoint", name, "panic", fmt.Sprint(p))
			}
			s.metrics.observe(name, rec.status, elapsed)
			s.cfg.Logger.Info("request",
				"endpoint", name,
				"method", r.Method,
				"status", rec.status,
				"elapsed", elapsed,
				"remote", r.RemoteAddr)
		}()
		// Label the handler's goroutine so CPU and goroutine profiles
		// (/debug/pprof) attribute samples to endpoints.
		pprof.Do(r.Context(), pprof.Labels("endpoint", name), func(ctx context.Context) {
			h.ServeHTTP(rec, r.WithContext(ctx))
		})
	})
}

// limitBody caps the request body at cfg.MaxBodyBytes; decoding a larger
// body produces *http.MaxBytesError, which decodeJSON maps to 413.
func (s *Server) limitBody(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h.ServeHTTP(w, r)
	})
}

// deprecate marks a legacy (unversioned) endpoint: every response
// carries a Deprecation header plus a Link to the /v1 successor, and the
// request is counted in twolayer_deprecated_requests_total{endpoint}.
// Behavior is otherwise untouched — aliases answer exactly as before.
func (s *Server) deprecate(name, successor string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		s.metrics.deprecated.With(name).Inc()
		h.ServeHTTP(w, r)
	})
}

// withTimeout attaches the per-request evaluation deadline to the
// request context. Handlers poll the context and answer 503 when the
// deadline expires mid-query.
func (s *Server) withTimeout(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

// writeTimeout reports a request whose evaluation deadline expired.
func writeTimeout(w http.ResponseWriter) {
	writeError(w, http.StatusServiceUnavailable, "deadline exceeded")
}

// decodeJSON decodes the request body into v with unknown fields
// rejected. On failure it writes the error response and returns false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	// Trailing garbage after the JSON value is a malformed request too.
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid JSON: trailing data after request object")
		return false
	}
	return true
}
