package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"testing"

	twolayer "github.com/twolayer/twolayer"
)

// testGeoms is the dataset behind testIndex: a 10x10 grid of small
// squares with IDs j*10+i.
func testGeoms() []twolayer.Geometry {
	var geoms []twolayer.Geometry
	for j := 0; j < 10; j++ {
		for i := 0; i < 10; i++ {
			x, y := float64(i)/10, float64(j)/10
			geoms = append(geoms, twolayer.NewPolygon(
				twolayer.Point{X: x, Y: y},
				twolayer.Point{X: x + 0.05, Y: y},
				twolayer.Point{X: x + 0.05, Y: y + 0.05},
				twolayer.Point{X: x, Y: y + 0.05},
			))
		}
	}
	return geoms
}

const fullWindow = `"window":{"min_x":-1,"min_y":-1,"max_x":2,"max_y":2}`

func TestV1WindowSemantics(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	// Unlimited: everything comes back, complete.
	var resp rangeResponse
	w := do(t, h, "POST", "/v1/window", `{`+fullWindow+`}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.Count != 100 || len(resp.Results) != 100 || resp.Truncated {
		t.Fatalf("full window: count=%d results=%d truncated=%v", resp.Count, len(resp.Results), resp.Truncated)
	}
	if resp.Results[0].MBR == nil {
		t.Error("non-exact result has no MBR")
	}

	// A limit stops the evaluation: count == len(results) == limit,
	// truncated reports the cut. This is the /v1 semantic difference
	// from the legacy window endpoint (which also stops) and the legacy
	// disk endpoint (which counts everything).
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"limit":30}`, &resp)
	if resp.Count != 30 || len(resp.Results) != 30 || !resp.Truncated {
		t.Fatalf("limited window: count=%d results=%d truncated=%v", resp.Count, len(resp.Results), resp.Truncated)
	}

	// count_only ignores the limit and counts everything.
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"limit":30,"count_only":true}`, &resp)
	if resp.Count != 100 || len(resp.Results) != 0 || resp.Truncated {
		t.Fatalf("count_only: count=%d results=%d truncated=%v", resp.Count, len(resp.Results), resp.Truncated)
	}

	// Exact results omit the MBR.
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/window", `{"window":{"min_x":0,"min_y":0,"max_x":0.31,"max_y":0.01},"exact":true}`, &resp)
	if resp.Count != 4 {
		t.Fatalf("exact window: count=%d, want 4", resp.Count)
	}
	for _, r := range resp.Results {
		if r.MBR != nil {
			t.Fatal("exact result carries an MBR")
		}
	}

	// Trace attachment.
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"trace":true}`, &resp)
	if resp.Trace == nil {
		t.Error("trace requested but absent")
	}

	// Validation errors.
	bad := []struct {
		body string
		want string
	}{
		{`{}`, `/v1/window requires the`},
		{`{"disk":{"center":{"x":0,"y":0},"radius":1}}`, `/v1/window requires the`},
		{`{` + fullWindow + `,"disk":{"center":{"x":0,"y":0},"radius":1}}`, `/v1/window requires the`},
		{`{` + fullWindow + `,"mode":"bogus"}`, `mode must be`},
		{`{` + fullWindow + `,"limit":-1}`, `limit must be`},
		{`{"window":{"min_x":0,"min_y":0,"max_x":"x","max_y":1}}`, ``},
	}
	for _, c := range bad {
		w := do(t, h, "POST", "/v1/window", c.body, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", c.body, w.Code)
		}
		if c.want != "" && !strings.Contains(w.Body.String(), c.want) {
			t.Errorf("body %s: error %q does not mention %q", c.body, w.Body.String(), c.want)
		}
	}
}

func TestV1DiskSemantics(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	var resp rangeResponse
	do(t, h, "POST", "/v1/disk", `{"disk":{"center":{"x":0.5,"y":0.5},"radius":2}}`, &resp)
	if resp.Count != 100 || resp.Truncated {
		t.Fatalf("full disk: count=%d truncated=%v", resp.Count, resp.Truncated)
	}

	// Unlike the legacy /query/disk (which counts all matches while
	// capping the results list), /v1/disk folds the limit into the
	// evaluation.
	resp = rangeResponse{}
	do(t, h, "POST", "/v1/disk", `{"disk":{"center":{"x":0.5,"y":0.5},"radius":2},"limit":10}`, &resp)
	if resp.Count != 10 || len(resp.Results) != 10 || !resp.Truncated {
		t.Fatalf("limited disk: count=%d results=%d truncated=%v", resp.Count, len(resp.Results), resp.Truncated)
	}

	for _, body := range []string{
		`{}`,
		`{"window":{"min_x":0,"min_y":0,"max_x":1,"max_y":1}}`,
		`{"disk":{"center":{"x":0,"y":0},"radius":-1}}`,
		`{"disk":{"center":{"x":0,"y":0},"radius":1},"mode":"fast"}`,
	} {
		if w := do(t, h, "POST", "/v1/disk", body, nil); w.Code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, w.Code)
		}
	}
}

// TestDeprecationSignaling checks that every legacy endpoint advertises
// its /v1 successor and counts into the deprecation metric, while /v1
// and infrastructure endpoints stay silent.
func TestDeprecationSignaling(t *testing.T) {
	s := testServer(t, nil)
	h := s.Handler()

	before := scrapeMetrics(t, h)
	key := `twolayer_deprecated_requests_total{endpoint="query/window"}`
	if v, ok := before[key]; !ok || v != 0 {
		t.Fatalf("deprecation counter not pre-registered at zero: %v (present %v)", v, ok)
	}

	w := do(t, h, "POST", "/query/window", `{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"count_only":true}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("legacy query status %d", w.Code)
	}
	if got := w.Header().Get("Deprecation"); got != "true" {
		t.Errorf("Deprecation header = %q, want \"true\"", got)
	}
	if link := w.Header().Get("Link"); !strings.Contains(link, "</v1/window>") ||
		!strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("Link header = %q, want /v1/window successor", link)
	}
	if after := scrapeMetrics(t, h); after[key] != 1 {
		t.Errorf("deprecation counter = %v after one legacy call, want 1", after[key])
	}

	// Every other legacy endpoint signals too (spot-check stats).
	if w := do(t, h, "GET", "/stats", "", nil); w.Header().Get("Deprecation") != "true" {
		t.Error("/stats does not signal deprecation")
	}

	// /v1 endpoints and infrastructure probes carry no deprecation.
	if w := do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"count_only":true}`, nil); w.Header().Get("Deprecation") != "" {
		t.Error("/v1/window signals deprecation")
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		if w := do(t, h, "GET", path, "", nil); w.Header().Get("Deprecation") != "" {
			t.Errorf("%s signals deprecation", path)
		}
	}
}

// TestShardedServerEquivalence runs the same queries against an
// unsharded and a sharded server over the same dataset and requires
// identical responses on both the legacy and /v1 surfaces.
func TestShardedServerEquivalence(t *testing.T) {
	geoms := testGeoms()
	opts := twolayer.Options{GridSize: 16, Decompose: true}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	single := New(Config{Index: twolayer.BuildGeoms(geoms, opts), Logger: logger})
	sharded := New(Config{
		Sharded: twolayer.BuildShardedGeoms(geoms, opts, twolayer.ShardedOptions{Shards: 4}),
		Logger:  logger,
	})

	queries := []struct{ path, body string }{
		{"/query/window", `{"rect":{"min_x":0.12,"min_y":0.12,"max_x":0.58,"max_y":0.58}}`},
		{"/query/window", `{"rect":{"min_x":0,"min_y":0,"max_x":1,"max_y":1},"exact":true}`},
		{"/query/disk", `{"center":{"x":0.5,"y":0.5},"radius":0.3}`},
		{"/v1/window", `{"window":{"min_x":0.12,"min_y":0.12,"max_x":0.58,"max_y":0.58}}`},
		{"/v1/disk", `{"disk":{"center":{"x":0.5,"y":0.5},"radius":0.3},"exact":true}`},
	}
	for _, q := range queries {
		var a, b rangeResponse
		if w := do(t, single.Handler(), "POST", q.path, q.body, &a); w.Code != http.StatusOK {
			t.Fatalf("%s unsharded: %d %s", q.path, w.Code, w.Body.String())
		}
		if w := do(t, sharded.Handler(), "POST", q.path, q.body, &b); w.Code != http.StatusOK {
			t.Fatalf("%s sharded: %d %s", q.path, w.Code, w.Body.String())
		}
		if a.Count != b.Count || len(a.Results) != len(b.Results) {
			t.Fatalf("%s %s: unsharded count=%d/%d, sharded count=%d/%d",
				q.path, q.body, a.Count, len(a.Results), b.Count, len(b.Results))
		}
		ids := func(rs []resultJSON) []int {
			out := make([]int, len(rs))
			for i, r := range rs {
				out[i] = int(r.ID)
			}
			sort.Ints(out)
			return out
		}
		ai, bi := ids(a.Results), ids(b.Results)
		for i := range ai {
			if ai[i] != bi[i] {
				t.Fatalf("%s: sorted ID sets differ at %d: %d vs %d", q.path, i, ai[i], bi[i])
			}
		}
	}

	// kNN agrees through both engines.
	var ka, kb knnResponse
	knn := `{"center":{"x":0.33,"y":0.71},"k":7}`
	do(t, single.Handler(), "POST", "/query/knn", knn, &ka)
	do(t, sharded.Handler(), "POST", "/query/knn", knn, &kb)
	if len(ka.Neighbors) != len(kb.Neighbors) {
		t.Fatalf("knn: %d vs %d neighbors", len(ka.Neighbors), len(kb.Neighbors))
	}
	for i := range ka.Neighbors {
		if ka.Neighbors[i].Distance != kb.Neighbors[i].Distance {
			t.Fatalf("knn neighbor %d distance %g vs %g", i, ka.Neighbors[i].Distance, kb.Neighbors[i].Distance)
		}
	}

	// Batch counts agree.
	var ba, bb batchResponse
	batch := `{"windows":[{"min_x":0,"min_y":0,"max_x":0.5,"max_y":0.5},{"min_x":0.4,"min_y":0.4,"max_x":1,"max_y":1}]}`
	do(t, single.Handler(), "POST", "/query/batch", batch, &ba)
	do(t, sharded.Handler(), "POST", "/query/batch", batch, &bb)
	if fmt.Sprint(ba.Counts) != fmt.Sprint(bb.Counts) {
		t.Fatalf("batch counts: %v vs %v", ba.Counts, bb.Counts)
	}

	// Traced queries expose per-shard spans in both the header and body.
	var resp rangeResponse
	w := do(t, sharded.Handler(), "POST", "/v1/window", `{`+fullWindow+`,"trace":true}`, &resp)
	if xt := w.Header().Get("X-Trace"); !strings.Contains(xt, "shards=") {
		t.Errorf("X-Trace = %q, want a shards= field", xt)
	}
	if resp.Trace == nil || len(resp.Trace.Shards) == 0 {
		t.Error("sharded trace has no shard spans")
	}

	// /stats gains the shards section.
	var st statsResponse
	do(t, sharded.Handler(), "GET", "/v1/stats", "", &st)
	if st.Shards == nil || st.Shards.Count != 4 || len(st.Shards.PerShard) != 4 {
		t.Fatalf("stats shards section = %+v", st.Shards)
	}
	var stSingle statsResponse
	do(t, single.Handler(), "GET", "/v1/stats", "", &stSingle)
	if stSingle.Shards != nil {
		t.Error("unsharded stats reports a shards section")
	}

	// The shard metric group registers only on sharded servers.
	m := scrapeMetrics(t, sharded.Handler())
	if m["twolayer_shard_count"] != 4 {
		t.Errorf("twolayer_shard_count = %v, want 4", m["twolayer_shard_count"])
	}
	for _, name := range []string{
		`twolayer_shard_objects{shard="0"}`,
		`twolayer_shard_queries_total{shard="3"}`,
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metric %s missing on sharded server", name)
		}
	}
	if _, ok := scrapeMetrics(t, single.Handler())["twolayer_shard_count"]; ok {
		t.Error("twolayer_shard_count registered on an unsharded server")
	}
}

func TestShardedLiveServer(t *testing.T) {
	sl, err := twolayer.NewShardedLive(
		twolayer.Options{GridSize: 16, Space: twolayer.Rect{MaxX: 1, MaxY: 1}},
		twolayer.LiveOptions{},
		twolayer.ShardedOptions{Shards: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	s := New(Config{ShardedLive: sl, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	h := s.Handler()

	// Insert a boundary-straddling object over HTTP, read it back.
	if w := do(t, h, "POST", "/v1/insert",
		`{"id":42,"mbr":{"min_x":0.1,"min_y":0.5,"max_x":0.9,"max_y":0.52}}`, nil); w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body.String())
	}
	var resp rangeResponse
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`}`, &resp)
	if resp.Count != 1 || resp.Results[0].ID != 42 {
		t.Fatalf("after insert: count=%d results=%v", resp.Count, resp.Results)
	}

	var del struct {
		Found bool `json:"found"`
	}
	if w := do(t, h, "POST", "/v1/delete",
		`{"id":42,"mbr":{"min_x":0.1,"min_y":0.5,"max_x":0.9,"max_y":0.52}}`, &del); w.Code != http.StatusOK || !del.Found {
		t.Fatalf("delete: %d found=%v", w.Code, del.Found)
	}

	// Bulk apply through the legacy alias still works (and deprecates).
	w := do(t, h, "POST", "/bulk",
		`{"mutations":[{"op":"insert","id":1,"mbr":{"min_x":0.2,"min_y":0.2,"max_x":0.3,"max_y":0.3}},
		               {"op":"insert","id":2,"mbr":{"min_x":0.7,"min_y":0.7,"max_x":0.8,"max_y":0.8}}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("bulk: %d %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Deprecation") != "true" {
		t.Error("/bulk does not signal deprecation")
	}

	var st statsResponse
	do(t, h, "GET", "/v1/stats", "", &st)
	if st.Live == nil {
		t.Fatal("sharded live stats has no live section")
	}
	if st.Shards == nil || st.Shards.Count != 4 {
		t.Fatalf("sharded live stats shards = %+v", st.Shards)
	}
	if st.Index.Objects != 2 {
		t.Fatalf("stats objects = %d, want 2", st.Index.Objects)
	}

	// Exact queries must be refused: live engines drop geometries.
	if w := do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"exact":true}`, nil); w.Code == http.StatusOK {
		t.Error("exact query accepted on a live sharded server")
	}
}

func TestShardedDurableServer(t *testing.T) {
	geoms := testGeoms()
	seed := twolayer.BuildShardedGeoms(geoms, twolayer.Options{GridSize: 16}, twolayer.ShardedOptions{Shards: 3})
	d, _, err := twolayer.OpenShardedDurable(
		twolayer.Options{GridSize: 16},
		twolayer.LiveOptions{},
		twolayer.ShardedDurableOptions{Dir: t.TempDir(), Seed: seed,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil))},
		twolayer.ShardedOptions{Shards: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := New(Config{ShardedDurable: d, Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	h := s.Handler()

	var resp rangeResponse
	do(t, h, "POST", "/v1/window", `{`+fullWindow+`,"count_only":true}`, &resp)
	if resp.Count != 100 {
		t.Fatalf("seeded query count = %d, want 100", resp.Count)
	}

	if w := do(t, h, "POST", "/v1/insert",
		`{"id":500,"mbr":{"min_x":0.4,"min_y":0.4,"max_x":0.6,"max_y":0.6}}`, nil); w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body.String())
	}

	var ck struct {
		Epoch uint64 `json:"epoch"`
	}
	if w := do(t, h, "POST", "/v1/checkpoint", `{}`, &ck); w.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", w.Code, w.Body.String())
	}

	var st statsResponse
	do(t, h, "GET", "/v1/stats", "", &st)
	if st.Durability == nil {
		t.Fatal("sharded durable stats has no durability section")
	}
	if st.Shards == nil || st.Shards.Count != 3 {
		t.Fatalf("sharded durable stats shards = %+v", st.Shards)
	}
	if st.Index.Objects != 101 {
		t.Fatalf("stats objects = %d, want 101", st.Index.Objects)
	}

	var hz struct {
		Status  string `json:"status"`
		Objects int    `json:"objects"`
	}
	do(t, h, "GET", "/v1/healthz", "", &hz)
	if hz.Status != "ok" || hz.Objects != 101 {
		t.Fatalf("healthz = %+v", hz)
	}
}
