package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/distsim"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/onelayer"
	"github.com/twolayer/twolayer/internal/spatial"
)

// queryExtents is the paper's relative-extent sweep: 0.01% .. 1% of the map.
var queryExtents = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01}

// Fig6 regenerates Figure 6: execution time breakdown of the refinement
// variants (Simple, RefAvoid, RefAvoid+) for window and disk queries on
// the two-layer index over exact geometries.
func Fig6(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 6: refinement-step variants on 2-layer ==\n")
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges} {
		d := c.realDataset(kind)
		ix := core.Build(d, core.Options{NX: gridFor(d.Len()), NY: gridFor(d.Len())})
		windows := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 2})
		disks := datagen.Disks(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 3})

		c.printf("-- %s, window queries (avg us/query) --\n", kind)
		for _, mode := range []core.RefineMode{core.RefineSimple, core.RefineAvoid, core.RefineAvoidPlus} {
			stats := &core.Stats{}
			ix.Stats = stats
			start := time.Now()
			done := 0
			for _, w := range windows {
				ix.WindowExact(w, mode, func(spatial.ID) {})
				done++
				if done%16 == 0 && time.Since(start) > c.TimePerPoint {
					break
				}
			}
			el := time.Since(start)
			ix.Stats = nil
			c.printf("  %-9s %8.1f us/query   refinements=%d filter-hits=%d\n",
				mode, float64(el.Microseconds())/float64(done),
				stats.RefinementTests, stats.SecondaryFilterHits)
		}

		c.printf("-- %s, disk queries (avg us/query; RefAvoid+ not applicable) --\n", kind)
		for _, mode := range []core.RefineMode{core.RefineSimple, core.RefineAvoid} {
			stats := &core.Stats{}
			ix.Stats = stats
			start := time.Now()
			done := 0
			for _, q := range disks {
				ix.DiskExact(q.Center, q.Radius, mode, func(spatial.ID) {})
				done++
				if done%16 == 0 && time.Since(start) > c.TimePerPoint {
					break
				}
			}
			el := time.Since(start)
			ix.Stats = nil
			c.printf("  %-9s %8.1f us/query   refinements=%d filter-hits=%d distances=%d\n",
				mode, float64(el.Microseconds())/float64(done),
				stats.RefinementTests, stats.SecondaryFilterHits, stats.DistanceComputations)
		}
	}
	c.printf("(paper: secondary filter cuts refinements by >90%%; window bottleneck moves to filtering)\n\n")
}

// Fig7 regenerates Figure 7: index build time, size and window query
// throughput of the grid indices as the granularity varies.
func Fig7(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 7: building and tuning grid indices ==\n")
	grids := []int{256, 512, 1024, 2048, 4096}
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges} {
		d := c.realDataset(kind)
		queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 4})
		c.printf("-- %s (%d objects) --\n", kind, d.Len())
		c.printf("%-6s | %8s %8s %9s | %8s %8s %9s | %8s %8s %9s\n",
			"grid", "1L-build", "1L-MB", "1L-q/s", "2L-build", "2L-MB", "2L-q/s", "2L+build", "2L+MB", "2L+q/s")
		for _, g := range grids {
			start := time.Now()
			ol := onelayer.Build(d, onelayer.Options{NX: g, NY: g})
			olBuild := time.Since(start)
			olT, _ := c.measureWindows(ol, queries)
			olMB := float64(ol.MemoryFootprint()) / (1 << 20)

			start = time.Now()
			tl := core.Build(d, core.Options{NX: g, NY: g})
			tlBuild := time.Since(start)
			tlT, _ := c.measureWindows(tl, queries)
			tlMB := float64(tl.MemoryFootprint()) / (1 << 20)

			start = time.Now()
			tp := core.Build(d, core.Options{NX: g, NY: g, Decompose: true})
			tpBuild := time.Since(start)
			tpT, _ := c.measureWindows(tp, queries)
			tpMB := float64(tp.MemoryFootprint()) / (1 << 20)

			c.printf("%-6d | %8.2f %8.1f %9.0f | %8.2f %8.1f %9.0f | %8.2f %8.1f %9.0f\n",
				g, olBuild.Seconds(), olMB, olT, tlBuild.Seconds(), tlMB, tlT,
				tpBuild.Seconds(), tpMB, tpT)
		}
	}
	c.printf("(paper: 1-layer and 2-layer same size; 2-layer+ larger & fastest; broad optimum)\n\n")
}

// Fig8 regenerates Figure 8: throughput vs query extent and vs selectivity
// for window and disk queries on the three real datasets.
func Fig8(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 8: query processing on real data ==\n")
	for _, kind := range realKinds() {
		d := c.realDataset(kind)
		gridN := gridFor(d.Len())
		methods := KeyMethods()
		built := make([]QueryIndex, len(methods))
		for i, m := range methods {
			built[i] = m.Build(d, gridN)
		}

		c.printf("-- %s: window throughput [queries/s] vs relative extent --\n", kind)
		c.printf("%-10s", "extent%")
		for _, m := range methods {
			c.printf(" %12s", m.Name)
		}
		c.printf("\n")
		type selSample struct {
			sel float64 // selectivity %
			us  float64 // per-query time (us) of 2-layer
		}
		var samples []selSample
		for _, extent := range queryExtents {
			queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(2000), RelExtent: extent, Seed: c.Seed + 5})
			c.printf("%-10.2f", extent*100)
			for i := range methods {
				tput, _ := c.measureWindows(built[i], queries)
				c.printf(" %12.0f", tput)
				if methods[i].Name == "2-layer" {
					// Collect per-query selectivity samples for the
					// selectivity-bucketed view.
					for _, w := range queries[:min(len(queries), 200)] {
						start := time.Now()
						n := built[i].WindowCount(w)
						el := time.Since(start)
						samples = append(samples, selSample{
							sel: 100 * float64(n) / float64(d.Len()),
							us:  float64(el.Nanoseconds()) / 1e3,
						})
					}
				}
			}
			c.printf("\n")
		}

		// Selectivity buckets, as in the paper's second column.
		buckets := []struct {
			label  string
			lo, hi float64
		}{
			{"[0,0.01]", 0, 0.01},
			{"(0.01,0.1]", 0.01, 0.1},
			{"(0.1,1]", 0.1, 1},
			{"(1,100]", 1, 100},
		}
		c.printf("   2-layer by selectivity:")
		for _, b := range buckets {
			var sum float64
			var n int
			for _, s := range samples {
				if s.sel > b.lo && s.sel <= b.hi || (b.lo == 0 && s.sel == 0) {
					sum += s.us
					n++
				}
			}
			if n > 0 {
				c.printf("  %s=%.0fus", b.label, sum/float64(n))
			}
		}
		c.printf("\n")

		c.printf("-- %s: disk throughput [queries/s] vs relative extent (2-layer+ excluded) --\n", kind)
		c.printf("%-10s", "extent%")
		for _, m := range methods {
			if m.Name == "2-layer+" {
				continue
			}
			c.printf(" %12s", m.Name)
		}
		c.printf("\n")
		for _, extent := range queryExtents {
			disks := datagen.Disks(d, datagen.QuerySpec{N: c.n(2000), RelExtent: extent, Seed: c.Seed + 6})
			c.printf("%-10.2f", extent*100)
			for i := range methods {
				if methods[i].Name == "2-layer+" {
					continue
				}
				tput, _ := c.measureDisks(built[i], disks)
				c.printf(" %12.0f", tput)
			}
			c.printf("\n")
		}
	}
	c.printf("(paper: 2-layer/2-layer+ consistently fastest across extents and selectivities)\n\n")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Fig9 regenerates Figure 9: window queries on synthetic data — query
// extent, cardinality and object-area sweeps, uniform and zipfian.
func Fig9(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 9: query processing on synthetic data (window) ==\n")
	methods := KeyMethods()
	defaultCard := c.n(500_000) // paper default 10M, scaled by 1/20
	defaultArea := 1e-10

	for _, dist := range []datagen.Distribution{datagen.Uniform, datagen.Zipf} {
		c.printf("-- %s: throughput vs query extent (card=%d, obj area=%g) --\n",
			dist, defaultCard, defaultArea)
		d := datagen.Dataset(datagen.Spec{N: defaultCard, Area: defaultArea, Dist: dist, Seed: c.Seed})
		printMethodsHeader(c, methods)
		built := buildAll(methods, d)
		for _, extent := range queryExtents {
			queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(2000), RelExtent: extent, Seed: c.Seed + 7})
			c.printf("%-10.2f", extent*100)
			for i := range methods {
				tput, _ := c.measureWindows(built[i], queries)
				c.printf(" %12.0f", tput)
			}
			c.printf("\n")
		}

		c.printf("-- %s: throughput vs cardinality (query extent 0.1%%) --\n", dist)
		printMethodsHeader(c, methods)
		for _, card := range []int{c.n(50_000), c.n(250_000), c.n(500_000), c.n(2_500_000)} {
			dc := datagen.Dataset(datagen.Spec{N: card, Area: defaultArea, Dist: dist, Seed: c.Seed})
			queries := datagen.Windows(dc, datagen.QuerySpec{N: c.n(2000), RelExtent: 0.001, Seed: c.Seed + 8})
			c.printf("%-10d", card)
			for i := range methods {
				ix := methods[i].Build(dc, gridFor(card))
				tput, _ := c.measureWindows(ix, queries)
				c.printf(" %12.0f", tput)
			}
			c.printf("\n")
		}

		c.printf("-- %s: throughput vs object area (card=%d, query extent 0.1%%) --\n", dist, defaultCard)
		printMethodsHeader(c, methods)
		for _, objArea := range []float64{0, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6} {
			dc := datagen.Dataset(datagen.Spec{N: defaultCard, Area: objArea, Dist: dist, Seed: c.Seed})
			queries := datagen.Windows(dc, datagen.QuerySpec{N: c.n(2000), RelExtent: 0.001, Seed: c.Seed + 9})
			c.printf("%-10.0e", objArea)
			for i := range methods {
				ix := methods[i].Build(dc, gridFor(defaultCard))
				tput, _ := c.measureWindows(ix, queries)
				c.printf(" %12.0f", tput)
			}
			c.printf("\n")
		}
	}
	c.printf("(paper: 2-layer robust to object area; 1-layer/quad-tree degrade as replication grows)\n\n")
}

func printMethodsHeader(c Config, methods []Method) {
	c.printf("%-10s", "param")
	for _, m := range methods {
		c.printf(" %12s", m.Name)
	}
	c.printf("\n")
}

func buildAll(methods []Method, d *spatial.Dataset) []QueryIndex {
	out := make([]QueryIndex, len(methods))
	for i, m := range methods {
		out[i] = m.Build(d, gridFor(d.Len()))
	}
	return out
}

// Fig10 regenerates Figure 10: batch window query processing, queries-based
// vs tiles-based, total time over a 10K-query batch per query extent.
func Fig10(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 10: batch query processing (total secs, 10K queries) ==\n")
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges} {
		d := c.realDataset(kind)
		ix := core.Build(d, core.Options{NX: gridFor(d.Len()), NY: gridFor(d.Len())})
		c.printf("-- %s --\n%-10s %14s %14s\n", kind, "extent%", "queries-based", "tiles-based")
		for _, extent := range queryExtents {
			queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: extent, Seed: c.Seed + 10})
			start := time.Now()
			ix.BatchWindowCounts(queries, core.QueriesBased, 1)
			qb := time.Since(start)
			start = time.Now()
			ix.BatchWindowCounts(queries, core.TilesBased, 1)
			tb := time.Since(start)
			c.printf("%-10.2f %14.3f %14.3f\n", extent*100, qb.Seconds(), tb.Seconds())
		}
	}
	c.printf("(paper: tiles-based wins on large/dense batches, loses when per-tile work is tiny)\n\n")
}

// Fig11 regenerates Figure 11: speedup of batch processing with the
// number of threads. On a single-core host the curve is flat; the
// experiment still validates that parallel evaluation is correct and
// overhead-bounded.
func Fig11(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 11: parallel batch processing speedup (%d CPU(s)) ==\n", runtime.NumCPU())
	threads := []int{1, 2, 4, 8, 16}
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges} {
		d := c.realDataset(kind)
		ix := core.Build(d, core.Options{NX: gridFor(d.Len()), NY: gridFor(d.Len())})
		queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 11})
		c.printf("-- %s --\n%-8s %14s %14s\n", kind, "threads", "queries-based", "tiles-based")
		var qb1, tb1 time.Duration
		for _, th := range threads {
			start := time.Now()
			ix.BatchWindowCounts(queries, core.QueriesBased, th)
			qb := time.Since(start)
			start = time.Now()
			ix.BatchWindowCounts(queries, core.TilesBased, th)
			tb := time.Since(start)
			if th == 1 {
				qb1, tb1 = qb, tb
			}
			c.printf("%-8d %13.2fx %13.2fx\n", th,
				qb1.Seconds()/qb.Seconds(), tb1.Seconds()/tb.Seconds())
		}
	}
	c.printf("(paper: tiles-based scales near-linearly to ~25 threads; queries-based poorly)\n\n")
}

// Fig12 regenerates Figure 12: the 2-layer index vs the simulated
// distributed engine (GeoSpark substitute), end-to-end window queries.
func Fig12(c Config) {
	c = c.withDefaults()
	c.printf("== Figure 12: 2-layer vs simulated distributed engine ==\n")
	d := c.realDataset(datagen.Roads)
	ix := core.Build(d, core.Options{NX: 1000, NY: 1000})
	queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(100), RelExtent: 0.001, Seed: c.Seed + 12})

	c.printf("%-8s %18s %14s   [queries/sec, 100 queries]\n", "threads", "distributed-sim", "2-layer")
	for _, th := range []int{1, 2, 4, 6, 8, 12} {
		cluster := distsim.NewCluster(d, distsim.Options{Workers: th})
		start := time.Now()
		for _, w := range queries {
			cluster.WindowCount(w)
		}
		distT := float64(len(queries)) / time.Since(start).Seconds()
		cluster.Close()

		start = time.Now()
		parallelWindows(ix, queries, th)
		ixT := float64(len(queries)) / time.Since(start).Seconds()
		c.printf("%-8d %18.2f %14.0f\n", th, distT, ixT)
	}
	c.printf("(paper: 2-layer at least three orders of magnitude faster end-to-end)\n\n")
}

// parallelWindows evaluates queries independently on th goroutines
// (round-robin), the paper's Fig. 12 multi-threaded setting.
func parallelWindows(ix *core.Index, queries []geom.Rect, th int) {
	var total int64
	var wg sync.WaitGroup
	for w := 0; w < th; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for q := w; q < len(queries); q += th {
				n += ix.WindowCount(queries[q])
			}
			atomic.AddInt64(&total, int64(n))
		}(w)
	}
	wg.Wait()
}
