package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig returns a configuration that makes every experiment finish
// in test time.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:          buf,
		Scale:        0.002, // ~2000-object datasets
		TimePerPoint: 50 * time.Millisecond,
		Seed:         7,
	}
}

// TestRunUnknown rejects bad experiment ids.
func TestRunUnknown(t *testing.T) {
	if err := Run("nope", Config{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestAllExperimentsSmoke runs every experiment at minuscule scale and
// checks each produces its table header.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test is not short")
	}
	wants := map[string]string{
		"table3": "Table III",
		"table4": "Table IV",
		"table5": "Table V",
		"table6": "Table VI",
		"fig6":   "Figure 6",
		"fig7":   "Figure 7",
		"fig8":   "Figure 8",
		"fig9":   "Figure 9",
		"fig10":  "Figure 10",
		"fig11":  "Figure 11",
		"fig12":  "Figure 12",
		"ext":    "Extensions",
	}
	for id, want := range wants {
		var buf bytes.Buffer
		cfg := tinyConfig(&buf)
		if id == "fig12" {
			// Even the simulated cluster's default overheads would make
			// this slow; the smoke test only checks wiring.
			cfg.Scale = 0.0005
		}
		if err := Run(id, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s output missing %q:\n%s", id, want, buf.String())
		}
	}
}

// TestMethodRegistry sanity: distinct names, all build and answer.
func TestMethodRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range AllMethods() {
		if seen[m.Name] {
			t.Fatalf("duplicate method %q", m.Name)
		}
		seen[m.Name] = true
	}
	if len(AllMethods()) != 9 {
		t.Errorf("Table V compares 9 methods, registry has %d", len(AllMethods()))
	}
	if len(KeyMethods()) != 5 {
		t.Errorf("figures compare 5 methods, registry has %d", len(KeyMethods()))
	}
}

// TestGridFor: occupancy-driven granularity stays in bounds.
func TestGridFor(t *testing.T) {
	if g := gridFor(100); g != 64 {
		t.Errorf("gridFor(100) = %d", g)
	}
	if g := gridFor(100_000_000); g != 4096 {
		t.Errorf("gridFor(1e8) = %d", g)
	}
	if g := gridFor(1_000_000); g != 1024 {
		t.Errorf("gridFor(1e6) = %d", g)
	}
}
