// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section VII) on scaled-down workloads,
// printing paper-style result tables. The cmd/experiments binary and the
// repository-level Go benchmarks are thin wrappers around this package.
//
// Scaling: the paper's datasets hold 20M-98M objects and its grids go up
// to 20000 tiles per dimension. The harness defaults to laptop-scale
// fractions of both (Config.Scale multiplies cardinalities); relative
// comparisons — who wins and by what factor — are preserved, absolute
// numbers are not comparable to the paper's hardware.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/twolayer/twolayer/internal/block"
	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/onelayer"
	"github.com/twolayer/twolayer/internal/quadtree"
	"github.com/twolayer/twolayer/internal/rtree"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Config controls experiment scale and output.
type Config struct {
	// Out receives the formatted result tables.
	Out io.Writer
	// Scale multiplies the default (laptop-scale) cardinalities and
	// query counts. 1.0 uses the defaults documented per experiment.
	Scale float64
	// TimePerPoint caps the measurement time of one (method, parameter)
	// cell; slow methods get their throughput extrapolated from however
	// many queries completed. Default 5s.
	TimePerPoint time.Duration
	// Seed drives all workload generation.
	Seed int64
	// BuildThreads is the worker count the "build" experiment uses for
	// its parallel column (core.Options.BuildThreads semantics: 0 means
	// runtime.NumCPU()). Other experiments build their indices with the
	// default pipeline.
	BuildThreads int
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.TimePerPoint == 0 {
		c.TimePerPoint = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 20210419 // ICDE 2021
	}
	return c
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// QueryIndex is the least common denominator all compared indices
// implement.
type QueryIndex interface {
	WindowCount(w geom.Rect) int
	DiskCount(center geom.Point, radius float64) int
}

// Method is one compared index configuration.
type Method struct {
	Name  string
	Build func(d *spatial.Dataset, gridN int) QueryIndex
}

// Grid-based methods take the tile count per dimension; tree methods
// ignore it.
var (
	twoLayer = Method{"2-layer", func(d *spatial.Dataset, n int) QueryIndex {
		return core.Build(d, core.Options{NX: n, NY: n})
	}}
	twoLayerPlus = Method{"2-layer+", func(d *spatial.Dataset, n int) QueryIndex {
		return core.Build(d, core.Options{NX: n, NY: n, Decompose: true})
	}}
	oneLayer = Method{"1-layer", func(d *spatial.Dataset, n int) QueryIndex {
		return onelayer.Build(d, onelayer.Options{NX: n, NY: n})
	}}
	quadTree = Method{"quad-tree", func(d *spatial.Dataset, _ int) QueryIndex {
		return quadtree.Build(d, quadtree.Options{})
	}}
	quadTwoLayer = Method{"quad-tree 2-layer", func(d *spatial.Dataset, _ int) QueryIndex {
		return quadtree.Build(d, quadtree.Options{Mode: quadtree.TwoLayer})
	}}
	rTree = Method{"R-tree", func(d *spatial.Dataset, _ int) QueryIndex {
		return rtree.BulkSTR(d, rtree.Options{})
	}}
	rStarTree = Method{"R*-tree", func(d *spatial.Dataset, _ int) QueryIndex {
		return rtree.BuildRStar(d, rtree.Options{})
	}}
	blockIndex = Method{"BLOCK", func(d *spatial.Dataset, _ int) QueryIndex {
		return block.Build(d, block.Options{})
	}}
	mxcifTree = Method{"MXCIF quad-tree", func(d *spatial.Dataset, _ int) QueryIndex {
		return quadtree.Build(d, quadtree.Options{Mode: quadtree.MXCIF})
	}}
)

// KeyMethods are the paper's five main competitors (used by Figures 8-9).
func KeyMethods() []Method {
	return []Method{rTree, quadTree, oneLayer, twoLayer, twoLayerPlus}
}

// AllMethods are the Table V competitors.
func AllMethods() []Method {
	return []Method{twoLayer, twoLayerPlus, oneLayer, quadTree, quadTwoLayer,
		rTree, rStarTree, blockIndex, mxcifTree}
}

// measureWindows runs window queries against ix under the time budget and
// returns throughput (queries/second) plus the total result count.
func (c Config) measureWindows(ix QueryIndex, queries []geom.Rect) (float64, int) {
	start := time.Now()
	done, results := 0, 0
	for _, w := range queries {
		results += ix.WindowCount(w)
		done++
		if done%16 == 0 && time.Since(start) > c.TimePerPoint {
			break
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(done) / elapsed.Seconds(), results
}

// measureDisks is measureWindows for disk queries.
func (c Config) measureDisks(ix QueryIndex, queries []geom.Disk) (float64, int) {
	start := time.Now()
	done, results := 0, 0
	for _, q := range queries {
		results += ix.DiskCount(q.Center, q.Radius)
		done++
		if done%16 == 0 && time.Since(start) > c.TimePerPoint {
			break
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(done) / elapsed.Seconds(), results
}

// gridFor picks the grid granularity for a dataset, following the paper's
// finding that ~1000-10000 partitions per dimension at 20M-98M objects is
// a wide optimum. We keep tile occupancy comparable at smaller scale:
// sqrt(n) tiles per dimension, clamped to [64, 4096].
func gridFor(n int) int {
	g := 64
	for g*g < n && g < 4096 {
		g *= 2
	}
	return g
}

// Run executes the experiment with the given id ("table3", "table5",
// "table6", "fig6".."fig12", or "all").
func Run(id string, cfg Config) error {
	cfg = cfg.withDefaults()
	experiments := map[string]func(Config){
		"table3": Table3,
		"table4": Table4,
		"table5": Table5,
		"table6": Table6,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"ext":    Extensions,
		"build":  BuildExp,
	}
	if id == "all" {
		for _, name := range []string{"table3", "table4", "table5", "table6",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ext", "build"} {
			experiments[name](cfg)
		}
		return nil
	}
	f, ok := experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	f(cfg)
	return nil
}

// realDataset builds a scaled real-like dataset. Base cardinalities are
// 1/20 of the paper's (ROADS 1M, EDGES 3.5M, TIGER 4.9M at Scale=1).
func (c Config) realDataset(kind datagen.RealLike) *spatial.Dataset {
	return datagen.RealLikeDataset(kind, c.n(kind.PaperCardinality()/20), c.Seed)
}

// realKinds lists the emulated datasets.
func realKinds() []datagen.RealLike {
	return []datagen.RealLike{datagen.Roads, datagen.Edges, datagen.Tiger}
}
