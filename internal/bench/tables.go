package bench

import (
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/onelayer"
	"github.com/twolayer/twolayer/internal/quadtree"
	"github.com/twolayer/twolayer/internal/rtree"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Table3 regenerates Table III: the real-world dataset statistics, for
// the emulated (scaled) datasets next to the paper's originals.
func Table3(c Config) {
	c = c.withDefaults()
	c.printf("== Table III: real-world datasets (emulated, scaled) ==\n")
	c.printf("%-8s %-12s %10s %14s %14s   %s\n",
		"dataset", "type", "card.", "avg x-extent", "avg y-extent", "paper (card/x/y)")
	for _, kind := range realKinds() {
		d := c.realDataset(kind)
		s := datagen.Stats(d)
		typ := "mixed"
		switch kind {
		case datagen.Roads:
			typ = "linestrings"
		case datagen.Edges:
			typ = "polygons"
		}
		px, py := kind.AvgExtent()
		c.printf("%-8s %-12s %10d %14.8f %14.8f   %d / %.8f / %.8f\n",
			kind, typ, s.Cardinality, s.AvgXExtent, s.AvgYExtent,
			kind.PaperCardinality(), px, py)
	}
	c.printf("\n")
}

// Table4 prints the synthetic workload parameters (Table IV); the values
// themselves parameterize Figure 9.
func Table4(c Config) {
	c = c.withDefaults()
	c.printf("== Table IV: synthetic datasets (parameters) ==\n")
	c.printf("cardinality: 1M, 5M, 10M, 50M, 100M (scaled by %g/20, default 0.5M)\n", c.Scale)
	c.printf("area:        1e-inf, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6 (default 1e-10)\n")
	c.printf("distribution: uniform or zipfian (a=1)\n\n")
}

// Table5 regenerates Table V: window query throughput of every compared
// method on ROADS and EDGES (10K queries, 0.1%% relative area).
func Table5(c Config) {
	c = c.withDefaults()
	c.printf("== Table V: method comparison, window queries (0.1%% extent) ==\n")
	c.printf("%-18s %14s %14s   [queries/sec]\n", "index", "ROADS", "EDGES")
	type row struct {
		name string
		tput map[datagen.RealLike]float64
	}
	rows := make([]row, 0, len(AllMethods()))
	for _, m := range AllMethods() {
		rows = append(rows, row{name: m.Name, tput: map[datagen.RealLike]float64{}})
	}
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges} {
		d := c.realDataset(kind)
		queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 1})
		gridN := gridFor(d.Len())
		for i, m := range AllMethods() {
			ix := m.Build(d, gridN)
			tput, _ := c.measureWindows(ix, queries)
			rows[i].tput[kind] = tput
		}
	}
	for _, r := range rows {
		c.printf("%-18s %14.0f %14.0f\n", r.name, r.tput[datagen.Roads], r.tput[datagen.Edges])
	}
	c.printf("(paper: 2-layer/2-layer+ lead; R-tree best DOP; BLOCK and MXCIF orders slower)\n\n")
}

// Table6 regenerates Table VI: total update cost — bulk-load 90% of each
// dataset, then measure inserting the final 10%.
func Table6(c Config) {
	c = c.withDefaults()
	c.printf("== Table VI: total update cost (insert last 10%%) [sec] ==\n")
	c.printf("%-8s %10s %12s %10s %10s\n", "dataset", "R-tree", "quad-tree", "1-layer", "2-layer")
	for _, kind := range realKinds() {
		d := c.realDataset(kind)
		split := d.Len() * 9 / 10
		head := &spatial.Dataset{Entries: d.Entries[:split]}
		tail := d.Entries[split:]
		gridN := gridFor(d.Len())
		space := d.MBR()

		rt := rtree.BulkSTR(head, rtree.Options{})
		rtTime := timeInserts(tail, func(e spatial.Entry) { rt.Insert(e) })

		qt := quadtree.Build(head, quadtree.Options{Space: space})
		qtTime := timeInserts(tail, func(e spatial.Entry) { qt.Insert(e) })

		ol := onelayer.Build(head, onelayer.Options{NX: gridN, NY: gridN, Space: space})
		olTime := timeInserts(tail, func(e spatial.Entry) { ol.Insert(e) })

		tl := core.Build(head, core.Options{NX: gridN, NY: gridN, Space: space})
		tlTime := timeInserts(tail, func(e spatial.Entry) { tl.Insert(e) })

		c.printf("%-8s %10.3f %12.3f %10.3f %10.3f\n", kind,
			rtTime.Seconds(), qtTime.Seconds(), olTime.Seconds(), tlTime.Seconds())
	}
	c.printf("(paper: R-tree ~2 orders slower than grids; 2-layer slightly above 1-layer)\n\n")
}

func timeInserts(entries []spatial.Entry, insert func(spatial.Entry)) time.Duration {
	start := time.Now()
	for _, e := range entries {
		insert(e)
	}
	return time.Since(start)
}

// WindowOf converts a disk to its bounding window (used by helpers).
func WindowOf(d geom.Disk) geom.Rect { return d.MBR() }
