package bench

import (
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/rtree"
)

// Extensions benchmarks the paper's stated future-work query types as
// implemented in this library: k-nearest-neighbor search and the spatial
// intersection join, both on the two-layer grid with an R-tree reference
// point.
func Extensions(c Config) {
	c = c.withDefaults()
	c.printf("== Extensions: kNN and spatial join (paper future work) ==\n")

	d := c.realDataset(datagen.Roads)
	gridN := gridFor(d.Len())
	tl := core.Build(d, core.Options{NX: gridN, NY: gridN})
	rt := rtree.BulkSTR(d, rtree.Options{})

	// kNN: query points follow the data distribution.
	queries := datagen.Windows(d, datagen.QuerySpec{N: c.n(10000), RelExtent: 0.001, Seed: c.Seed + 13})
	points := make([]geom.Point, len(queries))
	for i, w := range queries {
		points[i] = w.Center()
	}
	c.printf("-- kNN throughput [queries/s] on ROADS (%d objects) --\n", d.Len())
	c.printf("%-6s %14s %14s\n", "k", "2-layer", "R-tree")
	for _, k := range []int{1, 10, 100} {
		tput1 := measureKNN(c, func(p geom.Point) int { return len(tl.KNN(p, k)) }, points)
		tput2 := measureKNN(c, func(p geom.Point) int { return len(rt.KNN(p, k)) }, points)
		c.printf("%-6d %14.0f %14.0f\n", k, tput1, tput2)
	}

	// Join: ROADS-like against EDGES-like on a shared grid.
	e := c.realDataset(datagen.Edges)
	space := d.MBR().Union(e.MBR())
	r := core.Build(d, core.Options{NX: gridN, NY: gridN, Space: space})
	s := core.Build(e, core.Options{NX: gridN, NY: gridN, Space: space})
	c.printf("-- spatial join ROADS x EDGES (%d x %d objects) --\n", d.Len(), e.Len())

	start := time.Now()
	pairs := r.JoinCount(s)
	joinTime := time.Since(start)
	c.printf("grid join (class combos):  %d pairs in %.3fs\n", pairs, joinTime.Seconds())

	start = time.Now()
	probe := 0
	for _, entry := range d.Entries {
		probe += s.WindowCount(entry.Rect)
		if time.Since(start) > 4*c.TimePerPoint {
			// Extrapolate the nested-loop baseline if it is very slow.
			frac := float64(probe) / float64(pairs)
			c.printf("index nested loop:         extrapolating after %.0f%% of pairs\n", 100*frac)
			break
		}
	}
	probeTime := time.Since(start)
	c.printf("index nested loop:         %d pairs in %.3fs\n", probe, probeTime.Seconds())
	c.printf("\n")
}

func measureKNN(c Config, run func(geom.Point) int, points []geom.Point) float64 {
	start := time.Now()
	done := 0
	for _, p := range points {
		benchSinkInt += run(p)
		done++
		if done%16 == 0 && time.Since(start) > c.TimePerPoint {
			break
		}
	}
	el := time.Since(start)
	if el <= 0 {
		el = time.Nanosecond
	}
	return float64(done) / el.Seconds()
}

// benchSinkInt defeats dead-code elimination in measurements.
var benchSinkInt int
