package bench

import (
	"runtime"
	"time"

	"github.com/twolayer/twolayer/internal/core"
)

// BuildExp measures index construction: the sequential insert loop
// against the two-pass parallel pipeline (core.Options.BuildThreads),
// with and without decomposed tables, on every emulated real dataset.
// This is not a paper experiment — the paper builds its indices once,
// offline — but it documents the cost the serving layer pays on every
// recovery rebuild and Live redecompose.
func BuildExp(cfg Config) {
	cfg = cfg.withDefaults()
	par := cfg.BuildThreads
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par < 2 {
		// The parallel column must actually run the two-pass pipeline,
		// even on a single-core host (where it still wins on allocations).
		par = 2
	}
	cfg.printf("\n== Build: sequential vs parallel pipeline (NumCPU=%d) ==\n", runtime.NumCPU())
	cfg.printf("%-8s %10s %6s | %12s %12s %8s | %12s %12s\n",
		"dataset", "objects", "grid", "seq build", "par build", "speedup", "seq +dec", "par +dec")
	for _, kind := range realKinds() {
		d := cfg.realDataset(kind)
		g := gridFor(d.Len())
		base := core.Options{NX: g, NY: g, Space: d.MBR()}

		timeBuild := func(threads int, decompose bool) time.Duration {
			runtime.GC() // don't charge one variant with another's garbage
			opts := base
			opts.BuildThreads = threads
			opts.Decompose = decompose
			start := time.Now()
			ix := core.Build(d, opts)
			elapsed := time.Since(start)
			_ = ix.Len()
			return elapsed
		}
		seq := timeBuild(1, false)
		parT := timeBuild(par, false)
		seqDec := timeBuild(1, true)
		parDec := timeBuild(par, true)
		cfg.printf("%-8s %10d %6d | %12v %12v %7.2fx | %12v %12v\n",
			kind.String(), d.Len(), g,
			seq.Round(time.Millisecond), parT.Round(time.Millisecond),
			float64(seq)/float64(parT),
			seqDec.Round(time.Millisecond), parDec.Round(time.Millisecond))
	}
	cfg.printf("(parallel columns use BuildThreads=%d; on a single-core host the\n", par)
	cfg.printf(" speedup reflects the allocation-lean two-pass layout, not parallelism)\n")
}
