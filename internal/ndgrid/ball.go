package ndgrid

import (
	"fmt"
	"math"
)

// Ball queries generalize the paper's disk queries (Section IV-E) to m
// dimensions. Class selection works as for windows — a class beginning
// before the cell in a dimension is skipped when the previous cell in
// that dimension also intersects the ball — and the residual duplicates
// along the ball's curved boundary are resolved by a lexicographic owner
// rule over the cell cover: an entry is reported only in the
// lexicographically first cover cell of its replication block. The
// prev-cell skip never skips the owner cell (an entry beginning before
// its cell in dimension d has an earlier block cell in d; if that cell is
// in the cover, a lexicographically smaller cover∩block cell exists), so
// the two rules compose without losing results.

// BallCount returns the number of boxes within distance radius of center.
func (ix *Index) BallCount(center []float64, radius float64) (int, error) {
	n := 0
	err := ix.Ball(center, radius, func(Entry) { n++ })
	return n, err
}

// Ball invokes fn exactly once for every entry whose box comes within
// radius of center (minimum box-to-point Euclidean distance).
func (ix *Index) Ball(center []float64, radius float64, fn func(e Entry)) error {
	if len(center) != ix.dims {
		return fmt.Errorf("ndgrid: %d-dim center for %d-dim index", len(center), ix.dims)
	}
	if radius < 0 || math.IsNaN(radius) {
		return fmt.Errorf("ndgrid: invalid radius %v", radius)
	}
	for _, v := range center {
		if math.IsNaN(v) {
			return fmt.Errorf("ndgrid: NaN center coordinate")
		}
	}
	r2 := radius * radius

	// Cover range: cells of the ball's bounding box.
	lo := make([]int, ix.dims)
	hi := make([]int, ix.dims)
	for d := 0; d < ix.dims; d++ {
		lo[d] = ix.cellOf(d, center[d]-radius)
		hi[d] = ix.cellOf(d, center[d]+radius)
	}

	// Membership: cells whose extents intersect the ball.
	cover := make(map[uint64]bool)
	odometer(lo, hi, func(coords []int) {
		if ix.cellDistSq(coords, center) <= r2 {
			cover[ix.tileKey(coords)] = true
		}
	})

	var err error
	prev := make([]int, ix.dims)
	odometer(lo, hi, func(coords []int) {
		if err != nil || !cover[ix.tileKey(coords)] {
			return
		}
		t := ix.tiles[ix.tileKey(coords)]
		if t == nil {
			return
		}
		// Classes beginning before the cell in a dimension whose previous
		// cell is also in the cover are duplicates there.
		skipMask := uint32(0)
		for d := 0; d < ix.dims; d++ {
			if coords[d] > lo[d] {
				copy(prev, coords)
				prev[d]--
				if cover[ix.tileKey(prev)] {
					skipMask |= 1 << d
				}
			}
		}
		covered := ix.cellMaxDistSq(coords, center) <= r2
		for mask := uint32(0); mask < uint32(len(t.classes)); mask++ {
			if mask&skipMask != 0 {
				continue
			}
			for i := range t.classes[mask] {
				e := &t.classes[mask][i]
				if !covered && ix.boxDistSq(e.Box, center) > r2 {
					continue
				}
				if mask != 0 && !ix.ownsBallEntry(e.Box, coords, cover) {
					continue
				}
				fn(*e)
			}
		}
	})
	return err
}

// cellDistSq returns the squared distance from the cell's extent to a
// point; border cells extend to infinity (distance 0 contribution beyond
// the space).
func (ix *Index) cellDistSq(coords []int, p []float64) float64 {
	sum := 0.0
	for d, c := range coords {
		cellMin := ix.space.Min[d] + float64(c)*ix.cellW[d]
		cellMax := cellMin + ix.cellW[d]
		if c == 0 {
			cellMin = math.Inf(-1)
		}
		if c == ix.n-1 {
			cellMax = math.Inf(1)
		}
		if p[d] < cellMin {
			sum += (cellMin - p[d]) * (cellMin - p[d])
		} else if p[d] > cellMax {
			sum += (p[d] - cellMax) * (p[d] - cellMax)
		}
	}
	return sum
}

// cellMaxDistSq returns the squared maximum distance from the cell's
// extent to a point (infinite for border cells, which therefore never
// count as fully covered).
func (ix *Index) cellMaxDistSq(coords []int, p []float64) float64 {
	sum := 0.0
	for d, c := range coords {
		if c == 0 || c == ix.n-1 {
			return math.Inf(1)
		}
		cellMin := ix.space.Min[d] + float64(c)*ix.cellW[d]
		cellMax := cellMin + ix.cellW[d]
		lo := math.Abs(p[d] - cellMin)
		hi := math.Abs(p[d] - cellMax)
		m := math.Max(lo, hi)
		sum += m * m
	}
	return sum
}

// boxDistSq is the squared minimum distance from a box to a point.
func (ix *Index) boxDistSq(b MBB, p []float64) float64 {
	sum := 0.0
	for d := 0; d < ix.dims; d++ {
		if p[d] < b.Min[d] {
			sum += (b.Min[d] - p[d]) * (b.Min[d] - p[d])
		} else if p[d] > b.Max[d] {
			sum += (p[d] - b.Max[d]) * (p[d] - b.Max[d])
		}
	}
	return sum
}

// ownsBallEntry reports whether the current cell is the lexicographically
// first cover cell of the entry's replication block (odometer order).
func (ix *Index) ownsBallEntry(b MBB, coords []int, cover map[uint64]bool) bool {
	lo, hi := ix.cover(b)
	owner := true
	done := false
	odometer(lo, hi, func(c []int) {
		if done {
			return
		}
		for d := range c {
			if c[d] != coords[d] {
				// c precedes coords in odometer order iff the first
				// differing coordinate is smaller.
				if c[d] < coords[d] {
					if cover[ix.tileKey(c)] {
						owner = false
						done = true
					}
				} else {
					done = true // past the current cell in odometer order
				}
				return
			}
		}
		done = true // reached the current cell: no earlier cover cell found
	})
	return owner
}
