// Package ndgrid generalizes the two-layer partitioning to minimum
// bounding boxes of arbitrary dimensionality m, as sketched in Section
// IV-D of the paper: each tile's contents are divided into 2^m classes —
// one per subset of dimensions in which the box begins before the tile —
// and a window query skips, per tile, every class that begins before the
// tile in a dimension where the query also does (the generalized Lemmas
// 1-2). Lemmas 3-4 carry over: per surviving class and dimension, at
// most one comparison per box is executed.
//
// The 2D specialization of this package is the core package; ndgrid
// favors clarity over the last bit of performance (classes are indexed by
// bitmask, tiles are visited with an odometer) and supports bulk build,
// inserts and window queries, which is what the paper's extension
// describes.
package ndgrid

import (
	"fmt"
)

// MBB is an m-dimensional minimum bounding box. len(Min) == len(Max) == m
// and Min[d] <= Max[d] for every dimension d.
type MBB struct {
	Min, Max []float64
}

// Dims returns the dimensionality.
func (b MBB) Dims() int { return len(b.Min) }

// Valid reports whether the box is well-formed.
func (b MBB) Valid() bool {
	if len(b.Min) != len(b.Max) || len(b.Min) == 0 {
		return false
	}
	for d := range b.Min {
		if !(b.Min[d] <= b.Max[d]) { // catches NaN
			return false
		}
	}
	return true
}

// Intersects reports whether two boxes share at least one point.
func (b MBB) Intersects(o MBB) bool {
	for d := range b.Min {
		if b.Min[d] > o.Max[d] || o.Min[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Entry is an (MBB, id) pair.
type Entry struct {
	Box MBB
	ID  uint32
}

// Options configure the index.
type Options struct {
	// Space is the indexed m-dimensional region (required).
	Space MBB
	// Tiles is the tile count per dimension (all dimensions equal).
	// Default 16.
	Tiles int
}

// Index is the m-dimensional two-layer grid.
type Index struct {
	dims  int
	space MBB
	n     int       // tiles per dimension
	cellW []float64 // tile extent per dimension

	// Sparse tile directory: m-dimensional grids are mostly empty.
	tiles map[uint64]*tile
	size  int
}

// tile holds 2^m secondary partitions; classes[mask] stores the boxes
// whose "begins before the tile" dimension set equals mask (mask 0 is the
// generalization of class A).
type tile struct {
	classes [][]Entry
}

// New creates an empty index.
func New(opts Options) (*Index, error) {
	if !opts.Space.Valid() {
		return nil, fmt.Errorf("ndgrid: invalid space %v", opts.Space)
	}
	m := opts.Space.Dims()
	if m > 20 {
		return nil, fmt.Errorf("ndgrid: dimensionality %d too large (2^m classes)", m)
	}
	if opts.Tiles == 0 {
		opts.Tiles = 16
	}
	if opts.Tiles < 1 {
		return nil, fmt.Errorf("ndgrid: non-positive tile count %d", opts.Tiles)
	}
	ix := &Index{
		dims:  m,
		space: opts.Space,
		n:     opts.Tiles,
		cellW: make([]float64, m),
		tiles: make(map[uint64]*tile),
	}
	for d := 0; d < m; d++ {
		w := (opts.Space.Max[d] - opts.Space.Min[d]) / float64(opts.Tiles)
		if w <= 0 {
			return nil, fmt.Errorf("ndgrid: degenerate space in dimension %d", d)
		}
		ix.cellW[d] = w
	}
	return ix, nil
}

// Build constructs an index over entries.
func Build(entries []Entry, opts Options) (*Index, error) {
	ix, err := New(opts)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := ix.Insert(e); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Len returns the number of distinct objects.
func (ix *Index) Len() int { return ix.size }

// Dims returns the dimensionality.
func (ix *Index) Dims() int { return ix.dims }

// cellOf returns the clamped tile coordinate of v in dimension d.
func (ix *Index) cellOf(d int, v float64) int {
	c := int((v - ix.space.Min[d]) / ix.cellW[d])
	if c < 0 {
		return 0
	}
	if c >= ix.n {
		return ix.n - 1
	}
	return c
}

// tileKey linearizes m tile coordinates into a map key.
func (ix *Index) tileKey(coords []int) uint64 {
	key := uint64(0)
	for _, c := range coords {
		key = key*uint64(ix.n) + uint64(c)
	}
	return key
}

// cover returns the per-dimension tile ranges of a box.
func (ix *Index) cover(b MBB) (lo, hi []int) {
	lo = make([]int, ix.dims)
	hi = make([]int, ix.dims)
	for d := 0; d < ix.dims; d++ {
		lo[d] = ix.cellOf(d, b.Min[d])
		hi[d] = ix.cellOf(d, b.Max[d])
	}
	return lo, hi
}

// odometer iterates the tile coordinates of the box [lo, hi], invoking fn
// with the current coordinates (which fn must not retain).
func odometer(lo, hi []int, fn func(coords []int)) {
	coords := make([]int, len(lo))
	copy(coords, lo)
	for {
		fn(coords)
		d := len(coords) - 1
		for d >= 0 {
			coords[d]++
			if coords[d] <= hi[d] {
				break
			}
			coords[d] = lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Insert replicates the entry into every tile it intersects, classified
// by the set of dimensions in which it begins before the tile.
func (ix *Index) Insert(e Entry) error {
	if !e.Box.Valid() || e.Box.Dims() != ix.dims {
		return fmt.Errorf("ndgrid: entry %d has invalid %d-dim box", e.ID, e.Box.Dims())
	}
	lo, hi := ix.cover(e.Box)
	odometer(lo, hi, func(coords []int) {
		mask := uint32(0)
		for d, c := range coords {
			if c > lo[d] {
				mask |= 1 << d // begins before this tile in dimension d
			}
		}
		key := ix.tileKey(coords)
		t := ix.tiles[key]
		if t == nil {
			t = &tile{classes: make([][]Entry, 1<<ix.dims)}
			ix.tiles[key] = t
		}
		t.classes[mask] = append(t.classes[mask], e)
	})
	ix.size++
	return nil
}

// Window invokes fn exactly once for every entry whose box intersects w.
// The generalized class selection guarantees no duplicates without any
// elimination step.
func (ix *Index) Window(w MBB, fn func(e Entry)) error {
	if !w.Valid() || w.Dims() != ix.dims {
		return fmt.Errorf("ndgrid: invalid %d-dim window for %d-dim index", w.Dims(), ix.dims)
	}
	lo, hi := ix.cover(w)
	needLow := make([]bool, ix.dims)  // test box.Min[d] <= w.Max[d]
	needHigh := make([]bool, ix.dims) // test box.Max[d] >= w.Min[d]
	odometer(lo, hi, func(coords []int) {
		t := ix.tiles[ix.tileKey(coords)]
		if t == nil {
			return
		}
		// skipMask bit d: the window begins before this tile in d, so
		// classes beginning before the tile in d are duplicates.
		skipMask := uint32(0)
		for d, c := range coords {
			if c > lo[d] {
				skipMask |= 1 << d
			}
			tileMin := ix.space.Min[d] + float64(c)*ix.cellW[d]
			tileMax := tileMin + ix.cellW[d]
			// Border tiles extend to infinity, absorbing out-of-space
			// boxes and windows, so their comparisons always run.
			needHigh[d] = w.Min[d] > tileMin || c == 0
			needLow[d] = w.Max[d] < tileMax || c == ix.n-1
		}
		for mask := uint32(0); mask < uint32(len(t.classes)); mask++ {
			if mask&skipMask != 0 || len(t.classes[mask]) == 0 {
				continue
			}
			ix.scanClass(t.classes[mask], mask, w, needLow, needHigh, fn)
		}
	})
	return nil
}

// scanClass tests one secondary partition against the window. For a class
// beginning before the tile in dimension d, the low-side test in d is
// implied (the box starts before a tile the window reaches).
func (ix *Index) scanClass(entries []Entry, mask uint32, w MBB, needLow, needHigh []bool, fn func(Entry)) {
entry:
	for i := range entries {
		e := &entries[i]
		for d := 0; d < ix.dims; d++ {
			if needHigh[d] && e.Box.Max[d] < w.Min[d] {
				continue entry
			}
			if needLow[d] && mask&(1<<d) == 0 && e.Box.Min[d] > w.Max[d] {
				continue entry
			}
		}
		fn(*e)
	}
}

// WindowCount returns the number of boxes intersecting w.
func (ix *Index) WindowCount(w MBB) (int, error) {
	n := 0
	err := ix.Window(w, func(Entry) { n++ })
	return n, err
}

// ClassCounts returns the number of stored entries per class mask.
func (ix *Index) ClassCounts() []int {
	out := make([]int, 1<<ix.dims)
	for _, t := range ix.tiles {
		for mask, entries := range t.classes {
			out[mask] += len(entries)
		}
	}
	return out
}
