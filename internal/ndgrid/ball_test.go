package ndgrid

import (
	"math"
	"math/rand"
	"testing"
)

func bruteBall(entries []Entry, center []float64, radius float64) map[uint32]bool {
	r2 := radius * radius
	out := map[uint32]bool{}
	for _, e := range entries {
		sum := 0.0
		for d := range center {
			if center[d] < e.Box.Min[d] {
				sum += (e.Box.Min[d] - center[d]) * (e.Box.Min[d] - center[d])
			} else if center[d] > e.Box.Max[d] {
				sum += (center[d] - e.Box.Max[d]) * (center[d] - e.Box.Max[d])
			}
		}
		if sum <= r2 {
			out[e.ID] = true
		}
	}
	return out
}

// TestBallMatchesBruteForce in 2-4 dimensions, across object sizes that
// force replication over the ball's curved boundary.
func TestBallMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(221))
	for _, m := range []int{2, 3, 4} {
		for _, maxSide := range []float64{0.02, 0.3} {
			entries := randEntries(rnd, m, 400, maxSide)
			ix, err := Build(entries, Options{Space: unitSpace(m), Tiles: 6})
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 40; q++ {
				center := make([]float64, m)
				for d := range center {
					center[d] = rnd.Float64()*1.2 - 0.1
				}
				radius := rnd.Float64() * 0.4
				want := bruteBall(entries, center, radius)
				got := map[uint32]bool{}
				dups := false
				if err := ix.Ball(center, radius, func(e Entry) {
					if got[e.ID] {
						dups = true
					}
					got[e.ID] = true
				}); err != nil {
					t.Fatal(err)
				}
				if dups {
					t.Fatalf("m=%d side=%g: duplicate ball results", m, maxSide)
				}
				if len(got) != len(want) {
					t.Fatalf("m=%d side=%g: got %d, want %d", m, maxSide, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("m=%d: missing %d", m, id)
					}
				}
			}
		}
	}
}

// TestBallValidation rejects malformed inputs.
func TestBallValidation(t *testing.T) {
	ix, err := New(Options{Space: unitSpace(3), Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.BallCount([]float64{0.5, 0.5}, 0.1); err == nil {
		t.Error("wrong-dim center must fail")
	}
	if _, err := ix.BallCount([]float64{0.5, 0.5, 0.5}, -1); err == nil {
		t.Error("negative radius must fail")
	}
	if _, err := ix.BallCount([]float64{math.NaN(), 0.5, 0.5}, 0.1); err == nil {
		t.Error("NaN center must fail")
	}
	if n, err := ix.BallCount([]float64{0.5, 0.5, 0.5}, 0.2); err != nil || n != 0 {
		t.Errorf("empty index ball: n=%d err=%v", n, err)
	}
}

// TestBallCoversWindowResults: a ball circumscribing a window finds at
// least the window's results.
func TestBallSupersetOfInscribedWindow(t *testing.T) {
	rnd := rand.New(rand.NewSource(222))
	entries := randEntries(rnd, 3, 500, 0.1)
	ix, err := Build(entries, Options{Space: unitSpace(3), Tiles: 8})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 30; q++ {
		c := []float64{rnd.Float64(), rnd.Float64(), rnd.Float64()}
		half := rnd.Float64() * 0.2
		w := MBB{Min: make([]float64, 3), Max: make([]float64, 3)}
		for d := 0; d < 3; d++ {
			w.Min[d], w.Max[d] = c[d]-half, c[d]+half
		}
		wc, err := ix.WindowCount(w)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := ix.BallCount(c, half*math.Sqrt(3))
		if err != nil {
			t.Fatal(err)
		}
		if bc < wc {
			t.Fatalf("circumscribed ball found %d < window's %d", bc, wc)
		}
	}
}
