package ndgrid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// unitSpace returns the m-dimensional unit cube.
func unitSpace(m int) MBB {
	b := MBB{Min: make([]float64, m), Max: make([]float64, m)}
	for d := 0; d < m; d++ {
		b.Max[d] = 1
	}
	return b
}

// randBox draws a random box with sides up to maxSide, possibly sticking
// out of the unit cube.
func randBox(rnd *rand.Rand, m int, maxSide float64) MBB {
	b := MBB{Min: make([]float64, m), Max: make([]float64, m)}
	for d := 0; d < m; d++ {
		b.Min[d] = rnd.Float64()
		b.Max[d] = b.Min[d] + rnd.Float64()*maxSide
	}
	return b
}

func randEntries(rnd *rand.Rand, m, n int, maxSide float64) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{Box: randBox(rnd, m, maxSide), ID: uint32(i)}
	}
	return out
}

func bruteWindow(entries []Entry, w MBB) map[uint32]bool {
	out := map[uint32]bool{}
	for _, e := range entries {
		if e.Box.Intersects(w) {
			out[e.ID] = true
		}
	}
	return out
}

// TestWindowMatchesBruteForce in 2, 3 and 4 dimensions.
func TestWindowMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(151))
	for _, m := range []int{2, 3, 4} {
		for _, tiles := range []int{1, 4, 8} {
			entries := randEntries(rnd, m, 400, 0.2)
			ix, err := Build(entries, Options{Space: unitSpace(m), Tiles: tiles})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Len() != 400 || ix.Dims() != m {
				t.Fatalf("Len/Dims wrong")
			}
			for q := 0; q < 40; q++ {
				w := randBox(rnd, m, 0.4)
				want := bruteWindow(entries, w)
				got := map[uint32]bool{}
				dups := false
				err := ix.Window(w, func(e Entry) {
					if got[e.ID] {
						dups = true
					}
					got[e.ID] = true
				})
				if err != nil {
					t.Fatal(err)
				}
				if dups {
					t.Fatalf("m=%d tiles=%d: duplicate results", m, tiles)
				}
				if len(got) != len(want) {
					t.Fatalf("m=%d tiles=%d: got %d, want %d", m, tiles, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("m=%d: missing %d", m, id)
					}
				}
			}
		}
	}
}

// TestClassZeroExactlyOnce: the generalization of "class A appears once".
func TestClassZeroExactlyOnce(t *testing.T) {
	rnd := rand.New(rand.NewSource(152))
	entries := randEntries(rnd, 3, 300, 0.3)
	ix, err := Build(entries, Options{Space: unitSpace(3), Tiles: 6})
	if err != nil {
		t.Fatal(err)
	}
	counts := ix.ClassCounts()
	if len(counts) != 8 {
		t.Fatalf("3-dim index must have 8 classes, got %d", len(counts))
	}
	if counts[0] != 300 {
		t.Errorf("class 0 holds %d entries, want one per object (300)", counts[0])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total < 300 {
		t.Errorf("total stored %d < 300", total)
	}
}

// TestValidation of constructor and inputs.
func TestValidation(t *testing.T) {
	if _, err := New(Options{Space: MBB{}}); err == nil {
		t.Error("empty space must fail")
	}
	if _, err := New(Options{Space: MBB{Min: []float64{0, 0}, Max: []float64{1}}}); err == nil {
		t.Error("mismatched dims must fail")
	}
	if _, err := New(Options{Space: MBB{Min: []float64{0, 0}, Max: []float64{0, 1}}}); err == nil {
		t.Error("degenerate space must fail")
	}
	if _, err := New(Options{Space: unitSpace(2), Tiles: -3}); err == nil {
		t.Error("negative tiles must fail")
	}
	if _, err := New(Options{Space: unitSpace(21)}); err == nil {
		t.Error("m=21 must fail (2^m classes)")
	}

	ix, err := New(Options{Space: unitSpace(2), Tiles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(Entry{Box: MBB{Min: []float64{0}, Max: []float64{1}}}); err == nil {
		t.Error("wrong-dim insert must fail")
	}
	if err := ix.Insert(Entry{Box: MBB{Min: []float64{0.5, 0.5}, Max: []float64{0.4, 0.6}}}); err == nil {
		t.Error("inverted box must fail")
	}
	if _, err := ix.WindowCount(MBB{Min: []float64{0}, Max: []float64{1}}); err == nil {
		t.Error("wrong-dim window must fail")
	}
}

// TestMBBPredicates.
func TestMBBPredicates(t *testing.T) {
	a := MBB{Min: []float64{0, 0, 0}, Max: []float64{1, 1, 1}}
	b := MBB{Min: []float64{1, 0.5, 0.5}, Max: []float64{2, 2, 2}}
	if !a.Intersects(b) {
		t.Error("touching boxes must intersect")
	}
	c := MBB{Min: []float64{1.1, 0, 0}, Max: []float64{2, 1, 1}}
	if a.Intersects(c) {
		t.Error("disjoint boxes must not intersect")
	}
	if !a.Valid() || (MBB{}).Valid() {
		t.Error("Valid wrong")
	}
}

// TestOdometer covers the iteration helper.
func TestOdometer(t *testing.T) {
	var visited [][]int
	odometer([]int{0, 1}, []int{1, 2}, func(c []int) {
		cp := make([]int, len(c))
		copy(cp, c)
		visited = append(visited, cp)
	})
	if len(visited) != 4 {
		t.Fatalf("visited %d coords, want 4", len(visited))
	}
}

// TestQuickNDEquivalence: property-based equivalence in random dims.
func TestQuickNDEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		m := 2 + rnd.Intn(3)
		entries := randEntries(rnd, m, 50+rnd.Intn(150), 0.3)
		ix, err := Build(entries, Options{Space: unitSpace(m), Tiles: 1 + rnd.Intn(8)})
		if err != nil {
			return false
		}
		for q := 0; q < 5; q++ {
			w := randBox(rnd, m, 0.5)
			want := bruteWindow(entries, w)
			n, err := ix.WindowCount(w)
			if err != nil || n != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
