package shard

import (
	"errors"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestShardedBacklogPreflight pins the sharded backpressure semantics:
// with one shard's apply loop stalled at its MaxBacklog bound, any batch
// involving that shard — including one spanning healthy shards — must be
// rejected whole by the pre-flight with ErrBacklogFull, before anything
// is dispatched, so the steady overloaded state never half-applies a
// batch across shards.
func TestShardedBacklogPreflight(t *testing.T) {
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	opts := core.Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}}
	l := NewLive(opts, core.LiveOptions{
		MaxBacklog: 1,
		// Test-only stall hook: the first journaled batch parks its
		// shard's apply loop until release closes.
		Journal: func(epoch uint64, muts []core.Mutation) error {
			once.Do(func() { close(gate) })
			<-release
			return nil
		},
	}, 2)
	defer l.Close()

	left := func(id spatial.ID) core.Mutation { // shard 0 only
		return core.Mutation{Entry: spatial.Entry{ID: id,
			Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}}}
	}
	spanning := func(id spatial.ID) core.Mutation { // both shards
		return core.Mutation{Entry: spatial.Entry{ID: id,
			Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.2}}}
	}

	done := make(chan error, 1)
	go func() {
		_, err := l.Apply([]core.Mutation{left(1)})
		done <- err
	}()
	<-gate // shard 0 is stalled with one pending mutation

	if _, err := l.Apply([]core.Mutation{left(2)}); !errors.Is(err, core.ErrBacklogFull) {
		t.Fatalf("shard-0 Apply error = %v, want ErrBacklogFull", err)
	}
	// A batch spanning shard 0 and the healthy shard 1 must be rejected
	// whole: nothing reaches shard 1.
	shard1Applied := l.lives[1].Stats().Applied
	if _, err := l.Apply([]core.Mutation{spanning(3)}); !errors.Is(err, core.ErrBacklogFull) {
		t.Fatalf("spanning Apply error = %v, want ErrBacklogFull", err)
	}
	if got := l.lives[1].Stats().Applied; got != shard1Applied {
		t.Fatalf("healthy shard applied %d mutations from a rejected batch", got-shard1Applied)
	}

	st := l.Stats()
	if st.BacklogLimit != 1 {
		t.Fatalf("BacklogLimit = %d, want 1", st.BacklogLimit)
	}
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2 (both pre-flight rejections)", st.Rejected)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled Apply failed: %v", err)
	}
	// Drained: the spanning batch now applies, to both shards.
	if _, err := l.Apply([]core.Mutation{spanning(4)}); err != nil {
		t.Fatalf("Apply after drain failed: %v", err)
	}
	if got := l.Snapshot().Len(); got != 2 {
		t.Fatalf("engine Len = %d, want 2", got)
	}
}
