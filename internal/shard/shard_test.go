package shard

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func testDataset(seed int64, n int, maxSide float64) *spatial.Dataset {
	rnd := rand.New(rand.NewSource(seed))
	entries := make([]spatial.Entry, n)
	for i := range entries {
		x, y := rnd.Float64(), rnd.Float64()
		entries[i] = spatial.Entry{
			ID: spatial.ID(i),
			Rect: geom.Rect{
				MinX: x, MinY: y,
				MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide,
			},
		}
	}
	return &spatial.Dataset{Entries: entries}
}

func TestLayoutBoundaries(t *testing.T) {
	opts := core.Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}}
	lay := makeLayout(opts, 4)
	if lay.shardCount() != 4 {
		t.Fatalf("shardCount = %d, want 4", lay.shardCount())
	}
	// Columns split 4-4-4-4, so boundaries fall at 0.25, 0.5, 0.75.
	wantBounds := []float64{0.25, 0.5, 0.75}
	for i, b := range lay.bounds {
		if b != wantBounds[i] {
			t.Errorf("bounds[%d] = %g, want %g", i, b, wantBounds[i])
		}
	}
	// A coordinate exactly on a boundary belongs to the right shard
	// (half-open slabs, like tile ownership in the grid).
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.1, 0}, {0.25, 1}, {0.3, 1},
		{0.5, 2}, {0.75, 3}, {0.99, 3}, {1, 3}, {7, 3},
	}
	for _, c := range cases {
		if got := lay.shardOf(c.x); got != c.want {
			t.Errorf("shardOf(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	// rangeOf covers every slab the rect touches, inclusive.
	if lo, hi := lay.rangeOf(geom.Rect{MinX: 0.2, MinY: 0, MaxX: 0.6, MaxY: 1}); lo != 0 || hi != 2 {
		t.Errorf("rangeOf = [%d,%d], want [0,2]", lo, hi)
	}
	if lo, hi := lay.rangeOf(geom.Rect{MinX: 0.3, MinY: 0, MaxX: 0.3, MaxY: 1}); lo != 1 || hi != 1 {
		t.Errorf("point rangeOf = [%d,%d], want [1,1]", lo, hi)
	}

	// Shard slabs tile the space: contiguous columns, exact global
	// extents at the outer edges.
	prevMax := opts.Space.MinX
	cols := 0
	for s := 0; s < lay.shardCount(); s++ {
		so := lay.shardOpts(s)
		if so.Space.MinX != prevMax {
			t.Errorf("shard %d MinX = %g, want %g", s, so.Space.MinX, prevMax)
		}
		prevMax = so.Space.MaxX
		cols += so.NX
	}
	if prevMax != opts.Space.MaxX {
		t.Errorf("last shard MaxX = %g, want %g", prevMax, opts.Space.MaxX)
	}
	if cols != opts.NX {
		t.Errorf("shards own %d columns, grid has %d", cols, opts.NX)
	}
}

func TestLayoutClamping(t *testing.T) {
	opts := core.Options{NX: 4, NY: 4, Space: geom.Rect{MaxX: 1, MaxY: 1}}
	if got := makeLayout(opts, 99).shardCount(); got != 4 {
		t.Errorf("99 shards over 4 columns: shardCount = %d, want 4", got)
	}
	if got := makeLayout(opts, 0).shardCount(); got != 1 {
		t.Errorf("0 shards: shardCount = %d, want 1", got)
	}
	if got := makeLayout(opts, -3).shardCount(); got != 1 {
		t.Errorf("-3 shards: shardCount = %d, want 1", got)
	}
	// Uneven split: 7 columns over 3 shards must still cover all 7.
	lay := makeLayout(core.Options{NX: 7, NY: 4, Space: geom.Rect{MaxX: 1, MaxY: 1}}, 3)
	cols := 0
	for s := 0; s < lay.shardCount(); s++ {
		n := lay.shardOpts(s).NX
		if n < 1 {
			t.Errorf("shard %d owns %d columns", s, n)
		}
		cols += n
	}
	if cols != 7 {
		t.Errorf("shards own %d columns, want 7", cols)
	}
}

// TestFanoutDeduplication checks the home-shard ownership rule directly:
// a fan-out query over boundary-straddling objects reports each exactly
// once, and per-shard span result counts sum to the total.
func TestFanoutDeduplication(t *testing.T) {
	// Wide slabs guarantee heavy cross-shard replication.
	rnd := rand.New(rand.NewSource(11))
	entries := make([]spatial.Entry, 500)
	for i := range entries {
		x, y := rnd.Float64()*0.6, rnd.Float64()
		entries[i] = spatial.Entry{
			ID:   spatial.ID(i),
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 0.4, MaxY: y + 0.01},
		}
	}
	d := &spatial.Dataset{Entries: entries}
	e := Build(d, core.Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}}, 8)

	w := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	var spans []Span
	seen := make(map[spatial.ID]int)
	if _, err := e.Search(core.Query{Window: &w}, func(ent spatial.Entry) bool {
		seen[ent.ID]++
		return true
	}, &spans); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(entries) {
		t.Fatalf("full-space query returned %d distinct IDs, want %d", len(seen), len(entries))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("ID %d reported %d times", id, n)
		}
	}
	total := 0
	for _, sp := range spans {
		total += sp.Results
	}
	if total != len(entries) {
		t.Errorf("span results sum to %d, want %d", total, len(entries))
	}
	if len(spans) != e.Shards() {
		t.Errorf("full-space query produced %d spans over %d shards", len(spans), e.Shards())
	}
}

func TestCountDistinct(t *testing.T) {
	d := testDataset(12, 700, 0.3)
	e := Build(d, core.Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}}, 5)
	if got := e.countDistinct(); got != d.Len() {
		t.Fatalf("countDistinct = %d, want %d", got, d.Len())
	}
	// Out-of-space entries clamp into border slabs and still count once.
	out := &spatial.Dataset{Entries: []spatial.Entry{
		{ID: 0, Rect: geom.Rect{MinX: -5, MinY: -5, MaxX: -4, MaxY: -4}},
		{ID: 1, Rect: geom.Rect{MinX: 4, MinY: 4, MaxX: 5, MaxY: 5}},
		{ID: 2, Rect: geom.Rect{MinX: -1, MinY: 0.5, MaxX: 2, MaxY: 0.6}},
	}}
	e = Build(out, core.Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 1, MaxY: 1}}, 4)
	if got := e.countDistinct(); got != 3 {
		t.Fatalf("countDistinct with out-of-space entries = %d, want 3", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if HasState(dir) {
		t.Fatal("HasState on an empty dir")
	}
	m := manifest{Version: 1, Shards: 3, NX: 12, NY: 10, MinX: -2, MinY: -1, MaxX: 3, MaxY: 4}
	if err := writeManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if !HasState(dir) {
		t.Fatal("HasState = false after writeManifest")
	}
	got, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("manifest round trip: got %+v, want %+v", got, m)
	}

	// Invalid layouts are rejected on read.
	if err := writeManifest(dir, manifest{Version: 1, Shards: 0, NX: 4, NY: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Error("readManifest accepted a zero-shard manifest")
	}
}

// TestDurableManifestWins pins reopen behavior: requested layout and
// seed are superseded by the manifest on a non-empty directory.
func TestDurableManifestWins(t *testing.T) {
	dir := t.TempDir()
	d := testDataset(13, 300, 0.05)
	opts := core.Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}}
	seed := Build(d, opts, 3)

	dur, _, err := Open(opts, core.LiveOptions{}, DurableOptions{Dir: dir}, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	if dur.Live().Len() != d.Len() {
		t.Fatalf("seeded Len = %d, want %d", dur.Live().Len(), d.Len())
	}
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen asking for a different grid, shard count, and a fresh seed:
	// the manifest must override all three.
	otherSeed := Build(testDataset(14, 10, 0.05),
		core.Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 2, MaxY: 2}}, 2)
	dur2, infos, err := Open(core.Options{NX: 64, NY: 64, Space: geom.Rect{MaxX: 9, MaxY: 9}},
		core.LiveOptions{}, DurableOptions{Dir: dir}, 7, otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	defer dur2.Close()
	if got := dur2.Live().Shards(); got != 3 {
		t.Fatalf("reopen shards = %d, manifest pins 3", got)
	}
	if got := dur2.Live().Len(); got != d.Len() {
		t.Fatalf("reopen Len = %d, want %d (other seed must be ignored)", got, d.Len())
	}
	if len(infos) != 3 {
		t.Fatalf("reopen returned %d infos, want 3", len(infos))
	}
	snap := dur2.Live().Snapshot()
	if nx, ny := snap.GridDims(); nx != 16 || ny != 16 {
		t.Fatalf("reopen grid = %dx%d, manifest pins 16x16", nx, ny)
	}

	// The per-shard WAL directories follow the shard-%03d naming.
	if _, err := readManifest(dir); err != nil {
		t.Fatal(err)
	}
	if got := shardDir(dir, 0); got != filepath.Join(dir, "shard-000") {
		t.Errorf("shardDir = %s", got)
	}
}
