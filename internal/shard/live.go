package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/twolayer/twolayer/internal/core"
)

// Live is the updatable sharded engine: one core.Live apply loop per
// shard, so mutation batches touching disjoint slabs journal, apply, and
// publish in parallel. Readers call Snapshot for an immutable Engine
// over the shards' current snapshots.
//
// Consistency is per shard: each shard keeps core.Live's guarantees
// (atomic batch visibility, read-your-writes for acked submitters), but
// a Snapshot taken during concurrent mutations may interleave different
// epochs across shards, and a mutation replicated to several shards
// becomes visible shard by shard. Engine-level queries remain duplicate
// free throughout — the ownership rule never reports a replica twice —
// though a boundary-crossing object may transiently be missing from (or
// visible in) only some of its shards mid-apply.
type Live struct {
	lay   layout
	lives []*core.Live
	met   *metrics
	size  atomic.Int64
	// rejected counts batches refused by the backpressure pre-flight in
	// Apply (per-shard rejections are counted by the shards themselves).
	rejected atomic.Uint64
}

// NewLive returns an empty updatable sharded engine over the given
// space (opts.Space must be set). Each shard gets its own apply loop
// configured with lo; lo.Journal must be nil — per-shard journals are
// wired by the durability layer (Open).
func NewLive(opts core.Options, lo core.LiveOptions, shards int) *Live {
	lay := makeLayout(opts, shards)
	l := &Live{lay: lay, met: newMetrics(lay.shardCount())}
	l.lives = make([]*core.Live, lay.shardCount())
	for s := range l.lives {
		l.lives[s] = core.NewLive(core.New(lay.shardOpts(s)), lo)
	}
	return l
}

// LiveFrom wraps a built engine, which becomes the epoch-0 state of
// every shard. LiveFrom takes ownership of e: do not query it directly
// afterward. As with core.NewLive, dataset references are dropped —
// snapshots serve filtering queries only.
func LiveFrom(e *Engine, lo core.LiveOptions) *Live {
	l := &Live{lay: e.lay, met: e.met}
	l.size.Store(int64(e.size))
	l.lives = make([]*core.Live, len(e.shards))
	for s, six := range e.shards {
		l.lives[s] = core.NewLive(six, lo)
	}
	return l
}

// liveFromRecovered assembles a Live around already-running per-shard
// apply loops (WAL recovery opens them one by one). The distinct size is
// recomputed from the recovered contents.
func liveFromRecovered(lay layout, lives []*core.Live) *Live {
	l := &Live{lay: lay, lives: lives, met: newMetrics(lay.shardCount())}
	l.size.Store(int64(l.Snapshot().countDistinct()))
	return l
}

// Snapshot returns an immutable engine over the shards' current
// snapshots: S atomic loads, no locks. Scatter-gather counters are
// shared with every other snapshot of this Live.
func (l *Live) Snapshot() *Engine {
	snaps := make([]*core.Index, len(l.lives))
	for s, lv := range l.lives {
		snaps[s] = lv.Snapshot()
	}
	return &Engine{
		lay:    l.lay,
		shards: snaps,
		size:   int(l.size.Load()),
		met:    l.met,
	}
}

// Insert adds one object, blocking until every shard its MBR intersects
// has published the insertion.
func (l *Live) Insert(e core.Mutation) (uint64, error) {
	res, err := l.Apply([]core.Mutation{e})
	if err != nil {
		return 0, err
	}
	return res.Epoch, nil
}

// Apply routes each mutation to every shard its rectangle intersects and
// applies the per-shard batches concurrently, blocking until all
// involved shards have published. The returned epoch is the maximum
// publishing epoch (advisory — see the Live consistency note); Found
// reports, per mutation, whether any shard found the delete target.
//
// All mutations are validated up front — an invalid rectangle fails the
// whole batch with nothing applied. Atomic visibility holds per shard,
// not across shards: a reader may observe one shard's half of the batch
// before another's.
func (l *Live) Apply(muts []core.Mutation) (core.ApplyResult, error) {
	if len(muts) == 0 {
		return core.ApplyResult{Epoch: l.Snapshot().Epoch()}, nil
	}
	for i := range muts {
		if !muts[i].Entry.Rect.Valid() {
			return core.ApplyResult{}, fmt.Errorf(
				"shard: mutation %d has invalid rect %v (id %d)",
				i, muts[i].Entry.Rect, muts[i].Entry.ID)
		}
	}
	S := len(l.lives)
	perShard := make([][]core.Mutation, S)
	perIndex := make([][]int, S)
	for i := range muts {
		lo, hi := l.lay.rangeOf(muts[i].Entry.Rect)
		for s := lo; s <= hi; s++ {
			perShard[s] = append(perShard[s], muts[i])
			perIndex[s] = append(perIndex[s], i)
		}
	}

	// Backpressure pre-flight: if any involved shard's backlog is already
	// full, reject the whole batch before dispatching anything, so the
	// common overload case never half-applies a batch across shards. The
	// check is advisory (a shard can fill between check and dispatch —
	// then the per-shard rejection below still surfaces), but it makes
	// rejection atomic in the steady overloaded state.
	for s := 0; s < S; s++ {
		if len(perShard[s]) == 0 {
			continue
		}
		if st := l.lives[s].Stats(); st.BacklogLimit > 0 && st.Pending >= int64(st.BacklogLimit) {
			l.rejected.Add(1)
			return core.ApplyResult{}, fmt.Errorf(
				"shard %d: %w: %d pending, limit %d",
				s, core.ErrBacklogFull, st.Pending, st.BacklogLimit)
		}
	}

	results := make([]core.ApplyResult, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		if len(perShard[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s], errs[s] = l.lives[s].Apply(perShard[s])
		}(s)
	}
	wg.Wait()

	res := core.ApplyResult{Found: make([]bool, len(muts))}
	for s := 0; s < S; s++ {
		if errs[s] != nil {
			return core.ApplyResult{}, errs[s]
		}
		if results[s].Epoch > res.Epoch {
			res.Epoch = results[s].Epoch
		}
		for j, i := range perIndex[s] {
			if results[s].Found[j] {
				res.Found[i] = true
			}
		}
	}

	// Maintain the engine-wide distinct count: inserts always add one
	// object, deletes remove one when any shard found it.
	var delta int64
	for i := range muts {
		if muts[i].Delete {
			if res.Found[i] {
				delta--
			}
		} else {
			delta++
		}
	}
	l.size.Add(delta)
	return res, nil
}

// Delete removes the object with the given ID and exact MBR from every
// shard holding a replica, reporting whether it was found anywhere.
func (l *Live) Delete(m core.Mutation) (found bool, epoch uint64, err error) {
	m.Delete = true
	res, err := l.Apply([]core.Mutation{m})
	if err != nil {
		return false, 0, err
	}
	return res.Found[0], res.Epoch, nil
}

// Len returns the number of distinct objects currently indexed.
func (l *Live) Len() int { return int(l.size.Load()) }

// Shards returns the shard count.
func (l *Live) Shards() int { return len(l.lives) }

// ShardLive returns shard s's apply loop (used by the durability layer
// and tests).
func (l *Live) ShardLive(s int) *core.Live { return l.lives[s] }

// Stats aggregates the per-shard apply-loop counters: sums for
// throughput counters (Pending and Rejected included — backpressure is
// enforced per shard, so the totals describe engine-wide pressure), the
// maximum for Epoch and LastPublish, the per-shard value for
// BacklogLimit (every shard is configured identically), and the
// engine-wide distinct count for Objects.
func (l *Live) Stats() core.LiveStats {
	var out core.LiveStats
	for _, lv := range l.lives {
		st := lv.Stats()
		if st.Epoch > out.Epoch {
			out.Epoch = st.Epoch
		}
		out.Pending += st.Pending
		out.Applied += st.Applied
		out.Publishes += st.Publishes
		out.Rebuilds += st.Rebuilds
		out.LastBatch += st.LastBatch
		if st.LastPublish > out.LastPublish {
			out.LastPublish = st.LastPublish
		}
		if st.BacklogLimit > out.BacklogLimit {
			out.BacklogLimit = st.BacklogLimit
		}
		out.Rejected += st.Rejected
		out.PublishTotal += st.PublishTotal
	}
	out.Rejected += l.rejected.Load()
	out.Objects = l.Len()
	return out
}

// Close drains and stops every shard's apply loop. Idempotent.
func (l *Live) Close() {
	var wg sync.WaitGroup
	for _, lv := range l.lives {
		wg.Add(1)
		go func(lv *core.Live) {
			defer wg.Done()
			lv.Close()
		}(lv)
	}
	wg.Wait()
}
