// Package shard implements the sharded scatter-gather query engine: the
// grid's tile space is range-partitioned along x into S contiguous
// column slabs, each backed by a self-contained core.Index (optionally
// with its own live apply loop and WAL directory, see live.go and
// durable.go). Queries route by their MBR — a query landing in one slab
// runs directly against that shard (the single-shard fast path), a query
// spanning several slabs fans out in parallel and merges per-shard
// results.
//
// Objects crossing a slab boundary are replicated into every shard their
// MBR intersects, exactly like the two-layer scheme replicates objects
// across tiles inside a shard. Deduplication therefore reuses the
// paper's reference-tile idea one level up: the shard holding the MBR's
// bottom-left x-coordinate (shardOf(MinX)) is the object's home shard,
// and during a fan-out over shards [q0,q1] a shard s reports an object
// only when s is the first shard of the cover (s == q0 — the analogue of
// the query-relative reference tile) or s is the object's home shard.
// Equivalently the unique reporter is max(q0, home): every (query,
// object) pair surfaces exactly once, decided in O(1) per candidate
// with no cross-shard coordination.
package shard

import (
	"container/heap"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// layout is the immutable shard geometry: which global grid columns each
// shard owns and where the slab boundaries fall in x.
type layout struct {
	// opts are the resolved global options (grid dimensions and space of
	// the equivalent unsharded index); per-shard options are derived
	// slabs of it.
	opts core.Options
	// starts[i] is the first global grid column of shard i;
	// starts[len-1] == NX. Shard i owns columns [starts[i], starts[i+1]).
	starts []int
	// bounds[i] is the x-coordinate where shard i+1 begins. shardOf is an
	// upper-bound search over it, so a coordinate exactly on a boundary
	// belongs to the right shard — the same half-open convention the grid
	// uses for tile ownership.
	bounds []float64
}

// makeLayout splits the resolved global grid into at most `shards`
// column slabs. The count is clamped to [1, NX]: a slab must own at
// least one column.
func makeLayout(global core.Options, shards int) layout {
	global = global.Resolved()
	if shards < 1 {
		shards = 1
	}
	if shards > global.NX {
		shards = global.NX
	}
	lay := layout{opts: global}
	lay.starts = make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		lay.starts[i] = global.NX * i / shards
	}
	cellW := global.Space.Width() / float64(global.NX)
	lay.bounds = make([]float64, shards-1)
	for i := 1; i < shards; i++ {
		lay.bounds[i-1] = global.Space.MinX + float64(lay.starts[i])*cellW
	}
	return lay
}

func (l layout) shardCount() int { return len(l.starts) - 1 }

// shardOf returns the shard owning x-coordinate x. Coordinates left of
// the space map to shard 0 and right of it to the last shard — border
// slabs absorb out-of-space data just like border tiles do inside a
// shard.
func (l layout) shardOf(x float64) int {
	return sort.Search(len(l.bounds), func(i int) bool { return l.bounds[i] > x })
}

// rangeOf returns the closed range of shards whose slabs r intersects.
func (l layout) rangeOf(r geom.Rect) (lo, hi int) {
	return l.shardOf(r.MinX), l.shardOf(r.MaxX)
}

// shardOpts derives the core options of shard i: the global grid's
// columns [starts[i], starts[i+1]) at full height, so tile boundaries
// coincide exactly with the unsharded grid's.
func (l layout) shardOpts(i int) core.Options {
	o := l.opts
	o.NX = l.starts[i+1] - l.starts[i]
	cellW := l.opts.Space.Width() / float64(l.opts.NX)
	o.Space = geom.Rect{
		MinX: l.opts.Space.MinX + float64(l.starts[i])*cellW,
		MinY: l.opts.Space.MinY,
		MaxX: l.opts.Space.MinX + float64(l.starts[i+1])*cellW,
		MaxY: l.opts.Space.MaxY,
	}
	// Pin the outer edges to the exact global extents; accumulated float
	// error must not leave a sliver uncovered.
	if i == 0 {
		o.Space.MinX = l.opts.Space.MinX
	}
	if i == l.shardCount()-1 {
		o.Space.MaxX = l.opts.Space.MaxX
	}
	return o
}

// shardCounters is the per-shard slice of engine metrics. Counters are
// cumulative over the engine's lifetime and shared across live
// snapshots.
type shardCounters struct {
	queries atomic.Uint64
	busyNS  atomic.Int64
	results atomic.Uint64
}

type metrics struct {
	single   atomic.Uint64
	fanout   atomic.Uint64
	perShard []shardCounters
}

func newMetrics(shards int) *metrics {
	return &metrics{perShard: make([]shardCounters, shards)}
}

// Span records one shard's contribution to a scatter-gather query, for
// trace output: which shard ran, how long its scan took, and how many
// results it contributed after deduplication.
type Span struct {
	Shard     int
	ElapsedNS int64
	Results   int
}

// ShardStat is the per-shard slice of a Stats snapshot.
type ShardStat struct {
	// Objects is the number of entries stored in the shard (including
	// boundary replicas homed elsewhere).
	Objects int
	// Epoch is the shard's snapshot epoch.
	Epoch uint64
	// Queries, BusyNS, and Results are cumulative scan counters: queries
	// routed to the shard, wall time spent scanning it, and results it
	// contributed after deduplication.
	Queries uint64
	BusyNS  int64
	Results uint64
}

// Stats is a point-in-time snapshot of the engine's scatter-gather
// counters.
type Stats struct {
	// SingleShard counts queries answered on the single-shard fast path;
	// Fanout counts queries that scattered to two or more shards.
	SingleShard uint64
	Fanout      uint64
	PerShard    []ShardStat
}

// Engine is a set of S self-contained two-layer indices over contiguous
// column slabs, queried scatter-gather. Like core.Index it is safe for
// any number of concurrent readers; a live engine's snapshots come from
// Live.Snapshot.
type Engine struct {
	lay    layout
	shards []*core.Index
	// dataset is the full dataset backing exact-geometry refinement, nil
	// for engines without geometries (live snapshots, empty engines).
	dataset *spatial.Dataset
	// size is the number of distinct objects (boundary replicas counted
	// once).
	size int
	met  *metrics
}

// Build constructs a sharded engine over d, partitioned into at most
// `shards` column slabs (clamped to the grid's column count). Shards are
// built in parallel; each holds the subset of entries intersecting its
// slab and shares d for exact-geometry refinement. Like core.Build it
// panics on invalid entry rectangles.
func Build(d *spatial.Dataset, opts core.Options, shards int) *Engine {
	if opts.Space == (geom.Rect{}) {
		opts.Space = d.MBR()
	}
	lay := makeLayout(opts, shards)
	S := lay.shardCount()

	// Partition entries into per-shard subsets: an entry is replicated
	// into every shard its MBR intersects, sized exactly with a counting
	// pass first.
	parts := make([][]spatial.Entry, S)
	if S == 1 {
		parts[0] = d.Entries
	} else {
		counts := make([]int, S)
		for i := range d.Entries {
			lo, hi := lay.rangeOf(d.Entries[i].Rect)
			for s := lo; s <= hi; s++ {
				counts[s]++
			}
		}
		for s := range parts {
			parts[s] = make([]spatial.Entry, 0, counts[s])
		}
		for i := range d.Entries {
			lo, hi := lay.rangeOf(d.Entries[i].Rect)
			for s := lo; s <= hi; s++ {
				parts[s] = append(parts[s], d.Entries[i])
			}
		}
	}

	eng := &Engine{
		lay:     lay,
		shards:  make([]*core.Index, S),
		dataset: d,
		size:    d.Len(),
		met:     newMetrics(S),
	}
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// The shard is built over its subset (non-dense IDs are fine for
			// querying; only refinement indexes by ID), then re-pointed at
			// the full dataset so Geom lookups by global ID stay correct.
			sub := &spatial.Dataset{Entries: parts[s], Geoms: d.Geoms}
			six := core.Build(sub, lay.shardOpts(s))
			six.SetDataset(d)
			eng.shards[s] = six
		}(s)
	}
	wg.Wait()
	return eng
}

// errExactNeedsDataset mirrors the core error for engines that lost
// their geometries (live snapshots).
var errExactNeedsDataset = errors.New("shard: exact queries require an engine built over a Dataset")

// Search evaluates q scatter-gather and streams every matching entry to
// fn exactly once, on the caller's goroutine. A query whose MBR lands in
// one slab runs directly against that shard; otherwise all covered
// shards scan in parallel into private buffers (deduplicating with the
// home-shard rule) and results are emitted in shard order. It reports
// whether the query ran to completion (false once fn stops it or Limit
// results were delivered). spans, when non-nil, receives one Span per
// shard scanned.
func (e *Engine) Search(q core.Query, fn func(spatial.Entry) bool, spans *[]Span) (complete bool, err error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	if q.Exact && e.dataset == nil {
		return false, errExactNeedsDataset
	}
	lo, hi := e.lay.rangeOf(q.MBR())
	if lo == hi {
		// Single-shard fast path: the shard's own result stream is already
		// duplicate free, no buffering needed.
		e.met.single.Add(1)
		sc := &e.met.perShard[lo]
		sc.queries.Add(1)
		start := time.Now()
		n := 0
		complete, err = e.shards[lo].Search(q, func(ent spatial.Entry) bool {
			n++
			return fn(ent)
		})
		elapsed := time.Since(start).Nanoseconds()
		sc.busyNS.Add(elapsed)
		sc.results.Add(uint64(n))
		if spans != nil {
			*spans = append(*spans, Span{Shard: lo, ElapsedNS: elapsed, Results: n})
		}
		return complete, err
	}

	e.met.fanout.Add(1)
	// Scatter: each covered shard scans concurrently into a private
	// buffer, keeping only entries it owns for this query. The per-shard
	// limit still applies — no shard can contribute more than Limit
	// results, so each stops as early as possible.
	sub := q
	sub.Limit = 0
	bufs := make([][]spatial.Entry, hi-lo+1)
	spanBuf := make([]Span, hi-lo+1)
	var wg sync.WaitGroup
	for s := lo; s <= hi; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc := &e.met.perShard[s]
			sc.queries.Add(1)
			start := time.Now()
			var kept []spatial.Entry
			e.shards[s].Search(sub, func(ent spatial.Entry) bool {
				if s == lo || e.lay.shardOf(ent.Rect.MinX) == s {
					kept = append(kept, ent)
					if q.Limit > 0 && len(kept) >= q.Limit {
						return false
					}
				}
				return true
			})
			elapsed := time.Since(start).Nanoseconds()
			sc.busyNS.Add(elapsed)
			sc.results.Add(uint64(len(kept)))
			bufs[s-lo] = kept
			spanBuf[s-lo] = Span{Shard: s, ElapsedNS: elapsed, Results: len(kept)}
		}(s)
	}
	wg.Wait()
	if spans != nil {
		*spans = append(*spans, spanBuf...)
	}

	// Gather: emit in shard order on the caller's goroutine, honoring
	// the limit across shards.
	emitted := 0
	for _, buf := range bufs {
		for i := range buf {
			if q.Limit > 0 && emitted >= q.Limit {
				return false, nil
			}
			if !fn(buf[i]) {
				return false, nil
			}
			emitted++
		}
	}
	if q.Limit > 0 && emitted >= q.Limit {
		return false, nil
	}
	return true, nil
}

// SearchIDs evaluates q and returns all matching IDs, appending to buf.
func (e *Engine) SearchIDs(q core.Query, buf []spatial.ID) ([]spatial.ID, error) {
	_, err := e.Search(q, func(ent spatial.Entry) bool {
		buf = append(buf, ent.ID)
		return true
	}, nil)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// SearchCount evaluates q and returns the number of matching objects
// without buffering results: fanned-out shards count their owned matches
// independently and the counts sum. A Limit caps the total like it caps
// streamed results.
//
// Plain window queries push the count all the way down: the cover's
// first shard runs the O(tiles)-biased WindowCountFast kernel and every
// other shard runs WindowCountFiltered against its slab's left edge —
// the home-shard dedup rule expressed as a coordinate filter (an entry
// stored in shard s always begins left of the slab's right edge, so
// "homed to s" reduces to MinX >= bounds[s-1]). No entry is streamed
// through a callback anywhere on that path.
func (e *Engine) SearchCount(q core.Query, spans *[]Span) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if q.Exact && e.dataset == nil {
		return 0, errExactNeedsDataset
	}
	lo, hi := e.lay.rangeOf(q.MBR())
	if lo == hi {
		e.met.single.Add(1)
		sc := &e.met.perShard[lo]
		sc.queries.Add(1)
		start := time.Now()
		n, err := e.shards[lo].SearchCount(q)
		elapsed := time.Since(start).Nanoseconds()
		sc.busyNS.Add(elapsed)
		sc.results.Add(uint64(n))
		if spans != nil {
			*spans = append(*spans, Span{Shard: lo, ElapsedNS: elapsed, Results: n})
		}
		return n, err
	}

	e.met.fanout.Add(1)
	sub := q
	sub.Limit = 0
	perShard := make([]int, hi-lo+1)
	spanBuf := make([]Span, hi-lo+1)
	var wg sync.WaitGroup
	for s := lo; s <= hi; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc := &e.met.perShard[s]
			sc.queries.Add(1)
			start := time.Now()
			n := 0
			switch {
			case q.Window != nil && !q.Exact:
				if s == lo {
					n = e.shards[s].WindowCountFast(*q.Window)
				} else {
					n = e.shards[s].WindowCountFiltered(*q.Window, e.lay.bounds[s-1])
				}
			default:
				e.shards[s].Search(sub, func(ent spatial.Entry) bool {
					if s == lo || e.lay.shardOf(ent.Rect.MinX) == s {
						n++
						if q.Limit > 0 && n >= q.Limit {
							return false
						}
					}
					return true
				})
			}
			elapsed := time.Since(start).Nanoseconds()
			sc.busyNS.Add(elapsed)
			sc.results.Add(uint64(n))
			perShard[s-lo] = n
			spanBuf[s-lo] = Span{Shard: s, ElapsedNS: elapsed, Results: n}
		}(s)
	}
	wg.Wait()
	if spans != nil {
		*spans = append(*spans, spanBuf...)
	}
	total := 0
	for _, n := range perShard {
		total += n
	}
	if q.Limit > 0 && total > q.Limit {
		total = q.Limit
	}
	return total, nil
}

// knnItem is one head of a per-shard sorted neighbor list in the k-way
// merge.
type knnItem struct {
	n   core.Neighbor
	src int // which shard list
	pos int // index of n within that list
}

// knnHeap is a min-heap over list heads ordered by (Dist, ID) — the ID
// tiebreak makes the merged order deterministic across shard counts.
type knnHeap []knnItem

func (h knnHeap) Len() int { return len(h) }
func (h knnHeap) Less(i, j int) bool {
	if h[i].n.Dist != h[j].n.Dist {
		return h[i].n.Dist < h[j].n.Dist
	}
	return h[i].n.ID < h[j].n.ID
}
func (h knnHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)   { *h = append(*h, x.(knnItem)) }
func (h *knnHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// KNN returns the k nearest neighbors of q by MBR distance (exact
// geometric distance when exact is set, which requires geometries). All
// shards answer their local top-k in parallel — nearness gives no slab
// bound, the k-th neighbor may live anywhere — and the per-shard sorted
// lists merge through a k-way min-heap that drops boundary-replicated
// duplicates by ID. spans, when non-nil, receives one Span per shard.
func (e *Engine) KNN(q geom.Point, k int, exact bool, spans *[]Span) []core.Neighbor {
	if k <= 0 {
		return nil
	}
	S := len(e.shards)
	per := make([][]core.Neighbor, S)
	spanBuf := make([]Span, S)
	if S == 1 {
		e.met.single.Add(1)
	} else {
		e.met.fanout.Add(1)
	}
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc := &e.met.perShard[s]
			sc.queries.Add(1)
			start := time.Now()
			// A private view per call: kNN uses per-index scratch space, and
			// engine shards are shared by concurrent readers.
			v := e.shards[s].View(nil)
			if exact {
				per[s] = v.KNNExact(q, k)
			} else {
				per[s] = v.KNN(q, k)
			}
			elapsed := time.Since(start).Nanoseconds()
			sc.busyNS.Add(elapsed)
			sc.results.Add(uint64(len(per[s])))
			spanBuf[s] = Span{Shard: s, ElapsedNS: elapsed, Results: len(per[s])}
		}(s)
	}
	wg.Wait()
	if spans != nil {
		*spans = append(*spans, spanBuf...)
	}
	if S == 1 {
		return per[0]
	}

	h := make(knnHeap, 0, S)
	for s, list := range per {
		if len(list) > 0 {
			h = append(h, knnItem{n: list[0], src: s, pos: 0})
		}
	}
	heap.Init(&h)
	out := make([]core.Neighbor, 0, k)
	seen := make(map[spatial.ID]struct{}, k)
	for len(h) > 0 && len(out) < k {
		it := h[0]
		if it.pos+1 < len(per[it.src]) {
			h[0] = knnItem{n: per[it.src][it.pos+1], src: it.src, pos: it.pos + 1}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if _, dup := seen[it.n.ID]; dup {
			continue
		}
		seen[it.n.ID] = struct{}{}
		out = append(out, it.n)
	}
	return out
}

// BatchWindowCounts evaluates a batch of window queries and returns
// per-query result counts. Each shard runs its local batch kernel (with
// the requested strategy and thread count) over the subset of queries
// covering it; per-result ownership dedup keeps the totals identical to
// an unsharded batch.
func (e *Engine) BatchWindowCounts(queries []geom.Rect, strategy core.BatchStrategy, threads int) []int {
	counts := make([]int64, len(queries))
	qLo := make([]int, len(queries))
	qHi := make([]int, len(queries))
	for q := range queries {
		if !queries[q].Valid() {
			qLo[q], qHi[q] = 1, 0 // cover no shard; core would skip it too
			continue
		}
		qLo[q], qHi[q] = e.lay.rangeOf(queries[q])
	}
	for s := range e.shards {
		var local []geom.Rect
		var global []int32
		for q := range queries {
			if qLo[q] <= s && s <= qHi[q] {
				local = append(local, queries[q])
				global = append(global, int32(q))
			}
		}
		if len(local) == 0 {
			continue
		}
		s := s
		e.shards[s].BatchWindow(local, strategy, threads, func(lq int, ent spatial.Entry) {
			gq := int(global[lq])
			if s == qLo[gq] || e.lay.shardOf(ent.Rect.MinX) == s {
				atomic.AddInt64(&counts[gq], 1)
			}
		})
	}
	out := make([]int, len(queries))
	for i, c := range counts {
		out[i] = int(c)
	}
	return out
}

// BatchDiskCounts is BatchWindowCounts for disk queries.
func (e *Engine) BatchDiskCounts(queries []geom.Disk, strategy core.BatchStrategy, threads int) []int {
	counts := make([]int64, len(queries))
	qLo := make([]int, len(queries))
	qHi := make([]int, len(queries))
	for q := range queries {
		mbr := queries[q].MBR()
		if !mbr.Valid() {
			qLo[q], qHi[q] = 1, 0
			continue
		}
		qLo[q], qHi[q] = e.lay.rangeOf(mbr)
	}
	for s := range e.shards {
		var local []geom.Disk
		var global []int32
		for q := range queries {
			if qLo[q] <= s && s <= qHi[q] {
				local = append(local, queries[q])
				global = append(global, int32(q))
			}
		}
		if len(local) == 0 {
			continue
		}
		s := s
		e.shards[s].BatchDisk(local, strategy, threads, func(lq int, ent spatial.Entry) {
			gq := int(global[lq])
			if s == qLo[gq] || e.lay.shardOf(ent.Rect.MinX) == s {
				atomic.AddInt64(&counts[gq], 1)
			}
		})
	}
	out := make([]int, len(queries))
	for i, c := range counts {
		out[i] = int(c)
	}
	return out
}

// Len returns the number of distinct objects across all shards
// (boundary replicas counted once).
func (e *Engine) Len() int { return e.size }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns shard i's index (read-only; used for seeding per-shard
// WALs and in tests).
func (e *Engine) Shard(i int) *core.Index { return e.shards[i] }

// Epoch returns the maximum shard epoch — shards publish independently,
// so this is an advisory high-water mark, not a global snapshot version.
func (e *Engine) Epoch() uint64 {
	var max uint64
	for _, six := range e.shards {
		if ep := six.Epoch(); ep > max {
			max = ep
		}
	}
	return max
}

// GridDims returns the global grid's tile counts per dimension (the
// union of all shard slabs).
func (e *Engine) GridDims() (nx, ny int) { return e.lay.opts.NX, e.lay.opts.NY }

// Space returns the indexed region (the union of all shard slabs).
func (e *Engine) Space() geom.Rect { return e.lay.opts.Space }

// HasExactGeometries reports whether the engine can answer exact
// queries.
func (e *Engine) HasExactGeometries() bool { return e.dataset != nil }

// MemoryFootprint sums the entry storage of all shards, including
// cross-shard replicas.
func (e *Engine) MemoryFootprint() int {
	total := 0
	for _, six := range e.shards {
		total += six.MemoryFootprint()
	}
	return total
}

// PartitionStats merges the per-shard partitioning summaries. Replicas
// (and every ratio derived from them) count cross-shard boundary copies
// on top of in-shard tile replication, so ReplicationFactor here is the
// true storage amplification of the sharded engine.
func (e *Engine) PartitionStats() core.PartitionStats {
	var out core.PartitionStats
	for _, six := range e.shards {
		ps := six.PartitionStats()
		out.GridTiles += ps.GridTiles
		out.OccupiedTiles += ps.OccupiedTiles
		out.Replicas += ps.Replicas
		for c := 0; c < 4; c++ {
			out.ClassCounts[c] += ps.ClassCounts[c]
		}
		if ps.MaxTileEntries > out.MaxTileEntries {
			out.MaxTileEntries = ps.MaxTileEntries
		}
		out.DecomposedTiles += ps.DecomposedTiles
	}
	out.Objects = e.size
	if out.OccupiedTiles > 0 {
		out.MeanTileEntries = float64(out.Replicas) / float64(out.OccupiedTiles)
	}
	if out.MeanTileEntries > 0 {
		out.SkewRatio = float64(out.MaxTileEntries) / out.MeanTileEntries
	}
	if out.Objects > 0 {
		out.ReplicationFactor = float64(out.Replicas) / float64(out.Objects)
	}
	if out.Replicas > 0 {
		out.BoundaryRatio = float64(out.Replicas-out.ClassCounts[0]) / float64(out.Replicas)
	}
	return out
}

// ReplicationFactor reports stored entries (tile and shard replicas) per
// distinct object.
func (e *Engine) ReplicationFactor() float64 {
	return e.PartitionStats().ReplicationFactor
}

// EstimateWindow sums the per-shard selectivity estimates over the
// shards w covers — the same O(tiles) planning signal core.Index
// exposes, scatter-gathered. Within a shard the estimate skews low for
// heavily replicated data (objects larger than a tile contribute through
// their class-A tile only); across shards, boundary-crossing objects are
// class A in every shard holding a replica, which skews the sum high.
// It is a planning signal, not a count.
func (e *Engine) EstimateWindow(w geom.Rect) float64 {
	if !w.Valid() {
		return 0
	}
	lo, hi := e.lay.rangeOf(w)
	est := 0.0
	for s := lo; s <= hi; s++ {
		est += e.shards[s].EstimateWindow(w)
	}
	return est
}

// QueryPathStats sums the per-shard adaptive-kernel counters (fast-path
// counts, bulk-counted entries, parallel chunking decisions).
func (e *Engine) QueryPathStats() core.PathStats {
	var out core.PathStats
	for _, six := range e.shards {
		out.Add(six.QueryPathStats())
	}
	return out
}

// Stats snapshots the engine's scatter-gather counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		SingleShard: e.met.single.Load(),
		Fanout:      e.met.fanout.Load(),
		PerShard:    make([]ShardStat, len(e.shards)),
	}
	for s := range e.shards {
		sc := &e.met.perShard[s]
		st.PerShard[s] = ShardStat{
			Objects: e.shards[s].Len(),
			Epoch:   e.shards[s].Epoch(),
			Queries: sc.queries.Load(),
			BusyNS:  sc.busyNS.Load(),
			Results: sc.results.Load(),
		}
	}
	return st
}

// countDistinct recomputes the distinct object count by enumerating
// every shard's entries and counting each one only in its home shard.
// Used after WAL recovery, where per-shard logs replay independently and
// the cross-shard total is not recorded anywhere.
func (e *Engine) countDistinct() int {
	var total atomic.Int64
	var wg sync.WaitGroup
	for s := range e.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			n := 0
			e.shards[s].ForEach(func(ent spatial.Entry) {
				if e.lay.shardOf(ent.Rect.MinX) == s {
					n++
				}
			})
			total.Add(int64(n))
		}(s)
	}
	wg.Wait()
	return int(total.Load())
}
