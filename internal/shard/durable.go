package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/wal"
)

// Sharded durability layout:
//
//	dir/
//	  shards.json   — the layout manifest, written atomically on cold start
//	  shard-000/    — one complete WAL directory per shard
//	  shard-001/       (segments + checkpoints, same format as unsharded)
//	  ...
//
// The manifest pins the shard geometry (count, grid dimensions, space).
// It is written before any shard WAL is created, so a directory with
// shard state always has one; on reopen it is authoritative — the
// recovered layout wins over whatever options the caller passed (with a
// logged notice), since per-shard logs are only meaningful under the
// layout that produced them. Shards recover concurrently.

// manifestName is the layout manifest file inside the durability dir.
const manifestName = "shards.json"

type manifest struct {
	Version int     `json:"version"`
	Shards  int     `json:"shards"`
	NX      int     `json:"nx"`
	NY      int     `json:"ny"`
	MinX    float64 `json:"min_x"`
	MinY    float64 `json:"min_y"`
	MaxX    float64 `json:"max_x"`
	MaxY    float64 `json:"max_y"`
}

// HasState reports whether dir holds sharded durability state (a layout
// manifest; the manifest is written before any shard WAL, so it is the
// reliable signal).
func HasState(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

func shardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}

func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("shard: parsing %s: %w", manifestName, err)
	}
	if m.Shards < 1 || m.NX < 1 || m.NY < 1 {
		return manifest{}, fmt.Errorf("shard: manifest %s has invalid layout (%d shards, %dx%d grid)",
			manifestName, m.Shards, m.NX, m.NY)
	}
	return m, nil
}

// writeManifest persists the layout with the tmp+rename idiom so a crash
// mid-write never leaves a truncated manifest behind.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// DurableOptions configure Open. Per-shard WALs share the sync policy,
// rotation threshold, and checkpoint cadence.
type DurableOptions struct {
	// Dir is the sharded durability directory. Created if missing.
	Dir string
	// Policy, SyncEvery, SegmentBytes, and CheckpointEvery apply to every
	// shard's WAL; see wal.Options for semantics and defaults.
	Policy          wal.SyncPolicy
	SyncEvery       time.Duration
	SegmentBytes    int64
	CheckpointEvery int
	// Logger receives recovery and background-error notices.
	Logger *slog.Logger
}

// Durable couples a sharded Live with one write-ahead log per shard.
type Durable struct {
	live *Live
	ds   []*wal.DurableLive
}

// Open recovers (or cold-starts) a sharded durable engine in do.Dir.
//
// Cold start: the layout derives from opts/shards (or from seed's layout
// when non-nil), the manifest is written first, then every shard WAL is
// created — seeded with the corresponding shard of seed, which Open
// takes ownership of. Reopen: the manifest's layout wins over opts and
// shards (logged when they disagree), seed is ignored with a notice, and
// all shard WALs recover concurrently. The returned RecoveryInfo slice
// has one entry per shard.
func Open(opts core.Options, lo core.LiveOptions, do DurableOptions, shards int, seed *Engine) (*Durable, []wal.RecoveryInfo, error) {
	logger := do.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(do.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("shard: creating durability dir: %w", err)
	}

	var lay layout
	if HasState(do.Dir) {
		m, err := readManifest(do.Dir)
		if err != nil {
			return nil, nil, err
		}
		recovered := core.Options{
			NX: m.NX, NY: m.NY,
			Space:        geom.Rect{MinX: m.MinX, MinY: m.MinY, MaxX: m.MaxX, MaxY: m.MaxY},
			Decompose:    opts.Decompose,
			BuildThreads: opts.BuildThreads,
		}
		lay = makeLayout(recovered, m.Shards)
		if seed != nil {
			logger.Warn("sharded durability dir has prior state; ignoring seed", "dir", do.Dir)
			seed = nil
		}
		if shards > 0 || opts != (core.Options{}) {
			req := makeLayout(opts, shards)
			if req.shardCount() != lay.shardCount() || req.opts.NX != lay.opts.NX ||
				req.opts.NY != lay.opts.NY || req.opts.Space != lay.opts.Space {
				logger.Warn("recovered shard layout differs from requested options; recovered layout wins",
					"dir", do.Dir,
					"recovered_shards", lay.shardCount(), "requested_shards", req.shardCount(),
					"recovered_grid", fmt.Sprintf("%dx%d", lay.opts.NX, lay.opts.NY),
					"requested_grid", fmt.Sprintf("%dx%d", req.opts.NX, req.opts.NY))
			}
		}
	} else {
		if seed != nil {
			lay = seed.lay
		} else {
			lay = makeLayout(opts, shards)
		}
		sp := lay.opts.Space
		if err := writeManifest(do.Dir, manifest{
			Version: 1,
			Shards:  lay.shardCount(),
			NX:      lay.opts.NX, NY: lay.opts.NY,
			MinX: sp.MinX, MinY: sp.MinY, MaxX: sp.MaxX, MaxY: sp.MaxY,
		}); err != nil {
			return nil, nil, fmt.Errorf("shard: writing %s: %w", manifestName, err)
		}
	}

	S := lay.shardCount()
	ds := make([]*wal.DurableLive, S)
	infos := make([]wal.RecoveryInfo, S)
	errs := make([]error, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wo := wal.Options{
				Dir:             shardDir(do.Dir, s),
				Policy:          do.Policy,
				SyncEvery:       do.SyncEvery,
				SegmentBytes:    do.SegmentBytes,
				CheckpointEvery: do.CheckpointEvery,
				Index:           lay.shardOpts(s),
				Live:            lo,
				Logger:          logger.With("shard", s),
			}
			if seed != nil {
				wo.Seed = seed.shards[s]
			}
			ds[s], infos[s], errs[s] = wal.Open(wo)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			// Unwind the shards that did open; the engine starts all-or-nothing.
			for _, d := range ds {
				if d != nil {
					d.Close()
				}
			}
			return nil, nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}

	lives := make([]*core.Live, S)
	for s, d := range ds {
		lives[s] = d.Live()
	}
	live := liveFromRecovered(lay, lives)
	return &Durable{live: live, ds: ds}, infos, nil
}

// Live returns the mutation interface of the sharded durable engine.
func (d *Durable) Live() *Live { return d.live }

// Snapshot returns an immutable engine over the current shard snapshots.
func (d *Durable) Snapshot() *Engine { return d.live.Snapshot() }

// Checkpoint forces a checkpoint of every shard concurrently, returning
// the maximum checkpointed epoch and the first error encountered (other
// shards still complete).
func (d *Durable) Checkpoint() (uint64, error) {
	epochs := make([]uint64, len(d.ds))
	errs := make([]error, len(d.ds))
	var wg sync.WaitGroup
	for s := range d.ds {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			epochs[s], errs[s] = d.ds[s].Checkpoint()
		}(s)
	}
	wg.Wait()
	var max uint64
	for _, ep := range epochs {
		if ep > max {
			max = ep
		}
	}
	for s, err := range errs {
		if err != nil {
			return max, fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return max, nil
}

// Stats aggregates the per-shard durability stats: sums for throughput
// and size counters, the minimum checkpoint epoch (the engine's replay
// bound is its least-checkpointed shard) with the corresponding maximum
// age, and the first failure string encountered.
func (d *Durable) Stats() wal.Stats {
	var out wal.Stats
	for s, dl := range d.ds {
		st := dl.Stats()
		if s == 0 {
			out.Policy = st.Policy
			out.CheckpointEpoch = st.CheckpointEpoch
		}
		out.Segments += st.Segments
		out.LogBytes += st.LogBytes
		out.AppendedRecords += st.AppendedRecords
		out.AppendedBytes += st.AppendedBytes
		out.Fsyncs += st.Fsyncs
		out.Rotations += st.Rotations
		out.PrunedSegments += st.PrunedSegments
		out.Checkpoints += st.Checkpoints
		if st.CheckpointEpoch < out.CheckpointEpoch {
			out.CheckpointEpoch = st.CheckpointEpoch
		}
		if st.CheckpointAge > out.CheckpointAge {
			out.CheckpointAge = st.CheckpointAge
		}
		out.SinceCheckpoint += st.SinceCheckpoint
		out.AppendTotal += st.AppendTotal
		out.FsyncTotal += st.FsyncTotal
		out.CheckpointTotal += st.CheckpointTotal
		if out.Failed == "" && st.Failed != "" {
			out.Failed = fmt.Sprintf("shard %d: %s", s, st.Failed)
		}
		out.Recovery.ReplayedRecords += st.Recovery.ReplayedRecords
		out.Recovery.ReplayedMutations += st.Recovery.ReplayedMutations
		out.Recovery.SkippedRecords += st.Recovery.SkippedRecords
		out.Recovery.SkippedBadCkpts += st.Recovery.SkippedBadCkpts
		out.Recovery.Segments += st.Recovery.Segments
		out.Recovery.TruncatedTail = out.Recovery.TruncatedTail || st.Recovery.TruncatedTail
		out.Recovery.CheckpointLoaded = out.Recovery.CheckpointLoaded || st.Recovery.CheckpointLoaded
		if st.Recovery.Epoch > out.Recovery.Epoch {
			out.Recovery.Epoch = st.Recovery.Epoch
		}
	}
	return out
}

// ShardStats returns shard s's own durability stats.
func (d *Durable) ShardStats(s int) wal.Stats { return d.ds[s].Stats() }

// Close stops every shard's apply loop and WAL, flushing buffered log
// data. It returns the combined close errors, if any.
func (d *Durable) Close() error {
	errs := make([]error, len(d.ds))
	var wg sync.WaitGroup
	for s := range d.ds {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = d.ds[s].Close()
		}(s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
