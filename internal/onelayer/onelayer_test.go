package onelayer

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func randRects(rnd *rand.Rand, n int, maxSide float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide}
	}
	return rects
}

func randWindow(rnd *rand.Rand, maxSide float64) geom.Rect {
	x := rnd.Float64()*1.2 - 0.1
	y := rnd.Float64()*1.2 - 0.1
	return geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide}
}

func sameIDs(t *testing.T, got, want []spatial.ID, context string) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %d, want %d", context, i, got[i], want[i])
		}
	}
}

// TestWindowAllDedupModes: all three duplicate elimination techniques must
// agree with brute force, duplicate-free.
func TestWindowAllDedupModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(81))
	for _, mode := range []DedupMode{RefPoint, HashDedup, ActiveBorderDedup} {
		for _, gridSize := range []int{1, 8, 32} {
			rects := randRects(rnd, 500, 0.1)
			d := spatial.NewDataset(rects)
			ix := Build(d, Options{NX: gridSize, NY: gridSize, Dedup: mode})
			for q := 0; q < 50; q++ {
				w := randWindow(rnd, 0.35)
				got := ix.WindowIDs(w, nil)
				seen := map[spatial.ID]bool{}
				for _, id := range got {
					if seen[id] {
						t.Fatalf("%v: duplicate %d", mode, id)
					}
					seen[id] = true
				}
				sameIDs(t, got, spatial.BruteWindow(d.Entries, w), mode.String())
			}
		}
	}
}

// TestDiskMatchesBruteForce for the 1-layer MBR-window evaluation plan.
func TestDiskMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(82))
	d := spatial.NewDataset(randRects(rnd, 600, 0.08))
	ix := Build(d, Options{NX: 16, NY: 16})
	for q := 0; q < 80; q++ {
		c := geom.Point{X: rnd.Float64()*1.2 - 0.1, Y: rnd.Float64()*1.2 - 0.1}
		radius := rnd.Float64() * 0.3
		sameIDs(t, ix.DiskIDs(c, radius, nil), spatial.BruteDisk(d.Entries, c, radius), "disk")
	}
}

// TestDuplicatesAreGeneratedThenEliminated: the defining behaviour the
// two-layer index removes — the 1-layer index must actually rediscover
// replicated results before discarding them.
func TestDuplicatesAreGeneratedThenEliminated(t *testing.T) {
	rnd := rand.New(rand.NewSource(83))
	d := spatial.NewDataset(randRects(rnd, 500, 0.25)) // large objects → heavy replication
	ix := Build(d, Options{NX: 32, NY: 32})
	ix.Stats = &Stats{}
	ix.WindowCount(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9})
	if ix.Stats.DuplicatesSeen == 0 {
		t.Error("expected replicated results to be rediscovered")
	}
	if ix.Stats.DuplicateChecks <= ix.Stats.Results {
		t.Error("expected more duplicate checks than results")
	}
}

// TestInsertDelete: update operations keep the index consistent.
func TestInsertDelete(t *testing.T) {
	rnd := rand.New(rand.NewSource(84))
	rects := randRects(rnd, 300, 0.1)
	space := geom.Rect{MaxX: 1.2, MaxY: 1.2}
	ix := New(Options{NX: 8, NY: 8, Space: space})
	for i, r := range rects {
		ix.Insert(spatial.Entry{Rect: r, ID: spatial.ID(i)})
	}
	if ix.Len() != len(rects) {
		t.Fatalf("Len = %d", ix.Len())
	}
	remaining := []spatial.Entry{}
	for i, r := range rects {
		if i%2 == 0 {
			if !ix.Delete(spatial.ID(i), r) {
				t.Fatalf("Delete(%d) not found", i)
			}
		} else {
			remaining = append(remaining, spatial.Entry{Rect: r, ID: spatial.ID(i)})
		}
	}
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.4)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(remaining, w), "after delete")
	}
	if ix.Delete(9999, rects[0]) {
		t.Error("deleting absent id succeeded")
	}
}

// TestDedupModeString covers the Stringer.
func TestDedupModeString(t *testing.T) {
	if RefPoint.String() != "refpoint" || HashDedup.String() != "hash" ||
		ActiveBorderDedup.String() != "active-border" || DedupMode(9).String() != "dedup(?)" {
		t.Error("DedupMode.String wrong")
	}
}

// TestMemoryFootprint sanity.
func TestMemoryFootprint(t *testing.T) {
	rnd := rand.New(rand.NewSource(85))
	d := spatial.NewDataset(randRects(rnd, 100, 0.1))
	ix := Build(d, Options{NX: 8, NY: 8})
	if ix.MemoryFootprint() <= 0 {
		t.Error("footprint must be positive")
	}
}
