// Package onelayer implements the 1-layer baseline of the paper: a
// regular grid index with object replication and a duplicate-elimination
// technique (reference point by default). The primary partitioning is
// identical to the two-layer index's; only the secondary layer is absent,
// so comparing the two isolates the benefit of the paper's contribution.
//
// The index applies the comparison-reduction techniques of Section IV-B
// (tiles covered by the window in a dimension skip the tests in that
// dimension), as the paper states its 1-layer competitor does — the gap
// to 2-layer is therefore due to duplicate handling alone.
package onelayer

import (
	"math"

	"github.com/twolayer/twolayer/internal/dedup"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/grid"
	"github.com/twolayer/twolayer/internal/spatial"
)

// DedupMode selects the duplicate-elimination technique.
type DedupMode int

const (
	// RefPoint is the reference point technique of Dittrich and Seeger,
	// the state of the art used by big spatial data systems.
	RefPoint DedupMode = iota
	// HashDedup eliminates duplicates with a per-query hash table.
	HashDedup
	// ActiveBorderDedup processes tiles in row-major order and keeps only
	// the active border of the result set in the hash table.
	ActiveBorderDedup
)

// String implements fmt.Stringer.
func (m DedupMode) String() string {
	switch m {
	case RefPoint:
		return "refpoint"
	case HashDedup:
		return "hash"
	case ActiveBorderDedup:
		return "active-border"
	}
	return "dedup(?)"
}

// Options configure the index.
type Options struct {
	// NX, NY are tiles per dimension (default 256).
	NX, NY int
	// Space is the indexed region (default: unit square for New, dataset
	// MBR for Build).
	Space geom.Rect
	// Dedup selects the duplicate elimination technique (default
	// RefPoint).
	Dedup DedupMode
}

// Index is a grid with one flat entry list per tile.
type Index struct {
	g     *grid.Grid
	dedup DedupMode

	dense []int32
	tiles [][]spatial.Entry

	size int

	// Stats mirrors a subset of the two-layer counters so experiments can
	// contrast the work done. Not safe for concurrent queries when set.
	Stats *Stats
}

// Stats counts work during query evaluation.
type Stats struct {
	TilesVisited    int64
	EntriesScanned  int64
	Comparisons     int64
	DuplicateChecks int64 // reference point computations / hash probes
	DuplicatesSeen  int64 // results rediscovered and discarded
	Results         int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// New returns an empty 1-layer grid index.
func New(opts Options) *Index {
	if opts.NX == 0 {
		opts.NX = 256
	}
	if opts.NY == 0 {
		opts.NY = 256
	}
	if opts.Space == (geom.Rect{}) {
		opts.Space = geom.Rect{MaxX: 1, MaxY: 1}
	}
	ix := &Index{
		g:     grid.New(opts.Space, opts.NX, opts.NY),
		dedup: opts.Dedup,
		dense: make([]int32, opts.NX*opts.NY),
	}
	for i := range ix.dense {
		ix.dense[i] = -1
	}
	return ix
}

// Build constructs the index over a dataset.
func Build(d *spatial.Dataset, opts Options) *Index {
	if opts.Space == (geom.Rect{}) {
		opts.Space = d.MBR()
	}
	ix := New(opts)
	for _, e := range d.Entries {
		ix.Insert(e)
	}
	return ix
}

// Grid exposes the primary partitioning.
func (ix *Index) Grid() *grid.Grid { return ix.g }

// Len returns the number of distinct objects.
func (ix *Index) Len() int { return ix.size }

// Insert replicates e into every tile its MBR intersects.
func (ix *Index) Insert(e spatial.Entry) {
	ax, ay, bx, by := ix.g.CoverRect(e.Rect)
	for ty := ay; ty <= by; ty++ {
		for tx := ax; tx <= bx; tx++ {
			id := int32(ix.g.TileID(tx, ty))
			slot := ix.dense[id]
			if slot < 0 {
				ix.tiles = append(ix.tiles, nil)
				slot = int32(len(ix.tiles) - 1)
				ix.dense[id] = slot
			}
			ix.tiles[slot] = append(ix.tiles[slot], e)
		}
	}
	ix.size++
}

// Delete removes the object with the given id and exact MBR, reporting
// whether it was found.
func (ix *Index) Delete(id spatial.ID, r geom.Rect) bool {
	ax, ay, bx, by := ix.g.CoverRect(r)
	found := false
	for ty := ay; ty <= by; ty++ {
		for tx := ax; tx <= bx; tx++ {
			slot := ix.dense[ix.g.TileID(tx, ty)]
			if slot < 0 {
				continue
			}
			list := ix.tiles[slot]
			for i := range list {
				if list[i].ID == id {
					list[i] = list[len(list)-1]
					ix.tiles[slot] = list[:len(list)-1]
					found = true
					break
				}
			}
		}
	}
	if found {
		ix.size--
	}
	return found
}

// effectiveTile mirrors the two-layer index: border tiles extend to
// infinity so out-of-space objects and queries behave correctly.
func (ix *Index) effectiveTile(tx, ty int) geom.Rect {
	r := ix.g.Tile(tx, ty)
	if tx == 0 {
		r.MinX = math.Inf(-1)
	}
	if tx == ix.g.NX-1 {
		r.MaxX = math.Inf(1)
	}
	if ty == 0 {
		r.MinY = math.Inf(-1)
	}
	if ty == ix.g.NY-1 {
		r.MaxY = math.Inf(1)
	}
	return r
}

// ownerTile returns the tile coordinates owning the reference point of
// r ∩ w, using the same point-location arithmetic as replication so the
// owner is exactly one of the replica tiles.
func (ix *Index) ownerTile(r, w geom.Rect) (int, int) {
	return ix.g.CellOf(dedup.RefPoint(r, w))
}

// Window runs the filtering step of a window query, reporting every
// intersecting MBR exactly once (after duplicate elimination).
func (ix *Index) Window(w geom.Rect, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	switch ix.dedup {
	case HashDedup:
		ix.windowHash(w, fn)
	case ActiveBorderDedup:
		ix.windowActiveBorder(w, fn)
	default:
		ix.windowRefPoint(w, fn)
	}
}

// WindowIDs collects result IDs into buf.
func (ix *Index) WindowIDs(w geom.Rect, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Window(w, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// WindowCount returns the number of MBRs intersecting w.
func (ix *Index) WindowCount(w geom.Rect) int {
	n := 0
	ix.Window(w, func(spatial.Entry) { n++ })
	return n
}

// scanTile applies the Section IV-B reduced comparison set to one tile and
// passes survivors to emit.
func (ix *Index) scanTile(tx, ty int, w geom.Rect, emit func(*spatial.Entry)) {
	slot := ix.dense[ix.g.TileID(tx, ty)]
	if slot < 0 {
		return
	}
	entries := ix.tiles[slot]
	t := ix.effectiveTile(tx, ty)
	needXL := w.MaxX < t.MaxX
	needXU := w.MinX > t.MinX
	needYL := w.MaxY < t.MaxY
	needYU := w.MinY > t.MinY
	s := ix.Stats
	if s != nil {
		s.TilesVisited++
		s.EntriesScanned += int64(len(entries))
	}
	for i := range entries {
		e := &entries[i]
		if needXU {
			if s != nil {
				s.Comparisons++
			}
			if e.Rect.MaxX < w.MinX {
				continue
			}
		}
		if needXL {
			if s != nil {
				s.Comparisons++
			}
			if e.Rect.MinX > w.MaxX {
				continue
			}
		}
		if needYU {
			if s != nil {
				s.Comparisons++
			}
			if e.Rect.MaxY < w.MinY {
				continue
			}
		}
		if needYL {
			if s != nil {
				s.Comparisons++
			}
			if e.Rect.MinY > w.MaxY {
				continue
			}
		}
		emit(e)
	}
}

func (ix *Index) windowRefPoint(w geom.Rect, fn func(spatial.Entry)) {
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	s := ix.Stats
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			ctx, cty := tx, ty
			ix.scanTile(tx, ty, w, func(e *spatial.Entry) {
				if s != nil {
					s.DuplicateChecks++
				}
				ox, oy := ix.ownerTile(e.Rect, w)
				if ox != ctx || oy != cty {
					if s != nil {
						s.DuplicatesSeen++
					}
					return
				}
				if s != nil {
					s.Results++
				}
				fn(*e)
			})
		}
	}
}

func (ix *Index) windowHash(w geom.Rect, fn func(spatial.Entry)) {
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	h := dedup.NewHash()
	s := ix.Stats
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			ix.scanTile(tx, ty, w, func(e *spatial.Entry) {
				if s != nil {
					s.DuplicateChecks++
				}
				if !h.FirstTime(e.ID) {
					if s != nil {
						s.DuplicatesSeen++
					}
					return
				}
				if s != nil {
					s.Results++
				}
				fn(*e)
			})
		}
	}
}

func (ix *Index) windowActiveBorder(w geom.Rect, fn func(spatial.Entry)) {
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	ab := dedup.NewActiveBorder()
	s := ix.Stats
	width := ix1 - ix0 + 1
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			// Row-major order index of this tile within the query range.
			pos := (ty-iy0)*width + (tx - ix0)
			ab.Advance(pos)
			ix.scanTile(tx, ty, w, func(e *spatial.Entry) {
				if s != nil {
					s.DuplicateChecks++
				}
				// Last replica of e within the query range, row-major.
				_, _, bx, by := ix.g.CoverRect(e.Rect)
				if bx > ix1 {
					bx = ix1
				}
				if by > iy1 {
					by = iy1
				}
				last := (by-iy0)*width + (bx - ix0)
				if !ab.FirstTime(e.ID, last) {
					if s != nil {
						s.DuplicatesSeen++
					}
					return
				}
				if s != nil {
					s.Results++
				}
				fn(*e)
			})
		}
	}
}

// Disk evaluates a disk range query as the paper does for the 1-layer
// baseline: a window query on the disk's MBR with duplicate elimination,
// reporting results in tiles fully inside the disk directly and distance
// verifying the rest.
func (ix *Index) Disk(center geom.Point, radius float64, fn func(e spatial.Entry)) {
	if radius < 0 {
		return
	}
	mbr := geom.Disk{Center: center, Radius: radius}.MBR()
	r2 := radius * radius
	ix.Window(mbr, func(e spatial.Entry) {
		ox, oy := ix.ownerTile(e.Rect, mbr)
		if ix.effectiveTile(ox, oy).InsideDisk(center, radius) {
			fn(e)
			return
		}
		if ix.Stats != nil {
			ix.Stats.DuplicateChecks++ // distance verification
		}
		if e.Rect.DistSqToPoint(center) <= r2 {
			fn(e)
		}
	})
}

// DiskIDs collects disk query result IDs into buf.
func (ix *Index) DiskIDs(center geom.Point, radius float64, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Disk(center, radius, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// DiskCount returns the number of MBRs intersecting the disk.
func (ix *Index) DiskCount(center geom.Point, radius float64) int {
	n := 0
	ix.Disk(center, radius, func(spatial.Entry) { n++ })
	return n
}

// MemoryFootprint approximates entry storage bytes.
func (ix *Index) MemoryFootprint() int {
	const entryBytes = 40
	total := 4 * len(ix.dense)
	for _, t := range ix.tiles {
		total += entryBytes * len(t)
	}
	return total
}
