// Package dataio serializes datasets and query workloads to a simple CSV
// format, so generated workloads can be stored, inspected and replayed by
// the command-line tools.
//
// Rectangle rows are "minx,miny,maxx,maxy". Geometry rows prepend a type
// tag and vertex list: "L,x1,y1,x2,y2,..." for linestrings and
// "P,x1,y1,..." for polygons; plain rectangles use "R,minx,miny,maxx,maxy".
// Object IDs are implicit row numbers, matching the dense-ID convention.
package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// WriteRects writes one rectangle per line.
func WriteRects(w io.Writer, rects []geom.Rect) error {
	bw := bufio.NewWriter(w)
	for _, r := range rects {
		if _, err := fmt.Fprintf(bw, "%g,%g,%g,%g\n", r.MinX, r.MinY, r.MaxX, r.MaxY); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRects reads rectangles written by WriteRects.
func ReadRects(r io.Reader) ([]geom.Rect, error) {
	var out []geom.Rect
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		vals, err := parseFloats(text, 4)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		rect := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if !rect.Valid() {
			return nil, fmt.Errorf("dataio: line %d: invalid rect %v", line, rect)
		}
		out = append(out, rect)
	}
	return out, sc.Err()
}

// WriteDataset writes a dataset with exact geometries.
func WriteDataset(w io.Writer, d *spatial.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, e := range d.Entries {
		if err := writeGeom(bw, d.Geom(e.ID)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeGeom(w io.Writer, g geom.Geometry) error {
	switch t := g.(type) {
	case *geom.LineString:
		return writeTagged(w, "L", t.Points)
	case *geom.Polygon:
		return writeTagged(w, "P", t.Ring)
	case geom.RectGeometry:
		r := geom.Rect(t)
		_, err := fmt.Fprintf(w, "R,%g,%g,%g,%g\n", r.MinX, r.MinY, r.MaxX, r.MaxY)
		return err
	case geom.PointGeometry:
		_, err := fmt.Fprintf(w, "R,%g,%g,%g,%g\n", t.X, t.Y, t.X, t.Y)
		return err
	default:
		r := g.MBR()
		_, err := fmt.Fprintf(w, "R,%g,%g,%g,%g\n", r.MinX, r.MinY, r.MaxX, r.MaxY)
		return err
	}
}

func writeTagged(w io.Writer, tag string, pts []geom.Point) error {
	var sb strings.Builder
	sb.WriteString(tag)
	for _, p := range pts {
		fmt.Fprintf(&sb, ",%g,%g", p.X, p.Y)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// ReadDataset reads a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (*spatial.Dataset, error) {
	var geoms []geom.Geometry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		g, err := parseGeom(text)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		geoms = append(geoms, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spatial.NewGeomDataset(geoms), nil
}

func parseGeom(text string) (geom.Geometry, error) {
	tag, rest, ok := strings.Cut(text, ",")
	if !ok {
		return nil, fmt.Errorf("missing geometry tag")
	}
	switch tag {
	case "R":
		vals, err := parseFloats(rest, 4)
		if err != nil {
			return nil, err
		}
		r := geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}
		if !r.Valid() {
			return nil, fmt.Errorf("invalid rect %v", r)
		}
		return geom.RectGeometry(r), nil
	case "L", "P":
		vals, err := parseFloats(rest, -1)
		if err != nil {
			return nil, err
		}
		if len(vals)%2 != 0 {
			return nil, fmt.Errorf("odd coordinate count %d", len(vals))
		}
		pts := make([]geom.Point, len(vals)/2)
		for i := range pts {
			pts[i] = geom.Point{X: vals[2*i], Y: vals[2*i+1]}
		}
		if tag == "L" {
			if len(pts) < 2 {
				return nil, fmt.Errorf("linestring needs 2+ points")
			}
			return geom.NewLineString(pts...), nil
		}
		if len(pts) < 3 {
			return nil, fmt.Errorf("polygon needs 3+ points")
		}
		return geom.NewPolygon(pts...), nil
	default:
		return nil, fmt.Errorf("unknown geometry tag %q", tag)
	}
}

// parseFloats splits a comma-separated float list; want < 0 accepts any
// count.
func parseFloats(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if want >= 0 && len(parts) != want {
		return nil, fmt.Errorf("have %d fields, want %d", len(parts), want)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}
