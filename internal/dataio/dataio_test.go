package dataio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
)

func TestRectsRoundTrip(t *testing.T) {
	rects := datagen.Rects(datagen.Spec{N: 500, Area: 1e-6, Seed: 9})
	var buf bytes.Buffer
	if err := WriteRects(&buf, rects); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rects) {
		t.Fatalf("read %d rects, wrote %d", len(got), len(rects))
	}
	for i := range got {
		if got[i] != rects[i] {
			t.Fatalf("rect %d: %v != %v", i, got[i], rects[i])
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges, datagen.Tiger} {
		d := datagen.RealLikeDataset(kind, 200, 13)
		var buf bytes.Buffer
		if err := WriteDataset(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDataset(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != d.Len() {
			t.Fatalf("%v: read %d, wrote %d", kind, got.Len(), d.Len())
		}
		for i := range d.Entries {
			a, b := d.Entries[i].Rect, got.Entries[i].Rect
			// Round-tripping through %g is exact for float64.
			if a != b {
				t.Fatalf("%v: entry %d MBR %v != %v", kind, i, a, b)
			}
		}
	}
}

func TestRectOnlyDatasetRoundTrip(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 50, Area: 1e-4, Seed: 1})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Entries {
		if got.Entries[i].Rect != d.Entries[i].Rect {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0.1,0.1,0.2,0.2\n  \n0.3,0.3,0.4,0.4\n"
	rects, err := ReadRects(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rects) != 2 {
		t.Fatalf("got %d rects", len(rects))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"wrong field count": "0.1,0.2,0.3\n",
		"non-numeric":       "a,b,c,d\n",
		"inverted rect":     "0.5,0.5,0.1,0.9\n",
	}
	for name, in := range cases {
		if _, err := ReadRects(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	geomCases := map[string]string{
		"unknown tag":   "X,0.1,0.2\n",
		"no tag":        "justtext\n",
		"odd coords":    "L,0.1,0.2,0.3\n",
		"short line":    "L,0.1,0.2\n",
		"short polygon": "P,0.1,0.2,0.3,0.4\n",
		"bad rect":      "R,0.5,0.5,0.1,0.9\n",
		"bad float":     "L,x,y,0.3,0.4\n",
	}
	for name, in := range geomCases {
		if _, err := ReadDataset(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGeomTypesPreserved(t *testing.T) {
	line := geom.NewLineString(geom.Point{X: 0.1, Y: 0.2}, geom.Point{X: 0.3, Y: 0.4})
	poly := geom.NewPolygon(geom.Point{X: 0, Y: 0}, geom.Point{X: 0.1, Y: 0}, geom.Point{X: 0, Y: 0.1})
	var buf bytes.Buffer
	if err := writeGeom(&buf, line); err != nil {
		t.Fatal(err)
	}
	if err := writeGeom(&buf, poly); err != nil {
		t.Fatal(err)
	}
	d, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Geoms[0].(*geom.LineString); !ok {
		t.Error("linestring type lost")
	}
	if _, ok := d.Geoms[1].(*geom.Polygon); !ok {
		t.Error("polygon type lost")
	}
}
