package dataio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
	"github.com/twolayer/twolayer/internal/wkt"
)

// WriteWKT writes one WKT geometry per line, the common interchange shape
// of real spatial datasets (TIGER extracts, OSM dumps).
func WriteWKT(w io.Writer, d *spatial.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, e := range d.Entries {
		if _, err := bw.WriteString(wkt.Format(d.Geom(e.ID))); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWKT reads a dataset with one WKT geometry per line. Blank lines and
// lines starting with '#' are skipped.
func ReadWKT(r io.Reader) (*spatial.Dataset, error) {
	var geoms []geom.Geometry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		g, err := wkt.Parse(text)
		if err != nil {
			return nil, fmt.Errorf("dataio: line %d: %w", line, err)
		}
		geoms = append(geoms, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spatial.NewGeomDataset(geoms), nil
}
