package dataio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/twolayer/twolayer/internal/datagen"
)

func TestWKTRoundTrip(t *testing.T) {
	for _, kind := range []datagen.RealLike{datagen.Roads, datagen.Edges, datagen.Tiger} {
		d := datagen.RealLikeDataset(kind, 300, 21)
		var buf bytes.Buffer
		if err := WriteWKT(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := ReadWKT(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != d.Len() {
			t.Fatalf("%v: %d of %d survived", kind, got.Len(), d.Len())
		}
		for i := range d.Entries {
			if got.Entries[i].Rect != d.Entries[i].Rect {
				t.Fatalf("%v: entry %d MBR changed", kind, i)
			}
		}
	}
}

func TestReadWKTSkipsAndErrors(t *testing.T) {
	in := "# comment\n\nPOINT (1 2)\nLINESTRING (0 0, 1 1)\n"
	d, err := ReadWKT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("read %d", d.Len())
	}
	if _, err := ReadWKT(strings.NewReader("TRIANGLE (0 0, 1 1, 2 2)\n")); err == nil {
		t.Error("expected error for unsupported type")
	}
}
