package rtree

import (
	"container/heap"
	"math"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Neighbor is one kNN result.
type Neighbor struct {
	ID   spatial.ID
	Dist float64
}

// pqItem is an entry of the best-first priority queue: either a node to
// expand or an object candidate.
type pqItem struct {
	distSq float64
	node   *node
	entry  spatial.Entry
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].distSq < q[j].distSq }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// KNN returns the k objects whose MBRs are nearest to p, ascending by
// distance, using the classic best-first (Hjaltason/Samet) traversal.
func (ix *Index) KNN(p geom.Point, k int) []Neighbor {
	if k <= 0 || ix.size == 0 {
		return nil
	}
	q := pq{{distSq: ix.root.mbr.DistSqToPoint(p), node: ix.root}}
	out := make([]Neighbor, 0, k)
	for len(q) > 0 && len(out) < k {
		item := heap.Pop(&q).(pqItem)
		if item.node == nil {
			out = append(out, Neighbor{ID: item.entry.ID, Dist: math.Sqrt(item.distSq)})
			continue
		}
		n := item.node
		if n.leaf {
			for i := range n.entries {
				heap.Push(&q, pqItem{
					distSq: n.entries[i].Rect.DistSqToPoint(p),
					entry:  n.entries[i],
				})
			}
			continue
		}
		for _, c := range n.children {
			heap.Push(&q, pqItem{distSq: c.mbr.DistSqToPoint(p), node: c})
		}
	}
	return out
}
