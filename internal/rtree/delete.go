package rtree

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Delete removes the object with the given id and exact MBR, using the
// classic R-tree CondenseTree algorithm: the leaf is located through MBR
// containment, the entry removed, underfull nodes along the path are
// dissolved and their surviving entries reinserted at their original
// level. It reports whether the object was found.
func (ix *Index) Delete(id spatial.ID, r geom.Rect) bool {
	if ix.size == 0 {
		return false
	}
	var orphans []entryItem
	found := ix.deleteRec(ix.root, id, r, 1, &orphans)
	if !found {
		return false
	}
	ix.size--

	// Shrink the root while it is an internal node with a single child.
	for !ix.root.leaf && len(ix.root.children) == 1 {
		ix.root = ix.root.children[0]
		ix.height--
	}
	if !ix.root.leaf && len(ix.root.children) == 0 {
		ix.root = &node{leaf: true}
		ix.height = 1
	}

	// Reinsert orphans at their recorded height above the leaf level
	// (the height is re-read per orphan: reinsertion may grow the root).
	for _, o := range orphans {
		ix.reinserting = true // orphan reinsertion must not trigger forced reinserts
		if o.child != nil {
			ix.insertAtDepth(o, ix.height-o.level-1)
		} else {
			ix.insertAtDepth(o, ix.height)
		}
	}
	return true
}

// deleteRec removes the entry from the subtree under n (at depth) and
// condenses underfull nodes into the orphan list. Returns whether the
// entry was found in this subtree.
func (ix *Index) deleteRec(n *node, id spatial.ID, r geom.Rect, depth int, orphans *[]entryItem) bool {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].ID == id && n.entries[i].Rect == r {
				n.entries[i] = n.entries[len(n.entries)-1]
				n.entries = n.entries[:len(n.entries)-1]
				n.recomputeMBR()
				return true
			}
		}
		return false
	}
	for ci, c := range n.children {
		// Tight MBRs contain every descendant rect exactly, so
		// containment is a safe prune.
		if !c.mbr.Contains(r) {
			continue
		}
		if !ix.deleteRec(c, id, r, depth+1, orphans) {
			continue
		}
		// Condense: dissolve the child if it fell below the minimum fill
		// (never dissolve a child that is the root's last child; the
		// caller handles root shrinking).
		if c.count() < ix.minFill {
			n.children[ci] = n.children[len(n.children)-1]
			n.children = n.children[:len(n.children)-1]
			ix.collectOrphans(c, ix.height-depth-1, orphans)
		}
		n.recomputeMBR()
		return true
	}
	return false
}

// collectOrphans records a dissolved node's contents for reinsertion.
// level is the node's height above the leaves (0 = leaf).
func (ix *Index) collectOrphans(n *node, level int, orphans *[]entryItem) {
	if n.leaf {
		for _, e := range n.entries {
			*orphans = append(*orphans, entryItem{rect: e.Rect, entry: e})
		}
		return
	}
	for _, c := range n.children {
		*orphans = append(*orphans, entryItem{rect: c.mbr, child: c, level: level - 1})
	}
}
