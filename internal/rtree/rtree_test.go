package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func randRects(rnd *rand.Rand, n int, maxSide float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide}
	}
	return rects
}

func sameIDs(t *testing.T, got, want []spatial.ID, context string) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %d, want %d", context, i, got[i], want[i])
		}
	}
}

// TestSTRWindowMatchesBruteForce across sizes including tiny trees.
func TestSTRWindowMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	for _, n := range []int{0, 1, 15, 16, 17, 300, 3000} {
		d := spatial.NewDataset(randRects(rnd, n, 0.1))
		ix := BulkSTR(d, Options{})
		if err := ix.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ix.Len() != n {
			t.Fatalf("Len = %d, want %d", ix.Len(), n)
		}
		for q := 0; q < 40; q++ {
			x, y := rnd.Float64(), rnd.Float64()
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.3}
			sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(d.Entries, w), "STR window")
		}
	}
}

// TestRStarWindowMatchesBruteForce for the dynamic tree.
func TestRStarWindowMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(102))
	for _, n := range []int{1, 17, 500, 3000} {
		d := spatial.NewDataset(randRects(rnd, n, 0.1))
		ix := BuildRStar(d, Options{})
		if err := ix.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 40; q++ {
			x, y := rnd.Float64(), rnd.Float64()
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.3}
			sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(d.Entries, w), "R* window")
		}
	}
}

// TestDiskQueries on both variants.
func TestDiskQueries(t *testing.T) {
	rnd := rand.New(rand.NewSource(103))
	d := spatial.NewDataset(randRects(rnd, 1000, 0.05))
	for name, ix := range map[string]*Index{
		"STR": BulkSTR(d, Options{}),
		"R*":  BuildRStar(d, Options{}),
	} {
		for q := 0; q < 50; q++ {
			c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
			radius := rnd.Float64() * 0.3
			sameIDs(t, ix.DiskIDs(c, radius, nil), spatial.BruteDisk(d.Entries, c, radius), name+" disk")
		}
	}
}

// TestMixedBulkThenInsert reproduces the update workload of Table VI:
// bulk-load 90%, insert 10%.
func TestMixedBulkThenInsert(t *testing.T) {
	rnd := rand.New(rand.NewSource(104))
	rects := randRects(rnd, 2000, 0.05)
	split := 1800
	d := spatial.NewDataset(rects[:split])
	ix := BulkSTR(d, Options{})
	for i := split; i < len(rects); i++ {
		ix.Insert(spatial.Entry{Rect: rects[i], ID: spatial.ID(i)})
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	all := spatial.NewDataset(rects)
	for q := 0; q < 50; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.3}
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(all.Entries, w), "bulk+insert")
	}
}

// TestHeightGrowth: the tree height grows logarithmically with fanout 16.
func TestHeightGrowth(t *testing.T) {
	rnd := rand.New(rand.NewSource(105))
	d := spatial.NewDataset(randRects(rnd, 4096, 0.01))
	ix := BulkSTR(d, Options{})
	// 4096 objects, fanout 16: exactly 3 levels (16^3).
	if h := ix.Height(); h != 3 {
		t.Errorf("height = %d, want 3", h)
	}
	dyn := BuildRStar(d, Options{})
	if h := dyn.Height(); h < 3 || h > 5 {
		t.Errorf("R* height = %d, want 3..5", h)
	}
}

// TestFanoutRespected after heavy dynamic insertion.
func TestFanoutRespected(t *testing.T) {
	rnd := rand.New(rand.NewSource(106))
	ix := New(Options{Fanout: 8})
	for i := 0; i < 2000; i++ {
		r := randRects(rnd, 1, 0.05)[0]
		ix.Insert(spatial.Entry{Rect: r, ID: spatial.ID(i)})
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSkewedInsertion: clustered data exercises forced reinsertion and
// splits on the same paths repeatedly.
func TestSkewedInsertion(t *testing.T) {
	rnd := rand.New(rand.NewSource(107))
	ix := New(Options{})
	var entries []spatial.Entry
	for i := 0; i < 3000; i++ {
		// All objects crammed into a tiny corner cluster.
		x := rnd.Float64() * 0.01
		y := rnd.Float64() * 0.01
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.001, MaxY: y + 0.001}
		e := spatial.Entry{Rect: r, ID: spatial.ID(i)}
		entries = append(entries, e)
		ix.Insert(e)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{MinX: 0, MinY: 0, MaxX: 0.005, MaxY: 0.005}
	sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(entries, w), "skewed")
}

// TestEmptyTree queries.
func TestEmptyTree(t *testing.T) {
	ix := New(Options{})
	if n := ix.WindowCount(geom.Rect{MaxX: 1, MaxY: 1}); n != 0 {
		t.Errorf("empty tree window returned %d", n)
	}
	if n := ix.DiskCount(geom.Point{X: 0.5, Y: 0.5}, 1); n != 0 {
		t.Errorf("empty tree disk returned %d", n)
	}
}
