package rtree

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestDeleteHalf removes half the objects and checks queries, structure
// and Len against the surviving set, for both construction methods.
func TestDeleteHalf(t *testing.T) {
	rnd := rand.New(rand.NewSource(201))
	rects := randRects(rnd, 2000, 0.05)
	d := spatial.NewDataset(rects)
	for name, ix := range map[string]*Index{
		"STR": BulkSTR(d, Options{}),
		"R*":  BuildRStar(d, Options{}),
	} {
		var remaining []spatial.Entry
		for i, r := range rects {
			if i%2 == 0 {
				if !ix.Delete(spatial.ID(i), r) {
					t.Fatalf("%s: Delete(%d) not found", name, i)
				}
			} else {
				remaining = append(remaining, spatial.Entry{Rect: r, ID: spatial.ID(i)})
			}
		}
		if ix.Len() != len(remaining) {
			t.Fatalf("%s: Len = %d, want %d", name, ix.Len(), len(remaining))
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("%s after deletes: %v", name, err)
		}
		for q := 0; q < 60; q++ {
			x, y := rnd.Float64(), rnd.Float64()
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
			sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(remaining, w), name+" after delete")
		}
	}
}

// TestDeleteAll empties the tree and reuses it.
func TestDeleteAll(t *testing.T) {
	rnd := rand.New(rand.NewSource(202))
	rects := randRects(rnd, 500, 0.05)
	ix := BuildRStar(spatial.NewDataset(rects), Options{})
	for i, r := range rects {
		if !ix.Delete(spatial.ID(i), r) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if ix.Len() != 0 || ix.Height() != 1 {
		t.Fatalf("after delete-all: Len=%d Height=%d", ix.Len(), ix.Height())
	}
	if n := ix.WindowCount(geom.Rect{MaxX: 1, MaxY: 1}); n != 0 {
		t.Fatalf("empty tree returned %d", n)
	}
	// The tree must accept new objects again.
	ix.Insert(spatial.Entry{Rect: rects[0], ID: 0})
	if ix.WindowCount(geom.Rect{MaxX: 2, MaxY: 2}) != 1 {
		t.Fatal("insert after delete-all failed")
	}
}

// TestDeleteMissing: absent IDs and mismatched rects are rejected.
func TestDeleteMissing(t *testing.T) {
	rnd := rand.New(rand.NewSource(203))
	rects := randRects(rnd, 100, 0.05)
	ix := BulkSTR(spatial.NewDataset(rects), Options{})
	if ix.Delete(9999, rects[0]) {
		t.Error("deleting absent id succeeded")
	}
	wrong := rects[0]
	wrong.MaxX += 0.001
	if ix.Delete(0, wrong) {
		t.Error("deleting with wrong rect succeeded")
	}
	if ix.Len() != 100 {
		t.Errorf("Len changed: %d", ix.Len())
	}
	empty := New(Options{})
	if empty.Delete(0, rects[0]) {
		t.Error("delete on empty tree succeeded")
	}
}

// TestDeleteInsertChurn interleaves the two against a model.
func TestDeleteInsertChurn(t *testing.T) {
	rnd := rand.New(rand.NewSource(204))
	ix := New(Options{Fanout: 8})
	model := map[spatial.ID]geom.Rect{}
	next := spatial.ID(0)
	for step := 0; step < 4000; step++ {
		if len(model) == 0 || rnd.Float64() < 0.6 {
			r := randRects(rnd, 1, 0.05)[0]
			ix.Insert(spatial.Entry{Rect: r, ID: next})
			model[next] = r
			next++
		} else {
			for id, r := range model {
				if !ix.Delete(id, r) {
					t.Fatalf("step %d: Delete(%d) failed", step, id)
				}
				delete(model, id)
				break
			}
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len %d != model %d", ix.Len(), len(model))
	}
	entries := make([]spatial.Entry, 0, len(model))
	for id, r := range model {
		entries = append(entries, spatial.Entry{Rect: r, ID: id})
	}
	for q := 0; q < 40; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.3, MaxY: y + 0.3}
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(entries, w), "churn")
	}
}
