// Package rtree implements the data-oriented partitioning (DOP) baselines
// of the paper: an STR bulk-loaded R-tree (Leutenegger et al., ICDE 1997)
// and a dynamic R*-tree (Beckmann et al., SIGMOD 1990) with forced
// reinsertion. Both use the paper's tuned fanout of 16 by default.
//
// DOP indices store each object exactly once, so queries need no
// duplicate handling; the price is overlapping node regions and a
// hierarchical traversal per query.
package rtree

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// DefaultFanout is the paper's tuned node capacity.
const DefaultFanout = 16

// Options configure the tree.
type Options struct {
	// Fanout is the maximum number of entries or children per node
	// (default 16). The minimum fill is 40% of it, the R* recommendation.
	Fanout int
}

func (o Options) withDefaults() Options {
	if o.Fanout == 0 {
		o.Fanout = DefaultFanout
	}
	return o
}

// node is an R-tree node. Leaves hold object entries; internal nodes hold
// children. mbr is always the tight bound of the node's contents.
type node struct {
	mbr      geom.Rect
	leaf     bool
	entries  []spatial.Entry
	children []*node
}

func (n *node) count() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.children)
}

func (n *node) recomputeMBR() {
	if n.leaf {
		if len(n.entries) == 0 {
			n.mbr = geom.Rect{}
			return
		}
		m := n.entries[0].Rect
		for _, e := range n.entries[1:] {
			m = m.Union(e.Rect)
		}
		n.mbr = m
		return
	}
	if len(n.children) == 0 {
		n.mbr = geom.Rect{}
		return
	}
	m := n.children[0].mbr
	for _, c := range n.children[1:] {
		m = m.Union(c.mbr)
	}
	n.mbr = m
}

// Index is an in-memory R-tree.
type Index struct {
	opts    Options
	minFill int
	root    *node
	height  int // 1 = root is a leaf
	size    int

	// reinsertedAtLevel tracks forced reinsertion per insertion pass
	// (R*-tree: at most one reinsertion per level per insert).
	reinserting bool
}

// New returns an empty tree (a single empty leaf).
func New(opts Options) *Index {
	opts = opts.withDefaults()
	return &Index{
		opts:    opts,
		minFill: int(math.Max(2, math.Floor(0.4*float64(opts.Fanout)))),
		root:    &node{leaf: true},
		height:  1,
	}
}

// Len returns the number of stored objects.
func (ix *Index) Len() int { return ix.size }

// Height returns the tree height (1 = single leaf).
func (ix *Index) Height() int { return ix.height }

// BulkSTR builds the tree from a dataset with Sort-Tile-Recursive packing.
func BulkSTR(d *spatial.Dataset, opts Options) *Index {
	ix := New(opts)
	if d.Len() == 0 {
		return ix
	}
	// Pack the leaf level.
	entries := make([]spatial.Entry, len(d.Entries))
	copy(entries, d.Entries)
	leaves := packLeaves(entries, ix.opts.Fanout)
	ix.size = d.Len()
	// Pack upper levels until one root remains.
	level := leaves
	ix.height = 1
	for len(level) > 1 {
		level = packNodes(level, ix.opts.Fanout)
		ix.height++
	}
	ix.root = level[0]
	return ix
}

// packLeaves applies one STR pass over object entries.
func packLeaves(entries []spatial.Entry, m int) []*node {
	p := (len(entries) + m - 1) / m
	s := int(math.Ceil(math.Sqrt(float64(p))))
	slices.SortFunc(entries, func(a, b spatial.Entry) int {
		return cmp.Compare(a.Rect.Center().X, b.Rect.Center().X)
	})
	var leaves []*node
	slab := s * m
	for i := 0; i < len(entries); i += slab {
		hi := i + slab
		if hi > len(entries) {
			hi = len(entries)
		}
		run := entries[i:hi]
		slices.SortFunc(run, func(a, b spatial.Entry) int {
			return cmp.Compare(a.Rect.Center().Y, b.Rect.Center().Y)
		})
		for j := 0; j < len(run); j += m {
			k := j + m
			if k > len(run) {
				k = len(run)
			}
			leaf := &node{leaf: true, entries: append([]spatial.Entry(nil), run[j:k]...)}
			leaf.recomputeMBR()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes applies one STR pass over nodes, producing their parents.
func packNodes(nodes []*node, m int) []*node {
	p := (len(nodes) + m - 1) / m
	s := int(math.Ceil(math.Sqrt(float64(p))))
	slices.SortFunc(nodes, func(a, b *node) int {
		return cmp.Compare(a.mbr.Center().X, b.mbr.Center().X)
	})
	var parents []*node
	slab := s * m
	for i := 0; i < len(nodes); i += slab {
		hi := i + slab
		if hi > len(nodes) {
			hi = len(nodes)
		}
		run := nodes[i:hi]
		slices.SortFunc(run, func(a, b *node) int {
			return cmp.Compare(a.mbr.Center().Y, b.mbr.Center().Y)
		})
		for j := 0; j < len(run); j += m {
			k := j + m
			if k > len(run) {
				k = len(run)
			}
			parent := &node{children: append([]*node(nil), run[j:k]...)}
			parent.recomputeMBR()
			parents = append(parents, parent)
		}
	}
	return parents
}

// BuildRStar builds the tree by repeated R* insertion (the paper's
// dynamic R*-tree competitor).
func BuildRStar(d *spatial.Dataset, opts Options) *Index {
	ix := New(opts)
	for _, e := range d.Entries {
		ix.Insert(e)
	}
	return ix
}

// Window runs the filtering step of a window query.
func (ix *Index) Window(w geom.Rect, fn func(e spatial.Entry)) {
	if !w.Valid() || ix.size == 0 {
		return
	}
	ix.window(ix.root, w, fn)
}

func (ix *Index) window(n *node, w geom.Rect, fn func(spatial.Entry)) {
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].Rect.Intersects(w) {
				fn(n.entries[i])
			}
		}
		return
	}
	for _, c := range n.children {
		if c.mbr.Intersects(w) {
			ix.window(c, w, fn)
		}
	}
}

// WindowIDs collects result IDs into buf.
func (ix *Index) WindowIDs(w geom.Rect, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Window(w, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// WindowCount returns the number of MBRs intersecting w.
func (ix *Index) WindowCount(w geom.Rect) int {
	n := 0
	ix.Window(w, func(spatial.Entry) { n++ })
	return n
}

// Disk runs the filtering step of a disk query, pruning subtrees by
// MBR-to-center distance.
func (ix *Index) Disk(center geom.Point, radius float64, fn func(e spatial.Entry)) {
	if radius < 0 || ix.size == 0 {
		return
	}
	r2 := radius * radius
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			for i := range n.entries {
				if n.entries[i].Rect.DistSqToPoint(center) <= r2 {
					fn(n.entries[i])
				}
			}
			return
		}
		for _, c := range n.children {
			if c.mbr.DistSqToPoint(center) <= r2 {
				walk(c)
			}
		}
	}
	walk(ix.root)
}

// DiskIDs collects disk query result IDs into buf.
func (ix *Index) DiskIDs(center geom.Point, radius float64, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Disk(center, radius, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// DiskCount returns the number of MBRs intersecting the disk.
func (ix *Index) DiskCount(center geom.Point, radius float64) int {
	n := 0
	ix.Disk(center, radius, func(spatial.Entry) { n++ })
	return n
}

// Validate checks the structural invariants: tight MBRs, fanout bounds
// and uniform leaf depth. Used by tests.
func (ix *Index) Validate() error {
	return ix.validate(ix.root, 1, ix.height)
}

func (ix *Index) validate(n *node, depth, height int) error {
	if n.leaf != (depth == height) {
		return errf("leaf at depth %d of height %d", depth, height)
	}
	// STR packing legitimately leaves remainder nodes underfull, so only
	// emptiness is a structural violation for non-root nodes.
	if n != ix.root && n.count() == 0 {
		return errf("empty non-root node")
	}
	if n.count() > ix.opts.Fanout {
		return errf("overfull node: %d > %d", n.count(), ix.opts.Fanout)
	}
	want := *n
	want.recomputeMBR()
	if n.count() > 0 && want.mbr != n.mbr {
		return errf("loose mbr: have %v, want %v", n.mbr, want.mbr)
	}
	if !n.leaf {
		for _, c := range n.children {
			if err := ix.validate(c, depth+1, height); err != nil {
				return err
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("rtree: "+format, args...)
}
