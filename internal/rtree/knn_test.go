package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func bruteKNN(entries []spatial.Entry, q geom.Point, k int) []float64 {
	d := make([]float64, len(entries))
	for i, e := range entries {
		d[i] = math.Sqrt(e.Rect.DistSqToPoint(q))
	}
	sort.Float64s(d)
	if k > len(d) {
		k = len(d)
	}
	return d[:k]
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(141))
	d := spatial.NewDataset(randRects(rnd, 800, 0.05))
	for _, ix := range []*Index{BulkSTR(d, Options{}), BuildRStar(d, Options{})} {
		for trial := 0; trial < 50; trial++ {
			q := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
			k := 1 + rnd.Intn(25)
			got := ix.KNN(q, k)
			want := bruteKNN(d.Entries, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d", k, len(got))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-12 {
					t.Fatalf("k=%d result %d: %v want %v", k, i, got[i].Dist, want[i])
				}
				if i > 0 && got[i].Dist < got[i-1].Dist {
					t.Fatal("not ascending")
				}
			}
		}
	}
}

func TestKNNEdges(t *testing.T) {
	empty := New(Options{})
	if empty.KNN(geom.Point{}, 5) != nil {
		t.Error("empty tree should return nil")
	}
	rnd := rand.New(rand.NewSource(142))
	d := spatial.NewDataset(randRects(rnd, 10, 0.05))
	ix := BulkSTR(d, Options{})
	if ix.KNN(geom.Point{}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.KNN(geom.Point{X: 0.5, Y: 0.5}, 50); len(got) != 10 {
		t.Errorf("k>n returned %d", len(got))
	}
}
