package rtree

import (
	"cmp"
	"slices"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Insert adds one object using the R*-tree insertion algorithm: subtree
// choice by overlap/area enlargement, forced reinsertion on the first
// overflow of a level, and the R* margin-driven split otherwise.
func (ix *Index) Insert(e spatial.Entry) {
	ix.reinserting = false
	ix.insertAtDepth(entryItem{rect: e.Rect, entry: e}, ix.height)
	ix.size++
}

// entryItem abstracts over "object entry" (into leaves) and "orphaned
// subtree" (re-inserted into its original level) so reinsertion can share
// one code path. For subtree items, level records the subtree root's
// height above the leaf level (0 = leaf).
type entryItem struct {
	rect  geom.Rect
	entry spatial.Entry // valid when child == nil
	child *node
	level int
}

// insertAtDepth places the item at the given depth (height = leaf depth).
func (ix *Index) insertAtDepth(item entryItem, depth int) {
	split := ix.insertRec(ix.root, item, 1, depth)
	if split != nil {
		// Root overflow: grow the tree by one level.
		old := ix.root
		ix.root = &node{children: []*node{old, split}}
		ix.root.recomputeMBR()
		ix.height++
	}
}

// insertRec descends to the target depth, inserts, and handles overflow.
// It returns a new sibling if the visited node was split.
func (ix *Index) insertRec(n *node, item entryItem, depth, target int) *node {
	if depth == target {
		if item.child != nil {
			n.children = append(n.children, item.child)
		} else {
			n.entries = append(n.entries, item.entry)
		}
		n.mbr = nodeUnion(n, item.rect)
		if n.count() > ix.opts.Fanout {
			return ix.overflow(n, depth)
		}
		return nil
	}
	c := ix.chooseSubtree(n, item.rect)
	split := ix.insertRec(c, item, depth+1, target)
	if split != nil {
		n.children = append(n.children, split)
	}
	// Recompute rather than union: forced reinsertion below may have
	// shrunk descendants, and unions can only grow.
	n.recomputeMBR()
	if split != nil && n.count() > ix.opts.Fanout {
		return ix.overflow(n, depth)
	}
	return nil
}

func nodeUnion(n *node, r geom.Rect) geom.Rect {
	if n.count() == 1 {
		return r
	}
	return n.mbr.Union(r)
}

// chooseSubtree implements the R* descent rule: minimum overlap
// enlargement when the children are leaves, minimum area enlargement
// otherwise; ties broken by smaller area.
func (ix *Index) chooseSubtree(n *node, r geom.Rect) *node {
	children := n.children
	leafLevel := children[0].leaf

	best := children[0]
	bestOverlap, bestEnlarge, bestArea := 0.0, 0.0, 0.0
	for i, c := range children {
		union := c.mbr.Union(r)
		enlarge := union.Area() - c.mbr.Area()
		area := c.mbr.Area()
		overlap := 0.0
		if leafLevel {
			// Overlap enlargement of c against its siblings.
			for j, s := range children {
				if j == i {
					continue
				}
				before := intersectArea(c.mbr, s.mbr)
				after := intersectArea(union, s.mbr)
				overlap += after - before
			}
		}
		if i == 0 || better(leafLevel, overlap, enlarge, area, bestOverlap, bestEnlarge, bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = c, overlap, enlarge, area
		}
	}
	return best
}

func intersectArea(a, b geom.Rect) float64 {
	i := a.Intersection(b)
	if !i.Valid() {
		return 0
	}
	return i.Area()
}

// better reports whether the candidate metrics beat the incumbent.
func better(leafLevel bool, overlap, enlarge, area, bOverlap, bEnlarge, bArea float64) bool {
	if leafLevel {
		if overlap != bOverlap {
			return overlap < bOverlap
		}
	}
	if enlarge != bEnlarge {
		return enlarge < bEnlarge
	}
	return area < bArea
}

// reinsertFraction is the R* recommendation: reinsert the 30% of entries
// farthest from the node's center on first overflow of a level.
const reinsertFraction = 0.3

// overflow resolves an overfull node: forced reinsertion once per insert
// pass (and never for the root), a split otherwise. Returns the new
// sibling when splitting.
func (ix *Index) overflow(n *node, depth int) *node {
	if !ix.reinserting && n != ix.root {
		ix.reinserting = true
		ix.forcedReinsert(n, depth)
		return nil
	}
	return ix.split(n)
}

// forcedReinsert removes the entries farthest from the node center and
// re-inserts them from the top, which lets poorly placed entries migrate
// to better subtrees.
func (ix *Index) forcedReinsert(n *node, depth int) {
	center := n.mbr.Center()
	k := int(reinsertFraction * float64(n.count()))
	if k < 1 {
		k = 1
	}
	if n.leaf {
		slices.SortFunc(n.entries, func(a, b spatial.Entry) int {
			return cmp.Compare(b.Rect.Center().DistSq(center), a.Rect.Center().DistSq(center))
		})
		orphans := append([]spatial.Entry(nil), n.entries[:k]...)
		n.entries = n.entries[k:]
		n.recomputeMBR()
		for _, e := range orphans {
			ix.insertAtDepth(entryItem{rect: e.Rect, entry: e}, ix.height)
		}
		return
	}
	slices.SortFunc(n.children, func(a, b *node) int {
		return cmp.Compare(b.mbr.Center().DistSq(center), a.mbr.Center().DistSq(center))
	})
	orphans := append([]*node(nil), n.children[:k]...)
	n.children = n.children[k:]
	n.recomputeMBR()
	// Orphaned subtrees must return to their original level. Root splits
	// during reinsertion shift absolute depths, so the level is tracked
	// as height above the leaves and re-anchored per insertion.
	above := ix.height - depth
	for _, c := range orphans {
		ix.insertAtDepth(entryItem{rect: c.mbr, child: c}, ix.height-above)
	}
}

// splitItem is a uniform view over leaf entries and children for the R*
// split algorithm.
type splitItem struct {
	rect  geom.Rect
	entry spatial.Entry
	child *node
}

// split performs the R* topological split, mutating n into the left group
// and returning the right group as a new node.
func (ix *Index) split(n *node) *node {
	items := make([]splitItem, 0, n.count())
	if n.leaf {
		for _, e := range n.entries {
			items = append(items, splitItem{rect: e.Rect, entry: e})
		}
	} else {
		for _, c := range n.children {
			items = append(items, splitItem{rect: c.mbr, child: c})
		}
	}
	m := ix.minFill
	total := len(items)

	// Choose the split axis: the one whose distributions have the
	// smallest total margin.
	bestAxis, bestMargin := 0, 0.0
	for axis := 0; axis < 2; axis++ {
		sortItems(items, axis)
		margin := 0.0
		for k := m; k <= total-m; k++ {
			l, r := groupMBRs(items, k)
			margin += l.Margin() + r.Margin()
		}
		if axis == 0 || margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	sortItems(items, bestAxis)

	// Choose the distribution on that axis: minimum overlap, then
	// minimum combined area.
	bestK, bestOverlap, bestArea := m, 0.0, 0.0
	for k := m; k <= total-m; k++ {
		l, r := groupMBRs(items, k)
		overlap := intersectArea(l, r)
		area := l.Area() + r.Area()
		if k == m || overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}

	right := &node{leaf: n.leaf}
	if n.leaf {
		leftEntries := make([]spatial.Entry, 0, bestK)
		rightEntries := make([]spatial.Entry, 0, total-bestK)
		for i, it := range items {
			if i < bestK {
				leftEntries = append(leftEntries, it.entry)
			} else {
				rightEntries = append(rightEntries, it.entry)
			}
		}
		n.entries = leftEntries
		right.entries = rightEntries
	} else {
		leftKids := make([]*node, 0, bestK)
		rightKids := make([]*node, 0, total-bestK)
		for i, it := range items {
			if i < bestK {
				leftKids = append(leftKids, it.child)
			} else {
				rightKids = append(rightKids, it.child)
			}
		}
		n.children = leftKids
		right.children = rightKids
	}
	n.recomputeMBR()
	right.recomputeMBR()
	return right
}

// sortItems orders items by (lower, upper) on the given axis, the order
// the R* split enumerates distributions in.
func sortItems(items []splitItem, axis int) {
	slices.SortFunc(items, func(x, y splitItem) int {
		a, b := x.rect, y.rect
		if axis == 0 {
			if c := cmp.Compare(a.MinX, b.MinX); c != 0 {
				return c
			}
			return cmp.Compare(a.MaxX, b.MaxX)
		}
		if c := cmp.Compare(a.MinY, b.MinY); c != 0 {
			return c
		}
		return cmp.Compare(a.MaxY, b.MaxY)
	})
}

// groupMBRs returns the bounding rects of items[:k] and items[k:].
func groupMBRs(items []splitItem, k int) (geom.Rect, geom.Rect) {
	l := items[0].rect
	for _, it := range items[1:k] {
		l = l.Union(it.rect)
	}
	r := items[k].rect
	for _, it := range items[k+1:] {
		r = r.Union(it.rect)
	}
	return l, r
}
