// Package distsim simulates a distributed spatial analytics engine of the
// GeoSpark/SpatialHadoop family, standing in for the paper's Figure 12
// comparison (GeoSpark itself needs a Spark runtime that is out of scope
// here).
//
// The simulation reproduces the two costs that dominate such engines at
// the paper's data scale and that its Section VII-D measurement isolates:
//
//   - per-job driver overhead: every query is a job that must be planned
//     and dispatched (Spark job scheduling, stage setup);
//   - per-task overheads: the query and each partition's results are
//     serialized and deserialized between driver and executors (real
//     encoding/gob round trips over in-process pipes), plus a task-launch
//     latency per executor task.
//
// Inside each executor, queries run against a local STR R-tree — the
// best-performing GeoSpark configuration per the paper. With all
// overheads set to zero the cluster degenerates to a parallel R-tree
// forest, which the tests exploit for correctness checking.
package distsim

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"slices"
	"sync"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/rtree"
	"github.com/twolayer/twolayer/internal/spatial"
)

// LocalIndex selects the index executors use for their partition.
type LocalIndex int

const (
	// LocalRTree gives executors STR R-trees, the best-performing
	// GeoSpark configuration per the paper.
	LocalRTree LocalIndex = iota
	// LocalTwoLayer gives executors two-layer grids — the paper's stated
	// future work of applying its scheme inside distributed systems.
	LocalTwoLayer
)

// Options configure the simulated cluster.
type Options struct {
	// Workers is the number of executors (default 4).
	Workers int
	// JobOverhead is the fixed driver-side cost per query job
	// (default 40ms, a conservative Spark job-scheduling figure).
	JobOverhead time.Duration
	// TaskOverhead is the launch latency per executor task
	// (default 4ms).
	TaskOverhead time.Duration
	// Fanout is the executor-local R-tree fanout (default 16).
	Fanout int
	// Local selects the executor-local index (default LocalRTree).
	Local LocalIndex
	// GridSize is the executor-local grid granularity when Local is
	// LocalTwoLayer (default: occupancy-scaled).
	GridSize int
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.JobOverhead == 0 {
		o.JobOverhead = 40 * time.Millisecond
	}
	if o.TaskOverhead == 0 {
		o.TaskOverhead = 4 * time.Millisecond
	}
	if o.Fanout == 0 {
		o.Fanout = rtree.DefaultFanout
	}
	return o
}

// NoOverhead returns options with all simulated latencies disabled, for
// correctness tests.
func NoOverhead(workers int) Options {
	return Options{Workers: workers, JobOverhead: -1, TaskOverhead: -1}
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// task is the unit of work shipped to an executor.
type task struct {
	Query geom.Rect
}

// taskResult is the serialized executor answer.
type taskResult struct {
	IDs []spatial.ID
}

// localIndex is what an executor needs from its partition index; both
// the STR R-tree and the two-layer grid satisfy it.
type localIndex interface {
	Window(w geom.Rect, fn func(e spatial.Entry))
	Len() int
}

// executor owns one data partition with a local index, mirroring a
// GeoSpark executor holding an indexed RDD partition.
type executor struct {
	bounds geom.Rect
	local  localIndex
	in     chan []byte
	out    chan []byte
}

// Cluster is the simulated engine: a driver plus Workers executors.
type Cluster struct {
	opts  Options
	execs []*executor
	wg    sync.WaitGroup
}

// NewCluster partitions the dataset across executors by object center
// (each object lives in exactly one partition, so results need no
// deduplication) and builds a local STR R-tree per executor.
func NewCluster(d *spatial.Dataset, opts Options) *Cluster {
	opts = opts.withDefaults()
	c := &Cluster{opts: opts}

	// Partition the space into vertical stripes with equal object counts
	// (a simple equi-depth spatial partitioning).
	parts := make([][]spatial.Entry, opts.Workers)
	if d.Len() > 0 {
		sorted := make([]spatial.Entry, len(d.Entries))
		copy(sorted, d.Entries)
		sortByCenterX(sorted)
		per := (len(sorted) + opts.Workers - 1) / opts.Workers
		for w := 0; w < opts.Workers; w++ {
			lo := w * per
			if lo >= len(sorted) {
				break
			}
			hi := lo + per
			if hi > len(sorted) {
				hi = len(sorted)
			}
			parts[w] = sorted[lo:hi]
		}
	}

	for w := 0; w < opts.Workers; w++ {
		entries := parts[w]
		local := &spatial.Dataset{Entries: renumber(entries)}
		ex := &executor{
			local: buildLocal(local, opts),
			in:    make(chan []byte, 1),
			out:   make(chan []byte, 1),
		}
		ex.bounds = partitionBounds(entries)
		// Local trees carry partition-local IDs; map back via closure.
		ids := make([]spatial.ID, len(entries))
		for i, e := range entries {
			ids[i] = e.ID
		}
		c.execs = append(c.execs, ex)
		c.wg.Add(1)
		go c.runExecutor(ex, ids)
	}
	return c
}

// buildLocal constructs the executor-local index.
func buildLocal(d *spatial.Dataset, opts Options) localIndex {
	if opts.Local == LocalTwoLayer {
		g := opts.GridSize
		if g == 0 {
			g = 64
			for g*g < d.Len() && g < 2048 {
				g *= 2
			}
		}
		return core.Build(d, core.Options{NX: g, NY: g})
	}
	return rtree.BulkSTR(d, rtree.Options{Fanout: opts.Fanout})
}

func sortByCenterX(entries []spatial.Entry) {
	slices.SortFunc(entries, func(a, b spatial.Entry) int {
		return cmp.Compare(a.Rect.Center().X, b.Rect.Center().X)
	})
}

func renumber(entries []spatial.Entry) []spatial.Entry {
	out := make([]spatial.Entry, len(entries))
	for i, e := range entries {
		out[i] = spatial.Entry{Rect: e.Rect, ID: spatial.ID(i)}
	}
	return out
}

func partitionBounds(entries []spatial.Entry) geom.Rect {
	if len(entries) == 0 {
		return geom.Rect{}
	}
	b := entries[0].Rect
	for _, e := range entries[1:] {
		b = b.Union(e.Rect)
	}
	return b
}

// runExecutor is the executor loop: decode task, query local index,
// encode results.
func (c *Cluster) runExecutor(ex *executor, globalIDs []spatial.ID) {
	defer c.wg.Done()
	for msg := range ex.in {
		sleep(c.opts.TaskOverhead)
		var t task
		if err := gob.NewDecoder(bytes.NewReader(msg)).Decode(&t); err != nil {
			panic(fmt.Sprintf("distsim: task decode: %v", err))
		}
		var res taskResult
		ex.local.Window(t.Query, func(e spatial.Entry) {
			res.IDs = append(res.IDs, globalIDs[e.ID])
		})
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&res); err != nil {
			panic(fmt.Sprintf("distsim: result encode: %v", err))
		}
		ex.out <- buf.Bytes()
	}
}

// Window runs one window query end to end through the simulated engine
// and returns the matching global object IDs.
func (c *Cluster) Window(w geom.Rect) []spatial.ID {
	sleep(c.opts.JobOverhead)

	// Serialize and broadcast the task to executors whose partition can
	// contribute (partition pruning on data bounds, as Spark does on
	// partition metadata).
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(task{Query: w}); err != nil {
		panic(fmt.Sprintf("distsim: task encode: %v", err))
	}
	msg := buf.Bytes()
	var hit []*executor
	for _, ex := range c.execs {
		if ex.local.Len() > 0 && ex.bounds.Intersects(w) {
			ex.in <- msg
			hit = append(hit, ex)
		}
	}
	// Collect and deserialize per-task results.
	var out []spatial.ID
	for _, ex := range hit {
		raw := <-ex.out
		var res taskResult
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&res); err != nil {
			panic(fmt.Sprintf("distsim: result decode: %v", err))
		}
		out = append(out, res.IDs...)
	}
	return out
}

// WindowCount returns the result cardinality of one query job.
func (c *Cluster) WindowCount(w geom.Rect) int { return len(c.Window(w)) }

// Close shuts the executors down.
func (c *Cluster) Close() {
	for _, ex := range c.execs {
		close(ex.in)
	}
	c.wg.Wait()
}

// Workers returns the number of executors.
func (c *Cluster) Workers() int { return len(c.execs) }
