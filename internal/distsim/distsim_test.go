package distsim

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/twolayer/twolayer/internal/datagen"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestWindowMatchesBruteForce: with overheads disabled, the cluster must
// be a correct (if elaborate) window-query engine.
func TestWindowMatchesBruteForce(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 2000, Area: 1e-6, Seed: 17})
	for _, workers := range []int{1, 3, 8} {
		c := NewCluster(d, NoOverhead(workers))
		rnd := rand.New(rand.NewSource(18))
		for q := 0; q < 50; q++ {
			x, y := rnd.Float64(), rnd.Float64()
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1}
			got := c.Window(w)
			want := spatial.BruteWindow(d.Entries, w)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("workers=%d: got %d, want %d", workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: result %d = %d, want %d", workers, i, got[i], want[i])
				}
			}
		}
		c.Close()
	}
}

// TestNoDuplicateResults: center-based partitioning stores each object
// once, so no result may repeat.
func TestNoDuplicateResults(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 1000, Area: 1e-4, Seed: 19})
	c := NewCluster(d, NoOverhead(4))
	defer c.Close()
	got := c.Window(geom.Rect{MaxX: 1, MaxY: 1})
	seen := map[spatial.ID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate %d", id)
		}
		seen[id] = true
	}
	if len(got) != d.Len() {
		t.Fatalf("full-space query returned %d of %d", len(got), d.Len())
	}
}

// TestJobOverheadDominates: the simulated engine must be slower per query
// than the raw work requires — the Figure 12 effect.
func TestJobOverheadDominates(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 1000, Area: 1e-6, Seed: 20})
	c := NewCluster(d, Options{Workers: 2, JobOverhead: 20 * time.Millisecond, TaskOverhead: time.Millisecond})
	defer c.Close()
	start := time.Now()
	c.WindowCount(geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5})
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Errorf("query finished in %v, before the simulated job overhead", el)
	}
}

// TestEmptyDataset: a cluster over nothing answers empty.
func TestEmptyDataset(t *testing.T) {
	c := NewCluster(&spatial.Dataset{}, NoOverhead(3))
	defer c.Close()
	if n := c.WindowCount(geom.Rect{MaxX: 1, MaxY: 1}); n != 0 {
		t.Errorf("empty cluster returned %d", n)
	}
	if c.Workers() != 3 {
		t.Errorf("Workers = %d", c.Workers())
	}
}

// TestTwoLayerExecutors: the future-work configuration (two-layer grids
// inside the executors) answers identically to R-tree executors.
func TestTwoLayerExecutors(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 2000, Area: 1e-6, Seed: 22})
	opts := NoOverhead(4)
	opts.Local = LocalTwoLayer
	c := NewCluster(d, opts)
	defer c.Close()
	ref := NewCluster(d, NoOverhead(4))
	defer ref.Close()
	rnd := rand.New(rand.NewSource(23))
	for q := 0; q < 40; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1}
		got := c.Window(w)
		want := ref.Window(w)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d results", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: result %d differs", q, i)
			}
		}
	}
}

// TestPartitionPruning: a query missing every partition touches no
// executor and still answers.
func TestPartitionPruning(t *testing.T) {
	d := datagen.Dataset(datagen.Spec{N: 100, Area: 1e-6, Seed: 21})
	c := NewCluster(d, NoOverhead(4))
	defer c.Close()
	if n := c.WindowCount(geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}); n != 0 {
		t.Errorf("out-of-space query returned %d", n)
	}
}
