package quadtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func randRects(rnd *rand.Rand, n int, maxSide float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		w := rnd.Float64() * maxSide
		h := rnd.Float64() * maxSide
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
		// Keep objects inside the unit space; the quad-tree partitions a
		// fixed region.
		if r.MaxX > 1 {
			r.MaxX = 1
		}
		if r.MaxY > 1 {
			r.MaxY = 1
		}
		rects[i] = r
	}
	return rects
}

func sameIDs(t *testing.T, got, want []spatial.ID, context string) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %d, want %d", context, i, got[i], want[i])
		}
	}
}

func noDuplicates(t *testing.T, ids []spatial.ID, context string) {
	t.Helper()
	seen := make(map[spatial.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("%s: duplicate result %d", context, id)
		}
		seen[id] = true
	}
}

func unitSpace() geom.Rect { return geom.Rect{MaxX: 1, MaxY: 1} }

// TestWindowAllModes: every variant must agree with brute force without
// duplicates, across capacities that force deep splits.
func TestWindowAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(91))
	for _, mode := range []Mode{RefPointDedup, TwoLayer, MXCIF} {
		for _, capacity := range []int{8, 64, 1000} {
			d := spatial.NewDataset(randRects(rnd, 800, 0.1))
			ix := Build(d, Options{Space: unitSpace(), Capacity: capacity, MaxDepth: 10, Mode: mode})
			for q := 0; q < 60; q++ {
				x, y := rnd.Float64(), rnd.Float64()
				w := geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.3}
				got := ix.WindowIDs(w, nil)
				noDuplicates(t, got, mode.String())
				sameIDs(t, got, spatial.BruteWindow(d.Entries, w), mode.String())
			}
		}
	}
}

// TestDiskAllModes: disk queries across variants.
func TestDiskAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(92))
	for _, mode := range []Mode{RefPointDedup, TwoLayer, MXCIF} {
		d := spatial.NewDataset(randRects(rnd, 600, 0.08))
		ix := Build(d, Options{Space: unitSpace(), Capacity: 32, MaxDepth: 8, Mode: mode})
		for q := 0; q < 60; q++ {
			c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
			radius := rnd.Float64() * 0.25
			got := ix.DiskIDs(c, radius, nil)
			noDuplicates(t, got, mode.String())
			sameIDs(t, got, spatial.BruteDisk(d.Entries, c, radius), "disk "+mode.String())
		}
	}
}

// TestSplitRespectsCapacityAndDepth: leaves beyond capacity only at max
// depth; the tree never exceeds MaxDepth.
func TestSplitRespectsCapacityAndDepth(t *testing.T) {
	rnd := rand.New(rand.NewSource(93))
	d := spatial.NewDataset(randRects(rnd, 3000, 0.01))
	ix := Build(d, Options{Space: unitSpace(), Capacity: 50, MaxDepth: 6, Mode: RefPointDedup})
	if got := ix.Depth(); got > 6 {
		t.Errorf("depth %d exceeds max 6", got)
	}
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.children == nil {
			if n.leafCount() > 50 && depth < 6 {
				t.Errorf("leaf at depth %d holds %d > capacity", depth, n.leafCount())
			}
			return
		}
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(ix.root, 1)
}

// TestMXCIFNoReplication: MXCIF stores each object exactly once.
func TestMXCIFNoReplication(t *testing.T) {
	rnd := rand.New(rand.NewSource(94))
	d := spatial.NewDataset(randRects(rnd, 1000, 0.2))
	ix := Build(d, Options{Space: unitSpace(), Mode: MXCIF, MaxDepth: 8})
	if got := ix.StoredEntries(); got != d.Len() {
		t.Errorf("MXCIF stores %d entries for %d objects", got, d.Len())
	}
	// Every stored object must be fully contained in its node's bounds
	// (or at the root).
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if n != ix.root && !n.bounds.Contains(e.Rect) {
				t.Fatalf("object %d at node %v not contained", e.ID, n.bounds)
			}
		}
		if n.children != nil {
			for _, c := range n.children {
				walk(c)
			}
		}
	}
	walk(ix.root)
}

// TestReplicationHappens: the replicating variants store more entries
// than objects when objects span quadrant borders.
func TestReplicationHappens(t *testing.T) {
	rnd := rand.New(rand.NewSource(95))
	d := spatial.NewDataset(randRects(rnd, 2000, 0.1))
	ix := Build(d, Options{Space: unitSpace(), Capacity: 50, MaxDepth: 8, Mode: RefPointDedup})
	if got := ix.StoredEntries(); got <= d.Len() {
		t.Errorf("replicating tree stores %d entries for %d objects", got, d.Len())
	}
}

// TestBorderObjectOwnership: an object exactly on a quadrant border must
// be reported exactly once (half-open assignment).
func TestBorderObjectOwnership(t *testing.T) {
	// Space [0,1]^2, capacity 1 forces an immediate split at 0.5.
	rects := []geom.Rect{
		{MinX: 0.5, MinY: 0.2, MaxX: 0.6, MaxY: 0.3}, // MinX on the split line
		{MinX: 0.2, MinY: 0.5, MaxX: 0.3, MaxY: 0.6}, // MinY on the split line
		{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}, // MaxX/MaxY on the line
		{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}, // degenerate point on the corner
	}
	d := spatial.NewDataset(rects)
	for _, mode := range []Mode{RefPointDedup, TwoLayer} {
		ix := Build(d, Options{Space: unitSpace(), Capacity: 1, MaxDepth: 4, Mode: mode})
		w := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
		got := ix.WindowIDs(w, nil)
		noDuplicates(t, got, mode.String())
		sameIDs(t, got, []spatial.ID{0, 1, 2, 3}, mode.String())
	}
}

// TestDeleteAllModes: deletions remove every replica and keep queries
// exact, for all three variants.
func TestDeleteAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(97))
	for _, mode := range []Mode{RefPointDedup, TwoLayer, MXCIF} {
		rects := randRects(rnd, 800, 0.1)
		d := spatial.NewDataset(rects)
		ix := Build(d, Options{Space: unitSpace(), Capacity: 32, MaxDepth: 8, Mode: mode})
		var remaining []spatial.Entry
		for i, r := range rects {
			if i%3 == 0 {
				if !ix.Delete(spatial.ID(i), r) {
					t.Fatalf("%v: Delete(%d) not found", mode, i)
				}
			} else {
				remaining = append(remaining, spatial.Entry{Rect: r, ID: spatial.ID(i)})
			}
		}
		if ix.Len() != len(remaining) {
			t.Fatalf("%v: Len = %d, want %d", mode, ix.Len(), len(remaining))
		}
		for q := 0; q < 40; q++ {
			x, y := rnd.Float64(), rnd.Float64()
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
			got := ix.WindowIDs(w, nil)
			noDuplicates(t, got, mode.String())
			sameIDs(t, got, spatial.BruteWindow(remaining, w), mode.String()+" after delete")
		}
		if ix.Delete(99999, rects[0]) {
			t.Fatalf("%v: deleting absent id succeeded", mode)
		}
	}
}

// TestEmptyAndMissQueries: no results outside the space or on an empty
// tree.
func TestEmptyAndMissQueries(t *testing.T) {
	ix := New(Options{})
	if n := ix.WindowCount(geom.Rect{MaxX: 1, MaxY: 1}); n != 0 {
		t.Errorf("empty tree returned %d", n)
	}
	rnd := rand.New(rand.NewSource(96))
	d := spatial.NewDataset(randRects(rnd, 100, 0.05))
	full := Build(d, Options{Space: unitSpace()})
	if n := full.WindowCount(geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}); n != 0 {
		t.Errorf("out-of-space window returned %d", n)
	}
	if n := full.DiskCount(geom.Point{X: 5, Y: 5}, 0.1); n != 0 {
		t.Errorf("out-of-space disk returned %d", n)
	}
}

// TestModeString covers the Stringer.
func TestModeString(t *testing.T) {
	if RefPointDedup.String() != "quad-refpoint" || TwoLayer.String() != "quad-2layer" ||
		MXCIF.String() != "mxcif" || Mode(9).String() != "quad(?)" {
		t.Error("Mode.String wrong")
	}
}
