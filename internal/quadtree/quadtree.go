// Package quadtree implements the quad-tree baselines of the paper:
//
//   - a replicating quad-tree (objects copied into every quadrant they
//     intersect) using the reference point technique for duplicate
//     elimination — the paper's SOP competitor,
//   - the same quad-tree equipped with the paper's two-layer secondary
//     partitioning instead of deduplication (Table V shows any SOP index
//     can benefit),
//   - the MXCIF quad-tree of Kedem, which stores each object in the
//     lowest quadrant that fully contains it (no replication, but large
//     objects pile up near the root).
//
// Quadrants are half-open (an object touching only the shared border of
// two quadrants is assigned to the greater one), which makes duplicate
// ownership exact.
package quadtree

import (
	"github.com/twolayer/twolayer/internal/dedup"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Mode selects the quad-tree variant.
type Mode int

const (
	// RefPointDedup replicates objects and eliminates duplicate results
	// with the reference point technique.
	RefPointDedup Mode = iota
	// TwoLayer replicates objects and partitions each leaf into the four
	// classes of the paper, avoiding duplicates instead of eliminating
	// them.
	TwoLayer
	// MXCIF stores each object once, in the lowest quadrant covering it.
	MXCIF
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case RefPointDedup:
		return "quad-refpoint"
	case TwoLayer:
		return "quad-2layer"
	case MXCIF:
		return "mxcif"
	}
	return "quad(?)"
}

// Options configure the tree. The defaults (capacity 1000, max depth 12)
// are the paper's tuned values.
type Options struct {
	Space    geom.Rect
	Capacity int
	MaxDepth int
	Mode     Mode
}

func (o Options) withDefaults() Options {
	if o.Space == (geom.Rect{}) {
		o.Space = geom.Rect{MaxX: 1, MaxY: 1}
	}
	if o.Capacity == 0 {
		o.Capacity = 1000
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 12
	}
	return o
}

// node is one quadrant. Replicating variants store entries at leaves
// only; MXCIF stores entries at any node.
type node struct {
	bounds   geom.Rect
	children *[4]*node
	entries  []spatial.Entry
	classes  *[4][]spatial.Entry // TwoLayer leaves only
}

// Index is a quad-tree over non-point objects.
type Index struct {
	opts Options
	root *node
	size int
}

// New returns an empty quad-tree.
func New(opts Options) *Index {
	opts = opts.withDefaults()
	return &Index{opts: opts, root: &node{bounds: opts.Space}}
}

// Build constructs the tree over a dataset.
func Build(d *spatial.Dataset, opts Options) *Index {
	if opts.Space == (geom.Rect{}) {
		opts.Space = d.MBR()
	}
	ix := New(opts)
	for _, e := range d.Entries {
		ix.Insert(e)
	}
	return ix
}

// Len returns the number of distinct objects.
func (ix *Index) Len() int { return ix.size }

// Mode returns the configured variant.
func (ix *Index) Mode() Mode { return ix.opts.Mode }

// halfOpenIntersects reports whether rect r overlaps quadrant q under the
// half-open convention: quadrants own their minimum borders; the maximum
// borders belong to the next quadrant, except at the edge of the indexed
// space where the quadrant is closed.
func (ix *Index) halfOpenIntersects(r, q geom.Rect) bool {
	if r.MaxX < q.MinX || r.MaxY < q.MinY {
		return false
	}
	if r.MinX >= q.MaxX && q.MaxX != ix.opts.Space.MaxX {
		return false
	}
	if r.MinY >= q.MaxY && q.MaxY != ix.opts.Space.MaxY {
		return false
	}
	return true
}

// containsHalfOpen reports whether point p lies in quadrant q under the
// same convention.
func (ix *Index) containsHalfOpen(p geom.Point, q geom.Rect) bool {
	if p.X < q.MinX || p.Y < q.MinY {
		return false
	}
	if p.X >= q.MaxX && q.MaxX != ix.opts.Space.MaxX {
		return false
	}
	if p.Y >= q.MaxY && q.MaxY != ix.opts.Space.MaxY {
		return false
	}
	return p.X <= q.MaxX && p.Y <= q.MaxY
}

// quadrants returns the four child bounds of b in the order
// (min,min), (max,min), (min,max), (max,max).
func quadrants(b geom.Rect) [4]geom.Rect {
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	return [4]geom.Rect{
		{MinX: b.MinX, MinY: b.MinY, MaxX: cx, MaxY: cy},
		{MinX: cx, MinY: b.MinY, MaxX: b.MaxX, MaxY: cy},
		{MinX: b.MinX, MinY: cy, MaxX: cx, MaxY: b.MaxY},
		{MinX: cx, MinY: cy, MaxX: b.MaxX, MaxY: b.MaxY},
	}
}

// classOf returns the two-layer class of r in a quadrant q.
func classOf(r, q geom.Rect) int {
	insideX := r.MinX >= q.MinX
	insideY := r.MinY >= q.MinY
	switch {
	case insideX && insideY:
		return 0 // A
	case insideX:
		return 1 // B
	case insideY:
		return 2 // C
	default:
		return 3 // D
	}
}

// Insert adds one object.
func (ix *Index) Insert(e spatial.Entry) {
	if ix.opts.Mode == MXCIF {
		ix.insertMXCIF(ix.root, e, 0)
	} else {
		ix.insertReplicating(ix.root, e, 0)
	}
	ix.size++
}

func (ix *Index) insertReplicating(n *node, e spatial.Entry, depth int) {
	if n.children != nil {
		for _, c := range n.children {
			if ix.halfOpenIntersects(e.Rect, c.bounds) {
				ix.insertReplicating(c, e, depth+1)
			}
		}
		return
	}
	n.addLeafEntry(e, ix.opts.Mode)
	if n.leafCount() > ix.opts.Capacity && depth < ix.opts.MaxDepth {
		ix.split(n, depth)
	}
}

func (n *node) addLeafEntry(e spatial.Entry, m Mode) {
	if m == TwoLayer {
		if n.classes == nil {
			n.classes = &[4][]spatial.Entry{}
		}
		c := classOf(e.Rect, n.bounds)
		n.classes[c] = append(n.classes[c], e)
		return
	}
	n.entries = append(n.entries, e)
}

func (n *node) leafCount() int {
	if n.classes != nil {
		return len(n.classes[0]) + len(n.classes[1]) + len(n.classes[2]) + len(n.classes[3])
	}
	return len(n.entries)
}

// split turns a leaf into an internal node, redistributing (and
// replicating) its entries into the four children.
func (ix *Index) split(n *node, depth int) {
	qs := quadrants(n.bounds)
	var kids [4]*node
	for i := range kids {
		kids[i] = &node{bounds: qs[i]}
	}
	move := func(e spatial.Entry) {
		for _, c := range kids {
			if ix.halfOpenIntersects(e.Rect, c.bounds) {
				c.addLeafEntry(e, ix.opts.Mode)
			}
		}
	}
	if n.classes != nil {
		for c := range n.classes {
			for _, e := range n.classes[c] {
				move(e)
			}
		}
		n.classes = nil
	} else {
		for _, e := range n.entries {
			move(e)
		}
		n.entries = nil
	}
	n.children = &kids
	// Cascade splits if a child is still over capacity (skewed data).
	for _, c := range kids {
		if c.leafCount() > ix.opts.Capacity && depth+1 < ix.opts.MaxDepth {
			ix.split(c, depth+1)
		}
	}
}

func (ix *Index) insertMXCIF(n *node, e spatial.Entry, depth int) {
	if depth < ix.opts.MaxDepth {
		qs := quadrants(n.bounds)
		for i, q := range qs {
			if q.Contains(e.Rect) {
				if n.children == nil {
					var kids [4]*node
					for j := range kids {
						kids[j] = &node{bounds: qs[j]}
					}
					n.children = &kids
				}
				ix.insertMXCIF(n.children[i], e, depth+1)
				return
			}
		}
	}
	// No child fully contains the object (or depth exhausted): it lives
	// here.
	n.entries = append(n.entries, e)
}

// Delete removes the object with the given id and exact MBR from every
// quadrant holding a replica, reporting whether it was found. Quadrants
// are not merged back on underflow (the usual quad-tree practice; splits
// are driven by inserts only).
func (ix *Index) Delete(id spatial.ID, r geom.Rect) bool {
	var found bool
	if ix.opts.Mode == MXCIF {
		found = ix.deleteMXCIF(ix.root, id, r, 0)
	} else {
		found = ix.deleteReplicating(ix.root, id, r)
	}
	if found {
		ix.size--
	}
	return found
}

func (ix *Index) deleteReplicating(n *node, id spatial.ID, r geom.Rect) bool {
	if n.children != nil {
		found := false
		for _, c := range n.children {
			if ix.halfOpenIntersects(r, c.bounds) {
				if ix.deleteReplicating(c, id, r) {
					found = true
				}
			}
		}
		return found
	}
	if n.classes != nil {
		c := classOf(r, n.bounds)
		return removeEntry(&n.classes[c], id, r)
	}
	return removeEntry(&n.entries, id, r)
}

func (ix *Index) deleteMXCIF(n *node, id spatial.ID, r geom.Rect, depth int) bool {
	if depth < ix.opts.MaxDepth && n.children != nil {
		for _, c := range n.children {
			if c.bounds.Contains(r) {
				return ix.deleteMXCIF(c, id, r, depth+1)
			}
		}
	}
	return removeEntry(&n.entries, id, r)
}

// removeEntry deletes the (id, rect) entry from a slice by swap-remove.
func removeEntry(entries *[]spatial.Entry, id spatial.ID, r geom.Rect) bool {
	list := *entries
	for i := range list {
		if list[i].ID == id && list[i].Rect == r {
			list[i] = list[len(list)-1]
			*entries = list[:len(list)-1]
			return true
		}
	}
	return false
}

// Depth returns the height of the tree (1 for a single leaf).
func (ix *Index) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.children == nil {
			return 1
		}
		best := 0
		for _, c := range n.children {
			if d := walk(c); d > best {
				best = d
			}
		}
		return best + 1
	}
	return walk(ix.root)
}

// StoredEntries returns the total number of stored entries, replicas
// included.
func (ix *Index) StoredEntries() int {
	n := 0
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		n += nd.leafCount()
		if nd.children != nil {
			for _, c := range nd.children {
				walk(c)
			}
		}
	}
	walk(ix.root)
	return n
}

// Window runs the filtering step of a window query, invoking fn exactly
// once per intersecting object.
func (ix *Index) Window(w geom.Rect, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	switch ix.opts.Mode {
	case MXCIF:
		ix.windowMXCIF(ix.root, w, fn)
	case TwoLayer:
		ix.windowTwoLayer(ix.root, w, fn)
	default:
		ix.windowRefPoint(ix.root, w, fn)
	}
}

// WindowIDs collects result IDs into buf.
func (ix *Index) WindowIDs(w geom.Rect, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Window(w, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// WindowCount returns the number of MBRs intersecting w.
func (ix *Index) WindowCount(w geom.Rect) int {
	n := 0
	ix.Window(w, func(spatial.Entry) { n++ })
	return n
}

func (ix *Index) windowMXCIF(n *node, w geom.Rect, fn func(spatial.Entry)) {
	if !n.bounds.Intersects(w) {
		return
	}
	for i := range n.entries {
		if n.entries[i].Rect.Intersects(w) {
			fn(n.entries[i])
		}
	}
	if n.children != nil {
		for _, c := range n.children {
			ix.windowMXCIF(c, w, fn)
		}
	}
}

func (ix *Index) windowRefPoint(n *node, w geom.Rect, fn func(spatial.Entry)) {
	if !ix.halfOpenIntersects(w, n.bounds) {
		return
	}
	if n.children != nil {
		for _, c := range n.children {
			ix.windowRefPoint(c, w, fn)
		}
		return
	}
	for i := range n.entries {
		e := &n.entries[i]
		if !e.Rect.Intersects(w) {
			continue
		}
		if ix.containsHalfOpen(dedup.RefPoint(e.Rect, w), n.bounds) {
			fn(*e)
		}
	}
}

func (ix *Index) windowTwoLayer(n *node, w geom.Rect, fn func(spatial.Entry)) {
	if !ix.halfOpenIntersects(w, n.bounds) {
		return
	}
	if n.children != nil {
		for _, c := range n.children {
			ix.windowTwoLayer(c, w, fn)
		}
		return
	}
	if n.classes == nil {
		return
	}
	scan := func(entries []spatial.Entry) {
		for i := range entries {
			if entries[i].Rect.Intersects(w) {
				fn(entries[i])
			}
		}
	}
	scan(n.classes[0]) // class A always
	if w.MinY >= n.bounds.MinY {
		scan(n.classes[1]) // class B unless the window starts above
	}
	if w.MinX >= n.bounds.MinX {
		scan(n.classes[2]) // class C unless the window starts left
	}
	if w.MinX >= n.bounds.MinX && w.MinY >= n.bounds.MinY {
		scan(n.classes[3]) // class D needs both
	}
}

// Disk evaluates a disk query the way the paper evaluates it on SOP
// baselines: a window query on the disk's MBR, reporting results whose
// quadrant lies inside the disk directly and distance-verifying the rest.
func (ix *Index) Disk(center geom.Point, radius float64, fn func(e spatial.Entry)) {
	if radius < 0 {
		return
	}
	w := geom.Disk{Center: center, Radius: radius}.MBR()
	r2 := radius * radius
	var walk func(n *node)
	walk = func(n *node) {
		if ix.opts.Mode == MXCIF {
			if !n.bounds.Intersects(w) {
				return
			}
		} else if !ix.halfOpenIntersects(w, n.bounds) {
			return
		}
		if n.children != nil {
			for _, c := range n.children {
				walk(c)
			}
			if ix.opts.Mode != MXCIF {
				return
			}
		}
		nodeInside := n.bounds.InsideDisk(center, radius)
		emit := func(e *spatial.Entry) {
			if nodeInside || e.Rect.DistSqToPoint(center) <= r2 {
				fn(*e)
			}
		}
		switch {
		case ix.opts.Mode == MXCIF:
			for i := range n.entries {
				if n.entries[i].Rect.Intersects(w) {
					emit(&n.entries[i])
				}
			}
		case ix.opts.Mode == TwoLayer:
			if n.classes == nil {
				return
			}
			scan := func(entries []spatial.Entry) {
				for i := range entries {
					if entries[i].Rect.Intersects(w) {
						emit(&entries[i])
					}
				}
			}
			scan(n.classes[0])
			if w.MinY >= n.bounds.MinY {
				scan(n.classes[1])
			}
			if w.MinX >= n.bounds.MinX {
				scan(n.classes[2])
			}
			if w.MinX >= n.bounds.MinX && w.MinY >= n.bounds.MinY {
				scan(n.classes[3])
			}
		default:
			for i := range n.entries {
				e := &n.entries[i]
				if !e.Rect.Intersects(w) {
					continue
				}
				if ix.containsHalfOpen(dedup.RefPoint(e.Rect, w), n.bounds) {
					emit(e)
				}
			}
		}
	}
	walk(ix.root)
}

// DiskIDs collects disk query result IDs into buf.
func (ix *Index) DiskIDs(center geom.Point, radius float64, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Disk(center, radius, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// DiskCount returns the number of MBRs intersecting the disk.
func (ix *Index) DiskCount(center geom.Point, radius float64) int {
	n := 0
	ix.Disk(center, radius, func(spatial.Entry) { n++ })
	return n
}
