// Package grid implements the primary space-oriented partitioning used by
// the grid-based indices in this library: a regular NxM decomposition of a
// bounding space into disjoint tiles. The package provides the coordinate
// algebra only (tile extents, point and rectangle location); index
// structures layer object storage on top.
package grid

import (
	"fmt"

	"github.com/twolayer/twolayer/internal/geom"
)

// Grid is a regular NX x NY decomposition of Space into tiles. Tiles are
// addressed by (ix, iy) with ix in [0,NX) and iy in [0,NY), or by the
// linear ID iy*NX+ix. Tile (0,0) holds the minimum corner of Space.
type Grid struct {
	Space  geom.Rect
	NX, NY int

	cellW, cellH float64
	invW, invH   float64
}

// New returns a grid over space with the given tile counts per dimension.
// It panics if nx or ny is not positive or space is degenerate, since a
// grid with no extent cannot partition anything.
func New(space geom.Rect, nx, ny int) *Grid {
	if nx <= 0 || ny <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %dx%d", nx, ny))
	}
	if !space.Valid() || space.Width() <= 0 || space.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate space %v", space))
	}
	w := space.Width() / float64(nx)
	h := space.Height() / float64(ny)
	return &Grid{
		Space: space, NX: nx, NY: ny,
		cellW: w, cellH: h,
		invW: 1 / w, invH: 1 / h,
	}
}

// NumTiles returns the total number of tiles.
func (g *Grid) NumTiles() int { return g.NX * g.NY }

// TileID returns the linear tile ID for (ix, iy).
func (g *Grid) TileID(ix, iy int) int { return iy*g.NX + ix }

// TileCoords inverts TileID.
func (g *Grid) TileCoords(id int) (ix, iy int) { return id % g.NX, id / g.NX }

// Tile returns the spatial extent of tile (ix, iy). Tiles are half-open in
// spirit (an object on a shared border is assigned to both tiles by
// intersection tests) but their extents as returned here are closed rects.
func (g *Grid) Tile(ix, iy int) geom.Rect {
	return geom.Rect{
		MinX: g.Space.MinX + float64(ix)*g.cellW,
		MinY: g.Space.MinY + float64(iy)*g.cellH,
		MaxX: g.Space.MinX + float64(ix+1)*g.cellW,
		MaxY: g.Space.MinY + float64(iy+1)*g.cellH,
	}
}

// TileMin returns the minimum corner of tile (ix, iy), which is all the
// two-layer classification needs.
func (g *Grid) TileMin(ix, iy int) geom.Point {
	return geom.Point{
		X: g.Space.MinX + float64(ix)*g.cellW,
		Y: g.Space.MinY + float64(iy)*g.cellH,
	}
}

// clamp restricts v to [0, n-1].
func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// CellOf returns the tile coordinates containing point p, clamped to the
// grid so that points on (or beyond) the maximum border map to the last
// tile, mirroring the paper's O(1) tile location.
func (g *Grid) CellOf(p geom.Point) (ix, iy int) {
	ix = clamp(int((p.X-g.Space.MinX)*g.invW), g.NX)
	iy = clamp(int((p.Y-g.Space.MinY)*g.invH), g.NY)
	return ix, iy
}

// CoverRect returns the clamped tile coordinate range [ix0,ix1]x[iy0,iy1]
// of all tiles that intersect r. The range is never empty: callers must
// first check that r intersects g.Space if r may lie outside.
func (g *Grid) CoverRect(r geom.Rect) (ix0, iy0, ix1, iy1 int) {
	ix0, iy0 = g.CellOf(geom.Point{X: r.MinX, Y: r.MinY})
	ix1, iy1 = g.CellOf(geom.Point{X: r.MaxX, Y: r.MaxY})
	return ix0, iy0, ix1, iy1
}

// CellW returns the tile width.
func (g *Grid) CellW() float64 { return g.cellW }

// CellH returns the tile height.
func (g *Grid) CellH() float64 { return g.cellH }

// InvCellW returns 1/CellW (precomputed for hot paths).
func (g *Grid) InvCellW() float64 { return g.invW }

// InvCellH returns 1/CellH.
func (g *Grid) InvCellH() float64 { return g.invH }
