package grid

import (
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
)

func unit() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} }

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero nx", func() { New(unit(), 0, 4) }},
		{"negative ny", func() { New(unit(), 4, -1) }},
		{"degenerate space", func() { New(geom.Rect{MinX: 1, MinY: 0, MaxX: 1, MaxY: 1}, 4, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestTileExtents(t *testing.T) {
	g := New(unit(), 4, 2)
	if g.NumTiles() != 8 {
		t.Fatalf("NumTiles = %d", g.NumTiles())
	}
	if got := g.Tile(0, 0); got != (geom.Rect{MinX: 0, MinY: 0, MaxX: 0.25, MaxY: 0.5}) {
		t.Errorf("Tile(0,0) = %v", got)
	}
	if got := g.Tile(3, 1); got != (geom.Rect{MinX: 0.75, MinY: 0.5, MaxX: 1, MaxY: 1}) {
		t.Errorf("Tile(3,1) = %v", got)
	}
	if g.CellW() != 0.25 || g.CellH() != 0.5 {
		t.Errorf("cell sizes %v x %v", g.CellW(), g.CellH())
	}
}

func TestTileIDRoundTrip(t *testing.T) {
	g := New(unit(), 7, 5)
	for iy := 0; iy < 5; iy++ {
		for ixx := 0; ixx < 7; ixx++ {
			id := g.TileID(ixx, iy)
			gx, gy := g.TileCoords(id)
			if gx != ixx || gy != iy {
				t.Fatalf("TileCoords(TileID(%d,%d)) = (%d,%d)", ixx, iy, gx, gy)
			}
		}
	}
}

func TestCellOf(t *testing.T) {
	g := New(unit(), 4, 4)
	tests := []struct {
		p      geom.Point
		ix, iy int
	}{
		{geom.Point{X: 0, Y: 0}, 0, 0},
		{geom.Point{X: 0.1, Y: 0.1}, 0, 0},
		{geom.Point{X: 0.25, Y: 0}, 1, 0}, // boundary goes to next tile
		{geom.Point{X: 0.999, Y: 0.999}, 3, 3},
		{geom.Point{X: 1, Y: 1}, 3, 3},  // max corner clamps to last tile
		{geom.Point{X: -1, Y: 2}, 0, 3}, // out of space clamps
	}
	for _, tc := range tests {
		gx, gy := g.CellOf(tc.p)
		if gx != tc.ix || gy != tc.iy {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", tc.p, gx, gy, tc.ix, tc.iy)
		}
	}
}

func TestCoverRect(t *testing.T) {
	g := New(unit(), 4, 4)
	tests := []struct {
		r              geom.Rect
		x0, y0, x1, y1 int
	}{
		{geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, 0, 0, 0, 0},
		{geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.6, MaxY: 0.6}, 0, 0, 2, 2},
		{geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, 0, 0, 3, 3},
		{geom.Rect{MinX: 0.25, MinY: 0.5, MaxX: 0.25, MaxY: 0.5}, 1, 2, 1, 2},
	}
	for _, tc := range tests {
		x0, y0, x1, y1 := g.CoverRect(tc.r)
		if x0 != tc.x0 || y0 != tc.y0 || x1 != tc.x1 || y1 != tc.y1 {
			t.Errorf("CoverRect(%v) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				tc.r, x0, y0, x1, y1, tc.x0, tc.y0, tc.x1, tc.y1)
		}
	}
}

// Every point of a tile's extent must map back to that tile or a direct
// boundary neighbor, and tile extents must exactly partition the space.
func TestTilePartitionInvariant(t *testing.T) {
	g := New(geom.Rect{MinX: -3, MinY: 2, MaxX: 5, MaxY: 7}, 9, 6)
	// Adjacent tiles share borders exactly.
	for iy := 0; iy < g.NY; iy++ {
		for ixx := 0; ixx+1 < g.NX; ixx++ {
			a, b := g.Tile(ixx, iy), g.Tile(ixx+1, iy)
			if a.MaxX != b.MinX {
				t.Fatalf("x seam mismatch between (%d,%d) and (%d,%d): %v vs %v", ixx, iy, ixx+1, iy, a.MaxX, b.MinX)
			}
		}
	}
	for iy := 0; iy+1 < g.NY; iy++ {
		a, b := g.Tile(0, iy), g.Tile(0, iy+1)
		if a.MaxY != b.MinY {
			t.Fatalf("y seam mismatch: %v vs %v", a.MaxY, b.MinY)
		}
	}
	// Tile interiors map back to their own coordinates.
	for iy := 0; iy < g.NY; iy++ {
		for ixx := 0; ixx < g.NX; ixx++ {
			c := g.Tile(ixx, iy).Center()
			gx, gy := g.CellOf(c)
			if gx != ixx || gy != iy {
				t.Fatalf("center of (%d,%d) maps to (%d,%d)", ixx, iy, gx, gy)
			}
		}
	}
	// First and last tiles touch the space borders exactly.
	if g.Tile(0, 0).MinX != g.Space.MinX || g.Tile(g.NX-1, 0).MaxX != g.Space.MaxX {
		t.Error("x extremes do not meet the space borders")
	}
}

func TestTileMin(t *testing.T) {
	g := New(unit(), 10, 10)
	for i := 0; i <= 10; i++ {
		p := g.TileMin(i, i)
		if p.X != g.Space.MinX+float64(i)*g.CellW() || p.Y != g.Space.MinY+float64(i)*g.CellH() {
			t.Fatalf("TileMin(%d,%d) = %v", i, i, p)
		}
	}
}
