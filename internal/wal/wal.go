// Package wal is the durability engine for live two-layer indices: a
// segmented write-ahead log of mutation batches, snapshot checkpointing
// through the core persistence format, and crash recovery that restores
// exactly the acknowledged state.
//
// The design follows the classic ARIES-style contract, reduced to what an
// MVCC index with a single-writer apply loop needs:
//
//   - Write-ahead: the apply loop's Journal hook (core.LiveOptions)
//     appends every mutation batch — tagged with the epoch it will
//     publish as — to the log before the batch is applied or any
//     submitter is acked. Depending on the sync policy the append is
//     fsynced per batch (SyncAlways), in the background (SyncInterval),
//     or left to the OS (SyncNone).
//   - Checkpointing: a checkpoint is one atomic snapshot file (the
//     core persist format, v2, whose header carries the snapshot's
//     epoch) written from an immutable published snapshot — no pause of
//     writers or readers. Segments whose every frame is at or below the
//     checkpoint epoch are pruned.
//   - Recovery: load the newest readable checkpoint, then replay the
//     log tail in epoch order, skipping frames the checkpoint already
//     covers. A torn or corrupt frame ends the log: the segment is
//     truncated at the last intact frame and later segments (which
//     would leave an epoch gap) are removed.
//
// Log layout: each segment file `wal-<firstEpoch>.seg` starts with an
// 8-byte header (magic "TLWL", version u32) followed by frames:
//
//	payloadLen u32 | crc32(payload) u32 | payload
//	payload: epoch u64 | kind u8 | body
//	  kind 1 (insert), 2 (delete): id u32 | 4xf64 MBR
//	  kind 3 (bulk): count u32, then per mutation op u8 | id u32 | 4xf64
//
// All integers and floats are little endian. A segment is named by the
// epoch of its first frame, so the covering checkpoint for a segment can
// be decided from file names alone.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/twolayer/twolayer/internal/core"
)

// SyncPolicy selects when appended frames are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs in the background every
	// Options.SyncEvery. An OS crash can lose up to that much of the
	// acknowledged tail; a process crash loses nothing (writes reach the
	// kernel before the ack).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs every batch before it is acknowledged: no
	// acknowledged mutation is lost even across power failure.
	SyncAlways
	// SyncNone never fsyncs (the OS flushes on its own schedule).
	// Survives process crashes, not machine crashes.
	SyncNone
)

// String implements fmt.Stringer ("always", "interval", "none").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy maps the flag spellings "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf(`wal: unknown fsync policy %q (want "always", "interval" or "none")`, s)
}

const (
	segMagic      = "TLWL"
	segVersion    = 1
	segHeaderSize = 8

	frameKindInsert = 1
	frameKindDelete = 2
	frameKindBulk   = 3

	// maxFramePayload bounds a decoded frame's claimed payload length; a
	// corrupt length field must not demand an arbitrary allocation.
	maxFramePayload = 64 << 20

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

func segmentName(firstEpoch uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstEpoch, segSuffix)
}

func checkpointName(epoch uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, epoch, ckptSuffix)
}

// segmentMeta is one on-disk segment file.
type segmentMeta struct {
	path  string
	first uint64 // first frame epoch (from the name)
	size  int64
}

// logStats is a point-in-time copy of the writer's counters.
type logStats struct {
	segments   int
	logBytes   int64
	appended   uint64
	appendedB  uint64
	fsyncs     uint64
	rotations  uint64
	pruned     uint64
	appendNS   int64 // cumulative wall time inside successful Appends
	syncNS     int64 // cumulative wall time inside fsync calls
	lastAppend time.Time
	failed     error // non-nil once the log is poisoned
}

// appendLog is the segmented append-only writer. All methods are safe
// for concurrent use, though in practice only the apply loop appends.
type appendLog struct {
	dir          string
	segmentBytes int64
	policy       SyncPolicy
	logger       *slog.Logger

	mu     sync.Mutex
	f      *os.File
	active segmentMeta
	sealed []segmentMeta // older segments, ascending by first epoch
	dirty  bool          // bytes written since the last fsync
	failed error         // sticky: set once the on-disk tail is untrustworthy
	buf    []byte        // frame encode scratch, reused across appends

	appended   uint64
	appendedB  uint64
	fsyncs     uint64
	rotations  uint64
	pruned     uint64
	appendNS   int64
	syncNS     int64
	lastAppend time.Time

	stop     chan struct{} // closes the interval syncer
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// openLog starts a fresh active segment for epochs >= nextEpoch, taking
// over the already-existing sealed segments for stats and pruning.
func openLog(dir string, nextEpoch uint64, sealed []segmentMeta,
	segmentBytes int64, policy SyncPolicy, syncEvery time.Duration,
	logger *slog.Logger) (*appendLog, error) {
	if logger == nil {
		logger = slog.Default()
	}
	l := &appendLog{
		dir:          dir,
		segmentBytes: segmentBytes,
		policy:       policy,
		logger:       logger,
		sealed:       sealed,
		stop:         make(chan struct{}),
	}
	if err := l.openSegment(nextEpoch); err != nil {
		return nil, err
	}
	if policy == SyncInterval {
		l.wg.Add(1)
		go l.syncLoop(syncEvery)
	}
	return l, nil
}

// openSegment creates the active segment file. The name is asserted
// fresh (O_EXCL): recovery removes empty and fully-covered segments, so
// a collision would mean an epoch-accounting bug, not a dirty directory.
func (l *appendLog) openSegment(firstEpoch uint64) error {
	path := filepath.Join(l.dir, segmentName(firstEpoch))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.active = segmentMeta{path: path, first: firstEpoch, size: segHeaderSize}
	return nil
}

// encodeFrame appends one framed batch to buf and returns the extended
// slice. Batches of one mutation use the compact insert/delete kinds;
// anything else is a bulk frame.
func encodeFrame(buf []byte, epoch uint64, muts []core.Mutation) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholder
	payload := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	putEntry := func(b []byte, m core.Mutation) []byte {
		b = binary.LittleEndian.AppendUint32(b, m.Entry.ID)
		for _, v := range [4]float64{m.Entry.Rect.MinX, m.Entry.Rect.MinY,
			m.Entry.Rect.MaxX, m.Entry.Rect.MaxY} {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	if len(muts) == 1 {
		kind := byte(frameKindInsert)
		if muts[0].Delete {
			kind = frameKindDelete
		}
		buf = append(buf, kind)
		buf = putEntry(buf, muts[0])
	} else {
		buf = append(buf, frameKindBulk)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(muts)))
		for _, m := range muts {
			op := byte(0)
			if m.Delete {
				op = 1
			}
			buf = append(buf, op)
			buf = putEntry(buf, m)
		}
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-payload))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(buf[payload:]))
	return buf
}

// Append writes one batch frame, rotating the active segment first when
// it is already over the size threshold. Under SyncAlways the frame is
// fsynced before Append returns.
//
// A rejected batch must leave no trace: the apply loop does not advance
// the epoch on a journal error, so the next batch reuses this epoch, and
// any leftover bytes from the failed frame would corrupt the log (at
// best truncating acknowledged successors on recovery, at worst
// replaying the rejected batch in place of the acknowledged one). Any
// write or fsync failure therefore rolls the segment back to the
// pre-frame offset; if even the rollback fails, the log is poisoned and
// every later Append is rejected.
func (l *appendLog) Append(epoch uint64, muts []core.Mutation) error {
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if l.active.size >= l.segmentBytes && l.active.size > segHeaderSize {
		if err := l.rotateLocked(epoch); err != nil {
			return err
		}
	}
	pre := l.active.size
	l.buf = encodeFrame(l.buf[:0], epoch, muts)
	n, err := l.f.Write(l.buf)
	l.active.size += int64(n)
	if err != nil {
		l.rollbackLocked(pre, err)
		return fmt.Errorf("wal: appending frame: %w", err)
	}
	l.dirty = true
	if l.policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The frame reached the kernel but not stable storage; the
			// batch is rejected, so its bytes must not stay ahead of the
			// next frame. (syncLocked has already poisoned the log — a
			// Linux fsync failure drops the dirty pages, so a retried
			// fsync could succeed without persisting anything.)
			l.rollbackLocked(pre, err)
			return err
		}
	}
	l.appended++
	l.appendedB += uint64(n)
	l.lastAppend = time.Now()
	l.appendNS += l.lastAppend.Sub(start).Nanoseconds()
	return nil
}

// rollbackLocked truncates the active segment back to pre, discarding a
// frame whose write or fsync failed. If the rollback itself fails the
// leftover bytes cannot be removed, so the log is poisoned: accepting
// further frames behind a partial one would corrupt the epoch sequence.
func (l *appendLog) rollbackLocked(pre int64, cause error) {
	err := l.f.Truncate(pre)
	if err == nil {
		_, err = l.f.Seek(pre, io.SeekStart)
	}
	if err != nil {
		l.failed = fmt.Errorf("wal: log failed (rollback after %v): %w", cause, err)
		l.logger.Error("wal: segment rollback failed; log poisoned, further appends will be rejected",
			"path", l.active.path, "offset", pre, "cause", cause, "err", err)
		return
	}
	l.active.size = pre
}

// rotateLocked seals the active segment and opens a new one whose first
// frame will be epoch. The seal includes an fsync so a sealed segment is
// never torn.
func (l *appendLog) rotateLocked(epoch uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	l.sealed = append(l.sealed, l.active)
	l.rotations++
	return l.openSegment(epoch)
}

// syncLocked fsyncs pending bytes. An fsync failure poisons the log:
// on Linux a failed fsync drops the dirty pages, so a later fsync can
// report success without the data ever reaching stable storage —
// retrying would turn silent data loss into an acknowledged write.
func (l *appendLog) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty {
		return nil
	}
	t0 := time.Now()
	err := l.f.Sync()
	l.syncNS += time.Since(t0).Nanoseconds()
	if err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	l.dirty = false
	l.fsyncs++
	return nil
}

// Sync forces an fsync of the active segment.
func (l *appendLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.syncLocked()
}

func (l *appendLog) syncLoop(every time.Duration) {
	defer l.wg.Done()
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			// Background fsync errors never reach a writer on their own
			// (the write already succeeded), so they must not vanish:
			// syncLocked poisons the log — failing every later Append —
			// and the poisoning tick is logged here. Subsequent ticks see
			// l.failed and stay silent.
			if l.f != nil && l.failed == nil {
				if err := l.syncLocked(); err != nil {
					l.logger.Error("wal: background fsync failed; log poisoned, further appends will be rejected",
						"path", l.active.path, "err", err)
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Prune removes sealed segments whose every frame is covered by a
// checkpoint at coveredEpoch: segment i is prunable when the next
// segment starts at or below coveredEpoch+1. Returns files removed.
func (l *appendLog) Prune(coveredEpoch uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.sealed) > 0 {
		next := l.active.first
		if len(l.sealed) > 1 {
			next = l.sealed[1].first
		}
		if next > coveredEpoch+1 {
			break
		}
		if err := os.Remove(l.sealed[0].path); err != nil && !os.IsNotExist(err) {
			break // leave it; a later checkpoint retries
		}
		l.sealed = l.sealed[1:]
		removed++
		l.pruned++
	}
	return removed
}

// Stats copies the counters.
func (l *appendLog) Stats() logStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := logStats{
		segments:   len(l.sealed) + 1,
		logBytes:   l.active.size,
		appended:   l.appended,
		appendedB:  l.appendedB,
		fsyncs:     l.fsyncs,
		rotations:  l.rotations,
		pruned:     l.pruned,
		appendNS:   l.appendNS,
		syncNS:     l.syncNS,
		lastAppend: l.lastAppend,
		failed:     l.failed,
	}
	if l.f == nil {
		s.segments--
	}
	for _, seg := range l.sealed {
		s.logBytes += seg.size
	}
	return s
}

// Close stops the interval syncer, fsyncs the tail, and closes the
// active segment. Close is idempotent.
func (l *appendLog) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// countReader tracks the offset consumed from an underlying reader.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
