package wal

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestCrashRandomTruncation is the crash-injection harness: run a random
// mutation workload, then simulate a crash by chopping the log at a
// random byte offset, recover, and check the index against a
// mutation-by-mutation reference replayed to the recovered epoch. The
// invariant: recovery lands on some prefix of the acked history — never
// a mix, never beyond the chop.
func TestCrashRandomTruncation(t *testing.T) {
	const rounds = 25
	for round := 0; round < rounds; round++ {
		rnd := rand.New(rand.NewSource(int64(round) * 7919))
		dir := t.TempDir()
		opts := testOptions(dir)
		opts.CheckpointEvery = -1
		opts.SegmentBytes = 2048 // several segments per run
		d, _, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}

		// The acked history: entry i became visible at ackEpoch[i], and
		// muts[:k] is the exact state at epoch ackEpoch[k-1].
		type step struct {
			epoch uint64
			mut   core.Mutation
		}
		var history []step
		liveSet := map[spatial.ID]spatial.Entry{}
		for i := 0; i < 120; i++ {
			var m core.Mutation
			if len(liveSet) > 0 && rnd.Intn(4) == 0 {
				for _, e := range liveSet {
					m = core.Mutation{Delete: true, Entry: e}
					break
				}
			} else {
				id := spatial.ID(rnd.Intn(500) + 1)
				if _, taken := liveSet[id]; taken {
					continue
				}
				m = core.Mutation{Entry: spatial.Entry{ID: id, Rect: rectFor(id)}}
			}
			res, err := d.Live().Apply([]core.Mutation{m})
			if err != nil {
				t.Fatal(err)
			}
			if m.Delete {
				delete(liveSet, m.Entry.ID)
			} else {
				liveSet[m.Entry.ID] = m.Entry
			}
			history = append(history, step{epoch: res.Epoch, mut: m})
		}
		if mid := rnd.Intn(2); mid == 1 {
			if _, err := d.Checkpoint(); err != nil { // crash after a checkpoint too
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				id := spatial.ID(600 + i) // distinct from phase one and from each other
				res, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)})
				if err != nil {
					t.Fatal(err)
				}
				history = append(history, step{epoch: res, mut: core.Mutation{Entry: spatial.Entry{ID: id, Rect: rectFor(id)}}})
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: chop the newest segment at a random offset.
		segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
		if len(segs) == 0 {
			t.Fatal("no segments on disk")
		}
		victim := segs[len(segs)-1]
		fi, err := os.Stat(victim)
		if err != nil {
			t.Fatal(err)
		}
		cut := rnd.Int63n(fi.Size() + 1)
		if err := os.Truncate(victim, cut); err != nil {
			t.Fatal(err)
		}

		d2, info, err := Open(opts)
		if err != nil {
			t.Fatalf("round %d: recovery failed after cut at %d/%d: %v", round, cut, fi.Size(), err)
		}

		// Reference: replay the acked history up to the recovered epoch.
		ref := map[spatial.ID]spatial.Entry{}
		for _, s := range history {
			if s.epoch > info.Epoch {
				break
			}
			if s.mut.Delete {
				delete(ref, s.mut.Entry.ID)
			} else {
				ref[s.mut.Entry.ID] = s.mut.Entry
			}
		}
		got := allIDs(t, d2.Live().Snapshot())
		if len(got) != len(ref) {
			t.Fatalf("round %d (cut %d/%d, epoch %d): recovered %d objects, reference has %d",
				round, cut, fi.Size(), info.Epoch, len(got), len(ref))
		}
		for _, id := range got {
			if _, ok := ref[id]; !ok {
				t.Fatalf("round %d: recovered id %d not in reference at epoch %d", round, id, info.Epoch)
			}
		}
		// And the recovered epoch can only regress to the chop, never
		// past a checkpoint.
		if info.CheckpointLoaded && info.Epoch < info.CheckpointEpoch {
			t.Fatalf("round %d: epoch %d below checkpoint %d", round, info.Epoch, info.CheckpointEpoch)
		}
		d2.Close()
	}
}

// crashChildEnv marks the SIGKILL test's child process and carries the
// durability directory.
const crashChildEnv = "WAL_CRASH_CHILD_DIR"

// TestKillDurableWriter is the kill -9 durability demo: a child process
// journals mutations under SyncAlways, acking each on stdout; the parent
// SIGKILLs it mid-stream, recovers the directory, and verifies every
// acknowledged mutation is served.
func TestKillDurableWriter(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChildMain(dir) // never returns
	}
	if testing.Short() {
		t.Skip("re-exec crash test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestKillDurableWriter")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Collect acks until we have a batch worth killing over.
	const killAfter = 25
	var acked []spatial.ID
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "ack ") {
			continue
		}
		id, err := strconv.ParseUint(line[4:], 10, 32)
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		acked = append(acked, spatial.ID(id))
		if len(acked) >= killAfter {
			break
		}
	}
	if len(acked) < killAfter {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child exited after only %d acks: %v", len(acked), sc.Err())
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reap; exit status is the kill, not a failure

	d, info, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("recovery after SIGKILL failed: %v", err)
	}
	defer d.Close()
	snap := d.Live().Snapshot()
	got := map[spatial.ID]bool{}
	for _, id := range allIDs(t, snap) {
		got[id] = true
	}
	for _, id := range acked {
		if !got[id] {
			t.Fatalf("acknowledged insert %d lost across SIGKILL (recovered %d objects, replayed %d records)",
				id, snap.Len(), info.ReplayedRecords)
		}
	}
	// The child may have journaled un-acked mutations past the kill
	// point; that's allowed (durable but unconfirmed), losing acks is not.
}

// crashChildMain is the child side: SyncAlways journaling, one ack line
// per published insert, running until killed.
func crashChildMain(dir string) {
	opts := Options{
		Dir:    dir,
		Policy: SyncAlways,
		Index:  core.Options{NX: 8, NY: 8},
		Logger: quiet,
	}
	d, _, err := Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(2)
	}
	for id := spatial.ID(1); ; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			fmt.Fprintln(os.Stderr, "child insert:", err)
			os.Exit(2)
		}
		fmt.Printf("ack %d\n", id)
		os.Stdout.Sync()
		time.Sleep(time.Millisecond) // keep the stream killable mid-flight
	}
}
