// Log replay and crash recovery: scanning segment frames with CRC and
// torn-write detection, and rebuilding an index from the newest readable
// checkpoint plus the log tail.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// errCorrupt marks a frame that failed validation; the scanner reports
// it with the offset of the last intact frame boundary.
var errCorrupt = errors.New("wal: corrupt frame")

// RecoveryInfo reports what recovery found and did.
type RecoveryInfo struct {
	// CheckpointEpoch is the epoch of the checkpoint recovery started
	// from; 0 with CheckpointLoaded false means a cold start.
	CheckpointEpoch   uint64
	CheckpointLoaded  bool
	SkippedBadCkpts   int // unreadable checkpoint files skipped (newest first)
	ReplayedRecords   int // log frames applied on top of the checkpoint
	ReplayedMutations int // mutations inside those frames
	SkippedRecords    int // frames already covered by the checkpoint
	TruncatedTail     bool
	// Epoch is the recovered index's epoch: the last applied frame, or
	// the checkpoint epoch when the log held nothing newer.
	Epoch uint64
	// Segments are the surviving log segments, ascending; recovery
	// removes empty and checkpoint-covered segment files.
	Segments int
}

// decodeFrame parses and validates one frame payload. It returns the
// epoch and the decoded mutations; any structural problem — unknown
// kind, count/length mismatch, non-finite or inverted rectangle — is a
// corruption error, never a panic.
func decodeFrame(payload []byte) (epoch uint64, muts []core.Mutation, err error) {
	const entrySize = 4 + 4*8
	if len(payload) < 8+1 {
		return 0, nil, fmt.Errorf("%w: payload %d bytes", errCorrupt, len(payload))
	}
	epoch = binary.LittleEndian.Uint64(payload)
	kind := payload[8]
	body := payload[9:]

	readEntry := func(b []byte) (spatial.Entry, []byte, error) {
		if len(b) < entrySize {
			return spatial.Entry{}, nil, fmt.Errorf("%w: short entry", errCorrupt)
		}
		var e spatial.Entry
		e.ID = binary.LittleEndian.Uint32(b)
		e.Rect = geom.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[4:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[12:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[20:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[28:])),
		}
		if !e.Rect.Valid() {
			return spatial.Entry{}, nil, fmt.Errorf("%w: invalid rect", errCorrupt)
		}
		return e, b[entrySize:], nil
	}

	switch kind {
	case frameKindInsert, frameKindDelete:
		e, rest, err := readEntry(body)
		if err != nil {
			return 0, nil, err
		}
		if len(rest) != 0 {
			return 0, nil, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(rest))
		}
		return epoch, []core.Mutation{{Delete: kind == frameKindDelete, Entry: e}}, nil
	case frameKindBulk:
		if len(body) < 4 {
			return 0, nil, fmt.Errorf("%w: short bulk header", errCorrupt)
		}
		count := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint64(count)*(1+entrySize) != uint64(len(body)) {
			return 0, nil, fmt.Errorf("%w: bulk count %d vs %d body bytes",
				errCorrupt, count, len(body))
		}
		muts = make([]core.Mutation, 0, count)
		for i := uint32(0); i < count; i++ {
			op := body[0]
			if op > 1 {
				return 0, nil, fmt.Errorf("%w: bulk op %d", errCorrupt, op)
			}
			e, rest, err := readEntry(body[1:])
			if err != nil {
				return 0, nil, err
			}
			body = rest
			muts = append(muts, core.Mutation{Delete: op == 1, Entry: e})
		}
		return epoch, muts, nil
	}
	return 0, nil, fmt.Errorf("%w: unknown kind %d", errCorrupt, kind)
}

// scanSegment streams the frames of one segment. fn is called for every
// intact frame; good is the byte offset just past the last intact frame
// (the truncation point when err is a corruption). err is nil at a clean
// end of file, errCorrupt-wrapped for torn or corrupt data, and a bare
// I/O error otherwise. fn returning an error stops the scan.
func scanSegment(r io.Reader, fn func(epoch uint64, muts []core.Mutation) error) (good int64, err error) {
	cr := &countReader{r: r}
	br := bufio.NewReader(cr)
	consumed := func(buffered int) int64 { return cr.n - int64(buffered) }

	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, fmt.Errorf("%w: short segment header", errCorrupt)
	}
	if string(hdr[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic %q", errCorrupt, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segVersion {
		return 0, fmt.Errorf("%w: unsupported segment version %d", errCorrupt, v)
	}
	good = segHeaderSize

	var frameHdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frameHdr[:]); err != nil {
			if err == io.EOF {
				return good, nil // clean end
			}
			return good, fmt.Errorf("%w: torn frame header", errCorrupt)
		}
		length := binary.LittleEndian.Uint32(frameHdr[:4])
		crc := binary.LittleEndian.Uint32(frameHdr[4:])
		if length > maxFramePayload {
			return good, fmt.Errorf("%w: frame claims %d bytes", errCorrupt, length)
		}
		if uint32(cap(payload)) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, fmt.Errorf("%w: torn frame payload", errCorrupt)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return good, fmt.Errorf("%w: crc mismatch", errCorrupt)
		}
		epoch, muts, err := decodeFrame(payload)
		if err != nil {
			return good, err
		}
		if err := fn(epoch, muts); err != nil {
			return good, err
		}
		good = consumed(br.Buffered())
	}
}

// HasState reports whether dir holds durability state (checkpoints or
// log segments). A missing directory is simply stateless.
func HasState(dir string) (bool, error) {
	ckpts, segs, err := listState(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	return len(ckpts)+len(segs) > 0, err
}

// listState scans dir for checkpoint and segment files.
func listState(dir string) (ckpts, segs []segmentMeta, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
		return v, err == nil
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		m := segmentMeta{path: filepath.Join(dir, e.Name()), size: info.Size()}
		if epoch, ok := parse(e.Name(), ckptPrefix, ckptSuffix); ok {
			m.first = epoch
			ckpts = append(ckpts, m)
		} else if epoch, ok := parse(e.Name(), segPrefix, segSuffix); ok {
			m.first = epoch
			segs = append(segs, m)
		}
	}
	byEpoch := func(a, b segmentMeta) int {
		switch {
		case a.first < b.first:
			return -1
		case a.first > b.first:
			return 1
		default:
			return 0
		}
	}
	slices.SortFunc(ckpts, byEpoch)
	slices.SortFunc(segs, byEpoch)
	return ckpts, segs, nil
}

// quarantine renames an unreadable checkpoint to <name>.bad: the file no
// longer matches the checkpoint pattern (so later recoveries ignore it)
// but its bytes survive for inspection.
func quarantine(logger *slog.Logger, path string, cause error) {
	bad := path + ".bad"
	if err := os.Rename(path, bad); err != nil {
		logger.Warn("unreadable checkpoint could not be quarantined",
			"path", path, "cause", cause, "err", err)
		return
	}
	logger.Warn("quarantined unreadable checkpoint", "path", path, "renamed", bad, "cause", cause)
}

// Recover rebuilds the index state stored in dir: the newest readable
// checkpoint, plus a replay of every log frame above the checkpoint
// epoch. opts builds the starting index on a cold start (no checkpoint
// files at all). When checkpoint files exist but an older one loads,
// the unreadable newer ones are quarantined (renamed to .bad); when
// none loads, Recover returns an error and leaves every file in place —
// the log alone cannot prove it reconstructs the checkpointed state, so
// healing to an empty index would silently destroy durable data.
//
// The log tail is healed, not rejected: the first torn or corrupt frame
// ends the replay, the segment is truncated back to the last intact
// frame, and any later segment files are removed (their frames would
// leave an epoch gap). Segment files that are empty or fully covered by
// the checkpoint are pruned. The surviving segments together with the
// returned index are exactly the acknowledged, durable state.
func Recover(dir string, opts core.Options, logger *slog.Logger) (*core.Index, []segmentMeta, RecoveryInfo, error) {
	if logger == nil {
		logger = slog.Default()
	}
	var info RecoveryInfo
	ckpts, segs, err := listState(dir)
	if err != nil {
		return nil, nil, info, err
	}

	// Newest readable checkpoint wins. An unreadable one is skipped, not
	// fatal — an older checkpoint can still cover it — but never deleted.
	var ix *core.Index
	type badCkpt struct {
		path  string
		cause error
	}
	var unreadable []badCkpt
	for i := len(ckpts) - 1; i >= 0 && ix == nil; i-- {
		f, err := os.Open(ckpts[i].path)
		if err == nil {
			var loaded *core.Index
			loaded, err = core.Load(bufio.NewReader(f))
			f.Close()
			if err == nil && loaded.Epoch() != ckpts[i].first {
				err = fmt.Errorf("checkpoint epoch %d does not match file name", loaded.Epoch())
			}
			if err == nil {
				// Snapshots do not persist build parallelism; re-apply the
				// configured value so the post-checkpoint decomposed rebuild
				// (and later Live rebuilds) use it.
				loaded.SetBuildThreads(opts.BuildThreads)
				ix = loaded
				info.CheckpointEpoch = loaded.Epoch()
				info.CheckpointLoaded = true
				break
			}
		}
		info.SkippedBadCkpts++
		unreadable = append(unreadable, badCkpt{path: ckpts[i].path, cause: err})
	}
	if ix == nil && info.SkippedBadCkpts > 0 {
		// Checkpoint files exist but none is readable. The log alone
		// cannot reconstruct the checkpointed state: frames below the
		// checkpoint epoch may be pruned, and a seed index adopted at
		// epoch zero was checkpointed, never journaled. Healing to
		// whatever the log yields would silently discard durable state —
		// refuse instead, leaving every file untouched so a supervised
		// restart hits the same error until an operator intervenes.
		return nil, nil, info, fmt.Errorf(
			"wal: none of the %d checkpoint files in %s is readable; refusing to recover to an empty index (move them aside to force a log-only replay)",
			info.SkippedBadCkpts, dir)
	}
	// Recovery can proceed; quarantine the unreadable newer checkpoints
	// (renamed to .bad) so they are out of future recoveries' way but
	// their bytes survive for inspection.
	for _, b := range unreadable {
		quarantine(logger, b.path, b.cause)
	}
	if ix == nil {
		ix = core.New(opts)
	}

	// Replay segments in epoch order. A segment whose successor starts
	// at or below the checkpoint epoch+1 holds only covered frames.
	surviving := segs[:0]
	stopped := false
	for i, seg := range segs {
		if stopped {
			// A truncation upstream orphans everything later.
			logger.Warn("removing log segment after corrupt predecessor", "path", seg.path)
			os.Remove(seg.path)
			continue
		}
		next := uint64(math.MaxUint64)
		if i+1 < len(segs) {
			next = segs[i+1].first
		}
		if info.CheckpointLoaded && next != math.MaxUint64 && next <= info.CheckpointEpoch+1 {
			os.Remove(seg.path) // fully covered by the checkpoint
			continue
		}

		f, err := os.Open(seg.path)
		if err != nil {
			return nil, nil, info, err
		}
		frames := 0
		good, scanErr := scanSegment(bufio.NewReader(f), func(epoch uint64, muts []core.Mutation) error {
			if epoch <= ix.Epoch() {
				info.SkippedRecords++
				return nil
			}
			if epoch != ix.Epoch()+1 {
				return fmt.Errorf("%w: epoch %d after %d", errCorrupt, epoch, ix.Epoch())
			}
			for _, m := range muts {
				if m.Delete {
					ix.Delete(m.Entry.ID, m.Entry.Rect)
				} else {
					ix.Insert(m.Entry)
				}
			}
			ix.SetEpoch(epoch)
			info.ReplayedRecords++
			info.ReplayedMutations += len(muts)
			frames++
			return nil
		})
		f.Close()
		if scanErr != nil {
			if !errors.Is(scanErr, errCorrupt) {
				return nil, nil, info, scanErr
			}
			logger.Warn("truncating log at first bad frame",
				"path", seg.path, "offset", good, "err", scanErr)
			if err := os.Truncate(seg.path, good); err != nil {
				return nil, nil, info, fmt.Errorf("wal: truncating corrupt tail: %w", err)
			}
			seg.size = good
			info.TruncatedTail = true
			stopped = true
		}
		if frames == 0 && (stopped || good <= segHeaderSize) {
			// Nothing usable in this file: empty leftover, or truncated
			// down to (at most) its header.
			os.Remove(seg.path)
			continue
		}
		surviving = append(surviving, seg)
	}

	info.Epoch = ix.Epoch()
	info.Segments = len(surviving)
	// Checkpoints that failed to load were quarantined above; the ones
	// older than the loaded checkpoint stay (dropOldCheckpoints keeps the
	// newest two). Stale temp files from interrupted writes are removed.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}
	return ix, surviving, info, nil
}
