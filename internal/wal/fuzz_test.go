package wal

import (
	"bytes"
	"testing"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/spatial"
)

// FuzzWALReplay feeds arbitrary bytes through the segment scanner and a
// recovery-style replay: corruption anywhere — magic, frame header, CRC,
// payload structure — must come back as a clean error and a usable
// truncation offset, never a panic or a runaway allocation. Run with
// `go test -fuzz=FuzzWALReplay ./internal/wal`.
func FuzzWALReplay(f *testing.F) {
	// Tiny structurally-valid seeds (the engine's per-exec overhead grows
	// with corpus entry size): a two-frame segment, a bulk frame, a bare
	// header, and garbage.
	hdr := make([]byte, segHeaderSize)
	copy(hdr[:4], segMagic)
	hdr[4] = segVersion
	var seg bytes.Buffer
	seg.Write(hdr)
	seg.Write(encodeFrame(nil, 1, []core.Mutation{
		{Entry: spatial.Entry{ID: 1, Rect: rectFor(1)}},
	}))
	seg.Write(encodeFrame(nil, 2, []core.Mutation{
		{Entry: spatial.Entry{ID: 2, Rect: rectFor(2)}},
		{Delete: true, Entry: spatial.Entry{ID: 1, Rect: rectFor(1)}},
	}))
	f.Add(seg.Bytes())
	f.Add(hdr)
	f.Add([]byte("TLWL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			t.Skip()
		}
		// Replay exactly like Recover does, onto a small index with the
		// same epoch-continuity rule.
		ix := core.New(core.Options{NX: 4, NY: 4})
		applied := 0
		good, err := scanSegment(bytes.NewReader(data), func(epoch uint64, muts []core.Mutation) error {
			if epoch <= ix.Epoch() {
				return nil
			}
			if epoch != ix.Epoch()+1 {
				return errCorrupt
			}
			if applied += len(muts); applied > 1<<12 {
				return nil // bound fuzz work, keep scanning frames
			}
			for _, m := range muts {
				if m.Delete {
					ix.Delete(m.Entry.ID, m.Entry.Rect)
				} else {
					ix.Insert(m.Entry)
				}
			}
			ix.SetEpoch(epoch)
			return nil
		})
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("truncation offset %d outside [0,%d]", good, len(data))
		}
		if err == nil && good != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", good, len(data))
		}
		// The reported offset must itself be a clean truncation point: a
		// rescan of data[:good] succeeds fully. This is the invariant the
		// on-disk truncate in Recover relies on.
		if good >= segHeaderSize {
			regood, reerr := scanSegment(bytes.NewReader(data[:good]), func(uint64, []core.Mutation) error {
				return nil
			})
			if reerr != nil || regood != good {
				t.Fatalf("rescan of truncated prefix: good=%d err=%v, want %d", regood, reerr, good)
			}
		}
	})
}
