package wal

import (
	"bytes"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/twolayer/twolayer/internal/core"
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// quiet drops recovery notices so expected-corruption tests don't spam
// the test log.
var quiet = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))

func testOptions(dir string) Options {
	return Options{
		Dir:    dir,
		Index:  core.Options{NX: 8, NY: 8},
		Logger: quiet,
	}
}

// rectFor derives a deterministic small valid rect for an id.
func rectFor(id spatial.ID) geom.Rect {
	rnd := rand.New(rand.NewSource(int64(id) + 7))
	x, y := rnd.Float64()*0.9, rnd.Float64()*0.9
	return geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05}
}

func allIDs(t *testing.T, ix *core.Index) []spatial.ID {
	t.Helper()
	ids := ix.WindowIDs(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, nil)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func wantIDs(m map[spatial.ID]geom.Rect) []spatial.ID {
	ids := make([]spatial.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []spatial.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSyncPolicyParse(t *testing.T) {
	for _, want := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		got, err := ParseSyncPolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", want.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

// TestDurableRoundTrip: mutations acked before a clean Close must all be
// there after reopening, without any checkpoint in between (pure log
// replay), and again after a checkpoint (no replay needed).
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = -1
	d, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointLoaded || info.ReplayedRecords != 0 {
		t.Fatalf("fresh dir reported prior state: %+v", info)
	}
	ref := make(map[spatial.ID]geom.Rect)
	for id := spatial.ID(1); id <= 60; id++ {
		r := rectFor(id)
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: r}); err != nil {
			t.Fatal(err)
		}
		ref[id] = r
	}
	for id := spatial.ID(1); id <= 60; id += 3 {
		found, _, err := d.Live().Delete(id, ref[id])
		if err != nil || !found {
			t.Fatalf("delete %d: found=%v err=%v", id, found, err)
		}
		delete(ref, id)
	}
	wantEpoch := d.Live().Snapshot().Epoch()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.ReplayedRecords == 0 || info.Epoch != wantEpoch {
		t.Fatalf("replay info = %+v, want epoch %d with replayed records", info, wantEpoch)
	}
	if got := allIDs(t, d2.Live().Snapshot()); !equalIDs(got, wantIDs(ref)) {
		t.Fatalf("recovered %d ids, want %d", len(got), len(ref))
	}
	if e, err := d2.Checkpoint(); err != nil || e != wantEpoch {
		t.Fatalf("checkpoint: epoch=%d err=%v, want %d", e, err, wantEpoch)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if !info.CheckpointLoaded || info.CheckpointEpoch != wantEpoch || info.ReplayedRecords != 0 {
		t.Fatalf("post-checkpoint recovery = %+v, want checkpoint %d and no replay", info, wantEpoch)
	}
	if got := allIDs(t, d3.Live().Snapshot()); !equalIDs(got, wantIDs(ref)) {
		t.Fatalf("checkpoint recovery lost ids")
	}
}

// TestRotationAndPrune: a tiny segment threshold forces rotations; a
// checkpoint must prune every sealed segment it covers.
func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 512
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(1); id <= 200; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	before := d.Stats()
	if before.Rotations == 0 || before.Segments < 2 {
		t.Fatalf("expected rotations with 512-byte segments, got %+v", before)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Segments != 1 || after.PrunedSegments == 0 {
		t.Fatalf("checkpoint left %d segments (pruned %d), want only the active one",
			after.Segments, after.PrunedSegments)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("on-disk segments after prune: %v (err %v)", segs, err)
	}
}

// TestAutoCheckpoint: crossing CheckpointEvery mutations must produce a
// checkpoint without any explicit call.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = 50
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for id := spatial.ID(1); id <= 120; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after 120 mutations with CheckpointEvery=50: %+v", d.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := d.Stats(); s.CheckpointEpoch == 0 || s.CheckpointAge <= 0 {
		t.Fatalf("checkpoint stats not populated: %+v", s)
	}
}

// TestCorruptTailTruncated: flipping bytes in the last frame must not
// fail startup — recovery truncates to the last intact frame and serves
// everything before it.
func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []uint64
	for id := spatial.ID(1); id <= 40; id++ {
		e, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)})
		if err != nil {
			t.Fatal(err)
		}
		epochs = append(epochs, e)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"))
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) - 20; i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, info, err := Open(opts)
	if err != nil {
		t.Fatalf("startup failed on corrupt tail: %v", err)
	}
	defer d2.Close()
	if !info.TruncatedTail {
		t.Fatalf("recovery did not report truncation: %+v", info)
	}
	// Everything but (at least) the clobbered final record survives.
	got := allIDs(t, d2.Live().Snapshot())
	if len(got) >= 40 || len(got) < 30 {
		t.Fatalf("recovered %d of 40 inserts after tail corruption", len(got))
	}
	for i, id := range got {
		if id != spatial.ID(i+1) {
			t.Fatalf("recovered ids have a gap at %d: %v", i, got[:i+1])
		}
	}
	if info.Epoch != epochs[len(got)-1] {
		t.Fatalf("recovered epoch %d, want %d (last surviving ack)", info.Epoch, epochs[len(got)-1])
	}
}

// TestSeedAdoptedOnceThenIgnored: a seed index is checkpointed on first
// open; on reopen the recovered state wins and the seed is ignored.
func TestSeedAdoptedOnceThenIgnored(t *testing.T) {
	dir := t.TempDir()
	seed := core.New(core.Options{NX: 8, NY: 8})
	for id := spatial.ID(1); id <= 10; id++ {
		seed.Insert(spatial.Entry{ID: id, Rect: rectFor(id)})
	}
	opts := testOptions(dir)
	opts.Seed = seed
	d, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CheckpointLoaded {
		t.Fatalf("seed was not checkpointed: %+v", info)
	}
	if _, err := d.Live().Insert(spatial.Entry{ID: 11, Rect: rectFor(11)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different (smaller) seed: prior state must win.
	opts.Seed = core.New(core.Options{NX: 8, NY: 8})
	d2, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Live().Snapshot().Len(); got != 11 {
		t.Fatalf("reopen with stale seed: %d objects, want 11", got)
	}
}

// TestRejectForeignJournal: Open must refuse a LiveOptions.Journal.
func TestRejectForeignJournal(t *testing.T) {
	opts := testOptions(t.TempDir())
	opts.Live.Journal = func(uint64, []core.Mutation) error { return nil }
	if _, _, err := Open(opts); err == nil || !strings.Contains(err.Error(), "Journal") {
		t.Fatalf("Open accepted a foreign journal hook: %v", err)
	}
}

// TestBadCheckpointFallsBack: a corrupted newest checkpoint must not
// block startup — recovery falls back to the previous one and replays
// the log over it.
func TestBadCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(1); id <= 20; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(21); id <= 30; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	epoch2, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Clobber the newest checkpoint body.
	path := filepath.Join(dir, checkpointName(epoch2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data); i++ {
		data[i] ^= 0xa5
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, info, err := Open(opts)
	if err != nil {
		t.Fatalf("startup failed on bad checkpoint: %v", err)
	}
	defer d2.Close()
	if info.SkippedBadCkpts == 0 {
		t.Fatalf("recovery did not skip the bad checkpoint: %+v", info)
	}
	// The log was pruned up to the (bad) newest checkpoint, so frames
	// after the older checkpoint may be gone; everything still present
	// in log+older checkpoint must be served, which is at least the
	// first 20 inserts.
	got := allIDs(t, d2.Live().Snapshot())
	if len(got) < 20 {
		t.Fatalf("recovered only %d objects after checkpoint fallback", len(got))
	}
}

// TestScanSegmentCleanAndTorn exercises the frame scanner directly:
// clean scan returns every frame; truncating anywhere inside the last
// frame reports a corruption with the right resume offset.
func TestScanSegmentCleanAndTorn(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, segHeaderSize)
	copy(hdr[:4], segMagic)
	hdr[4] = segVersion
	buf.Write(hdr)
	goodEnd := []int64{segHeaderSize}
	for e := uint64(1); e <= 5; e++ {
		frame := encodeFrame(nil, e, []core.Mutation{
			{Entry: spatial.Entry{ID: spatial.ID(e), Rect: rectFor(spatial.ID(e))}},
		})
		buf.Write(frame)
		goodEnd = append(goodEnd, goodEnd[len(goodEnd)-1]+int64(len(frame)))
	}
	data := buf.Bytes()

	var epochs []uint64
	good, err := scanSegment(bytes.NewReader(data), func(e uint64, muts []core.Mutation) error {
		epochs = append(epochs, e)
		return nil
	})
	if err != nil || good != int64(len(data)) || len(epochs) != 5 {
		t.Fatalf("clean scan: good=%d err=%v epochs=%v", good, err, epochs)
	}

	for cut := goodEnd[4] + 1; cut < int64(len(data)); cut++ {
		good, err := scanSegment(bytes.NewReader(data[:cut]), func(uint64, []core.Mutation) error { return nil })
		if err == nil {
			t.Fatalf("cut at %d: torn frame not detected", cut)
		}
		if good != goodEnd[4] {
			t.Fatalf("cut at %d: good=%d, want %d", cut, good, goodEnd[4])
		}
	}
}

// TestJournalFailureAborts: an append error must reject the batch and
// leave the snapshot untouched.
func TestJournalFailureAborts(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Insert(spatial.Entry{ID: 1, Rect: rectFor(1)}); err != nil {
		t.Fatal(err)
	}
	// Close the log behind the live index's back: the next journal append
	// fails, so the mutation must be rejected.
	if err := d.log.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Live().Insert(spatial.Entry{ID: 2, Rect: rectFor(2)}); err == nil {
		t.Fatal("insert was acked after the log failed")
	}
	if got := d.Live().Snapshot().Len(); got != 1 {
		t.Fatalf("failed journal mutated the index: %d objects", got)
	}
	d.Close()
}

// TestCheckpointKeepsAtMostTwo: repeated checkpoints leave at most the
// newest two checkpoint files on disk.
func TestCheckpointKeepsAtMostTwo(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for round := 0; round < 5; round++ {
		id := spatial.ID(round + 1)
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"))
	if len(ckpts) > 2 {
		t.Fatalf("%d checkpoint files on disk, want <= 2: %v", len(ckpts), ckpts)
	}
}

// TestStatsShape sanity-checks the durability stats counters.
func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.Policy = SyncAlways
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for id := spatial.ID(1); id <= 5; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Policy != SyncAlways || s.AppendedRecords == 0 || s.Fsyncs == 0 ||
		s.LogBytes <= segHeaderSize || s.Segments != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestWriteCheckpointAtomic: a checkpoint write is all-or-nothing; a
// leftover .tmp from a simulated interruption is cleaned by recovery.
func TestWriteCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, checkpointName(7)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, _, err := Open(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale checkpoint tmp survived recovery: %v", err)
	}
}

// TestDecodeFrameErrors: structural corruptions are errors, not panics.
func TestDecodeFrameErrors(t *testing.T) {
	ok := encodeFrame(nil, 3, []core.Mutation{
		{Entry: spatial.Entry{ID: 9, Rect: rectFor(9)}},
	})
	payload := ok[8:] // strip len+crc
	if _, _, err := decodeFrame(payload); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      payload[:5],
		"badKind":    append(append([]byte{}, payload[:8]...), 99),
		"trailing":   append(append([]byte{}, payload...), 0xff),
		"shortEntry": payload[:len(payload)-3],
		"nanRect": func() []byte {
			b := append([]byte{}, payload...)
			for i := 13; i < 21; i++ {
				b[i] = 0xff
			}
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := decodeFrame(data); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	// Bulk count mismatch.
	bulk := encodeFrame(nil, 4, []core.Mutation{
		{Entry: spatial.Entry{ID: 1, Rect: rectFor(1)}},
		{Delete: true, Entry: spatial.Entry{ID: 2, Rect: rectFor(2)}},
	})[8:]
	bad := append([]byte{}, bulk...)
	bad[9]++ // count field
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("bulk count mismatch not detected")
	}
}

// TestRecoverEmptyDirIsCold: recovering a nonexistent state yields a
// fresh index at epoch zero.
func TestRecoverEmptyDirIsCold(t *testing.T) {
	ix, segs, info, err := Recover(t.TempDir(), core.Options{NX: 4, NY: 4}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 || ix.Epoch() != 0 || len(segs) != 0 || info.CheckpointLoaded {
		t.Fatalf("cold start: len=%d epoch=%d segs=%d info=%+v", ix.Len(), ix.Epoch(), len(segs), info)
	}
}

// writeRawSegment builds a segment file from frames for corruption tests.
func writeRawSegment(t *testing.T, path string, frames ...[]byte) {
	t.Helper()
	var buf bytes.Buffer
	hdr := make([]byte, segHeaderSize)
	copy(hdr[:4], segMagic)
	hdr[4] = segVersion
	buf.Write(hdr)
	for _, f := range frames {
		buf.Write(f)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRemovesOrphanSegments: segments after a truncated one are
// removed — replaying them would skip epochs.
func TestRecoverRemovesOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	f1 := encodeFrame(nil, 1, []core.Mutation{{Entry: spatial.Entry{ID: 1, Rect: rectFor(1)}}})
	f2bad := encodeFrame(nil, 2, []core.Mutation{{Entry: spatial.Entry{ID: 2, Rect: rectFor(2)}}})
	f2bad[len(f2bad)-1] ^= 0xff // corrupt the first segment's tail
	f3 := encodeFrame(nil, 3, []core.Mutation{{Entry: spatial.Entry{ID: 3, Rect: rectFor(3)}}})
	writeRawSegment(t, filepath.Join(dir, segmentName(1)), f1, f2bad)
	writeRawSegment(t, filepath.Join(dir, segmentName(3)), f3)

	ix, segs, info, err := Recover(dir, core.Options{NX: 4, NY: 4}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TruncatedTail || ix.Epoch() != 1 || ix.Len() != 1 {
		t.Fatalf("recovery after mid-log corruption: epoch=%d len=%d info=%+v", ix.Epoch(), ix.Len(), info)
	}
	if len(segs) != 1 {
		t.Fatalf("surviving segments = %v, want only the truncated first", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(3))); !os.IsNotExist(err) {
		t.Fatal("orphan segment after corruption was not removed")
	}
	// Idempotence: a second recovery finds a clean log.
	ix2, _, info2, err := Recover(dir, core.Options{NX: 4, NY: 4}, quiet)
	if err != nil || info2.TruncatedTail || ix2.Epoch() != 1 {
		t.Fatalf("second recovery not clean: epoch=%d info=%+v err=%v", ix2.Epoch(), info2, err)
	}
}

// TestConcurrentWritersDurable runs mutations from several goroutines
// under -race: batching, journaling and checkpointing must compose.
func TestConcurrentWritersDurable(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = 100
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 4, 50
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				id := spatial.ID(w*per + i + 1)
				if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Live().Snapshot().Len(); got != writers*per {
		t.Fatalf("recovered %d objects, want %d", got, writers*per)
	}
}

// TestRecoverBadSegmentHeader: a file with a mangled header is treated
// as fully corrupt and truncated away, not a startup failure.
func TestRecoverBadSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte("BOGUS!!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	ix, segs, _, err := Recover(dir, core.Options{NX: 4, NY: 4}, quiet)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 || len(segs) != 0 {
		t.Fatalf("bad-header segment produced state: len=%d segs=%v", ix.Len(), segs)
	}
}

// TestAppendRollbackAfterPartialWrite: a failed append must leave no
// bytes in the segment — the apply loop reuses the epoch for the next
// batch, so a leftover partial (or complete) frame would corrupt the
// log. The rollback truncates back to the pre-frame offset and the
// next append lands exactly there.
func TestAppendRollbackAfterPartialWrite(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, nil, 1<<20, SyncNone, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(id spatial.ID) []core.Mutation {
		return []core.Mutation{{Entry: spatial.Entry{ID: id, Rect: rectFor(id)}}}
	}
	if err := l.Append(1, mut(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, mut(2)); err != nil {
		t.Fatal(err)
	}
	// Simulate Append's error path: partial frame bytes hit the file,
	// then the write "fails" and rollbackLocked undoes it.
	l.mu.Lock()
	pre := l.active.size
	n, err := l.f.Write([]byte("partial frame of a rejected batch"))
	if err != nil {
		l.mu.Unlock()
		t.Fatal(err)
	}
	l.active.size += int64(n)
	l.rollbackLocked(pre, fmt.Errorf("injected write failure"))
	failed, size := l.failed, l.active.size
	l.mu.Unlock()
	if failed != nil {
		t.Fatalf("rollback poisoned a healthy log: %v", failed)
	}
	if size != pre {
		t.Fatalf("rollback left size %d, want %d", size, pre)
	}
	// The next published batch lands exactly where the rejected frame
	// started; the segment must scan back contiguously.
	if err := l.Append(3, mut(3)); err != nil {
		t.Fatal(err)
	}
	path := l.active.path
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var epochs []uint64
	if _, err := scanSegment(f, func(e uint64, _ []core.Mutation) error {
		epochs = append(epochs, e)
		return nil
	}); err != nil {
		t.Fatalf("segment corrupt after rollback: %v (epochs %v)", err, epochs)
	}
	if len(epochs) != 3 || epochs[0] != 1 || epochs[1] != 2 || epochs[2] != 3 {
		t.Fatalf("scanned epochs %v, want [1 2 3]", epochs)
	}
}

// TestAppendPoisonedWhenRollbackFails: if the frame cannot be written
// and cannot be rolled back either, the log must go sticky-failed —
// every later append rejected, the state visible in stats — rather
// than keep acking batches behind an untrustworthy tail.
func TestAppendPoisonedWhenRollbackFails(t *testing.T) {
	dir := t.TempDir()
	l, err := openLog(dir, 1, nil, 1<<20, SyncNone, 0, quiet)
	if err != nil {
		t.Fatal(err)
	}
	mut := []core.Mutation{{Entry: spatial.Entry{ID: 1, Rect: rectFor(1)}}}
	if err := l.Append(1, mut); err != nil {
		t.Fatal(err)
	}
	// Yank the fd out from under the log: the next write fails and so
	// does the rollback truncate.
	l.f.Close()
	if err := l.Append(2, mut); err == nil {
		t.Fatal("append on a dead fd succeeded")
	}
	if err := l.Append(3, mut); err == nil || !strings.Contains(err.Error(), "log failed") {
		t.Fatalf("poisoned log accepted another append: %v", err)
	}
	if s := l.Stats(); s.failed == nil {
		t.Fatal("poisoned state not visible in stats")
	}
	l.Close() // returns the sticky error; only releasing resources here
}

// TestAllCheckpointsUnreadableRefusesEmptyStart: when checkpoint files
// exist but none loads, recovery must fail loudly — and keep failing on
// retry, with every file left in place — never delete them and boot an
// empty index.
func TestAllCheckpointsUnreadableRefusesEmptyStart(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 512 // force rotations so a checkpoint prunes
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(1); id <= 100; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(101); id <= 110; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoints on disk: %v %v", ckpts, err)
	}
	before, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ckpts {
		if err := os.WriteFile(p, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The refusal must be persistent across retries (a supervisor will
	// restart the process) and must not move or delete anything — the
	// operator decides what to salvage.
	for attempt := 0; attempt < 2; attempt++ {
		if _, _, err := Open(opts); err == nil {
			t.Fatalf("attempt %d: Open healed all-bad checkpoints to an empty index instead of failing", attempt)
		}
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(after) != len(before) {
		t.Fatalf("refused recovery changed the directory: had %v, now %v", before, after)
	}
}

// TestBadCheckpointQuarantinedOnFallback: when an older checkpoint still
// loads, the unreadable newer one is quarantined as .bad — out of future
// recoveries' way, bytes preserved — rather than deleted.
func TestBadCheckpointQuarantinedOnFallback(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = -1
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(1); id <= 20; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for id := spatial.ID(21); id <= 30; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	epoch2, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName(epoch2))
	if err := os.WriteFile(path, []byte("clobbered"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, info, err := Open(opts)
	if err != nil {
		t.Fatalf("fallback to the older checkpoint failed: %v", err)
	}
	defer d2.Close()
	if !info.CheckpointLoaded || info.SkippedBadCkpts != 1 {
		t.Fatalf("recovery info = %+v, want older checkpoint loaded and one skipped", info)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("unreadable checkpoint was not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("unreadable checkpoint still in place under its original name")
	}
}

// TestCheckpointFailureRestoresCounter: a failed checkpoint write must
// put the mutations-since-checkpoint count back, so the automatic
// trigger refires promptly instead of waiting out a fresh interval.
func TestCheckpointFailureRestoresCounter(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.CheckpointEvery = 1000 // counting on, threshold never reached
	d, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const muts = 7
	for id := spatial.ID(1); id <= muts; id++ {
		if _, err := d.Live().Insert(spatial.Entry{ID: id, Rect: rectFor(id)}); err != nil {
			t.Fatal(err)
		}
	}
	// Block the checkpoint: a directory squatting on the tmp path makes
	// writeCheckpoint's create fail.
	epoch := d.Live().Snapshot().Epoch()
	block := filepath.Join(dir, checkpointName(epoch)+".tmp")
	if err := os.Mkdir(block, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded over a blocked tmp path")
	}
	if got := d.Stats().SinceCheckpoint; got != muts {
		t.Fatalf("failed checkpoint left SinceCheckpoint=%d, want %d restored", got, muts)
	}
	if err := os.Remove(block); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().SinceCheckpoint; got != 0 {
		t.Fatalf("successful checkpoint left SinceCheckpoint=%d, want 0", got)
	}
}
