// DurableLive: a core.Live index whose mutation stream is journaled and
// checkpointed, recovering to exactly the acknowledged state on restart.
package wal

import (
	"bufio"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twolayer/twolayer/internal/core"
)

// Options configure Open.
type Options struct {
	// Dir is the durability directory (log segments + checkpoints).
	// Created if missing. Required.
	Dir string
	// Policy selects the fsync discipline; zero value is SyncInterval.
	Policy SyncPolicy
	// SyncEvery is the background flush period under SyncInterval.
	// Defaults to 100ms.
	SyncEvery time.Duration
	// SegmentBytes is the rotation threshold for log segments.
	// Defaults to 8 MiB.
	SegmentBytes int64
	// CheckpointEvery triggers an automatic checkpoint after this many
	// journaled mutations. 0 means the default of 65536; negative
	// disables automatic checkpoints (POST /checkpoint and Close-time
	// recovery still work — the log just grows until pruned manually).
	CheckpointEvery int
	// Index builds the starting index on a cold start (empty Dir and no
	// Seed). Also the fallback shape when every checkpoint is unreadable.
	Index core.Options
	// Live tunes the apply loop. The Journal hook is owned by the
	// durability layer and must be nil.
	Live core.LiveOptions
	// Seed, when non-nil and Dir holds no prior state, becomes the
	// initial index: it is checkpointed immediately (so it is durable
	// before any mutation is accepted) and ownership transfers to the
	// Live index. Ignored — with a logged notice — when Dir already has
	// state; recovery always wins over re-seeding.
	Seed *core.Index
	// Logger receives recovery and background-error notices.
	// Defaults to slog.Default().
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 65536
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Stats is a point-in-time view of the durability layer.
type Stats struct {
	Policy          SyncPolicy
	Segments        int    // on-disk log segment files (incl. active)
	LogBytes        int64  // total bytes across segments
	AppendedRecords uint64 // frames appended since Open
	AppendedBytes   uint64
	Fsyncs          uint64
	Rotations       uint64
	PrunedSegments  uint64
	Checkpoints     uint64        // checkpoints written since Open
	CheckpointEpoch uint64        // epoch of the newest checkpoint, 0 if none
	CheckpointAge   time.Duration // since the newest checkpoint, 0 if none
	SinceCheckpoint int64         // mutations journaled since that checkpoint
	// Latency accumulators, all cumulative since Open: AppendTotal is the
	// wall time spent inside successful journal appends (encode + write,
	// plus the per-batch fsync under SyncAlways), FsyncTotal the time
	// inside fsync calls regardless of trigger, CheckpointTotal the time
	// writing checkpoint files. Divide by the corresponding count for a
	// mean; export as counters to rate in monitoring systems.
	AppendTotal     time.Duration
	FsyncTotal      time.Duration
	CheckpointTotal time.Duration
	// Failed is non-empty once the log has hit an unrecoverable write or
	// fsync error (the on-disk tail can no longer be trusted): every
	// subsequent mutation is rejected with this error. A non-empty value
	// is an operator signal to fail the node over and inspect the disk.
	Failed   string
	Recovery RecoveryInfo
}

// DurableLive couples a core.Live index with the write-ahead log: every
// mutation batch is journaled (and fsynced per Options.Policy) before it
// is applied or acknowledged, checkpoints bound replay time, and Open
// restores the acknowledged state after a crash. All methods are safe
// for concurrent use.
type DurableLive struct {
	dir    string
	opt    Options
	live   *core.Live
	log    *appendLog
	logger *slog.Logger
	rec    RecoveryInfo

	ckptMu      sync.Mutex // serializes checkpoint writes
	ckptEpoch   atomic.Uint64
	ckptNS      atomic.Int64 // unixnano of the newest checkpoint, 0 if none
	ckptCount   atomic.Uint64
	ckptTotalNS atomic.Int64 // cumulative wall time writing checkpoints
	sinceCkpt   atomic.Int64

	ckptCh    chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open recovers (or cold-starts) the index stored in opts.Dir and wraps
// it in a journaling Live index. The returned RecoveryInfo reports what
// recovery found; after a clean shutdown it shows zero replayed records.
func Open(opts Options) (*DurableLive, RecoveryInfo, error) {
	if opts.Dir == "" {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.Live.Journal != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: Options.Live.Journal must be nil (owned by the durability layer)")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: creating data dir: %w", err)
	}

	ix, segs, info, err := Recover(opts.Dir, opts.Index, opts.Logger)
	if err != nil {
		return nil, info, err
	}
	fresh := !info.CheckpointLoaded && info.SkippedBadCkpts == 0 &&
		info.Segments == 0 && info.ReplayedRecords == 0 && info.SkippedRecords == 0
	if opts.Seed != nil {
		if fresh {
			ix = opts.Seed
			if err := writeCheckpoint(opts.Dir, ix); err != nil {
				return nil, info, fmt.Errorf("wal: checkpointing seed index: %w", err)
			}
			info.CheckpointEpoch = ix.Epoch()
			info.CheckpointLoaded = true
			info.Epoch = ix.Epoch()
		} else {
			opts.Logger.Warn("durability dir has prior state; ignoring seed index",
				"dir", opts.Dir, "epoch", ix.Epoch())
		}
	}

	log, err := openLog(opts.Dir, ix.Epoch()+1, segs, opts.SegmentBytes, opts.Policy, opts.SyncEvery, opts.Logger)
	if err != nil {
		return nil, info, err
	}
	d := &DurableLive{
		dir:    opts.Dir,
		opt:    opts,
		log:    log,
		logger: opts.Logger,
		rec:    info,
		ckptCh: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	if info.CheckpointLoaded {
		d.ckptEpoch.Store(info.CheckpointEpoch)
		d.ckptNS.Store(time.Now().UnixNano())
	}
	liveOpts := opts.Live
	liveOpts.Journal = d.journal
	d.live = core.NewLive(ix, liveOpts)
	d.wg.Add(1)
	go d.checkpointLoop()
	return d, info, nil
}

// Live returns the underlying live index. Mutations submitted through it
// are journaled — the write-ahead hook lives inside the apply loop, so
// there is no undurable side door.
func (d *DurableLive) Live() *core.Live { return d.live }

// journal is the core.LiveOptions.Journal hook: append-before-publish,
// plus the automatic checkpoint trigger.
func (d *DurableLive) journal(epoch uint64, muts []core.Mutation) error {
	if err := d.log.Append(epoch, muts); err != nil {
		return err
	}
	if d.opt.CheckpointEvery > 0 &&
		d.sinceCkpt.Add(int64(len(muts))) >= int64(d.opt.CheckpointEvery) {
		select {
		case d.ckptCh <- struct{}{}:
		default: // one already pending
		}
	}
	return nil
}

func (d *DurableLive) checkpointLoop() {
	defer d.wg.Done()
	for {
		select {
		case <-d.ckptCh:
			if _, err := d.Checkpoint(); err != nil {
				d.logger.Warn("automatic checkpoint failed", "err", err)
			}
		case <-d.stop:
			return
		}
	}
}

// Checkpoint writes the current snapshot as a checkpoint file (atomic
// tmp+rename), prunes log segments it covers, and drops superseded
// checkpoint files. It returns the checkpointed epoch, and is a cheap
// no-op when no mutations were published since the last checkpoint.
// Writers and readers are never paused: the snapshot is immutable.
func (d *DurableLive) Checkpoint() (uint64, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	snap := d.live.Snapshot()
	epoch := snap.Epoch()
	if d.ckptNS.Load() != 0 && epoch <= d.ckptEpoch.Load() {
		return epoch, nil
	}
	// Mutations journaled from here on count toward the next checkpoint;
	// if the write fails the count is restored so the automatic trigger
	// refires promptly instead of waiting out a whole fresh interval.
	saved := d.sinceCkpt.Swap(0)
	start := time.Now()
	if err := writeCheckpoint(d.dir, snap); err != nil {
		d.sinceCkpt.Add(saved)
		return 0, err
	}
	d.ckptTotalNS.Add(time.Since(start).Nanoseconds())
	d.ckptEpoch.Store(epoch)
	d.ckptNS.Store(time.Now().UnixNano())
	d.ckptCount.Add(1)
	d.log.Prune(epoch)
	d.dropOldCheckpoints(epoch)
	return epoch, nil
}

// dropOldCheckpoints keeps the newest checkpoint plus one predecessor
// (a cheap hedge against a latent bad write) and removes the rest.
func (d *DurableLive) dropOldCheckpoints(newest uint64) {
	ckpts, _, err := listState(d.dir)
	if err != nil {
		return
	}
	keep := 0
	for i := len(ckpts) - 1; i >= 0; i-- {
		if ckpts[i].first <= newest {
			keep++
		}
		if keep > 2 {
			os.Remove(ckpts[i].path)
		}
	}
}

// writeCheckpoint atomically persists ix as dir's checkpoint for its
// epoch: write to a temp file, fsync, rename, fsync the directory.
func writeCheckpoint(dir string, ix *core.Index) error {
	final := filepath.Join(dir, checkpointName(ix.Epoch()))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := ix.WriteTo(bw); err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = df.Sync()
	if cerr := df.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}

// Stats reports the durability counters.
func (d *DurableLive) Stats() Stats {
	ls := d.log.Stats()
	s := Stats{
		Policy:          d.opt.Policy,
		Segments:        ls.segments,
		LogBytes:        ls.logBytes,
		AppendedRecords: ls.appended,
		AppendedBytes:   ls.appendedB,
		Fsyncs:          ls.fsyncs,
		Rotations:       ls.rotations,
		PrunedSegments:  ls.pruned,
		Checkpoints:     d.ckptCount.Load(),
		CheckpointEpoch: d.ckptEpoch.Load(),
		SinceCheckpoint: d.sinceCkpt.Load(),
		AppendTotal:     time.Duration(ls.appendNS),
		FsyncTotal:      time.Duration(ls.syncNS),
		CheckpointTotal: time.Duration(d.ckptTotalNS.Load()),
		Recovery:        d.rec,
	}
	if ls.failed != nil {
		s.Failed = ls.failed.Error()
	}
	if ns := d.ckptNS.Load(); ns != 0 {
		s.CheckpointAge = time.Since(time.Unix(0, ns))
	}
	return s
}

// Close stops the checkpointer, drains and closes the live index (its
// final batches are journaled on the way out), and closes the log with a
// final fsync. A recovered restart after a clean Close replays only the
// frames above the last checkpoint. Close is idempotent.
func (d *DurableLive) Close() error {
	d.closeOnce.Do(func() {
		close(d.stop)
		d.wg.Wait()
		d.live.Close()
		d.closeErr = d.log.Close()
	})
	return d.closeErr
}
