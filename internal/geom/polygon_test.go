package geom

import (
	"math"
	"testing"
)

// unitSquarePoly returns the square [0,1]^2 as a polygon.
func unitSquarePoly() *Polygon {
	return NewPolygon(Point{0, 0}, Point{1, 0}, Point{1, 1}, Point{0, 1})
}

func TestPolygonConstruction(t *testing.T) {
	p := NewPolygon(Point{0, 0}, Point{1, 0}, Point{1, 1}, Point{0, 0})
	if len(p.Ring) != 3 {
		t.Errorf("closing vertex should be dropped, got ring of %d", len(p.Ring))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 2-vertex polygon")
		}
	}()
	NewPolygon(Point{0, 0}, Point{1, 0})
}

func TestPolygonContainsPoint(t *testing.T) {
	sq := unitSquarePoly()
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true},      // vertex
		{Point{0.5, 0}, true},    // on edge
		{Point{1.5, 0.5}, false}, // outside right
		{Point{-0.1, 0.5}, false},
		{Point{0.5, 1.0001}, false},
	}
	for _, tc := range tests {
		if got := sq.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Concave polygon (arrow shape pointing right with notch at left).
	concave := NewPolygon(Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}, Point{2, 2})
	if !concave.ContainsPoint(Point{3, 2}) {
		t.Error("point in body of concave polygon should be inside")
	}
	if concave.ContainsPoint(Point{0.5, 2}) {
		t.Error("point in the notch must be outside")
	}
}

func TestPolygonArea(t *testing.T) {
	if a := unitSquarePoly().Area(); math.Abs(a-1) > 1e-12 {
		t.Errorf("unit square area = %v", a)
	}
	tri := NewPolygon(Point{0, 0}, Point{2, 0}, Point{0, 2})
	if a := tri.Area(); math.Abs(a-2) > 1e-12 {
		t.Errorf("triangle area = %v, want 2", a)
	}
	// Clockwise orientation must yield the same absolute area.
	triCW := NewPolygon(Point{0, 0}, Point{0, 2}, Point{2, 0})
	if a := triCW.Area(); math.Abs(a-2) > 1e-12 {
		t.Errorf("clockwise triangle area = %v, want 2", a)
	}
}

func TestPolygonMBR(t *testing.T) {
	tri := NewPolygon(Point{0, 1}, Point{3, 0}, Point{1, 5})
	if got := tri.MBR(); got != (Rect{0, 0, 3, 5}) {
		t.Errorf("MBR = %v", got)
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	tri := NewPolygon(Point{0, 0}, Point{4, 0}, Point{2, 4})
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"overlapping body", Rect{1, 1, 3, 2}, true},
		{"rect inside polygon", Rect{1.8, 0.5, 2.2, 1}, true},
		{"polygon inside rect", Rect{-1, -1, 5, 5}, true},
		{"edge crossing", Rect{-1, -1, 1, 1}, true},
		{"disjoint", Rect{5, 5, 6, 6}, false},
		{"mbr overlap but disjoint", Rect{3.5, 3, 4, 4}, false},
		{"touching vertex", Rect{4, 0, 5, 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tri.IntersectsRect(tc.r); got != tc.want {
				t.Errorf("IntersectsRect(%v) = %v, want %v", tc.r, got, tc.want)
			}
		})
	}
}

func TestPolygonDistAndDisk(t *testing.T) {
	sq := unitSquarePoly()
	if d := sq.DistSqToPoint(Point{0.5, 0.5}); d != 0 {
		t.Errorf("distance from interior point = %v, want 0", d)
	}
	if d := sq.DistSqToPoint(Point{2, 0.5}); math.Abs(d-1) > 1e-12 {
		t.Errorf("distance sq from (2,0.5) = %v, want 1", d)
	}
	if !sq.IntersectsDisk(Point{2, 0.5}, 1) {
		t.Error("disk reaching the edge should intersect")
	}
	if sq.IntersectsDisk(Point{2, 0.5}, 0.9) {
		t.Error("disk short of the edge must not intersect")
	}
}

func TestPolygonContainsRect(t *testing.T) {
	sq := unitSquarePoly()
	if !sq.ContainsRect(Rect{0.2, 0.2, 0.8, 0.8}) {
		t.Error("interior rect should be contained")
	}
	if sq.ContainsRect(Rect{0.5, 0.5, 1.5, 0.8}) {
		t.Error("rect crossing the boundary must not be contained")
	}
	if sq.ContainsRect(Rect{2, 2, 3, 3}) {
		t.Error("outside rect must not be contained")
	}
	// A rect spanning a concave notch has all corners inside the convex
	// hull but crosses edges.
	concave := NewPolygon(Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}, Point{2, 2})
	if concave.ContainsRect(Rect{0.5, 1.5, 3.5, 2.5}) {
		t.Error("rect through the notch must not be contained")
	}
}

func TestPolygonEdge(t *testing.T) {
	tri := NewPolygon(Point{0, 0}, Point{1, 0}, Point{0, 1})
	if tri.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d", tri.NumEdges())
	}
	last := tri.Edge(2)
	if last.A != (Point{0, 1}) || last.B != (Point{0, 0}) {
		t.Errorf("closing edge = %v", last)
	}
}
