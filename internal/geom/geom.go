// Package geom provides the geometry kernel used throughout the library:
// points, rectangles, line segments, linestrings and polygons, together
// with the exact intersection and distance predicates needed by the
// refinement step of spatial range queries.
//
// All coordinates are float64. The library conventionally normalizes data
// to the unit square [0,1]x[0,1], but nothing in this package depends on
// that. Rectangles are closed: boundaries touching counts as intersection,
// matching the semantics of the paper's filtering step.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector (represented as a Point).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dot returns the dot product of p and q seen as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product of p and q seen as
// vectors. Its sign gives the orientation of the turn from p to q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is an axis-parallel rectangle [MinX,MaxX] x [MinY,MaxY].
// In the paper's notation MinX=xl, MaxX=xu, MinY=yl, MaxY=yu.
// The zero Rect is the degenerate point at the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromPoints returns the minimum rectangle containing both p and q.
func RectFromPoints(p, q Point) Rect {
	return Rect{
		MinX: math.Min(p.X, q.X),
		MinY: math.Min(p.Y, q.Y),
		MaxX: math.Max(p.X, q.X),
		MaxY: math.Max(p.Y, q.Y),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Valid reports whether r is a well-formed rectangle (Min <= Max in both
// dimensions and no NaN coordinates).
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY // NaN fails both comparisons
}

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns the half-perimeter of r (used by the R*-tree split).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether r and s share at least one point
// (boundaries included).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX &&
		r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Contains reports whether s lies entirely inside r (boundaries included).
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && s.MaxX <= r.MaxX &&
		r.MinY <= s.MinY && s.MaxY <= r.MaxY
}

// ContainsPoint reports whether p lies inside r (boundaries included).
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// Intersection returns the overlap of r and s. If the rectangles do not
// intersect, the result is not Valid.
func (r Rect) Intersection(s Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the minimum rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
}

// Corners returns the four corners of r in counterclockwise order starting
// at (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// DistToPoint returns the minimum Euclidean distance from r to p
// (zero if p is inside r).
func (r Rect) DistToPoint(p Point) float64 {
	return math.Sqrt(r.DistSqToPoint(p))
}

// DistSqToPoint returns the squared minimum distance from r to p.
func (r Rect) DistSqToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// MaxDistSqToPoint returns the squared maximum distance from any point of r
// to p. Useful for deciding whether r lies entirely inside a disk.
func (r Rect) MaxDistSqToPoint(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// IntersectsDisk reports whether r shares at least one point with the disk
// of the given center and radius.
func (r Rect) IntersectsDisk(center Point, radius float64) bool {
	return r.DistSqToPoint(center) <= radius*radius
}

// InsideDisk reports whether r lies entirely inside the disk of the given
// center and radius.
func (r Rect) InsideDisk(center Point, radius float64) bool {
	return r.MaxDistSqToPoint(center) <= radius*radius
}

// Disk is a circular range: all points within Radius of Center.
type Disk struct {
	Center Point
	Radius float64
}

// MBR returns the minimum bounding rectangle of the disk.
func (d Disk) MBR() Rect {
	return Rect{
		MinX: d.Center.X - d.Radius,
		MinY: d.Center.Y - d.Radius,
		MaxX: d.Center.X + d.Radius,
		MaxY: d.Center.Y + d.Radius,
	}
}

// Contains reports whether p lies inside the disk (boundary included).
func (d Disk) Contains(p Point) bool {
	return d.Center.DistSq(p) <= d.Radius*d.Radius
}

// IntersectsRect reports whether the disk and r share at least one point,
// making Disk usable as an arbitrary query region.
func (d Disk) IntersectsRect(r Rect) bool {
	return r.IntersectsDisk(d.Center, d.Radius)
}

// ContainsRect reports whether r lies entirely inside the disk.
func (d Disk) ContainsRect(r Rect) bool {
	return r.InsideDisk(d.Center, d.Radius)
}
