package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genRect draws a random valid rectangle inside roughly [-5,5]^2.
func genRect(rnd *rand.Rand) Rect {
	p := Point{rnd.Float64()*10 - 5, rnd.Float64()*10 - 5}
	q := Point{rnd.Float64()*10 - 5, rnd.Float64()*10 - 5}
	return RectFromPoints(p, q)
}

func genPoint(rnd *rand.Rand) Point {
	return Point{rnd.Float64()*10 - 5, rnd.Float64()*10 - 5}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 2000}
}

// Rect intersection is symmetric and consistent with Intersection validity.
func TestQuickRectIntersectionConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := genRect(rnd), genRect(rnd)
		inter := a.Intersects(b)
		if inter != b.Intersects(a) {
			return false
		}
		return inter == a.Intersection(b).Valid()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Union contains both inputs; intersection (when valid) is contained in both.
func TestQuickRectUnionContains(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a, b := genRect(rnd), genRect(rnd)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if i := a.Intersection(b); i.Valid() {
			if !a.Contains(i) || !b.Contains(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// DistToPoint is zero exactly when the point is inside the rectangle, and
// min distance never exceeds max distance.
func TestQuickRectPointDistance(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r, p := genRect(rnd), genPoint(rnd)
		d := r.DistSqToPoint(p)
		if r.ContainsPoint(p) != (d == 0) {
			return false
		}
		return d <= r.MaxDistSqToPoint(p)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Segment-rect intersection agrees with a dense sampling of the segment:
// if any sampled point is inside the rect, IntersectsRect must say true.
func TestQuickSegmentRectSampling(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		r := genRect(rnd)
		s := Segment{genPoint(rnd), genPoint(rnd)}
		hit := s.IntersectsRect(r)
		for i := 0; i <= 100; i++ {
			t := float64(i) / 100
			p := Point{s.A.X + t*(s.B.X-s.A.X), s.A.Y + t*(s.B.Y-s.A.Y)}
			if r.ContainsPoint(p) && !hit {
				return false // sampled point inside but predicate says miss
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Segment distance to a point on the segment is (nearly) zero, and distance
// to any point never exceeds the distance to either endpoint.
func TestQuickSegmentDistance(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		s := Segment{genPoint(rnd), genPoint(rnd)}
		p := genPoint(rnd)
		d := s.DistSqToPoint(p)
		if d > p.DistSq(s.A)+1e-9 || d > p.DistSq(s.B)+1e-9 {
			return false
		}
		// A point interpolated on the segment has ~zero distance.
		t0 := rnd.Float64()
		on := Point{s.A.X + t0*(s.B.X-s.A.X), s.A.Y + t0*(s.B.Y-s.A.Y)}
		return s.DistSqToPoint(on) < 1e-18
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// A polygon's MBR contains every vertex, and IntersectsRect is implied by
// containment of any vertex.
func TestQuickPolygonInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		poly := genConvexPolygon(rnd)
		mbr := poly.MBR()
		for _, v := range poly.Ring {
			if !mbr.ContainsPoint(v) {
				return false
			}
		}
		r := genRect(rnd)
		for _, v := range poly.Ring {
			if r.ContainsPoint(v) && !poly.IntersectsRect(r) {
				return false
			}
		}
		// Interior point of a convex polygon (centroid) must be contained.
		var cx, cy float64
		for _, v := range poly.Ring {
			cx += v.X
			cy += v.Y
		}
		n := float64(len(poly.Ring))
		return poly.ContainsPoint(Point{cx / n, cy / n})
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// genConvexPolygon builds a random convex polygon by sorting points on a
// circle of random radius around a random center.
func genConvexPolygon(rnd *rand.Rand) *Polygon {
	n := 3 + rnd.Intn(8)
	c := genPoint(rnd)
	radius := 0.1 + rnd.Float64()*2
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rnd.Float64() * 2 * math.Pi
	}
	// Insertion sort (n <= 10).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && angles[j] < angles[j-1]; j-- {
			angles[j], angles[j-1] = angles[j-1], angles[j]
		}
	}
	// De-duplicate near-equal angles to keep the polygon simple.
	ring := make([]Point, 0, n)
	prev := math.Inf(-1)
	for _, a := range angles {
		if a-prev < 1e-6 {
			a = prev + 1e-6
		}
		prev = a
		ring = append(ring, Point{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)})
	}
	if len(ring) < 3 {
		ring = []Point{{c.X, c.Y}, {c.X + radius, c.Y}, {c.X, c.Y + radius}}
	}
	return NewPolygon(ring...)
}

// Polygon disk intersection agrees with brute-force: sampled boundary and
// interior distances.
func TestQuickPolygonDisk(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		poly := genConvexPolygon(rnd)
		q := genPoint(rnd)
		d2 := poly.DistSqToPoint(q)
		if poly.ContainsPoint(q) {
			return d2 == 0
		}
		// Distance must match the minimum over the edges.
		best := math.Inf(1)
		for i := 0; i < poly.NumEdges(); i++ {
			if e := poly.Edge(i).DistSqToPoint(q); e < best {
				best = e
			}
		}
		return math.Abs(best-d2) < 1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
