package geom

import (
	"math"
	"testing"
)

func TestSegmentIntersects(t *testing.T) {
	tests := []struct {
		name string
		s, u Segment
		want bool
	}{
		{"crossing X", Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		{"parallel", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{0, 1}, Point{2, 1}}, false},
		{"collinear overlap", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true},
		{"collinear disjoint", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		{"T junction", Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{1, 2}}, true},
		{"endpoint touch", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true},
		{"near miss", Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1.001, 1}, Point{2, 0}}, false},
		{"disjoint far", Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{5, 5}, Point{6, 6}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Intersects(tc.u); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.u.Intersects(tc.s); got != tc.want {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"endpoint inside", Segment{Point{2, 2}, Point{5, 5}}, true},
		{"both inside", Segment{Point{1.5, 1.5}, Point{2.5, 2.5}}, true},
		{"crossing through", Segment{Point{0, 2}, Point{4, 2}}, true},
		{"diagonal through", Segment{Point{0, 0}, Point{4, 4}}, true},
		{"clipping corner", Segment{Point{0, 3.8}, Point{3.9, -0.1}}, true},
		{"outside parallel", Segment{Point{0, 0}, Point{4, 0}}, false},
		{"outside diagonal near", Segment{Point{0, 3.5}, Point{0.9, 4.5}}, false},
		{"touching edge", Segment{Point{0, 1}, Point{4, 1}}, true},
		{"touching corner", Segment{Point{0, 4}, Point{1, 3}}, true},
		{"mbr overlap but miss", Segment{Point{0, 3.2}, Point{0.8, 4.2}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.IntersectsRect(r); got != tc.want {
				t.Errorf("IntersectsRect(%v, %v) = %v, want %v", tc.s, r, got, tc.want)
			}
		})
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{2, 3}, 3},  // perpendicular to interior
		{Point{-3, 4}, 5}, // beyond A endpoint
		{Point{7, 4}, 5},  // beyond B endpoint
		{Point{2, 0}, 0},  // on the segment
		{Point{4, 0}, 0},  // at endpoint
	}
	for _, tc := range tests {
		if got := s.DistToPoint(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate segment behaves like a point.
	d := Segment{Point{1, 1}, Point{1, 1}}
	if got := d.DistToPoint(Point{4, 5}); got != 5 {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

func TestSegmentIntersectsDisk(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if !s.IntersectsDisk(Point{2, 1}, 1) {
		t.Error("disk touching segment should intersect")
	}
	if s.IntersectsDisk(Point{2, 2}, 1) {
		t.Error("disk 2 away with radius 1 must not intersect")
	}
}

func TestSegmentMBR(t *testing.T) {
	s := Segment{Point{3, 1}, Point{0, 2}}
	if got := s.MBR(); got != (Rect{0, 1, 3, 2}) {
		t.Errorf("MBR = %v", got)
	}
}
