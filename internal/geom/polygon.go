package geom

import "math"

// Polygon is a simple polygon given by its outer ring. The ring is a
// sequence of at least three vertices; it is implicitly closed (the last
// vertex connects back to the first). Vertex order may be clockwise or
// counterclockwise. Holes are not modeled: the datasets the paper targets
// (TIGER edges, influence regions, meshes) are dominated by simple
// polygons, and the refinement predicates below only need the outer ring.
type Polygon struct {
	Ring []Point
}

// NewPolygon returns a polygon over the given ring. It panics if fewer
// than three vertices are given. A closing vertex equal to the first may
// be supplied and is dropped.
func NewPolygon(ring ...Point) *Polygon {
	if len(ring) >= 2 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	if len(ring) < 3 {
		panic("geom: polygon needs at least three vertices")
	}
	return &Polygon{Ring: ring}
}

// NumEdges returns the number of edges in the outer ring.
func (p *Polygon) NumEdges() int { return len(p.Ring) }

// Edge returns the i-th edge of the ring.
func (p *Polygon) Edge(i int) Segment {
	j := i + 1
	if j == len(p.Ring) {
		j = 0
	}
	return Segment{p.Ring[i], p.Ring[j]}
}

// MBR returns the minimum bounding rectangle of the polygon.
func (p *Polygon) MBR() Rect {
	r := Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
	for _, v := range p.Ring {
		r.MinX = math.Min(r.MinX, v.X)
		r.MinY = math.Min(r.MinY, v.Y)
		r.MaxX = math.Max(r.MaxX, v.X)
		r.MaxY = math.Max(r.MaxY, v.Y)
	}
	return r
}

// Area returns the absolute area of the polygon (shoelace formula).
func (p *Polygon) Area() float64 {
	var sum float64
	n := len(p.Ring)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += p.Ring[i].Cross(p.Ring[j])
	}
	return math.Abs(sum) / 2
}

// ContainsPoint reports whether q lies inside the polygon (boundary
// included), using the even-odd ray casting rule with an explicit
// on-boundary check for robustness.
func (p *Polygon) ContainsPoint(q Point) bool {
	inside := false
	n := len(p.Ring)
	for i := 0; i < n; i++ {
		a, b := p.Ring[i], p.Ring[(i+1)%n]
		// On-edge counts as contained.
		e := Segment{a, b}
		if orientation(a, b, q) == 0 && onSegment(e, q) {
			return true
		}
		if (a.Y > q.Y) != (b.Y > q.Y) {
			xCross := a.X + (q.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IntersectsRect reports whether the polygon shares at least one point
// with rectangle r: either an edge crosses the rectangle, the rectangle is
// entirely inside the polygon, or the polygon is entirely inside the
// rectangle. This is the exact refinement test for window queries over
// polygon data.
func (p *Polygon) IntersectsRect(r Rect) bool {
	// Any ring vertex inside the rectangle, or edge crossing it.
	for i := 0; i < p.NumEdges(); i++ {
		if p.Edge(i).IntersectsRect(r) {
			return true
		}
	}
	// No edge touches r: either disjoint, or one contains the other.
	// Polygon inside rect would imply vertices in r (handled above), so the
	// only remaining containment case is rect fully inside polygon.
	return p.ContainsPoint(Point{r.MinX, r.MinY})
}

// ContainsRect reports whether r lies entirely inside the polygon: all
// four corners are inside and no polygon edge enters the rectangle. The
// test is exact for simple polygons and makes Polygon usable as an
// arbitrary query region with covered-tile skipping.
func (p *Polygon) ContainsRect(r Rect) bool {
	for _, c := range r.Corners() {
		if !p.ContainsPoint(c) {
			return false
		}
	}
	for i := 0; i < p.NumEdges(); i++ {
		if p.Edge(i).IntersectsRect(r) {
			return false
		}
	}
	return true
}

// DistSqToPoint returns the squared minimum distance from q to the polygon
// (zero when q is inside).
func (p *Polygon) DistSqToPoint(q Point) float64 {
	if p.ContainsPoint(q) {
		return 0
	}
	best := math.Inf(1)
	for i := 0; i < p.NumEdges(); i++ {
		if d := p.Edge(i).DistSqToPoint(q); d < best {
			best = d
		}
	}
	return best
}

// IntersectsDisk reports whether the polygon comes within radius of
// center. This is the exact refinement test for disk queries over
// polygon data.
func (p *Polygon) IntersectsDisk(center Point, radius float64) bool {
	return p.DistSqToPoint(center) <= radius*radius
}
