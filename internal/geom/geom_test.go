package geom

import (
	"math"
	"testing"
)

func TestRectIntersects(t *testing.T) {
	tests := []struct {
		name string
		a, b Rect
		want bool
	}{
		{"overlap", Rect{0, 0, 2, 2}, Rect{1, 1, 3, 3}, true},
		{"contained", Rect{0, 0, 4, 4}, Rect{1, 1, 2, 2}, true},
		{"identical", Rect{0, 0, 1, 1}, Rect{0, 0, 1, 1}, true},
		{"touch edge", Rect{0, 0, 1, 1}, Rect{1, 0, 2, 1}, true},
		{"touch corner", Rect{0, 0, 1, 1}, Rect{1, 1, 2, 2}, true},
		{"disjoint x", Rect{0, 0, 1, 1}, Rect{2, 0, 3, 1}, false},
		{"disjoint y", Rect{0, 0, 1, 1}, Rect{0, 2, 1, 3}, false},
		{"disjoint both", Rect{0, 0, 1, 1}, Rect{5, 5, 6, 6}, false},
		{"degenerate point inside", Rect{0, 0, 2, 2}, Rect{1, 1, 1, 1}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Intersects(tc.b); got != tc.want {
				t.Errorf("Intersects(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if got := tc.b.Intersects(tc.a); got != tc.want {
				t.Errorf("Intersects not symmetric for %v, %v", tc.a, tc.b)
			}
		})
	}
}

func TestRectContains(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.Contains(Rect{2, 2, 5, 5}) {
		t.Error("expected containment of inner rect")
	}
	if !outer.Contains(outer) {
		t.Error("rect must contain itself")
	}
	if outer.Contains(Rect{-1, 2, 5, 5}) {
		t.Error("rect sticking out on MinX must not be contained")
	}
	if outer.Contains(Rect{2, 2, 11, 5}) {
		t.Error("rect sticking out on MaxX must not be contained")
	}
}

func TestRectIntersectionUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 1, 6, 3}
	got := a.Intersection(b)
	want := Rect{2, 1, 4, 3}
	if got != want {
		t.Errorf("Intersection = %v, want %v", got, want)
	}
	if u := a.Union(b); u != (Rect{0, 0, 6, 4}) {
		t.Errorf("Union = %v, want %v", u, Rect{0, 0, 6, 4})
	}
	disjoint := a.Intersection(Rect{10, 10, 11, 11})
	if disjoint.Valid() {
		t.Errorf("intersection of disjoint rects should be invalid, got %v", disjoint)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	tests := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},   // inside
		{Point{2, 2}, 0},   // on corner
		{Point{3, 1}, 1},   // right of
		{Point{1, -2}, 2},  // below
		{Point{5, 6}, 5},   // 3-4-5 triangle from corner (2,2)
		{Point{-3, -4}, 5}, // 3-4-5 from corner (0,0)
		{Point{-1, 1}, 1},  // left of
	}
	for _, tc := range tests {
		if got := r.DistToPoint(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("DistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectMaxDistSqToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	// Farthest corner from (0,0) is (2,2): dist sq = 8.
	if got := r.MaxDistSqToPoint(Point{0, 0}); got != 8 {
		t.Errorf("MaxDistSqToPoint = %v, want 8", got)
	}
	// From the center the farthest corners are all at dist sq 2.
	if got := r.MaxDistSqToPoint(Point{1, 1}); got != 2 {
		t.Errorf("MaxDistSqToPoint from center = %v, want 2", got)
	}
}

func TestRectDiskPredicates(t *testing.T) {
	r := Rect{1, 1, 2, 2}
	if !r.IntersectsDisk(Point{0, 0}, 1.5) {
		t.Error("disk reaching the near corner should intersect")
	}
	if r.IntersectsDisk(Point{0, 0}, 1.0) {
		t.Error("disk of radius 1 from origin should miss rect at (1,1)")
	}
	if !r.InsideDisk(Point{1.5, 1.5}, 1) {
		t.Error("rect should fit inside disk of radius 1 at its center")
	}
	if r.InsideDisk(Point{1.5, 1.5}, 0.5) {
		t.Error("small disk must not contain the whole rect")
	}
}

func TestDisk(t *testing.T) {
	d := Disk{Center: Point{1, 1}, Radius: 2}
	if got := d.MBR(); got != (Rect{-1, -1, 3, 3}) {
		t.Errorf("Disk.MBR = %v", got)
	}
	if !d.Contains(Point{1, 3}) {
		t.Error("boundary point should be contained")
	}
	if d.Contains(Point{4, 1}) {
		t.Error("outside point should not be contained")
	}
}

func TestPointOps(t *testing.T) {
	p, q := Point{3, 4}, Point{0, 0}
	if p.Dist(q) != 5 {
		t.Errorf("Dist = %v, want 5", p.Dist(q))
	}
	if p.DistSq(q) != 25 {
		t.Errorf("DistSq = %v, want 25", p.DistSq(q))
	}
	if c := (Point{1, 0}).Cross(Point{0, 1}); c != 1 {
		t.Errorf("Cross = %v, want 1", c)
	}
	if d := (Point{1, 2}).Dot(Point{3, 4}); d != 11 {
		t.Errorf("Dot = %v, want 11", d)
	}
}

func TestRectString(t *testing.T) {
	if s := (Rect{1, 2, 3, 4}).String(); s != "[1,3]x[2,4]" {
		t.Errorf("String = %q", s)
	}
}

func TestDiskRegionMethods(t *testing.T) {
	d := Disk{Center: Point{1, 1}, Radius: 1}
	if !d.IntersectsRect(Rect{1.5, 1.5, 3, 3}) {
		t.Error("overlapping rect should intersect")
	}
	if d.IntersectsRect(Rect{3, 3, 4, 4}) {
		t.Error("far rect must not intersect")
	}
	if !d.ContainsRect(Rect{0.8, 0.8, 1.2, 1.2}) {
		t.Error("small central rect should be contained")
	}
	if d.ContainsRect(Rect{0, 0, 2, 2}) {
		t.Error("circumscribing rect must not be contained")
	}
}

func TestRectValid(t *testing.T) {
	if !(Rect{0, 0, 1, 1}).Valid() {
		t.Error("normal rect must be valid")
	}
	if (Rect{1, 0, 0, 1}).Valid() {
		t.Error("inverted rect must be invalid")
	}
	if (Rect{math.NaN(), 0, 1, 1}).Valid() {
		t.Error("NaN rect must be invalid")
	}
}

func TestRectGeometryHelpers(t *testing.T) {
	r := Rect{0, 0, 3, 4}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 || r.Margin() != 7 {
		t.Errorf("extent helpers wrong: w=%v h=%v a=%v m=%v", r.Width(), r.Height(), r.Area(), r.Margin())
	}
	if r.Center() != (Point{1.5, 2}) {
		t.Errorf("Center = %v", r.Center())
	}
	c := r.Corners()
	if c[0] != (Point{0, 0}) || c[2] != (Point{3, 4}) {
		t.Errorf("Corners = %v", c)
	}
	if e := r.Expand(1); e != (Rect{-1, -1, 4, 5}) {
		t.Errorf("Expand = %v", e)
	}
}
