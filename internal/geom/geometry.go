package geom

// Geometry is the interface implemented by all exact object
// representations. Spatial indices in this library manage MBRs; the
// Geometry behind an MBR is only consulted during the refinement step.
type Geometry interface {
	// MBR returns the object's minimum bounding rectangle.
	MBR() Rect
	// IntersectsRect reports whether the exact geometry shares at least
	// one point with the rectangle.
	IntersectsRect(Rect) bool
	// IntersectsDisk reports whether the exact geometry comes within
	// radius of center.
	IntersectsDisk(center Point, radius float64) bool
}

// RectGeometry adapts a plain rectangle to the Geometry interface, for
// datasets whose objects are themselves rectangles (e.g., the synthetic
// workloads of Table IV).
type RectGeometry Rect

// MBR implements Geometry.
func (g RectGeometry) MBR() Rect { return Rect(g) }

// IntersectsRect implements Geometry.
func (g RectGeometry) IntersectsRect(r Rect) bool { return Rect(g).Intersects(r) }

// IntersectsDisk implements Geometry.
func (g RectGeometry) IntersectsDisk(c Point, radius float64) bool {
	return Rect(g).IntersectsDisk(c, radius)
}

// PointGeometry adapts a point to the Geometry interface.
type PointGeometry Point

// MBR implements Geometry.
func (g PointGeometry) MBR() Rect {
	return Rect{MinX: g.X, MinY: g.Y, MaxX: g.X, MaxY: g.Y}
}

// IntersectsRect implements Geometry.
func (g PointGeometry) IntersectsRect(r Rect) bool { return r.ContainsPoint(Point(g)) }

// IntersectsDisk implements Geometry.
func (g PointGeometry) IntersectsDisk(c Point, radius float64) bool {
	return Point(g).DistSq(c) <= radius*radius
}

// Compile-time interface checks.
var (
	_ Geometry = RectGeometry{}
	_ Geometry = PointGeometry{}
	_ Geometry = (*LineString)(nil)
	_ Geometry = (*Polygon)(nil)
)
