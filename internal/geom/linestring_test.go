package geom

import (
	"math"
	"testing"
)

func TestLineStringBasics(t *testing.T) {
	l := NewLineString(Point{0, 0}, Point{3, 0}, Point{3, 4})
	if l.NumSegments() != 2 {
		t.Fatalf("NumSegments = %d", l.NumSegments())
	}
	if got := l.MBR(); got != (Rect{0, 0, 3, 4}) {
		t.Errorf("MBR = %v", got)
	}
	if got := l.Length(); math.Abs(got-7) > 1e-12 {
		t.Errorf("Length = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 1-point linestring")
		}
	}()
	NewLineString(Point{0, 0})
}

func TestLineStringIntersectsRect(t *testing.T) {
	// L-shaped polyline.
	l := NewLineString(Point{0, 0}, Point{4, 0}, Point{4, 4})
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"crosses horizontal arm", Rect{1, -1, 2, 1}, true},
		{"crosses vertical arm", Rect{3, 1, 5, 2}, true},
		{"inside the elbow gap", Rect{1, 1, 3, 3}, false},
		{"touches corner point", Rect{4, 0, 5, 1}, true},
		{"fully disjoint", Rect{-3, -3, -1, -1}, false},
		{"contains whole linestring", Rect{-1, -1, 5, 5}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := l.IntersectsRect(tc.r); got != tc.want {
				t.Errorf("IntersectsRect(%v) = %v, want %v", tc.r, got, tc.want)
			}
		})
	}
}

func TestLineStringDistAndDisk(t *testing.T) {
	l := NewLineString(Point{0, 0}, Point{4, 0})
	if d := l.DistSqToPoint(Point{2, 3}); math.Abs(d-9) > 1e-12 {
		t.Errorf("DistSqToPoint = %v, want 9", d)
	}
	if !l.IntersectsDisk(Point{2, 3}, 3) {
		t.Error("disk of radius 3 should touch")
	}
	if l.IntersectsDisk(Point{2, 3}, 2.9) {
		t.Error("disk of radius 2.9 must not touch")
	}
	// Distance should consider all segments.
	bent := NewLineString(Point{0, 0}, Point{4, 0}, Point{4, 4})
	if d := bent.DistSqToPoint(Point{5, 4}); math.Abs(d-1) > 1e-12 {
		t.Errorf("bent DistSqToPoint = %v, want 1", d)
	}
}

func TestGeometryAdapters(t *testing.T) {
	rg := RectGeometry(Rect{0, 0, 2, 2})
	if rg.MBR() != (Rect{0, 0, 2, 2}) {
		t.Error("RectGeometry.MBR mismatch")
	}
	if !rg.IntersectsRect(Rect{1, 1, 3, 3}) || rg.IntersectsRect(Rect{3, 3, 4, 4}) {
		t.Error("RectGeometry.IntersectsRect wrong")
	}
	if !rg.IntersectsDisk(Point{3, 1}, 1) || rg.IntersectsDisk(Point{4, 1}, 1) {
		t.Error("RectGeometry.IntersectsDisk wrong")
	}

	pg := PointGeometry(Point{1, 1})
	if pg.MBR() != (Rect{1, 1, 1, 1}) {
		t.Error("PointGeometry.MBR mismatch")
	}
	if !pg.IntersectsRect(Rect{0, 0, 2, 2}) || pg.IntersectsRect(Rect{2, 2, 3, 3}) {
		t.Error("PointGeometry.IntersectsRect wrong")
	}
	if !pg.IntersectsDisk(Point{1, 2}, 1) || pg.IntersectsDisk(Point{1, 3}, 1) {
		t.Error("PointGeometry.IntersectsDisk wrong")
	}
}
