package geom

import "math"

// Segment is a straight line segment between two points.
type Segment struct {
	A, B Point
}

// MBR returns the minimum bounding rectangle of the segment.
func (s Segment) MBR() Rect { return RectFromPoints(s.A, s.B) }

// orientation returns >0 if the triple (a,b,c) makes a counterclockwise
// turn, <0 for clockwise, and 0 when collinear.
func orientation(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether point p, known to be collinear with s, lies on s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X) <= p.X && p.X <= math.Max(s.A.X, s.B.X) &&
		math.Min(s.A.Y, s.B.Y) <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	d1 := orientation(s.A, s.B, t.A)
	d2 := orientation(s.A, s.B, t.B)
	d3 := orientation(t.A, t.B, s.A)
	d4 := orientation(t.A, t.B, s.B)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	// Collinear / endpoint-touching cases.
	if d1 == 0 && onSegment(s, t.A) {
		return true
	}
	if d2 == 0 && onSegment(s, t.B) {
		return true
	}
	if d3 == 0 && onSegment(t, s.A) {
		return true
	}
	if d4 == 0 && onSegment(t, s.B) {
		return true
	}
	return false
}

// IntersectsRect reports whether the segment shares at least one point with
// rectangle r. It uses the Cohen–Sutherland style trivial accept/reject
// followed by edge tests, so it is exact for closed rectangles.
func (s Segment) IntersectsRect(r Rect) bool {
	// Trivial accept: an endpoint inside the rectangle.
	if r.ContainsPoint(s.A) || r.ContainsPoint(s.B) {
		return true
	}
	// Trivial reject: the segment's MBR misses r.
	if !s.MBR().Intersects(r) {
		return false
	}
	// Otherwise the segment may cross the rectangle; test its four edges.
	c := r.Corners()
	for i := 0; i < 4; i++ {
		edge := Segment{c[i], c[(i+1)%4]}
		if s.Intersects(edge) {
			return true
		}
	}
	return false
}

// DistSqToPoint returns the squared minimum distance from p to the segment.
func (s Segment) DistSqToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	ap := p.Sub(s.A)
	lenSq := ab.Dot(ab)
	if lenSq == 0 { // degenerate segment
		return s.A.DistSq(p)
	}
	t := ap.Dot(ab) / lenSq
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := Point{s.A.X + t*ab.X, s.A.Y + t*ab.Y}
	return closest.DistSq(p)
}

// DistToPoint returns the minimum distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	return math.Sqrt(s.DistSqToPoint(p))
}

// IntersectsDisk reports whether the segment shares a point with the disk.
func (s Segment) IntersectsDisk(center Point, radius float64) bool {
	return s.DistSqToPoint(center) <= radius*radius
}
