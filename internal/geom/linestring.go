package geom

import "math"

// LineString is a polyline: a sequence of at least two points connected by
// straight segments. Linestrings model road networks, rivers, traces and
// similar non-point, non-areal spatial objects.
type LineString struct {
	Points []Point
}

// NewLineString returns a linestring over pts. It panics if fewer than two
// points are given; a linestring with a single vertex is not meaningful.
func NewLineString(pts ...Point) *LineString {
	if len(pts) < 2 {
		panic("geom: linestring needs at least two points")
	}
	return &LineString{Points: pts}
}

// NumSegments returns the number of straight segments in the linestring.
func (l *LineString) NumSegments() int { return len(l.Points) - 1 }

// Segment returns the i-th straight segment.
func (l *LineString) Segment(i int) Segment {
	return Segment{l.Points[i], l.Points[i+1]}
}

// MBR returns the minimum bounding rectangle of the linestring.
func (l *LineString) MBR() Rect {
	r := Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
	for _, p := range l.Points {
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r
}

// IntersectsRect reports whether any segment of the linestring shares a
// point with rectangle r. This is the exact refinement test for window
// queries over linestring data.
func (l *LineString) IntersectsRect(r Rect) bool {
	for i := 0; i < l.NumSegments(); i++ {
		if l.Segment(i).IntersectsRect(r) {
			return true
		}
	}
	return false
}

// DistSqToPoint returns the squared minimum distance from p to the
// linestring.
func (l *LineString) DistSqToPoint(p Point) float64 {
	best := math.Inf(1)
	for i := 0; i < l.NumSegments(); i++ {
		if d := l.Segment(i).DistSqToPoint(p); d < best {
			best = d
		}
	}
	return best
}

// IntersectsDisk reports whether the linestring comes within radius of
// center. This is the exact refinement test for disk queries over
// linestring data.
func (l *LineString) IntersectsDisk(center Point, radius float64) bool {
	return l.DistSqToPoint(center) <= radius*radius
}

// Length returns the total Euclidean length of the linestring.
func (l *LineString) Length() float64 {
	var sum float64
	for i := 0; i < l.NumSegments(); i++ {
		sum += l.Points[i].Dist(l.Points[i+1])
	}
	return sum
}
