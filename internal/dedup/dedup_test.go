package dedup

import (
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
)

func TestRefPoint(t *testing.T) {
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 4, MaxY: 4}
	tests := []struct {
		w    geom.Rect
		want geom.Point
	}{
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}, geom.Point{X: 1, Y: 1}}, // w contains r
		{geom.Rect{MinX: 2, MinY: 0, MaxX: 5, MaxY: 5}, geom.Point{X: 2, Y: 1}}, // w starts inside r in x
		{geom.Rect{MinX: 2, MinY: 3, MaxX: 5, MaxY: 5}, geom.Point{X: 2, Y: 3}}, // both
		{geom.Rect{MinX: 0, MinY: 2, MaxX: 3, MaxY: 3}, geom.Point{X: 1, Y: 2}},
	}
	for _, tc := range tests {
		if got := RefPoint(r, tc.w); got != tc.want {
			t.Errorf("RefPoint(%v, %v) = %v, want %v", r, tc.w, got, tc.want)
		}
	}
}

func TestHash(t *testing.T) {
	h := NewHash()
	if !h.FirstTime(3) {
		t.Error("first occurrence rejected")
	}
	if h.FirstTime(3) {
		t.Error("duplicate accepted")
	}
	if !h.FirstTime(4) {
		t.Error("distinct id rejected")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
	h.Reset()
	if h.Len() != 0 || !h.FirstTime(3) {
		t.Error("Reset did not clear")
	}
}

func TestActiveBorder(t *testing.T) {
	ab := NewActiveBorder()
	// Object 1 lives in positions 0..2; object 2 in position 1 only.
	ab.Advance(0)
	if !ab.FirstTime(1, 2) {
		t.Error("object 1 first occurrence rejected")
	}
	ab.Advance(1)
	if ab.FirstTime(1, 2) {
		t.Error("object 1 duplicate accepted while live")
	}
	if !ab.FirstTime(2, 1) {
		t.Error("object 2 first occurrence rejected")
	}
	if ab.MaxSize() != 2 {
		t.Errorf("MaxSize = %d, want 2", ab.MaxSize())
	}
	// After passing position 2, object 1 is evicted; table shrinks — the
	// bounded-memory property.
	ab.Advance(3)
	if len(ab.live) != 0 {
		t.Errorf("border not evicted: %d live", len(ab.live))
	}
	ab.Reset()
	if ab.MaxSize() != 0 || ab.cursor != 0 {
		t.Error("Reset incomplete")
	}
}

// An object whose last position is already behind the cursor should be
// reported but not tracked.
func TestActiveBorderPastObjects(t *testing.T) {
	ab := NewActiveBorder()
	ab.Advance(5)
	if !ab.FirstTime(9, 3) {
		t.Error("past object first occurrence rejected")
	}
	if len(ab.live) != 0 {
		t.Error("past object tracked needlessly")
	}
}
