// Package dedup implements the duplicate-elimination techniques that
// space-oriented partitioning indices traditionally pair with object
// replication, and which the two-layer index makes unnecessary:
//
//   - the reference point technique of Dittrich and Seeger (ICDE 2000),
//     the state of the art the paper compares against,
//   - plain hash-based elimination,
//   - the bounded-memory active-border variant of Aref and Samet
//     (CIKM 1994), which exploits an ordered scan of the partitions.
//
// These are the substrate of the 1-layer baseline index and of the
// deduplication ablation benchmarks.
package dedup

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// RefPoint returns the reference point of the intersection between an
// object MBR r and a query window w: the minimum corner of r ∩ w. The
// caller reports r only in the partition containing this point, which is
// unique, so no duplicates are reported.
func RefPoint(r, w geom.Rect) geom.Point {
	p := geom.Point{X: r.MinX, Y: r.MinY}
	if w.MinX > p.X {
		p.X = w.MinX
	}
	if w.MinY > p.Y {
		p.Y = w.MinY
	}
	return p
}

// Hash is the classic hash-based duplicate eliminator: it remembers every
// reported ID. Memory grows with the result size, which is exactly the
// weakness the reference point technique removes.
type Hash struct {
	seen map[spatial.ID]struct{}
}

// NewHash returns an empty eliminator.
func NewHash() *Hash {
	return &Hash{seen: make(map[spatial.ID]struct{})}
}

// FirstTime reports whether id has not been seen before, recording it.
func (h *Hash) FirstTime(id spatial.ID) bool {
	if _, ok := h.seen[id]; ok {
		return false
	}
	h.seen[id] = struct{}{}
	return true
}

// Reset clears the eliminator for reuse across queries.
func (h *Hash) Reset() {
	clear(h.seen)
}

// Len returns the number of distinct IDs recorded (the hash table size).
func (h *Hash) Len() int { return len(h.seen) }

// ActiveBorder is the bounded-memory eliminator of Aref and Samet. The
// caller processes partitions in row-major order and tells the border the
// last tile column each object can appear in; once the scan passes an
// object's last replica, the object is evicted, so the table holds only
// the "active border" instead of the whole result set.
type ActiveBorder struct {
	// live maps an ID to the last (row-major) partition order index in
	// which a replica of the object can appear.
	live    map[spatial.ID]int
	maxSize int
	cursor  int
}

// NewActiveBorder returns an empty active border.
func NewActiveBorder() *ActiveBorder {
	return &ActiveBorder{live: make(map[spatial.ID]int)}
}

// Advance moves the scan cursor to partition order index pos (row-major),
// evicting every object whose last replica lies strictly before pos.
// Partitions must be visited in nondecreasing order.
func (ab *ActiveBorder) Advance(pos int) {
	ab.cursor = pos
	for id, last := range ab.live {
		if last < pos {
			delete(ab.live, id)
		}
	}
}

// FirstTime reports whether id has not been seen in the live border,
// recording it with the order index of its last possible replica.
func (ab *ActiveBorder) FirstTime(id spatial.ID, lastPos int) bool {
	if _, ok := ab.live[id]; ok {
		return false
	}
	if lastPos >= ab.cursor { // no need to track objects already past
		ab.live[id] = lastPos
		if len(ab.live) > ab.maxSize {
			ab.maxSize = len(ab.live)
		}
	}
	return true
}

// MaxSize returns the high-water mark of the border table, the quantity
// Aref and Samet bound.
func (ab *ActiveBorder) MaxSize() int { return ab.maxSize }

// Reset clears the border for reuse.
func (ab *ActiveBorder) Reset() {
	clear(ab.live)
	ab.maxSize = 0
	ab.cursor = 0
}
