// Package obsv is a small, dependency-free metrics registry exposing
// counters, gauges, and histograms in the Prometheus text exposition
// format (version 0.0.4).
//
// It exists so the serving layer can publish engine metrics — query
// latencies, live-index publish rates, WAL fsync latencies, partition
// statistics — without pulling the Prometheus client library into a
// repository that otherwise uses only the standard library.
//
// Instruments are registered once (typically at server construction) and
// updated from hot paths with a single atomic operation; a scrape walks
// the registry and renders every family in registration order, so the
// output is stable and diffable. Callback instruments (CounterFunc,
// GaugeFunc) are evaluated at scrape time, which is how point-in-time
// engine state (epochs, segment counts, partition skew) is exposed
// without any background sampling goroutine.
//
// Every metric name registered here must be documented in
// docs/OBSERVABILITY.md; `make docs-check` enforces that.
package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 updated with atomic bit operations, so
// instruments never lock on the update path.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// series is one rendered line: a label set and a value source.
type series interface {
	labels() string // rendered {k="v",...} or ""
	write(w io.Writer, name string) error
}

// family is one registered metric family: a name, HELP/TYPE metadata,
// and its series (one per label set; exactly one for unlabeled
// instruments).
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	mu     sync.Mutex
	series []series
}

func (f *family) add(s series) {
	f.mu.Lock()
	f.series = append(f.series, s)
	f.mu.Unlock()
}

// snapshotSeries returns the family's series sorted by label string for
// stable output. New series only ever get appended, so the copy is
// consistent.
func (f *family) snapshotSeries() []series {
	f.mu.Lock()
	out := make([]series, len(f.series))
	copy(out, f.series)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels() < out[j].labels() })
	return out
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; registration typically
// happens once at startup and scrapes at any time after.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obsv: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obsv: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Names returns every registered metric family name, in registration
// order. Used by the documentation checker: each name must appear in
// docs/OBSERVABILITY.md.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.fams))
	for i, f := range r.fams {
		out[i] = f.name
	}
	return out
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels formats a label set. Keys are given at Vec registration,
// values at With time; both are rendered escaped.
func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float the way Prometheus expects: integers
// without an exponent, specials as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// ---- counter --------------------------------------------------------------

// Counter is a monotonically increasing value.
type Counter struct {
	val atomicFloat
	lbl string
}

// Inc adds one.
func (c *Counter) Inc() { c.val.Add(1) }

// Add increases the counter; negative deltas are a programming error and
// ignored (counters are monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.val.Add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.val.Load() }

func (c *Counter) labels() string { return c.lbl }
func (c *Counter) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, c.lbl, formatValue(c.val.Load()))
	return err
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter")
	c := &Counter{}
	f.add(c)
	return c
}

// CounterVec is a counter family keyed by one or more label values.
type CounterVec struct {
	fam  *family
	keys []string
	mu   sync.Mutex
	kids map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	f := r.register(name, help, "counter")
	return &CounterVec{fam: f, keys: labelKeys, kids: make(map[string]*Counter)}
}

// With returns the counter for the given label values, creating it on
// first use. The child is cached; hot paths should hold the returned
// *Counter rather than calling With per update.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if len(labelValues) != len(v.keys) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d",
			v.fam.name, len(v.keys), len(labelValues)))
	}
	lbl := renderLabels(v.keys, labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[lbl]; ok {
		return c
	}
	c := &Counter{lbl: lbl}
	v.kids[lbl] = c
	v.fam.add(c)
	return c
}

// ---- gauge ----------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	val atomicFloat
	lbl string
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.val.Set(v) }

// Add adjusts the value by the (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.val.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.Load() }

func (g *Gauge) labels() string { return g.lbl }
func (g *Gauge) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, g.lbl, formatValue(g.val.Load()))
	return err
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge")
	g := &Gauge{}
	f.add(g)
	return g
}

// funcSeries is a series whose value is computed at scrape time.
type funcSeries struct {
	fn  func() float64
	lbl string
}

func (s *funcSeries) labels() string { return s.lbl }
func (s *funcSeries) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.lbl, formatValue(s.fn()))
	return err
}

// GaugeFunc registers a gauge whose value is fn(), evaluated at every
// scrape. This is how point-in-time engine state (snapshot epoch, log
// segment counts, partition occupancy) is exposed without sampling.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge")
	f.add(&funcSeries{fn: fn})
}

// CounterFunc registers a counter whose value is fn(), evaluated at
// every scrape. fn must be monotone (it typically reads an engine-owned
// cumulative counter, e.g. WAL fsyncs since open).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "counter")
	f.add(&funcSeries{fn: fn})
}

// GaugeVecFunc registers a gauge family whose children are callbacks,
// added with its Add method (label values + fn per child).
type GaugeVecFunc struct {
	fam  *family
	keys []string
}

// GaugeVecFunc registers a labeled callback gauge family.
func (r *Registry) GaugeVecFunc(name, help string, labelKeys ...string) *GaugeVecFunc {
	f := r.register(name, help, "gauge")
	return &GaugeVecFunc{fam: f, keys: labelKeys}
}

// Add registers one child evaluated at scrape time.
func (v *GaugeVecFunc) Add(fn func() float64, labelValues ...string) {
	if len(labelValues) != len(v.keys) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d",
			v.fam.name, len(v.keys), len(labelValues)))
	}
	v.fam.add(&funcSeries{fn: fn, lbl: renderLabels(v.keys, labelValues)})
}

// CounterVecFunc registers a counter family whose children are callbacks,
// added with its Add method. Each fn must be monotone, like CounterFunc.
type CounterVecFunc struct {
	fam  *family
	keys []string
}

// CounterVecFunc registers a labeled callback counter family.
func (r *Registry) CounterVecFunc(name, help string, labelKeys ...string) *CounterVecFunc {
	f := r.register(name, help, "counter")
	return &CounterVecFunc{fam: f, keys: labelKeys}
}

// Add registers one child evaluated at scrape time.
func (v *CounterVecFunc) Add(fn func() float64, labelValues ...string) {
	if len(labelValues) != len(v.keys) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d",
			v.fam.name, len(v.keys), len(labelValues)))
	}
	v.fam.add(&funcSeries{fn: fn, lbl: renderLabels(v.keys, labelValues)})
}

// ---- histogram ------------------------------------------------------------

// DefBuckets are latency-oriented default buckets in seconds, spanning
// 50µs to 10s — the range from a cached single-tile lookup to a
// pathological scan.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets; rendered with
// the standard _bucket/_sum/_count series.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // one per bound; +Inf is implicit via count
	sum    atomicFloat
	count  atomic.Uint64
	lbl    string
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short and the common (fast-latency)
	// case exits early.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

func (h *Histogram) labels() string { return h.lbl }
func (h *Histogram) write(w io.Writer, name string) error {
	// Per-bucket counts are stored non-cumulative; exposition is
	// cumulative per the format.
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := h.writeBucket(w, name, formatValue(b), cum); err != nil {
			return err
		}
	}
	total := h.count.Load()
	if err := h.writeBucket(w, name, "+Inf", total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, h.lbl, formatValue(h.sum.Load())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, h.lbl, total)
	return err
}

func (h *Histogram) writeBucket(w io.Writer, name, le string, n uint64) error {
	lbl := h.lbl
	if lbl == "" {
		lbl = fmt.Sprintf(`{le="%s"}`, le)
	} else {
		lbl = lbl[:len(lbl)-1] + fmt.Sprintf(`,le="%s"}`, le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, n)
	return err
}

func newHistogram(bounds []float64, lbl string) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)),
		lbl:    lbl,
	}
}

// Histogram registers an unlabeled histogram; nil buckets selects
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram")
	h := newHistogram(buckets, "")
	f.add(h)
	return h
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	fam    *family
	keys   []string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// HistogramVec registers a labeled histogram family; nil buckets selects
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	f := r.register(name, help, "histogram")
	return &HistogramVec{
		fam: f, keys: labelKeys, bounds: buckets,
		kids: make(map[string]*Histogram),
	}
}

// With returns the histogram for the given label values, creating it on
// first use. Hot paths should cache the child.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(v.keys) {
		panic(fmt.Sprintf("obsv: %s expects %d label values, got %d",
			v.fam.name, len(v.keys), len(labelValues)))
	}
	lbl := renderLabels(v.keys, labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[lbl]; ok {
		return h
	}
	h := newHistogram(v.bounds, lbl)
	v.kids[lbl] = h
	v.fam.add(h)
	return h
}

// ---- exposition -----------------------------------------------------------

// WriteTo renders every family in registration order as Prometheus text
// format 0.0.4.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return cw.n, err
			}
		}
		if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return cw.n, err
		}
		for _, s := range f.snapshotSeries() {
			if err := s.write(cw, f.name); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ContentType is the value served with the exposition body.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP renders the registry, making it mountable as the /metrics
// handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.WriteTo(w)
}
