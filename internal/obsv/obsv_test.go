package obsv

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the rendered text format: HELP/TYPE lines,
// label rendering, cumulative histogram buckets, stable ordering.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations performed.")
	c.Add(3)
	cv := r.CounterVec("test_requests_total", "Requests by endpoint.", "endpoint")
	cv.With("window").Add(2)
	cv.With("disk").Inc()
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("test_epoch", "Current epoch.", func() float64 { return 42 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(99) // above the last bound: only +Inf

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_ops_total Operations performed.
# TYPE test_ops_total counter
test_ops_total 3
# HELP test_requests_total Requests by endpoint.
# TYPE test_requests_total counter
test_requests_total{endpoint="disk"} 1
test_requests_total{endpoint="window"} 2
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 5
# HELP test_epoch Current epoch.
# TYPE test_epoch gauge
test_epoch 42
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.1"} 1
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 99.55
test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	r.Gauge("b", "")
	r.HistogramVec("c_seconds", "", nil, "endpoint")
	got := r.Names()
	want := []string{"a_total", "b", "c_seconds"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter after negative Add = %v, want 5", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "", "path")
	cv.With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	r.WriteTo(&b)
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label not found; got:\n%s", b.String())
	}
}

// TestConcurrentUpdates hammers every instrument type from many
// goroutines (run under -race) and checks the totals add up.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_ops_total", "")
	cv := r.CounterVec("conc_req_total", "", "ep")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_lat_seconds", "", []float64{0.5})
	hv := r.HistogramVec("conc_lat2_seconds", "", []float64{0.5}, "ep")

	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := []string{"a", "b", "c"}[i%3]
			for j := 0; j < perG; j++ {
				c.Inc()
				cv.With(ep).Add(2)
				g.Add(1)
				h.Observe(0.25)
				hv.With(ep).Observe(0.75)
				// Interleave scrapes with updates.
				if j%500 == 0 {
					var b strings.Builder
					if _, err := r.WriteTo(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %v, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	sum := cv.With("a").Value() + cv.With("b").Value() + cv.With("c").Value()
	if sum != 2*total {
		t.Errorf("countervec sum = %v, want %d", sum, 2*total)
	}
}
