// Package spatial defines the data model shared by every index in the
// library: the (MBR, object-id) pair that indices manage during the
// filtering step, the dataset abstraction that couples MBRs with exact
// geometries, and brute-force reference implementations of the supported
// queries used as ground truth in tests.
package spatial

import (
	"fmt"

	"github.com/twolayer/twolayer/internal/geom"
)

// ID identifies an object in a dataset. IDs are dense: a dataset with n
// objects uses IDs 0..n-1, which lets indices use plain slices as
// id-addressed side tables.
type ID = uint32

// Entry is an (MBR, object-id) pair, the unit stored in every index's
// filtering structure. The exact geometry of the object is stored once in
// the owning Dataset and fetched on demand by ID during refinement.
type Entry struct {
	Rect geom.Rect
	ID   ID
}

// Dataset couples the MBR table with the (optional) exact geometries.
// Entries[i].ID == i holds after normalization; indices rely on it.
type Dataset struct {
	Entries []Entry
	// Geoms holds the exact geometry per ID. It may be nil for
	// rectangle-only workloads (the MBR is the geometry).
	Geoms []geom.Geometry
}

// NewDataset builds a dataset from MBRs only (rectangle objects).
func NewDataset(rects []geom.Rect) *Dataset {
	entries := make([]Entry, len(rects))
	for i, r := range rects {
		entries[i] = Entry{Rect: r, ID: ID(i)}
	}
	return &Dataset{Entries: entries}
}

// NewGeomDataset builds a dataset from exact geometries, deriving MBRs.
func NewGeomDataset(geoms []geom.Geometry) *Dataset {
	entries := make([]Entry, len(geoms))
	for i, g := range geoms {
		entries[i] = Entry{Rect: g.MBR(), ID: ID(i)}
	}
	return &Dataset{Entries: entries, Geoms: geoms}
}

// Geom returns the exact geometry for id, falling back to the MBR when no
// exact geometries are stored.
func (d *Dataset) Geom(id ID) geom.Geometry {
	if d.Geoms != nil {
		return d.Geoms[id]
	}
	return geom.RectGeometry(d.Entries[id].Rect)
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Entries) }

// MBR returns the minimum bounding rectangle of all entries, or the unit
// square for an empty dataset.
func (d *Dataset) MBR() geom.Rect {
	if len(d.Entries) == 0 {
		return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	mbr := d.Entries[0].Rect
	for _, e := range d.Entries[1:] {
		mbr = mbr.Union(e.Rect)
	}
	return mbr
}

// Validate checks the dense-ID invariant.
func (d *Dataset) Validate() error {
	for i, e := range d.Entries {
		if e.ID != ID(i) {
			return fmt.Errorf("spatial: entry %d has ID %d, want dense IDs", i, e.ID)
		}
		if !e.Rect.Valid() {
			return fmt.Errorf("spatial: entry %d has invalid rect %v", i, e.Rect)
		}
	}
	if d.Geoms != nil && len(d.Geoms) != len(d.Entries) {
		return fmt.Errorf("spatial: %d geometries for %d entries", len(d.Geoms), len(d.Entries))
	}
	return nil
}

// BruteWindow returns the IDs of all entries whose MBR intersects w, by
// exhaustive scan. Reference implementation for tests.
func BruteWindow(entries []Entry, w geom.Rect) []ID {
	var out []ID
	for _, e := range entries {
		if e.Rect.Intersects(w) {
			out = append(out, e.ID)
		}
	}
	return out
}

// BruteDisk returns the IDs of all entries whose MBR intersects the disk
// (center, radius), by exhaustive scan. Reference implementation for tests.
func BruteDisk(entries []Entry, center geom.Point, radius float64) []ID {
	var out []ID
	for _, e := range entries {
		if e.Rect.IntersectsDisk(center, radius) {
			out = append(out, e.ID)
		}
	}
	return out
}

// BruteWindowExact returns the IDs of all objects whose exact geometry
// intersects w.
func BruteWindowExact(d *Dataset, w geom.Rect) []ID {
	var out []ID
	for _, e := range d.Entries {
		if e.Rect.Intersects(w) && d.Geom(e.ID).IntersectsRect(w) {
			out = append(out, e.ID)
		}
	}
	return out
}

// BruteDiskExact returns the IDs of all objects whose exact geometry
// intersects the disk (center, radius).
func BruteDiskExact(d *Dataset, center geom.Point, radius float64) []ID {
	var out []ID
	for _, e := range d.Entries {
		if e.Rect.IntersectsDisk(center, radius) && d.Geom(e.ID).IntersectsDisk(center, radius) {
			out = append(out, e.ID)
		}
	}
	return out
}
