package spatial

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
)

func TestNewDataset(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3},
	}
	d := NewDataset(rects)
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, e := range d.Entries {
		if e.ID != ID(i) || e.Rect != rects[i] {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	// Geom falls back to the MBR for rect-only datasets.
	g := d.Geom(0)
	if g.MBR() != rects[0] {
		t.Error("Geom fallback MBR mismatch")
	}
}

func TestNewGeomDataset(t *testing.T) {
	geoms := []geom.Geometry{
		geom.NewLineString(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
		geom.NewPolygon(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1}),
	}
	d := NewGeomDataset(geoms)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Entries[0].Rect != geoms[0].MBR() {
		t.Error("derived MBR mismatch")
	}
	if d.Geom(1) != geoms[1] {
		t.Error("Geom lookup mismatch")
	}
}

func TestDatasetMBR(t *testing.T) {
	empty := &Dataset{}
	if empty.MBR() != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Error("empty dataset MBR should default to the unit square")
	}
	d := NewDataset([]geom.Rect{
		{MinX: -1, MinY: 0, MaxX: 0, MaxY: 2},
		{MinX: 3, MinY: -2, MaxX: 4, MaxY: 1},
	})
	if d.MBR() != (geom.Rect{MinX: -1, MinY: -2, MaxX: 4, MaxY: 2}) {
		t.Errorf("MBR = %v", d.MBR())
	}
}

func TestValidateFailures(t *testing.T) {
	bad := &Dataset{Entries: []Entry{{Rect: geom.Rect{MaxX: 1, MaxY: 1}, ID: 5}}}
	if bad.Validate() == nil {
		t.Error("non-dense IDs must fail validation")
	}
	inverted := &Dataset{Entries: []Entry{{Rect: geom.Rect{MinX: 2, MaxX: 1, MaxY: 1}, ID: 0}}}
	if inverted.Validate() == nil {
		t.Error("invalid rect must fail validation")
	}
	mismatched := &Dataset{
		Entries: []Entry{{Rect: geom.Rect{MaxX: 1, MaxY: 1}, ID: 0}},
		Geoms:   []geom.Geometry{},
	}
	if mismatched.Validate() == nil {
		t.Error("geometry count mismatch must fail validation")
	}
}

func TestBruteForceReferences(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	rects := make([]geom.Rect, 200)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1}
	}
	d := NewDataset(rects)
	w := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	ids := BruteWindow(d.Entries, w)
	for _, id := range ids {
		if !rects[id].Intersects(w) {
			t.Fatalf("BruteWindow returned non-intersecting %d", id)
		}
	}
	want := 0
	for _, r := range rects {
		if r.Intersects(w) {
			want++
		}
	}
	if len(ids) != want {
		t.Fatalf("BruteWindow found %d, want %d", len(ids), want)
	}

	c := geom.Point{X: 0.5, Y: 0.5}
	dids := BruteDisk(d.Entries, c, 0.2)
	for _, id := range dids {
		if !rects[id].IntersectsDisk(c, 0.2) {
			t.Fatalf("BruteDisk returned non-intersecting %d", id)
		}
	}

	// Exact variants agree with MBR variants for rect-only data.
	if len(BruteWindowExact(d, w)) != len(ids) {
		t.Error("BruteWindowExact differs on rect data")
	}
	if len(BruteDiskExact(d, c, 0.2)) != len(dids) {
		t.Error("BruteDiskExact differs on rect data")
	}
}

func TestBruteExactRefines(t *testing.T) {
	// A triangle whose MBR intersects the window but whose geometry does
	// not.
	tri := geom.NewPolygon(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}, geom.Point{X: 0, Y: 1})
	d := NewGeomDataset([]geom.Geometry{tri})
	w := geom.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.95, MaxY: 0.95}
	if n := len(BruteWindow(d.Entries, w)); n != 1 {
		t.Fatalf("MBR filter should pass: %d", n)
	}
	if n := len(BruteWindowExact(d, w)); n != 0 {
		t.Fatalf("exact test should reject: %d", n)
	}
}
