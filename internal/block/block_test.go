package block

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

func randRects(rnd *rand.Rand, n int, maxSide float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*maxSide, MaxY: y + rnd.Float64()*maxSide}
	}
	return rects
}

func sameIDs(t *testing.T, got, want []spatial.ID, context string) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("%s: got %d, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %d, want %d", context, i, got[i], want[i])
		}
	}
}

// TestWindowMatchesBruteForce across object sizes, including objects much
// larger than fine cells (they settle on coarse levels).
func TestWindowMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(111))
	for _, maxSide := range []float64{0.001, 0.05, 0.4} {
		d := spatial.NewDataset(randRects(rnd, 800, maxSide))
		ix := Build(d, Options{Space: geom.Rect{MaxX: 1.5, MaxY: 1.5}})
		for q := 0; q < 60; q++ {
			x, y := rnd.Float64()*1.2-0.1, rnd.Float64()*1.2-0.1
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + rnd.Float64()*0.3, MaxY: y + rnd.Float64()*0.3}
			got := ix.WindowIDs(w, nil)
			seen := map[spatial.ID]bool{}
			for _, id := range got {
				if seen[id] {
					t.Fatalf("duplicate %d", id)
				}
				seen[id] = true
			}
			sameIDs(t, got, spatial.BruteWindow(d.Entries, w), "window")
		}
	}
}

// TestDiskMatchesBruteForce.
func TestDiskMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(112))
	d := spatial.NewDataset(randRects(rnd, 600, 0.05))
	ix := Build(d, Options{})
	for q := 0; q < 60; q++ {
		c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		radius := rnd.Float64() * 0.25
		var got []spatial.ID
		ix.Disk(c, radius, func(e spatial.Entry) { got = append(got, e.ID) })
		sameIDs(t, got, spatial.BruteDisk(d.Entries, c, radius), "disk")
	}
}

// TestLevelAssignment: objects are stored once, at a level whose cell
// covers them.
func TestLevelAssignment(t *testing.T) {
	rnd := rand.New(rand.NewSource(113))
	d := spatial.NewDataset(randRects(rnd, 500, 0.3))
	ix := Build(d, Options{Space: geom.Rect{MaxX: 2, MaxY: 2}})
	counts := ix.LevelCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != d.Len() {
		t.Errorf("stored %d entries for %d objects (replication must not happen)", total, d.Len())
	}
	// Tiny objects must not sit at the root level.
	tiny := spatial.NewDataset([]geom.Rect{{MinX: 0.5, MinY: 0.5, MaxX: 0.5001, MaxY: 0.5001}})
	tix := Build(tiny, Options{Space: geom.Rect{MaxX: 1, MaxY: 1}, Levels: 8})
	c := tix.LevelCounts()
	if c[len(c)-1] != 1 {
		t.Errorf("tiny object not at finest level: %v", c)
	}
}

// TestInsertDelete round-trip.
func TestInsertDelete(t *testing.T) {
	rnd := rand.New(rand.NewSource(114))
	rects := randRects(rnd, 300, 0.1)
	ix := New(Options{Space: geom.Rect{MaxX: 1.2, MaxY: 1.2}})
	for i, r := range rects {
		ix.Insert(spatial.Entry{Rect: r, ID: spatial.ID(i)})
	}
	remaining := []spatial.Entry{}
	for i, r := range rects {
		if i%2 == 0 {
			if !ix.Delete(spatial.ID(i), r) {
				t.Fatalf("Delete(%d) not found", i)
			}
		} else {
			remaining = append(remaining, spatial.Entry{Rect: r, ID: spatial.ID(i)})
		}
	}
	if ix.Delete(9999, rects[0]) {
		t.Error("delete of missing id succeeded")
	}
	for q := 0; q < 30; q++ {
		x, y := rnd.Float64(), rnd.Float64()
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(remaining, w), "after delete")
	}
}

// TestEmptyIndex.
func TestEmptyIndex(t *testing.T) {
	ix := New(Options{})
	if n := ix.WindowCount(geom.Rect{MaxX: 1, MaxY: 1}); n != 0 {
		t.Errorf("empty index returned %d", n)
	}
	if n := ix.DiskCount(geom.Point{X: 0.5, Y: 0.5}, 0.5); n != 0 {
		t.Errorf("empty disk returned %d", n)
	}
}
