// Package block reimplements, from its published description, the BLOCK
// index (Olma et al., SSDBM 2017): a hierarchy of uniform grids where each
// object is stored at the level whose cell size matches the object's
// extent. Level l partitions the space into 2^l x 2^l cells; an object is
// placed at the deepest level whose cells still cover its MBR, in the
// single cell containing its minimum corner, so no replication and no
// duplicate handling are needed. A window query probes every level,
// expanding the probe window by one cell (an object's minimum corner lies
// at most one cell before the window in each dimension).
//
// The original system targets 3D neuroscience meshes; this 2D
// reimplementation stands in for it in the Table V comparison.
package block

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// DefaultLevels is the default depth of the grid hierarchy (finest level
// has 2^(DefaultLevels-1) cells per dimension).
const DefaultLevels = 11

// Options configure the index.
type Options struct {
	// Space is the indexed region (default: dataset MBR in Build, the
	// unit square in New).
	Space geom.Rect
	// Levels is the number of grid levels (default DefaultLevels).
	Levels int
}

// level is one uniform grid of the hierarchy, stored sparsely.
type level struct {
	n            int // cells per dimension (2^l)
	cellW, cellH float64
	cells        map[int64][]spatial.Entry
}

// Index is the hierarchy of grids.
type Index struct {
	space  geom.Rect
	levels []level
	size   int
}

// New returns an empty index.
func New(opts Options) *Index {
	if opts.Space == (geom.Rect{}) {
		opts.Space = geom.Rect{MaxX: 1, MaxY: 1}
	}
	if opts.Levels == 0 {
		opts.Levels = DefaultLevels
	}
	ix := &Index{space: opts.Space, levels: make([]level, opts.Levels)}
	for l := range ix.levels {
		n := 1 << l
		ix.levels[l] = level{
			n:     n,
			cellW: opts.Space.Width() / float64(n),
			cellH: opts.Space.Height() / float64(n),
			cells: make(map[int64][]spatial.Entry),
		}
	}
	return ix
}

// Build constructs the index over a dataset.
func Build(d *spatial.Dataset, opts Options) *Index {
	if opts.Space == (geom.Rect{}) {
		opts.Space = d.MBR()
	}
	ix := New(opts)
	for _, e := range d.Entries {
		ix.Insert(e)
	}
	return ix
}

// Len returns the number of stored objects.
func (ix *Index) Len() int { return ix.size }

// levelFor returns the deepest level whose cell size covers the object in
// both dimensions.
func (ix *Index) levelFor(r geom.Rect) int {
	w, h := r.Width(), r.Height()
	best := 0
	for l := range ix.levels {
		if ix.levels[l].cellW >= w && ix.levels[l].cellH >= h {
			best = l
		} else {
			break // cells only shrink with depth
		}
	}
	return best
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// cellOf returns the clamped cell coordinates of point p at level l.
func (ix *Index) cellOf(l int, p geom.Point) (int, int) {
	lv := &ix.levels[l]
	cx := clamp(int((p.X-ix.space.MinX)/lv.cellW), lv.n)
	cy := clamp(int((p.Y-ix.space.MinY)/lv.cellH), lv.n)
	return cx, cy
}

// Insert stores one object in its level's cell.
func (ix *Index) Insert(e spatial.Entry) {
	l := ix.levelFor(e.Rect)
	cx, cy := ix.cellOf(l, geom.Point{X: e.Rect.MinX, Y: e.Rect.MinY})
	key := int64(cy)*int64(ix.levels[l].n) + int64(cx)
	ix.levels[l].cells[key] = append(ix.levels[l].cells[key], e)
	ix.size++
}

// Delete removes the object with the given id and exact MBR.
func (ix *Index) Delete(id spatial.ID, r geom.Rect) bool {
	l := ix.levelFor(r)
	cx, cy := ix.cellOf(l, geom.Point{X: r.MinX, Y: r.MinY})
	key := int64(cy)*int64(ix.levels[l].n) + int64(cx)
	list := ix.levels[l].cells[key]
	for i := range list {
		if list[i].ID == id {
			list[i] = list[len(list)-1]
			ix.levels[l].cells[key] = list[:len(list)-1]
			ix.size--
			return true
		}
	}
	return false
}

// Window runs the filtering step of a window query.
func (ix *Index) Window(w geom.Rect, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	for l := range ix.levels {
		lv := &ix.levels[l]
		if len(lv.cells) == 0 {
			continue
		}
		// Expand by one cell on the min side: an object stored here
		// extends at most one cell beyond its min-corner cell.
		x0, y0 := ix.cellOf(l, geom.Point{X: w.MinX - lv.cellW, Y: w.MinY - lv.cellH})
		x1, y1 := ix.cellOf(l, geom.Point{X: w.MaxX, Y: w.MaxY})
		// For sparse levels, iterating the map beats scanning the range.
		if int64(x1-x0+1)*int64(y1-y0+1) > int64(len(lv.cells)) {
			for _, entries := range lv.cells {
				for i := range entries {
					if entries[i].Rect.Intersects(w) {
						fn(entries[i])
					}
				}
			}
			continue
		}
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				key := int64(cy)*int64(lv.n) + int64(cx)
				entries, ok := lv.cells[key]
				if !ok {
					continue
				}
				for i := range entries {
					if entries[i].Rect.Intersects(w) {
						fn(entries[i])
					}
				}
			}
		}
	}
}

// WindowIDs collects result IDs into buf.
func (ix *Index) WindowIDs(w geom.Rect, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Window(w, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// WindowCount returns the number of MBRs intersecting w.
func (ix *Index) WindowCount(w geom.Rect) int {
	n := 0
	ix.Window(w, func(spatial.Entry) { n++ })
	return n
}

// Disk runs the filtering step of a disk query via the MBR window plus a
// distance test.
func (ix *Index) Disk(center geom.Point, radius float64, fn func(e spatial.Entry)) {
	if radius < 0 {
		return
	}
	r2 := radius * radius
	ix.Window(geom.Disk{Center: center, Radius: radius}.MBR(), func(e spatial.Entry) {
		if e.Rect.DistSqToPoint(center) <= r2 {
			fn(e)
		}
	})
}

// DiskCount returns the number of MBRs intersecting the disk.
func (ix *Index) DiskCount(center geom.Point, radius float64) int {
	n := 0
	ix.Disk(center, radius, func(spatial.Entry) { n++ })
	return n
}

// LevelCounts returns the number of objects stored per level, for
// diagnostics and tests.
func (ix *Index) LevelCounts() []int {
	out := make([]int, len(ix.levels))
	for l := range ix.levels {
		for _, entries := range ix.levels[l].cells {
			out[l] += len(entries)
		}
	}
	return out
}
