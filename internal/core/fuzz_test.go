package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// FuzzWindow drives the whole query stack from fuzzer-chosen geometry:
// dataset shape, grid granularity and query rectangle are all derived
// from the fuzz input, and the result is compared against brute force.
// Run with `go test -fuzz=FuzzWindow ./internal/core`.
func FuzzWindow(f *testing.F) {
	f.Add(int64(1), uint8(8), 0.25, 0.25, 0.5, 0.5)
	f.Add(int64(2), uint8(1), -0.5, -0.5, 2.0, 2.0)
	f.Add(int64(3), uint8(64), 0.5, 0.5, 0.5, 0.5)
	f.Add(int64(4), uint8(13), 0.9, 0.1, 0.05, 0.9)
	f.Fuzz(func(t *testing.T, seed int64, gridSize uint8, x, y, w, h float64) {
		if gridSize == 0 {
			gridSize = 1
		}
		// Reject degenerate fuzz coordinates; the index itself rejects
		// invalid rects by contract.
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(w) || math.IsNaN(h) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || w < 0 || h < 0 ||
			math.IsInf(x+w, 0) || math.IsInf(y+h, 0) {
			t.Skip()
		}
		rnd := rand.New(rand.NewSource(seed))
		d := spatial.NewDataset(randRects(rnd, 200, 0.2))
		ix := Build(d, Options{NX: int(gridSize), NY: int(gridSize)})
		dec := Build(d, Options{NX: int(gridSize), NY: int(gridSize), Decompose: true})
		query := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}

		got := ix.WindowIDs(query, nil)
		seen := make(map[spatial.ID]bool, len(got))
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate result %d for %v", id, query)
			}
			seen[id] = true
		}
		want := spatial.BruteWindow(d.Entries, query)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", query, len(got), len(want))
		}
		for _, id := range want {
			if !seen[id] {
				t.Fatalf("query %v: missing %d", query, id)
			}
		}
		// The decomposed variant must agree exactly.
		if n := dec.WindowCount(query); n != len(want) {
			t.Fatalf("query %v: decomposed found %d, want %d", query, n, len(want))
		}
		// And the disk circumscribing the query window must be a superset.
		c := query.Center()
		radius := c.Dist(geom.Point{X: query.MinX, Y: query.MinY})
		if radius < 1e18 { // skip overflow-prone fuzz extremes
			if nd := ix.DiskCount(c, radius); nd < len(want) {
				t.Fatalf("circumscribed disk found %d < window's %d", nd, len(want))
			}
		}
	})
}

// FuzzSnapshotDecode: Load must treat arbitrary bytes as a hostile
// snapshot — returning an error for anything malformed, never panicking
// or over-allocating. A successfully decoded index must answer a window
// query without crashing. Run with
// `go test -fuzz=FuzzSnapshotDecode ./internal/core`.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with real snapshots (v1 and v2) so the fuzzer starts from
	// structurally valid bytes and mutates inward. Seeds are kept tiny:
	// the engine's per-exec overhead grows sharply with corpus entry
	// size, and a few hundred bytes already cover every format feature.
	rnd := rand.New(rand.NewSource(99))
	ix, _ := buildRandom(rnd, 6, 0.2, Options{NX: 2, NY: 2, Decompose: true})
	ix.SetEpoch(3)
	var v2, v1 bytes.Buffer
	if _, err := ix.WriteTo(&v2); err != nil {
		f.Fatal(err)
	}
	if _, err := ix.writeVersion(&v1, 1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add([]byte("TL2I"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		loaded, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be internally consistent enough to query.
		// Skip the query for huge grids: a whole-space window legitimately
		// visits every covered tile, which is O(nx*ny) and would stall the
		// fuzzer without exercising anything new.
		if g := loaded.Grid(); g.NX*g.NY <= 1<<16 {
			q := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			_ = loaded.WindowCount(q)
		}
		_ = loaded.Len()
	})
}
