package core

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// diskCover describes the set of tiles intersecting a disk. Because a
// disk is convex, the intersecting tiles of each row form one contiguous
// run, and likewise for each column; the four slices record those runs,
// indexed relative to (x0, y0).
type diskCover struct {
	x0, y0, x1, y1 int   // tile coordinate bounds of the cover
	rowMin, rowMax []int // per row (iy-y0): run of intersecting columns
	colMin, colMax []int // per column (ix-x0): run of intersecting rows
}

// contains reports whether tile (tx, ty) intersects the disk.
func (dc *diskCover) contains(tx, ty int) bool {
	if ty < dc.y0 || ty > dc.y1 || tx < dc.x0 || tx > dc.x1 {
		return false
	}
	return tx >= dc.rowMin[ty-dc.y0] && tx <= dc.rowMax[ty-dc.y0]
}

// diskCoverFor computes the tile cover of a disk clamped to the grid. The
// cover is built over the effective tile extents (border tiles extend to
// infinity), so disks and objects sticking out of the indexed space are
// handled by the border tiles. It returns nil for a negative radius.
func (ix *Index) diskCoverFor(center geom.Point, radius float64) *diskCover {
	if radius < 0 {
		return nil
	}
	mbr := geom.Disk{Center: center, Radius: radius}.MBR()
	x0, y0, x1, y1 := ix.g.CoverRect(mbr)
	dc := &diskCover{
		x0: x0, y0: y0, x1: x1, y1: y1,
		rowMin: make([]int, y1-y0+1),
		rowMax: make([]int, y1-y0+1),
		colMin: make([]int, x1-x0+1),
		colMax: make([]int, x1-x0+1),
	}
	for i := range dc.colMin {
		dc.colMin[i] = -1
	}
	for ty := y0; ty <= y1; ty++ {
		lo, hi := -1, -1
		for tx := x0; tx <= x1; tx++ {
			if ix.effectiveTile(tx, ty).IntersectsDisk(center, radius) {
				if lo == -1 {
					lo = tx
				}
				hi = tx
			} else if lo != -1 {
				break // runs are contiguous; past the end of this row's run
			}
		}
		if lo == -1 {
			// Possible only when the clamped cover includes rows whose
			// effective tiles the disk misses. Mark the row empty.
			lo, hi = 1, 0
		}
		dc.rowMin[ty-y0], dc.rowMax[ty-y0] = lo, hi
		for tx := lo; tx <= hi; tx++ {
			if dc.colMin[tx-x0] == -1 {
				dc.colMin[tx-x0] = ty
			}
			dc.colMax[tx-x0] = ty
		}
	}
	return dc
}

// Disk runs the filtering step of a disk (distance) range query: fn is
// invoked exactly once for every entry whose MBR intersects the disk with
// the given center and radius. As with window queries, class selection
// avoids generating duplicates; the residual boundary-curvature cases the
// paper describes (its r1 example, where an object is scanned in class B
// of one tile and class C of another) are resolved by a deterministic
// owner rule over the disk's tile cover.
func (ix *Index) Disk(center geom.Point, radius float64, fn func(e spatial.Entry)) {
	dc := ix.diskCoverFor(center, radius)
	if dc == nil {
		return
	}
	r2 := radius * radius
	for ty := dc.y0; ty <= dc.y1; ty++ {
		lo, hi := dc.rowMin[ty-dc.y0], dc.rowMax[ty-dc.y0]
		for tx := lo; tx <= hi; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.diskOnTile(t, tx, ty, dc, center, radius, r2, fn)
		}
	}
}

// DiskUntil streams disk results until fn returns false, reporting
// whether the query ran to completion. Like WindowUntil, termination is
// tile-granular: results already produced by the current tile still
// arrive at fn before the scan stops.
func (ix *Index) DiskUntil(center geom.Point, radius float64, fn func(e spatial.Entry) bool) bool {
	dc := ix.diskCoverFor(center, radius)
	if dc == nil {
		return true
	}
	r2 := radius * radius
	stopped := false
	sink := func(e spatial.Entry) {
		if !stopped && !fn(e) {
			stopped = true
		}
	}
	for ty := dc.y0; ty <= dc.y1 && !stopped; ty++ {
		lo, hi := dc.rowMin[ty-dc.y0], dc.rowMax[ty-dc.y0]
		for tx := lo; tx <= hi && !stopped; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.diskOnTile(t, tx, ty, dc, center, radius, r2, sink)
		}
	}
	return !stopped
}

// DiskIDs runs Disk and collects result IDs into buf.
func (ix *Index) DiskIDs(center geom.Point, radius float64, buf []spatial.ID) []spatial.ID {
	c := idCollectorPool.Get().(*idCollector)
	c.ids = buf[:0]
	ix.Disk(center, radius, c.emit)
	out := c.ids
	c.ids = nil
	idCollectorPool.Put(c)
	return out
}

// DiskCount returns the number of MBRs intersecting the disk, through a
// dedicated closure-free counting loop. Tiles fully inside the disk
// count their duplicate-free classes (A, and B when no scanned upper
// neighbor) in O(1) — the disk-query analogue of the window count
// pushdown; classes C and D still walk entries for the ownership test.
// An index with Stats attached falls back to the instrumented streamed
// path so the documented counter semantics are preserved.
func (ix *Index) DiskCount(center geom.Point, radius float64) int {
	if ix.Stats != nil {
		n := 0
		ix.Disk(center, radius, func(spatial.Entry) { n++ })
		return n
	}
	dc := ix.diskCoverFor(center, radius)
	if dc == nil {
		return 0
	}
	r2 := radius * radius
	n := 0
	var tally pathTally
	for ty := dc.y0; ty <= dc.y1; ty++ {
		lo, hi := dc.rowMin[ty-dc.y0], dc.rowMax[ty-dc.y0]
		for tx := lo; tx <= hi; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			n += ix.diskCountOnTile(t, tx, ty, dc, center, radius, r2, &tally)
		}
	}
	if ix.met != nil {
		ix.met.fastCounts.Add(1)
		ix.met.flush(&tally)
	}
	return n
}

// diskCountOnTile counts the disk's matches on one tile, mirroring
// diskOnTile's class selection and ownership rules without closures.
func (ix *Index) diskCountOnTile(t *tile, tx, ty int, dc *diskCover, center geom.Point, radius, r2 float64, tally *pathTally) int {
	hasLeft := dc.contains(tx-1, ty)
	hasUp := dc.contains(tx, ty-1)
	covered := ix.effectiveTile(tx, ty).InsideDisk(center, radius)

	n := 0
	if covered {
		// Classes A and B need neither distance checks nor ownership
		// tests, so a covered tile counts them wholesale.
		bulk := len(t.classes[ClassA])
		if !hasUp {
			bulk += len(t.classes[ClassB])
		}
		n += bulk
		tally.fastTiles++
		tally.bulkEntries += int64(bulk)
	} else {
		n += countDiskClass(t.classes[ClassA], center, r2)
		if !hasUp {
			n += countDiskClass(t.classes[ClassB], center, r2)
		}
	}
	if !hasLeft {
		n += ix.countDiskOwned(t.classes[ClassC], tx, ty, dc, center, r2, covered)
		if !hasUp {
			n += ix.countDiskOwned(t.classes[ClassD], tx, ty, dc, center, r2, covered)
		}
	}
	return n
}

// countDiskClass counts the entries within distance of the disk center.
func countDiskClass(entries []spatial.Entry, center geom.Point, r2 float64) int {
	n := 0
	for i := range entries {
		if entries[i].Rect.DistSqToPoint(center) <= r2 {
			n++
		}
	}
	return n
}

// countDiskOwned counts class C/D entries, applying the residual
// owner-tile duplicate guard of diskOnTile.
func (ix *Index) countDiskOwned(entries []spatial.Entry, tx, ty int, dc *diskCover, center geom.Point, r2 float64, covered bool) int {
	n := 0
	for i := range entries {
		e := &entries[i]
		if !covered && e.Rect.DistSqToPoint(center) > r2 {
			continue
		}
		if !ix.ownsDiskEntry(e.Rect, tx, ty, dc) {
			continue
		}
		n++
	}
	return n
}

// diskOnTile evaluates the disk on one tile. Classes whose entries are
// also assigned to an in-cover previous tile are skipped (the disk-query
// analogue of Lemmas 1-2); tiles fully inside the disk report without
// distance verification.
func (ix *Index) diskOnTile(t *tile, tx, ty int, dc *diskCover, center geom.Point, radius, r2 float64, fn func(spatial.Entry)) {
	hasLeft := dc.contains(tx-1, ty)
	hasUp := dc.contains(tx, ty-1)
	covered := ix.effectiveTile(tx, ty).InsideDisk(center, radius)

	if ix.Stats != nil {
		ix.Stats.TilesVisited++
		if hasLeft {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassC]))
		}
		if hasUp {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassB]))
		}
		if hasLeft || hasUp {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassD]))
		}
	}

	emit := func(c Class, e *spatial.Entry) {
		if !covered {
			if ix.Stats != nil {
				ix.Stats.DistanceComputations++
			}
			if e.Rect.DistSqToPoint(center) > r2 {
				return
			}
		}
		if c == ClassC || c == ClassD {
			// Residual duplicate guard: entries starting before the tile
			// in x may be scanned in several tiles along the cover's
			// curved boundary; report only in the owner tile.
			if !ix.ownsDiskEntry(e.Rect, tx, ty, dc) {
				return
			}
		}
		if ix.Stats != nil {
			ix.Stats.Results++
		}
		fn(*e)
	}

	scan := func(c Class) {
		entries := t.classes[c]
		if ix.Stats != nil && len(entries) > 0 {
			ix.Stats.PartitionsScanned++
			ix.Stats.EntriesScanned += int64(len(entries))
			ix.Stats.ClassScanned[c] += int64(len(entries))
		}
		for i := range entries {
			emit(c, &entries[i])
		}
	}

	scan(ClassA)
	if !hasUp {
		scan(ClassB)
	}
	if !hasLeft {
		scan(ClassC)
	}
	if !hasUp && !hasLeft {
		scan(ClassD)
	}
}

// ownsDiskEntry decides whether tile (tx, ty) is the owner of entry r for
// this disk query. The owner is the scanned tile in the first column of
// the cover that meets the entry's replication block; by construction the
// skip rules leave exactly one scanned tile per column, so checking that
// no earlier column of the cover intersects the block's row range makes
// the owner unique. Entries in classes A and B automatically own their
// tile (class A exists once; class B lives in the block's first column),
// so only classes C and D are tested.
func (ix *Index) ownsDiskEntry(r geom.Rect, tx, ty int, dc *diskCover) bool {
	ax, ay, _, by := ix.g.CoverRect(r)
	if ax < dc.x0 {
		ax = dc.x0
	}
	for x := ax; x < tx; x++ {
		cm := dc.colMin[x-dc.x0]
		if cm == -1 {
			continue
		}
		if cm <= by && dc.colMax[x-dc.x0] >= ay {
			return false // an earlier cover column meets the block
		}
	}
	// This is the first cover column meeting the block; the scanned tile
	// in this column within the block is unique, so (tx, ty) owns r.
	return true
}
