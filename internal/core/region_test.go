package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// bruteRegion scans all entries against the region predicate.
func bruteRegion(entries []spatial.Entry, region Region) []spatial.ID {
	var out []spatial.ID
	for _, e := range entries {
		if region.IntersectsRect(e.Rect) {
			out = append(out, e.ID)
		}
	}
	return out
}

// TestRegionDiskEqualsDiskQuery: running a disk through the generic
// region path must match the specialized Disk method.
func TestRegionDiskEqualsDiskQuery(t *testing.T) {
	rnd := rand.New(rand.NewSource(171))
	ix, _ := buildRandom(rnd, 1000, 0.08, Options{NX: 16, NY: 16})
	for q := 0; q < 60; q++ {
		d := geom.Disk{
			Center: geom.Point{X: rnd.Float64(), Y: rnd.Float64()},
			Radius: rnd.Float64() * 0.3,
		}
		got := ix.QueryIDs(d, nil)
		noDuplicates(t, got, "region disk")
		sameIDs(t, got, ix.DiskIDs(d.Center, d.Radius, nil), "region vs disk")
	}
}

// uPolygon returns a U-shaped (non-convex) polygon whose tile cover has
// holes and split column runs — the case the general ownership rule must
// handle and the disk rule cannot.
func uPolygon(x, y, w, h, gap float64) *geom.Polygon {
	return geom.NewPolygon(
		geom.Point{X: x, Y: y},
		geom.Point{X: x + w, Y: y},
		geom.Point{X: x + w, Y: y + h},
		geom.Point{X: x + w - gap, Y: y + h},
		geom.Point{X: x + w - gap, Y: y + gap},
		geom.Point{X: x + gap, Y: y + gap},
		geom.Point{X: x + gap, Y: y + h},
		geom.Point{X: x, Y: y + h},
	)
}

// TestRegionPolygonMatchesBruteForce with convex and non-convex polygons
// across grid sizes and object sizes.
func TestRegionPolygonMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(172))
	for _, gridSize := range []int{1, 8, 32} {
		for _, maxSide := range []float64{0.01, 0.15, 0.5} {
			ix, d := buildRandom(rnd, 600, maxSide, Options{NX: gridSize, NY: gridSize})
			for q := 0; q < 40; q++ {
				var region Region
				if q%2 == 0 {
					// Random triangle.
					a := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
					region = geom.NewPolygon(a,
						geom.Point{X: a.X + 0.1 + rnd.Float64()*0.3, Y: a.Y + rnd.Float64()*0.1},
						geom.Point{X: a.X + rnd.Float64()*0.1, Y: a.Y + 0.1 + rnd.Float64()*0.3})
				} else {
					// Random U shape.
					region = uPolygon(rnd.Float64()*0.5, rnd.Float64()*0.5,
						0.2+rnd.Float64()*0.3, 0.2+rnd.Float64()*0.3, 0.03+rnd.Float64()*0.05)
				}
				got := ix.QueryIDs(region, nil)
				noDuplicates(t, got, "region polygon")
				sameIDs(t, got, bruteRegion(d.Entries, region), "region polygon")
			}
		}
	}
}

// TestRegionLargeObjectsNonConvex stresses ownership: objects spanning
// the U's gap are replicated into both prongs of the cover.
func TestRegionLargeObjectsNonConvex(t *testing.T) {
	rnd := rand.New(rand.NewSource(173))
	ix, d := buildRandom(rnd, 300, 0.6, Options{NX: 32, NY: 32})
	for q := 0; q < 60; q++ {
		region := uPolygon(rnd.Float64()*0.3, rnd.Float64()*0.3,
			0.3+rnd.Float64()*0.4, 0.3+rnd.Float64()*0.4, 0.02+rnd.Float64()*0.08)
		got := ix.QueryIDs(region, nil)
		noDuplicates(t, got, "non-convex large objects")
		sameIDs(t, got, bruteRegion(d.Entries, region), "non-convex large objects")
	}
}

// TestRegionCoveredTilesSkipVerification: with stats, a big covering
// polygon over fine tiles must report many results with few
// verifications... approximated by comparing scanned vs results.
func TestRegionCoveredTiles(t *testing.T) {
	rnd := rand.New(rand.NewSource(174))
	ix, d := buildRandom(rnd, 3000, 0.005, Options{NX: 64, NY: 64})
	region := geom.NewPolygon(
		geom.Point{X: 0.1, Y: 0.1}, geom.Point{X: 0.9, Y: 0.1},
		geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.1, Y: 0.9})
	got := ix.QueryIDs(region, nil)
	sameIDs(t, got, bruteRegion(d.Entries, region), "covered square polygon")
}

// TestRegionOutsideSpace returns nothing.
func TestRegionOutsideSpace(t *testing.T) {
	rnd := rand.New(rand.NewSource(175))
	ix, _ := buildRandom(rnd, 100, 0.05, Options{NX: 8, NY: 8})
	far := geom.NewPolygon(
		geom.Point{X: 5, Y: 5}, geom.Point{X: 6, Y: 5}, geom.Point{X: 5, Y: 6})
	if n := ix.QueryCount(far); n != 0 {
		t.Errorf("far region returned %d", n)
	}
}

// TestPolygonContainsRect covers the new geometry predicate.
func TestPolygonContainsRect(t *testing.T) {
	tri := geom.NewPolygon(geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 2, Y: 4})
	if !tri.ContainsRect(geom.Rect{MinX: 1.5, MinY: 0.5, MaxX: 2.5, MaxY: 1}) {
		t.Error("interior rect should be contained")
	}
	if tri.ContainsRect(geom.Rect{MinX: -1, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Error("rect crossing the edge must not be contained")
	}
	if tri.ContainsRect(geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}) {
		t.Error("outside rect must not be contained")
	}
	u := uPolygon(0, 0, 1, 1, 0.2)
	if u.ContainsRect(geom.Rect{MinX: 0.4, MinY: 0.5, MaxX: 0.6, MaxY: 0.9}) {
		t.Error("rect in the U's notch must not be contained")
	}
	if !u.ContainsRect(geom.Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.15, MaxY: 0.9}) {
		t.Error("rect inside the U's left prong should be contained")
	}
}

// TestDiskRegionPredicates covers the Disk region methods.
func TestDiskRegionPredicates(t *testing.T) {
	d := geom.Disk{Center: geom.Point{X: 0.5, Y: 0.5}, Radius: 0.3}
	if !d.IntersectsRect(geom.Rect{MinX: 0.7, MinY: 0.4, MaxX: 0.9, MaxY: 0.6}) {
		t.Error("rect reaching the disk should intersect")
	}
	if d.IntersectsRect(geom.Rect{MinX: 0.9, MinY: 0.9, MaxX: 1, MaxY: 1}) {
		t.Error("far corner rect must not intersect")
	}
	if !d.ContainsRect(geom.Rect{MinX: 0.45, MinY: 0.45, MaxX: 0.55, MaxY: 0.55}) {
		t.Error("small central rect should be contained")
	}
	if d.ContainsRect(geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.8, MaxY: 0.8}) {
		t.Error("big rect must not be contained")
	}
}
