package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// This file is the concurrent-mutation stress test: N writer goroutines
// insert and delete through a Live index while M readers continuously
// query pinned snapshots. Run it under -race (make check does). Readers
// assert per-snapshot consistency — monotone epochs, no duplicates, no
// torn entries, full-scan count equal to Len, disk and kNN results equal
// to brute force over the same snapshot — and the main goroutine compares
// the index against a mutex-guarded reference at every quiescent point.

// stressRect derives a deterministic rectangle from an ID, so readers can
// verify that every entry they see is exactly what some writer inserted
// (a torn read would surface as a mismatched MBR).
func stressRect(id spatial.ID) geom.Rect {
	h := (uint64(id) + 1) * 0x9E3779B97F4A7C15
	x := float64((h>>48)&0xFFFF) / 65536 * 0.95
	y := float64((h>>32)&0xFFFF) / 65536 * 0.95
	w := float64((h>>24)&0xFF) / 256 * 0.04
	hh := float64((h>>16)&0xFF) / 256 * 0.04
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + hh}
}

// stressReference is the mutex-guarded ground truth the Live index is
// compared against at quiescent points.
type stressReference struct {
	mu   sync.Mutex
	live map[spatial.ID]geom.Rect
}

func (r *stressReference) set(id spatial.ID)   { r.mu.Lock(); r.live[id] = stressRect(id); r.mu.Unlock() }
func (r *stressReference) unset(id spatial.ID) { r.mu.Lock(); delete(r.live, id); r.mu.Unlock() }

func TestLiveStress(t *testing.T) {
	const (
		writers      = 4
		readers      = 4
		opsPerPhase  = 400 // per writer
		phases       = 3
		idsPerWriter = 1 << 20
	)
	seedRects := randRects(rand.New(rand.NewSource(1)), 1000, 0.04)
	// Re-home the seed under writer-disjoint IDs via the deterministic
	// rect function: seed IDs live in a reserved range.
	seed := New(Options{NX: 32, NY: 32, Space: unitSquare, Decompose: true})
	ref := &stressReference{live: make(map[spatial.ID]geom.Rect)}
	for i := range seedRects {
		id := spatial.ID(writers*idsPerWriter + i)
		seed.Insert(spatial.Entry{ID: id, Rect: stressRect(id)})
		ref.live[id] = stressRect(id)
	}
	seed.BuildDecomposed()

	l := NewLive(seed, LiveOptions{MaxBatch: 64, RebuildEvery: 512})
	defer l.Close()

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerFailures := make(chan string, readers)
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(seed int64) {
			defer readerWG.Done()
			rnd := rand.New(rand.NewSource(seed))
			lastEpoch := uint64(0)
			fail := func(msg string) {
				select {
				case readerFailures <- msg:
				default:
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot().View(nil) // private kNN scratch
				epoch := snap.Epoch()
				if epoch < lastEpoch {
					fail("epoch went backwards")
					return
				}
				lastEpoch = epoch

				// Full scan: exact count, no duplicates, no torn entries.
				var all []spatial.Entry
				snap.Window(everything(), func(e spatial.Entry) { all = append(all, e) })
				if len(all) != snap.Len() {
					fail("full scan count != Len")
					return
				}
				seen := make(map[spatial.ID]bool, len(all))
				for _, e := range all {
					if seen[e.ID] {
						fail("duplicate result in full scan")
						return
					}
					seen[e.ID] = true
					if e.Rect != stressRect(e.ID) {
						fail("torn entry: MBR does not match its ID")
						return
					}
				}
				// Pinned snapshots are stable: a second count agrees.
				if snap.WindowCount(everything()) != len(all) {
					fail("snapshot changed between two scans")
					return
				}

				// Window and disk queries agree with brute force over the
				// same snapshot.
				w := randWindow(rnd, 0.2)
				if got, want := snap.WindowIDs(w, nil), spatial.BruteWindow(all, w); !equalIDSets(got, want) {
					fail("window result != brute force")
					return
				}
				c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
				radius := rnd.Float64() * 0.2
				if got, want := snap.DiskIDs(c, radius, nil), spatial.BruteDisk(all, c, radius); !equalIDSets(got, want) {
					fail("disk result != brute force")
					return
				}

				// kNN distances match the brute-force k smallest.
				k := 1 + rnd.Intn(8)
				nb := snap.KNN(c, k)
				dists := make([]float64, 0, len(all))
				for _, e := range all {
					dists = append(dists, math.Sqrt(e.Rect.DistSqToPoint(c)))
				}
				sort.Float64s(dists)
				if len(nb) != min(k, len(all)) {
					fail("kNN result count wrong")
					return
				}
				for i, n := range nb {
					if n.Dist != dists[i] {
						fail("kNN distance does not match brute force")
						return
					}
				}
			}
		}(int64(rd + 100))
	}

	// Writers: each owns a disjoint ID range; inserts new objects and
	// deletes previously inserted ones, checking every ack against its
	// own bookkeeping (the apply loop must linearize exactly).
	for phase := 0; phase < phases; phase++ {
		var writerWG sync.WaitGroup
		for wr := 0; wr < writers; wr++ {
			writerWG.Add(1)
			go func(wr, phase int) {
				defer writerWG.Done()
				rnd := rand.New(rand.NewSource(int64(wr*1000 + phase)))
				base := spatial.ID(wr * idsPerWriter)
				next := spatial.ID(phase * opsPerPhase * 2)
				var mine []spatial.ID // currently inserted, this goroutine's range
				for op := 0; op < opsPerPhase; op++ {
					if len(mine) > 0 && rnd.Intn(3) == 0 {
						// Delete a random previously inserted object.
						i := rnd.Intn(len(mine))
						id := mine[i]
						found, _, err := l.Delete(id, stressRect(id))
						if err != nil || !found {
							t.Errorf("writer %d: delete %d: found=%v err=%v", wr, id, found, err)
							return
						}
						ref.unset(id)
						mine[i] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					} else {
						id := base + next
						next++
						if _, err := l.Insert(spatial.Entry{ID: id, Rect: stressRect(id)}); err != nil {
							t.Errorf("writer %d: insert %d: %v", wr, id, err)
							return
						}
						ref.set(id)
						mine = append(mine, id)
					}
				}
			}(wr, phase)
		}
		writerWG.Wait()

		// Quiescent point: all acks returned, so the reference and the
		// current snapshot must agree exactly.
		snap := l.Snapshot()
		ref.mu.Lock()
		if snap.Len() != len(ref.live) {
			t.Fatalf("phase %d: snapshot has %d objects, reference %d", phase, snap.Len(), len(ref.live))
		}
		count := 0
		mismatch := false
		snap.Window(everything(), func(e spatial.Entry) {
			count++
			if r, ok := ref.live[e.ID]; !ok || r != e.Rect {
				mismatch = true
			}
		})
		ref.mu.Unlock()
		if mismatch || count != snap.Len() {
			t.Fatalf("phase %d: snapshot contents diverge from reference (count=%d len=%d mismatch=%v)",
				phase, count, snap.Len(), mismatch)
		}
	}

	close(stop)
	readerWG.Wait()
	select {
	case msg := <-readerFailures:
		t.Fatal(msg)
	default:
	}

	st := l.Stats()
	if st.Pending != 0 || st.Applied != uint64(writers*opsPerPhase*phases) {
		t.Fatalf("final stats %+v, want pending 0 and applied %d", st, writers*opsPerPhase*phases)
	}
}

// equalIDSets compares two ID slices as sets (order-insensitive).
func equalIDSets(a, b []spatial.ID) bool {
	if len(a) != len(b) {
		return false
	}
	sortIDs(a)
	sortIDs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
