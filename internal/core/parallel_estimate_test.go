package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestWindowParallelMatchesSerial across thread counts and window sizes.
func TestWindowParallelMatchesSerial(t *testing.T) {
	rnd := rand.New(rand.NewSource(211))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 32, NY: 32})
	for q := 0; q < 30; q++ {
		w := randWindow(rnd, 0.5)
		want := sortIDs(ix.WindowIDs(w, nil))
		for _, threads := range []int{1, 2, 8, 0} {
			var mu sync.Mutex
			var got []spatial.ID
			ix.WindowParallel(w, threads, func(e spatial.Entry) {
				mu.Lock()
				got = append(got, e.ID)
				mu.Unlock()
			})
			sameIDs(t, got, want, "parallel window")
			if n := ix.WindowParallelCount(w, threads); n != len(want) {
				t.Fatalf("parallel count %d, want %d", n, len(want))
			}
		}
	}
}

// TestJoinParallelMatchesSerial.
func TestJoinParallelMatchesSerial(t *testing.T) {
	rnd := rand.New(rand.NewSource(212))
	space := geom.Rect{MaxX: 1.2, MaxY: 1.2}
	a := Build(spatial.NewDataset(randRects(rnd, 500, 0.1)), Options{NX: 16, NY: 16, Space: space})
	b := Build(spatial.NewDataset(randRects(rnd, 500, 0.1)), Options{NX: 16, NY: 16, Space: space})
	want := a.JoinCount(b)
	for _, threads := range []int{1, 3, 0} {
		if got := a.JoinParallelCount(b, threads); got != want {
			t.Fatalf("threads=%d: %d pairs, want %d", threads, got, want)
		}
	}
	// Pair-level equality, not just counts.
	type pair [2]spatial.ID
	serial := map[pair]bool{}
	a.Join(b, func(r, s spatial.Entry) { serial[pair{r.ID, s.ID}] = true })
	var mu sync.Mutex
	parallel := map[pair]bool{}
	a.JoinParallel(b, 4, func(r, s spatial.Entry) {
		mu.Lock()
		parallel[pair{r.ID, s.ID}] = true
		mu.Unlock()
	})
	if len(serial) != len(parallel) {
		t.Fatalf("pair sets differ: %d vs %d", len(serial), len(parallel))
	}
	for p := range serial {
		if !parallel[p] {
			t.Fatalf("missing pair %v", p)
		}
	}
}

// TestEstimateWindow: exact on uniform full-tile windows, sane bounds
// elsewhere.
func TestEstimateWindow(t *testing.T) {
	rnd := rand.New(rand.NewSource(213))
	// Point-like objects, uniform: the estimator should be good.
	rects := make([]geom.Rect, 10000)
	for i := range rects {
		x, y := rnd.Float64(), rnd.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}
	}
	ix := Build(spatial.NewDataset(rects), Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}})

	full := geom.Rect{MaxX: 1, MaxY: 1}
	if est := ix.EstimateWindow(full); math.Abs(est-10000) > 1 {
		t.Errorf("full-space estimate %v, want 10000", est)
	}
	if est := ix.EstimateWindow(geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}); est != 0 {
		t.Errorf("empty-region estimate %v", est)
	}
	// Random windows: estimate within 3x of truth for uniform points
	// (loose, but catches unit errors).
	for q := 0; q < 30; q++ {
		x, y := rnd.Float64()*0.7, rnd.Float64()*0.7
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.3, MaxY: y + 0.3}
		truth := float64(ix.WindowCount(w))
		est := ix.EstimateWindow(w)
		if truth > 100 && (est < truth/3 || est > truth*3) {
			t.Fatalf("estimate %v vs truth %v for %v", est, truth, w)
		}
	}
	if ix.EstimateWindow(geom.Rect{MinX: 1, MaxX: 0, MaxY: 1}) != 0 {
		t.Error("invalid window estimate should be 0")
	}
}

// TestWindowUntilAndIntersects.
func TestWindowUntilAndIntersects(t *testing.T) {
	rnd := rand.New(rand.NewSource(214))
	ix, d := buildRandom(rnd, 1000, 0.05, Options{NX: 16, NY: 16})

	// Stop after 5 results.
	n := 0
	completed := ix.WindowUntil(geom.Rect{MaxX: 1, MaxY: 1}, func(spatial.Entry) bool {
		n++
		return n < 5
	})
	if completed || n != 5 {
		t.Fatalf("completed=%v n=%d", completed, n)
	}
	// Running to completion visits everything.
	n = 0
	completed = ix.WindowUntil(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, func(spatial.Entry) bool {
		n++
		return true
	})
	if !completed || n != d.Len() {
		t.Fatalf("completed=%v n=%d want %d", completed, n, d.Len())
	}

	if !ix.Intersects(geom.Rect{MaxX: 1, MaxY: 1}) {
		t.Error("Intersects missed data")
	}
	if ix.Intersects(geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}) {
		t.Error("Intersects false positive")
	}
}
