package core

import (
	"container/heap"
	"math"
	"time"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// This file implements k-nearest-neighbor search over the two-layer grid,
// one of the query types the paper names as future work for SOP indices
// with secondary partitioning. The search expands square rings of tiles
// around the query point and stops when the next ring cannot contain a
// closer object than the current k-th candidate. Replicas are visited at
// most once through an epoch-stamped seen table (dense object IDs make
// this a plain array; no per-query allocation or hashing).

// Neighbor is one kNN result.
type Neighbor struct {
	ID   spatial.ID
	Dist float64 // Euclidean distance from the query point to the MBR
}

// neighborHeap is a max-heap on distance, holding the best k candidates.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return h[i].Dist > h[j].Dist }
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// knnState is the reusable per-index scratch space for kNN queries. It is
// lazily grown; the epoch stamp avoids clearing between queries.
type knnState struct {
	seen  []uint32
	epoch uint32
}

// markSeen reports whether id was already visited this query, marking it.
func (s *knnState) markSeen(id spatial.ID) bool {
	if int(id) >= len(s.seen) {
		grown := make([]uint32, int(id)*2+64)
		copy(grown, s.seen)
		s.seen = grown
	}
	if s.seen[id] == s.epoch {
		return true
	}
	s.seen[id] = s.epoch
	return false
}

// KNN returns the k objects whose MBRs are nearest to q, ordered by
// ascending distance. Ties are broken arbitrarily. It allocates only the
// result slice on the steady state; the seen table is owned by the index
// and makes KNN unsafe for concurrent use (like updates and Stats).
func (ix *Index) KNN(q geom.Point, k int) []Neighbor {
	if k <= 0 || ix.size == 0 {
		return nil
	}
	if ix.knn == nil {
		ix.knn = &knnState{}
	}
	ix.knn.epoch++
	if ix.knn.epoch == 0 { // stamp wrapped: reset table once
		ix.knn.seen = nil
		ix.knn.epoch = 1
	}

	best := make(neighborHeap, 0, k)
	kth := math.Inf(1)

	consider := func(t *tile) {
		s := ix.Stats
		if s != nil {
			s.TilesVisited++
		}
		for c := ClassA; c <= ClassD; c++ {
			if s != nil && len(t.classes[c]) > 0 {
				s.PartitionsScanned++
				s.EntriesScanned += int64(len(t.classes[c]))
				s.ClassScanned[c] += int64(len(t.classes[c]))
			}
			for i := range t.classes[c] {
				e := &t.classes[c][i]
				if ix.knn.markSeen(e.ID) {
					continue
				}
				if s != nil {
					s.DistanceComputations++
				}
				d2 := e.Rect.DistSqToPoint(q)
				if len(best) < k {
					heap.Push(&best, Neighbor{ID: e.ID, Dist: d2})
					if len(best) == k {
						kth = best[0].Dist
					}
				} else if d2 < kth {
					best[0] = Neighbor{ID: e.ID, Dist: d2}
					heap.Fix(&best, 0)
					kth = best[0].Dist
				}
			}
		}
	}

	// Ring expansion around the tile containing q.
	cx, cy := ix.g.CellOf(q)
	maxRing := ix.g.NX
	if ix.g.NY > maxRing {
		maxRing = ix.g.NY
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Stop when even the nearest point of the ring is farther than
		// the current k-th distance (and we already have k results).
		if len(best) == k && ringDistSq(ix, q, cx, cy, ring) > kth {
			break
		}
		ix.forEachRingTile(cx, cy, ring, func(t *tile) { consider(t) })
	}

	// Extract ascending and convert squared distances.
	out := make([]Neighbor, len(best))
	for i := len(best) - 1; i >= 0; i-- {
		n := heap.Pop(&best).(Neighbor)
		n.Dist = math.Sqrt(n.Dist)
		out[i] = n
	}
	if ix.Stats != nil {
		ix.Stats.Results += int64(len(out))
	}
	return out
}

// KNNExact returns the k objects whose exact geometries are nearest to q,
// ascending by true geometric distance. MBR distances lower-bound exact
// distances, so candidates are pruned by MBR before the geometry is
// consulted; the ring-expansion stop criterion remains valid because tile
// distance lower-bounds MBR distance lower-bounds exact distance. The
// index must have been built over a Dataset.
func (ix *Index) KNNExact(q geom.Point, k int) []Neighbor {
	if ix.dataset == nil {
		panic("core: KNNExact requires an index built over a Dataset")
	}
	if k <= 0 || ix.size == 0 {
		return nil
	}
	if ix.knn == nil {
		ix.knn = &knnState{}
	}
	ix.knn.epoch++
	if ix.knn.epoch == 0 {
		ix.knn.seen = nil
		ix.knn.epoch = 1
	}

	best := make(neighborHeap, 0, k)
	kth := math.Inf(1)

	consider := func(t *tile) {
		s := ix.Stats
		if s != nil {
			s.TilesVisited++
		}
		for c := ClassA; c <= ClassD; c++ {
			if s != nil && len(t.classes[c]) > 0 {
				s.PartitionsScanned++
				s.EntriesScanned += int64(len(t.classes[c]))
				s.ClassScanned[c] += int64(len(t.classes[c]))
			}
			for i := range t.classes[c] {
				e := &t.classes[c][i]
				if ix.knn.markSeen(e.ID) {
					continue
				}
				if s != nil {
					s.DistanceComputations++
				}
				if len(best) == k && e.Rect.DistSqToPoint(q) > kth {
					continue // MBR lower bound prunes the geometry test
				}
				if s != nil {
					s.RefinementTests++
				}
				var d2 float64
				if tr := ix.trace; tr != nil {
					t0 := time.Now()
					d2 = exactDistSq(ix.dataset.Geom(e.ID), q)
					tr.RefineNS += time.Since(t0).Nanoseconds()
				} else {
					d2 = exactDistSq(ix.dataset.Geom(e.ID), q)
				}
				if len(best) < k {
					heap.Push(&best, Neighbor{ID: e.ID, Dist: d2})
					if len(best) == k {
						kth = best[0].Dist
					}
				} else if d2 < kth {
					best[0] = Neighbor{ID: e.ID, Dist: d2}
					heap.Fix(&best, 0)
					kth = best[0].Dist
				}
			}
		}
	}

	cx, cy := ix.g.CellOf(q)
	maxRing := ix.g.NX
	if ix.g.NY > maxRing {
		maxRing = ix.g.NY
	}
	for ring := 0; ring <= maxRing; ring++ {
		if len(best) == k && ringDistSq(ix, q, cx, cy, ring) > kth {
			break
		}
		ix.forEachRingTile(cx, cy, ring, func(t *tile) { consider(t) })
	}

	out := make([]Neighbor, len(best))
	for i := len(best) - 1; i >= 0; i-- {
		n := heap.Pop(&best).(Neighbor)
		n.Dist = math.Sqrt(n.Dist)
		out[i] = n
	}
	if ix.Stats != nil {
		ix.Stats.Results += int64(len(out))
	}
	return out
}

// exactDistSq returns the squared distance from q to a geometry, using
// the type-specific distance where available and a binary refinement of
// IntersectsDisk otherwise.
func exactDistSq(g geom.Geometry, q geom.Point) float64 {
	switch t := g.(type) {
	case *geom.LineString:
		return t.DistSqToPoint(q)
	case *geom.Polygon:
		return t.DistSqToPoint(q)
	case geom.RectGeometry:
		return geom.Rect(t).DistSqToPoint(q)
	case geom.PointGeometry:
		return geom.Point(t).DistSq(q)
	default:
		// Generic fallback: the MBR distance lower-bounds and the
		// max-corner distance upper-bounds the true distance; bisect
		// IntersectsDisk between them.
		mbr := g.MBR()
		lo := mbr.DistToPoint(q)
		hi := math.Sqrt(mbr.MaxDistSqToPoint(q))
		for i := 0; i < 40 && hi-lo > 1e-12; i++ {
			mid := (lo + hi) / 2
			if g.IntersectsDisk(q, mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi * hi
	}
}

// ringDistSq returns the squared distance from q to the closest point of
// ring r around tile (cx, cy): the band of tiles whose Chebyshev tile
// distance from (cx, cy) equals r. Ring 0 contains q itself.
func ringDistSq(ix *Index, q geom.Point, cx, cy, ring int) float64 {
	if ring == 0 {
		return 0
	}
	// The ring's inner boundary is the border of the (2r-1)x(2r-1) tile
	// block centered at (cx, cy).
	inner := geom.Rect{
		MinX: ix.g.TileMin(cx-ring+1, cy-ring+1).X,
		MinY: ix.g.TileMin(cx-ring+1, cy-ring+1).Y,
		MaxX: ix.g.TileMin(cx+ring, cy+ring).X,
		MaxY: ix.g.TileMin(cx+ring, cy+ring).Y,
	}
	// Distance from q to the outside of that block: if q is inside (the
	// usual case), it is the distance to the block border.
	dx := math.Min(q.X-inner.MinX, inner.MaxX-q.X)
	dy := math.Min(q.Y-inner.MinY, inner.MaxY-q.Y)
	d := math.Min(dx, dy)
	if d < 0 {
		return 0 // q outside the block: the ring may touch q
	}
	return d * d
}

// forEachRingTile visits the non-empty tiles at Chebyshev distance ring
// from (cx, cy), clamped to the grid.
func (ix *Index) forEachRingTile(cx, cy, ring int, fn func(*tile)) {
	visit := func(tx, ty int) {
		if tx < 0 || ty < 0 || tx >= ix.g.NX || ty >= ix.g.NY {
			return
		}
		if t := ix.tileAt(tx, ty); t != nil {
			fn(t)
		}
	}
	if ring == 0 {
		visit(cx, cy)
		return
	}
	for tx := cx - ring; tx <= cx+ring; tx++ {
		visit(tx, cy-ring)
		visit(tx, cy+ring)
	}
	for ty := cy - ring + 1; ty <= cy+ring-1; ty++ {
		visit(cx-ring, ty)
		visit(cx+ring, ty)
	}
}
