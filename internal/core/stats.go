package core

// Stats collects instrumentation counters during query evaluation. Attach
// a Stats to Index.Stats to enable counting; queries then take a slower
// instrumented path and must not run concurrently. Counters let tests
// assert the paper's analytical claims (e.g., Corollary 1: at most two
// comparisons per rectangle in relevant tiles of a multi-tile window
// query) and power the Figure 6 work breakdowns.
type Stats struct {
	// TilesVisited counts tiles examined across queries.
	TilesVisited int64
	// PartitionsScanned counts secondary partitions (tile classes) read.
	PartitionsScanned int64
	// EntriesScanned counts entries inspected in scanned partitions.
	EntriesScanned int64
	// Comparisons counts coordinate comparisons executed during the
	// filtering step (the quantity Lemmas 3-4 minimize).
	Comparisons int64
	// Results counts entries reported by the filtering step.
	Results int64
	// DuplicatesAvoided counts entries skipped wholesale because their
	// class was disregarded by Lemmas 1-2.
	DuplicatesAvoided int64
	// BinarySearches counts binary searches on decomposed tables.
	BinarySearches int64

	// Refinement-step counters (Section V).
	//
	// SecondaryFilterTests counts Lemma 5 coverage tests performed;
	// SecondaryFilterHits counts candidates accepted without refinement;
	// RefinementTests counts exact geometry tests executed;
	// DistanceComputations counts point distance evaluations in disk
	// queries.
	SecondaryFilterTests int64
	SecondaryFilterHits  int64
	RefinementTests      int64
	DistanceComputations int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.TilesVisited += o.TilesVisited
	s.PartitionsScanned += o.PartitionsScanned
	s.EntriesScanned += o.EntriesScanned
	s.Comparisons += o.Comparisons
	s.Results += o.Results
	s.DuplicatesAvoided += o.DuplicatesAvoided
	s.BinarySearches += o.BinarySearches
	s.SecondaryFilterTests += o.SecondaryFilterTests
	s.SecondaryFilterHits += o.SecondaryFilterHits
	s.RefinementTests += o.RefinementTests
	s.DistanceComputations += o.DistanceComputations
}
