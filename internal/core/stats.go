package core

import "sync/atomic"

// Stats collects instrumentation counters during query evaluation.
// Counters let tests assert the paper's analytical claims (e.g.,
// Corollary 1: at most two comparisons per rectangle in relevant tiles of
// a multi-tile window query) and power the Figure 6 work breakdowns.
//
// There are two ways to collect stats, for two different situations:
//
//   - Exclusive mode: attach a Stats directly to Index.Stats. Queries then
//     take the instrumented path and write the counters without
//     synchronization, so queries must not run concurrently while the
//     field is set. This is the right mode for single-threaded
//     experiments and tests.
//
//   - Concurrent mode: give each in-flight query its own view of the
//     index via Index.View, each carrying a private Stats, and merge the
//     per-query counters into a shared AtomicStats afterwards. Any number
//     of views can run queries concurrently (with each other and with
//     uninstrumented readers). This is the right mode for servers.
type Stats struct {
	// TilesVisited counts tiles examined across queries.
	TilesVisited int64
	// PartitionsScanned counts secondary partitions (tile classes) read.
	PartitionsScanned int64
	// EntriesScanned counts entries inspected in scanned partitions.
	EntriesScanned int64
	// ClassScanned counts, per secondary class (A, B, C, D), the entries
	// held by the partitions selected for scanning — the per-class work
	// breakdown of the Lemma 1-2 class selection. On the plain scan path
	// the four counters sum to EntriesScanned; on the decomposed
	// (2-layer+) path EntriesScanned may be lower, because binary searches
	// report coordinate ranges without touching every entry.
	ClassScanned [4]int64
	// Comparisons counts coordinate comparisons executed during the
	// filtering step (the quantity Lemmas 3-4 minimize).
	Comparisons int64
	// Results counts entries reported by the filtering step.
	Results int64
	// DuplicatesAvoided counts entries skipped wholesale because their
	// class was disregarded by Lemmas 1-2.
	DuplicatesAvoided int64
	// BinarySearches counts binary searches on decomposed tables.
	BinarySearches int64

	// Refinement-step counters (Section V).
	//
	// SecondaryFilterTests counts Lemma 5 coverage tests performed;
	// SecondaryFilterHits counts candidates accepted without refinement;
	// RefinementTests counts exact geometry tests executed;
	// DistanceComputations counts point distance evaluations in disk
	// queries.
	SecondaryFilterTests int64
	SecondaryFilterHits  int64
	RefinementTests      int64
	DistanceComputations int64
}

// Reset zeroes all counters.
func (s *Stats) Reset() { *s = Stats{} }

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.TilesVisited += o.TilesVisited
	s.PartitionsScanned += o.PartitionsScanned
	s.EntriesScanned += o.EntriesScanned
	for c := range s.ClassScanned {
		s.ClassScanned[c] += o.ClassScanned[c]
	}
	s.Comparisons += o.Comparisons
	s.Results += o.Results
	s.DuplicatesAvoided += o.DuplicatesAvoided
	s.BinarySearches += o.BinarySearches
	s.SecondaryFilterTests += o.SecondaryFilterTests
	s.SecondaryFilterHits += o.SecondaryFilterHits
	s.RefinementTests += o.RefinementTests
	s.DistanceComputations += o.DistanceComputations
}

// AtomicStats is a concurrency-safe accumulator of query counters. It is
// the aggregation half of the concurrent stats mode (see Stats): each
// query runs on an Index.View with a private Stats, then calls Observe
// once to merge its counters. The zero value is ready to use.
type AtomicStats struct {
	queries atomic.Int64

	tilesVisited      atomic.Int64
	partitionsScanned atomic.Int64
	entriesScanned    atomic.Int64
	classScanned      [4]atomic.Int64
	comparisons       atomic.Int64
	results           atomic.Int64
	duplicatesAvoided atomic.Int64
	binarySearches    atomic.Int64

	secondaryFilterTests atomic.Int64
	secondaryFilterHits  atomic.Int64
	refinementTests      atomic.Int64
	distanceComputations atomic.Int64
}

// Observe merges the counters of one finished query (or batch of queries
// measured together) into the accumulator. Safe for concurrent use.
func (a *AtomicStats) Observe(s *Stats) {
	a.queries.Add(1)
	a.tilesVisited.Add(s.TilesVisited)
	a.partitionsScanned.Add(s.PartitionsScanned)
	a.entriesScanned.Add(s.EntriesScanned)
	for c := range s.ClassScanned {
		a.classScanned[c].Add(s.ClassScanned[c])
	}
	a.comparisons.Add(s.Comparisons)
	a.results.Add(s.Results)
	a.duplicatesAvoided.Add(s.DuplicatesAvoided)
	a.binarySearches.Add(s.BinarySearches)
	a.secondaryFilterTests.Add(s.SecondaryFilterTests)
	a.secondaryFilterHits.Add(s.SecondaryFilterHits)
	a.refinementTests.Add(s.RefinementTests)
	a.distanceComputations.Add(s.DistanceComputations)
}

// Queries returns how many times Observe has been called.
func (a *AtomicStats) Queries() int64 { return a.queries.Load() }

// Snapshot returns a point-in-time copy of the accumulated counters.
// Individual counters are read atomically; the snapshot as a whole is not
// a single atomic cut across counters (concurrent Observe calls may be
// partially included), which is fine for monitoring.
func (a *AtomicStats) Snapshot() Stats {
	var cls [4]int64
	for c := range cls {
		cls[c] = a.classScanned[c].Load()
	}
	return Stats{
		TilesVisited:         a.tilesVisited.Load(),
		PartitionsScanned:    a.partitionsScanned.Load(),
		EntriesScanned:       a.entriesScanned.Load(),
		ClassScanned:         cls,
		Comparisons:          a.comparisons.Load(),
		Results:              a.results.Load(),
		DuplicatesAvoided:    a.duplicatesAvoided.Load(),
		BinarySearches:       a.binarySearches.Load(),
		SecondaryFilterTests: a.secondaryFilterTests.Load(),
		SecondaryFilterHits:  a.secondaryFilterHits.Load(),
		RefinementTests:      a.refinementTests.Load(),
		DistanceComputations: a.distanceComputations.Load(),
	}
}
