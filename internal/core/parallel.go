package core

import (
	"sync"
	"sync/atomic"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// This file implements intra-query parallelism. The paper observes
// (Section IV-D) that "the operations at each tile are totally
// independent to each other and they can be parallelized without the
// need of any synchronization"; for large windows the tile rows of the
// cover are distributed over workers.

// WindowParallel evaluates one window query with the cover's tile rows
// spread across threads. fn must be safe for concurrent invocation.
// threads <= 0 uses all cores; small covers fall back to the serial path
// (parallelism cannot pay for goroutine startup on a handful of tiles).
func (ix *Index) WindowParallel(w geom.Rect, threads int, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	if threads <= 0 {
		threads = defaultThreads()
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	rows := iy1 - iy0 + 1
	if threads == 1 || rows < 2 {
		ix.Window(w, fn)
		return
	}
	if threads > rows {
		threads = rows
	}
	var next int64 = int64(iy0) - 1
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ty := int(atomic.AddInt64(&next, 1))
				if ty > iy1 {
					return
				}
				for tx := ix0; tx <= ix1; tx++ {
					t := ix.tileAt(tx, ty)
					if t == nil {
						continue
					}
					ix.windowOnTile(t, tx, ty, ix0, iy0, w, fn)
				}
			}
		}()
	}
	wg.Wait()
}

// WindowParallelCount counts results with intra-query parallelism.
func (ix *Index) WindowParallelCount(w geom.Rect, threads int) int {
	var n int64
	ix.WindowParallel(w, threads, func(spatial.Entry) { atomic.AddInt64(&n, 1) })
	return int(n)
}

// JoinParallel runs the spatial join with common tiles distributed over
// threads. fn must be safe for concurrent invocation. threads <= 0 uses
// all cores.
func (ix *Index) JoinParallel(other *Index, threads int, fn func(r, s spatial.Entry)) {
	if threads <= 0 {
		threads = defaultThreads()
	}
	if threads == 1 {
		ix.Join(other, fn)
		return
	}
	checkJoinable(ix, other)
	type task struct {
		tR, tS *tile
	}
	var tasks []task
	for slot := range ix.tiles {
		tR := &ix.tiles[slot]
		tx, ty := ix.g.TileCoords(int(ix.tileIDs[slot]))
		if tS := other.tileAt(tx, ty); tS != nil {
			tasks = append(tasks, task{tR: tR, tS: tS})
		}
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(tasks)) {
					return
				}
				joinTile(tasks[i].tR, tasks[i].tS, fn)
			}
		}()
	}
	wg.Wait()
}

// JoinParallelCount counts join pairs with tile-level parallelism.
func (ix *Index) JoinParallelCount(other *Index, threads int) int {
	var n int64
	ix.JoinParallel(other, threads, func(_, _ spatial.Entry) { atomic.AddInt64(&n, 1) })
	return int(n)
}
