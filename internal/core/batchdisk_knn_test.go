package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestBatchDiskStrategiesAgree: both strategies equal one-at-a-time disk
// evaluation, serial and parallel.
func TestBatchDiskStrategiesAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(161))
	ix, d := buildRandom(rnd, 1500, 0.05, Options{NX: 16, NY: 16})
	queries := make([]geom.Disk, 150)
	for i := range queries {
		queries[i] = geom.Disk{
			Center: geom.Point{X: rnd.Float64() * 1.1, Y: rnd.Float64() * 1.1},
			Radius: rnd.Float64() * 0.2,
		}
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = len(spatial.BruteDisk(d.Entries, q.Center, q.Radius))
	}
	for _, strategy := range []BatchStrategy{QueriesBased, TilesBased} {
		for _, threads := range []int{1, 4, 0} {
			got := ix.BatchDiskCounts(queries, strategy, threads)
			for i := range queries {
				if got[i] != want[i] {
					t.Fatalf("%v threads=%d query %d: %d, want %d",
						strategy, threads, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchDiskNoDuplicates: the tiles-based path must deliver each
// (query, object) pair once.
func TestBatchDiskNoDuplicates(t *testing.T) {
	rnd := rand.New(rand.NewSource(162))
	ix, _ := buildRandom(rnd, 800, 0.2, Options{NX: 16, NY: 16})
	queries := []geom.Disk{
		{Center: geom.Point{X: 0.5, Y: 0.5}, Radius: 0.3},
		{Center: geom.Point{X: 0.2, Y: 0.8}, Radius: 0.15},
	}
	seen := map[[2]uint32]bool{}
	ix.BatchDisk(queries, TilesBased, 1, func(q int, e spatial.Entry) {
		key := [2]uint32{uint32(q), e.ID}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	})
}

// TestKNNExactMatchesBruteForce over mixed geometries.
func TestKNNExactMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(163))
	geoms := randGeoms(rnd, 400, 0.05)
	d := spatial.NewGeomDataset(geoms)
	ix := Build(d, Options{NX: 16, NY: 16})
	for trial := 0; trial < 40; trial++ {
		q := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		k := 1 + rnd.Intn(15)
		got := ix.KNNExact(q, k)

		dists := make([]float64, len(geoms))
		for i, g := range geoms {
			dists[i] = math.Sqrt(exactDistSq(g, q))
		}
		sort.Float64s(dists)
		if len(got) != k {
			t.Fatalf("got %d results", len(got))
		}
		for i := range got {
			if math.Abs(got[i].Dist-dists[i]) > 1e-9 {
				t.Fatalf("k=%d result %d: %v, want %v", k, i, got[i].Dist, dists[i])
			}
		}
	}
}

// TestKNNExactVsFiltering: exact distances are never below MBR distances,
// and for rectangle datasets KNN and KNNExact agree.
func TestKNNExactVsFiltering(t *testing.T) {
	rnd := rand.New(rand.NewSource(164))
	ix, _ := buildRandom(rnd, 300, 0.05, Options{NX: 8, NY: 8})
	q := geom.Point{X: 0.5, Y: 0.5}
	a := ix.KNN(q, 10)
	b := ix.KNNExact(q, 10)
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
			t.Fatalf("rect dataset: KNN and KNNExact disagree at %d", i)
		}
	}
}

// TestKNNExactRequiresDataset documents the contract.
func TestKNNExactRequiresDataset(t *testing.T) {
	ix := New(Options{})
	ix.Insert(spatial.Entry{Rect: geom.Rect{MaxX: 0.1, MaxY: 0.1}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic without dataset")
		}
	}()
	ix.KNNExact(geom.Point{}, 1)
}

// TestExactDistSqFallback: the generic bisection fallback matches the
// specialized distance for a known geometry type.
func TestExactDistSqFallback(t *testing.T) {
	poly := geom.NewPolygon(
		geom.Point{X: 0.2, Y: 0.2}, geom.Point{X: 0.4, Y: 0.2}, geom.Point{X: 0.3, Y: 0.4})
	q := geom.Point{X: 0.8, Y: 0.3}
	want := poly.DistSqToPoint(q)
	got := exactDistSq(opaqueGeom{poly}, q)
	if math.Abs(math.Sqrt(got)-math.Sqrt(want)) > 1e-9 {
		t.Errorf("fallback distance %v, want %v", got, want)
	}
}

// opaqueGeom hides the concrete type to force the generic fallback.
type opaqueGeom struct{ g geom.Geometry }

func (o opaqueGeom) MBR() geom.Rect                  { return o.g.MBR() }
func (o opaqueGeom) IntersectsRect(r geom.Rect) bool { return o.g.IntersectsRect(r) }
func (o opaqueGeom) IntersectsDisk(c geom.Point, r float64) bool {
	return o.g.IntersectsDisk(c, r)
}
