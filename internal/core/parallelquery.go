package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Cost-gated intra-query parallelism. The paper observes (Section IV-D)
// that per-tile operations are fully independent; the Lemma 1-2 class
// selection is purely position-based, so disjoint runs of tile rows can
// be scanned by different workers with no synchronization and no
// duplicate results. Unlike WindowParallel (whose callback must be
// concurrency-safe and whose delivery order is arbitrary), the chunked
// kernel here buffers each chunk privately and merges in row order on
// the caller's goroutine — callers observe the exact sequential
// semantics, just faster. Because buffering and goroutine startup have
// real costs, the kernel only engages when a selectivity estimate says
// the query is large enough to pay for them; small queries keep the
// zero-overhead sequential path.

const (
	// parallelMinTiles is the smallest cover (in tiles) the chunked
	// kernel considers: below it, goroutine startup dominates.
	parallelMinTiles = 1024
	// parallelMinEstimate is the smallest EstimateWindow result that
	// justifies buffering results per chunk.
	parallelMinEstimate = 4096
	// parallelChunksPerWorker oversubscribes chunks to workers so one
	// dense chunk cannot leave the other workers idle.
	parallelChunksPerWorker = 4
)

// chunkBuf is a pooled per-chunk result buffer with a pre-bound append
// sink, so a chunk scan allocates nothing after pool warm-up.
type chunkBuf struct {
	entries []spatial.Entry
	emit    func(spatial.Entry)
}

var chunkBufPool = sync.Pool{New: func() any {
	c := &chunkBuf{}
	c.emit = func(e spatial.Entry) { c.entries = append(c.entries, e) }
	return c
}}

// autoWindowWorkers decides whether a window query over the given cover
// should take the chunked parallel kernel, and with how many workers.
// The gate is deliberately conservative: parallelism must be available
// (GOMAXPROCS), the cover must be large, the expected cardinality must
// pay for per-chunk buffering, and an early-stopping Limit below the
// estimate keeps the sequential path (which can actually stop early;
// parallel workers cannot).
func (ix *Index) autoWindowWorkers(ix0, iy0, ix1, iy1 int, w geom.Rect, limit int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		return 1
	}
	rows := iy1 - iy0 + 1
	if rows < 2 {
		return 1
	}
	if rows*(ix1-ix0+1) < parallelMinTiles {
		return 1
	}
	est := ix.EstimateWindow(w)
	if est < parallelMinEstimate {
		return 1
	}
	if limit > 0 && float64(limit) < est {
		return 1
	}
	if workers > rows {
		workers = rows
	}
	return workers
}

// windowChunked evaluates w with the cover's tile rows split into
// contiguous chunks fanned over a bounded worker pool. Each chunk scans
// its rows with the sequential per-tile kernel into a pooled private
// buffer; the caller's goroutine then merges the buffers in row order,
// so until sees entries in exactly the order the sequential scan would
// deliver them. until returning false stops delivery (the remaining
// buffered chunks are discarded); it reports whether delivery ran to
// completion. The global cover origin (qx0, qy0) is passed to every
// tile, so the duplicate-avoidance class selection is identical to the
// sequential scan and chunks stay disjoint.
//
// Stats-instrumented indices run each worker on a private stats view and
// merge the counters after the join; traced queries additionally record
// one ChunkSpan per chunk.
func (ix *Index) windowChunked(w geom.Rect, ix0, iy0, ix1, iy1, workers int, until func(spatial.Entry) bool) bool {
	rows := iy1 - iy0 + 1
	if workers > rows {
		workers = rows
	}
	nchunks := workers * parallelChunksPerWorker
	if nchunks > rows {
		nchunks = rows
	}
	type chunk struct {
		buf  *chunkBuf
		span ChunkSpan
	}
	chunks := make([]chunk, nchunks)
	traced := ix.trace != nil
	var workerStats []Stats
	if ix.Stats != nil {
		workerStats = make([]Stats, workers)
	}

	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			v := ix
			if workerStats != nil {
				v = ix.View(&workerStats[wk])
			}
			for {
				ci := int(next.Add(1))
				if ci >= nchunks {
					return
				}
				r0 := iy0 + ci*rows/nchunks
				r1 := iy0 + (ci+1)*rows/nchunks - 1
				var start time.Time
				if traced {
					start = time.Now()
				}
				buf := chunkBufPool.Get().(*chunkBuf)
				buf.entries = buf.entries[:0]
				for ty := r0; ty <= r1; ty++ {
					for tx := ix0; tx <= ix1; tx++ {
						t := v.tileAt(tx, ty)
						if t == nil {
							continue
						}
						v.windowOnTile(t, tx, ty, ix0, iy0, w, buf.emit)
					}
				}
				chunks[ci].buf = buf
				if traced {
					chunks[ci].span = ChunkSpan{
						Row0:      r0,
						Row1:      r1,
						ElapsedNS: time.Since(start).Nanoseconds(),
						Results:   len(buf.entries),
					}
				}
			}
		}(wk)
	}
	wg.Wait()

	for i := range workerStats {
		ix.Stats.Add(&workerStats[i])
	}
	if traced {
		ix.trace.Parallel = true
		for i := range chunks {
			ix.trace.Chunks = append(ix.trace.Chunks, chunks[i].span)
		}
	}
	if ix.met != nil {
		ix.met.parallelQueries.Add(1)
		ix.met.parallelChunks.Add(int64(nchunks))
	}

	stopped := false
	for i := range chunks {
		buf := chunks[i].buf
		if buf == nil {
			continue
		}
		if !stopped {
			for j := range buf.entries {
				if !until(buf.entries[j]) {
					stopped = true
					break
				}
			}
		}
		buf.entries = buf.entries[:0]
		chunkBufPool.Put(buf)
	}
	return !stopped
}

// WindowOrdered evaluates one window query over the given number of
// workers, delivering results to fn on the caller's goroutine in exactly
// the sequential scan order — unlike WindowParallel, fn needs no
// synchronization and observes a deterministic order. workers <= 0 uses
// GOMAXPROCS; 1, or a cover too small to chunk, runs the plain
// sequential scan. This is the forced-parallelism entry point; Window
// and Search apply the same kernel automatically behind the cost gate.
func (ix *Index) WindowOrdered(w geom.Rect, workers int, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	if workers == 1 || iy1-iy0+1 < 2 {
		ix.windowSeq(w, ix0, iy0, ix1, iy1, fn)
		return
	}
	ix.windowChunked(w, ix0, iy0, ix1, iy1, workers, func(e spatial.Entry) bool {
		fn(e)
		return true
	})
}
