package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestCorollary1 asserts the paper's Corollary 1: for a window query that
// intersects more than one tile per dimension, the number of comparisons
// per scanned rectangle in each relevant tile is at most two.
func TestCorollary1(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 16, NY: 16})
	ix.Stats = &Stats{}
	space := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	_ = space
	for q := 0; q < 200; q++ {
		// Windows at least 2 tiles wide/high: side in (2/16, 6/16).
		x := rnd.Float64() * 0.6
		y := rnd.Float64() * 0.6
		side := 0.13 + rnd.Float64()*0.2
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
		ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
		if ix1 == ix0 || iy1 == iy0 {
			continue // only multi-tile-per-dimension queries
		}
		ix.Stats.Reset()
		ix.WindowCount(w)
		if ix.Stats.EntriesScanned > 0 && ix.Stats.Comparisons > 2*ix.Stats.EntriesScanned {
			t.Fatalf("window %v: %d comparisons for %d scanned entries (> 2 per entry)",
				w, ix.Stats.Comparisons, ix.Stats.EntriesScanned)
		}
	}
}

// TestInteriorTilesNoComparisons: tiles strictly interior to a window
// contribute zero comparisons (their class-A entries are all reported
// outright). We build a window covering a 4x4 block of tiles exactly and
// check total comparisons come only from border tiles.
func TestInteriorTilesNoComparisons(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	// Data strictly inside one interior tile so every scanned entry is in
	// the window's interior tiles.
	rects := make([]geom.Rect, 100)
	for i := range rects {
		x := 0.3 + rnd.Float64()*0.04
		y := 0.3 + rnd.Float64()*0.04
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 0.01, MaxY: y + 0.01}
	}
	d := spatial.NewDataset(rects)
	unit := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	ix := Build(d, Options{NX: 8, NY: 8, Space: unit})
	ix.Stats = &Stats{}
	// Window covering tiles (1..5, 1..5) fully: [0.125, 0.75].
	w := geom.Rect{MinX: 0.125, MinY: 0.125, MaxX: 0.75, MaxY: 0.75}
	n := ix.WindowCount(w)
	if n != 100 {
		t.Fatalf("expected all 100 objects, got %d", n)
	}
	if ix.Stats.Comparisons != 0 {
		t.Errorf("interior-tile scan performed %d comparisons, want 0", ix.Stats.Comparisons)
	}
}

// TestDuplicatesAvoidedCounting: when a window spans many tiles over
// replicated data, the skipped classes must be counted, and the 1-tile
// window must skip nothing.
func TestDuplicatesAvoidedCounting(t *testing.T) {
	rnd := rand.New(rand.NewSource(43))
	ix, _ := buildRandom(rnd, 1000, 0.2, Options{NX: 16, NY: 16})
	ix.Stats = &Stats{}
	ix.WindowCount(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9})
	if ix.Stats.DuplicatesAvoided == 0 {
		t.Error("large window avoided no duplicates over replicated data")
	}
}

// TestStatsResultsMatchCallback: the Results counter equals the number of
// callback invocations on both plain and decomposed paths.
func TestStatsResultsMatchCallback(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	for _, dec := range []bool{false, true} {
		ix, _ := buildRandom(rnd, 800, 0.1, Options{NX: 16, NY: 16, Decompose: dec})
		ix.Stats = &Stats{}
		for q := 0; q < 30; q++ {
			w := randWindow(rnd, 0.3)
			ix.Stats.Reset()
			n := ix.WindowCount(w)
			if ix.Stats.Results != int64(n) {
				t.Fatalf("dec=%v: stats results %d != callback count %d", dec, ix.Stats.Results, n)
			}
		}
	}
}

// TestDecomposedBinarySearchReducesComparisons: on border tiles the
// 2-layer+ variant must perform strictly fewer per-entry comparisons than
// plain 2-layer for the same queries.
func TestDecomposedBinarySearchReducesComparisons(t *testing.T) {
	rnd := rand.New(rand.NewSource(45))
	rects := randRects(rnd, 5000, 0.02)
	plain := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8})
	dec := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8, Decompose: true})
	plain.Stats = &Stats{}
	dec.Stats = &Stats{}
	for q := 0; q < 50; q++ {
		w := randWindow(rnd, 0.3)
		plain.WindowCount(w)
		dec.WindowCount(w)
	}
	if dec.Stats.BinarySearches == 0 {
		t.Fatal("decomposed index performed no binary searches")
	}
	if dec.Stats.Comparisons >= plain.Stats.Comparisons {
		t.Errorf("decomposed comparisons %d not below plain %d",
			dec.Stats.Comparisons, plain.Stats.Comparisons)
	}
}

// TestStatsAddReset exercises the accumulation helpers.
func TestStatsAddReset(t *testing.T) {
	a := Stats{Comparisons: 3, Results: 2, TilesVisited: 1, RefinementTests: 4}
	b := Stats{Comparisons: 5, DuplicatesAvoided: 7, SecondaryFilterHits: 2}
	a.Add(&b)
	if a.Comparisons != 8 || a.DuplicatesAvoided != 7 || a.Results != 2 || a.SecondaryFilterHits != 2 {
		t.Errorf("Add result wrong: %+v", a)
	}
	a.Reset()
	if a != (Stats{}) {
		t.Errorf("Reset left %+v", a)
	}
}
