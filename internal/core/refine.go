package core

import (
	"time"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// RefineMode selects how the refinement step of an exact range query is
// evaluated (Section V of the paper).
type RefineMode int

const (
	// RefineSimple passes every candidate surviving the filtering step to
	// the exact geometry test.
	RefineSimple RefineMode = iota
	// RefineAvoid applies the Lemma 5 secondary filter first: a candidate
	// whose MBR has at least one side inside the query range is a
	// guaranteed result and skips refinement.
	RefineAvoid
	// RefineAvoidPlus additionally exploits the two-layer class knowledge
	// to drop comparisons from the secondary filter (end of Section V).
	// For disk queries it behaves like RefineAvoid, which is as far as
	// the paper takes it.
	RefineAvoidPlus
)

// String implements fmt.Stringer.
func (m RefineMode) String() string {
	switch m {
	case RefineSimple:
		return "Simple"
	case RefineAvoid:
		return "RefAvoid"
	case RefineAvoidPlus:
		return "RefAvoid+"
	}
	return "RefineMode(?)"
}

// WindowExact answers a window query over the exact object geometries:
// fn is called exactly once for each object whose geometry intersects w.
// The index must have been built over a dataset (Build).
func (ix *Index) WindowExact(w geom.Rect, mode RefineMode, fn func(id spatial.ID)) {
	if ix.dataset == nil {
		panic("core: WindowExact requires an index built over a Dataset")
	}
	ix.windowExactEntries(w, mode, func(e spatial.Entry) { fn(e.ID) })
}

// windowExactEntries is WindowExact delivering the full grid entry (ID
// plus MBR) per result — sharding needs the MBR to apply its ownership
// rule to refined results too. The caller must have checked ix.dataset.
func (ix *Index) windowExactEntries(w geom.Rect, mode RefineMode, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.windowExactOnTile(t, tx, ty, ix0, iy0, w, mode, fn)
		}
	}
}

// windowExactOnTile runs filtering plus refinement on one tile.
func (ix *Index) windowExactOnTile(t *tile, tx, ty, qx0, qy0 int, w geom.Rect, mode RefineMode, fn func(spatial.Entry)) {
	first := tx == qx0
	top := ty == qy0
	plan := ix.planFor(tx, ty, w)
	if ix.Stats != nil {
		ix.Stats.TilesVisited++
	}

	// Class knowledge for RefAvoid+ (Section V): when the window starts
	// before this tile in a dimension, every scanned class starts inside
	// the tile in that dimension, so the lower half of the coverage test
	// is already known to hold. Effective extents keep border tiles
	// conservative for out-of-space data.
	eff := ix.effectiveTile(tx, ty)
	knownXLow := w.MinX < eff.MinX // implies w.MinX <= r.MinX for classes A, B
	knownYLow := w.MinY < eff.MinY // implies w.MinY <= r.MinY for classes A, C

	var frac [4]float64
	if t.dec != nil {
		tMin := ix.g.TileMin(tx, ty)
		invW, invH := 1/ix.g.CellW(), 1/ix.g.CellH()
		frac[cmpXU] = (tMin.X + ix.g.CellW() - w.MinX) * invW
		frac[cmpXL] = (w.MaxX - tMin.X) * invW
		frac[cmpYU] = (tMin.Y + ix.g.CellH() - w.MinY) * invH
		frac[cmpYL] = (w.MaxY - tMin.Y) * invH
	}
	plans := classPlans(first, top, plan)
	for c := ClassA; c <= ClassD; c++ {
		if !plans[c].scan {
			continue
		}
		verify := ix.windowVerifier(c, w, mode, knownXLow, knownYLow, fn)
		if t.dec != nil {
			ix.decClassQuery(t, c, w, plans[c].plan, &frac, verify)
		} else {
			ix.scanClass(t.classes[c], w, plans[c].plan, verify)
		}
	}
}

// windowVerifier builds the per-candidate refinement callback for one
// class of one tile.
func (ix *Index) windowVerifier(c Class, w geom.Rect, mode RefineMode, knownXLow, knownYLow bool, fn func(spatial.Entry)) func(spatial.Entry) {
	s := ix.Stats
	refine := func(e spatial.Entry) {
		if s != nil {
			s.RefinementTests++
		}
		if tr := ix.trace; tr != nil {
			// Traced path: attribute the exact geometry test's wall time to
			// the refinement stage.
			t0 := time.Now()
			hit := ix.dataset.Geom(e.ID).IntersectsRect(w)
			tr.RefineNS += time.Since(t0).Nanoseconds()
			if hit {
				fn(e)
			}
			return
		}
		if ix.dataset.Geom(e.ID).IntersectsRect(w) {
			fn(e)
		}
	}
	if mode == RefineSimple {
		return refine
	}
	// startsInsideX/Y: whether this class's entries begin inside the tile
	// in each dimension; classes that start before the tile can never be
	// covered by the window in that dimension when the class knowledge
	// applies (RefAvoid+ skips those comparisons entirely).
	startsInsideX := c == ClassA || c == ClassB
	startsInsideY := c == ClassA || c == ClassC
	plus := mode == RefineAvoidPlus
	return func(e spatial.Entry) {
		if s != nil {
			s.SecondaryFilterTests++
		}
		coveredX := false
		if !plus || startsInsideX {
			if plus && knownXLow && startsInsideX {
				coveredX = e.Rect.MaxX <= w.MaxX
			} else {
				coveredX = w.MinX <= e.Rect.MinX && e.Rect.MaxX <= w.MaxX
			}
		}
		coveredY := false
		if !coveredX {
			if !plus || startsInsideY {
				if plus && knownYLow && startsInsideY {
					coveredY = e.Rect.MaxY <= w.MaxY
				} else {
					coveredY = w.MinY <= e.Rect.MinY && e.Rect.MaxY <= w.MaxY
				}
			}
		}
		if coveredX || coveredY {
			// Lemma 5: one side of the MBR lies inside w, so the exact
			// geometry must intersect w.
			if s != nil {
				s.SecondaryFilterHits++
			}
			fn(e)
			return
		}
		refine(e)
	}
}

// DiskExact answers a disk query over the exact object geometries: fn is
// called exactly once for each object whose geometry comes within radius
// of center.
func (ix *Index) DiskExact(center geom.Point, radius float64, mode RefineMode, fn func(id spatial.ID)) {
	if ix.dataset == nil {
		panic("core: DiskExact requires an index built over a Dataset")
	}
	ix.diskExactEntries(center, radius, mode, func(e spatial.Entry) { fn(e.ID) })
}

// diskExactEntries is DiskExact delivering the full grid entry (ID plus
// MBR) per result, for the same reason as windowExactEntries. The caller
// must have checked ix.dataset.
func (ix *Index) diskExactEntries(center geom.Point, radius float64, mode RefineMode, fn func(e spatial.Entry)) {
	s := ix.Stats
	r2 := radius * radius
	ix.Disk(center, radius, func(e spatial.Entry) {
		if mode != RefineSimple {
			// Lemma 5 for disks: if at least two corners of the MBR are
			// inside the disk, one full side of the MBR is inside it, so
			// the object is a guaranteed result.
			if s != nil {
				s.SecondaryFilterTests++
			}
			inside := 0
			for _, corner := range e.Rect.Corners() {
				if s != nil {
					s.DistanceComputations++
				}
				if corner.DistSq(center) <= r2 {
					inside++
					if inside == 2 {
						break
					}
				}
			}
			if inside >= 2 {
				if s != nil {
					s.SecondaryFilterHits++
				}
				fn(e)
				return
			}
		}
		if s != nil {
			s.RefinementTests++
		}
		if tr := ix.trace; tr != nil {
			t0 := time.Now()
			hit := ix.dataset.Geom(e.ID).IntersectsDisk(center, radius)
			tr.RefineNS += time.Since(t0).Nanoseconds()
			if hit {
				fn(e)
			}
			return
		}
		if ix.dataset.Geom(e.ID).IntersectsDisk(center, radius) {
			fn(e)
		}
	})
}
