package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/twolayer/twolayer/internal/spatial"
)

// This file implements the parallel construction pipeline selected by
// Options.BuildThreads: a two-pass counting build that produces per-tile
// class slices byte-identical in content to the sequential insert loop,
// plus the worker-pool variant of BuildDecomposed.
//
// Pass 1 shards the entries across workers; each worker classifies every
// replica of its shard and counts per (tile, class) with atomic adds into
// one flat count array. A sequential merge sweep then allocates the tile
// directory and carves exact-size class slices out of a single entry slab
// (no append regrowth anywhere), and splits the tile-ID space into ranges
// carrying roughly equal placement counts. Pass 2 assigns each range to
// one worker, which scans the whole entry list in dataset order and
// writes only the placements that fall into its range. Every (tile,
// class) slice therefore has exactly one writer filling it in dataset
// order — the same order the sequential loop appends in — so the two
// paths produce identical partition contents (only the slot order of the
// tile pool differs: parallel builds lay tiles out in ascending tile-ID
// order, which the directory makes invisible to every reader).

// Parallel-build gates. Declared as variables so tests can force the
// parallel path onto tiny inputs; production code treats them as
// constants.
var (
	// minParallelBuildEntries is the dataset size below which the
	// sequential loop wins (goroutine + counting overhead dominates).
	minParallelBuildEntries = 32 << 10
	// minParallelBuildShard caps the worker count so every shard keeps a
	// meaningful amount of work.
	minParallelBuildShard = 8 << 10
	// maxParallelBuildTiles bounds the flat count array (16 bytes per
	// tile): grids beyond it fall back to the sequential path rather
	// than allocate an oversized transient.
	maxParallelBuildTiles = 1 << 24
	// minParallelDecTiles is the tile-pool size below which the
	// decomposed tables are built sequentially.
	minParallelDecTiles = 1 << 10
)

// resolveBuildThreads maps the Options.BuildThreads convention onto a
// concrete worker count: <= 0 selects runtime.NumCPU(), 1 forces the
// sequential path, anything else is taken as given.
func resolveBuildThreads(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// bulkLoad fills a fresh index with the dataset's entries, choosing
// between the sequential insert loop and the two-pass parallel pipeline
// per Options.BuildThreads and the workload gates above.
func (ix *Index) bulkLoad(entries []spatial.Entry) {
	threads := resolveBuildThreads(ix.opts.BuildThreads)
	if threads > 1 &&
		len(entries) >= minParallelBuildEntries &&
		ix.g.NumTiles() <= maxParallelBuildTiles {
		if cap := len(entries) / minParallelBuildShard; threads > cap {
			threads = cap
		}
		if threads > 1 && ix.buildParallel(entries, threads) {
			return
		}
	}
	for i := range entries {
		ix.insert(entries[i])
	}
}

// buildParallel runs the two-pass counting build with the given worker
// count. It requires a freshly constructed (empty) index and reports
// whether it ran; on false the caller falls back to sequential inserts.
func (ix *Index) buildParallel(entries []spatial.Entry, threads int) bool {
	if len(ix.tiles) != 0 || ix.size != 0 || ix.epoch != 0 {
		return false
	}
	numTiles := ix.g.NumTiles()
	nx := ix.g.NX

	// Pass 1: count replicas per (tile, class). Workers own contiguous
	// entry shards; counts land in one shared flat array via atomic adds
	// (spread over 4*numTiles addresses, so contention is negligible).
	counts := make([]int32, 4*numTiles)
	firstInvalid := int64(math.MaxInt64)
	var invalid atomic.Int64
	invalid.Store(firstInvalid)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		lo := len(entries) * w / threads
		hi := len(entries) * (w + 1) / threads
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				e := &entries[i]
				if !e.Rect.Valid() {
					for {
						cur := invalid.Load()
						if int64(i) >= cur || invalid.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				ax, ay, bx, by := ix.g.CoverRect(e.Rect)
				for ty := ay; ty <= by; ty++ {
					row := ty * nx
					for tx := ax; tx <= bx; tx++ {
						c := classify(tx, ty, ax, ay)
						atomic.AddInt32(&counts[(row+tx)*4+int(c)], 1)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if bad := invalid.Load(); bad != int64(math.MaxInt64) {
		// Same failure mode as the sequential insert loop, deterministic:
		// the lowest-index offender is reported.
		e := &entries[bad]
		panic(fmt.Sprintf("core: inserting invalid rect %v (id %d)", e.Rect, e.ID))
	}

	// Merge: size the tile pool and the entry slab from the counts.
	occupied, total := 0, 0
	for id := 0; id < numTiles; id++ {
		base := id * 4
		ct := int(counts[base]) + int(counts[base+1]) + int(counts[base+2]) + int(counts[base+3])
		if ct > 0 {
			occupied++
			total += ct
		}
	}
	if total > math.MaxInt32 {
		return false // int32 fill cursors would overflow; unreachable in-memory
	}
	ix.tiles = make([]tile, occupied)
	ix.tileIDs = make([]int32, 0, occupied)
	slab := make([]spatial.Entry, total)
	fill := make([]int32, 4*occupied) // per (slot, class) write cursor

	// One sweep assigns slots in ascending tile-ID order, carves the
	// exact-size class slices (cap pinned to len, so a later Insert
	// reallocates instead of clobbering a neighbor's slab region), and
	// splits the ID space into ranges of roughly equal placement mass
	// for pass 2.
	target := (total + threads - 1) / threads
	bounds := make([]int, 1, threads+1) // bounds[0] = 0
	acc := 0
	off := 0
	for id := 0; id < numTiles; id++ {
		base := id * 4
		ct := int(counts[base]) + int(counts[base+1]) + int(counts[base+2]) + int(counts[base+3])
		if ct == 0 {
			continue
		}
		slot := len(ix.tileIDs)
		ix.tileIDs = append(ix.tileIDs, int32(id))
		if ix.dense != nil {
			ix.dense[id] = int32(slot)
		} else {
			ix.sparse[int32(id)] = int32(slot)
		}
		t := &ix.tiles[slot]
		for c := 0; c < 4; c++ {
			if n := int(counts[base+c]); n > 0 {
				t.classes[c] = slab[off : off+n : off+n]
				off += n
			}
		}
		acc += ct
		if acc >= target && len(bounds) < threads {
			bounds = append(bounds, id+1)
			acc = 0
		}
	}
	bounds = append(bounds, numTiles)

	// Pass 2: fill. Each worker owns a contiguous tile-ID range and
	// scans the full entry list in order, writing only the placements
	// that fall into its range — one writer per (tile, class), dataset
	// order preserved.
	for w := 0; w+1 < len(bounds); w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := range entries {
				e := &entries[i]
				ax, ay, bx, by := ix.g.CoverRect(e.Rect)
				if by*nx+bx < lo || ay*nx+ax >= hi {
					continue
				}
				for ty := ay; ty <= by; ty++ {
					row := ty * nx
					txs, txe := ax, bx
					if row+txe < lo || row+txs >= hi {
						continue
					}
					if row+txs < lo {
						txs = lo - row
					}
					if row+txe >= hi {
						txe = hi - 1 - row
					}
					for tx := txs; tx <= txe; tx++ {
						var slot int32
						if ix.dense != nil {
							slot = ix.dense[row+tx]
						} else {
							slot = ix.sparse[int32(row+tx)]
						}
						c := classify(tx, ty, ax, ay)
						k := int(slot)*4 + int(c)
						ix.tiles[slot].classes[c][fill[k]] = *e
						fill[k]++
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()

	ix.size = len(entries)
	return true
}

// buildDecomposedParallel fans the per-tile table construction of
// BuildDecomposed across a worker pool. Tiles are independent (each
// worker writes only the dec pointer of tiles it claimed), so no
// synchronization beyond the claim cursor is needed.
func (ix *Index) buildDecomposedParallel(threads int) {
	const chunk = 64 // tiles claimed per cursor bump
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= len(ix.tiles) {
					return
				}
				hi := min(lo+chunk, len(ix.tiles))
				for i := lo; i < hi; i++ {
					if t := &ix.tiles[i]; t.dec == nil {
						t.dec = buildDecTile(t)
					}
				}
			}
		}()
	}
	wg.Wait()
}
