package core

import (
	"errors"
	"fmt"
	"slices"

	"github.com/twolayer/twolayer/internal/spatial"
)

// Join precondition errors, reported by Joinable (and carried by the
// panics of Join and JoinParallel).
var (
	// ErrSelfJoin means both operands are the same Index instance; build a
	// second index over the same data instead.
	ErrSelfJoin = errors.New("core: self-join needs two index instances over the data")
	// ErrGridMismatch means the operands were built over different grid
	// geometries (tile counts or space).
	ErrGridMismatch = errors.New("core: join requires indices with identical grid geometry")
)

// This file implements the spatial intersection join R ⋈ S over two
// two-layer indices that share the same grid — the second query type the
// paper names as future work for secondary-partitioned SOP indices.
//
// Replication would normally make a grid join report a pair once per
// common tile. The four classes remove the duplicates for free: a pair
// (r, s) is reported only in the single tile that contains the minimum
// corner of r ∩ s, and that is exactly the tile where, in each dimension,
// at least one of the two objects begins inside the tile. Enumerating
// class combinations with that property gives, per tile:
//
//	R.A × {S.A, S.B, S.C, S.D}
//	R.B × {S.A, S.C}
//	R.C × {S.A, S.B}
//	R.D × {S.A}
//
// Every qualifying pair is produced in exactly one tile, so the join
// needs no result deduplication at all.

// joinCombos lists the (R class, S class) pairs evaluated per tile.
var joinCombos = [...][2]Class{
	{ClassA, ClassA}, {ClassA, ClassB}, {ClassA, ClassC}, {ClassA, ClassD},
	{ClassB, ClassA}, {ClassB, ClassC},
	{ClassC, ClassA}, {ClassC, ClassB},
	{ClassD, ClassA},
}

// Join computes the intersection join between the objects of ix and
// other, invoking fn exactly once per intersecting (r, s) pair. Both
// indices must have been built over the same grid geometry (tile counts
// and space); Join panics otherwise, since silently joining mismatched
// partitions would produce garbage. Joining an index with itself is not
// supported (build a second index over the same data instead).
func (ix *Index) Join(other *Index, fn func(r, s spatial.Entry)) {
	checkJoinable(ix, other)
	if s := ix.Stats; s != nil {
		// Instrumented path: count common tiles and reported pairs. The
		// receiver's Stats governs, matching the exclusive-mode convention.
		inner := fn
		fn = func(r, e spatial.Entry) {
			s.Results++
			inner(r, e)
		}
		for slot := range ix.tiles {
			tR := &ix.tiles[slot]
			tid := ix.tileIDs[slot]
			tx, ty := ix.g.TileCoords(int(tid))
			tS := other.tileAt(tx, ty)
			if tS == nil {
				continue
			}
			s.TilesVisited++
			joinTile(tR, tS, fn)
		}
		return
	}
	// Drive from the smaller tile set.
	for slot := range ix.tiles {
		tR := &ix.tiles[slot]
		tid := ix.tileIDs[slot]
		tx, ty := ix.g.TileCoords(int(tid))
		tS := other.tileAt(tx, ty)
		if tS == nil {
			continue
		}
		joinTile(tR, tS, fn)
	}
}

// Joinable reports why a and b cannot be joined — ErrSelfJoin or a
// wrapped ErrGridMismatch — or nil when they can.
func Joinable(a, b *Index) error {
	if a == b {
		return ErrSelfJoin
	}
	if a.g.NX != b.g.NX || a.g.NY != b.g.NY || a.opts.Space != b.opts.Space {
		return fmt.Errorf("%w: %dx%d %v vs %dx%d %v", ErrGridMismatch,
			a.g.NX, a.g.NY, a.opts.Space, b.g.NX, b.g.NY, b.opts.Space)
	}
	return nil
}

// checkJoinable panics unless the two indices share a grid geometry and
// are distinct instances.
func checkJoinable(a, b *Index) {
	if err := Joinable(a, b); err != nil {
		panic(err)
	}
}

// JoinCount returns the number of intersecting pairs.
func (ix *Index) JoinCount(other *Index) int {
	n := 0
	ix.Join(other, func(_, _ spatial.Entry) { n++ })
	return n
}

// sweepThreshold is the pair-count above which a class combination is
// joined by sorting and plane sweep; below it a direct nested loop is
// cheaper than sorting (fine grids have tiny per-tile class lists).
const sweepThreshold = 1024

// joinTile evaluates all class combinations of one common tile.
func joinTile(tR, tS *tile, fn func(r, s spatial.Entry)) {
	// Sort each non-empty class at most once per tile, and only when a
	// combination is large enough for the sweep to pay off.
	var sortedR, sortedS [4][]spatial.Entry
	for _, combo := range joinCombos {
		cr, cs := combo[0], combo[1]
		rs, ss := tR.classes[cr], tS.classes[cs]
		if len(rs) == 0 || len(ss) == 0 {
			continue
		}
		if len(rs)*len(ss) <= sweepThreshold {
			nestedJoin(rs, ss, fn)
			continue
		}
		if sortedR[cr] == nil {
			sortedR[cr] = sortByMinX(rs)
		}
		if sortedS[cs] == nil {
			sortedS[cs] = sortByMinX(ss)
		}
		sweep(sortedR[cr], sortedS[cs], fn)
	}
}

// nestedJoin reports intersecting pairs by direct nested loop.
func nestedJoin(rs, ss []spatial.Entry, fn func(r, s spatial.Entry)) {
	for i := range rs {
		r := &rs[i]
		for j := range ss {
			if r.Rect.Intersects(ss[j].Rect) {
				fn(*r, ss[j])
			}
		}
	}
}

func sortByMinX(entries []spatial.Entry) []spatial.Entry {
	out := make([]spatial.Entry, len(entries))
	copy(out, entries)
	slices.SortFunc(out, func(a, b spatial.Entry) int {
		switch {
		case a.Rect.MinX < b.Rect.MinX:
			return -1
		case a.Rect.MinX > b.Rect.MinX:
			return 1
		default:
			return 0
		}
	})
	return out
}

// sweep reports every intersecting pair between two MinX-sorted lists
// with the classic forward-scan plane sweep: each rectangle scans forward
// in the other list while x-projections overlap, verifying y overlap.
func sweep(rs, ss []spatial.Entry, fn func(r, s spatial.Entry)) {
	i, j := 0, 0
	for i < len(rs) && j < len(ss) {
		if rs[i].Rect.MinX <= ss[j].Rect.MinX {
			r := &rs[i]
			for k := j; k < len(ss) && ss[k].Rect.MinX <= r.Rect.MaxX; k++ {
				s := &ss[k]
				if r.Rect.MinY <= s.Rect.MaxY && s.Rect.MinY <= r.Rect.MaxY {
					fn(*r, *s)
				}
			}
			i++
		} else {
			s := &ss[j]
			for k := i; k < len(rs) && rs[k].Rect.MinX <= s.Rect.MaxX; k++ {
				r := &rs[k]
				if r.Rect.MinY <= s.Rect.MaxY && s.Rect.MinY <= r.Rect.MaxY {
					fn(*r, *s)
				}
			}
			j++
		}
	}
}
