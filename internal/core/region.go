package core

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// This file implements range queries with arbitrary (non-rectangular)
// query regions, generalizing Section IV-E of the paper beyond disks. The
// class-selection idea carries over — a class is skipped when the
// previous tile in the relevant dimension also intersects the region —
// but an arbitrary region's tile cover need not be convex, so the
// disk-specific ownership rule (which relies on contiguous row runs) is
// replaced by a general one driven by the cover's membership bitmap:
// an entry is reported in the first cover tile of its replication block
// in column-major order. Completeness and uniqueness hold for any cover.

// Region is a query range of arbitrary shape.
type Region interface {
	// MBR bounds the region; only tiles intersecting it are considered.
	MBR() geom.Rect
	// IntersectsRect reports whether the region and a rectangle share at
	// least one point. It is used both to build the tile cover and to
	// verify candidate MBRs.
	IntersectsRect(geom.Rect) bool
}

// RegionCoverer is optionally implemented by regions that can decide full
// containment of a rectangle; tiles fully inside the region then skip the
// per-entry verification (as the paper does for disks).
type RegionCoverer interface {
	ContainsRect(geom.Rect) bool
}

// regionCover is the tile cover of an arbitrary region: a membership
// bitmap over the clamped cover range.
type regionCover struct {
	x0, y0, x1, y1 int
	w              int
	member         []bool
}

func (rc *regionCover) contains(tx, ty int) bool {
	if tx < rc.x0 || tx > rc.x1 || ty < rc.y0 || ty > rc.y1 {
		return false
	}
	return rc.member[(ty-rc.y0)*rc.w+(tx-rc.x0)]
}

// firstInColumn returns the smallest row in [yLo, yHi] for which column tx
// is in the cover, or -1.
func (rc *regionCover) firstInColumn(tx, yLo, yHi int) int {
	if tx < rc.x0 || tx > rc.x1 {
		return -1
	}
	if yLo < rc.y0 {
		yLo = rc.y0
	}
	if yHi > rc.y1 {
		yHi = rc.y1
	}
	for y := yLo; y <= yHi; y++ {
		if rc.member[(y-rc.y0)*rc.w+(tx-rc.x0)] {
			return y
		}
	}
	return -1
}

// Query evaluates an arbitrary-region range query on the filtering step:
// fn is invoked exactly once for every entry whose MBR intersects the
// region. Tiles fully covered by the region (when it implements
// RegionCoverer) skip per-entry verification.
func (ix *Index) Query(region Region, fn func(e spatial.Entry)) {
	mbr := region.MBR()
	if !mbr.Valid() {
		return
	}
	x0, y0, x1, y1 := ix.g.CoverRect(mbr)
	rc := &regionCover{x0: x0, y0: y0, x1: x1, y1: y1, w: x1 - x0 + 1}
	rc.member = make([]bool, rc.w*(y1-y0+1))
	for ty := y0; ty <= y1; ty++ {
		for tx := x0; tx <= x1; tx++ {
			if region.IntersectsRect(ix.effectiveTile(tx, ty)) {
				rc.member[(ty-y0)*rc.w+(tx-x0)] = true
			}
		}
	}
	coverer, _ := region.(RegionCoverer)

	for ty := y0; ty <= y1; ty++ {
		for tx := x0; tx <= x1; tx++ {
			if !rc.contains(tx, ty) {
				continue
			}
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.regionOnTile(t, tx, ty, rc, region, coverer, fn)
		}
	}
}

// QueryIDs collects region query result IDs into buf.
func (ix *Index) QueryIDs(region Region, buf []spatial.ID) []spatial.ID {
	buf = buf[:0]
	ix.Query(region, func(e spatial.Entry) { buf = append(buf, e.ID) })
	return buf
}

// QueryCount returns the number of MBRs intersecting the region.
func (ix *Index) QueryCount(region Region) int {
	n := 0
	ix.Query(region, func(spatial.Entry) { n++ })
	return n
}

func (ix *Index) regionOnTile(t *tile, tx, ty int, rc *regionCover, region Region, coverer RegionCoverer, fn func(spatial.Entry)) {
	hasLeft := rc.contains(tx-1, ty)
	hasUp := rc.contains(tx, ty-1)
	covered := coverer != nil && coverer.ContainsRect(ix.g.Tile(tx, ty)) &&
		tx > 0 && ty > 0 && tx < ix.g.NX-1 && ty < ix.g.NY-1
	if ix.Stats != nil {
		ix.Stats.TilesVisited++
	}

	emit := func(c Class, e *spatial.Entry) {
		if !covered && !region.IntersectsRect(e.Rect) {
			return
		}
		if c != ClassA && !ix.ownsRegionEntry(e.Rect, c, tx, ty, rc) {
			return
		}
		if ix.Stats != nil {
			ix.Stats.Results++
		}
		fn(*e)
	}
	scan := func(c Class) {
		entries := t.classes[c]
		if ix.Stats != nil && len(entries) > 0 {
			ix.Stats.PartitionsScanned++
			ix.Stats.EntriesScanned += int64(len(entries))
			ix.Stats.ClassScanned[c] += int64(len(entries))
		}
		for i := range entries {
			emit(c, &entries[i])
		}
	}

	scan(ClassA)
	if !hasUp {
		scan(ClassB)
	}
	if !hasLeft {
		scan(ClassC)
	}
	if !hasUp && !hasLeft {
		scan(ClassD)
	}
}

// ownsRegionEntry reports whether (tx, ty) is the owner tile of entry r
// for this cover: the first cover tile of r's replication block in
// column-major order. Unlike the disk rule, it holds for arbitrary
// (non-convex) covers, at the price of a bitmap probe per earlier column
// and row.
func (ix *Index) ownsRegionEntry(r geom.Rect, c Class, tx, ty int, rc *regionCover) bool {
	ax, ay, _, by := ix.g.CoverRect(r)
	if ax < rc.x0 {
		ax = rc.x0
	}
	if c == ClassC || c == ClassD {
		for x := ax; x < tx; x++ {
			if rc.firstInColumn(x, ay, by) != -1 {
				return false // an earlier cover column meets the block
			}
		}
	}
	if c == ClassB || c == ClassD {
		// First cover row within the block in this column must be ty.
		if first := rc.firstInColumn(tx, ay, ty-1); first != -1 {
			return false
		}
	}
	return true
}
