// Package core implements the paper's primary contribution: a two-layer
// spatial partitioning index for non-point objects.
//
// The primary layer is a regular grid (space-oriented partitioning). An
// object MBR is replicated into every tile it intersects. The secondary
// layer divides the MBRs assigned to each tile into four classes:
//
//	A — the MBR begins inside the tile in both dimensions,
//	B — begins inside the tile in x, before the tile in y,
//	C — begins before the tile in x, inside the tile in y,
//	D — begins before the tile in both dimensions.
//
// During range query evaluation, each intersected tile is scanned only in
// the classes that cannot yield duplicate results (Lemmas 1 and 2 of the
// paper), so duplicates are never generated and never need elimination.
// Tiles on the border of the query need at most one comparison per
// dimension per rectangle (Lemmas 3 and 4); interior tiles need none.
//
// The optional decomposed storage ("2-layer+", Section IV-C of the paper)
// keeps per-class sorted coordinate tables so border tiles are answered
// with binary search instead of per-rectangle comparisons.
package core

import (
	"fmt"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/grid"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Class identifies one of the four secondary partitions of a tile.
type Class uint8

// The four object classes of the secondary partitioning.
const (
	ClassA Class = iota // begins inside the tile in x and y
	ClassB              // begins inside in x, before in y
	ClassC              // begins before in x, inside in y
	ClassD              // begins before the tile in both dimensions
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	case ClassD:
		return "D"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Options configure index construction.
type Options struct {
	// NX, NY are the number of tiles per dimension. Both default to 256.
	NX, NY int
	// Space is the indexed region. Objects may stick out of it; they are
	// clamped into the border tiles. Defaults to the unit square.
	Space geom.Rect
	// Decompose additionally builds the sorted per-class coordinate
	// tables of Section IV-C ("2-layer+"). Decomposed tables trade memory
	// and build time for fewer comparisons on query borders. They are
	// rebuilt lazily after updates.
	Decompose bool
	// BuildThreads is the worker count of the construction pipeline used
	// by Build and BuildDecomposed: <= 0 selects runtime.NumCPU(), 1
	// forces the sequential single-threaded path. With more than one
	// worker, Build uses a two-pass counting pipeline (count replicas
	// per tile and class, then fill exact-size class slices in parallel)
	// that yields partition contents identical to the sequential path.
	// Small datasets and grids larger than the counting-array budget
	// fall back to the sequential path regardless of the setting. The
	// value also parallelizes decomposed-table (re)builds, including the
	// periodic rebuilds a Live index performs.
	BuildThreads int
	// SparseDirectory forces the hash-map tile directory. By default the
	// index uses a dense directory when NX*NY <= DenseDirectoryLimit.
	SparseDirectory bool
	// DenseDirectoryLimit overrides the dense-directory cutoff
	// (default 1<<25 tiles, a 128 MB directory).
	DenseDirectoryLimit int
}

// DefaultDenseDirectoryLimit is the largest tile count for which a dense
// tile directory is used by default.
const DefaultDenseDirectoryLimit = 1 << 25

// SuggestGridSize returns a grid granularity (tiles per dimension) for a
// dataset of n objects, targeting roughly one object per tile — the
// per-tile density regime the paper's tuning experiments (Figure 7)
// identify as a broad optimum. The result is a power of two in
// [64, 4096].
func SuggestGridSize(n int) int {
	g := 64
	for g*g < n && g < 4096 {
		g *= 2
	}
	return g
}

// Validate reports why the options cannot build an index, or nil. Build
// and New panic on invalid options (via the grid constructor); callers
// that prefer errors validate first or use BuildErr.
func (o Options) Validate() error {
	if o.NX < 0 || o.NY < 0 {
		return fmt.Errorf("core: negative grid dimensions %dx%d", o.NX, o.NY)
	}
	if o.DenseDirectoryLimit < 0 {
		return fmt.Errorf("core: negative DenseDirectoryLimit %d", o.DenseDirectoryLimit)
	}
	if o.Space != (geom.Rect{}) {
		if !o.Space.Valid() || o.Space.Width() <= 0 || o.Space.Height() <= 0 {
			return fmt.Errorf("core: degenerate space %v", o.Space)
		}
	}
	return nil
}

// Resolved returns the options with every defaulted field filled in —
// the exact configuration New would build with. Layout computations that
// must agree with the grid (the shard engine derives per-shard column
// slabs from the global grid) start from the resolved options.
func (o Options) Resolved() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.NX == 0 {
		o.NX = 256
	}
	if o.NY == 0 {
		o.NY = 256
	}
	if o.Space == (geom.Rect{}) {
		o.Space = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	if o.DenseDirectoryLimit == 0 {
		o.DenseDirectoryLimit = DefaultDenseDirectoryLimit
	}
	return o
}

// tile is one primary partition with its four secondary partitions and,
// when decomposition is enabled, the sorted coordinate tables. Tiles are
// populated either by the sequential insert loop or by the parallel
// two-pass build (see buildparallel.go); the two paths produce identical
// class contents and differ only in the slot order of the tile pool.
type tile struct {
	classes [4][]spatial.Entry
	dec     *decTile // nil until built; invalidated by updates
	// epoch is the copy-on-write generation that privately owns the class
	// slices. Mutations compare it against the index epoch: on a mismatch
	// (the tile is shared with an older published snapshot) the slices are
	// cloned first. Directly built indices — sequential or parallel —
	// stay at epoch 0 throughout, so the check never copies anything on
	// the non-MVCC path.
	epoch uint64
}

func (t *tile) size() int {
	return len(t.classes[0]) + len(t.classes[1]) + len(t.classes[2]) + len(t.classes[3])
}

// Index is the two-layer grid index. It is safe for concurrent readers;
// updates require external synchronization, as do kNN queries (shared
// scratch space) and exclusive-mode stats collection. Use View to obtain
// per-goroutine read views that lift both restrictions on a static index.
type Index struct {
	g    *grid.Grid
	opts Options

	// Tile directory: exactly one of dense/sparse is used.
	dense   []int32         // tile ID -> index into tiles, -1 if empty
	sparse  map[int32]int32 // tile ID -> index into tiles
	tiles   []tile
	tileIDs []int32 // slot -> grid tile ID (reverse directory)

	dataset *spatial.Dataset // for refinement; may be nil
	size    int              // number of distinct objects inserted
	knn     *knnState        // lazily allocated kNN scratch space

	// epoch is the copy-on-write generation of this index: 0 for a
	// directly built index, the publish sequence number for snapshots
	// descending from CloneCOW (see Live).
	epoch uint64
	// sharedDir marks the tile directory (dense/sparse plus tileIDs) as
	// shared with an older snapshot; it is copied before the first tile
	// allocation (existing-tile lookups never mutate it).
	sharedDir bool

	// Stats, when non-nil, accumulates instrumentation counters during
	// queries (exclusive mode: see the Stats type). Setting it on a shared
	// Index makes queries unsafe for concurrent use; for concurrent
	// collection attach a private Stats to each View instead.
	Stats *Stats

	// trace, when non-nil, extends Stats collection with per-query stage
	// timings. It is only ever set on private views (ViewTraced) and
	// always aliases the Trace whose embedded Stats this index's Stats
	// field points to.
	trace *Trace

	// met accumulates the always-on adaptive-kernel counters (PathStats).
	// Allocated by New and shared by pointer with every View and CloneCOW
	// snapshot, so the counters are engine-lifetime totals.
	met *pathMetrics

	// counts is the class-A prefix-sum table of the count pushdown
	// (countindex.go), built by Build/Load/BuildDecomposed and cleared by
	// mutations. Immutable once set; views and snapshots share it by
	// pointer, and a mutating clone clears only its own copy of the
	// field.
	counts *countIndex
}

// View returns a shallow read view of the index: it shares all partition
// storage with ix but owns its Stats slot (set to s, which may be nil)
// and its kNN scratch space. Any number of views can evaluate queries —
// including kNN and stats-instrumented queries — concurrently, as long as
// no goroutine updates the underlying index. Views are read-only: calling
// Insert, Delete, or BuildDecomposed on a view corrupts the shared state.
//
// A view costs one small allocation, so creating one per request (or per
// worker) is cheap. Merge per-view counters with AtomicStats.Observe.
func (ix *Index) View(s *Stats) *Index {
	cp := *ix
	cp.knn = nil // detach shared kNN scratch; the view grows its own
	cp.Stats = s
	cp.trace = nil
	return &cp
}

// Epoch returns the copy-on-write generation of the index: 0 for a
// directly built index, and a strictly increasing publish sequence number
// for snapshots obtained from a Live index.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// SetEpoch overrides the copy-on-write generation. It exists for crash
// recovery (internal/wal): after replaying write-ahead-log batches onto a
// checkpoint-loaded index, the index's epoch must equal the epoch of the
// last replayed batch so that new publishes continue the logged sequence
// instead of reusing epochs already on disk. Raising the epoch is always
// safe (tiles cloned lazily on the next mutation); it must not be called
// on an index shared with concurrent readers.
func (ix *Index) SetEpoch(e uint64) { ix.epoch = e }

// SetBuildThreads overrides Options.BuildThreads on an existing index,
// so later decomposed-table rebuilds (BuildDecomposed, Live's periodic
// rebuilds) use the requested parallelism. Snapshot loading cannot
// carry the option — it is not part of the persisted format — so crash
// recovery (internal/wal) re-applies the configured value here.
func (ix *Index) SetBuildThreads(n int) { ix.opts.BuildThreads = n }

// CloneCOW returns a writable copy of the index for the next epoch, while
// ix remains a consistent immutable snapshot that concurrent readers may
// keep querying. The copy shares all entry storage (class slices and
// decomposed tables) with ix: Insert and Delete on the copy clone the
// class slices of a touched tile on first touch (copy-on-write at tile
// granularity), and the tile directory is copied only if a previously
// empty tile is populated. The fixed per-clone cost is a shallow copy of
// the tile table — one small struct per occupied tile — which batching
// writers (see Live) amortize over many mutations per publish.
func (ix *Index) CloneCOW() *Index {
	cp := *ix
	cp.epoch++
	cp.tiles = make([]tile, len(ix.tiles))
	copy(cp.tiles, ix.tiles)
	cp.sharedDir = true
	cp.knn = nil
	cp.Stats = nil
	cp.trace = nil
	return &cp
}

// unshareDir gives a cloned index a private tile directory before its
// first tile allocation. Appends to tileIDs and directory writes would
// otherwise be visible to (or race with) readers of older snapshots.
func (ix *Index) unshareDir() {
	if ix.dense != nil {
		d := make([]int32, len(ix.dense))
		copy(d, ix.dense)
		ix.dense = d
	} else {
		m := make(map[int32]int32, len(ix.sparse)+1)
		for k, v := range ix.sparse {
			m[k] = v
		}
		ix.sparse = m
	}
	ids := make([]int32, len(ix.tileIDs), len(ix.tileIDs)+1)
	copy(ids, ix.tileIDs)
	ix.tileIDs = ids
	ix.sharedDir = false
}

// cowTile makes t's class slices privately owned by the current epoch,
// cloning them on the first mutation after CloneCOW. On a directly built
// index (epoch 0 everywhere) this is a single predictable branch.
func (ix *Index) cowTile(t *tile) {
	if t.epoch == ix.epoch {
		return
	}
	for c := range t.classes {
		if n := len(t.classes[c]); n > 0 {
			cl := make([]spatial.Entry, n)
			copy(cl, t.classes[c])
			t.classes[c] = cl
		} else {
			t.classes[c] = nil // drop any backing shared with older epochs
		}
	}
	t.epoch = ix.epoch
}

// New builds an empty two-layer index.
func New(opts Options) *Index {
	opts = opts.withDefaults()
	ix := &Index{
		g:    grid.New(opts.Space, opts.NX, opts.NY),
		opts: opts,
		met:  &pathMetrics{},
	}
	if !opts.SparseDirectory && opts.NX*opts.NY <= opts.DenseDirectoryLimit {
		ix.dense = make([]int32, opts.NX*opts.NY)
		for i := range ix.dense {
			ix.dense[i] = -1
		}
	} else {
		ix.sparse = make(map[int32]int32)
	}
	return ix
}

// Build constructs the index over a dataset, keeping a reference to it
// for the refinement step. Construction runs the parallel two-pass
// pipeline when Options.BuildThreads resolves to more than one worker
// (and the workload is large enough to profit), and the classic
// sequential insert loop otherwise; both produce the same partition
// contents, and either way the index is a directly built one — it stays
// at epoch 0, so later mutations never pay a copy-on-write clone until
// the index is wrapped in a Live handle.
func Build(d *spatial.Dataset, opts Options) *Index {
	if opts.Space == (geom.Rect{}) {
		opts.Space = d.MBR()
	}
	ix := New(opts)
	ix.dataset = d
	ix.bulkLoad(d.Entries)
	if ix.opts.Decompose {
		ix.BuildDecomposed()
	}
	ix.buildCountIndex()
	return ix
}

// BuildErr is the error-returning variant of Build: invalid options, an
// inconsistent dataset, or a space that cannot be derived from the data
// produce an error instead of a panic.
func BuildErr(d *spatial.Dataset, opts Options) (*Index, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if opts.Space == (geom.Rect{}) {
		space := d.MBR()
		if !space.Valid() || space.Width() <= 0 || space.Height() <= 0 {
			return nil, fmt.Errorf(
				"core: data bounding box %v is degenerate; set Options.Space", space)
		}
		opts.Space = space
	}
	return Build(d, opts), nil
}

// Grid exposes the primary partitioning (read-only).
func (ix *Index) Grid() *grid.Grid { return ix.g }

// Len returns the number of distinct objects in the index.
func (ix *Index) Len() int { return ix.size }

// ForEach visits every distinct entry exactly once, in unspecified
// order. Each object has exactly one class-A copy — the one in its
// reference tile (the tile its clamped bottom-left corner falls in) —
// so scanning the A lists enumerates the index without deduplication.
func (ix *Index) ForEach(fn func(e spatial.Entry)) {
	for i := range ix.tiles {
		for _, e := range ix.tiles[i].classes[ClassA] {
			fn(e)
		}
	}
}

// Dataset returns the dataset the index was built over, or nil.
func (ix *Index) Dataset() *spatial.Dataset { return ix.dataset }

// SetDataset replaces the dataset reference backing the refinement step
// (WindowExact, DiskExact, KNNExact). The shard engine builds each shard
// over the subset of entries intersecting its slab, then points every
// shard's refinement at the full dataset so exact-geometry lookups by
// global ID stay correct.
func (ix *Index) SetDataset(d *spatial.Dataset) { ix.dataset = d }

// tileAt returns the tile stored for (ix,iy), or nil when empty.
func (ix *Index) tileAt(tx, ty int) *tile {
	id := int32(ix.g.TileID(tx, ty))
	if ix.dense != nil {
		if slot := ix.dense[id]; slot >= 0 {
			return &ix.tiles[slot]
		}
		return nil
	}
	if slot, ok := ix.sparse[id]; ok {
		return &ix.tiles[slot]
	}
	return nil
}

// tileFor returns the tile for (ix,iy), allocating it if needed.
func (ix *Index) tileFor(tx, ty int) *tile {
	id := int32(ix.g.TileID(tx, ty))
	if ix.dense != nil {
		if slot := ix.dense[id]; slot >= 0 {
			return &ix.tiles[slot]
		}
	} else if slot, ok := ix.sparse[id]; ok {
		return &ix.tiles[slot]
	}
	if ix.sharedDir {
		ix.unshareDir()
	}
	ix.tiles = append(ix.tiles, tile{})
	ix.tileIDs = append(ix.tileIDs, id)
	slot := int32(len(ix.tiles) - 1)
	if ix.dense != nil {
		ix.dense[id] = slot
	} else {
		ix.sparse[id] = slot
	}
	return &ix.tiles[slot]
}

// classify returns the class of an entry in tile (tx,ty), given the cover
// range [ax..bx]x[ay..by] of the entry's MBR. Classification is done in
// tile space rather than by coordinate comparison so it is exactly
// consistent with replication: the entry is in class C or D of a tile if
// and only if it is also assigned to the previous tile in x, which is what
// the duplicate-avoidance lemmas rely on.
func classify(tx, ty, ax, ay int) Class {
	if tx == ax {
		if ty == ay {
			return ClassA
		}
		return ClassB
	}
	if ty == ay {
		return ClassC
	}
	return ClassD
}

// insert replicates e into every tile its MBR intersects, classifying it
// per tile.
func (ix *Index) insert(e spatial.Entry) {
	if !e.Rect.Valid() {
		// A NaN or inverted rectangle would be silently clamped into
		// arbitrary tiles and then never found; fail loudly instead.
		panic(fmt.Sprintf("core: inserting invalid rect %v (id %d)", e.Rect, e.ID))
	}
	ix.counts = nil // prefix-sum count table is now stale
	ax, ay, bx, by := ix.g.CoverRect(e.Rect)
	for ty := ay; ty <= by; ty++ {
		for tx := ax; tx <= bx; tx++ {
			t := ix.tileFor(tx, ty)
			ix.cowTile(t)
			c := classify(tx, ty, ax, ay)
			t.classes[c] = append(t.classes[c], e)
			t.dec = nil // decomposed tables are now stale
		}
	}
	ix.size++
}

// Insert adds one object to the index. If decomposed tables were built,
// the affected tiles fall back to plain scans until BuildDecomposed is
// called again (batch update strategy, as the paper suggests).
func (ix *Index) Insert(e spatial.Entry) { ix.insert(e) }

// Delete removes the object with the given id and MBR from the index. The
// MBR must be the exact rectangle the object was inserted with, since it
// determines the replication tiles. It reports whether the object was
// found.
func (ix *Index) Delete(id spatial.ID, r geom.Rect) bool {
	ix.counts = nil // prefix-sum count table is now stale
	ax, ay, bx, by := ix.g.CoverRect(r)
	found := false
	for ty := ay; ty <= by; ty++ {
		for tx := ax; tx <= bx; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			c := classify(tx, ty, ax, ay)
			list := t.classes[c]
			for i := range list {
				if list[i].ID == id {
					// Clone shared storage before the in-place swap-remove;
					// the clone invalidates list, so re-fetch it.
					ix.cowTile(t)
					list = t.classes[c]
					list[i] = list[len(list)-1]
					t.classes[c] = list[:len(list)-1]
					t.dec = nil
					found = true
					break
				}
			}
		}
	}
	if found {
		ix.size--
	}
	return found
}

// MemoryFootprint returns the approximate memory used by entry storage, in
// bytes. Used by the tuning experiments (Figure 7).
func (ix *Index) MemoryFootprint() int {
	const entryBytes = 40 // 4 float64 + id + padding
	total := 0
	for i := range ix.tiles {
		t := &ix.tiles[i]
		total += t.size() * entryBytes
		if t.dec != nil {
			total += t.dec.footprint()
		}
	}
	if ix.dense != nil {
		total += 4 * len(ix.dense)
	} else {
		total += 16 * len(ix.sparse)
	}
	return total
}

// ReplicationFactor returns stored entries (including replicas) divided by
// distinct objects; 1.0 means no replication.
func (ix *Index) ReplicationFactor() float64 {
	if ix.size == 0 {
		return 0
	}
	stored := 0
	for i := range ix.tiles {
		stored += ix.tiles[i].size()
	}
	return float64(stored) / float64(ix.size)
}

// ClassCounts returns the total number of stored entries per class, used
// by tests and the experiment reports.
func (ix *Index) ClassCounts() [4]int {
	var n [4]int
	for i := range ix.tiles {
		for c := 0; c < 4; c++ {
			n[c] += len(ix.tiles[i].classes[c])
		}
	}
	return n
}
