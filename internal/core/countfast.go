package core

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Count pushdown: count-only window queries never need to materialize or
// even visit individual entries for most of their cover. Lemmas 3-4 say
// tiles strictly interior to the window need no comparisons, so a
// selected class contributes exactly len(class) to the count — O(1) per
// partition instead of O(n). Border tiles with decomposed tables and a
// single pending comparison are answered by one binary search (the run
// length is the count, again without touching entries). Only plain
// border partitions still count entry by entry, through a closure-free
// loop.

// WindowCountFast returns the number of MBRs intersecting w using the
// count-pushdown kernel. On an index with Stats attached it falls back
// to the classic instrumented scan so the documented counter semantics
// (Corollary 1, per-class breakdowns) are preserved exactly.
func (ix *Index) WindowCountFast(w geom.Rect) int {
	if !w.Valid() {
		return 0
	}
	if ix.Stats != nil {
		n := 0
		ix.Window(w, func(spatial.Entry) { n++ })
		return n
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	n := 0
	var tally pathTally
	if ix.counts != nil && ix1-ix0 >= 2 && iy1-iy0 >= 2 {
		// Strict interior of the cover: fully covered, class A only —
		// one prefix-rectangle lookup replaces the whole inner loop.
		// Only the cover's perimeter ring still visits tiles.
		inner := ix.counts.rect(ix0+1, iy0+1, ix1-1, iy1-1)
		n += int(inner)
		tally.fastTiles += int64((ix1 - ix0 - 1) * (iy1 - iy0 - 1))
		tally.bulkEntries += inner
		for tx := ix0; tx <= ix1; tx++ {
			if t := ix.tileAt(tx, iy0); t != nil {
				n += ix.windowCountOnTile(t, tx, iy0, ix0, iy0, w, &tally)
			}
			if t := ix.tileAt(tx, iy1); t != nil {
				n += ix.windowCountOnTile(t, tx, iy1, ix0, iy0, w, &tally)
			}
		}
		for ty := iy0 + 1; ty <= iy1-1; ty++ {
			if t := ix.tileAt(ix0, ty); t != nil {
				n += ix.windowCountOnTile(t, ix0, ty, ix0, iy0, w, &tally)
			}
			if t := ix.tileAt(ix1, ty); t != nil {
				n += ix.windowCountOnTile(t, ix1, ty, ix0, iy0, w, &tally)
			}
		}
	} else {
		for ty := iy0; ty <= iy1; ty++ {
			for tx := ix0; tx <= ix1; tx++ {
				t := ix.tileAt(tx, ty)
				if t == nil {
					continue
				}
				n += ix.windowCountOnTile(t, tx, ty, ix0, iy0, w, &tally)
			}
		}
	}
	if ix.met != nil {
		ix.met.fastCounts.Add(1)
		ix.met.flush(&tally)
	}
	return n
}

// windowCountOnTile counts w's matches on one tile. Class selection and
// comparison planning are identical to windowOnTile; only the per-entry
// work is replaced by the cheapest counting strategy available.
func (ix *Index) windowCountOnTile(t *tile, tx, ty, qx0, qy0 int, w geom.Rect, tally *pathTally) int {
	first := tx == qx0
	top := ty == qy0
	plan := ix.planFor(tx, ty, w)
	if plan == (tileComparisonPlan{}) {
		// Interior tile: every entry of every selected class intersects
		// the window, so the tile contributes class lengths in O(1).
		n := len(t.classes[ClassA])
		if top {
			n += len(t.classes[ClassB])
		}
		if first {
			n += len(t.classes[ClassC])
			if top {
				n += len(t.classes[ClassD])
			}
		}
		tally.fastTiles++
		tally.bulkEntries += int64(n)
		return n
	}
	plans := classPlans(first, top, plan)
	n := 0
	fracReady := false
	var frac [4]float64
	for c := ClassA; c <= ClassD; c++ {
		if !plans[c].scan {
			continue
		}
		entries := t.classes[c]
		if len(entries) == 0 {
			continue
		}
		p := plans[c].plan
		if p == (tileComparisonPlan{}) {
			// All remaining comparisons are implied by the class'
			// position: the whole partition qualifies.
			n += len(entries)
			tally.bulkEntries += int64(len(entries))
			continue
		}
		if t.dec != nil && len(entries) >= decSmallClass {
			if !fracReady {
				frac = ix.compFractions(tx, ty, w)
				fracReady = true
			}
			n += decClassCount(&t.dec.cls[c], entries, w, p, &frac)
			continue
		}
		n += countClass(entries, w, p)
	}
	return n
}

// countClass is the closure-free counting twin of scanClass.
func countClass(entries []spatial.Entry, w geom.Rect, p tileComparisonPlan) int {
	n := 0
	for i := range entries {
		e := &entries[i]
		if p.needXU && e.Rect.MaxX < w.MinX {
			continue
		}
		if p.needXL && e.Rect.MinX > w.MaxX {
			continue
		}
		if p.needYU && e.Rect.MaxY < w.MinY {
			continue
		}
		if p.needYL && e.Rect.MinY > w.MaxY {
			continue
		}
		n++
	}
	return n
}

// decClassCount counts the qualifying entries of one decomposed
// partition. With a single pending comparison the count is the length of
// one binary-search run — no entry is touched at all. With several, the
// most selective one is searched and its run verified against the rest,
// exactly like decClassQuery. The plan must be non-empty (empty plans
// are bulk-counted by the caller).
func decClassCount(d *decClass, entries []spatial.Entry, w geom.Rect, p tileComparisonPlan, frac *[4]float64) int {
	var comps [4]decComparison
	n := 0
	if p.needXU {
		comps[n] = decComparison{table: d.xu, bound: w.MinX, kind: cmpXU}
		n++
	}
	if p.needXL {
		comps[n] = decComparison{table: d.xl, bound: w.MaxX, kind: cmpXL}
		n++
	}
	if p.needYU {
		comps[n] = decComparison{table: d.yu, bound: w.MinY, kind: cmpYU}
		n++
	}
	if p.needYL {
		comps[n] = decComparison{table: d.yl, bound: w.MaxY, kind: cmpYL}
		n++
	}
	best := 0
	for i := 1; i < n; i++ {
		if frac[comps[i].kind] < frac[comps[best].kind] {
			best = i
		}
	}
	var lo, hi int
	if comps[best].isLE() {
		lo, hi = 0, comps[best].table.prefixLE(comps[best].bound)
	} else {
		lo, hi = comps[best].table.suffixGE(comps[best].bound), len(comps[best].table)
	}
	if n == 1 {
		return hi - lo
	}
	table := comps[best].table
	count := 0
	for i := lo; i < hi; i++ {
		e := &entries[table[i].ref]
		ok := true
		for j := 0; j < n; j++ {
			if j == best {
				continue
			}
			if !comps[j].verify(e) {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// WindowCountFiltered counts the entries intersecting w whose
// Rect.MinX >= minX. The sharded engine pushes fan-out counts down with
// it: a fan-out shard contributes exactly the matches homed to it —
// those beginning at or after its slab's left edge — so per-shard counts
// sum to the distinct total without buffering results (docs/SHARDING.md).
//
// The filter keeps the bulk fast paths wherever they are provably safe:
// classes A and B of tile column tx begin inside that column in x, so
// when the column's left edge is at or beyond minX the filter cannot
// reject anything and whole-slice counting still applies. Column 0
// (whose effective extent reaches -inf) and classes C/D (which begin
// left of their tile) are counted entry by entry.
func (ix *Index) WindowCountFiltered(w geom.Rect, minX float64) int {
	if !w.Valid() {
		return 0
	}
	if ix.Stats != nil {
		n := 0
		ix.Window(w, func(e spatial.Entry) {
			if e.Rect.MinX >= minX {
				n++
			}
		})
		return n
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	n := 0
	var tally pathTally
	// lo is the first interior tile column whose class-A entries are all
	// provably at or right of minX (class A begins inside its column, so
	// TileMin.X >= minX suffices). Interior tiles from lo on are answered
	// by the prefix table; interior columns left of lo and the perimeter
	// ring take the per-tile filtered kernel.
	lo := ix1 + 1
	if ix.counts != nil && ix1-ix0 >= 2 && iy1-iy0 >= 2 {
		lo = ix0 + 1
		for lo <= ix1-1 && ix.g.TileMin(lo, iy0).X < minX {
			lo++
		}
	}
	if lo <= ix1-1 {
		inner := ix.counts.rect(lo, iy0+1, ix1-1, iy1-1)
		n += int(inner)
		tally.fastTiles += int64((ix1 - lo) * (iy1 - iy0 - 1))
		tally.bulkEntries += inner
		for tx := ix0; tx <= ix1; tx++ {
			if t := ix.tileAt(tx, iy0); t != nil {
				n += ix.windowCountOnTileFiltered(t, tx, iy0, ix0, iy0, w, minX, &tally)
			}
			if t := ix.tileAt(tx, iy1); t != nil {
				n += ix.windowCountOnTileFiltered(t, tx, iy1, ix0, iy0, w, minX, &tally)
			}
		}
		for ty := iy0 + 1; ty <= iy1-1; ty++ {
			for tx := ix0; tx < lo; tx++ {
				if t := ix.tileAt(tx, ty); t != nil {
					n += ix.windowCountOnTileFiltered(t, tx, ty, ix0, iy0, w, minX, &tally)
				}
			}
			if t := ix.tileAt(ix1, ty); t != nil {
				n += ix.windowCountOnTileFiltered(t, ix1, ty, ix0, iy0, w, minX, &tally)
			}
		}
	} else {
		for ty := iy0; ty <= iy1; ty++ {
			for tx := ix0; tx <= ix1; tx++ {
				t := ix.tileAt(tx, ty)
				if t == nil {
					continue
				}
				n += ix.windowCountOnTileFiltered(t, tx, ty, ix0, iy0, w, minX, &tally)
			}
		}
	}
	if ix.met != nil {
		ix.met.fastCounts.Add(1)
		ix.met.flush(&tally)
	}
	return n
}

func (ix *Index) windowCountOnTileFiltered(t *tile, tx, ty, qx0, qy0 int, w geom.Rect, minX float64, tally *pathTally) int {
	first := tx == qx0
	top := ty == qy0
	plan := ix.planFor(tx, ty, w)
	plans := classPlans(first, top, plan)
	abSafe := tx > 0 && ix.g.TileMin(tx, ty).X >= minX
	n := 0
	fracReady := false
	var frac [4]float64
	for c := ClassA; c <= ClassD; c++ {
		if !plans[c].scan {
			continue
		}
		entries := t.classes[c]
		if len(entries) == 0 {
			continue
		}
		p := plans[c].plan
		if abSafe && (c == ClassA || c == ClassB) {
			if p == (tileComparisonPlan{}) {
				n += len(entries)
				tally.bulkEntries += int64(len(entries))
				continue
			}
			if t.dec != nil && len(entries) >= decSmallClass {
				if !fracReady {
					frac = ix.compFractions(tx, ty, w)
					fracReady = true
				}
				n += decClassCount(&t.dec.cls[c], entries, w, p, &frac)
				continue
			}
			n += countClass(entries, w, p)
			continue
		}
		n += countClassMinX(entries, w, p, minX)
	}
	return n
}

// countClassMinX is countClass with the shard-ownership filter applied
// per entry.
func countClassMinX(entries []spatial.Entry, w geom.Rect, p tileComparisonPlan, minX float64) int {
	n := 0
	for i := range entries {
		e := &entries[i]
		if e.Rect.MinX < minX {
			continue
		}
		if p.needXU && e.Rect.MaxX < w.MinX {
			continue
		}
		if p.needXL && e.Rect.MinX > w.MaxX {
			continue
		}
		if p.needYU && e.Rect.MaxY < w.MinY {
			continue
		}
		if p.needYL && e.Rect.MinY > w.MaxY {
			continue
		}
		n++
	}
	return n
}
