package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Index persistence: a compact binary snapshot of the built structure so
// a static index can be memory-mapped-in-spirit (read back) without
// re-partitioning the data. The format stores the grid geometry and the
// per-tile class partitions; decomposed tables are derived data and are
// rebuilt on load when the index was saved in 2-layer+ mode. Exact
// geometries are not part of the snapshot (persist them separately, e.g.
// as WKT via package dataio) — a loaded index supports all MBR
// (filtering) queries.
//
// Layout (little endian):
//
//	magic "TL2I" | version u32
//	nx u32 | ny u32 | space 4xf64 | flags u32 | size u64
//	tileCount u64
//	per tile: tileID u32 | 4x class length u32 | entries (id u32, 4xf64)

const (
	persistMagic   = "TL2I"
	persistVersion = 1

	flagDecompose = 1 << 0
)

// WriteTo serializes the index structure. It returns the number of bytes
// written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(persistMagic)); err != nil {
		return cw.n, err
	}
	if err := write(uint32(persistVersion)); err != nil {
		return cw.n, err
	}
	sp := ix.opts.Space
	hdr := []any{
		uint32(ix.g.NX), uint32(ix.g.NY),
		sp.MinX, sp.MinY, sp.MaxX, sp.MaxY,
		ix.flags(), uint64(ix.size), uint64(len(ix.tiles)),
	}
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for slot := range ix.tiles {
		t := &ix.tiles[slot]
		if err := write(uint32(ix.tileIDs[slot])); err != nil {
			return cw.n, err
		}
		for c := 0; c < 4; c++ {
			if err := write(uint32(len(t.classes[c]))); err != nil {
				return cw.n, err
			}
		}
		for c := 0; c < 4; c++ {
			for i := range t.classes[c] {
				e := &t.classes[c][i]
				rec := []any{e.ID, e.Rect.MinX, e.Rect.MinY, e.Rect.MaxX, e.Rect.MaxY}
				for _, v := range rec {
					if err := write(v); err != nil {
						return cw.n, err
					}
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func (ix *Index) flags() uint32 {
	var f uint32
	if ix.opts.Decompose {
		f |= flagDecompose
	}
	return f
}

// countWriter tracks bytes written.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads an index snapshot written by WriteTo.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: not an index snapshot (magic %q)", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
	}

	var nx, ny, flags uint32
	var size, tileCount uint64
	var space geom.Rect
	for _, v := range []any{&nx, &ny, &space.MinX, &space.MinY, &space.MaxX, &space.MaxY,
		&flags, &size, &tileCount} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("core: reading snapshot header: %w", err)
		}
	}
	if nx == 0 || ny == 0 || nx > 1<<20 || ny > 1<<20 {
		return nil, fmt.Errorf("core: implausible grid %dx%d in snapshot", nx, ny)
	}
	if !space.Valid() || space.Width() <= 0 || space.Height() <= 0 {
		return nil, fmt.Errorf("core: invalid space %v in snapshot", space)
	}
	if tileCount > uint64(nx)*uint64(ny) {
		return nil, fmt.Errorf("core: %d tiles for a %dx%d grid", tileCount, nx, ny)
	}

	ix := New(Options{NX: int(nx), NY: int(ny), Space: space,
		Decompose: flags&flagDecompose != 0})
	ix.size = int(size)
	ix.tiles = make([]tile, tileCount)
	ix.tileIDs = make([]int32, tileCount)

	maxTileID := uint32(nx) * uint32(ny)
	for slot := uint64(0); slot < tileCount; slot++ {
		var tileID uint32
		if err := read(&tileID); err != nil {
			return nil, fmt.Errorf("core: reading tile %d: %w", slot, err)
		}
		if tileID >= maxTileID {
			return nil, fmt.Errorf("core: tile ID %d out of range", tileID)
		}
		ix.tileIDs[slot] = int32(tileID)
		if ix.dense != nil {
			ix.dense[tileID] = int32(slot)
		} else {
			ix.sparse[int32(tileID)] = int32(slot)
		}
		var lens [4]uint32
		total := uint64(0)
		for c := 0; c < 4; c++ {
			if err := read(&lens[c]); err != nil {
				return nil, err
			}
			total += uint64(lens[c])
		}
		if total > size*4+4 {
			return nil, fmt.Errorf("core: tile %d claims %d entries for %d objects", slot, total, size)
		}
		t := &ix.tiles[slot]
		for c := 0; c < 4; c++ {
			if lens[c] == 0 {
				continue
			}
			entries := make([]spatial.Entry, lens[c])
			for i := range entries {
				e := &entries[i]
				for _, v := range []any{&e.ID, &e.Rect.MinX, &e.Rect.MinY, &e.Rect.MaxX, &e.Rect.MaxY} {
					if err := read(v); err != nil {
						return nil, fmt.Errorf("core: reading tile %d entries: %w", slot, err)
					}
				}
				if !e.Rect.Valid() || math.IsInf(e.Rect.MinX, 0) {
					return nil, fmt.Errorf("core: corrupt entry rect %v", e.Rect)
				}
			}
			t.classes[c] = entries
		}
	}
	if ix.opts.Decompose {
		ix.BuildDecomposed()
	}
	return ix, nil
}
