package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Index persistence: a compact binary snapshot of the built structure so
// a static index can be memory-mapped-in-spirit (read back) without
// re-partitioning the data. The format stores the grid geometry and the
// per-tile class partitions; decomposed tables are derived data and are
// rebuilt on load when the index was saved in 2-layer+ mode. Exact
// geometries are not part of the snapshot (persist them separately, e.g.
// as WKT via package dataio) — a loaded index supports all MBR
// (filtering) queries.
//
// Layout (little endian):
//
//	magic "TL2I" | version u32
//	nx u32 | ny u32 | space 4xf64 | flags u32 | size u64
//	[v2+] epoch u64
//	tileCount u64
//	per tile: tileID u32 | 4x class length u32 | entries (id u32, 4xf64)
//
// Version history: v1 has no epoch field (loaded indices start at epoch
// 0); v2 carries the copy-on-write epoch of the snapshot so a checkpoint
// of a Live index records its exact log position (see internal/wal).
// WriteTo always emits the current version; Load accepts both.

const (
	persistMagic   = "TL2I"
	persistVersion = 2

	flagDecompose = 1 << 0
)

// WriteTo serializes the index structure. It returns the number of bytes
// written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.writeVersion(w, persistVersion)
}

// writeVersion emits the snapshot in the given format version. Only the
// current version is written in production; older versions remain
// writable so the cross-version tests exercise real v1 bytes.
func (ix *Index) writeVersion(w io.Writer, version uint32) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	write := func(v any) error { return binary.Write(cw, binary.LittleEndian, v) }

	if _, err := cw.Write([]byte(persistMagic)); err != nil {
		return cw.n, err
	}
	if err := write(version); err != nil {
		return cw.n, err
	}
	sp := ix.opts.Space
	hdr := []any{
		uint32(ix.g.NX), uint32(ix.g.NY),
		sp.MinX, sp.MinY, sp.MaxX, sp.MaxY,
		ix.flags(), uint64(ix.size),
	}
	if version >= 2 {
		hdr = append(hdr, ix.epoch)
	}
	hdr = append(hdr, uint64(len(ix.tiles)))
	for _, v := range hdr {
		if err := write(v); err != nil {
			return cw.n, err
		}
	}
	for slot := range ix.tiles {
		t := &ix.tiles[slot]
		if err := write(uint32(ix.tileIDs[slot])); err != nil {
			return cw.n, err
		}
		for c := 0; c < 4; c++ {
			if err := write(uint32(len(t.classes[c]))); err != nil {
				return cw.n, err
			}
		}
		for c := 0; c < 4; c++ {
			for i := range t.classes[c] {
				e := &t.classes[c][i]
				rec := []any{e.ID, e.Rect.MinX, e.Rect.MinY, e.Rect.MaxX, e.Rect.MaxY}
				for _, v := range rec {
					if err := write(v); err != nil {
						return cw.n, err
					}
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

func (ix *Index) flags() uint32 {
	var f uint32
	if ix.opts.Decompose {
		f |= flagDecompose
	}
	return f
}

// countWriter tracks bytes written.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads an index snapshot written by WriteTo.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading snapshot magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: not an index snapshot (magic %q)", magic)
	}
	var version uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version < 1 || version > persistVersion {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", version)
	}

	var nx, ny, flags uint32
	var size, epoch, tileCount uint64
	var space geom.Rect
	fields := []any{&nx, &ny, &space.MinX, &space.MinY, &space.MaxX, &space.MaxY,
		&flags, &size}
	if version >= 2 {
		fields = append(fields, &epoch)
	}
	fields = append(fields, &tileCount)
	for _, v := range fields {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("core: reading snapshot header: %w", err)
		}
	}
	if nx == 0 || ny == 0 || nx > 1<<20 || ny > 1<<20 {
		return nil, fmt.Errorf("core: implausible grid %dx%d in snapshot", nx, ny)
	}
	if !space.Valid() || space.Width() <= 0 || space.Height() <= 0 {
		return nil, fmt.Errorf("core: invalid space %v in snapshot", space)
	}
	if tileCount > uint64(nx)*uint64(ny) {
		return nil, fmt.Errorf("core: %d tiles for a %dx%d grid", tileCount, nx, ny)
	}

	// Decode through the sparse directory regardless of grid size: a
	// dense directory is O(nx*ny) to allocate, which a corrupt header
	// could demand before a single tile byte has been validated. The
	// directory is densified below once the whole snapshot decoded.
	ix := New(Options{NX: int(nx), NY: int(ny), Space: space,
		Decompose: flags&flagDecompose != 0, SparseDirectory: true})
	ix.opts.SparseDirectory = false // restore the default directory policy
	ix.size = int(size)
	ix.epoch = epoch
	// Claimed counts are untrusted until the bytes backing them have
	// actually been read: preallocations are capped so a corrupt header
	// cannot demand gigabytes before the decoder hits EOF.
	const preallocCap = 1 << 10
	ix.tiles = make([]tile, 0, min(tileCount, preallocCap))
	ix.tileIDs = make([]int32, 0, min(tileCount, preallocCap))

	maxTileID := uint32(nx) * uint32(ny)
	for slot := uint64(0); slot < tileCount; slot++ {
		var tileID uint32
		if err := read(&tileID); err != nil {
			return nil, fmt.Errorf("core: reading tile %d: %w", slot, err)
		}
		if tileID >= maxTileID {
			return nil, fmt.Errorf("core: tile ID %d out of range", tileID)
		}
		ix.tiles = append(ix.tiles, tile{})
		ix.tileIDs = append(ix.tileIDs, int32(tileID))
		if ix.dense != nil {
			ix.dense[tileID] = int32(slot)
		} else {
			ix.sparse[int32(tileID)] = int32(slot)
		}
		var lens [4]uint32
		total := uint64(0)
		for c := 0; c < 4; c++ {
			if err := read(&lens[c]); err != nil {
				return nil, err
			}
			total += uint64(lens[c])
		}
		if total > size*4+4 {
			return nil, fmt.Errorf("core: tile %d claims %d entries for %d objects", slot, total, size)
		}
		t := &ix.tiles[slot]
		for c := 0; c < 4; c++ {
			if lens[c] == 0 {
				continue
			}
			entries := make([]spatial.Entry, 0, min(uint64(lens[c]), preallocCap))
			for i := uint64(0); i < uint64(lens[c]); i++ {
				var e spatial.Entry
				for _, v := range []any{&e.ID, &e.Rect.MinX, &e.Rect.MinY, &e.Rect.MaxX, &e.Rect.MaxY} {
					if err := read(v); err != nil {
						return nil, fmt.Errorf("core: reading tile %d entries: %w", slot, err)
					}
				}
				if !e.Rect.Valid() || math.IsInf(e.Rect.MinX, 0) {
					return nil, fmt.Errorf("core: corrupt entry rect %v", e.Rect)
				}
				entries = append(entries, e)
			}
			t.classes[c] = entries
		}
	}
	// Densify under the same size cutoff New applies, with one extra
	// guard: the directory must be within a constant factor of the tile
	// data it indexes. A near-empty snapshot of a huge grid keeps the
	// sparse map — the right call memory-wise, and it keeps the directory
	// allocation proportional to the bytes actually decoded (a corrupt
	// header cannot demand a 128 MB directory for three tiles of data).
	if n := int(nx) * int(ny); n <= ix.opts.DenseDirectoryLimit &&
		n <= max(1<<20, 256*len(ix.tiles)) {
		dense := make([]int32, n)
		for i := range dense {
			dense[i] = -1
		}
		for id, slot := range ix.sparse {
			dense[id] = slot
		}
		ix.dense, ix.sparse = dense, nil
	}
	if ix.opts.Decompose {
		ix.BuildDecomposed()
	}
	ix.buildCountIndex()
	return ix, nil
}
