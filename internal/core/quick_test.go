package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestQuickWindowEquivalence: for random datasets, grids and windows, the
// two-layer index (plain and decomposed) equals brute force with no
// duplicates. This is the library's master property.
func TestQuickWindowEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 20 + rnd.Intn(200)
		nx := 1 + rnd.Intn(24)
		ny := 1 + rnd.Intn(24)
		maxSide := []float64{0.01, 0.1, 0.5}[rnd.Intn(3)]
		rects := randRects(rnd, n, maxSide)
		d := spatial.NewDataset(rects)
		opts := Options{NX: nx, NY: ny, Decompose: rnd.Intn(2) == 1}
		if rnd.Intn(2) == 1 {
			opts.SparseDirectory = true
		}
		ix := Build(d, opts)
		for q := 0; q < 10; q++ {
			w := randWindow(rnd, 0.5)
			got := sortIDs(ix.WindowIDs(w, nil))
			want := sortIDs(spatial.BruteWindow(d.Entries, w))
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			seen := make(map[spatial.ID]bool)
			for _, id := range got {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiskEquivalence: the same property for disk queries.
func TestQuickDiskEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 20 + rnd.Intn(200)
		nx := 1 + rnd.Intn(24)
		ny := 1 + rnd.Intn(24)
		maxSide := []float64{0.01, 0.1, 0.5}[rnd.Intn(3)]
		d := spatial.NewDataset(randRects(rnd, n, maxSide))
		ix := Build(d, Options{NX: nx, NY: ny})
		for q := 0; q < 10; q++ {
			c := geom.Point{X: rnd.Float64()*1.4 - 0.2, Y: rnd.Float64()*1.4 - 0.2}
			radius := rnd.Float64() * 0.5
			got := sortIDs(ix.DiskIDs(c, radius, nil))
			want := sortIDs(spatial.BruteDisk(d.Entries, c, radius))
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickInsertEqualsBuild: inserting in random order equals bulk build.
func TestQuickInsertEqualsBuild(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 10 + rnd.Intn(100)
		rects := randRects(rnd, n, 0.2)
		d := spatial.NewDataset(rects)
		space := d.MBR()
		bulk := Build(d, Options{NX: 8, NY: 8, Space: space})
		incr := New(Options{NX: 8, NY: 8, Space: space})
		perm := rnd.Perm(n)
		for _, i := range perm {
			incr.Insert(spatial.Entry{Rect: rects[i], ID: spatial.ID(i)})
		}
		for q := 0; q < 5; q++ {
			w := randWindow(rnd, 0.4)
			a := sortIDs(bulk.WindowIDs(w, nil))
			b := sortIDs(incr.WindowIDs(w, nil))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickClassInvariant: replication-block classification is total and
// consistent — class A in the block's min tile, B below it, C right of
// it, D in the interior.
func TestQuickClassInvariant(t *testing.T) {
	f := func(tx, ty, ax, ay uint8) bool {
		// Interpret as tile coordinates with tile >= block min.
		bx, by := int(tx)+int(ax), int(ty)+int(ay)
		c := classify(bx, by, int(ax), int(ay))
		switch {
		case bx == int(ax) && by == int(ay):
			return c == ClassA
		case bx == int(ax):
			return c == ClassB
		case by == int(ay):
			return c == ClassC
		default:
			return c == ClassD
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
