package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// lowerBuildGates shrinks the parallel-build thresholds so the pipeline
// runs on test-sized inputs, restoring them when the test ends.
func lowerBuildGates(t *testing.T) {
	t.Helper()
	savedEntries := minParallelBuildEntries
	savedShard := minParallelBuildShard
	savedDecTiles := minParallelDecTiles
	minParallelBuildEntries = 64
	minParallelBuildShard = 16
	minParallelDecTiles = 4
	t.Cleanup(func() {
		minParallelBuildEntries = savedEntries
		minParallelBuildShard = savedShard
		minParallelDecTiles = savedDecTiles
	})
}

// tileByID returns the tile with the given tile ID, or nil.
func tileByID(ix *Index, id int32) *tile {
	if ix.dense != nil {
		if slot := ix.dense[id]; slot >= 0 {
			return &ix.tiles[slot]
		}
		return nil
	}
	if slot, ok := ix.sparse[id]; ok {
		return &ix.tiles[slot]
	}
	return nil
}

// sameClassSlices fails unless the two tiles hold elementwise-identical
// class slices — the parallel build's core guarantee.
func sameClassSlices(t *testing.T, seq, par *tile, id int32) {
	t.Helper()
	for c := ClassA; c <= ClassD; c++ {
		a, b := seq.classes[c], par.classes[c]
		if len(a) != len(b) {
			t.Fatalf("tile %d class %v: len %d (seq) vs %d (par)", id, c, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tile %d class %v entry %d: %+v (seq) vs %+v (par)", id, c, i, a[i], b[i])
			}
		}
	}
}

// sameDecTables fails unless the two tiles hold identical decomposed
// tables (or are both missing them).
func sameDecTables(t *testing.T, seq, par *tile, id int32) {
	t.Helper()
	if (seq.dec == nil) != (par.dec == nil) {
		t.Fatalf("tile %d: dec built %v (seq) vs %v (par)", id, seq.dec != nil, par.dec != nil)
	}
	if seq.dec == nil {
		return
	}
	for c := range seq.dec.cls {
		sc, pc := &seq.dec.cls[c], &par.dec.cls[c]
		for name, pair := range map[string][2]decTable{
			"xl": {sc.xl, pc.xl}, "xu": {sc.xu, pc.xu},
			"yl": {sc.yl, pc.yl}, "yu": {sc.yu, pc.yu},
		} {
			a, b := pair[0], pair[1]
			if len(a) != len(b) {
				t.Fatalf("tile %d class %d table %s: len %d vs %d", id, c, name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("tile %d class %d table %s row %d: %+v vs %+v", id, c, name, i, a[i], b[i])
				}
			}
		}
	}
}

// TestParallelBuildEquivalence is the property test of the parallel
// pipeline: across random datasets, grids (dense and sparse directories)
// and thread counts, the parallel build must produce identical per-tile,
// per-class entry slices — and, with Decompose, identical decomposed
// tables — as the sequential insert loop.
func TestParallelBuildEquivalence(t *testing.T) {
	lowerBuildGates(t)
	rnd := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		n := 80 + rnd.Intn(4000)
		grid := []int{2, 7, 16, 64}[rnd.Intn(4)]
		maxSide := []float64{0.01, 0.1, 0.5}[rnd.Intn(3)]
		sparse := rnd.Intn(3) == 0
		decompose := rnd.Intn(2) == 0
		threads := 2 + rnd.Intn(7)
		d := spatial.NewDataset(randRects(rnd, n, maxSide))
		opts := Options{
			NX: grid, NY: grid, Space: d.MBR(),
			Decompose: decompose, SparseDirectory: sparse,
		}
		cfg := fmt.Sprintf("iter %d (n=%d grid=%d sparse=%v dec=%v threads=%d)",
			iter, n, grid, sparse, decompose, threads)

		seqOpts := opts
		seqOpts.BuildThreads = 1
		seq := Build(d, seqOpts)
		parOpts := opts
		parOpts.BuildThreads = threads
		par := Build(d, parOpts)

		if seq.Len() != par.Len() {
			t.Fatalf("%s: size %d (seq) vs %d (par)", cfg, seq.Len(), par.Len())
		}
		if len(seq.tileIDs) != len(par.tileIDs) {
			t.Fatalf("%s: %d tiles (seq) vs %d (par)", cfg, len(seq.tileIDs), len(par.tileIDs))
		}
		if par.Epoch() != 0 {
			t.Fatalf("%s: parallel build published epoch %d, want 0", cfg, par.Epoch())
		}
		for _, id := range seq.tileIDs {
			st, pt := tileByID(seq, id), tileByID(par, id)
			if pt == nil {
				t.Fatalf("%s: tile %d missing from parallel build", cfg, id)
			}
			sameClassSlices(t, st, pt, id)
			sameDecTables(t, st, pt, id)
		}
		// And the parallel index must answer queries correctly.
		for q := 0; q < 20; q++ {
			w := randWindow(rnd, 0.3)
			got := par.WindowIDs(w, nil)
			noDuplicates(t, got, cfg)
			sameIDs(t, got, spatial.BruteWindow(d.Entries, w), cfg)
		}
	}
}

// TestParallelBuildFallbacks pins the gate behavior: datasets below the
// size gate, grids above the tile budget, and non-positive thread counts
// must all still produce a correct index (via the sequential path).
func TestParallelBuildFallbacks(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	d := spatial.NewDataset(randRects(rnd, 500, 0.1))

	t.Run("below-entry-gate", func(t *testing.T) {
		// Default gates: 500 entries stay sequential even with threads.
		ix := Build(d, Options{NX: 8, NY: 8, Space: d.MBR(), BuildThreads: 8})
		if ix.Len() != d.Len() {
			t.Fatalf("size %d, want %d", ix.Len(), d.Len())
		}
	})
	t.Run("above-tile-budget", func(t *testing.T) {
		lowerBuildGates(t)
		saved := maxParallelBuildTiles
		maxParallelBuildTiles = 16
		t.Cleanup(func() { maxParallelBuildTiles = saved })
		ix := Build(d, Options{NX: 8, NY: 8, Space: d.MBR(), BuildThreads: 8})
		w := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(d.Entries, w), "tile budget fallback")
	})
	t.Run("auto-threads", func(t *testing.T) {
		lowerBuildGates(t)
		// BuildThreads <= 0 resolves to NumCPU; whatever it resolves to,
		// the index must be correct.
		for _, threads := range []int{0, -3} {
			ix := Build(d, Options{NX: 8, NY: 8, Space: d.MBR(), BuildThreads: threads})
			w := geom.Rect{MinX: 0.1, MinY: 0.3, MaxX: 0.7, MaxY: 0.8}
			sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(d.Entries, w), "auto threads")
		}
	})
}

// TestParallelBuildInvalidRect pins panic parity with the sequential
// insert loop: the lowest-index invalid rect is reported.
func TestParallelBuildInvalidRect(t *testing.T) {
	lowerBuildGates(t)
	rnd := rand.New(rand.NewSource(11))
	rects := randRects(rnd, 300, 0.1)
	rects[120] = geom.Rect{MinX: 2, MinY: 2, MaxX: 1, MaxY: 1} // inverted
	d := spatial.NewDataset(rects)
	for _, threads := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("threads=%d: no panic for invalid rect", threads)
				}
				want := fmt.Sprintf("core: inserting invalid rect %v (id %d)", rects[120], 120)
				if r != want {
					t.Fatalf("threads=%d: panic %q, want %q", threads, r, want)
				}
			}()
			Build(d, Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 1, MaxY: 1}, BuildThreads: threads})
		}()
	}
}

// TestParallelBuildThenUpdate verifies the slab carving is safe against
// later mutations: appending to a full exact-size class slice must
// reallocate (pinned capacity) instead of clobbering a neighbor tile's
// storage, and swap-remove deletes must leave other tiles intact.
func TestParallelBuildThenUpdate(t *testing.T) {
	lowerBuildGates(t)
	rnd := rand.New(rand.NewSource(99))
	rects := randRects(rnd, 1000, 0.05)
	d := spatial.NewDataset(rects)
	ix := Build(d, Options{NX: 8, NY: 8, Space: d.MBR(), BuildThreads: 4})

	entries := append([]spatial.Entry(nil), d.Entries...)
	extra := randRects(rnd, 200, 0.05)
	for i, r := range extra {
		e := spatial.Entry{Rect: r, ID: spatial.ID(10_000 + i)}
		ix.Insert(e)
		entries = append(entries, e)
	}
	for i := 0; i < 300; i += 3 {
		if !ix.Delete(entries[i].ID, entries[i].Rect) {
			t.Fatalf("delete %d failed", entries[i].ID)
		}
		entries[i] = entries[len(entries)-1]
		entries = entries[:len(entries)-1]
	}
	for q := 0; q < 30; q++ {
		w := randWindow(rnd, 0.4)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(entries, w), "post-update window")
	}
}

// TestParallelBuildConcurrentReaders is the -race stress test: while one
// published index serves window queries, parallel builds of fresh indices
// over the same dataset run concurrently. Builders and readers share the
// dataset slice read-only; the race detector would flag any accidental
// write to shared state.
func TestParallelBuildConcurrentReaders(t *testing.T) {
	lowerBuildGates(t)
	rnd := rand.New(rand.NewSource(5))
	d := spatial.NewDataset(randRects(rnd, 3000, 0.05))
	opts := Options{NX: 16, NY: 16, Space: d.MBR(), Decompose: true, BuildThreads: 4}
	published := Build(d, opts)

	windows := make([]geom.Rect, 32)
	for i := range windows {
		windows[i] = randWindow(rnd, 0.3)
	}
	want := make([][]spatial.ID, len(windows))
	for i, w := range windows {
		want[i] = sortIDs(spatial.BruteWindow(d.Entries, w))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := (i + r) % len(windows)
				got := sortIDs(published.View(nil).WindowIDs(windows[q], nil))
				if len(got) != len(want[q]) {
					t.Errorf("reader %d window %d: %d results, want %d", r, q, len(got), len(want[q]))
					return
				}
			}
		}(r)
	}
	for b := 0; b < 6; b++ {
		ix := Build(d, opts)
		if ix.Len() != d.Len() {
			t.Errorf("builder %d: size %d, want %d", b, ix.Len(), d.Len())
		}
	}
	close(stop)
	wg.Wait()
}

// TestLiveParallelRebuild runs a Live index whose periodic decomposed
// rebuilds execute on the parallel path, with concurrent readers — the
// rebuild must never be observable as anything but fresh tables.
func TestLiveParallelRebuild(t *testing.T) {
	lowerBuildGates(t)
	rnd := rand.New(rand.NewSource(17))
	d := spatial.NewDataset(randRects(rnd, 2000, 0.05))
	seed := Build(d, Options{NX: 16, NY: 16, Space: d.MBR(), Decompose: true, BuildThreads: 4})
	l := NewLive(seed, LiveOptions{MaxBatch: 32, RebuildEvery: 64})
	defer l.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rrnd := rand.New(rand.NewSource(23))
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := randWindow(rrnd, 0.2)
				snap := l.Snapshot()
				got := snap.WindowIDs(w, nil)
				noDuplicates(t, got, "live rebuild reader")
			}
		}()
	}
	for i := 0; i < 500; i++ {
		r := randRects(rnd, 1, 0.05)[0]
		if _, err := l.Insert(spatial.Entry{Rect: r, ID: spatial.ID(100_000 + i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if l.Stats().Rebuilds == 0 {
		t.Fatalf("expected at least one decomposed rebuild")
	}
}
