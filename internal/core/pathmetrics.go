package core

import "sync/atomic"

// PathStats is a snapshot of the adaptive query-execution counters: how
// often the planner picked each kernel and how much per-entry work the
// fast paths avoided. Unlike Stats (opt-in, per query), these counters
// are always on — they are engine-lifetime totals shared by every View
// and copy-on-write snapshot descending from the same index, updated
// with one batched atomic flush per query.
type PathStats struct {
	// FastCounts counts count-only window queries answered by the
	// O(tiles) pushdown kernel (WindowCountFast) instead of a streamed
	// scan.
	FastCounts int64
	// FastTiles counts tiles answered wholesale because their comparison
	// plan was empty — the whole tile lies strictly inside the query, so
	// the selected classes were counted (or emitted) without touching a
	// single coordinate (Lemmas 3-4).
	FastTiles int64
	// BulkEntries counts entries counted or emitted in bulk — whole
	// class slices accepted with zero per-entry comparisons.
	BulkEntries int64
	// ParallelQueries counts window queries executed by the chunked
	// intra-query parallel kernel.
	ParallelQueries int64
	// ParallelChunks counts tile-row chunks dispatched by those queries.
	ParallelChunks int64
	// SequentialQueries counts window queries the cost gate kept on the
	// zero-overhead sequential path.
	SequentialQueries int64
}

// pathMetrics is the always-on atomic accumulator behind PathStats. One
// instance is allocated per New and shared (by pointer) with every View
// and CloneCOW snapshot, so server-side snapshots keep feeding the same
// engine-lifetime counters.
type pathMetrics struct {
	fastCounts        atomic.Int64
	fastTiles         atomic.Int64
	bulkEntries       atomic.Int64
	parallelQueries   atomic.Int64
	parallelChunks    atomic.Int64
	sequentialQueries atomic.Int64
}

// pathTally accumulates per-query kernel work on the stack; flush merges
// it into the shared metrics with a handful of atomics per query instead
// of one per tile.
type pathTally struct {
	fastTiles   int64
	bulkEntries int64
}

func (m *pathMetrics) flush(t *pathTally) {
	if m == nil {
		return
	}
	if t.fastTiles != 0 {
		m.fastTiles.Add(t.fastTiles)
	}
	if t.bulkEntries != 0 {
		m.bulkEntries.Add(t.bulkEntries)
	}
}

func (m *pathMetrics) snapshot() PathStats {
	if m == nil {
		return PathStats{}
	}
	return PathStats{
		FastCounts:        m.fastCounts.Load(),
		FastTiles:         m.fastTiles.Load(),
		BulkEntries:       m.bulkEntries.Load(),
		ParallelQueries:   m.parallelQueries.Load(),
		ParallelChunks:    m.parallelChunks.Load(),
		SequentialQueries: m.sequentialQueries.Load(),
	}
}

// Add accumulates o into s; the shard engine sums per-shard snapshots
// with it.
func (s *PathStats) Add(o PathStats) {
	s.FastCounts += o.FastCounts
	s.FastTiles += o.FastTiles
	s.BulkEntries += o.BulkEntries
	s.ParallelQueries += o.ParallelQueries
	s.ParallelChunks += o.ParallelChunks
	s.SequentialQueries += o.SequentialQueries
}

// QueryPathStats snapshots the adaptive-kernel counters. Counters are
// cumulative over the index lifetime and shared with all views and
// snapshots of the same engine.
func (ix *Index) QueryPathStats() PathStats { return ix.met.snapshot() }
