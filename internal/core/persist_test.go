package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/spatial"
)

// TestPersistRoundTrip: a loaded snapshot answers every query identically
// to the original, for plain, decomposed and sparse-directory indices.
func TestPersistRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(181))
	for _, opts := range []Options{
		{NX: 16, NY: 16},
		{NX: 16, NY: 16, Decompose: true},
		{NX: 16, NY: 16, SparseDirectory: true},
		{NX: 1, NY: 1},
	} {
		orig, _ := buildRandom(rnd, 800, 0.1, opts)
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Len() != orig.Len() {
			t.Fatalf("Len %d != %d", loaded.Len(), orig.Len())
		}
		if loaded.Decomposed() != orig.Decomposed() {
			t.Fatal("decompose flag lost")
		}
		for q := 0; q < 60; q++ {
			w := randWindow(rnd, 0.3)
			sameIDs(t, loaded.WindowIDs(w, nil), orig.WindowIDs(w, nil), "loaded window")
		}
		// The loaded index stays updatable.
		loaded.Insert(spatial.Entry{Rect: randRects(rnd, 1, 0.05)[0], ID: 9999})
		if loaded.Len() != orig.Len()+1 {
			t.Fatal("insert after load failed")
		}
	}
}

// TestPersistEpochRoundTrip: the v2 header carries the copy-on-write
// epoch, so a checkpoint of a Live snapshot remembers its log position.
func TestPersistEpochRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(183))
	orig, _ := buildRandom(rnd, 200, 0.1, Options{NX: 8, NY: 8})
	orig.SetEpoch(41)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != 41 {
		t.Fatalf("epoch = %d, want 41", loaded.Epoch())
	}
}

// TestPersistV1Readable: bytes written in the v1 layout (no epoch field)
// still load, with the epoch defaulting to zero.
func TestPersistV1Readable(t *testing.T) {
	rnd := rand.New(rand.NewSource(184))
	orig, _ := buildRandom(rnd, 300, 0.1, Options{NX: 8, NY: 8, Decompose: true})
	orig.SetEpoch(7) // must NOT survive a v1 round trip

	var v1 bytes.Buffer
	if _, err := orig.writeVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	v1len := v1.Len()
	loaded, err := Load(&v1)
	if err != nil {
		t.Fatalf("loading v1 snapshot: %v", err)
	}
	if loaded.Epoch() != 0 {
		t.Fatalf("v1 load epoch = %d, want 0", loaded.Epoch())
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("Len %d != %d", loaded.Len(), orig.Len())
	}
	if loaded.Decomposed() != orig.Decomposed() {
		t.Fatal("decompose flag lost across v1")
	}
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.3)
		sameIDs(t, loaded.WindowIDs(w, nil), orig.WindowIDs(w, nil), "v1 window")
	}

	// A v2 snapshot of the same index must differ only by the 8-byte
	// epoch field.
	var v2 bytes.Buffer
	if _, err := orig.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() != v1len+8 {
		t.Fatalf("v2 size %d, v1 size %d: want exactly 8 bytes more", v2.Len(), v1len)
	}
}

// TestPersistEmptyIndex round-trips an index with no objects.
func TestPersistEmptyIndex(t *testing.T) {
	orig := New(Options{NX: 8, NY: 8})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("Len = %d", loaded.Len())
	}
}

// TestLoadRejectsCorruption: truncations and corrupt headers error out
// rather than producing a broken index or panicking.
func TestLoadRejectsCorruption(t *testing.T) {
	rnd := rand.New(rand.NewSource(182))
	orig, _ := buildRandom(rnd, 100, 0.1, Options{NX: 8, NY: 8})
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), 0xFF, 0xFF, 0xFF, 0xFF),
		"truncated":   good[:len(good)/2],
		"header only": good[:16],
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Corrupt the grid dimensions in place.
	bad := append([]byte{}, good...)
	bad[8], bad[9], bad[10], bad[11] = 0, 0, 0, 0 // nx = 0
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("nx=0: expected error")
	}
}
