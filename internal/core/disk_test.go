package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestDiskMatchesBruteForce cross-checks disk queries against exhaustive
// scans over many shapes of data and disks, asserting no duplicates — the
// central claim of the disk-query section.
func TestDiskMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	grids := []struct{ nx, ny int }{{1, 1}, {4, 4}, {16, 16}, {9, 17}, {64, 64}}
	for _, gr := range grids {
		for _, maxSide := range []float64{0.002, 0.05, 0.25} {
			ix, d := buildRandom(rnd, 500, maxSide, Options{NX: gr.nx, NY: gr.ny})
			for q := 0; q < 50; q++ {
				c := geom.Point{X: rnd.Float64()*1.2 - 0.1, Y: rnd.Float64()*1.2 - 0.1}
				radius := rnd.Float64() * 0.3
				got := ix.DiskIDs(c, radius, nil)
				noDuplicates(t, got, "disk")
				want := spatial.BruteDisk(d.Entries, c, radius)
				sameIDs(t, got, want, "disk vs brute force")
			}
		}
	}
}

// TestDiskLargeObjects stresses the residual-duplicate owner rule: objects
// much larger than tiles are replicated into many tiles along the disk's
// curved boundary, which is exactly where class-B/class-C double-scanning
// can occur (the paper's r1 example in Figure 5).
func TestDiskLargeObjects(t *testing.T) {
	rnd := rand.New(rand.NewSource(32))
	ix, d := buildRandom(rnd, 200, 0.6, Options{NX: 32, NY: 32})
	for q := 0; q < 100; q++ {
		c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		radius := 0.05 + rnd.Float64()*0.4
		got := ix.DiskIDs(c, radius, nil)
		noDuplicates(t, got, "disk large objects")
		sameIDs(t, got, spatial.BruteDisk(d.Entries, c, radius), "disk large objects")
	}
}

// TestDiskEdgeCases: zero radius, disk covering everything, disk fully
// outside the space, disk sticking out of the grid.
func TestDiskEdgeCases(t *testing.T) {
	rnd := rand.New(rand.NewSource(33))
	ix, d := buildRandom(rnd, 300, 0.1, Options{NX: 8, NY: 8})

	if n := ix.DiskCount(geom.Point{X: 5, Y: 5}, 0.5); n != 0 {
		t.Errorf("disk outside space returned %d results", n)
	}

	all := ix.DiskIDs(geom.Point{X: 0.5, Y: 0.5}, 10, nil)
	if len(all) != d.Len() {
		t.Errorf("all-covering disk returned %d of %d", len(all), d.Len())
	}
	noDuplicates(t, all, "all-covering disk")

	c := geom.Point{X: 0.5, Y: 0.5}
	got := ix.DiskIDs(c, 0, nil)
	sameIDs(t, got, spatial.BruteDisk(d.Entries, c, 0), "zero-radius disk")

	edge := geom.Point{X: -0.05, Y: 0.5} // center outside, disk overlaps space
	got = ix.DiskIDs(edge, 0.2, nil)
	noDuplicates(t, got, "edge disk")
	sameIDs(t, got, spatial.BruteDisk(d.Entries, edge, 0.2), "edge disk")
}

// TestDiskCoverGeometry checks the convex cover structure: row runs are
// contiguous, consistent with per-tile disk intersection, and column runs
// mirror row runs.
func TestDiskCoverGeometry(t *testing.T) {
	ix := New(Options{NX: 16, NY: 16})
	rnd := rand.New(rand.NewSource(34))
	for trial := 0; trial < 50; trial++ {
		c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		radius := rnd.Float64() * 0.4
		dc := ix.diskCoverFor(c, radius)
		if dc == nil {
			t.Fatal("disk inside space produced nil cover")
		}
		for ty := dc.y0; ty <= dc.y1; ty++ {
			for tx := dc.x0; tx <= dc.x1; tx++ {
				want := ix.g.Tile(tx, ty).IntersectsDisk(c, radius)
				if got := dc.contains(tx, ty); got != want {
					t.Fatalf("cover.contains(%d,%d) = %v, want %v", tx, ty, got, want)
				}
			}
		}
		// Column runs consistent with membership.
		for tx := dc.x0; tx <= dc.x1; tx++ {
			cm, cM := dc.colMin[tx-dc.x0], dc.colMax[tx-dc.x0]
			if cm == -1 {
				continue
			}
			for ty := cm; ty <= cM; ty++ {
				if !dc.contains(tx, ty) {
					t.Fatalf("column run of %d claims (%d,%d) but contains=false", tx, tx, ty)
				}
			}
		}
	}
}

// TestDiskCoveredTilesSkipDistance: with stats enabled, a disk centered on
// the data with a large radius must report results from covered tiles
// without distance computations for them.
func TestDiskCoveredTilesSkipDistance(t *testing.T) {
	rnd := rand.New(rand.NewSource(35))
	ix, d := buildRandom(rnd, 2000, 0.01, Options{NX: 32, NY: 32})
	ix.Stats = &Stats{}
	c := geom.Point{X: 0.5, Y: 0.5}
	got := ix.DiskIDs(c, 0.45, nil)
	sameIDs(t, got, spatial.BruteDisk(d.Entries, c, 0.45), "covered-tile disk")
	// A 0.45-radius disk on a 32x32 grid covers hundreds of interior
	// tiles; the distance computations must be far fewer than the number
	// of candidates scanned.
	if ix.Stats.DistanceComputations >= ix.Stats.EntriesScanned {
		t.Errorf("distance computed for every candidate: %d distances, %d scanned",
			ix.Stats.DistanceComputations, ix.Stats.EntriesScanned)
	}
	if ix.Stats.Results != int64(len(got)) {
		t.Errorf("stats results %d != %d", ix.Stats.Results, len(got))
	}
}

// TestDiskClassSelection: like window queries, most tiles of a disk query
// must be scanned in class A only (DuplicatesAvoided counts the skipped
// class entries).
func TestDiskClassSelection(t *testing.T) {
	rnd := rand.New(rand.NewSource(36))
	ix, _ := buildRandom(rnd, 3000, 0.08, Options{NX: 32, NY: 32})
	ix.Stats = &Stats{}
	ix.DiskCount(geom.Point{X: 0.5, Y: 0.5}, 0.3)
	if ix.Stats.DuplicatesAvoided == 0 {
		t.Error("disk query avoided no duplicates on replicated data")
	}
}
