package core

import (
	"math"
	"sync"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Window runs the filtering step of a window query: fn is invoked exactly
// once for every entry whose MBR intersects w. No duplicates are ever
// produced, so no result deduplication happens anywhere (Algorithm 1 of
// the paper). Large windows (by the cost gate of autoWindowWorkers) are
// evaluated by the chunked parallel kernel; fn still runs on the
// caller's goroutine and still observes the sequential delivery order.
func (ix *Index) Window(w geom.Rect, fn func(e spatial.Entry)) {
	if !w.Valid() {
		return
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	if workers := ix.autoWindowWorkers(ix0, iy0, ix1, iy1, w, 0); workers > 1 {
		ix.windowChunked(w, ix0, iy0, ix1, iy1, workers, func(e spatial.Entry) bool {
			fn(e)
			return true
		})
		return
	}
	ix.windowSeq(w, ix0, iy0, ix1, iy1, fn)
}

// windowSeq is the classic sequential tile loop over a precomputed cover.
func (ix *Index) windowSeq(w geom.Rect, ix0, iy0, ix1, iy1 int, fn func(e spatial.Entry)) {
	if ix.met != nil {
		ix.met.sequentialQueries.Add(1)
	}
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.windowOnTile(t, tx, ty, ix0, iy0, w, fn)
		}
	}
}

// idCollector is a pooled ID sink whose append closure is bound once at
// pool construction, so WindowIDs and DiskIDs stay at zero allocations
// per call after warm-up (a fresh per-call closure would escape and
// allocate on every query).
type idCollector struct {
	ids  []spatial.ID
	emit func(spatial.Entry)
}

var idCollectorPool = sync.Pool{New: func() any {
	c := &idCollector{}
	c.emit = func(e spatial.Entry) { c.ids = append(c.ids, e.ID) }
	return c
}}

// WindowIDs runs Window and collects result IDs into buf, which may be nil
// or a reused buffer.
func (ix *Index) WindowIDs(w geom.Rect, buf []spatial.ID) []spatial.ID {
	c := idCollectorPool.Get().(*idCollector)
	c.ids = buf[:0]
	ix.Window(w, c.emit)
	out := c.ids
	c.ids = nil
	idCollectorPool.Put(c)
	return out
}

// WindowCount returns the number of MBRs intersecting w. It is served by
// the count-pushdown kernel: interior tiles contribute class lengths in
// O(1) and decomposed border tiles are answered by binary search, so no
// per-entry callback runs (see WindowCountFast).
func (ix *Index) WindowCount(w geom.Rect) int {
	return ix.WindowCountFast(w)
}

// tileComparisonPlan captures which coordinate comparisons the entries of
// one tile need against the query window (Section IV-B). A false flag
// means the corresponding comparison is implied by the tile's position
// relative to the window and can be skipped for every rectangle.
type tileComparisonPlan struct {
	needXL bool // test r.MinX <= w.MaxX (window ends inside the tile)
	needXU bool // test r.MaxX >= w.MinX (window starts inside the tile)
	needYL bool // test r.MinY <= w.MaxY
	needYU bool // test r.MaxY >= w.MinY
}

// planFor computes the comparison plan of tile (tx,ty) against w. The
// conditions are coordinate-based, so tiles strictly interior to the
// window get the empty plan. The plan is computed against the tile's
// effective extent (border tiles extend to infinity, because objects and
// queries sticking out of the indexed space are clamped into them), so
// out-of-space data stays correct.
func (ix *Index) planFor(tx, ty int, w geom.Rect) tileComparisonPlan {
	t := ix.effectiveTile(tx, ty)
	return tileComparisonPlan{
		needXL: w.MaxX < t.MaxX,
		needXU: w.MinX > t.MinX,
		needYL: w.MaxY < t.MaxY,
		needYU: w.MinY > t.MinY,
	}
}

// effectiveTile returns the extent of tile (tx,ty), with border tiles
// extended to infinity. The effective tiles partition the whole plane:
// everything outside the indexed space belongs to the border tiles it is
// clamped into.
func (ix *Index) effectiveTile(tx, ty int) geom.Rect {
	r := ix.g.Tile(tx, ty)
	if tx == 0 {
		r.MinX = math.Inf(-1)
	}
	if tx == ix.g.NX-1 {
		r.MaxX = math.Inf(1)
	}
	if ty == 0 {
		r.MinY = math.Inf(-1)
	}
	if ty == ix.g.NY-1 {
		r.MaxY = math.Inf(1)
	}
	return r
}

// windowOnTile evaluates w on one tile. (qx0,qy0) is the minimum tile
// coordinate of the query's cover range; it drives the Lemma 1-2 class
// selection: classes C and D are read only in the first column of the
// range (otherwise the previous tile in x also holds their entries), and
// classes B and D only in the first row.
func (ix *Index) windowOnTile(t *tile, tx, ty, qx0, qy0 int, w geom.Rect, fn func(spatial.Entry)) {
	first := tx == qx0
	top := ty == qy0
	plan := ix.planFor(tx, ty, w)

	if ix.Stats != nil {
		ix.Stats.TilesVisited++
		ix.Stats.ClassScanned[ClassA] += int64(len(t.classes[ClassA]))
		if top {
			ix.Stats.ClassScanned[ClassB] += int64(len(t.classes[ClassB]))
		} else {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassB]))
		}
		if first {
			ix.Stats.ClassScanned[ClassC] += int64(len(t.classes[ClassC]))
		} else {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassC]))
		}
		if first && top {
			ix.Stats.ClassScanned[ClassD] += int64(len(t.classes[ClassD]))
		} else {
			ix.Stats.DuplicatesAvoided += int64(len(t.classes[ClassD]))
		}
	}

	if t.dec != nil {
		ix.windowOnTileDecomposed(t, tx, ty, first, top, w, plan, fn)
		return
	}

	plans := classPlans(first, top, plan)
	for c := ClassA; c <= ClassD; c++ {
		if plans[c].scan {
			ix.scanClass(t.classes[c], w, plans[c].plan, fn)
		}
	}
}

// classPlan says whether a class is read at all for this tile (Lemmas 1-2)
// and which comparisons its entries need (Lemmas 3-4 plus the per-class
// implications: a class that starts before the tile in a dimension cannot
// fail the lower-bound test in that dimension).
type classPlan struct {
	scan bool
	plan tileComparisonPlan
}

// classPlans combines the Lemma 1-2 class selection with the per-class
// comparison implications:
//
//   - class B starts before the tile in y, so r.MinY <= w.MaxY is implied
//     whenever B is scanned (the window reaches the tile from within or
//     above it);
//   - class C starts before the tile in x, so r.MinX <= w.MaxX is implied;
//   - class D starts before in both, so both lower-bound tests are implied.
func classPlans(first, top bool, plan tileComparisonPlan) [4]classPlan {
	var out [4]classPlan
	out[ClassA] = classPlan{scan: true, plan: plan}
	pB := plan
	pB.needYL = false
	out[ClassB] = classPlan{scan: top, plan: pB}
	pC := plan
	pC.needXL = false
	out[ClassC] = classPlan{scan: first, plan: pC}
	pD := plan
	pD.needXL, pD.needYL = false, false
	out[ClassD] = classPlan{scan: first && top, plan: pD}
	return out
}

// scanClass reports the entries of one secondary partition that intersect
// w, performing only the comparisons the plan requires.
func (ix *Index) scanClass(entries []spatial.Entry, w geom.Rect, p tileComparisonPlan, fn func(spatial.Entry)) {
	if len(entries) == 0 {
		return
	}
	if ix.Stats != nil {
		ix.scanClassCounted(entries, w, p, fn)
		return
	}
	for i := range entries {
		e := &entries[i]
		if p.needXU && e.Rect.MaxX < w.MinX {
			continue
		}
		if p.needXL && e.Rect.MinX > w.MaxX {
			continue
		}
		if p.needYU && e.Rect.MaxY < w.MinY {
			continue
		}
		if p.needYL && e.Rect.MinY > w.MaxY {
			continue
		}
		fn(*e)
	}
}

// scanClassCounted is the instrumented twin of scanClass.
func (ix *Index) scanClassCounted(entries []spatial.Entry, w geom.Rect, p tileComparisonPlan, fn func(spatial.Entry)) {
	s := ix.Stats
	s.PartitionsScanned++
	s.EntriesScanned += int64(len(entries))
	for i := range entries {
		e := &entries[i]
		if p.needXU {
			s.Comparisons++
			if e.Rect.MaxX < w.MinX {
				continue
			}
		}
		if p.needXL {
			s.Comparisons++
			if e.Rect.MinX > w.MaxX {
				continue
			}
		}
		if p.needYU {
			s.Comparisons++
			if e.Rect.MaxY < w.MinY {
				continue
			}
		}
		if p.needYL {
			s.Comparisons++
			if e.Rect.MinY > w.MaxY {
				continue
			}
		}
		s.Results++
		fn(*e)
	}
}
