package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// kernelConfigs builds the index variants the adaptive kernels must stay
// equivalent on: plain grids coarse enough that random windows cover
// interior tiles, a decomposed (2-layer+) build, and a Stats-attached
// view (which pins the instrumented fallback path).
func kernelConfigs(t *testing.T, rnd *rand.Rand, n int) map[string]*Index {
	t.Helper()
	rects := randRects(rnd, n, 0.03)
	d := spatial.NewDataset(rects)
	cfgs := map[string]*Index{
		"plain-8x8":       Build(d, Options{NX: 8, NY: 8, Space: unitSquare}),
		"plain-64x64":     Build(d, Options{NX: 64, NY: 64, Space: unitSquare}),
		"decomposed-8x8":  Build(d, Options{NX: 8, NY: 8, Space: unitSquare, Decompose: true}),
		"decomposed-64":   Build(d, Options{NX: 64, NY: 64, Space: unitSquare, Decompose: true}),
		"sparse-dir":      Build(d, Options{NX: 32, NY: 32, Space: unitSquare, SparseDirectory: true}),
		"stats-view-8x8":  nil, // filled below
		"live-snap-16x16": nil,
	}
	var stats Stats
	v := Build(d, Options{NX: 8, NY: 8, Space: unitSquare}).View(&stats)
	cfgs["stats-view-8x8"] = v

	l := NewLive(New(Options{NX: 16, NY: 16, Space: unitSquare}), LiveOptions{})
	t.Cleanup(l.Close)
	for i, r := range rects {
		if _, err := l.Insert(spatial.Entry{ID: spatial.ID(i), Rect: r}); err != nil {
			t.Fatalf("live insert: %v", err)
		}
	}
	cfgs["live-snap-16x16"] = l.Snapshot()
	return cfgs
}

// TestWindowCountFastEquivalence checks the count pushdown against the
// streamed reference on every index variant, including whole-space
// windows (all-interior covers) and degenerate ones.
func TestWindowCountFastEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	cfgs := kernelConfigs(t, rnd, 4000)
	windows := make([]geom.Rect, 0, 64)
	for i := 0; i < 50; i++ {
		windows = append(windows, randWindow(rnd, 0.5))
	}
	windows = append(windows,
		unitSquare, // every tile interior
		geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2},         // sticks out everywhere
		geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},   // point window
		geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.1, MaxY: 0.1},   // invalid
		geom.Rect{MinX: 0.12, MinY: 0.3, MaxX: 0.97, MaxY: 0.9}, // wide
	)
	for name, ix := range cfgs {
		for wi, w := range windows {
			want := 0
			if w.Valid() {
				ix.Window(w, func(spatial.Entry) { want++ })
			}
			if got := ix.WindowCountFast(w); got != want {
				t.Errorf("%s window %d: WindowCountFast = %d, want %d", name, wi, got, want)
			}
			if got := ix.WindowCount(w); got != want {
				t.Errorf("%s window %d: WindowCount = %d, want %d", name, wi, got, want)
			}
		}
	}
}

// TestWindowCountFilteredEquivalence checks the shard-fanout counting
// kernel (count entries with MinX >= bound) against a filtered streamed
// reference, sweeping the bound across the space so the class-A/B bulk
// shortcut both engages and disengages.
func TestWindowCountFilteredEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cfgs := kernelConfigs(t, rnd, 3000)
	bounds := []float64{-1, 0, 0.25, 0.5, 0.499999, 0.75, 1, 2}
	for name, ix := range cfgs {
		for i := 0; i < 30; i++ {
			w := randWindow(rnd, 0.6)
			for _, minX := range bounds {
				want := 0
				ix.Window(w, func(e spatial.Entry) {
					if e.Rect.MinX >= minX {
						want++
					}
				})
				if got := ix.WindowCountFiltered(w, minX); got != want {
					t.Errorf("%s window %d minX=%v: WindowCountFiltered = %d, want %d",
						name, i, minX, got, want)
				}
			}
		}
	}
}

// TestDiskCountEquivalence checks the disk count kernel (covered tiles
// counted wholesale) against the streamed disk reference.
func TestDiskCountEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cfgs := kernelConfigs(t, rnd, 3000)
	for name, ix := range cfgs {
		for i := 0; i < 40; i++ {
			c := geom.Point{X: rnd.Float64()*1.2 - 0.1, Y: rnd.Float64()*1.2 - 0.1}
			r := rnd.Float64() * 0.6 // large radii cover whole tiles
			want := 0
			ix.Disk(c, r, func(spatial.Entry) { want++ })
			if got := ix.DiskCount(c, r); got != want {
				t.Errorf("%s disk %d (c=%v r=%v): DiskCount = %d, want %d", name, i, c, r, got, want)
			}
		}
	}
}

// TestWindowOrderedMatchesSequential checks the chunked parallel kernel
// byte-for-byte: for every worker count the emission order must equal
// the sequential tile scan exactly, not merely as a set.
func TestWindowOrderedMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	cfgs := kernelConfigs(t, rnd, 4000)
	for name, ix := range cfgs {
		for i := 0; i < 20; i++ {
			w := randWindow(rnd, 0.8)
			var want []spatial.Entry
			ix.Window(w, func(e spatial.Entry) { want = append(want, e) })
			for _, workers := range []int{1, 2, 3, 4, 8} {
				var got []spatial.Entry
				ix.WindowOrdered(w, workers, func(e spatial.Entry) { got = append(got, e) })
				if len(got) != len(want) {
					t.Fatalf("%s window %d workers=%d: %d results, want %d",
						name, i, workers, len(got), len(want))
				}
				for j := range got {
					if got[j].ID != want[j].ID || got[j].Rect != want[j].Rect {
						t.Fatalf("%s window %d workers=%d: result %d = %v, want %v",
							name, i, workers, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestWindowOrderedStress hammers the parallel kernel from concurrent
// callers on one shared index; run with -race this doubles as the data
// race check for the chunk dispatch, pooled buffers, and path metrics.
func TestWindowOrderedStress(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	ix, _ := buildRandom(rnd, 5000, 0.02, Options{NX: 64, NY: 64, Space: unitSquare})
	windows := make([]geom.Rect, 16)
	wants := make([]int, 16)
	for i := range windows {
		windows[i] = randWindow(rnd, 0.7)
		ix.Window(windows[i], func(spatial.Entry) { wants[i]++ })
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				i := (g + rep) % len(windows)
				n := 0
				ix.WindowOrdered(windows[i], 1+(g+rep)%4, func(spatial.Entry) { n++ })
				if n != wants[i] {
					t.Errorf("goroutine %d window %d: %d results, want %d", g, i, n, wants[i])
					return
				}
				if c := ix.WindowCountFast(windows[i]); c != wants[i] {
					t.Errorf("goroutine %d window %d: count %d, want %d", g, i, c, wants[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQueryPathStatsCounters checks that the always-on path counters
// move: pushdown counts bump FastCounts, interior tiles bump
// FastTiles/BulkEntries, and forced-parallel queries bump
// ParallelQueries/ParallelChunks.
func TestQueryPathStatsCounters(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	ix, _ := buildRandom(rnd, 4000, 0.02, Options{NX: 8, NY: 8, Space: unitSquare})

	before := ix.QueryPathStats()
	n := ix.WindowCountFast(unitSquare)
	if n != 4000 {
		t.Fatalf("whole-space count = %d, want 4000", n)
	}
	after := ix.QueryPathStats()
	if after.FastCounts != before.FastCounts+1 {
		t.Errorf("FastCounts = %d, want %d", after.FastCounts, before.FastCounts+1)
	}
	if after.FastTiles <= before.FastTiles {
		t.Errorf("FastTiles did not advance: %d -> %d", before.FastTiles, after.FastTiles)
	}
	// Border tiles extend to infinity and are never interior, so only
	// the inner tiles' entries count as bulk.
	if after.BulkEntries <= before.BulkEntries {
		t.Errorf("BulkEntries did not advance: %d -> %d", before.BulkEntries, after.BulkEntries)
	}

	// A view shares the same counters.
	var stats Stats
	v := ix.View(&stats)
	_ = v.WindowIDs(unitSquare, nil)
	if got := ix.QueryPathStats(); got.SequentialQueries <= after.SequentialQueries {
		t.Errorf("SequentialQueries did not advance through a view: %d -> %d",
			after.SequentialQueries, got.SequentialQueries)
	}

	before = ix.QueryPathStats()
	ix.WindowOrdered(unitSquare, 4, func(spatial.Entry) {})
	after = ix.QueryPathStats()
	if after.ParallelQueries != before.ParallelQueries+1 {
		t.Errorf("ParallelQueries = %d, want %d", after.ParallelQueries, before.ParallelQueries+1)
	}
	if after.ParallelChunks <= before.ParallelChunks {
		t.Errorf("ParallelChunks did not advance: %d -> %d", before.ParallelChunks, after.ParallelChunks)
	}
}

// TestWindowCollectionAllocs pins the pooled collection paths at zero
// allocations per query once the pools and result buffer are warm.
func TestWindowCollectionAllocs(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	ix, _ := buildRandom(rnd, 10000, 0.01, Options{NX: 64, NY: 64, Space: unitSquare})
	w := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	buf := ix.WindowIDs(w, nil)
	if len(buf) == 0 {
		t.Fatal("test window matched nothing")
	}

	if avg := testing.AllocsPerRun(100, func() {
		buf = ix.WindowIDs(w, buf[:0])
	}); avg != 0 {
		t.Errorf("WindowIDs allocates %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = ix.WindowCount(w)
	}); avg != 0 {
		t.Errorf("WindowCount allocates %.1f times per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_, _ = ix.SearchCount(Query{Window: &w})
	}); avg != 0 {
		t.Errorf("SearchCount allocates %.1f times per run, want 0", avg)
	}
}
