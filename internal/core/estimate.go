package core

import (
	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Selectivity estimation: the grid doubles as an equi-width histogram, a
// standard database component. EstimateWindow predicts a window query's
// result cardinality from per-tile class-A counts (each object counted
// once) under a uniformity assumption inside each tile, without touching
// any entry.

// EstimateWindow returns an estimate of the number of objects whose MBR
// intersects w, in O(tiles covered) time. Exact for empty regions;
// within a tile the object mass is assumed uniform. Objects larger than
// a tile contribute through their class-A tile only, so the estimate
// skews low for heavily replicated data — it is a lower-bound-flavoured
// planning signal, not a count.
func (ix *Index) EstimateWindow(w geom.Rect) float64 {
	if !w.Valid() {
		return 0
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	est := 0.0
	for ty := iy0; ty <= iy1; ty++ {
		for tx := ix0; tx <= ix1; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			n := t.size()
			if n == 0 {
				continue
			}
			// Nominal tile extents: an estimator should track the common
			// case (data inside the space); out-of-space mass clamped
			// into border tiles is simply not modeled.
			tileRect := ix.g.Tile(tx, ty)
			overlap := tileRect.Intersection(w)
			if !overlap.Valid() {
				continue
			}
			fracArea := 1.0
			if a := tileRect.Area(); a > 0 {
				fracArea = overlap.Area() / a
			}
			// Count each object once: replicas (classes B, C, D) are
			// owned by another tile's class A.
			est += float64(len(t.classes[ClassA])) * fracArea
		}
	}
	return est
}

// WindowUntil evaluates the filtering step but stops early once fn
// returns false; useful for existence tests and top-k style consumers.
// Early termination is tile-granular: the partition currently being
// scanned finishes before the stop takes effect, but no further
// partitions or tiles are read. It reports whether the query ran to
// completion (true) or was stopped (false).
func (ix *Index) WindowUntil(w geom.Rect, fn func(e spatial.Entry) bool) bool {
	if !w.Valid() {
		return true
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	stopped := false
	sink := func(e spatial.Entry) {
		if !stopped && !fn(e) {
			stopped = true
		}
	}
	for ty := iy0; ty <= iy1 && !stopped; ty++ {
		for tx := ix0; tx <= ix1 && !stopped; tx++ {
			t := ix.tileAt(tx, ty)
			if t == nil {
				continue
			}
			ix.windowOnTile(t, tx, ty, ix0, iy0, w, sink)
		}
	}
	return !stopped
}

// Intersects reports whether any object MBR intersects w, stopping at the
// first hit.
func (ix *Index) Intersects(w geom.Rect) bool {
	found := false
	ix.WindowUntil(w, func(spatial.Entry) bool {
		found = true
		return false
	})
	return found
}
