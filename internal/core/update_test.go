package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestInsertThenQueryMatchesBulk: incrementally inserting must give the
// same index behaviour as bulk building (the Table VI workload shape:
// bulk-load 90%, insert the rest).
func TestInsertThenQueryMatchesBulk(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	rects := randRects(rnd, 1000, 0.08)
	split := 900

	bulk := Build(spatial.NewDataset(rects), Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}})

	incr := New(Options{NX: 16, NY: 16, Space: geom.Rect{MaxX: 1, MaxY: 1}})
	for i := 0; i < split; i++ {
		incr.Insert(spatial.Entry{Rect: rects[i], ID: spatial.ID(i)})
	}
	for i := split; i < len(rects); i++ {
		incr.Insert(spatial.Entry{Rect: rects[i], ID: spatial.ID(i)})
	}
	if incr.Len() != bulk.Len() {
		t.Fatalf("Len %d != %d", incr.Len(), bulk.Len())
	}
	for q := 0; q < 60; q++ {
		w := randWindow(rnd, 0.3)
		sameIDs(t, incr.WindowIDs(w, nil), bulk.WindowIDs(w, nil), "incremental vs bulk")
	}
}

// TestDeleteRemovesFromAllTiles: a deleted object must disappear from
// every query and every replica tile.
func TestDeleteRemovesFromAllTiles(t *testing.T) {
	rnd := rand.New(rand.NewSource(72))
	rects := randRects(rnd, 500, 0.15)
	ix := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 1, MaxY: 1}})

	// Delete every third object.
	remaining := make([]spatial.Entry, 0, len(rects))
	for i, r := range rects {
		if i%3 == 0 {
			if !ix.Delete(spatial.ID(i), r) {
				t.Fatalf("Delete(%d) reported not found", i)
			}
		} else {
			remaining = append(remaining, spatial.Entry{Rect: r, ID: spatial.ID(i)})
		}
	}
	if ix.Len() != len(remaining) {
		t.Fatalf("Len after deletes = %d, want %d", ix.Len(), len(remaining))
	}
	for q := 0; q < 60; q++ {
		w := randWindow(rnd, 0.4)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(remaining, w), "after delete")
	}
	// No replica of a deleted object may remain anywhere.
	for i := range ix.tiles {
		for c := ClassA; c <= ClassD; c++ {
			for _, e := range ix.tiles[i].classes[c] {
				if e.ID%3 == 0 {
					t.Fatalf("deleted object %d still stored", e.ID)
				}
			}
		}
	}
}

// TestDeleteMissing: deleting an absent object reports false and leaves
// the index intact.
func TestDeleteMissing(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	rects := randRects(rnd, 100, 0.1)
	ix := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8})
	before := ix.Len()
	if ix.Delete(9999, geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.6, MaxY: 0.6}) {
		t.Error("Delete of missing object reported true")
	}
	if ix.Len() != before {
		t.Error("Len changed on failed delete")
	}
}

// TestInsertDeleteChurn: random interleaving of inserts and deletes keeps
// the index consistent with a model map.
func TestInsertDeleteChurn(t *testing.T) {
	rnd := rand.New(rand.NewSource(74))
	ix := New(Options{NX: 8, NY: 8})
	model := make(map[spatial.ID]geom.Rect)
	nextID := spatial.ID(0)

	for step := 0; step < 2000; step++ {
		if len(model) == 0 || rnd.Float64() < 0.6 {
			r := randRects(rnd, 1, 0.1)[0]
			ix.Insert(spatial.Entry{Rect: r, ID: nextID})
			model[nextID] = r
			nextID++
		} else {
			// Delete a pseudo-random existing object.
			for id, r := range model {
				if !ix.Delete(id, r) {
					t.Fatalf("Delete(%d) failed", id)
				}
				delete(model, id)
				break
			}
		}
	}
	if ix.Len() != len(model) {
		t.Fatalf("Len %d != model %d", ix.Len(), len(model))
	}
	entries := make([]spatial.Entry, 0, len(model))
	for id, r := range model {
		entries = append(entries, spatial.Entry{Rect: r, ID: id})
	}
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.3)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(entries, w), "churn")
	}
}

// TestInsertInvalidRectPanics: invalid rectangles fail loudly instead of
// being silently clamped into arbitrary tiles.
func TestInsertInvalidRectPanics(t *testing.T) {
	ix := New(Options{NX: 4, NY: 4})
	for _, r := range []geom.Rect{
		{MinX: 1, MinY: 0, MaxX: 0, MaxY: 1},          // inverted
		{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1}, // NaN
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Insert(%v) did not panic", r)
				}
			}()
			ix.Insert(spatial.Entry{Rect: r})
		}()
	}
}

// TestClassString covers the Stringer.
func TestClassString(t *testing.T) {
	if ClassA.String() != "A" || ClassB.String() != "B" || ClassC.String() != "C" ||
		ClassD.String() != "D" || Class(7).String() != "Class(7)" {
		t.Error("Class.String wrong")
	}
}
