package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestDecomposedMatchesPlain is the key equivalence invariant: the
// 2-layer+ variant must return exactly the same results as plain 2-layer
// on every query.
func TestDecomposedMatchesPlain(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	// Dataset sizes chosen so that tiles hold both small partitions
	// (plain-scan fallback) and large ones (binary-search path).
	for _, tc := range []struct{ n, gridSize int }{
		{600, 1}, {600, 8}, {600, 32}, {8000, 4}, {8000, 16},
	} {
		rects := randRects(rnd, tc.n, 0.1)
		plain := Build(spatial.NewDataset(rects), Options{NX: tc.gridSize, NY: tc.gridSize})
		dec := Build(spatial.NewDataset(rects), Options{NX: tc.gridSize, NY: tc.gridSize, Decompose: true})
		if !dec.Decomposed() {
			t.Fatal("Decompose option not honored")
		}
		for q := 0; q < 80; q++ {
			w := randWindow(rnd, 0.35)
			sameIDs(t, dec.WindowIDs(w, nil), plain.WindowIDs(w, nil), "decomposed vs plain")
		}
	}
	// The dense configurations must actually exercise binary searches.
	dense := Build(spatial.NewDataset(randRects(rnd, 8000, 0.05)), Options{NX: 8, NY: 8, Decompose: true})
	dense.Stats = &Stats{}
	for q := 0; q < 20; q++ {
		dense.WindowCount(randWindow(rnd, 0.3))
	}
	if dense.Stats.BinarySearches == 0 {
		t.Fatal("dense decomposed index never used its sorted tables")
	}
}

// TestDecomposedMatchesBruteForce removes the dependence on the plain
// implementation.
func TestDecomposedMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(22))
	d := spatial.NewDataset(randRects(rnd, 400, 0.2))
	ix := Build(d, Options{NX: 16, NY: 16, Decompose: true})
	for q := 0; q < 60; q++ {
		w := randWindow(rnd, 0.4)
		got := ix.WindowIDs(w, nil)
		noDuplicates(t, got, "decomposed window")
		sameIDs(t, got, spatial.BruteWindow(d.Entries, w), "decomposed vs brute")
	}
}

// TestDecTableSearch checks the binary-search helpers directly.
func TestDecTableSearch(t *testing.T) {
	tab := decTable{{1, 0}, {2, 1}, {2, 2}, {5, 3}, {9, 4}}
	tests := []struct {
		v              float64
		prefix, suffix int
	}{
		{0, 0, 0},
		{1, 1, 0},
		{1.5, 1, 1},
		{2, 3, 1},
		{4, 3, 3},
		{9, 5, 4},
		{10, 5, 5},
	}
	for _, tc := range tests {
		if got := tab.prefixLE(tc.v); got != tc.prefix {
			t.Errorf("prefixLE(%v) = %d, want %d", tc.v, got, tc.prefix)
		}
		if got := tab.suffixGE(tc.v); got != tc.suffix {
			t.Errorf("suffixGE(%v) = %d, want %d", tc.v, got, tc.suffix)
		}
	}
	var empty decTable
	if empty.prefixLE(3) != 0 || empty.suffixGE(3) != 0 {
		t.Error("empty table searches should return 0")
	}
}

// TestTableIIStorage verifies that only the decomposed tables required by
// Table II of the paper are materialized per class.
func TestTableIIStorage(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	ix, _ := buildRandom(rnd, 500, 0.3, Options{NX: 8, NY: 8, Decompose: true})
	for i := range ix.tiles {
		tl := &ix.tiles[i]
		if tl.dec == nil {
			t.Fatal("tile missing decomposed tables after Build with Decompose")
		}
		for c := ClassA; c <= ClassD; c++ {
			d := &tl.dec.cls[c]
			n := len(tl.classes[c])
			hasXL := c == ClassA || c == ClassB
			hasYL := c == ClassA || c == ClassC
			if got := len(d.xl); got != map[bool]int{true: n, false: 0}[hasXL] {
				t.Fatalf("class %v: xl table has %d entries for %d objects", c, got, n)
			}
			if got := len(d.yl); got != map[bool]int{true: n, false: 0}[hasYL] {
				t.Fatalf("class %v: yl table has %d entries for %d objects", c, got, n)
			}
			if len(d.xu) != n || len(d.yu) != n {
				t.Fatalf("class %v: xu/yu tables must always exist", c)
			}
			// Tables must be sorted.
			for _, tab := range []decTable{d.xl, d.xu, d.yl, d.yu} {
				for j := 1; j < len(tab); j++ {
					if tab[j].coord < tab[j-1].coord {
						t.Fatal("decomposed table not sorted")
					}
				}
			}
		}
	}
}

// TestDecomposedStaleAfterInsert: updates invalidate a tile's decomposed
// tables; queries must fall back to plain scans and stay correct, and
// BuildDecomposed must restore the tables.
func TestDecomposedStaleAfterInsert(t *testing.T) {
	rnd := rand.New(rand.NewSource(24))
	rects := randRects(rnd, 300, 0.1)
	d := spatial.NewDataset(rects)
	ix := Build(d, Options{NX: 8, NY: 8, Decompose: true})

	extra := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	ix.Insert(spatial.Entry{Rect: extra, ID: spatial.ID(len(rects))})
	allEntries := append(append([]spatial.Entry{}, d.Entries...), spatial.Entry{Rect: extra, ID: spatial.ID(len(rects))})

	stale := 0
	for i := range ix.tiles {
		if ix.tiles[i].dec == nil {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("insert did not invalidate any decomposed tile")
	}
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.4)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(allEntries, w), "stale-dec window")
	}

	ix.BuildDecomposed()
	for i := range ix.tiles {
		if ix.tiles[i].dec == nil {
			t.Fatal("BuildDecomposed left a stale tile")
		}
	}
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.4)
		sameIDs(t, ix.WindowIDs(w, nil), spatial.BruteWindow(allEntries, w), "rebuilt-dec window")
	}
}

// TestDecomposedFootprintGrowth: 2-layer+ must report a strictly larger
// footprint than 2-layer over the same data (it stores a decomposed copy).
func TestDecomposedFootprintGrowth(t *testing.T) {
	rnd := rand.New(rand.NewSource(25))
	rects := randRects(rnd, 400, 0.1)
	plain := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8})
	dec := Build(spatial.NewDataset(rects), Options{NX: 8, NY: 8, Decompose: true})
	if dec.MemoryFootprint() <= plain.MemoryFootprint() {
		t.Errorf("decomposed footprint %d not larger than plain %d",
			dec.MemoryFootprint(), plain.MemoryFootprint())
	}
}
