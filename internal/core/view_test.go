package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
)

// TestViewConcurrentStats checks the concurrent stats mode: queries on
// per-goroutine views with private Stats, merged into one AtomicStats,
// must produce exactly the counters of the same queries run serially in
// exclusive mode. Run with -race to exercise the safety claim.
func TestViewConcurrentStats(t *testing.T) {
	ix, _ := buildRandom(rand.New(rand.NewSource(7)), 4000, 0.05, Options{NX: 64, NY: 64})

	queries := make([]geom.Rect, 64)
	for i := range queries {
		x := float64(i%8) / 8
		y := float64(i/8) / 8
		queries[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 0.2, MaxY: y + 0.2}
	}

	// Serial exclusive-mode reference.
	want := Stats{}
	ix.Stats = &want
	serialResults := 0
	for _, q := range queries {
		serialResults += ix.WindowCount(q)
	}
	ix.Stats = nil

	var agg AtomicStats
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				s := &Stats{}
				view := ix.View(s)
				view.WindowCount(queries[i])
				agg.Observe(s)
			}
		}(w)
	}
	wg.Wait()

	got := agg.Snapshot()
	if got != want {
		t.Errorf("concurrent view stats = %+v, want %+v", got, want)
	}
	if agg.Queries() != int64(len(queries)) {
		t.Errorf("Queries() = %d, want %d", agg.Queries(), len(queries))
	}
	if got.Results != int64(serialResults) {
		t.Errorf("stats results %d != serial result count %d", got.Results, serialResults)
	}
}

// TestViewConcurrentKNN checks that per-view kNN scratch detachment makes
// concurrent kNN queries safe and correct.
func TestViewConcurrentKNN(t *testing.T) {
	ix, _ := buildRandom(rand.New(rand.NewSource(11)), 2000, 0.05, Options{NX: 32, NY: 32})

	points := make([]geom.Point, 32)
	for i := range points {
		points[i] = geom.Point{X: float64(i%8) / 8, Y: float64(i/8) / 4}
	}
	want := make([][]Neighbor, len(points))
	for i, p := range points {
		want[i] = ix.KNN(p, 10)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			view := ix.View(nil)
			for i := w; i < len(points); i += 8 {
				got := view.KNN(points[i], 10)
				if len(got) != len(want[i]) {
					t.Errorf("point %d: got %d neighbors, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j].Dist != want[i][j].Dist {
						t.Errorf("point %d neighbor %d: dist %v != %v", i, j, got[j].Dist, want[i][j].Dist)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
