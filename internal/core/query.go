package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Query is the unified range-query descriptor: one shape (window, disk,
// or arbitrary region), an optional exact-geometry refinement step, and
// an optional result limit. Search evaluates it through the same
// two-layer machinery the shape-specific entry points use; those entry
// points (Window, Disk, WindowExact, ...) are thin wrappers over Search.
//
// The zero Mode is RefineSimple; callers wanting the paper's recommended
// refinement set Mode to RefineAvoidPlus explicitly. Mode is ignored
// unless Exact is set.
type Query struct {
	// Exactly one of Window, Disk, and Region must be set.
	Window *geom.Rect
	Disk   *geom.Disk
	Region Region

	// Exact refines candidates against the exact object geometries; the
	// index must have been built over a Dataset. Unsupported for Region
	// shapes.
	Exact bool
	// Mode selects the refinement strategy of an Exact query.
	Mode RefineMode
	// Limit > 0 stops the query after that many results have been
	// delivered (the query is then reported as incomplete). 0 means
	// unlimited.
	Limit int
}

// Validate reports why the descriptor cannot be evaluated, or nil. Shape
// coordinates are not validated here: like the shape-specific entry
// points, Search answers a NaN or inverted shape with an empty result.
func (q Query) Validate() error {
	shapes := 0
	if q.Window != nil {
		shapes++
	}
	if q.Disk != nil {
		shapes++
	}
	if q.Region != nil {
		shapes++
	}
	if shapes != 1 {
		return fmt.Errorf("core: query must set exactly one of Window, Disk and Region (got %d)", shapes)
	}
	if q.Limit < 0 {
		return fmt.Errorf("core: negative query limit %d", q.Limit)
	}
	if q.Exact && q.Region != nil {
		return errors.New("core: exact refinement is not supported for Region queries")
	}
	return nil
}

// MBR returns the bounding rectangle of the query shape — the extent
// routing layers (internal/shard) use to pick the partitions to scan.
func (q Query) MBR() geom.Rect {
	switch {
	case q.Window != nil:
		return *q.Window
	case q.Disk != nil:
		return q.Disk.MBR()
	case q.Region != nil:
		return q.Region.MBR()
	}
	return geom.Rect{}
}

// errExactNeedsDataset is returned by Search for exact queries on an
// index that was not built over a Dataset; it mirrors the panic of the
// legacy WindowExact/DiskExact entry points.
var errExactNeedsDataset = errors.New("core: exact queries require an index built over a Dataset")

// Search evaluates q and streams every matching entry to fn, which
// returns false to stop early (tile-granular, like WindowUntil). Each
// matching object is delivered exactly once. Exact queries deliver the
// object's MBR alongside its ID, like filtering queries. It reports
// whether the evaluation ran to completion: false when fn stopped it or
// a Limit was reached.
func (ix *Index) Search(q Query, fn func(e spatial.Entry) bool) (complete bool, err error) {
	if err := q.Validate(); err != nil {
		return false, err
	}
	if q.Exact && ix.dataset == nil {
		return false, errExactNeedsDataset
	}
	remaining := q.Limit
	complete = true
	// deliver forwards one result and reports whether to keep going,
	// folding the Limit into the same early-termination path fn uses.
	deliver := func(e spatial.Entry) bool {
		if !fn(e) {
			complete = false
			return false
		}
		if q.Limit > 0 {
			if remaining--; remaining == 0 {
				complete = false
				return false
			}
		}
		return true
	}
	// The exact and region paths have no *Until variant; a stopped flag
	// turns their unconditional sinks into early-terminating ones.
	stopped := false
	sink := func(e spatial.Entry) {
		if !stopped && !deliver(e) {
			stopped = true
		}
	}
	switch {
	case q.Window != nil && q.Exact:
		ix.windowExactEntries(*q.Window, q.Mode, sink)
	case q.Window != nil:
		ix.searchWindow(*q.Window, q.Limit, deliver)
	case q.Disk != nil && q.Exact:
		ix.diskExactEntries(q.Disk.Center, q.Disk.Radius, q.Mode, sink)
	case q.Disk != nil:
		ix.DiskUntil(q.Disk.Center, q.Disk.Radius, deliver)
	default:
		ix.Query(q.Region, sink)
	}
	return complete, nil
}

// searchWindow evaluates the plain (non-exact) window shape of a Search:
// the cost gate routes large unlimited (or effectively unlimited)
// queries to the chunked parallel kernel and everything else to the
// early-terminating sequential scan.
func (ix *Index) searchWindow(w geom.Rect, limit int, deliver func(e spatial.Entry) bool) {
	if !w.Valid() {
		return
	}
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	if workers := ix.autoWindowWorkers(ix0, iy0, ix1, iy1, w, limit); workers > 1 {
		ix.windowChunked(w, ix0, iy0, ix1, iy1, workers, deliver)
		return
	}
	// The gate ran and chose the sequential kernel; count the decision
	// here because WindowUntil is also the substrate of probes
	// (Intersects), which never consult the gate.
	if ix.met != nil {
		ix.met.sequentialQueries.Add(1)
	}
	ix.WindowUntil(w, deliver)
}

// searchIDCollector pools the append sink of SearchIDs; the closure is
// bound once at pool construction so the collection path stays at zero
// allocations per call (beyond slice growth).
type searchIDCollector struct {
	ids []spatial.ID
	fn  func(spatial.Entry) bool
}

var searchIDPool = sync.Pool{New: func() any {
	c := &searchIDCollector{}
	c.fn = func(e spatial.Entry) bool {
		c.ids = append(c.ids, e.ID)
		return true
	}
	return c
}}

// SearchIDs evaluates q and returns the IDs of all matching objects,
// appending to buf (which may be nil).
func (ix *Index) SearchIDs(q Query, buf []spatial.ID) ([]spatial.ID, error) {
	c := searchIDPool.Get().(*searchIDCollector)
	c.ids = buf
	_, err := ix.Search(q, c.fn)
	out := c.ids
	c.ids = nil
	searchIDPool.Put(c)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SearchCount evaluates q and returns the number of matching objects.
// A Limit caps the count like it caps streamed results. Plain (non-
// exact) shapes take the count-pushdown kernels — window counts run in
// O(tiles covered) on interior-dominated covers, and no per-entry
// callback is invoked — so counting is substantially cheaper than
// streaming the same query. A capped count equals min(total, Limit),
// which is exactly what the early-terminating streamed path reports.
func (ix *Index) SearchCount(q Query) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if !q.Exact {
		var n int
		switch {
		case q.Window != nil:
			n = ix.WindowCountFast(*q.Window)
		case q.Disk != nil:
			n = ix.DiskCount(q.Disk.Center, q.Disk.Radius)
		default:
			n = ix.QueryCount(q.Region)
		}
		if q.Limit > 0 && n > q.Limit {
			n = q.Limit
		}
		return n, nil
	}
	n := 0
	_, err := ix.Search(q, func(spatial.Entry) bool {
		n++
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}
