package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// Figure 1 of the paper: six rectangles on a 4x4 grid. Coordinates chosen
// to reproduce the tile assignments and classes listed in the figure.
func paperFigure1() (*Index, []geom.Rect) {
	// 4x4 grid over the unit square: tiles are 0.25 wide/high.
	rects := []geom.Rect{
		{MinX: 0.05, MinY: 0.05, MaxX: 0.15, MaxY: 0.15}, // r1: inside T0
		{MinX: 0.15, MinY: 0.15, MaxX: 0.35, MaxY: 0.35}, // r2: T0,T1,T4,T5
		{MinX: 0.40, MinY: 0.05, MaxX: 0.60, MaxY: 0.15}, // r3: T1,T2
		{MinX: 0.60, MinY: 0.30, MaxX: 0.85, MaxY: 0.45}, // r4: T6,T7
		{MinX: 0.55, MinY: 0.55, MaxX: 0.70, MaxY: 0.70}, // r5: T10
		{MinX: 0.80, MinY: 0.70, MaxX: 0.90, MaxY: 0.80}, // r6: T11,T15
	}
	d := spatial.NewDataset(rects)
	unit := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	return Build(d, Options{NX: 4, NY: 4, Space: unit}), rects
}

// TestPaperFigure1Classes verifies the secondary partitioning of the
// paper's running example.
func TestPaperFigure1Classes(t *testing.T) {
	ix, _ := paperFigure1()
	type want struct {
		tx, ty int
		class  Class
		id     spatial.ID
	}
	wants := []want{
		{0, 0, ClassA, 0}, // r1 in T0, class A
		{0, 0, ClassA, 1}, // r2 in T0, class A
		{1, 0, ClassC, 1}, // r2 in T1, class C
		{1, 0, ClassA, 2}, // r3 in T1, class A
		{2, 0, ClassC, 2}, // r3 in T2, class C
		{0, 1, ClassB, 1}, // r2 in T4, class B
		{1, 1, ClassD, 1}, // r2 in T5, class D
		{2, 1, ClassA, 3}, // r4 in T6, class A
		{3, 1, ClassC, 3}, // r4 in T7, class C
		{2, 2, ClassA, 4}, // r5 in T10, class A
		{3, 2, ClassA, 5}, // r6 in T11, class A
		{3, 3, ClassB, 5}, // r6 in T15, class B
	}
	for _, w := range wants {
		tl := ix.tileAt(w.tx, w.ty)
		if tl == nil {
			t.Fatalf("tile (%d,%d) unexpectedly empty", w.tx, w.ty)
		}
		found := false
		for _, e := range tl.classes[w.class] {
			if e.ID == w.id {
				found = true
			}
		}
		if !found {
			t.Errorf("object %d not in class %v of tile (%d,%d); tile contents: %v",
				w.id, w.class, w.tx, w.ty, tl.classes)
		}
	}
	// Replication check: r2 stored 4 times, r1 once.
	counts := ix.ClassCounts()
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total != 12 {
		t.Errorf("total stored entries = %d, want 12", total)
	}
	if counts[ClassA] != 6 {
		t.Errorf("class A count = %d, want 6 (one per object)", counts[ClassA])
	}
}

// TestPaperFigure1Window runs the query W of Figure 1 (covering tiles
// T0, T1, T4, T5) and checks the result set {r1, r2, r3}.
func TestPaperFigure1Window(t *testing.T) {
	ix, _ := paperFigure1()
	w := geom.Rect{MinX: 0.10, MinY: 0.10, MaxX: 0.45, MaxY: 0.45}
	got := ix.WindowIDs(w, nil)
	noDuplicates(t, got, "figure 1 window")
	sameIDs(t, got, []spatial.ID{0, 1, 2}, "figure 1 window")
}

// TestWindowMatchesBruteForce cross-checks the two-layer index against an
// exhaustive scan over many random datasets, grid granularities and
// window sizes, including windows sticking out of the indexed space.
func TestWindowMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	grids := []struct{ nx, ny int }{{1, 1}, {4, 4}, {16, 16}, {7, 13}, {64, 64}}
	for _, gr := range grids {
		for _, maxSide := range []float64{0.001, 0.05, 0.3} {
			ix, d := buildRandom(rnd, 500, maxSide, Options{NX: gr.nx, NY: gr.ny})
			for q := 0; q < 50; q++ {
				w := randWindow(rnd, 0.4)
				got := ix.WindowIDs(w, nil)
				noDuplicates(t, got, "window")
				want := spatial.BruteWindow(d.Entries, w)
				sameIDs(t, got, want, "window vs brute force")
			}
		}
	}
}

// TestWindowTinyAndHugeQueries exercises degenerate windows: points, full
// space, and windows containing the whole space.
func TestWindowEdgeCases(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	ix, d := buildRandom(rnd, 300, 0.1, Options{NX: 8, NY: 8})

	full := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	got := ix.WindowIDs(full, nil)
	if len(got) != d.Len() {
		t.Errorf("full-space window returned %d of %d objects", len(got), d.Len())
	}
	noDuplicates(t, got, "full-space window")

	beyond := geom.Rect{MinX: -5, MinY: -5, MaxX: 5, MaxY: 5}
	got = ix.WindowIDs(beyond, got)
	if len(got) != d.Len() {
		t.Errorf("super-space window returned %d of %d objects", len(got), d.Len())
	}

	point := geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}
	want := spatial.BruteWindow(d.Entries, point)
	sameIDs(t, ix.WindowIDs(point, nil), want, "point window")

	outside := geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}
	if n := ix.WindowCount(outside); n != 0 {
		t.Errorf("window outside space returned %d results", n)
	}
}

// TestWindowOnEmptyIndex must return nothing and not panic.
func TestWindowOnEmptyIndex(t *testing.T) {
	ix := New(Options{NX: 8, NY: 8})
	if n := ix.WindowCount(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); n != 0 {
		t.Errorf("empty index returned %d results", n)
	}
}

// TestSparseDirectory forces the hash-map directory and checks behavioural
// equivalence with the dense one.
func TestSparseDirectory(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	rects := randRects(rnd, 400, 0.05)
	d1 := spatial.NewDataset(rects)
	d2 := spatial.NewDataset(rects)
	denseIx := Build(d1, Options{NX: 32, NY: 32})
	sparseIx := Build(d2, Options{NX: 32, NY: 32, SparseDirectory: true})
	if denseIx.sparse != nil || sparseIx.dense != nil {
		t.Fatal("directory styles not as configured")
	}
	for q := 0; q < 50; q++ {
		w := randWindow(rnd, 0.3)
		sameIDs(t, sparseIx.WindowIDs(w, nil), denseIx.WindowIDs(w, nil), "sparse vs dense")
	}
}

// TestClassAExactlyOnce checks the structural invariant that every object
// appears in class A of exactly one tile, and replicas land in B/C/D.
func TestClassAExactlyOnce(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	ix, d := buildRandom(rnd, 500, 0.2, Options{NX: 16, NY: 16})
	countA := make(map[spatial.ID]int)
	for i := range ix.tiles {
		for _, e := range ix.tiles[i].classes[ClassA] {
			countA[e.ID]++
		}
	}
	if len(countA) != d.Len() {
		t.Fatalf("%d objects have a class-A entry, want %d", len(countA), d.Len())
	}
	for id, n := range countA {
		if n != 1 {
			t.Errorf("object %d in class A of %d tiles", id, n)
		}
	}
}

// TestReplicationConsistency verifies each object is stored in exactly the
// tiles its MBR intersects, with the class matching its position in the
// replication block.
func TestReplicationConsistency(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	ix, d := buildRandom(rnd, 200, 0.3, Options{NX: 8, NY: 8})
	for i := range ix.tiles {
		tl := &ix.tiles[i]
		tid := ix.tileIDs[i]
		tx, ty := ix.g.TileCoords(int(tid))
		for c := ClassA; c <= ClassD; c++ {
			for _, e := range tl.classes[c] {
				ax, ay, bx, by := ix.g.CoverRect(e.Rect)
				if tx < ax || tx > bx || ty < ay || ty > by {
					t.Fatalf("object %d stored in tile (%d,%d) outside its cover", e.ID, tx, ty)
				}
				if got := classify(tx, ty, ax, ay); got != c {
					t.Fatalf("object %d in tile (%d,%d): stored class %v, want %v", e.ID, tx, ty, c, got)
				}
			}
		}
	}
	_ = d
}

// TestAccessors covers the read-only accessors.
func TestAccessors(t *testing.T) {
	rnd := rand.New(rand.NewSource(10))
	ix, d := buildRandom(rnd, 50, 0.1, Options{NX: 8, NY: 8})
	if ix.Grid() == nil || ix.Grid().NX != 8 {
		t.Error("Grid accessor wrong")
	}
	if ix.Dataset() != d {
		t.Error("Dataset accessor wrong")
	}
}

// TestBatchOnSparseDirectory exercises the sparse slot lookup in batch
// processing.
func TestBatchOnSparseDirectory(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	rects := randRects(rnd, 400, 0.05)
	ix := Build(spatial.NewDataset(rects), Options{NX: 16, NY: 16, SparseDirectory: true})
	queries := make([]geom.Rect, 30)
	for i := range queries {
		queries[i] = randWindow(rnd, 0.3)
	}
	counts := ix.BatchWindowCounts(queries, TilesBased, 2)
	for i, w := range queries {
		if want := len(spatial.BruteWindow(ix.dataset.Entries, w)); counts[i] != want {
			t.Fatalf("query %d: %d, want %d", i, counts[i], want)
		}
	}
}

// TestMemoryAndReplicationReports sanity-checks the reporting helpers.
func TestMemoryAndReplicationReports(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	ix, _ := buildRandom(rnd, 100, 0.1, Options{NX: 8, NY: 8})
	if f := ix.ReplicationFactor(); f < 1 {
		t.Errorf("replication factor %v < 1", f)
	}
	if m := ix.MemoryFootprint(); m <= 0 {
		t.Errorf("memory footprint %d", m)
	}
	empty := New(Options{})
	if f := empty.ReplicationFactor(); f != 0 {
		t.Errorf("empty index replication factor = %v", f)
	}
}
