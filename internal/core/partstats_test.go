package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestPartitionStatsEmpty: an empty index reports zeros everywhere and
// no NaN from the ratio fields.
func TestPartitionStatsEmpty(t *testing.T) {
	ix := New(Options{NX: 8, NY: 8})
	ps := ix.PartitionStats()
	if ps.GridTiles != 64 {
		t.Fatalf("GridTiles = %d, want 64", ps.GridTiles)
	}
	if ps.OccupiedTiles != 0 || ps.Objects != 0 || ps.Replicas != 0 {
		t.Fatalf("empty index reports occupancy: %+v", ps)
	}
	for _, f := range []float64{ps.MeanTileEntries, ps.SkewRatio, ps.ReplicationFactor, ps.BoundaryRatio} {
		if f != 0 || math.IsNaN(f) {
			t.Fatalf("empty index ratio fields must be exactly 0: %+v", ps)
		}
	}
}

// TestPartitionStatsSingleTile: one object strictly inside one tile is a
// single class-A entry with no replication.
func TestPartitionStatsSingleTile(t *testing.T) {
	d := spatial.NewDataset([]geom.Rect{
		{MinX: 0.01, MinY: 0.01, MaxX: 0.02, MaxY: 0.02},
	})
	ix := Build(d, Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 1, MaxY: 1}})
	ps := ix.PartitionStats()
	if ps.OccupiedTiles != 1 || ps.Objects != 1 || ps.Replicas != 1 {
		t.Fatalf("got %+v, want 1 tile / 1 object / 1 replica", ps)
	}
	if ps.ClassCounts != [4]int{1, 0, 0, 0} {
		t.Fatalf("ClassCounts = %v, want [1 0 0 0]", ps.ClassCounts)
	}
	if ps.ReplicationFactor != 1 || ps.BoundaryRatio != 0 || ps.SkewRatio != 1 {
		t.Fatalf("ratios off for a single interior object: %+v", ps)
	}
}

// TestPartitionStatsCrossTile: one object spanning a 2x2 tile block
// stores exactly one replica per class (Section III-A's class
// assignment: A at the begin tile, B along the row, C along the column,
// D in the interior remainder).
func TestPartitionStatsCrossTile(t *testing.T) {
	d := spatial.NewDataset([]geom.Rect{
		{MinX: 0.10, MinY: 0.10, MaxX: 0.15, MaxY: 0.15},
	})
	ix := Build(d, Options{NX: 8, NY: 8, Space: geom.Rect{MaxX: 1, MaxY: 1}})
	ps := ix.PartitionStats()
	if ps.OccupiedTiles != 4 || ps.Replicas != 4 {
		t.Fatalf("got %+v, want 4 occupied tiles / 4 replicas", ps)
	}
	if ps.ClassCounts != [4]int{1, 1, 1, 1} {
		t.Fatalf("ClassCounts = %v, want one replica per class", ps.ClassCounts)
	}
	if ps.ReplicationFactor != 4 {
		t.Fatalf("ReplicationFactor = %v, want 4", ps.ReplicationFactor)
	}
	if want := 3.0 / 4.0; ps.BoundaryRatio != want {
		t.Fatalf("BoundaryRatio = %v, want %v", ps.BoundaryRatio, want)
	}
}

// TestPartitionStatsInvariants checks the arithmetic relations that must
// hold on any dataset: class counts sum to the replica count, every
// object has exactly one class-A home, and the derived ratios match
// their definitions.
func TestPartitionStatsInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	ix, _ := buildRandom(rnd, 5000, 0.05, Options{NX: 32, NY: 32})
	ps := ix.PartitionStats()

	if ps.GridTiles != 32*32 {
		t.Fatalf("GridTiles = %d, want 1024", ps.GridTiles)
	}
	if ps.Objects != 5000 {
		t.Fatalf("Objects = %d, want 5000", ps.Objects)
	}
	if ps.ClassCounts[0] != ps.Objects {
		t.Fatalf("class A count %d != objects %d (every object has one home tile)",
			ps.ClassCounts[0], ps.Objects)
	}
	sum := ps.ClassCounts[0] + ps.ClassCounts[1] + ps.ClassCounts[2] + ps.ClassCounts[3]
	if sum != ps.Replicas {
		t.Fatalf("class counts sum %d != replicas %d", sum, ps.Replicas)
	}
	if ps.Replicas < ps.Objects {
		t.Fatalf("replicas %d < objects %d", ps.Replicas, ps.Objects)
	}
	if ps.OccupiedTiles <= 0 || ps.OccupiedTiles > ps.GridTiles {
		t.Fatalf("OccupiedTiles = %d out of range", ps.OccupiedTiles)
	}
	if got, want := ps.MeanTileEntries, float64(ps.Replicas)/float64(ps.OccupiedTiles); got != want {
		t.Fatalf("MeanTileEntries = %v, want %v", got, want)
	}
	if got, want := ps.SkewRatio, float64(ps.MaxTileEntries)/ps.MeanTileEntries; got != want {
		t.Fatalf("SkewRatio = %v, want %v", got, want)
	}
	if got, want := ps.ReplicationFactor, float64(ps.Replicas)/float64(ps.Objects); got != want {
		t.Fatalf("ReplicationFactor = %v, want %v", got, want)
	}
	if got, want := ps.BoundaryRatio, float64(ps.Replicas-ps.ClassCounts[0])/float64(ps.Replicas); got != want {
		t.Fatalf("BoundaryRatio = %v, want %v", got, want)
	}
	if ps.DecomposedTiles != 0 {
		t.Fatalf("DecomposedTiles = %d on a non-decomposed index", ps.DecomposedTiles)
	}
}

// TestPartitionStatsDecomposed: a freshly decomposed index reports every
// occupied tile as decomposed; an update dirties the touched tiles,
// which drop out of the count until the next rebuild.
func TestPartitionStatsDecomposed(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 16, NY: 16, Decompose: true})
	ps := ix.PartitionStats()
	if ps.DecomposedTiles != ps.OccupiedTiles {
		t.Fatalf("DecomposedTiles = %d, want all %d occupied tiles",
			ps.DecomposedTiles, ps.OccupiedTiles)
	}

	ix.Insert(spatial.Entry{
		ID:   spatial.ID(ps.Objects),
		Rect: geom.Rect{MinX: 0.501, MinY: 0.501, MaxX: 0.502, MaxY: 0.502},
	})
	after := ix.PartitionStats()
	if after.Objects != ps.Objects+1 {
		t.Fatalf("Objects = %d after insert, want %d", after.Objects, ps.Objects+1)
	}
	if after.DecomposedTiles >= after.OccupiedTiles {
		t.Fatalf("insert did not dirty any decomposed tile: %d of %d",
			after.DecomposedTiles, after.OccupiedTiles)
	}

	ix.BuildDecomposed()
	rebuilt := ix.PartitionStats()
	if rebuilt.DecomposedTiles != rebuilt.OccupiedTiles {
		t.Fatalf("rebuild left dirty tiles: %d of %d",
			rebuilt.DecomposedTiles, rebuilt.OccupiedTiles)
	}
}
