package core

// Interior-mass acceleration for the count pushdown: the grid doubles as
// a 2D histogram of per-tile class-A counts, stored as inclusive prefix
// sums. Any tile strictly interior to a window's cover is (a) fully
// covered by the window, so its comparison plan is empty, and (b)
// neither in the cover's first row nor first column, so class selection
// reduces to class A alone (Lemmas 1-4). The whole strict interior is
// therefore one prefix-rectangle lookup — O(1) — and a count-only window
// query costs O(perimeter of the cover), not O(tiles covered).
//
// The table is built by Build/Load and refreshed by BuildDecomposed (the
// batch update point); Insert and Delete invalidate it, dropping the
// affected index back to the per-tile counting loop until the next batch
// refresh. Views and copy-on-write snapshots copy the pointer: the table
// is immutable once published, and a mutating clone only clears its own
// copy of the field.

// maxCountIndexTiles caps the grids that carry a prefix table: beyond
// this the table's memory (8 bytes per tile) stops being negligible next
// to the tile directory, and such grids are sparse-directory territory
// anyway.
const maxCountIndexTiles = 1 << 22

// countIndex holds inclusive 2D prefix sums over per-tile class-A
// counts: sums[(ty+1)*(nx+1)+tx+1] is the total class-A population of
// tiles [0..tx] x [0..ty].
type countIndex struct {
	nx   int
	sums []int64
}

// rect returns the class-A population of the inclusive tile rectangle
// [x0..x1] x [y0..y1]. The caller guarantees in-grid bounds and
// x0 <= x1, y0 <= y1.
func (ci *countIndex) rect(x0, y0, x1, y1 int) int64 {
	w := ci.nx + 1
	return ci.sums[(y1+1)*w+x1+1] - ci.sums[y0*w+x1+1] -
		ci.sums[(y1+1)*w+x0] + ci.sums[y0*w+x0]
}

// buildCountIndex (re)computes the prefix table, or clears it for grids
// past the size cap.
func (ix *Index) buildCountIndex() {
	nx, ny := ix.g.NX, ix.g.NY
	if nx*ny > maxCountIndexTiles {
		ix.counts = nil
		return
	}
	w := nx + 1
	sums := make([]int64, w*(ny+1))
	if ix.dense != nil {
		for id, slot := range ix.dense {
			if slot >= 0 {
				tx, ty := id%nx, id/nx
				sums[(ty+1)*w+tx+1] = int64(len(ix.tiles[slot].classes[ClassA]))
			}
		}
	} else {
		for id, slot := range ix.sparse {
			tx, ty := int(id)%nx, int(id)/nx
			sums[(ty+1)*w+tx+1] = int64(len(ix.tiles[slot].classes[ClassA]))
		}
	}
	for ty := 1; ty <= ny; ty++ {
		row, prev := sums[ty*w:(ty+1)*w], sums[(ty-1)*w:ty*w]
		run := int64(0)
		for tx := 1; tx <= nx; tx++ {
			run += row[tx]
			row[tx] = run + prev[tx]
		}
	}
	ix.counts = &countIndex{nx: nx, sums: sums}
}
