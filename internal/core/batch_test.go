package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestBatchStrategiesAgree: queries-based and tiles-based must produce the
// same per-query result sets, serial and parallel, matching one-at-a-time
// evaluation.
func TestBatchStrategiesAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(61))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 16, NY: 16})

	queries := make([]geom.Rect, 200)
	for i := range queries {
		queries[i] = randWindow(rnd, 0.2)
	}

	want := make([][]spatial.ID, len(queries))
	for i, w := range queries {
		want[i] = sortIDs(ix.WindowIDs(w, nil))
	}

	for _, strategy := range []BatchStrategy{QueriesBased, TilesBased} {
		for _, threads := range []int{1, 4} {
			got := make([][]spatial.ID, len(queries))
			var mu sync.Mutex
			ix.BatchWindow(queries, strategy, threads, func(q int, e spatial.Entry) {
				mu.Lock()
				got[q] = append(got[q], e.ID)
				mu.Unlock()
			})
			for i := range queries {
				context := strategy.String()
				sameIDs(t, got[i], want[i], context)
			}
		}
	}
}

// TestBatchWindowCounts checks the count aggregation helper and that
// counts match brute force.
func TestBatchWindowCounts(t *testing.T) {
	rnd := rand.New(rand.NewSource(62))
	ix, d := buildRandom(rnd, 1000, 0.08, Options{NX: 8, NY: 8})
	queries := make([]geom.Rect, 60)
	for i := range queries {
		queries[i] = randWindow(rnd, 0.3)
	}
	for _, strategy := range []BatchStrategy{QueriesBased, TilesBased} {
		counts := ix.BatchWindowCounts(queries, strategy, 3)
		for i, w := range queries {
			if want := len(spatial.BruteWindow(d.Entries, w)); counts[i] != want {
				t.Fatalf("%v: query %d count %d, want %d", strategy, i, counts[i], want)
			}
		}
	}
}

// TestBatchEmptyInputs: no queries, and queries that miss the space.
func TestBatchEmptyInputs(t *testing.T) {
	rnd := rand.New(rand.NewSource(63))
	ix, _ := buildRandom(rnd, 100, 0.1, Options{NX: 4, NY: 4})
	if got := ix.BatchWindowCounts(nil, TilesBased, 2); len(got) != 0 {
		t.Error("nil queries should return empty counts")
	}
	miss := []geom.Rect{{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}}
	for _, strategy := range []BatchStrategy{QueriesBased, TilesBased} {
		if got := ix.BatchWindowCounts(miss, strategy, 2); got[0] != 0 {
			t.Errorf("%v: out-of-space query returned %d", strategy, got[0])
		}
	}
}

// TestBatchStrategyString covers the Stringer.
func TestBatchStrategyString(t *testing.T) {
	if QueriesBased.String() != "queries-based" || TilesBased.String() != "tiles-based" {
		t.Error("BatchStrategy.String wrong")
	}
}

// TestBatchDefaultThreads: threads <= 0 must select NumCPU and still be
// correct.
func TestBatchDefaultThreads(t *testing.T) {
	rnd := rand.New(rand.NewSource(64))
	ix, d := buildRandom(rnd, 500, 0.05, Options{NX: 8, NY: 8})
	queries := []geom.Rect{randWindow(rnd, 0.4), randWindow(rnd, 0.1)}
	counts := ix.BatchWindowCounts(queries, TilesBased, 0)
	for i, w := range queries {
		if want := len(spatial.BruteWindow(d.Entries, w)); counts[i] != want {
			t.Fatalf("query %d count %d, want %d", i, counts[i], want)
		}
	}
}
