package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// randRects draws n random rectangles inside the unit square with sides up
// to maxSide. Deterministic for a given seed.
func randRects(rnd *rand.Rand, n int, maxSide float64) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x := rnd.Float64()
		y := rnd.Float64()
		w := rnd.Float64() * maxSide
		h := rnd.Float64() * maxSide
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
	}
	return rects
}

// randWindow draws a random window, occasionally sticking out of the unit
// square to exercise clamping.
func randWindow(rnd *rand.Rand, maxSide float64) geom.Rect {
	x := rnd.Float64()*1.2 - 0.1
	y := rnd.Float64()*1.2 - 0.1
	w := rnd.Float64() * maxSide
	h := rnd.Float64() * maxSide
	return geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
}

// sortIDs sorts an ID slice in place and returns it.
func sortIDs(ids []spatial.ID) []spatial.ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sameIDs fails the test if the two ID sets differ (after sorting).
func sameIDs(t *testing.T, got, want []spatial.ID, context string) {
	t.Helper()
	sortIDs(got)
	sortIDs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", context, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %d, want %d", context, i, got[i], want[i])
		}
	}
}

// noDuplicates fails if an ID appears more than once.
func noDuplicates(t *testing.T, ids []spatial.ID, context string) {
	t.Helper()
	seen := make(map[spatial.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("%s: duplicate result %d", context, id)
		}
		seen[id] = true
	}
}

// buildRandom builds an index over n random rects with the given options.
func buildRandom(rnd *rand.Rand, n int, maxSide float64, opts Options) (*Index, *spatial.Dataset) {
	d := spatial.NewDataset(randRects(rnd, n, maxSide))
	return Build(d, opts), d
}
