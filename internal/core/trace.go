package core

import "time"

// Trace is the per-query observability record: the full Stats counter
// set plus wall-clock stage timings. It is opt-in and allocation-lean —
// a traced query carries exactly one Trace for its whole evaluation,
// attached through ViewTraced, and the untraced hot path pays only the
// nil checks that the Stats instrumentation already performs.
//
// The embedded counters record the filtering work the paper's lemmas
// minimize (tiles visited, per-class entries examined, comparisons,
// duplicates avoided wholesale); RefineNS additionally separates the
// wall time spent inside exact-geometry refinement tests from the
// filtering scan, so a slow exact query can be attributed to the filter
// step (grid/partition shape) or to the refinement step (geometry
// complexity). ElapsedNS is the whole evaluation, stamped by Finish.
type Trace struct {
	Stats

	// Kind names the query type ("window", "disk", "knn", "join", ...);
	// set by the caller that starts the trace.
	Kind string
	// ElapsedNS is the total evaluation wall time, set by Finish.
	ElapsedNS int64
	// RefineNS is the wall time spent in exact-geometry refinement tests
	// (WindowExact, DiskExact, KNNExact). Zero for filter-only queries.
	RefineNS int64

	// Parallel reports that the query was evaluated by the chunked
	// intra-query parallel kernel (see parallelquery.go); Chunks then
	// holds one span per tile-row chunk, in row order.
	Parallel bool
	Chunks   []ChunkSpan
}

// ChunkSpan records one tile-row chunk of a parallel window query: the
// inclusive row range it scanned, its wall time inside the worker, and
// how many entries it contributed.
type ChunkSpan struct {
	Row0, Row1 int
	ElapsedNS  int64
	Results    int
}

// Finish stamps the total elapsed time from the given start.
func (t *Trace) Finish(start time.Time) { t.ElapsedNS = time.Since(start).Nanoseconds() }

// Elapsed returns the total evaluation time.
func (t *Trace) Elapsed() time.Duration { return time.Duration(t.ElapsedNS) }

// FilterNS returns the wall time attributed to the filtering step: the
// total minus the refinement share.
func (t *Trace) FilterNS() int64 {
	if f := t.ElapsedNS - t.RefineNS; f > 0 {
		return f
	}
	return 0
}

// Reset zeroes the trace for reuse.
func (t *Trace) Reset() { *t = Trace{} }

// ViewTraced returns a read view like View whose queries accumulate both
// counters and stage timings into tr. Like stats views, any number of
// traced views can run concurrently as long as each has a private Trace.
func (ix *Index) ViewTraced(tr *Trace) *Index {
	cp := ix.View(&tr.Stats)
	cp.trace = tr
	return cp
}
