package core

import (
	"math/rand"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// randGeoms draws a mix of polygons, linestrings and rectangles, each
// confined to a random box of side up to maxSide.
func randGeoms(rnd *rand.Rand, n int, maxSide float64) []geom.Geometry {
	out := make([]geom.Geometry, n)
	for i := range out {
		x := rnd.Float64()
		y := rnd.Float64()
		s := 0.2*maxSide + rnd.Float64()*0.8*maxSide
		switch rnd.Intn(3) {
		case 0: // triangle
			out[i] = geom.NewPolygon(
				geom.Point{X: x, Y: y},
				geom.Point{X: x + s, Y: y + 0.2*s},
				geom.Point{X: x + 0.3*s, Y: y + s},
			)
		case 1: // zig-zag linestring
			out[i] = geom.NewLineString(
				geom.Point{X: x, Y: y},
				geom.Point{X: x + 0.5*s, Y: y + s},
				geom.Point{X: x + s, Y: y + 0.2*s},
			)
		default: // plain rectangle
			out[i] = geom.RectGeometry(geom.Rect{MinX: x, MinY: y, MaxX: x + s, MaxY: y + s})
		}
	}
	return out
}

// TestWindowExactAllModes: all three refinement modes must return exactly
// the set of objects whose exact geometry intersects the window.
func TestWindowExactAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(51))
	d := spatial.NewGeomDataset(randGeoms(rnd, 500, 0.1))
	for _, dec := range []bool{false, true} {
		ix := Build(d, Options{NX: 16, NY: 16, Decompose: dec})
		for q := 0; q < 50; q++ {
			w := randWindow(rnd, 0.3)
			want := spatial.BruteWindowExact(d, w)
			for _, mode := range []RefineMode{RefineSimple, RefineAvoid, RefineAvoidPlus} {
				var got []spatial.ID
				ix.WindowExact(w, mode, func(id spatial.ID) { got = append(got, id) })
				noDuplicates(t, got, mode.String())
				sameIDs(t, got, want, "window exact "+mode.String())
			}
		}
	}
}

// TestDiskExactModes: disk refinement modes must agree with brute force.
func TestDiskExactModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(52))
	d := spatial.NewGeomDataset(randGeoms(rnd, 400, 0.1))
	ix := Build(d, Options{NX: 16, NY: 16})
	for q := 0; q < 50; q++ {
		c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		radius := rnd.Float64() * 0.25
		want := spatial.BruteDiskExact(d, c, radius)
		for _, mode := range []RefineMode{RefineSimple, RefineAvoid} {
			var got []spatial.ID
			ix.DiskExact(c, radius, mode, func(id spatial.ID) { got = append(got, id) })
			noDuplicates(t, got, "disk exact")
			sameIDs(t, got, want, "disk exact "+mode.String())
		}
	}
}

// TestRefAvoidReducesRefinements reproduces the paper's Figure 6 claim
// qualitatively: the Lemma 5 secondary filter eliminates the bulk of
// refinement tests for window queries on small objects.
func TestRefAvoidReducesRefinements(t *testing.T) {
	rnd := rand.New(rand.NewSource(53))
	d := spatial.NewGeomDataset(randGeoms(rnd, 3000, 0.01))
	ix := Build(d, Options{NX: 32, NY: 32})
	ix.Stats = &Stats{}

	queries := make([]geom.Rect, 50)
	for i := range queries {
		x, y := rnd.Float64()*0.8, rnd.Float64()*0.8
		queries[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 0.15, MaxY: y + 0.15}
	}

	run := func(mode RefineMode) (refines, hits int64) {
		ix.Stats.Reset()
		for _, w := range queries {
			ix.WindowExact(w, mode, func(spatial.ID) {})
		}
		return ix.Stats.RefinementTests, ix.Stats.SecondaryFilterHits
	}

	simpleRefines, _ := run(RefineSimple)
	avoidRefines, avoidHits := run(RefineAvoid)
	plusRefines, plusHits := run(RefineAvoidPlus)

	if avoidHits == 0 || plusHits == 0 {
		t.Fatal("secondary filter never fired")
	}
	// The paper reports >90% of candidates skip refinement; small objects
	// inside a much larger window are nearly always covered in one
	// dimension, so assert a strong reduction.
	if avoidRefines*2 > simpleRefines {
		t.Errorf("RefAvoid refinements %d not below half of Simple %d", avoidRefines, simpleRefines)
	}
	if plusRefines != avoidRefines {
		t.Errorf("RefAvoid+ refinements %d differ from RefAvoid %d (must accept the same set)",
			plusRefines, avoidRefines)
	}
}

// TestRefAvoidPlusSavesComparisons: RefAvoid+ must execute fewer secondary
// filter coordinate comparisons than RefAvoid; we proxy by checking it
// never does more work (same hits, same refinements) and that class
// knowledge holds: every secondary-filter hit is a true result.
func TestSecondaryFilterSoundness(t *testing.T) {
	rnd := rand.New(rand.NewSource(54))
	d := spatial.NewGeomDataset(randGeoms(rnd, 800, 0.05))
	ix := Build(d, Options{NX: 16, NY: 16})
	for q := 0; q < 40; q++ {
		w := randWindow(rnd, 0.25)
		var got []spatial.ID
		ix.WindowExact(w, RefineAvoidPlus, func(id spatial.ID) { got = append(got, id) })
		for _, id := range got {
			if !d.Geom(id).IntersectsRect(w) {
				t.Fatalf("object %d reported but does not intersect %v", id, w)
			}
		}
	}
}

// TestWindowExactRequiresDataset documents the API contract.
func TestWindowExactRequiresDataset(t *testing.T) {
	ix := New(Options{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic without dataset")
		}
	}()
	ix.WindowExact(geom.Rect{MaxX: 1, MaxY: 1}, RefineSimple, func(spatial.ID) {})
}

// TestRefineModeString covers the Stringer.
func TestRefineModeString(t *testing.T) {
	if RefineSimple.String() != "Simple" || RefineAvoid.String() != "RefAvoid" ||
		RefineAvoidPlus.String() != "RefAvoid+" || RefineMode(9).String() != "RefineMode(?)" {
		t.Error("RefineMode.String wrong")
	}
}
