package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// BatchStrategy selects how a batch of range queries is evaluated
// (Section VI of the paper).
type BatchStrategy int

const (
	// QueriesBased evaluates every query independently; in parallel mode
	// queries are assigned to threads round-robin. Simple but cache
	// agnostic: each query touches tiles all over memory.
	QueriesBased BatchStrategy = iota
	// TilesBased first accumulates, per tile, the subtasks of all queries
	// intersecting it, then processes tile by tile. Each tile's secondary
	// partitions stay hot in cache across all of its subtasks, which is
	// what makes the strategy scale with threads.
	TilesBased
)

// String implements fmt.Stringer.
func (s BatchStrategy) String() string {
	if s == TilesBased {
		return "tiles-based"
	}
	return "queries-based"
}

// normalizeBatch resolves the parameter contract every batch entry point
// (BatchWindow, BatchDisk and their Counts forms) shares: any strategy
// other than TilesBased — including out-of-range values — falls back to
// the QueriesBased zero value, and threads <= 0 selects
// runtime.NumCPU(). Keeping this in one place guarantees the window and
// disk paths cannot drift apart again.
func normalizeBatch(strategy BatchStrategy, threads int) (BatchStrategy, int) {
	if strategy != TilesBased {
		strategy = QueriesBased
	}
	if threads <= 0 {
		threads = defaultThreads()
	}
	return strategy, threads
}

// BatchWindow evaluates a batch of window queries and streams results to
// fn, which receives the query index alongside each matching entry. Each
// (query, object) pair is delivered exactly once, with no duplicates.
// With threads > 1, fn is invoked concurrently and must be safe for
// concurrent use; with TilesBased this holds even for a single query
// index, because a query's tiles are processed by different workers.
// Unknown strategies fall back to QueriesBased; threads <= 0 selects
// runtime.NumCPU(). BatchDisk resolves both identically.
func (ix *Index) BatchWindow(queries []geom.Rect, strategy BatchStrategy, threads int, fn func(q int, e spatial.Entry)) {
	strategy, threads = normalizeBatch(strategy, threads)
	if strategy == TilesBased {
		ix.batchTilesBased(queries, threads, fn)
		return
	}
	ix.batchQueriesBased(queries, threads, fn)
}

// BatchWindowCounts evaluates the batch and returns the result cardinality
// of every query. This is the form the batch experiments use.
func (ix *Index) BatchWindowCounts(queries []geom.Rect, strategy BatchStrategy, threads int) []int {
	counts := make([]int64, len(queries))
	ix.BatchWindow(queries, strategy, threads, func(q int, _ spatial.Entry) {
		atomic.AddInt64(&counts[q], 1)
	})
	out := make([]int, len(queries))
	for i, c := range counts {
		out[i] = int(c)
	}
	return out
}

func (ix *Index) batchQueriesBased(queries []geom.Rect, threads int, fn func(int, spatial.Entry)) {
	if threads == 1 {
		for q := range queries {
			ix.Window(queries[q], func(e spatial.Entry) { fn(q, e) })
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Round-robin assignment, as in the paper.
			for q := w; q < len(queries); q += threads {
				ix.Window(queries[q], func(e spatial.Entry) { fn(q, e) })
			}
		}(w)
	}
	wg.Wait()
}

// tileSubtasks is the per-tile accumulation of step one of tiles-based
// processing: the indices of all queries that intersect the tile.
type tileSubtasks struct {
	slot    int32
	queries []int32
}

func (ix *Index) batchTilesBased(queries []geom.Rect, threads int, fn func(int, spatial.Entry)) {
	// Step 1: accumulate subtasks per non-empty tile, with a counting
	// sweep first (the same two-pass idiom as the parallel build): the
	// per-slot buckets are carved exact-size out of one slab, so large
	// batches never pay append regrowth or per-bucket allocations.
	counts := make([]int32, len(ix.tiles))
	total := 0
	for q := range queries {
		w := queries[q]
		if !w.Valid() {
			continue
		}
		qx0, qy0, qx1, qy1 := ix.g.CoverRect(w)
		for ty := qy0; ty <= qy1; ty++ {
			for tx := qx0; tx <= qx1; tx++ {
				if slot := ix.slotAt(tx, ty); slot >= 0 {
					counts[slot]++
					total++
				}
			}
		}
	}
	slab := make([]int32, total)
	perSlot := make([][]int32, len(ix.tiles))
	numTasks, off := 0, 0
	for slot, ct := range counts {
		if ct > 0 {
			perSlot[slot] = slab[off : off : off+int(ct)]
			off += int(ct)
			numTasks++
		}
	}
	for q := range queries {
		w := queries[q]
		if !w.Valid() {
			continue
		}
		qx0, qy0, qx1, qy1 := ix.g.CoverRect(w)
		for ty := qy0; ty <= qy1; ty++ {
			for tx := qx0; tx <= qx1; tx++ {
				if slot := ix.slotAt(tx, ty); slot >= 0 {
					perSlot[slot] = append(perSlot[slot], int32(q))
				}
			}
		}
	}
	tasks := make([]tileSubtasks, 0, numTasks)
	for slot, qs := range perSlot {
		if len(qs) > 0 {
			tasks = append(tasks, tileSubtasks{slot: int32(slot), queries: qs})
		}
	}

	// Step 2: process tile by tile; each worker owns whole tiles so the
	// tile's secondary partitions stay cache resident across subtasks.
	process := func(task tileSubtasks) {
		t := &ix.tiles[task.slot]
		tid := ix.tileIDs[task.slot]
		tx, ty := ix.g.TileCoords(int(tid))
		for _, q := range task.queries {
			w := queries[q]
			qx0, qy0, _, _ := ix.g.CoverRect(w)
			qi := int(q)
			ix.windowOnTile(t, tx, ty, qx0, qy0, w, func(e spatial.Entry) { fn(qi, e) })
		}
	}

	if threads == 1 {
		for _, task := range tasks {
			process(task)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(tasks)) {
					return
				}
				process(tasks[i])
			}
		}()
	}
	wg.Wait()
}

// defaultThreads is the worker count used when the caller passes
// threads <= 0.
func defaultThreads() int { return runtime.NumCPU() }

// slotAt returns the tile-pool slot for (tx,ty), or -1 when the tile is
// empty.
func (ix *Index) slotAt(tx, ty int) int32 {
	id := int32(ix.g.TileID(tx, ty))
	if ix.dense != nil {
		return ix.dense[id]
	}
	if slot, ok := ix.sparse[id]; ok {
		return slot
	}
	return -1
}
