package core

// PartitionStats summarizes the shape of the two-layer partitioning the
// way the paper's tuning experiments (Figure 7, Table 5) and Aji et
// al.'s partitioning study look at it: how many tiles carry data, how
// the per-tile load is distributed (mean, max, skew), how much grid
// replication costs, and how the stored entries split across the four
// secondary classes. Operators use it to judge whether the grid
// granularity still fits the data — a high skew ratio or a boundary
// ratio creeping up after many live updates both argue for a rebuild at
// a different grid size.
type PartitionStats struct {
	// GridTiles is the total tile count of the primary grid (NX*NY).
	GridTiles int
	// OccupiedTiles counts tiles holding at least one entry.
	OccupiedTiles int
	// Objects is the number of distinct indexed objects.
	Objects int
	// Replicas is the number of stored entries including replication; an
	// object intersecting t tiles contributes t replicas.
	Replicas int
	// ClassCounts is the number of stored entries per secondary class
	// (A, B, C, D). Every object has exactly one class-A copy — the tile
	// where its MBR begins — so ClassCounts[0] == Objects.
	ClassCounts [4]int
	// MaxTileEntries is the entry count of the fullest tile.
	MaxTileEntries int
	// MeanTileEntries is Replicas / OccupiedTiles (0 for an empty index).
	MeanTileEntries float64
	// SkewRatio is MaxTileEntries / MeanTileEntries — 1.0 for a perfectly
	// even spread, large when hot tiles dominate (0 for an empty index).
	SkewRatio float64
	// ReplicationFactor is Replicas / Objects (0 for an empty index).
	ReplicationFactor float64
	// BoundaryRatio is the fraction of stored entries that are replica
	// copies beyond the object's class-A home tile, i.e. entries in
	// classes B, C, and D: (Replicas - ClassCounts[0]) / Replicas. It is
	// the share of storage (and of border-tile scan work) paid for
	// objects crossing tile boundaries.
	BoundaryRatio float64
	// DecomposedTiles counts tiles whose 2-layer+ sorted tables are built
	// and fresh; tiles dirtied by updates fall back to plain scans until
	// the next decomposed rebuild.
	DecomposedTiles int
}

// PartitionStats walks the tile directory once (O(occupied tiles)) and
// returns the current partitioning summary. On a static index or an
// immutable snapshot it is safe to call concurrently with queries; on a
// directly mutated index it requires the same external synchronization
// as updates.
func (ix *Index) PartitionStats() PartitionStats {
	ps := PartitionStats{
		GridTiles: ix.g.NX * ix.g.NY,
		Objects:   ix.size,
	}
	for i := range ix.tiles {
		t := &ix.tiles[i]
		n := t.size()
		if n == 0 {
			continue
		}
		ps.OccupiedTiles++
		ps.Replicas += n
		if n > ps.MaxTileEntries {
			ps.MaxTileEntries = n
		}
		for c := 0; c < 4; c++ {
			ps.ClassCounts[c] += len(t.classes[c])
		}
		if t.dec != nil {
			ps.DecomposedTiles++
		}
	}
	if ps.OccupiedTiles > 0 {
		ps.MeanTileEntries = float64(ps.Replicas) / float64(ps.OccupiedTiles)
		ps.SkewRatio = float64(ps.MaxTileEntries) / ps.MeanTileEntries
	}
	if ps.Objects > 0 {
		ps.ReplicationFactor = float64(ps.Replicas) / float64(ps.Objects)
	}
	if ps.Replicas > 0 {
		ps.BoundaryRatio = float64(ps.Replicas-ps.ClassCounts[0]) / float64(ps.Replicas)
	}
	return ps
}
