package core

import (
	"slices"
	"sort"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// decPair is one row of a decomposed table: a single MBR coordinate plus a
// reference (index) into the owning class slice, following the
// Decomposition Storage Model (Section IV-C).
type decPair struct {
	coord float64
	ref   uint32
}

// decTable is a decomposed table sorted ascending by coordinate.
type decTable []decPair

// prefixLE returns the number of leading pairs with coord <= v, i.e. the
// entries satisfying an r.dl <= W.du style condition (Lemma 3).
func (t decTable) prefixLE(v float64) int {
	return sort.Search(len(t), func(i int) bool { return t[i].coord > v })
}

// suffixGE returns the start of the trailing pairs with coord >= v, i.e.
// the entries satisfying an r.du >= W.dl style condition (Lemma 4).
func (t decTable) suffixGE(v float64) int {
	return sort.Search(len(t), func(i int) bool { return t[i].coord >= v })
}

// decClass holds the decomposed tables of one secondary partition. Only
// the tables Table II of the paper requires are built:
//
//	class A: xl, xu, yl, yu
//	class B: xl, xu, yu
//	class C: xu, yl, yu
//	class D: xu, yu
type decClass struct {
	xl, xu, yl, yu decTable
}

// decTile holds the decomposed tables of all four classes of one tile.
type decTile struct {
	cls [4]decClass
}

func (d *decTile) footprint() int {
	const pairBytes = 16
	n := 0
	for c := range d.cls {
		n += len(d.cls[c].xl) + len(d.cls[c].xu) + len(d.cls[c].yl) + len(d.cls[c].yu)
	}
	return n * pairBytes
}

// buildTable extracts one coordinate from every entry and sorts
// (slices.SortFunc: pdqsort with no reflection — this is the hot loop of
// decomposed construction). The sort is deterministic for a given input
// order, so identical class slices always yield identical tables.
func buildTable(entries []spatial.Entry, coord func(*spatial.Entry) float64) decTable {
	t := make(decTable, len(entries))
	for i := range entries {
		t[i] = decPair{coord: coord(&entries[i]), ref: uint32(i)}
	}
	slices.SortFunc(t, func(a, b decPair) int {
		switch {
		case a.coord < b.coord:
			return -1
		case a.coord > b.coord:
			return 1
		default:
			return 0
		}
	})
	return t
}

// buildDecTile constructs the decomposed tables of one tile.
func buildDecTile(t *tile) *decTile {
	d := &decTile{}
	for c := ClassA; c <= ClassD; c++ {
		entries := t.classes[c]
		if len(entries) == 0 {
			continue
		}
		if c == ClassA || c == ClassB {
			d.cls[c].xl = buildTable(entries, func(e *spatial.Entry) float64 { return e.Rect.MinX })
		}
		d.cls[c].xu = buildTable(entries, func(e *spatial.Entry) float64 { return e.Rect.MaxX })
		if c == ClassA || c == ClassC {
			d.cls[c].yl = buildTable(entries, func(e *spatial.Entry) float64 { return e.Rect.MinY })
		}
		d.cls[c].yu = buildTable(entries, func(e *spatial.Entry) float64 { return e.Rect.MaxY })
	}
	return d
}

// BuildDecomposed (re)builds the sorted decomposed tables for every tile
// that does not have current ones, turning the index into its "2-layer+"
// variant. Safe to call repeatedly; after updates only stale tiles are
// rebuilt. With Options.BuildThreads resolving to more than one worker
// (and enough tiles to matter), the per-tile table construction is fanned
// across a worker pool — tiles are independent, so the result is
// identical to the sequential build.
func (ix *Index) BuildDecomposed() {
	ix.opts.Decompose = true
	// This is the batch refresh point after updates, so the count
	// pushdown's prefix table is rebuilt here too.
	defer ix.buildCountIndex()
	if threads := resolveBuildThreads(ix.opts.BuildThreads); threads > 1 &&
		len(ix.tiles) >= minParallelDecTiles {
		ix.buildDecomposedParallel(threads)
		return
	}
	for i := range ix.tiles {
		if t := &ix.tiles[i]; t.dec == nil {
			t.dec = buildDecTile(t)
		}
	}
}

// Decomposed reports whether the index currently maintains decomposed
// tables (the 2-layer+ variant).
func (ix *Index) Decomposed() bool { return ix.opts.Decompose }

// decComparison describes one pending comparison against the window,
// bound to the decomposed table that can answer it. kind selects the
// coordinate verified when another comparison wins the binary search
// (closure-free: these live on the stack of one tile visit).
type decComparison struct {
	table decTable
	bound float64
	kind  uint8 // cmpXU, cmpXL, cmpYU, cmpYL
}

// Comparison kinds; *U kinds are suffix searches (coord >= bound), *L
// kinds are prefix searches (coord <= bound).
const (
	cmpXU = iota // r.MaxX >= w.MinX
	cmpXL        // r.MinX <= w.MaxX
	cmpYU        // r.MaxY >= w.MinY
	cmpYL        // r.MinY <= w.MaxY
)

// verify checks the comparison directly against an entry's MBR.
func (c *decComparison) verify(e *spatial.Entry) bool {
	switch c.kind {
	case cmpXU:
		return e.Rect.MaxX >= c.bound
	case cmpXL:
		return e.Rect.MinX <= c.bound
	case cmpYU:
		return e.Rect.MaxY >= c.bound
	default:
		return e.Rect.MinY <= c.bound
	}
}

// isLE reports whether the comparison selects a sorted-table prefix.
func (c *decComparison) isLE() bool { return c.kind == cmpXL || c.kind == cmpYL }

// decSmallClass is the partition size below which a plain scan beats the
// binary-search path (searching costs ~log n probes with indirection; a
// handful of entries scan faster directly).
const decSmallClass = 16

// windowOnTileDecomposed answers one tile using the decomposed tables.
// Following Section IV-C, one comparison — the one in the dimension the
// window covers least, i.e. the most selective — is resolved by binary
// search, and only the qualifying run is verified against the remaining
// comparisons.
func (ix *Index) windowOnTileDecomposed(t *tile, tx, ty int, first, top bool, w geom.Rect, plan tileComparisonPlan, fn func(spatial.Entry)) {
	plans := classPlans(first, top, plan)
	// Selectivity estimates are only needed when some partition is big
	// enough for the binary-search path.
	var frac [4]float64
	needFrac := false
	for c := ClassA; c <= ClassD; c++ {
		if plans[c].scan && len(t.classes[c]) >= decSmallClass {
			needFrac = true
			break
		}
	}
	if needFrac {
		frac = ix.compFractions(tx, ty, w)
	}
	for c := ClassA; c <= ClassD; c++ {
		if plans[c].scan {
			ix.decClassQuery(t, c, w, plans[c].plan, &frac, fn)
		}
	}
}

// compFractions returns, per comparison kind, the fraction of tile
// (tx,ty)'s extent satisfying it (smaller = more selective) — the
// paper's "dimension covered the least" heuristic for picking the one
// comparison resolved by binary search.
func (ix *Index) compFractions(tx, ty int, w geom.Rect) [4]float64 {
	tMin := ix.g.TileMin(tx, ty)
	invW, invH := ix.g.InvCellW(), ix.g.InvCellH()
	var frac [4]float64
	frac[cmpXU] = (tMin.X + ix.g.CellW() - w.MinX) * invW
	frac[cmpXL] = (w.MaxX - tMin.X) * invW
	frac[cmpYU] = (tMin.Y + ix.g.CellH() - w.MinY) * invH
	frac[cmpYL] = (w.MaxY - tMin.Y) * invH
	return frac
}

// decClassQuery evaluates one secondary partition through its decomposed
// tables.
func (ix *Index) decClassQuery(t *tile, c Class, w geom.Rect, p tileComparisonPlan, frac *[4]float64, fn func(spatial.Entry)) {
	entries := t.classes[c]
	if len(entries) == 0 {
		return
	}
	if len(entries) < decSmallClass {
		ix.scanClass(entries, w, p, fn)
		return
	}
	if ix.Stats != nil {
		ix.Stats.PartitionsScanned++
	}
	d := &t.dec.cls[c]

	// Collect the comparisons this class still needs.
	var comps [4]decComparison
	n := 0
	if p.needXU {
		comps[n] = decComparison{table: d.xu, bound: w.MinX, kind: cmpXU}
		n++
	}
	if p.needXL {
		comps[n] = decComparison{table: d.xl, bound: w.MaxX, kind: cmpXL}
		n++
	}
	if p.needYU {
		comps[n] = decComparison{table: d.yu, bound: w.MinY, kind: cmpYU}
		n++
	}
	if p.needYL {
		comps[n] = decComparison{table: d.yl, bound: w.MaxY, kind: cmpYL}
		n++
	}

	if n == 0 {
		// Every entry of the class qualifies: emit without comparisons.
		if ix.Stats != nil {
			ix.Stats.EntriesScanned += int64(len(entries))
			ix.Stats.Results += int64(len(entries))
		}
		for i := range entries {
			fn(entries[i])
		}
		return
	}

	// Pick the most selective comparison by the paper's "dimension
	// covered the least" heuristic (one binary search total) and resolve
	// it; the qualifying run is verified against the rest.
	best := 0
	for i := 1; i < n; i++ {
		if frac[comps[i].kind] < frac[comps[best].kind] {
			best = i
		}
	}
	var bestLo, bestHi int
	if comps[best].isLE() {
		bestLo, bestHi = 0, comps[best].table.prefixLE(comps[best].bound)
	} else {
		bestLo, bestHi = comps[best].table.suffixGE(comps[best].bound), len(comps[best].table)
	}
	if ix.Stats != nil {
		ix.Stats.BinarySearches++
	}

	table := comps[best].table
	stats := ix.Stats
	if stats != nil {
		stats.EntriesScanned += int64(bestHi - bestLo)
	}
	for i := bestLo; i < bestHi; i++ {
		e := &entries[table[i].ref]
		ok := true
		for j := 0; j < n; j++ {
			if j == best {
				continue
			}
			if stats != nil {
				stats.Comparisons++
			}
			if !comps[j].verify(e) {
				ok = false
				break
			}
		}
		if ok {
			if stats != nil {
				stats.Results++
			}
			fn(*e)
		}
	}
}
