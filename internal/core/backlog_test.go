package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/twolayer/twolayer/internal/spatial"
)

// TestLiveBacklogRejection pins the backpressure semantics
// deterministically: a Journal hook stalls the apply loop with one
// mutation pending, so a second submission against MaxBacklog=1 must be
// refused with ErrBacklogFull — immediately, without blocking — and the
// rejection must surface in Stats. Releasing the stall drains the
// backlog and submissions flow again.
func TestLiveBacklogRejection(t *testing.T) {
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	l := NewLive(New(Options{NX: 8, NY: 8, Space: unitSquare}), LiveOptions{
		MaxBacklog: 1,
		Journal: func(epoch uint64, muts []Mutation) error {
			once.Do(func() { close(gate) })
			<-release
			return nil
		},
	})
	defer l.Close()

	ent := func(id spatial.ID) spatial.Entry {
		return spatial.Entry{ID: id, Rect: randRects(rand.New(rand.NewSource(int64(id))), 1, 0.05)[0]}
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Apply([]Mutation{{Entry: ent(1)}})
		done <- err
	}()
	<-gate // the apply loop is stalled inside Journal; pending == 1

	if _, err := l.Apply([]Mutation{{Entry: ent(2)}}); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("second Apply error = %v, want ErrBacklogFull", err)
	}
	st := l.Stats()
	if st.BacklogLimit != 1 {
		t.Fatalf("BacklogLimit = %d, want 1", st.BacklogLimit)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Pending != 1 {
		t.Fatalf("Pending = %d, want 1", st.Pending)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled Apply failed: %v", err)
	}
	// Backlog drained: the valve reopens.
	if _, err := l.Apply([]Mutation{{Entry: ent(3)}}); err != nil {
		t.Fatalf("Apply after drain failed: %v", err)
	}
	if got := l.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected after drain = %d, want still 1", got)
	}
}

// TestLiveBacklogUnbounded: MaxBacklog 0 never rejects (the
// pre-backpressure behavior).
func TestLiveBacklogUnbounded(t *testing.T) {
	l := NewLive(New(Options{NX: 8, NY: 8, Space: unitSquare}), LiveOptions{})
	defer l.Close()
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		if _, err := l.Apply([]Mutation{{Entry: spatial.Entry{
			ID: spatial.ID(i), Rect: randRects(rnd, 1, 0.05)[0],
		}}}); err != nil {
			t.Fatalf("Apply %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.BacklogLimit != 0 || st.Rejected != 0 {
		t.Fatalf("BacklogLimit/Rejected = %d/%d, want 0/0", st.BacklogLimit, st.Rejected)
	}
}

// TestParallelWindowNoGoroutineLeak is the fan-out leak regression: the
// chunked parallel window kernel spawns a worker pool per query, and a
// delivery that stops early (the server's cancellation/shedding path —
// until returns false) must still leave no goroutine behind. Hammer
// early-stopped and completed parallel queries, then require the
// goroutine count to return to baseline.
func TestParallelWindowNoGoroutineLeak(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	ix, _ := buildRandom(rnd, 5000, 0.02, Options{NX: 64, NY: 64, Space: unitSquare})
	w := unitSquare // full-space cover: every tile row participates

	baseline := runtime.NumGoroutine()
	ix0, iy0, ix1, iy1 := ix.g.CoverRect(w)
	for i := 0; i < 100; i++ {
		stopAfter := -1 // run to completion
		if i%2 == 0 {
			stopAfter = 1 + i%7 // abort delivery mid-stream
		}
		seen := 0
		ix.windowChunked(w, ix0, iy0, ix1, iy1, 4, func(spatial.Entry) bool {
			seen++
			return stopAfter < 0 || seen < stopAfter
		})
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines did not return to baseline %d (at %d)\n%s",
				baseline, runtime.NumGoroutine(), buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
