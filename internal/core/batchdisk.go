package core

import (
	"sync"
	"sync/atomic"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// BatchDisk evaluates a batch of disk queries under the chosen strategy
// (Section VI applies to any range query; disks reuse the per-query tile
// cover between the accumulation and evaluation steps). fn receives the
// query index with each result and must be concurrency-safe when
// threads != 1. Parameter handling matches BatchWindow exactly: unknown
// strategies fall back to QueriesBased, threads <= 0 selects
// runtime.NumCPU().
func (ix *Index) BatchDisk(queries []geom.Disk, strategy BatchStrategy, threads int, fn func(q int, e spatial.Entry)) {
	strategy, threads = normalizeBatch(strategy, threads)
	if strategy == TilesBased {
		ix.batchDiskTilesBased(queries, threads, fn)
		return
	}
	ix.batchDiskQueriesBased(queries, threads, fn)
}

// BatchDiskCounts evaluates the batch and returns per-query result counts.
func (ix *Index) BatchDiskCounts(queries []geom.Disk, strategy BatchStrategy, threads int) []int {
	counts := make([]int64, len(queries))
	ix.BatchDisk(queries, strategy, threads, func(q int, _ spatial.Entry) {
		atomic.AddInt64(&counts[q], 1)
	})
	out := make([]int, len(queries))
	for i, c := range counts {
		out[i] = int(c)
	}
	return out
}

func (ix *Index) batchDiskQueriesBased(queries []geom.Disk, threads int, fn func(int, spatial.Entry)) {
	if threads == 1 {
		for q := range queries {
			ix.Disk(queries[q].Center, queries[q].Radius, func(e spatial.Entry) { fn(q, e) })
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for q := w; q < len(queries); q += threads {
				ix.Disk(queries[q].Center, queries[q].Radius, func(e spatial.Entry) { fn(q, e) })
			}
		}(w)
	}
	wg.Wait()
}

// diskSubtask is one (tile, query) unit of tiles-based disk processing.
type diskSubtask struct {
	slot    int32
	queries []int32
}

func (ix *Index) batchDiskTilesBased(queries []geom.Disk, threads int, fn func(int, spatial.Entry)) {
	// Step 1: compute each disk's tile cover once and accumulate
	// subtasks per tile; the covers are reused during evaluation.
	covers := make([]*diskCover, len(queries))
	perSlot := make([][]int32, len(ix.tiles))
	for q := range queries {
		dc := ix.diskCoverFor(queries[q].Center, queries[q].Radius)
		covers[q] = dc
		if dc == nil {
			continue
		}
		for ty := dc.y0; ty <= dc.y1; ty++ {
			lo, hi := dc.rowMin[ty-dc.y0], dc.rowMax[ty-dc.y0]
			for tx := lo; tx <= hi; tx++ {
				if slot := ix.slotAt(tx, ty); slot >= 0 {
					perSlot[slot] = append(perSlot[slot], int32(q))
				}
			}
		}
	}
	tasks := make([]diskSubtask, 0, len(ix.tiles))
	for slot, qs := range perSlot {
		if len(qs) > 0 {
			tasks = append(tasks, diskSubtask{slot: int32(slot), queries: qs})
		}
	}

	// Step 2: per tile, evaluate every subtask against that tile only.
	process := func(task diskSubtask) {
		t := &ix.tiles[task.slot]
		tx, ty := ix.g.TileCoords(int(ix.tileIDs[task.slot]))
		for _, q := range task.queries {
			disk := queries[q]
			qi := int(q)
			ix.diskOnTile(t, tx, ty, covers[q], disk.Center, disk.Radius,
				disk.Radius*disk.Radius, func(e spatial.Entry) { fn(qi, e) })
		}
	}
	if threads == 1 {
		for _, task := range tasks {
			process(task)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(tasks)) {
					return
				}
				process(tasks[i])
			}
		}()
	}
	wg.Wait()
}
