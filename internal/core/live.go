package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// This file implements the MVCC mutation layer: a Live index accepts
// concurrent Insert/Delete traffic while readers keep querying immutable
// snapshots with zero locks on the hot path.
//
// Readers call Snapshot, an atomic pointer load, and query the returned
// *Index exactly like a static one; a pinned snapshot never changes, so a
// reader sees one consistent epoch for its whole request. Writers submit
// mutations to a single-writer apply loop that batches whatever is
// pending, applies the batch copy-on-write to a clone of the current
// snapshot (CloneCOW: only touched tiles deep-copy their entry storage —
// grid replication keeps the touched-tile set small per mutation), and
// atomically publishes the clone as the next epoch. Submissions block
// until their batch is published, so a writer that got its ack observes
// its own write in every later Snapshot (read-your-writes).
//
// The extended journal version of the paper ("Two-layer Space-oriented
// Partitioning for Non-point Data") studies updatable two-layer grids and
// recommends batch maintenance of the decomposed tables; Live follows
// that advice by re-running BuildDecomposed every RebuildEvery mutations
// on 2-layer+ indices, inside the apply loop, so rebuilds never block
// readers either. The rebuilds follow Options.BuildThreads: with more
// than one worker resolved, stale tiles are redecomposed by a worker
// pool instead of a single sequential sweep.

// ErrLiveClosed is returned for mutations submitted after Close.
var ErrLiveClosed = errors.New("core: live index is closed")

// ErrBacklogFull is returned for mutations submitted while the apply
// loop's pending backlog is at LiveOptions.MaxBacklog. Nothing is
// enqueued; the caller should back off and retry — the backlog drains at
// the publish rate, so an overloaded writer sheds instead of growing the
// queue (and the process's memory) without bound.
var ErrBacklogFull = errors.New("core: live mutation backlog is full")

// LiveOptions tune the apply loop of a Live index.
type LiveOptions struct {
	// MaxBatch caps the mutations applied per published snapshot.
	// Larger batches amortize the per-publish snapshot clone over more
	// mutations; smaller ones reduce writer-observed latency.
	// Defaults to 256.
	MaxBatch int
	// QueueDepth is the capacity of the mutation queue; submissions
	// beyond it block (backpressure). Defaults to 1024.
	QueueDepth int
	// RebuildEvery re-runs BuildDecomposed after this many applied
	// mutations on indices built with Decompose, restoring the 2-layer+
	// binary-search path for tiles dirtied by updates. 0 means the
	// default of 4096; negative disables rebuilding. Rebuilds run with
	// the parallelism of the index's Options.BuildThreads.
	RebuildEvery int
	// MaxBacklog bounds the accepted-but-unpublished mutation backlog:
	// a submission that would push the pending count beyond it fails
	// immediately with ErrBacklogFull instead of queuing. This is the
	// overload valve — QueueDepth bounds queued *requests* (blocking),
	// MaxBacklog bounds queued *mutations* (rejecting), so a flood of
	// large batches cannot grow memory without bound. 0 means unbounded
	// (the pre-backpressure behavior).
	MaxBacklog int
	// Journal, when non-nil, is called from the apply loop with every
	// batch before it is applied or published: epoch is the epoch the
	// batch will publish as, muts the batch in application order. This is
	// the write-ahead hook — a durability layer (internal/wal) appends
	// and optionally fsyncs the batch here, so a batch is on disk before
	// any submitter is acked. A non-nil error aborts the batch: nothing
	// is applied, the snapshot does not advance, and every submitter in
	// the batch receives the error.
	Journal func(epoch uint64, muts []Mutation) error
}

func (o LiveOptions) withDefaults() LiveOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.RebuildEvery == 0 {
		o.RebuildEvery = 4096
	}
	return o
}

// Mutation is one pending update: an insertion of Entry, or — when Delete
// is set — the removal of the object with Entry's ID and exact MBR.
type Mutation struct {
	Delete bool
	Entry  spatial.Entry
}

// ApplyResult reports the outcome of a published mutation batch.
type ApplyResult struct {
	// Epoch is the snapshot epoch in which the mutations became visible.
	Epoch uint64
	// Found reports, per mutation, whether a delete found its object;
	// insert positions are always true.
	Found []bool
}

type applyAck struct {
	res ApplyResult
	err error
}

type applyReq struct {
	muts []Mutation
	done chan applyAck
}

// LiveStats is a point-in-time view of the apply loop's bookkeeping.
type LiveStats struct {
	Epoch       uint64        // epoch of the current snapshot
	Objects     int           // objects in the current snapshot
	Pending     int64         // mutations accepted but not yet published
	Applied     uint64        // mutations applied since NewLive
	Publishes   uint64        // snapshots published
	Rebuilds    uint64        // decomposed-table rebuilds performed
	LastBatch   int64         // mutations in the most recent publish
	LastPublish time.Duration // wall time of the most recent publish
	// BacklogLimit echoes LiveOptions.MaxBacklog (0 = unbounded) and
	// Rejected counts submissions refused with ErrBacklogFull, so a
	// monitoring layer can alarm on backpressure without parsing errors.
	BacklogLimit int
	Rejected     uint64
	// PublishTotal is the cumulative wall time spent in publish (journal
	// write, copy-on-write apply, rebuild, snapshot swap) since NewLive;
	// together with Publishes it yields a mean publish latency, and as a
	// monotone counter it rates cleanly in monitoring systems.
	PublishTotal time.Duration
}

// Live is an updatable two-layer index serving lock-free reads: Snapshot
// returns an immutable *Index readers query without synchronization,
// while a single apply goroutine batches submitted mutations and
// publishes copy-on-write snapshots. All methods are safe for concurrent
// use.
type Live struct {
	snap atomic.Pointer[Index]
	opt  LiveOptions

	mu     sync.Mutex // serializes submissions against Close
	ops    chan applyReq
	closed bool
	wg     sync.WaitGroup

	pending       atomic.Int64
	rejected      atomic.Uint64
	applied       atomic.Uint64
	publishes     atomic.Uint64
	rebuilds      atomic.Uint64
	lastBatch     atomic.Int64
	lastPublishNS atomic.Int64
	publishNS     atomic.Int64
}

// NewLive wraps ix, which becomes epoch-0 snapshot of the Live index.
// NewLive takes ownership: the caller must not query or mutate ix
// directly afterward. Any dataset reference is dropped — snapshots serve
// the filtering layer (MBR queries) only, since exact geometries cannot
// be attached to objects inserted later. Call Close when done to stop the
// apply goroutine.
func NewLive(ix *Index, opt LiveOptions) *Live {
	ix.dataset = nil
	ix.Stats = nil
	ix.trace = nil
	ix.knn = nil
	l := &Live{
		opt: opt.withDefaults(),
	}
	l.ops = make(chan applyReq, l.opt.QueueDepth)
	l.snap.Store(ix)
	l.wg.Add(1)
	go l.run()
	return l
}

// Snapshot returns the current published snapshot: one atomic load, no
// locks. The result is immutable — it never changes as later mutations
// are published — and safe for any number of concurrent readers; as with
// any shared Index, run kNN or stats-instrumented queries through
// per-goroutine views (Index.View).
func (l *Live) Snapshot() *Index { return l.snap.Load() }

// Insert adds one object and blocks until the insertion is published,
// returning the epoch that made it visible.
func (l *Live) Insert(e spatial.Entry) (uint64, error) {
	res, err := l.Apply([]Mutation{{Entry: e}})
	if err != nil {
		return 0, err
	}
	return res.Epoch, nil
}

// Delete removes the object with the given ID and exact MBR, blocking
// until the removal is published. It reports whether the object was found
// and the epoch of the publishing snapshot.
func (l *Live) Delete(id spatial.ID, r geom.Rect) (found bool, epoch uint64, err error) {
	res, err := l.Apply([]Mutation{{Delete: true, Entry: spatial.Entry{ID: id, Rect: r}}})
	if err != nil {
		return false, 0, err
	}
	return res.Found[0], res.Epoch, nil
}

// Apply submits a batch of mutations and blocks until they are published
// in one snapshot (all-or-nothing visibility). It returns ErrLiveClosed
// after Close, and a validation error — with nothing applied — if any
// mutation carries an invalid rectangle.
func (l *Live) Apply(muts []Mutation) (ApplyResult, error) {
	if len(muts) == 0 {
		return ApplyResult{Epoch: l.Snapshot().epoch}, nil
	}
	for i := range muts {
		if !muts[i].Entry.Rect.Valid() {
			return ApplyResult{}, fmt.Errorf(
				"core: mutation %d has invalid rect %v (id %d)",
				i, muts[i].Entry.Rect, muts[i].Entry.ID)
		}
	}
	req := applyReq{muts: muts, done: make(chan applyAck, 1)}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ApplyResult{}, ErrLiveClosed
	}
	// Backpressure: refuse (don't block) while the pending backlog is at
	// or beyond MaxBacklog. The check gates admission rather than size —
	// a batch admitted at the boundary may overshoot by its own length —
	// so the backlog stays bounded by MaxBacklog plus one batch and a
	// batch larger than the bound is still acceptable on an idle loop.
	// Checked under the lock so concurrent submitters serialize against
	// the bound.
	if mb := l.opt.MaxBacklog; mb > 0 && l.pending.Load() >= int64(mb) {
		l.mu.Unlock()
		l.rejected.Add(1)
		return ApplyResult{}, fmt.Errorf("%w: %d pending, limit %d",
			ErrBacklogFull, l.pending.Load(), mb)
	}
	l.pending.Add(int64(len(muts)))
	// Enqueue under the lock so Close cannot close the channel between
	// the closed check and the send. The apply loop never takes the lock,
	// so a full queue drains and the send completes.
	l.ops <- req
	l.mu.Unlock()
	ack := <-req.done
	return ack.res, ack.err
}

// Stats returns a consistent-enough point-in-time view of the apply
// loop's counters for monitoring.
func (l *Live) Stats() LiveStats {
	s := l.Snapshot()
	return LiveStats{
		Epoch:        s.epoch,
		Objects:      s.size,
		Pending:      l.pending.Load(),
		Applied:      l.applied.Load(),
		Publishes:    l.publishes.Load(),
		Rebuilds:     l.rebuilds.Load(),
		LastBatch:    l.lastBatch.Load(),
		LastPublish:  time.Duration(l.lastPublishNS.Load()),
		BacklogLimit: l.opt.MaxBacklog,
		Rejected:     l.rejected.Load(),
		PublishTotal: time.Duration(l.publishNS.Load()),
	}
}

// Close drains already-accepted mutations, publishes them, and stops the
// apply goroutine. Mutations submitted after Close fail with
// ErrLiveClosed; Snapshot keeps serving the final snapshot. Close is
// idempotent.
func (l *Live) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.ops)
	l.mu.Unlock()
	l.wg.Wait()
}

// run is the single-writer apply loop: receive one request, drain up to
// MaxBatch pending mutations, apply them to a copy-on-write clone,
// publish, ack.
func (l *Live) run() {
	defer l.wg.Done()
	var batch []applyReq
	opsSinceRebuild := 0
	for {
		first, ok := <-l.ops
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		n := len(first.muts)
	drain:
		for n < l.opt.MaxBatch {
			select {
			case req, ok := <-l.ops:
				if !ok {
					break drain
				}
				batch = append(batch, req)
				n += len(req.muts)
			default:
				break drain
			}
		}
		opsSinceRebuild += n
		rebuild := false
		if l.opt.RebuildEvery > 0 && opsSinceRebuild >= l.opt.RebuildEvery &&
			l.Snapshot().opts.Decompose {
			rebuild = true
			opsSinceRebuild = 0
		}
		l.publish(batch, n, rebuild)
	}
}

// publish applies one batch to a clone of the current snapshot and makes
// the clone the next epoch. With a Journal configured, the batch is
// journaled first (write-ahead): only after the journal accepts it — i.e.
// the batch is durable under the journal's sync policy — is it applied
// and published, and only then are submitters acked.
func (l *Live) publish(batch []applyReq, n int, rebuild bool) {
	start := time.Now()
	if l.opt.Journal != nil {
		muts := make([]Mutation, 0, n)
		for _, req := range batch {
			muts = append(muts, req.muts...)
		}
		if err := l.opt.Journal(l.Snapshot().epoch+1, muts); err != nil {
			err = fmt.Errorf("core: journaling batch: %w", err)
			l.pending.Add(-int64(n))
			for _, req := range batch {
				req.done <- applyAck{err: err}
			}
			return
		}
	}
	next := l.Snapshot().CloneCOW()
	found := make([][]bool, len(batch))
	for bi, req := range batch {
		f := make([]bool, len(req.muts))
		for i, m := range req.muts {
			if m.Delete {
				f[i] = next.Delete(m.Entry.ID, m.Entry.Rect)
			} else {
				next.Insert(m.Entry)
				f[i] = true
			}
		}
		found[bi] = f
	}
	if rebuild {
		next.BuildDecomposed()
		l.rebuilds.Add(1)
	}
	l.snap.Store(next)

	l.applied.Add(uint64(n))
	l.publishes.Add(1)
	l.lastBatch.Store(int64(n))
	elapsed := time.Since(start).Nanoseconds()
	l.lastPublishNS.Store(elapsed)
	l.publishNS.Add(elapsed)
	l.pending.Add(-int64(n))
	for bi, req := range batch {
		req.done <- applyAck{res: ApplyResult{Epoch: next.epoch, Found: found[bi]}}
	}
}
