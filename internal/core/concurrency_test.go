package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// TestConcurrentReaders: the index promises safety for concurrent readers
// (no Stats attached). Run mixed window/disk queries from many goroutines;
// `go test -race` verifies the absence of data races.
func TestConcurrentReaders(t *testing.T) {
	rnd := rand.New(rand.NewSource(121))
	ix, d := buildRandom(rnd, 2000, 0.05, Options{NX: 32, NY: 32, Decompose: true})

	// Pre-generate per-goroutine workloads (rand.Rand is not
	// goroutine-safe).
	const workers = 8
	type job struct {
		w    geom.Rect
		c    geom.Point
		r    float64
		want int
	}
	jobs := make([][]job, workers)
	for g := range jobs {
		for q := 0; q < 25; q++ {
			w := randWindow(rnd, 0.3)
			c := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
			radius := rnd.Float64() * 0.2
			jobs[g] = append(jobs[g], job{
				w: w, c: c, r: radius,
				want: len(spatial.BruteWindow(d.Entries, w)),
			})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, j := range jobs[g] {
				if got := ix.WindowCount(j.w); got != j.want {
					errs <- "window count mismatch under concurrency"
					return
				}
				ix.DiskCount(j.c, j.r)
				ix.WindowExact(j.w, RefineAvoidPlus, func(spatial.ID) {})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBatchParallelRace: tiles-based parallel batch under the race
// detector, with a callback that is itself concurrent-safe.
func TestBatchParallelRace(t *testing.T) {
	rnd := rand.New(rand.NewSource(122))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 16, NY: 16})
	queries := make([]geom.Rect, 300)
	for i := range queries {
		queries[i] = randWindow(rnd, 0.2)
	}
	a := ix.BatchWindowCounts(queries, TilesBased, 8)
	b := ix.BatchWindowCounts(queries, QueriesBased, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: %d != %d", i, a[i], b[i])
		}
	}
}
