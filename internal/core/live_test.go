package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

var unitSquare = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}

func everything() geom.Rect {
	return geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}
}

// TestCloneCOWIsolation: mutating a clone must not change the original,
// across inserts, deletes, and tiles shared between epochs.
func TestCloneCOWIsolation(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	ix, d := buildRandom(rnd, 2000, 0.05, Options{NX: 32, NY: 32, Space: unitSquare})
	wantIDs := ix.WindowIDs(everything(), nil)

	cl := ix.CloneCOW()
	if cl.Epoch() != ix.Epoch()+1 {
		t.Fatalf("clone epoch = %d, want %d", cl.Epoch(), ix.Epoch()+1)
	}
	// Delete half the objects and insert some new ones through the clone.
	for id := 0; id < 1000; id++ {
		if !cl.Delete(spatial.ID(id), d.Entries[id].Rect) {
			t.Fatalf("clone delete %d not found", id)
		}
	}
	for i := 0; i < 500; i++ {
		r := randRects(rnd, 1, 0.05)[0]
		cl.Insert(spatial.Entry{ID: spatial.ID(5000 + i), Rect: r})
	}

	// Original unchanged, exactly.
	sameIDs(t, ix.WindowIDs(everything(), nil), wantIDs, "original after clone mutation")
	if ix.Len() != 2000 {
		t.Fatalf("original Len = %d, want 2000", ix.Len())
	}
	// Clone holds the mutated object set.
	if cl.Len() != 1500 {
		t.Fatalf("clone Len = %d, want 1500", cl.Len())
	}
	got := cl.WindowIDs(everything(), nil)
	noDuplicates(t, got, "clone full scan")
	if len(got) != 1500 {
		t.Fatalf("clone full scan returned %d, want 1500", len(got))
	}
}

// TestCloneCOWNewTiles: populating previously empty tiles in a clone must
// not surface in the original (directory copy-on-write), for both dense
// and sparse directories.
func TestCloneCOWNewTiles(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		ix := New(Options{NX: 16, NY: 16, Space: unitSquare, SparseDirectory: sparse})
		ix.Insert(spatial.Entry{ID: 0, Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.12, MaxY: 0.12}})
		cl := ix.CloneCOW()
		// Far corner: guaranteed new tiles.
		cl.Insert(spatial.Entry{ID: 1, Rect: geom.Rect{MinX: 0.9, MinY: 0.9, MaxX: 0.92, MaxY: 0.92}})
		if n := ix.WindowCount(everything()); n != 1 {
			t.Fatalf("sparse=%v: original sees %d objects, want 1", sparse, n)
		}
		if n := cl.WindowCount(everything()); n != 2 {
			t.Fatalf("sparse=%v: clone sees %d objects, want 2", sparse, n)
		}
	}
}

// TestLiveBasic: inserts and deletes through Live become visible in
// snapshots with monotonically increasing epochs.
func TestLiveBasic(t *testing.T) {
	l := NewLive(New(Options{NX: 16, NY: 16, Space: unitSquare}), LiveOptions{})
	defer l.Close()

	s0 := l.Snapshot()
	if s0.Epoch() != 0 || s0.Len() != 0 {
		t.Fatalf("seed snapshot epoch=%d len=%d, want 0/0", s0.Epoch(), s0.Len())
	}
	r := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	epoch, err := l.Insert(spatial.Entry{ID: 42, Rect: r})
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("insert published at epoch 0")
	}
	// Read-your-writes: the ack implies visibility.
	if n := l.Snapshot().WindowCount(everything()); n != 1 {
		t.Fatalf("after insert: %d objects, want 1", n)
	}
	// Old pinned snapshot still sees nothing.
	if n := s0.WindowCount(everything()); n != 0 {
		t.Fatalf("pinned snapshot sees %d objects, want 0", n)
	}

	found, epoch2, err := l.Delete(42, r)
	if err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}
	if epoch2 <= epoch {
		t.Fatalf("delete epoch %d not after insert epoch %d", epoch2, epoch)
	}
	if found, _, _ := l.Delete(42, r); found {
		t.Fatal("second delete reported found")
	}
	if n := l.Snapshot().Len(); n != 0 {
		t.Fatalf("after delete: Len=%d, want 0", n)
	}

	st := l.Stats()
	if st.Applied != 3 || st.Publishes == 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestLiveApplyBatch: a batch is all-or-nothing visible and reports
// per-mutation delete outcomes.
func TestLiveApplyBatch(t *testing.T) {
	l := NewLive(New(Options{NX: 8, NY: 8, Space: unitSquare}), LiveOptions{})
	defer l.Close()

	r1 := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
	r2 := geom.Rect{MinX: 0.6, MinY: 0.6, MaxX: 0.7, MaxY: 0.7}
	res, err := l.Apply([]Mutation{
		{Entry: spatial.Entry{ID: 1, Rect: r1}},
		{Entry: spatial.Entry{ID: 2, Rect: r2}},
		{Delete: true, Entry: spatial.Entry{ID: 1, Rect: r1}},
		{Delete: true, Entry: spatial.Entry{ID: 9, Rect: r2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false}
	for i, f := range res.Found {
		if f != want[i] {
			t.Fatalf("Found[%d] = %v, want %v", i, f, want[i])
		}
	}
	if n := l.Snapshot().Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}

	// Invalid rects are rejected up front, applying nothing.
	if _, err := l.Apply([]Mutation{
		{Entry: spatial.Entry{ID: 3, Rect: geom.Rect{MinX: 1, MinY: 0, MaxX: 0, MaxY: 1}}},
	}); err == nil {
		t.Fatal("invalid rect accepted")
	}
	if n := l.Snapshot().Len(); n != 1 {
		t.Fatalf("Len after rejected batch = %d, want 1", n)
	}
}

// TestLiveClose: Close flushes accepted mutations and later submissions
// fail with ErrLiveClosed.
func TestLiveClose(t *testing.T) {
	l := NewLive(New(Options{NX: 8, NY: 8, Space: unitSquare}), LiveOptions{})
	if _, err := l.Insert(spatial.Entry{ID: 1, Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // idempotent
	if _, err := l.Insert(spatial.Entry{ID: 2, Rect: geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.4, MaxY: 0.4}}); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("insert after close: err = %v, want ErrLiveClosed", err)
	}
	if n := l.Snapshot().Len(); n != 1 {
		t.Fatalf("final snapshot Len = %d, want 1", n)
	}
}

// TestLiveRebuildDecomposed: on a Decompose index, the apply loop
// periodically restores the decomposed tables; queries stay exact
// throughout.
func TestLiveRebuildDecomposed(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	d := spatial.NewDataset(randRects(rnd, 500, 0.05))
	ix := Build(d, Options{NX: 16, NY: 16, Space: unitSquare, Decompose: true})
	l := NewLive(ix, LiveOptions{MaxBatch: 8, RebuildEvery: 16})
	defer l.Close()

	for i := 0; i < 64; i++ {
		r := randRects(rnd, 1, 0.05)[0]
		if _, err := l.Insert(spatial.Entry{ID: spatial.ID(1000 + i), Rect: r}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Stats().Rebuilds == 0 {
		t.Fatal("no decomposed rebuilds after 64 mutations with RebuildEvery=16")
	}
	s := l.Snapshot()
	got := s.WindowIDs(everything(), nil)
	noDuplicates(t, got, "full scan after rebuilds")
	if len(got) != 564 {
		t.Fatalf("full scan returned %d, want 564", len(got))
	}
	// Spot-check a few windows against brute force over the same snapshot.
	all := make([]spatial.Entry, 0, s.Len())
	s.Window(everything(), func(e spatial.Entry) { all = append(all, e) })
	for i := 0; i < 20; i++ {
		w := randWindow(rnd, 0.3)
		sameIDs(t, s.WindowIDs(w, nil), spatial.BruteWindow(all, w), "window after rebuilds")
	}
}

// TestBuildErr covers the error-returning build variant.
func TestBuildErr(t *testing.T) {
	d := spatial.NewDataset(randRects(rand.New(rand.NewSource(3)), 10, 0.1))
	if _, err := BuildErr(d, Options{NX: -1}); err == nil {
		t.Fatal("negative NX accepted")
	}
	if _, err := BuildErr(d, Options{Space: geom.Rect{MinX: 0, MinY: 0, MaxX: 0, MaxY: 1}}); err == nil {
		t.Fatal("degenerate space accepted")
	}
	// Degenerate data MBR without an explicit space errors instead of
	// panicking.
	pt := spatial.NewDataset([]geom.Rect{{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}})
	if _, err := BuildErr(pt, Options{}); err == nil {
		t.Fatal("degenerate data MBR accepted")
	}
	ix, err := BuildErr(d, Options{NX: 8, NY: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ix.Len())
	}
}

// TestJoinable covers the error-returning join precondition.
func TestJoinable(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	a, _ := buildRandom(rnd, 100, 0.05, Options{NX: 8, NY: 8, Space: unitSquare})
	b, _ := buildRandom(rnd, 100, 0.05, Options{NX: 8, NY: 8, Space: unitSquare})
	c, _ := buildRandom(rnd, 100, 0.05, Options{NX: 16, NY: 16, Space: unitSquare})
	if err := Joinable(a, b); err != nil {
		t.Fatalf("compatible indices: %v", err)
	}
	if err := Joinable(a, a); !errors.Is(err, ErrSelfJoin) {
		t.Fatalf("self-join: err = %v, want ErrSelfJoin", err)
	}
	if err := Joinable(a, c); !errors.Is(err, ErrGridMismatch) {
		t.Fatalf("mismatched grids: err = %v, want ErrGridMismatch", err)
	}
}

// TestDiskUntil: early termination is honored and a full run matches Disk.
func TestDiskUntil(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	ix, _ := buildRandom(rnd, 2000, 0.05, Options{NX: 32, NY: 32, Space: unitSquare})
	center := geom.Point{X: 0.5, Y: 0.5}
	total := ix.DiskCount(center, 0.2)
	if total < 10 {
		t.Fatalf("weak test: only %d disk results", total)
	}
	var got []spatial.ID
	if !ix.DiskUntil(center, 0.2, func(e spatial.Entry) bool {
		got = append(got, e.ID)
		return true
	}) {
		t.Fatal("uninterrupted DiskUntil reported early stop")
	}
	sameIDs(t, got, ix.DiskIDs(center, 0.2, nil), "DiskUntil full run")

	seen := 0
	completed := ix.DiskUntil(center, 0.2, func(spatial.Entry) bool {
		seen++
		return seen < 5
	})
	if completed {
		t.Fatal("interrupted DiskUntil reported completion")
	}
	if seen >= total {
		t.Fatalf("early stop scanned all %d results", seen)
	}
}

// TestLiveJournal: the Journal hook sees every batch, in order, with the
// epoch the batch publishes as; a journal error rejects the whole batch
// with nothing applied, and later batches proceed normally.
func TestLiveJournal(t *testing.T) {
	type logged struct {
		epoch uint64
		muts  []Mutation
	}
	var (
		mu      sync.Mutex
		journal []logged
		failNow bool
	)
	errInject := errors.New("disk full")
	l := NewLive(New(Options{NX: 8, NY: 8, Space: unitSquare}), LiveOptions{
		Journal: func(epoch uint64, muts []Mutation) error {
			mu.Lock()
			defer mu.Unlock()
			if failNow {
				return errInject
			}
			cp := make([]Mutation, len(muts))
			copy(cp, muts)
			journal = append(journal, logged{epoch, cp})
			return nil
		},
	})
	defer l.Close()

	r := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
	epoch1, err := l.Insert(spatial.Entry{ID: 1, Rect: r})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Apply([]Mutation{
		{Entry: spatial.Entry{ID: 2, Rect: r}},
		{Delete: true, Entry: spatial.Entry{ID: 1, Rect: r}},
	}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	if len(journal) != 2 {
		t.Fatalf("journal has %d batches, want 2", len(journal))
	}
	if journal[0].epoch != epoch1 {
		t.Fatalf("journal epoch %d, ack epoch %d", journal[0].epoch, epoch1)
	}
	if journal[1].epoch != epoch1+1 {
		t.Fatalf("second batch epoch %d, want %d", journal[1].epoch, epoch1+1)
	}
	if len(journal[1].muts) != 2 || !journal[1].muts[1].Delete {
		t.Fatalf("second batch muts = %+v", journal[1].muts)
	}
	failNow = true
	mu.Unlock()

	// A failing journal rejects the batch: nothing applied, epoch frozen.
	before := l.Snapshot()
	if _, err := l.Insert(spatial.Entry{ID: 3, Rect: r}); !errors.Is(err, errInject) {
		t.Fatalf("err = %v, want wrapped %v", err, errInject)
	}
	after := l.Snapshot()
	if after.Epoch() != before.Epoch() || after.Len() != before.Len() {
		t.Fatalf("rejected batch changed snapshot: epoch %d->%d len %d->%d",
			before.Epoch(), after.Epoch(), before.Len(), after.Len())
	}

	// Recovery: once the journal accepts writes again, mutations flow.
	mu.Lock()
	failNow = false
	mu.Unlock()
	if _, err := l.Insert(spatial.Entry{ID: 4, Rect: r}); err != nil {
		t.Fatal(err)
	}
	if l.Snapshot().Len() != 2 { // IDs 2 and 4
		t.Fatalf("Len = %d, want 2", l.Snapshot().Len())
	}
}
