package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/twolayer/twolayer/internal/geom"
	"github.com/twolayer/twolayer/internal/spatial"
)

// bruteKNN returns the k nearest MBRs by exhaustive scan.
func bruteKNN(entries []spatial.Entry, q geom.Point, k int) []Neighbor {
	all := make([]Neighbor, len(entries))
	for i, e := range entries {
		all[i] = Neighbor{ID: e.ID, Dist: math.Sqrt(e.Rect.DistSqToPoint(q))}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestKNNMatchesBruteForce across grid sizes, k values and object sizes.
func TestKNNMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(131))
	for _, gridSize := range []int{1, 8, 32} {
		for _, maxSide := range []float64{0.001, 0.1} {
			ix, d := buildRandom(rnd, 500, maxSide, Options{NX: gridSize, NY: gridSize})
			for trial := 0; trial < 30; trial++ {
				q := geom.Point{X: rnd.Float64() * 1.1, Y: rnd.Float64() * 1.1}
				k := 1 + rnd.Intn(20)
				got := ix.KNN(q, k)
				want := bruteKNN(d.Entries, q, k)
				if len(got) != len(want) {
					t.Fatalf("grid=%d k=%d: got %d results, want %d", gridSize, k, len(got), len(want))
				}
				for i := range got {
					// Distances must match (IDs may differ on ties).
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
						t.Fatalf("grid=%d k=%d: result %d dist %v, want %v",
							gridSize, k, i, got[i].Dist, want[i].Dist)
					}
				}
				// Results must be sorted ascending and distinct.
				seen := map[spatial.ID]bool{}
				for i := range got {
					if i > 0 && got[i].Dist < got[i-1].Dist {
						t.Fatal("kNN results not sorted")
					}
					if seen[got[i].ID] {
						t.Fatalf("duplicate neighbor %d", got[i].ID)
					}
					seen[got[i].ID] = true
				}
			}
		}
	}
}

// TestKNNEdgeCases: k <= 0, k > n, empty index, repeated queries (epoch
// reuse).
func TestKNNEdgeCases(t *testing.T) {
	rnd := rand.New(rand.NewSource(132))
	empty := New(Options{NX: 4, NY: 4})
	if got := empty.KNN(geom.Point{X: 0.5, Y: 0.5}, 3); got != nil {
		t.Error("empty index should return nil")
	}
	ix, d := buildRandom(rnd, 50, 0.05, Options{NX: 8, NY: 8})
	if got := ix.KNN(geom.Point{X: 0.5, Y: 0.5}, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.KNN(geom.Point{X: 0.5, Y: 0.5}, 100); len(got) != d.Len() {
		t.Errorf("k>n returned %d of %d", len(got), d.Len())
	}
	// Many repeated queries exercise the epoch-stamped seen table.
	for i := 0; i < 200; i++ {
		q := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		got := ix.KNN(q, 5)
		want := bruteKNN(d.Entries, q, 5)
		for j := range got {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-12 {
				t.Fatalf("iteration %d: dist mismatch", i)
			}
		}
	}
}

// bruteJoin counts intersecting pairs by nested loop.
func bruteJoin(a, b []spatial.Entry) int {
	n := 0
	for i := range a {
		for j := range b {
			if a[i].Rect.Intersects(b[j].Rect) {
				n++
			}
		}
	}
	return n
}

// TestJoinMatchesBruteForce: the class-combination join equals the nested
// loop, with every pair produced exactly once.
func TestJoinMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(133))
	space := geom.Rect{MaxX: 1.3, MaxY: 1.3}
	for _, gridSize := range []int{1, 4, 16, 64} {
		for _, maxSide := range []float64{0.01, 0.1, 0.4} {
			ra := randRects(rnd, 300, maxSide)
			rb := randRects(rnd, 300, maxSide)
			a := Build(spatial.NewDataset(ra), Options{NX: gridSize, NY: gridSize, Space: space})
			b := Build(spatial.NewDataset(rb), Options{NX: gridSize, NY: gridSize, Space: space})

			seen := map[[2]spatial.ID]bool{}
			a.Join(b, func(r, s spatial.Entry) {
				key := [2]spatial.ID{r.ID, s.ID}
				if seen[key] {
					t.Fatalf("grid=%d side=%g: duplicate pair %v", gridSize, maxSide, key)
				}
				seen[key] = true
				if !r.Rect.Intersects(s.Rect) {
					t.Fatalf("non-intersecting pair reported: %v %v", r.Rect, s.Rect)
				}
			})
			want := bruteJoin(a.datasetEntries(), b.datasetEntries())
			if len(seen) != want {
				t.Fatalf("grid=%d side=%g: join found %d pairs, want %d",
					gridSize, maxSide, len(seen), want)
			}
		}
	}
}

// datasetEntries exposes the build entries for test verification.
func (ix *Index) datasetEntries() []spatial.Entry { return ix.dataset.Entries }

// TestJoinPanicsOnMismatch: grid compatibility is enforced.
func TestJoinPanicsOnMismatch(t *testing.T) {
	rnd := rand.New(rand.NewSource(134))
	space := geom.Rect{MaxX: 1.2, MaxY: 1.2}
	a := Build(spatial.NewDataset(randRects(rnd, 10, 0.1)), Options{NX: 4, NY: 4, Space: space})
	b := Build(spatial.NewDataset(randRects(rnd, 10, 0.1)), Options{NX: 8, NY: 8, Space: space})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched grids")
		}
	}()
	a.Join(b, func(_, _ spatial.Entry) {})
}

// TestJoinSelfPanics: self-join via the same instance is rejected.
func TestJoinSelfPanics(t *testing.T) {
	rnd := rand.New(rand.NewSource(135))
	a := Build(spatial.NewDataset(randRects(rnd, 10, 0.1)), Options{NX: 4, NY: 4})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for self-join")
		}
	}()
	a.Join(a, func(_, _ spatial.Entry) {})
}

// TestJoinCount and empty-side joins.
func TestJoinCount(t *testing.T) {
	rnd := rand.New(rand.NewSource(136))
	space := geom.Rect{MaxX: 1.2, MaxY: 1.2}
	a := Build(spatial.NewDataset(randRects(rnd, 100, 0.1)), Options{NX: 8, NY: 8, Space: space})
	empty := Build(spatial.NewDataset(nil), Options{NX: 8, NY: 8, Space: space})
	if n := a.JoinCount(empty); n != 0 {
		t.Errorf("join with empty = %d", n)
	}
	b := Build(spatial.NewDataset(randRects(rnd, 100, 0.1)), Options{NX: 8, NY: 8, Space: space})
	if n := a.JoinCount(b); n != bruteJoin(a.dataset.Entries, b.dataset.Entries) {
		t.Errorf("JoinCount mismatch")
	}
}

// TestSweep directly: sorted-list plane sweep equals nested loop.
func TestSweep(t *testing.T) {
	rnd := rand.New(rand.NewSource(137))
	for trial := 0; trial < 50; trial++ {
		ra := randRects(rnd, 30, 0.3)
		rb := randRects(rnd, 30, 0.3)
		a := sortByMinX(spatial.NewDataset(ra).Entries)
		b := sortByMinX(spatial.NewDataset(rb).Entries)
		got := 0
		sweep(a, b, func(r, s spatial.Entry) {
			if !r.Rect.Intersects(s.Rect) {
				t.Fatal("sweep reported non-intersecting pair")
			}
			got++
		})
		if want := bruteJoin(a, b); got != want {
			t.Fatalf("sweep found %d, want %d", got, want)
		}
	}
}
